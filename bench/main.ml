(* Benchmark & reproduction harness.

   Usage:
     dune exec bench/main.exe                 # every table and figure
     dune exec bench/main.exe -- -e fig7      # one experiment
     dune exec bench/main.exe -- -e micro     # bechamel micro-benchmarks
     dune exec bench/main.exe -- --scale 0.5 --queries 50 --seed 7

   Experiment ids match DESIGN.md's per-experiment index. *)

module E = Pc_workload.Experiments

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the solver stack                       *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  (* simplex: the paper's worked-example LP shape *)
  let lp_problem =
    let open Pc_lp.Simplex in
    {
      n_vars = 2;
      maximize = true;
      objective = [ (0, 129.99); (1, 149.99) ];
      constraints =
        [
          c_ge [ (0, 1.) ] 50.;
          c_le [ (0, 1.) ] 100.;
          c_ge [ (0, 1.); (1, 1.) ] 75.;
          c_le [ (0, 1.); (1, 1.) ] 125.;
        ];
    }
  in
  let milp_problem =
    let open Pc_lp.Simplex in
    {
      n_vars = 3;
      maximize = true;
      objective = [ (0, 5.); (1, 4.); (2, 3.) ];
      constraints =
        [
          c_le [ (0, 2.); (1, 3.); (2, 1.) ] 5.;
          c_le [ (0, 4.); (1, 1.); (2, 2.) ] 11.;
          c_le [ (0, 3.); (1, 4.); (2, 2.) ] 8.;
        ];
    }
  in
  let rng = Pc_util.Rng.create 7 in
  let pcs =
    List.init 10 (fun i ->
        let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:60. in
        let w = Pc_util.Rng.uniform rng ~lo:20. ~hi:50. in
        Pc_core.Pc.make
          ~name:(Printf.sprintf "p%d" i)
          ~pred:[ Pc_predicate.Atom.between "x" lo (lo +. w) ]
          ~values:[ ("v", Pc_interval.Interval.closed 0. 100.) ]
          ~freq:(0, 10) ())
  in
  let set = Pc_core.Pc_set.make pcs in
  let missing = Pc_synth.Sensor.generate (Pc_util.Rng.create 3) ~rows:5_000 in
  let disjoint_set =
    Pc_core.Pc_set.make
      (Pc_core.Generate.corr_partition missing ~attrs:[ "device"; "time" ] ~n:500 ())
  in
  ignore (Pc_core.Pc_set.is_disjoint disjoint_set);
  let sat_cnf =
    let open Pc_predicate in
    Cnf.of_pred [ Atom.between "x" 0. 50. ]
    |> Cnf.conj (Cnf.of_neg_pred [ Atom.between "x" 10. 20. ])
    |> Cnf.conj (Cnf.of_neg_pred [ Atom.between "x" 30. 40. ])
  in
  let query = Pc_query.Query.sum "light" in
  let tests =
    [
      Test.make ~name:"simplex.solve (paper 4.4 shape)"
        (Staged.stage (fun () -> ignore (Pc_lp.Simplex.solve lp_problem)));
      Test.make ~name:"milp.solve (3-var knapsack)"
        (Staged.stage (fun () -> ignore (Pc_milp.Milp.solve milp_problem)));
      Test.make ~name:"sat.check (3-clause cell expr)"
        (Staged.stage (fun () -> ignore (Pc_predicate.Sat.check sat_cnf)));
      Test.make ~name:"cells.decompose (10 overlapping PCs)"
        (Staged.stage (fun () ->
             ignore (Pc_core.Cells.decompose ~strategy:Pc_core.Cells.Dfs_rewrite set)));
      Test.make ~name:"bounds.greedy (500 disjoint PCs, SUM)"
        (Staged.stage (fun () -> ignore (Pc_core.Bounds.bound disjoint_set query)));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 200) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Instance.monotonic_clock results
  in
  Pc_workload.Report.section "Micro-benchmarks (bechamel, monotonic clock)";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-42s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-42s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let experiment = ref "all" in
  let scale = ref 1. in
  let queries = ref 100 in
  let seed = ref 42 in
  let list_only = ref false in
  let specs =
    [
      ("-e", Arg.Set_string experiment, "EXPERIMENT id (default: all)");
      ("--experiment", Arg.Set_string experiment, "same as -e");
      ("--scale", Arg.Set_float scale, "FLOAT dataset-size multiplier (default 1.0)");
      ("--queries", Arg.Set_int queries, "INT workload size per experiment (default 100)");
      ("--seed", Arg.Set_int seed, "INT RNG seed (default 42)");
      ("--list", Arg.Set list_only, " list experiment ids and exit");
    ]
  in
  Arg.parse specs
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "Predicate-Constraints reproduction harness";
  if !list_only then begin
    List.iter (fun (id, desc, _) -> Printf.printf "%-22s %s\n" id desc) E.all;
    Printf.printf "%-22s %s\n" "micro" "bechamel micro-benchmarks of the solver stack"
  end
  else begin
    let cfg = { E.seed = !seed; scale = !scale; queries = !queries } in
    Printf.printf
      "Predicate-Constraints reproduction (seed=%d scale=%g queries=%d)\n" !seed
      !scale !queries;
    let run_one (id, _desc, f) =
      let t0 = Sys.time () in
      f cfg;
      Printf.printf "  [%s finished in %.1f s CPU]\n" id (Sys.time () -. t0)
    in
    match !experiment with
    | "all" ->
        List.iter run_one E.all;
        micro_benchmarks ()
    | "micro" -> micro_benchmarks ()
    | id -> (
        match List.find_opt (fun (i, _, _) -> i = id) E.all with
        | Some exp -> run_one exp
        | None ->
            Printf.eprintf "unknown experiment %S; use --list\n" id;
            exit 1)
  end
