(* Benchmark & reproduction harness.

   Usage:
     dune exec bench/main.exe                 # every table and figure
     dune exec bench/main.exe -- -e fig7      # one experiment
     dune exec bench/main.exe -- -e micro     # bechamel micro-benchmarks
     dune exec bench/main.exe -- --jobs 4     # parallel bound engine
     dune exec bench/main.exe -- --baseline BENCH_decompose.json
     dune exec bench/main.exe -- --scale 0.5 --queries 50 --seed 7

   Experiment ids match DESIGN.md's per-experiment index. *)

module E = Pc_workload.Experiments
module Clock = Pc_util.Clock

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the solver stack                       *)
(* ------------------------------------------------------------------ *)

(* the decomposition stress fixture: n overlapping one-attribute ranges.
   The domain grows with n (6 units per PC) so overlap depth stays flat
   and cell count stays linear — the regime where the FDD path walk wins
   and the DFS SAT-probe cost is pure overhead. n = 10 reproduces the
   original fixture draw-for-draw (seed 7, hi = 60). *)
let overlapping_set_n n =
  let rng = Pc_util.Rng.create 7 in
  let pcs =
    List.init n (fun i ->
        let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:(6. *. float_of_int n) in
        let w = Pc_util.Rng.uniform rng ~lo:20. ~hi:50. in
        Pc_core.Pc.make
          ~name:(Printf.sprintf "p%d" i)
          ~pred:[ Pc_predicate.Atom.between "x" lo (lo +. w) ]
          ~values:[ ("v", Pc_interval.Interval.closed 0. 100.) ]
          ~freq:(0, 10) ())
  in
  Pc_core.Pc_set.make pcs

let overlapping_set () = overlapping_set_n 10

(* Interval rows (a >=/<= pair per PC) over overlapping cell coverage:
   the MILP shape the PC framework emits, and the one where warm starts
   pay — a cold solve runs phase 1 for the >= rows at every node, while
   a warm child re-optimizes the parent basis with a few dual pivots. *)
let milp_interval_problem =
  let open Pc_lp.Simplex in
  let n = 6 in
  let rows =
    List.concat
      (List.init (n - 1) (fun k ->
           let coeffs = [ (k, 1.); (k + 1, 1.) ] in
           [
             c_ge coeffs (float_of_int (k + 1) +. 0.5);
             c_le coeffs (float_of_int (2 * (k + 2)) +. 0.5);
           ]))
  in
  {
    n_vars = n;
    maximize = true;
    objective = List.init n (fun j -> (j, float_of_int ((j mod 3) + 1)));
    constraints = rows;
    var_bounds = [];
  }

(* lp.pivots cost of one warm and one cold MILP solve of [p]; also the
   source of the "warm starts actually happened" smoke signal. *)
let milp_pivot_counts p =
  let module C = Pc_obs.Registry.Counter in
  let pivots = C.make "lp.pivots" in
  let run warm =
    let before = C.get pivots in
    ignore (Pc_milp.Milp.solve ~warm p);
    C.get pivots - before
  in
  (run true, run false)

(* ------------------------------------------------------------------ *)
(* Fig. 8 disjoint-partition scaling: dense tableau vs revised simplex *)
(* ------------------------------------------------------------------ *)

(* The disjoint-partition contingency LP at 10-100x the paper's cell
   counts (Fig. 8 tops out at 2000 partitions): one column per cell,
   boxed by the partition's tuple cap, cells bucketed into group budget
   rows plus one global missing-row budget. Block-angular, ~2 nonzeros
   per column — the regime where the dense tableau pays O(m*n) per pivot
   while the revised simplex pays O(column nnz * eta nnz). *)
let fig8_problem ~cells =
  let open Pc_lp.Simplex in
  let rng = Pc_util.Rng.create 23 in
  let groups = 40 + (cells / 2000) in
  let group_rows = Array.make groups [] in
  for j = cells - 1 downto 0 do
    let g = j mod groups in
    group_rows.(g) <- (j, 1.) :: group_rows.(g)
  done;
  let constraints =
    c_le (List.init cells (fun j -> (j, 1.))) (6. *. float_of_int groups)
    :: Array.to_list (Array.map (fun row -> c_le row 12.) group_rows)
  in
  {
    n_vars = cells;
    maximize = true;
    objective =
      List.init cells (fun j -> (j, 0.5 +. Pc_util.Rng.uniform rng ~lo:0. ~hi:1.));
    constraints;
    var_bounds = List.init cells (fun j -> (j, 0., 10.));
  }

type fig8_point = {
  f8_cells : int;
  f8_sparse_ns : float;
  f8_sparse_pivots : int;
  f8_dense : (float * int) option;  (* ns, pivots; None above dense reach *)
}

let fig8_run ~cells ~with_dense =
  let p = fig8_problem ~cells in
  let module C = Pc_obs.Registry.Counter in
  let pivc = C.make "lp.pivots" in
  let time f =
    let t0 = Clock.now () in
    let r = f () in
    (r, Clock.elapsed_s ~since:t0 *. 1e9)
  in
  let before = C.get pivc in
  let s_out, s_ns = time (fun () -> Pc_lp.Simplex.solve p) in
  let s_piv = C.get pivc - before in
  (match s_out with
  | Pc_lp.Simplex.Optimal _ -> ()
  | _ ->
      Printf.eprintf "FATAL: fig8 revised-simplex solve (%d cells) not Optimal\n"
        cells;
      exit 1);
  let dense =
    if not with_dense then None
    else begin
      let (d_out, d_piv), d_ns =
        time (fun () -> Pc_lp.Dense_tableau.solve_stats p)
      in
      (match d_out with
      | Pc_lp.Simplex.Optimal _ -> ()
      | _ ->
          Printf.eprintf "FATAL: fig8 dense-tableau solve (%d cells) not Optimal\n"
            cells;
          exit 1);
      Some (d_ns, d_piv)
    end
  in
  { f8_cells = cells; f8_sparse_ns = s_ns; f8_sparse_pivots = s_piv; f8_dense = dense }

(* dense runs at the 10x and 30x points; at 100x a single dense pivot
   sweeps a 200k-column tableau row set, which is exactly the cost the
   rework removes — recorded as null rather than burning CI minutes *)
let fig8_sizes = [ (20_000, true); (60_000, true); (200_000, false) ]

let micro_tests () =
  let open Bechamel in
  (* simplex: the paper's worked-example LP shape *)
  let lp_problem =
    let open Pc_lp.Simplex in
    {
      n_vars = 2;
      maximize = true;
      objective = [ (0, 129.99); (1, 149.99) ];
      constraints =
        [
          c_ge [ (0, 1.) ] 50.;
          c_le [ (0, 1.) ] 100.;
          c_ge [ (0, 1.); (1, 1.) ] 75.;
          c_le [ (0, 1.); (1, 1.) ] 125.;
        ];
      var_bounds = [];
    }
  in
  let milp_problem =
    let open Pc_lp.Simplex in
    {
      n_vars = 3;
      maximize = true;
      objective = [ (0, 5.); (1, 4.); (2, 3.) ];
      constraints =
        [
          c_le [ (0, 2.); (1, 3.); (2, 1.) ] 5.;
          c_le [ (0, 4.); (1, 1.); (2, 2.) ] 11.;
          c_le [ (0, 3.); (1, 4.); (2, 2.) ] 8.;
        ];
      var_bounds = [];
    }
  in
  let set = overlapping_set () in
  let set100 = overlapping_set_n 100 in
  let set1000 = overlapping_set_n 1000 in
  let milp_interval = milp_interval_problem in
  let missing = Pc_synth.Sensor.generate (Pc_util.Rng.create 3) ~rows:5_000 in
  let disjoint_set =
    Pc_core.Pc_set.make
      (Pc_core.Generate.corr_partition missing ~attrs:[ "device"; "time" ] ~n:500 ())
  in
  ignore (Pc_core.Pc_set.is_disjoint disjoint_set);
  let sat_cnf =
    let open Pc_predicate in
    Cnf.of_pred [ Atom.between "x" 0. 50. ]
    |> Cnf.conj (Cnf.of_neg_pred [ Atom.between "x" 10. 20. ])
    |> Cnf.conj (Cnf.of_neg_pred [ Atom.between "x" 30. 40. ])
  in
  let query = Pc_query.Query.sum "light" in
  [
    Test.make ~name:"simplex.solve (paper 4.4 shape)"
      (Staged.stage (fun () -> ignore (Pc_lp.Simplex.solve lp_problem)));
    Test.make ~name:"milp.solve (3-var knapsack)"
      (Staged.stage (fun () -> ignore (Pc_milp.Milp.solve milp_problem)));
    Test.make ~name:"milp.solve warm (6-var interval)"
      (Staged.stage (fun () ->
           ignore (Pc_milp.Milp.solve ~warm:true milp_interval)));
    Test.make ~name:"milp.solve cold (6-var interval)"
      (Staged.stage (fun () ->
           ignore (Pc_milp.Milp.solve ~warm:false milp_interval)));
    Test.make ~name:"sat.check (3-clause cell expr)"
      (Staged.stage (fun () -> ignore (Pc_predicate.Sat.check sat_cnf)));
    Test.make ~name:"cells.decompose (10 overlapping PCs)"
      (Staged.stage (fun () ->
           ignore (Pc_core.Cells.decompose ~strategy:Pc_core.Cells.Dfs_rewrite set)));
    Test.make ~name:"cells.decompose_fdd (10 overlapping PCs)"
      (Staged.stage (fun () ->
           ignore (Pc_core.Cells.decompose ~strategy:Pc_core.Cells.Fdd set)));
    Test.make ~name:"cells.decompose_fdd (100 overlapping PCs)"
      (Staged.stage (fun () ->
           ignore (Pc_core.Cells.decompose ~strategy:Pc_core.Cells.Fdd set100)));
    Test.make ~name:"cells.decompose_fdd (1000 overlapping PCs)"
      (Staged.stage (fun () ->
           ignore (Pc_core.Cells.decompose ~strategy:Pc_core.Cells.Fdd set1000)));
    Test.make ~name:"bounds.greedy (500 disjoint PCs, SUM)"
      (Staged.stage (fun () -> ignore (Pc_core.Bounds.bound disjoint_set query)));
  ]

(* ns/run estimates, in test declaration order *)
let run_micro () =
  let open Bechamel in
  let open Toolkit in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 200) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Instance.monotonic_clock results
  in
  List.concat_map
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.fold
        (fun name ols acc ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> (name, Some est) :: acc
          | Some _ | None -> (name, None) :: acc)
        results [])
    (micro_tests ())

let micro_benchmarks () =
  Pc_workload.Report.section "Micro-benchmarks (bechamel, monotonic clock)";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "  %-42s %12.1f ns/run\n" name est
      | None -> Printf.printf "  %-42s (no estimate)\n" name)
    (run_micro ())

(* ------------------------------------------------------------------ *)
(* Incremental rebound vs full recompute (streaming-ingestion micro)   *)
(* ------------------------------------------------------------------ *)

type incr_micro = {
  im_pcs : int;
  im_cells : int;
  im_rebound_ns : float;
  im_recompute_ns : float;
  im_speedup : float;
  im_agree : bool;
}

(* The ingestion hot loop in isolation: a 1-row append to a >=500-cell
   overlapping dataset, re-bounded by the warm engine (dual-simplex
   repair from the previous basis, pure bound changes) versus the full
   path (FDD decomposition + cold LP) on the equivalent residual set.
   The append/retract alternation keeps the consumption vector
   stationary across timing iterations. *)
let incremental_micro () =
  let n = 300 in
  let set = overlapping_set_n n in
  let fdd =
    Pc_predicate.Fdd.compile
      (Array.of_list
         (List.map
            (fun (pc : Pc_core.Pc.t) -> pc.Pc_core.Pc.pred)
            (Pc_core.Pc_set.pcs set)))
  in
  let query = Pc_query.Query.sum "v" in
  let eng =
    match Pc_core.Incremental.create ~fdd set query with
    | Some e -> e
    | None ->
        Printf.eprintf "FATAL: incremental engine out of scope on its micro\n";
        exit 1
  in
  let cells = Pc_core.Incremental.n_cells eng in
  let consumed = Array.make n 0 in
  (* prime the basis: the engine's first rebound is its cold solve *)
  ignore (Pc_core.Incremental.rebound eng ~consumed);
  (* the appended row's active set: any inhabited cell's PC cover *)
  let actives =
    match List.find_opt (fun ids -> ids <> []) (Pc_predicate.Fdd.cells fdd) with
    | Some ids -> ids
    | None ->
        Printf.eprintf "FATAL: ingest micro found no covered cell\n";
        exit 1
  in
  let iters = 20 in
  let warm_answers = ref [] in
  let t_warm = ref 0. in
  for i = 1 to iters do
    let v = if i mod 2 = 1 then 1 else 0 in
    List.iter (fun j -> consumed.(j) <- v) actives;
    let t0 = Clock.now () in
    (match Pc_core.Incremental.rebound eng ~consumed with
    | Some a ->
        t_warm := !t_warm +. Clock.elapsed_s ~since:t0;
        warm_answers := a :: !warm_answers
    | None ->
        Printf.eprintf "FATAL: incremental rebound starved on its micro\n";
        exit 1)
  done;
  let residual v =
    Pc_core.Pc_set.make
      (List.mapi
         (fun j (pc : Pc_core.Pc.t) ->
           if v = 1 && List.mem j actives then
             Pc_core.Pc.make ~name:pc.Pc_core.Pc.name ~pred:pc.Pc_core.Pc.pred
               ~values:pc.Pc_core.Pc.values
               ~freq:
                 (max 0 (pc.Pc_core.Pc.freq_lo - 1), max 0 (pc.Pc_core.Pc.freq_hi - 1))
               ()
           else pc)
         (Pc_core.Pc_set.pcs set))
  in
  let opts =
    { Pc_core.Bounds.default_opts with Pc_core.Bounds.strategy = Pc_core.Cells.Fdd }
  in
  let cold_answers = ref [] in
  let t_cold = ref 0. in
  for i = 1 to iters do
    let v = if i mod 2 = 1 then 1 else 0 in
    let rset = residual v in
    let t0 = Clock.now () in
    let o = Pc_core.Bounds.bound_budgeted ~opts ~fdd rset query in
    t_cold := !t_cold +. Clock.elapsed_s ~since:t0;
    cold_answers := o.Pc_core.Bounds.answer :: !cold_answers
  done;
  let close a b =
    Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
  in
  let agree =
    List.for_all2
      (fun w c ->
        match (w, c) with
        | Pc_core.Bounds.Range rw, Pc_core.Bounds.Range rc ->
            close rw.Pc_core.Range.lo rc.Pc_core.Range.lo
            && close rw.Pc_core.Range.hi rc.Pc_core.Range.hi
        | a, b -> a = b)
      !warm_answers !cold_answers
  in
  let rebound_ns = !t_warm /. float_of_int iters *. 1e9 in
  let recompute_ns = !t_cold /. float_of_int iters *. 1e9 in
  {
    im_pcs = n;
    im_cells = cells;
    im_rebound_ns = rebound_ns;
    im_recompute_ns = recompute_ns;
    im_speedup = recompute_ns /. Float.max 1e-9 rebound_ns;
    im_agree = agree;
  }

(* ------------------------------------------------------------------ *)
(* Machine-readable baseline (BENCH_decompose.json)                    *)
(* ------------------------------------------------------------------ *)

(* The end-to-end probe: a PC baseline answering a query workload about
   synthetic sensor data — the per-query unit Pc_workload.Runner maps in
   parallel. Kept small so the CI smoke run stays cheap. *)
let end_to_end_wall ~jobs ~queries ~rows =
  Pc_par.Pool.set_default_jobs jobs;
  let missing = Pc_synth.Sensor.generate (Pc_util.Rng.create 3) ~rows in
  let set =
    Pc_core.Pc_set.make
      (Pc_core.Generate.corr_partition missing ~attrs:[ "device"; "time" ] ~n:50 ())
  in
  let qs =
    Pc_workload.Querygen.random_queries (Pc_util.Rng.create 11) missing
      ~attrs:[ "device"; "time" ] ~agg:(Pc_workload.Querygen.Sum "light")
      ~n:queries
  in
  let b = Pc_workload.Runner.of_pc_set "PC" set in
  let t0 = Clock.now () in
  let outs = Pc_workload.Runner.outcomes b ~missing ~queries:qs in
  let wall = Clock.elapsed_s ~since:t0 in
  Pc_par.Pool.set_default_jobs 1;
  (wall, outs)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let decompose_schema_version = 6
let serve_schema_version = 4

(* The "schema_version" an existing baseline file carries, or None when
   the file is missing/unreadable/unversioned. A cheap textual scan, not
   a JSON parse — the field is always a bare integer near the top. *)
let file_schema_version path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let s =
            really_input_string ic (min (in_channel_length ic) 4096)
          in
          let key = "\"schema_version\":" in
          let klen = String.length key in
          let rec find i =
            if i + klen > String.length s then None
            else if String.sub s i klen = key then Some (i + klen)
            else find (i + 1)
          in
          match find 0 with
          | None -> None
          | Some i ->
              let i = ref i in
              while
                !i < String.length s && (s.[!i] = ' ' || s.[!i] = '\t')
              do
                incr i
              done;
              let start = !i in
              while !i < String.length s && s.[!i] >= '0' && s.[!i] <= '9' do
                incr i
              done;
              if !i = start then None
              else int_of_string_opt (String.sub s start (!i - start)))

(* A baseline file from a *newer* schema must not be clobbered by an
   older binary — that silently downgrades the committed reference the
   CI bench gate diffs against. Same-or-older schemas are fair game. *)
let guard_schema ~writes path =
  match file_schema_version path with
  | Some v when v > writes ->
      Printf.eprintf
        "FATAL: %s carries schema v%d, newer than the v%d this binary \
         writes; refusing to overwrite (rebuild bench from the matching \
         checkout)\n"
        path v writes;
      exit 1
  | _ -> ()

let write_baseline ~queries ~rows path =
  guard_schema ~writes:decompose_schema_version path;
  Printf.printf "writing %s (schema v%d)\n%!" path decompose_schema_version;
  Printf.printf "measuring micro-benchmarks...\n%!";
  let micro = run_micro () in
  Printf.printf "measuring milp.solve pivot counts (warm vs cold)...\n%!";
  let warm_pivots, cold_pivots = milp_pivot_counts milp_interval_problem in
  let warm_starts =
    let module C = Pc_obs.Registry.Counter in
    C.get (C.make "lp.warm_starts")
  in
  let total_lp_pivots =
    let module C = Pc_obs.Registry.Counter in
    C.get (C.make "lp.pivots")
  in
  let set = overlapping_set () in
  Pc_predicate.Sat.reset_calls ();
  let dfs_cells, stats =
    Pc_core.Cells.decompose ~strategy:Pc_core.Cells.Dfs_rewrite set
  in
  (* fdd cross-check: same cell set as the SAT-probed DFS, zero probes *)
  let fdd_cells, fdd_stats =
    Pc_core.Cells.decompose ~strategy:Pc_core.Cells.Fdd set
  in
  let fdd_matches =
    let norm cells =
      List.sort compare (List.map (fun c -> c.Pc_core.Cells.active) cells)
    in
    norm dfs_cells = norm fdd_cells
  in
  (* the --jobs clamp policy, recorded so a 1-core CI run of this file
     explains its own speedup_jobs4_over_jobs1 ~ 1.0 *)
  let jp_requested = 4 in
  let jp_probe = Pc_par.Pool.create ~jobs:jp_requested in
  let jp_effective = Pc_par.Pool.effective_jobs jp_probe in
  Pc_par.Pool.shutdown jp_probe;
  Printf.printf "measuring end-to-end workload (jobs=1, jobs=4)...\n%!";
  let wall1, outs1 = end_to_end_wall ~jobs:1 ~queries ~rows in
  let wall4, outs4 = end_to_end_wall ~jobs:4 ~queries ~rows in
  let identical = outs1 = outs4 in
  (* Traced probe of the same workload, run *after* every untraced timing
     above so span recording cannot leak into them. The per-phase totals
     show where end-to-end time goes (schema v2 field). *)
  Printf.printf "measuring per-phase span totals (traced probe)...\n%!";
  Pc_obs.Trace.set_enabled true;
  Pc_obs.Trace.reset ();
  ignore (end_to_end_wall ~jobs:1 ~queries:(min queries 20) ~rows);
  Pc_obs.Trace.set_enabled false;
  let phase_totals = Pc_obs.Trace.totals_by_name () in
  Printf.printf
    "measuring fig8 disjoint-partition scaling (dense vs revised simplex)...\n%!";
  let fig8 =
    List.map (fun (cells, with_dense) -> fig8_run ~cells ~with_dense) fig8_sizes
  in
  Printf.printf
    "measuring incremental rebound vs full recompute (ingest micro)...\n%!";
  let im = incremental_micro () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let p fmt = Printf.fprintf oc fmt in
      p "{\n";
      p "  \"benchmark\": \"BENCH_decompose\",\n";
      p "  \"schema_version\": %d,\n" decompose_schema_version;
      p "  \"pre_pr_reference\": { \"cells.decompose (10 overlapping PCs)\": 78755.4, \"cells.decompose_fdd (10 overlapping PCs)\": 31600.0 },\n";
      p "  \"micro_ns_per_run\": {\n";
      let n = List.length micro in
      List.iteri
        (fun i (name, est) ->
          p "    \"%s\": %s%s\n" (json_escape name)
            (match est with Some e -> Printf.sprintf "%.1f" e | None -> "null")
            (if i = n - 1 then "" else ","))
        micro;
      p "  },\n";
      p "  \"decompose_dfs_rewrite\": { \"cells\": %d, \"sat_calls\": %d, \"atom_ops\": %d },\n"
        stats.Pc_core.Cells.n_cells stats.Pc_core.Cells.sat_calls
        stats.Pc_core.Cells.atom_ops;
      (* schema v4: the fdd strategy's cell count, its zero SAT-call
         contract, and a hard cross-check against the dfs-rewrite cells *)
      p "  \"decompose_fdd\": { \"cells\": %d, \"sat_calls\": %d, \"matches_dfs_rewrite\": %b },\n"
        fdd_stats.Pc_core.Cells.n_cells fdd_stats.Pc_core.Cells.sat_calls
        fdd_matches;
      p "  \"jobs_policy\": { \"requested\": %d, \"effective\": %d, \"available_cores\": %d, \"chunk_threshold\": %d, \"reason\": \"%s\" },\n"
        jp_requested jp_effective
        (Pc_par.Pool.available_cores ())
        Pc_par.Pool.chunk_threshold
        (if jp_effective < jp_requested then
           "requested jobs clamped to available cores; batches under \
            chunk_threshold x effective items run sequentially"
         else "requested jobs within available cores");
      (* schema v3: lp.pivots cost of one warm vs one cold MILP solve of
         the 6-var interval micro, plus cumulative warm-start evidence *)
      p "  \"milp_solve_pivots\": { \"warm\": %d, \"cold\": %d, \"cold_over_warm\": %.2f },\n"
        warm_pivots cold_pivots
        (float_of_int cold_pivots /. float_of_int (max 1 warm_pivots));
      p "  \"lp_pivots_total\": %d,\n" total_lp_pivots;
      p "  \"lp_warm_starts\": %d,\n" warm_starts;
      (* schema v5: the Fig. 8 disjoint-partition scaling micro — wall
         time and pivot counts of the revised simplex against the
         retained dense tableau, per size; dense entries are null above
         its reach *)
      p "  \"fig8_simplex_scaling\": {\n";
      p "    \"paper_max_partitions\": 2000,\n";
      p "    \"sizes\": [\n";
      let nf = List.length fig8 in
      List.iteri
        (fun i f ->
          let s_npp =
            f.f8_sparse_ns /. float_of_int (max 1 f.f8_sparse_pivots)
          in
          (match f.f8_dense with
          | Some (d_ns, d_piv) ->
              let d_npp = d_ns /. float_of_int (max 1 d_piv) in
              p
                "      { \"cells\": %d, \"sparse_ns\": %.0f, \
                 \"sparse_pivots\": %d, \"sparse_ns_per_pivot\": %.1f, \
                 \"dense_ns\": %.0f, \"dense_pivots\": %d, \
                 \"dense_ns_per_pivot\": %.1f, \
                 \"sparse_beats_dense_per_pivot\": %b }"
                f.f8_cells f.f8_sparse_ns f.f8_sparse_pivots s_npp d_ns d_piv
                d_npp (s_npp < d_npp)
          | None ->
              p
                "      { \"cells\": %d, \"sparse_ns\": %.0f, \
                 \"sparse_pivots\": %d, \"sparse_ns_per_pivot\": %.1f, \
                 \"dense_ns\": null, \"dense_pivots\": null, \
                 \"dense_ns_per_pivot\": null, \
                 \"sparse_beats_dense_per_pivot\": null }"
                f.f8_cells f.f8_sparse_ns f.f8_sparse_pivots s_npp);
          p "%s\n" (if i = nf - 1 then "" else ","))
        fig8;
      p "    ]\n";
      p "  },\n";
      (* schema v6: the streaming-ingestion micro — a 1-row append
         re-bounded by the warm engine versus a full recompute of the
         equivalent residual set, on a >=500-cell overlapping dataset *)
      p
        "  \"incremental_rebound\": { \"pcs\": %d, \"cells\": %d, \
         \"rebound_ns\": %.0f, \"recompute_ns\": %.0f, \"speedup\": %.2f, \
         \"answers_agree\": %b },\n"
        im.im_pcs im.im_cells im.im_rebound_ns im.im_recompute_ns
        im.im_speedup im.im_agree;
      p "  \"phase_totals_ns\": {\n";
      let np = List.length phase_totals in
      List.iteri
        (fun i (name, count, total_ns) ->
          p "    \"%s\": { \"count\": %d, \"total_ns\": %Ld }%s\n"
            (json_escape name) count total_ns
            (if i = np - 1 then "" else ","))
        phase_totals;
      p "  },\n";
      p "  \"end_to_end_bound\": {\n";
      p "    \"queries\": %d,\n" queries;
      p "    \"jobs1_wall_s\": %.4f,\n" wall1;
      p "    \"jobs4_wall_s\": %.4f,\n" wall4;
      p "    \"speedup_jobs4_over_jobs1\": %.2f,\n" (wall1 /. Float.max 1e-9 wall4);
      p "    \"bounds_identical\": %b,\n" identical;
      p "    \"available_cores\": %d\n" (Domain.recommended_domain_count ());
      p "  }\n";
      p "}\n");
  Printf.printf "wrote %s\n" path;
  if not identical then begin
    Printf.eprintf "FATAL: --jobs 4 changed the workload outcomes\n";
    exit 1
  end;
  if warm_starts = 0 then begin
    Printf.eprintf "FATAL: warm path never engaged (lp.warm_starts = 0)\n";
    exit 1
  end;
  if not fdd_matches then begin
    Printf.eprintf "FATAL: fdd decomposition disagrees with dfs-rewrite\n";
    exit 1
  end;
  (* the ingestion tentpole's reason to exist: a 1-row append must
     re-bound at least 5x faster than the full recompute, on a dataset
     big enough (>=500 cells) for the comparison to mean anything *)
  if im.im_cells < 500 then begin
    Printf.eprintf "FATAL: ingest micro ran on %d cells (< 500)\n" im.im_cells;
    exit 1
  end;
  if not im.im_agree then begin
    Printf.eprintf
      "FATAL: incremental rebound disagrees with the full recompute\n";
    exit 1
  end;
  if im.im_speedup < 5. then begin
    Printf.eprintf
      "FATAL: incremental rebound speedup %.2fx is under the 5x floor\n"
      im.im_speedup;
    exit 1
  end;
  (* the rework's reason to exist: pivot-weighted time must favor the
     revised simplex at every size the dense tableau can still handle *)
  List.iter
    (fun f ->
      match f.f8_dense with
      | None -> ()
      | Some (d_ns, d_piv) ->
          let s_npp =
            f.f8_sparse_ns /. float_of_int (max 1 f.f8_sparse_pivots)
          in
          let d_npp = d_ns /. float_of_int (max 1 d_piv) in
          if s_npp >= d_npp then begin
            Printf.eprintf
              "FATAL: fig8 %d cells: revised simplex %.1f ns/pivot is not \
               under dense %.1f ns/pivot\n"
              f.f8_cells s_npp d_npp;
            exit 1
          end)
    fig8

(* ------------------------------------------------------------------ *)
(* Closed-loop server load generator (BENCH_serve.json)                *)
(* ------------------------------------------------------------------ *)

(* N clients in a closed loop against an in-process `pcda serve` engine:
   each sends a bound request, waits for the reply, thinks, repeats.
   Latency is measured around the request only (think time excluded);
   qps is end-to-end completed requests over wall clock, the closed-loop
   convention. Schema documented in DESIGN.md, "Serving, admission
   control & fault injection". *)
let serve_baseline ~clients ~requests ~think_ms ~max_inflight path =
  guard_schema ~writes:serve_schema_version path;
  Printf.printf "writing %s (schema v%d)\n%!" path serve_schema_version;
  let module S = Pc_server.Server in
  let module C = Pc_server.Client in
  let module J = Pc_obs.Json in
  let module Counter = Pc_obs.Registry.Counter in
  let c_hits = Counter.make "cache.hits" in
  let c_misses = Counter.make "cache.misses" in
  let missing = Pc_synth.Sensor.generate (Pc_util.Rng.create 3) ~rows:2_000 in
  (* Partition on the integer device attribute only: [to_dsl] rounds
     float boundaries, so a float-bucketed partition (e.g. on [time])
     does not round-trip disjoint through the [load] op and decomposing
     the resulting accidentally-overlapping 50-PC set blows up
     exponentially. Integer boundaries survive the round trip. *)
  let pcs =
    Pc_core.Generate.corr_partition missing ~attrs:[ "device" ] ~n:50 ()
  in
  let text =
    String.concat "\n" (List.map Pc_parse.Pc_parser.to_dsl pcs) ^ "\n"
  in
  let queries =
    [|
      "SELECT COUNT(*)";
      "SELECT SUM(light)";
      "SELECT AVG(light)";
      "SELECT MIN(light)";
      "SELECT MAX(light)";
    |]
  in
  (* One live-telemetry sample: the server's own 1 s window, as the
     [telemetry] op reports it. *)
  let jnum v names =
    let rec get v = function
      | [] -> J.to_num v
      | n :: rest -> Option.bind (J.member n v) (fun v -> get v rest)
    in
    Option.value (get v names) ~default:0.
  in
  (* One closed-loop phase against a fresh in-process server. The 5
     queries cycle, so every query repeats many times per phase — the
     cached phase answers the repeats from the bound cache; the nocache
     phase recomputes each one. A sampler thread polls the [telemetry]
     op mid-load (the windowed series in the artifact), with one
     guaranteed post-load sample so the series is never empty even for
     sub-window phases. *)
  let drive ~cache =
    Printf.printf
      "driving in-process server (cache=%b): %d clients x %d requests, \
       think %.1f ms...\n%!"
      cache clients requests think_ms;
    let hits0 = Counter.get c_hits and misses0 = Counter.get c_misses in
    let srv =
      S.create
        {
          S.default_config with
          S.policy = Pc_server.Admission.policy ~max_inflight ();
          cache;
        }
    in
    (match S.load_dataset srv ~name:"default" ~constraints:text () with
    | Ok _ -> ()
    | Error e ->
        Printf.eprintf "FATAL: constraint preload failed: %s\n" e;
        exit 1);
    let th = Thread.create S.run srv in
    let port = S.port srv in
    let lat_ns = Array.make (clients * requests) nan in
    let degraded = Atomic.make 0 in
    let errors = Atomic.make 0 in
    let t0 = Clock.now () in
    let samples = ref [] in
    let stop_sampler = Atomic.make false in
    let sampler =
      Thread.create
        (fun () ->
          let c = C.connect ~host:"127.0.0.1" ~port in
          let sample () =
            match C.request c {|{"op":"telemetry"}|} with
            | Some reply -> (
                match J.parse reply with
                | Ok v ->
                    let f name = jnum v [ "windows"; "1s"; name ] in
                    samples :=
                      ( Clock.elapsed_s ~since:t0,
                        f "qps",
                        f "p99_ns",
                        f "error_rate",
                        f "degraded_fraction",
                        f "cache_hit_rate",
                        int_of_float (f "n") )
                      :: !samples
                | Error _ -> ())
            | None -> ()
          in
          while not (Atomic.get stop_sampler) do
            sample ();
            Thread.delay 0.1
          done;
          (* guaranteed post-load sample: wait out the 0.25 s slot
             boundary first so the burst's final slot is complete and
             visible to the window (in-progress slots are excluded) *)
          Thread.delay 0.3;
          sample ();
          C.close c)
        ()
    in
    let worker w =
      Thread.create
        (fun () ->
          let c = C.connect ~host:"127.0.0.1" ~port in
          for i = 0 to requests - 1 do
            let q = queries.((w + i) mod Array.length queries) in
            let line = Printf.sprintf {|{"op":"bound","query":"%s"}|} q in
            let r0 = Clock.now_ns () in
            (match C.request c line with
            | Some reply -> (
                lat_ns.((w * requests) + i) <-
                  Int64.to_float (Int64.sub (Clock.now_ns ()) r0);
                match J.parse reply with
                | Ok v -> (
                    (match J.member "degraded" v with
                    | Some (J.Bool true) -> Atomic.incr degraded
                    | _ -> ());
                    match J.member "ok" v with
                    | Some (J.Bool true) -> ()
                    | _ -> Atomic.incr errors)
                | Error _ -> Atomic.incr errors)
            | None -> Atomic.incr errors);
            if think_ms > 0. then Thread.delay (think_ms /. 1e3)
          done;
          C.close c)
        ()
    in
    let threads = List.init clients worker in
    List.iter Thread.join threads;
    let wall = Clock.elapsed_s ~since:t0 in
    Atomic.set stop_sampler true;
    Thread.join sampler;
    S.initiate_drain srv;
    Thread.join th;
    let completed =
      Array.to_list lat_ns |> List.filter (fun x -> not (Float.is_nan x))
    in
    let sorted = Array.of_list (List.sort compare completed) in
    let n = Array.length sorted in
    if n = 0 then begin
      Printf.eprintf "FATAL: no request completed\n";
      exit 1
    end;
    if Atomic.get errors > 0 then begin
      Printf.eprintf "FATAL: %d requests failed (cache=%b)\n"
        (Atomic.get errors) cache;
      exit 1
    end;
    let series = List.rev !samples in
    if series = [] then begin
      Printf.eprintf "FATAL: telemetry sampler collected no samples\n";
      exit 1
    end;
    let pct q = sorted.(min (n - 1) (int_of_float (q *. float_of_int n))) in
    ( wall,
      n,
      float_of_int n /. Float.max 1e-9 wall,
      pct 0.50,
      pct 0.99,
      float_of_int (Atomic.get degraded) /. float_of_int (clients * requests),
      Counter.get c_hits - hits0,
      Counter.get c_misses - misses0,
      series )
  in
  let phase_json oc name
      (wall, n, qps, p50, p99, degraded_frac, hits, misses, series) =
    let p fmt = Printf.fprintf oc fmt in
    p "  \"%s\": {\n" name;
    p "    \"completed\": %d,\n" n;
    p "    \"errors\": 0,\n" (* drive exits fatally on any error *);
    p "    \"wall_s\": %.4f,\n" wall;
    p "    \"qps\": %.1f,\n" qps;
    p "    \"p50_ns\": %.0f,\n" p50;
    p "    \"p99_ns\": %.0f,\n" p99;
    p "    \"degraded_fraction\": %.4f,\n" degraded_frac;
    p "    \"cache_hits\": %d,\n" hits;
    p "    \"cache_misses\": %d,\n" misses;
    (* the live windowed series, sampled from the server's telemetry op
       mid-load (1 s window); the last sample is always post-load *)
    p "    \"telemetry_1s\": [";
    List.iteri
      (fun i (t, sq, sp99, serr, sdeg, shit, sn) ->
        if i > 0 then p ",";
        p
          "\n      {\"t_s\": %.3f, \"qps\": %.1f, \"p99_ns\": %.0f, \
           \"error_rate\": %.4f, \"degraded_fraction\": %.4f, \
           \"cache_hit_rate\": %.4f, \"n\": %d}"
          t sq sp99 serr sdeg shit sn)
      series;
    p "\n    ],\n";
    (* agreement: the best-covered sample (max window n) versus what the
       clients measured end-to-end over the phase. The windowed stats
       that are well-defined for a sub-window burst — request count,
       degraded fraction, cache hit rate — must agree; qps is reported
       too but its ratio is ~wall/window for bursts shorter than the
       1 s window (the window divides by its span, not the burst). *)
    let best =
      List.fold_left
        (fun acc ((_, _, _, _, _, _, sn) as s) ->
          match acc with
          | Some (_, _, _, _, _, _, bn) when bn >= sn -> acc
          | _ -> Some s)
        None series
    in
    let bq, bdeg, bhit, bn =
      match best with
      | Some (_, q, _, _, d, h, sn) -> (q, d, h, sn)
      | None -> (0., 0., 0., 0)
    in
    let client_hit_rate =
      if hits + misses = 0 then 0.
      else float_of_int hits /. float_of_int (hits + misses)
    in
    p
      "    \"agreement\": {\"server_window_n\": %d, \"client_completed\": \
       %d, \"count_ratio\": %.3f, \"server_window_qps\": %.1f, \
       \"client_qps\": %.1f, \"qps_ratio\": %.3f, \
       \"server_degraded_fraction\": %.4f, \"client_degraded_fraction\": \
       %.4f, \"server_cache_hit_rate\": %.4f, \"client_cache_hit_rate\": \
       %.4f}\n"
      bn n
      (float_of_int bn /. Float.max 1. (float_of_int n))
      bq qps
      (bq /. Float.max 1e-9 qps)
      bdeg degraded_frac bhit client_hit_rate;
    p "  }"
  in
  (* The ingest phase: clients run selective bound queries while an
     ingester thread appends batches that only touch the low-device
     region. Delta-scoped invalidation must keep the untouched queries'
     cached replies alive — the phase fails if no hit lands while
     batches are streaming in. *)
  let c_incr = Counter.make "ingest.incremental_bounds" in
  let drive_ingest ~batches ~rows_per_batch =
    Printf.printf
      "driving in-process server (ingest): %d clients x %d requests + %d \
       append batches x %d rows...\n%!"
      clients requests batches rows_per_batch;
    let hits0 = Counter.get c_hits and misses0 = Counter.get c_misses in
    let incr0 = Counter.get c_incr in
    let srv =
      S.create
        {
          S.default_config with
          S.policy = Pc_server.Admission.policy ~max_inflight ();
          cache = true;
        }
    in
    (match S.load_dataset srv ~name:"default" ~constraints:text () with
    | Ok _ -> ()
    | Error e ->
        Printf.eprintf "FATAL: constraint preload failed: %s\n" e;
        exit 1);
    let th = Thread.create S.run srv in
    let port = S.port srv in
    (* two query families: the >= ones never see an appended row or a
       touched PC (they survive every batch); the <= ones are evicted by
       each batch and recomputed *)
    let iqueries =
      [|
        "SELECT COUNT(*) WHERE device >= 30";
        "SELECT SUM(light) WHERE device >= 30";
        "SELECT COUNT(*) WHERE device >= 40";
        "SELECT SUM(light) WHERE device >= 40";
        "SELECT COUNT(*) WHERE device <= 5";
        "SELECT SUM(light) WHERE device <= 5";
      |]
    in
    let lat_ns = Array.make (clients * requests) nan in
    let errors = Atomic.make 0 in
    let ingest_errors = Atomic.make 0 in
    let evicted = Atomic.make 0 in
    let appended = Atomic.make 0 in
    let ingest_wall = ref 0. in
    let t0 = Clock.now () in
    let ingester =
      Thread.create
        (fun () ->
          let c = C.connect ~host:"127.0.0.1" ~port in
          let ti0 = Clock.now () in
          for b = 0 to batches - 1 do
            let buf = Buffer.create 512 in
            Buffer.add_string buf "device,time,light\n";
            for r = 0 to rows_per_batch - 1 do
              Buffer.add_string buf
                (Printf.sprintf "%d,%d.0,%d.0\n"
                   ((b + r) mod 6)
                   ((b * 1000) + r)
                   (50 + r))
            done;
            let line =
              J.to_string
                (J.Obj
                   [
                     ("op", J.Str "append");
                     ("csv", J.Str (Buffer.contents buf));
                   ])
            in
            (match C.request c line with
            | Some reply -> (
                match J.parse reply with
                | Ok v when J.member "ok" v = Some (J.Bool true) ->
                    ignore (Atomic.fetch_and_add appended rows_per_batch);
                    ignore
                      (Atomic.fetch_and_add evicted
                         (int_of_float (jnum v [ "cache_evicted" ])))
                | Ok _ | Error _ -> Atomic.incr ingest_errors)
            | None -> Atomic.incr ingest_errors);
            Thread.delay 0.005
          done;
          ingest_wall := Clock.elapsed_s ~since:ti0;
          C.close c)
        ()
    in
    let worker w =
      Thread.create
        (fun () ->
          let c = C.connect ~host:"127.0.0.1" ~port in
          for i = 0 to requests - 1 do
            let q = iqueries.((w + i) mod Array.length iqueries) in
            let line = Printf.sprintf {|{"op":"bound","query":"%s"}|} q in
            let r0 = Clock.now_ns () in
            (match C.request c line with
            | Some reply -> (
                lat_ns.((w * requests) + i) <-
                  Int64.to_float (Int64.sub (Clock.now_ns ()) r0);
                match J.parse reply with
                | Ok v -> (
                    match J.member "ok" v with
                    | Some (J.Bool true) -> ()
                    | _ -> Atomic.incr errors)
                | Error _ -> Atomic.incr errors)
            | None -> Atomic.incr errors);
            if think_ms > 0. then Thread.delay (think_ms /. 1e3)
          done;
          C.close c)
        ()
    in
    let threads = List.init clients worker in
    List.iter Thread.join threads;
    Thread.join ingester;
    let wall = Clock.elapsed_s ~since:t0 in
    S.initiate_drain srv;
    Thread.join th;
    let completed =
      Array.to_list lat_ns |> List.filter (fun x -> not (Float.is_nan x))
    in
    let sorted = Array.of_list (List.sort compare completed) in
    let n = Array.length sorted in
    if n = 0 then begin
      Printf.eprintf "FATAL: no request completed in the ingest phase\n";
      exit 1
    end;
    if Atomic.get errors > 0 then begin
      Printf.eprintf "FATAL: %d bound requests failed during ingest\n"
        (Atomic.get errors);
      exit 1
    end;
    if Atomic.get ingest_errors > 0 then begin
      Printf.eprintf "FATAL: %d append batches failed\n"
        (Atomic.get ingest_errors);
      exit 1
    end;
    let hits = Counter.get c_hits - hits0 in
    if hits = 0 then begin
      Printf.eprintf
        "FATAL: zero cache hits across append batches — delta-scoped \
         invalidation is evicting everything\n";
      exit 1
    end;
    let pct q = sorted.(min (n - 1) (int_of_float (q *. float_of_int n))) in
    ( wall,
      n,
      float_of_int n /. Float.max 1e-9 wall,
      pct 0.50,
      pct 0.99,
      hits,
      Counter.get c_misses - misses0,
      Atomic.get appended,
      !ingest_wall,
      Atomic.get evicted,
      Counter.get c_incr - incr0 )
  in
  let nocache = drive ~cache:false in
  let cached = drive ~cache:true in
  let ingest_batches = 12 and ingest_rows_per_batch = 25 in
  let ingest = drive_ingest ~batches:ingest_batches ~rows_per_batch:ingest_rows_per_batch in
  let qps_of (_, _, q, _, _, _, _, _, _) = q in
  let hits_of (_, _, _, _, _, _, h, _, _) = h in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let p fmt = Printf.fprintf oc fmt in
      p "{\n";
      p "  \"benchmark\": \"BENCH_serve\",\n";
      p "  \"schema_version\": %d,\n" serve_schema_version;
      p "  \"config\": { \"clients\": %d, \"requests_per_client\": %d, \"think_ms\": %.1f, \"max_inflight\": %d },\n"
        clients requests think_ms max_inflight;
      p "  \"total_requests_per_phase\": %d,\n" (clients * requests);
      phase_json oc "nocache" nocache;
      p ",\n";
      phase_json oc "cached" cached;
      p ",\n";
      (* schema v4: the streaming-ingestion phase — append batches
         interleaved with selective bound queries; the hit counters
         prove delta-scoped invalidation kept untouched replies alive *)
      let ( i_wall,
            i_n,
            i_qps,
            i_p50,
            i_p99,
            i_hits,
            i_misses,
            i_rows,
            i_iwall,
            i_evicted,
            i_incr ) =
        ingest
      in
      p "  \"ingest\": {\n";
      p "    \"completed\": %d,\n" i_n;
      p "    \"errors\": 0,\n";
      p "    \"wall_s\": %.4f,\n" i_wall;
      p "    \"qps\": %.1f,\n" i_qps;
      p "    \"p50_ns\": %.0f,\n" i_p50;
      p "    \"p99_ns\": %.0f,\n" i_p99;
      p "    \"cache_hits\": %d,\n" i_hits;
      p "    \"cache_misses\": %d,\n" i_misses;
      p "    \"batches\": %d,\n" ingest_batches;
      p "    \"rows\": %d,\n" i_rows;
      p "    \"ingest_wall_s\": %.4f,\n" i_iwall;
      p "    \"rows_per_s\": %.1f,\n"
        (float_of_int i_rows /. Float.max 1e-9 i_iwall);
      p "    \"cache_evicted\": %d,\n" i_evicted;
      p "    \"incremental_bounds\": %d\n" i_incr;
      p "  },\n";
      p "  \"qps_speedup_cached_over_nocache\": %.2f\n"
        (qps_of cached /. Float.max 1e-9 (qps_of nocache));
      p "}\n");
  Printf.printf "wrote %s\n" path;
  if hits_of cached = 0 then begin
    Printf.eprintf "FATAL: cached phase recorded zero cache hits\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let experiment = ref "all" in
  let scale = ref 1. in
  let queries = ref 100 in
  let seed = ref 42 in
  let jobs = ref 1 in
  let list_only = ref false in
  let baseline_out = ref None in
  let serve_out = ref None in
  let clients = ref 8 in
  let requests = ref 40 in
  let think_ms = ref 1. in
  let max_inflight = ref 64 in
  let trace_out = ref None in
  let specs =
    [
      ("-e", Arg.Set_string experiment, "EXPERIMENT id (default: all)");
      ("--experiment", Arg.Set_string experiment, "same as -e");
      ("--scale", Arg.Set_float scale, "FLOAT dataset-size multiplier (default 1.0)");
      ("--queries", Arg.Set_int queries, "INT workload size per experiment (default 100)");
      ("--seed", Arg.Set_int seed, "INT RNG seed (default 42)");
      ( "--jobs",
        Arg.Set_int jobs,
        "N worker domains for the parallel bound engine (default 1)" );
      ( "--baseline",
        Arg.String (fun s -> baseline_out := Some s),
        "FILE write the machine-readable bench baseline (JSON) and exit" );
      ( "--serve-baseline",
        Arg.String (fun s -> serve_out := Some s),
        "FILE drive the bound server with a closed-loop load and write \
         qps/latency/degradation JSON" );
      ("--clients", Arg.Set_int clients, "N concurrent load-generator clients (default 8)");
      ( "--requests",
        Arg.Set_int requests,
        "N requests per client for --serve-baseline (default 40)" );
      ( "--think",
        Arg.Set_float think_ms,
        "MS think time between closed-loop requests (default 1)" );
      ( "--max-inflight",
        Arg.Set_int max_inflight,
        "N server admission-control knob for --serve-baseline (default 64)" );
      ( "--trace",
        Arg.String (fun s -> trace_out := Some s),
        "FILE record a Chrome trace_event JSON of the run (chrome://tracing)" );
      ("--list", Arg.Set list_only, " list experiment ids and exit");
    ]
  in
  Arg.parse specs
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "Predicate-Constraints reproduction harness";
  if !list_only then begin
    List.iter (fun (id, desc, _) -> Printf.printf "%-22s %s\n" id desc) E.all;
    Printf.printf "%-22s %s\n" "micro" "bechamel micro-benchmarks of the solver stack"
  end
  else begin
    (match !trace_out with
    | None -> ()
    | Some _ ->
        Pc_obs.Trace.set_enabled true;
        Pc_obs.Trace.reset ());
    (match (!baseline_out, !serve_out) with
    | _, Some path ->
        serve_baseline ~clients:!clients ~requests:!requests
          ~think_ms:!think_ms ~max_inflight:!max_inflight path
    | Some path, None ->
        write_baseline
          ~queries:(min !queries 50)
          ~rows:(max 100 (int_of_float (2_000. *. !scale)))
          path
    | None, None ->
        let cfg =
          { E.seed = !seed; scale = !scale; queries = !queries; jobs = !jobs }
        in
        Printf.printf
          "Predicate-Constraints reproduction (seed=%d scale=%g queries=%d jobs=%d)\n"
          !seed !scale !queries !jobs;
        let run_one (id, _desc, f) =
          let t0 = Clock.now () in
          f cfg;
          Printf.printf "  [%s finished in %.1f s]\n" id (Clock.elapsed_s ~since:t0)
        in
        (match !experiment with
        | "all" ->
            List.iter run_one E.all;
            micro_benchmarks ()
        | "micro" -> micro_benchmarks ()
        | id -> (
            match List.find_opt (fun (i, _, _) -> i = id) E.all with
            | Some exp -> run_one exp
            | None ->
                Printf.eprintf "unknown experiment %S; use --list\n" id;
                exit 1)));
    match !trace_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Pc_obs.Trace.to_chrome_json ()));
        Printf.printf "trace: %d spans -> %s\n"
          (List.length (Pc_obs.Trace.spans ()))
          path
  end
