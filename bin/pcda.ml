(* pcda — predicate-constraint data analysis.

   Contingency analysis from the command line: given a CSV of the rows
   you *do* have, a file of predicate-constraints describing the rows you
   might be missing, and an aggregate query, prints the hard result range.

     pcda bound  --csv sales.csv --constraints pcs.txt \
                 --query "SELECT SUM(price) WHERE branch = 'Chicago'"
     pcda check  --csv history.csv --constraints pcs.txt
     pcda show   --constraints pcs.txt *)

open Cmdliner

(* I/O errors surface as [Failure] so every command's existing
   user-error path (one line on stderr, exit 2) covers unreadable
   paths too — cmdliner's [file] converter would reject them earlier
   but with usage noise and exit 124. *)
let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> s
  | exception Sys_error msg -> failwith msg

let read_csv path =
  try Pc_data.Csv.read_file path with Sys_error msg -> failwith msg

let constraints_arg =
  let doc = "File of predicate-constraints in the PC DSL." in
  Arg.(required & opt (some string) None & info [ "c"; "constraints" ] ~docv:"FILE" ~doc)

let csv_doc = "CSV file with the certain (observed) rows."

let csv_opt_arg =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:csv_doc)

let csv_req_arg =
  Arg.(required & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:csv_doc)

let query_arg =
  let doc =
    "Aggregate query, e.g. \"SELECT SUM(price) WHERE branch = 'Chicago'\"."
  in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"SQL" ~doc)

let missing_only_arg =
  let doc = "Bound the missing rows only (skip the certain partition)." in
  Arg.(value & flag & info [ "missing-only" ] ~doc)

let group_by_arg =
  let doc = "Also break the result down per value of this categorical attribute." in
  Arg.(value & opt (some string) None & info [ "group-by" ] ~docv:"ATTR" ~doc)

let strategy_arg =
  let doc =
    "Cell decomposition strategy: dfs, dfs-rewrite, fdd, naive, or early:<k>."
  in
  Arg.(value & opt string "dfs-rewrite" & info [ "strategy" ] ~docv:"S" ~doc)

let timeout_arg =
  let doc =
    "Wall-clock deadline in seconds for the bound computation. On expiry \
     the answer degrades down the soundness ladder (exact, relaxed, \
     early-stopped, trivial) instead of failing; the rung used is printed."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel bound engine (per-group and \
     per-table bounds). Results are identical to --jobs 1; see DESIGN.md \
     \"Incremental decomposition & the domain pool\"."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let budget_arg =
  let doc =
    "Resource caps as comma-separated key=N pairs; keys: cells (cell \
     decomposition), sat (satisfiability checks), nodes (branch-and-bound \
     nodes), iters (simplex pivots). Example: --budget cells=500,nodes=100. \
     Exhaustion degrades the answer like --timeout."
  in
  Arg.(value & opt (some string) None & info [ "budget" ] ~docv:"SPEC" ~doc)

let trace_arg =
  let doc =
    "Record a structured trace of the bound pipeline (decompose, SAT, \
     LP/MILP, ladder rungs) and write it to $(docv) in Chrome trace_event \
     JSON — open with chrome://tracing or https://ui.perfetto.dev."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Print the metrics registry (counters and latency histograms) after \
     the run; with $(docv), write it there as JSON instead."
  in
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Enable instrumentation *before* any solver work runs. Tracing and the
   histogram side of the registry stay off (one branch per site) unless
   asked for. *)
let setup_obs ~trace ~metrics =
  if trace <> None then begin
    Pc_obs.Trace.set_enabled true;
    Pc_obs.Trace.reset ()
  end;
  if metrics <> None then Pc_obs.Registry.set_enabled true

(* Emit the requested artifacts. Called before any early [exit] so an
   infeasible answer still produces its trace. *)
let emit_obs ~trace ~metrics ?budget () =
  (match trace with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Pc_obs.Trace.to_chrome_json ()));
      Printf.printf "trace: %d spans -> %s\n"
        (List.length (Pc_obs.Trace.spans ()))
        path);
  match metrics with
  | None -> ()
  | Some dest ->
      (match budget with
      | None -> ()
      | Some b ->
          let parts =
            List.map
              (fun (r, n) ->
                Printf.sprintf "%s=%d" (Pc_budget.Budget.resource_name r) n)
              (Pc_budget.Budget.snapshot b)
          in
          Printf.printf "budget: %s\n" (String.concat " " parts));
      if dest = "-" then print_string (Pc_obs.Registry.dump_text ())
      else begin
        let oc = open_out dest in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Pc_obs.Registry.dump_json ()));
        Printf.printf "metrics: -> %s\n" dest
      end

let parse_budget_spec ~timeout s =
  let items =
    match s with
    | None -> Ok (None, None, None, None)
    | Some s ->
        List.fold_left
          (fun acc part ->
            Result.bind acc (fun (cells, sat, nodes, iters) ->
                let part = String.trim part in
                match String.index_opt part '=' with
                | None ->
                    Error
                      (Printf.sprintf "bad budget item %S (want key=N)" part)
                | Some i -> (
                    let k = String.trim (String.sub part 0 i) in
                    let v =
                      String.trim
                        (String.sub part (i + 1) (String.length part - i - 1))
                    in
                    match int_of_string_opt v with
                    | None ->
                        Error
                          (Printf.sprintf "budget %s: %S is not an integer" k v)
                    | Some n when n < 0 ->
                        Error
                          (Printf.sprintf "budget %s: %d is negative" k n)
                    | Some n -> (
                        match k with
                        | "cells" -> Ok (Some n, sat, nodes, iters)
                        | "sat" -> Ok (cells, Some n, nodes, iters)
                        | "nodes" -> Ok (cells, sat, Some n, iters)
                        | "iters" -> Ok (cells, sat, nodes, Some n)
                        | _ -> Error (Printf.sprintf "unknown budget key %S" k)))))
          (Ok (None, None, None, None))
          (String.split_on_char ',' s)
  in
  Result.map
    (fun (cells, sat_calls, nodes, iters) ->
      Pc_budget.Budget.spec ?timeout ?cells ?sat_calls ?nodes ?iters ())
    items

let parse_strategy s =
  match String.lowercase_ascii s with
  | "dfs" -> Ok Pc_core.Cells.Dfs
  | "dfs-rewrite" -> Ok Pc_core.Cells.Dfs_rewrite
  | "fdd" -> Ok Pc_core.Cells.Fdd
  | "naive" -> Ok Pc_core.Cells.Naive
  | s when String.length s > 6 && String.sub s 0 6 = "early:" -> begin
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some k -> Ok (Pc_core.Cells.Early_stop k)
      | None -> Error (Printf.sprintf "bad early-stop depth in %S" s)
    end
  | _ -> Error (Printf.sprintf "unknown strategy %S" s)

let load_constraints path =
  try Ok (Pc_core.Pc_set.make (Pc_parse.Pc_parser.parse (read_file path)))
  with Failure msg -> Error msg

(* Error-handling contract (pinned by test/cli/pcda.t): every
   user-input error — bad path, parse error, malformed spec — is one
   line on stderr and exit 2; anything else escaping a command is a bug,
   reported as an internal error (exit 125), never an uncaught
   exception. *)
let with_errors f =
  match f () with
  | Ok () -> `Ok ()
  | Error msg ->
      Printf.eprintf "pcda: error: %s\n" msg;
      exit 2
  | exception e ->
      Printf.eprintf "pcda: internal error: %s\n" (Printexc.to_string e);
      exit 125

(* ---- bound ---- *)

let print_answer = function
  | Pc_core.Bounds.Range r ->
      Printf.printf "%s\n" (Pc_core.Range.to_string r);
      Printf.printf "  lower bound: %g%s\n" r.Pc_core.Range.lo
        (if r.Pc_core.Range.lo_exact then " (attained)" else "");
      Printf.printf "  upper bound: %g%s\n" r.Pc_core.Range.hi
        (if r.Pc_core.Range.hi_exact then " (attained)" else "")
  | Pc_core.Bounds.Empty ->
      print_endline
        "empty: no consistent missing-data instance puts a row in the query \
         region (aggregate undefined)"
  | Pc_core.Bounds.Infeasible ->
      print_endline
        "infeasible: no relation satisfies these constraints — check them \
         with `pcda check`"

let short_answer = function
  | Pc_core.Bounds.Range r -> Pc_core.Range.to_string r
  | Pc_core.Bounds.Empty -> "(empty)"
  | Pc_core.Bounds.Infeasible -> "(infeasible)"

let bound_cmd =
  let run csv constraints query missing_only strategy group_by timeout budget
      jobs trace metrics =
    with_errors (fun () ->
        let ( let* ) = Result.bind in
        if jobs > 1 then Pc_par.Pool.set_default_jobs jobs;
        setup_obs ~trace ~metrics;
        let* set = load_constraints constraints in
        let* strategy = parse_strategy strategy in
        let* query =
          try Ok (Pc_parse.Query_parser.parse query) with Failure m -> Error m
        in
        let opts = { Pc_core.Bounds.default_opts with Pc_core.Bounds.strategy } in
        let budgeted = timeout <> None || budget <> None in
        let* spec = parse_budget_spec ~timeout budget in
        let b = Pc_budget.Budget.start spec in
        let* outcome =
          try
            match (csv, missing_only) with
            | Some path, false ->
                let certain = read_csv path in
                Ok
                  (Pc_core.Bounds.bound_budgeted ~opts ~budget:b ~certain set
                     query)
            | _, _ -> Ok (Pc_core.Bounds.bound_budgeted ~opts ~budget:b set query)
          with
          | Failure m -> Error m
          | Invalid_argument m -> Error m
        in
        let answer = outcome.Pc_core.Bounds.answer in
        print_answer answer;
        if budgeted then begin
          let s = outcome.Pc_core.Bounds.stats in
          Printf.printf
            "  provenance: %s (cells=%d sat=%d nodes=%d iters=%d%s)\n"
            (Pc_core.Bounds.provenance_name s.Pc_core.Bounds.provenance)
            s.Pc_core.Bounds.cells s.Pc_core.Bounds.sat_calls
            s.Pc_core.Bounds.milp_nodes s.Pc_core.Bounds.lp_iterations
            (if s.Pc_core.Bounds.deadline_hit then ", deadline hit" else "")
        end;
        (match (group_by, csv) with
        | None, _ -> ()
        | Some _, None ->
            print_endline "(--group-by needs --csv for the group keys)"
        | Some by, Some path ->
            let certain = read_csv path in
            let result =
              Pc_core.Group_by.bound ~opts set ~certain ~by query
            in
            print_endline "per-group breakdown:";
            List.iter
              (fun (key, a) ->
                Printf.printf "  %-20s %s\n"
                  (Pc_data.Value.to_string key)
                  (short_answer a))
              result.Pc_core.Group_by.groups;
            match result.Pc_core.Group_by.residual with
            | Some a -> Printf.printf "  %-20s %s\n" "(other keys)" (short_answer a)
            | None -> ());
        emit_obs ~trace ~metrics ~budget:b ();
        (match answer with
        | Pc_core.Bounds.Infeasible ->
            (* distinct exit code so scripts can tell "constraints admit no
               relation" (3) from usage/parse errors (124) *)
            flush stdout;
            exit 3
        | Pc_core.Bounds.Range _ | Pc_core.Bounds.Empty -> ());
        Ok ())
  in
  let doc = "Compute the hard result range of an aggregate query." in
  let exits =
    Cmd.Exit.info 3 ~doc:"the constraint set is infeasible (no relation satisfies it)."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "bound" ~doc ~exits)
    Term.(
      ret
        (const run $ csv_opt_arg $ constraints_arg $ query_arg
       $ missing_only_arg $ strategy_arg $ group_by_arg $ timeout_arg
       $ budget_arg $ jobs_arg $ trace_arg $ metrics_arg))

(* ---- check ---- *)

let check_cmd =
  let run csv constraints =
    with_errors (fun () ->
        let ( let* ) = Result.bind in
        let* set = load_constraints constraints in
        let* rel =
          try Ok (read_csv csv) with Failure m -> Error m
        in
        let violations = Pc_core.Pc_set.violations rel set in
        let closed = Pc_core.Pc_set.closed_over rel set in
        if violations = [] then
          Printf.printf "all %d constraints hold on %d rows\n"
            (Pc_core.Pc_set.size set)
            (Pc_data.Relation.cardinality rel)
        else begin
          List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) violations
        end;
        if not closed then
          print_endline
            "WARNING: some rows satisfy no predicate — the set is not closed \
             over this data, so result ranges would not be guaranteed";
        if violations = [] then Ok () else Error "constraints violated")
  in
  let doc =
    "Test constraints against historical data (are they believable?)."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(ret (const run $ csv_req_arg $ constraints_arg))

(* ---- show ---- *)

let show_cmd =
  let run constraints =
    with_errors (fun () ->
        let ( let* ) = Result.bind in
        let* set = load_constraints constraints in
        List.iter
          (fun pc -> print_endline (Pc_parse.Pc_parser.to_dsl pc))
          (Pc_core.Pc_set.pcs set);
        Printf.printf "-- %d constraints, %s\n" (Pc_core.Pc_set.size set)
          (if Pc_core.Pc_set.is_disjoint set then
             "disjoint (fast greedy solving applies)"
           else "overlapping (cell decomposition applies)");
        Ok ())
  in
  let doc = "Parse, normalize and print a constraint file." in
  Cmd.v (Cmd.info "show" ~doc) Term.(ret (const run $ constraints_arg))

(* ---- generate ---- *)

let generate_cmd =
  let attrs_arg =
    let doc = "Comma-separated partition attributes." in
    Arg.(
      required
      & opt (some (list ~sep:',' string)) None
      & info [ "attrs" ] ~docv:"A,B" ~doc)
  in
  let n_arg =
    let doc = "Target number of constraints." in
    Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc)
  in
  let exact_arg =
    let doc =
      "Record exact per-bucket counts (two-sided bounds) instead of \
       at-most counts."
    in
    Arg.(value & flag & info [ "exact-counts" ] ~doc)
  in
  let out_arg =
    let doc = "Output constraint file (stdout when omitted)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run csv attrs n exact out =
    with_errors (fun () ->
        let ( let* ) = Result.bind in
        let* rel = try Ok (read_csv csv) with Failure m -> Error m in
        let* pcs =
          try
            Ok
              (Pc_core.Generate.corr_partition ~exact_counts:exact rel ~attrs ~n ())
          with
          | Invalid_argument m -> Error m
          | Not_found ->
              Error "a partition attribute is missing from the CSV schema"
        in
        let text =
          String.concat "\n" (List.map Pc_parse.Pc_parser.to_dsl pcs) ^ "\n"
        in
        (match out with
        | None -> print_string text
        | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc text);
            Printf.printf "wrote %d constraints to %s\n" (List.length pcs) path);
        Ok ())
  in
  let doc =
    "Derive equi-cardinality partition constraints (Corr-PC) from a CSV."
  in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(ret (const run $ csv_req_arg $ attrs_arg $ n_arg $ exact_arg $ out_arg))

(* ---- workload ---- *)

let workload_cmd =
  let queries_arg =
    let doc = "Number of random queries to generate." in
    Arg.(value & opt int 100 & info [ "queries" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Random seed for query generation (reproducible workloads)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let agg_arg =
    let doc = "Aggregate: count, sum:ATTR, avg:ATTR, min:ATTR or max:ATTR." in
    Arg.(value & opt string "count" & info [ "agg" ] ~docv:"AGG" ~doc)
  in
  let attrs_arg =
    let doc = "Comma-separated attributes the random predicates range over." in
    Arg.(
      required
      & opt (some (list ~sep:',' string)) None
      & info [ "attrs" ] ~docv:"A,B" ~doc)
  in
  let parse_agg s =
    let split prefix =
      let lp = String.length prefix in
      if
        String.length s > lp
        && String.lowercase_ascii (String.sub s 0 lp) = prefix
      then Some (String.sub s lp (String.length s - lp))
      else None
    in
    match String.lowercase_ascii s with
    | "count" -> Ok Pc_workload.Querygen.Count
    | _ -> (
        match
          List.find_map
            (fun (p, mk) -> Option.map mk (split p))
            [
              ("sum:", fun a -> Pc_workload.Querygen.Sum a);
              ("avg:", fun a -> Pc_workload.Querygen.Avg a);
              ("min:", fun a -> Pc_workload.Querygen.Min a);
              ("max:", fun a -> Pc_workload.Querygen.Max a);
            ]
        with
        | Some agg -> Ok agg
        | None ->
            Error
              (Printf.sprintf
                 "unknown aggregate %S (want count, sum:ATTR, avg:ATTR, \
                  min:ATTR or max:ATTR)"
                 s))
  in
  let run csv constraints n seed agg attrs timeout budget jobs metrics =
    with_errors (fun () ->
        let ( let* ) = Result.bind in
        if jobs > 1 then Pc_par.Pool.set_default_jobs jobs;
        setup_obs ~trace:None ~metrics;
        let* set = load_constraints constraints in
        let* missing =
          try Ok (read_csv csv) with Failure m -> Error m
        in
        let* agg = parse_agg agg in
        let* queries =
          try
            Ok
              (Pc_workload.Querygen.random_queries
                 (Pc_util.Rng.create seed)
                 missing ~attrs ~agg ~n)
          with Invalid_argument m | Failure m -> Error m
        in
        let* spec = parse_budget_spec ~timeout budget in
        let baseline =
          if timeout = None && budget = None then
            Pc_workload.Runner.of_pc_set "pc" set
          else Pc_workload.Runner.of_pc_set_budgeted "pc" ~spec set
        in
        let summaries =
          Pc_workload.Runner.run ~baselines:[ baseline ] ~missing ~queries
        in
        List.iter
          (fun (label, s) ->
            Printf.printf "%s %s\n" label (Pc_workload.Report.json_of_summary s))
          summaries;
        emit_obs ~trace:None ~metrics ();
        Ok ())
  in
  let doc =
    "Evaluate the constraint set on a reproducible random query workload \
     (the missing partition is the CSV; prints one JSON summary per \
     baseline: failure rate, over-estimation, degradation rungs)."
  in
  Cmd.v
    (Cmd.info "workload" ~doc)
    Term.(
      ret
        (const run $ csv_req_arg $ constraints_arg $ queries_arg $ seed_arg
       $ agg_arg $ attrs_arg $ timeout_arg $ budget_arg $ jobs_arg
       $ metrics_arg))

(* ---- explain ---- *)

let explain_cmd =
  let run constraints query =
    with_errors (fun () ->
        let ( let* ) = Result.bind in
        let* set = load_constraints constraints in
        let* query =
          try Ok (Pc_parse.Query_parser.parse query) with Failure m -> Error m
        in
        let report = Pc_core.Explain.leave_one_out set query in
        Format.printf "%a@." Pc_core.Explain.pp_report report;
        (match Pc_core.Explain.binding report with
        | [] ->
            print_endline
              "no single constraint is binding: the bound is redundantly \
               supported"
        | binding ->
            print_endline "binding constraints (most influential first):";
            List.iter
              (fun (i : Pc_core.Explain.impact) ->
                Printf.printf "  %-24s widens hi by %g / lo by %g when relaxed\n"
                  i.Pc_core.Explain.name i.Pc_core.Explain.hi_widening
                  i.Pc_core.Explain.lo_widening)
              binding);
        Ok ())
  in
  let doc = "Which constraints does a bound actually rest on?" in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(ret (const run $ constraints_arg $ query_arg))

(* ---- serve ---- *)

let host_arg =
  let doc = "Address to bind (serve) or connect to (client)." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)

let serve_cmd =
  let port_arg =
    let doc = "TCP port; 0 picks an ephemeral port (printed at startup)." in
    Arg.(value & opt int 0 & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let constraints_opt_arg =
    let doc = "Preload this constraint file as dataset \"default\"." in
    Arg.(value & opt (some string) None & info [ "c"; "constraints" ] ~docv:"FILE" ~doc)
  in
  let max_inflight_arg =
    let doc =
      "Admission-control knob: past 1/4 of this many in-flight requests \
       answers degrade to LP dual bounds, past 1/2 to early-stopped \
       decomposition, at or past it to the trivial floor. 0 disables \
       admission control."
    in
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let faults_arg =
    let doc =
      "Arm the deterministic fault-injection harness (testing only): \
       comma-separated key=V pairs; keys: seed, slow_ms, skew_s and the \
       per-site rates sat_fail, sat_slow, lp_doubt, clock_skew, sock_tear, \
       sock_close. Example: --faults seed=7,sat_fail=0.2,sock_tear=0.05."
    in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let serve_strategy_arg =
    (* the server defaults to fdd: the per-dataset diagram is compiled
       once at load and amortized across every request *)
    let doc =
      "Cell decomposition strategy: dfs, dfs-rewrite, fdd, naive, or \
       early:<k>."
    in
    Arg.(value & opt string "fdd" & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let no_cache_arg =
    let doc =
      "Disable the canonicalizing bound cache (repeat bound requests \
       recompute instead of replaying the cached reply)."
    in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let flight_arg =
    let doc =
      "Write the flight-recorder JSON (last N request records) to this \
       file at drain and whenever a reply cannot be delivered."
    in
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)
  in
  let flight_capacity_arg =
    let doc = "Flight-recorder ring capacity (records retained)." in
    Arg.(value & opt int 512 & info [ "flight-capacity" ] ~docv:"N" ~doc)
  in
  let p99_slo_arg =
    let doc =
      "Latency SLO in milliseconds: when the live windowed 1s p99 \
       exceeds it, admission sheds to cheaper ladder rungs (one rung \
       per doubling past the SLO)."
    in
    Arg.(value & opt (some float) None & info [ "p99-slo" ] ~docv:"MS" ~doc)
  in
  let run host port constraints csv strategy timeout budget max_inflight jobs
      faults no_cache flight flight_capacity p99_slo trace metrics =
    with_errors (fun () ->
        let ( let* ) = Result.bind in
        if jobs > 1 then Pc_par.Pool.set_default_jobs jobs;
        setup_obs ~trace ~metrics;
        let* strategy = parse_strategy strategy in
        let* spec = parse_budget_spec ~timeout budget in
        let* () =
          match faults with
          | None -> Ok ()
          | Some s ->
              Result.map Pc_fault.Fault.configure
                (Pc_fault.Fault.config_of_string s)
        in
        let metrics_path =
          match metrics with Some "-" -> None | m -> m
        in
        let cfg =
          {
            Pc_server.Server.default_config with
            Pc_server.Server.host;
            port;
            base_spec = spec;
            opts =
              { Pc_core.Bounds.default_opts with Pc_core.Bounds.strategy };
            policy =
              Pc_server.Admission.policy ?p99_slo_ms:p99_slo ~max_inflight ();
            trace_path = trace;
            metrics_path;
            flight_path = flight;
            flight_capacity;
            cache = not no_cache;
          }
        in
        let* srv =
          try Ok (Pc_server.Server.create cfg)
          with Unix.Unix_error (e, _, _) ->
            Error
              (Printf.sprintf "cannot bind %s:%d: %s" host port
                 (Unix.error_message e))
        in
        let* () =
          match constraints with
          | None -> Ok ()
          | Some cpath ->
              let* text =
                try Ok (read_file cpath) with Failure m -> Error m
              in
              let* csv =
                match csv with
                | None -> Ok None
                | Some p -> (
                    try Ok (Some (read_file p)) with Failure m -> Error m)
              in
              Result.map ignore
                (Pc_server.Server.load_dataset srv ~name:"default"
                   ~constraints:text ?csv ())
        in
        (* handlers go in before the banner: a supervisor that reacts to
           "listening on" with a signal must get the drain, not the
           default kill *)
        Pc_server.Server.install_signal_handlers srv;
        Printf.printf "listening on %s:%d\n%!" host (Pc_server.Server.port srv);
        Pc_server.Server.run srv;
        if metrics = Some "-" then print_string (Pc_obs.Registry.dump_text ());
        print_endline "drained";
        Ok ())
  in
  let doc =
    "Serve bound queries over a line-oriented JSON protocol (ops: ping, \
     load, bound, append, retract, stats, telemetry, shutdown; one object \
     per line). \
     Requests degrade under load per the admission policy and every reply \
     carries its provenance; the telemetry op serves live windowed SLOs, \
     a Prometheus exposition, and the flight recorder; SIGTERM/SIGINT \
     drain gracefully. See DESIGN.md, \"Serving, admission control & \
     fault injection\" and \"Live telemetry & flight recorder\"."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ host_arg $ port_arg $ constraints_opt_arg $ csv_opt_arg
       $ serve_strategy_arg $ timeout_arg $ budget_arg $ max_inflight_arg
       $ jobs_arg $ faults_arg $ no_cache_arg $ flight_arg
       $ flight_capacity_arg $ p99_slo_arg $ trace_arg $ metrics_arg))

(* ---- client ---- *)

let client_cmd =
  let port_arg =
    let doc = "Server port." in
    Arg.(required & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let run host port =
    with_errors (fun () ->
        let ( let* ) = Result.bind in
        let* c =
          try Ok (Pc_server.Client.connect ~host ~port)
          with Unix.Unix_error (e, _, _) ->
            Error
              (Printf.sprintf "cannot connect to %s:%d: %s" host port
                 (Unix.error_message e))
        in
        let rec loop () =
          match input_line stdin with
          | exception End_of_file -> Ok ()
          | line -> (
              match Pc_server.Client.request c line with
              | Some reply ->
                  print_endline reply;
                  loop ()
              | None -> Error "connection closed by server")
        in
        let result = loop () in
        Pc_server.Client.close c;
        result)
  in
  let doc =
    "Drive a running `pcda serve`: reads request lines from stdin, prints \
     one reply line each."
  in
  Cmd.v (Cmd.info "client" ~doc) Term.(ret (const run $ host_arg $ port_arg))

(* ---- ingest ---- *)

let ingest_cmd =
  let module J = Pc_obs.Json in
  let port_arg =
    let doc = "Server port." in
    Arg.(required & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let dataset_arg =
    let doc = "Target dataset name on the server." in
    Arg.(value & opt string "default" & info [ "dataset" ] ~docv:"NAME" ~doc)
  in
  let batch_rows_arg =
    let doc = "Rows per append batch (the CSV is replayed in chunks)." in
    Arg.(value & opt int 256 & info [ "batch-rows" ] ~docv:"N" ~doc)
  in
  let retract_arg =
    let doc = "Retract this batch id instead of appending (no --csv needed)." in
    Arg.(value & opt (some int) None & info [ "retract" ] ~docv:"ID" ~doc)
  in
  let jfield v name =
    Option.value (Option.bind (J.member name v) J.to_num) ~default:0.
  in
  let one_request c line =
    match Pc_server.Client.request c line with
    | None -> Error "connection closed by server"
    | Some reply -> (
        match J.parse reply with
        | Error msg -> Error ("bad reply: " ^ msg)
        | Ok v -> (
            match J.member "ok" v with
            | Some (J.Bool true) -> Ok v
            | _ -> Error ("server refused: " ^ reply)))
  in
  let run host port dataset csv batch_rows retract =
    with_errors (fun () ->
        let ( let* ) = Result.bind in
        let* c =
          try Ok (Pc_server.Client.connect ~host ~port)
          with Unix.Unix_error (e, _, _) ->
            Error
              (Printf.sprintf "cannot connect to %s:%d: %s" host port
                 (Unix.error_message e))
        in
        let result =
          match retract with
          | Some batch_id ->
              let* v =
                one_request c
                  (J.to_string
                     (J.Obj
                        [
                          ("op", J.Str "retract");
                          ("dataset", J.Str dataset);
                          ("batch", J.Num (float_of_int batch_id));
                        ]))
              in
              Printf.printf
                "retracted batch %d: %.0f rows restored, version %.0f, %.0f \
                 cached replies evicted\n"
                batch_id (jfield v "rows") (jfield v "version")
                (jfield v "cache_evicted");
              Ok ()
          | None ->
              let* path =
                match csv with
                | Some p -> Ok p
                | None -> Error "ingest: --csv is required unless --retract"
              in
              let* text = try Ok (read_file path) with Failure m -> Error m in
              let* batch_rows =
                if batch_rows >= 1 then Ok batch_rows
                else Error "ingest: --batch-rows must be at least 1"
              in
              (* chunk on raw lines under the shared header; rows with
                 quoted embedded newlines are not supported here *)
              let lines =
                String.split_on_char '\n' text
                |> List.filter (fun l -> String.trim l <> "")
              in
              let* header, rows =
                match lines with
                | [] -> Error "ingest: empty CSV"
                | h :: rows -> Ok (h, rows)
              in
              let rec chunks acc = function
                | [] -> List.rev acc
                | rows ->
                    let n = min batch_rows (List.length rows) in
                    let chunk = List.filteri (fun i _ -> i < n) rows in
                    let rest = List.filteri (fun i _ -> i >= n) rows in
                    chunks (chunk :: acc) rest
              in
              let total = List.length rows in
              let sent = ref 0 in
              let* () =
                List.fold_left
                  (fun acc chunk ->
                    let* () = acc in
                    let body =
                      String.concat "\n" (header :: chunk) ^ "\n"
                    in
                    let* v =
                      one_request c
                        (J.to_string
                           (J.Obj
                              [
                                ("op", J.Str "append");
                                ("dataset", J.Str dataset);
                                ("csv", J.Str body);
                              ]))
                    in
                    sent := !sent + List.length chunk;
                    Printf.printf
                      "batch %.0f: %.0f rows (%d/%d), version %.0f, %.0f \
                       constraints touched, %.0f cached replies evicted\n%!"
                      (jfield v "batch_id") (jfield v "rows") !sent total
                      (jfield v "version")
                      (match J.member "touched" v with
                      | Some (J.Arr l) -> float_of_int (List.length l)
                      | _ -> 0.)
                      (jfield v "cache_evicted");
                    Ok ())
                  (Ok ()) (chunks [] rows)
              in
              Printf.printf "appended %d rows in %d batches\n" total
                (List.length (chunks [] rows));
              Ok ()
        in
        Pc_server.Client.close c;
        result)
  in
  let doc =
    "Stream a CSV into a running `pcda serve` as append batches (or \
     retract one batch by id). Each batch routes its rows through the \
     dataset's decision diagram, consumes missing-row budget, and evicts \
     only the cached replies it can have changed."
  in
  Cmd.v (Cmd.info "ingest" ~doc)
    Term.(
      ret
        (const run $ host_arg $ port_arg $ dataset_arg $ csv_opt_arg
       $ batch_rows_arg $ retract_arg))

(* ---- top ---- *)

let top_cmd =
  let module J = Pc_obs.Json in
  let port_arg =
    let doc = "Server port." in
    Arg.(required & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let once_arg =
    let doc = "Print one dashboard frame and exit (no screen clearing)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let prom_arg =
    let doc = "Print the Prometheus text exposition instead of the dashboard." in
    Arg.(value & flag & info [ "prom" ] ~doc)
  in
  let interval_arg =
    let doc = "Seconds between polls." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECS" ~doc)
  in
  let iterations_arg =
    let doc = "Stop after this many frames (0 = until interrupted)." in
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N" ~doc)
  in
  let jget v names =
    List.fold_left (fun acc n -> Option.bind acc (J.member n)) (Some v) names
  in
  let jnum v names =
    Option.value (Option.bind (jget v names) J.to_num) ~default:0.
  in
  let render host port v =
    let b = Buffer.create 1024 in
    let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    addf "pcda top — %s:%d   uptime %.1fs   inflight %.0f   last id %.0f\n"
      host port (jnum v [ "uptime_s" ]) (jnum v [ "inflight" ])
      (jnum v [ "last_id" ]);
    addf "%-8s %9s %9s %9s %7s %7s %7s %7s\n" "window" "qps" "p50" "p99"
      "err%" "degr%" "hit%" "n";
    List.iter
      (fun w ->
        let f name = jnum v [ "windows"; w; name ] in
        addf "%-8s %9.1f %8.2fms %8.2fms %7.1f %7.1f %7.1f %7.0f\n" w
          (f "qps")
          (f "p50_ns" /. 1e6)
          (f "p99_ns" /. 1e6)
          (100. *. f "error_rate")
          (100. *. f "degraded_fraction")
          (100. *. f "cache_hit_rate")
          (f "n"))
      [ "1s"; "10s"; "60s" ];
    addf
      "totals   requests %.0f   errors %.0f   degraded %.0f   cache \
       %.0f/%.0f hit/miss\n"
      (jnum v [ "requests" ]) (jnum v [ "errors" ]) (jnum v [ "degraded" ])
      (jnum v [ "cache"; "hits" ])
      (jnum v [ "cache"; "misses" ]);
    addf
      "admitted full %.0f   dual-only %.0f   early-only %.0f   floor-only \
       %.0f\n"
      (jnum v [ "admission"; "full" ])
      (jnum v [ "admission"; "dual-only" ])
      (jnum v [ "admission"; "early-only" ])
      (jnum v [ "admission"; "floor-only" ]);
    Buffer.contents b
  in
  let run host port once prom interval iterations =
    with_errors (fun () ->
        let ( let* ) = Result.bind in
        let* c =
          try Ok (Pc_server.Client.connect ~host ~port)
          with Unix.Unix_error (e, _, _) ->
            Error
              (Printf.sprintf "cannot connect to %s:%d: %s" host port
                 (Unix.error_message e))
        in
        let req =
          if prom then {|{"op":"telemetry","view":"prometheus"}|}
          else {|{"op":"telemetry"}|}
        in
        let frames = if once then 1 else iterations in
        let clear = (not once) && Unix.isatty Unix.stdout in
        let rec loop i =
          match Pc_server.Client.request c req with
          | None -> Error "connection closed by server"
          | Some reply -> (
              match J.parse reply with
              | Error msg -> Error ("bad telemetry reply: " ^ msg)
              | Ok v -> (
                  match J.member "ok" v with
                  | Some (J.Bool true) ->
                      if clear then print_string "\027[2J\027[H";
                      (if prom then
                         match Option.bind (J.member "text" v) J.to_str with
                         | Some text -> print_string text
                         | None -> print_endline reply
                       else print_string (render host port v));
                      flush stdout;
                      if frames > 0 && i + 1 >= frames then Ok ()
                      else begin
                        Unix.sleepf (Float.max 0.05 interval);
                        loop (i + 1)
                      end
                  | _ -> Error ("server refused telemetry: " ^ reply)))
        in
        let result = loop 0 in
        Pc_server.Client.close c;
        result)
  in
  let doc =
    "Live dashboard over a running `pcda serve`: polls the telemetry op \
     and renders windowed qps, latency quantiles, error/degraded/cache \
     rates (1s/10s/60s), totals and admission counts. --prom prints the \
     Prometheus exposition; --once prints a single frame (scriptable)."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      ret
        (const run $ host_arg $ port_arg $ once_arg $ prom_arg $ interval_arg
       $ iterations_arg))

let main_cmd =
  let doc = "missing-data contingency analysis with predicate-constraints" in
  let info = Cmd.info "pcda" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      bound_cmd;
      check_cmd;
      show_cmd;
      explain_cmd;
      generate_cmd;
      workload_cmd;
      serve_cmd;
      client_cmd;
      ingest_cmd;
      top_cmd;
    ]

let () =
  (* a client vanishing mid-write must never kill the process (or any
     pipeline `pcda` is part of) with SIGPIPE *)
  Pc_server.Net.ignore_sigpipe ();
  let code = Cmd.eval main_cmd in
  (* cmdliner reports its own usage errors (unknown flag, missing
     required arg) with 124; fold them into the documented user-error
     exit code *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
