(* Dirty rows, not just missing rows (the extension sketched in the
   paper's conclusion, Section 8): a batch of sensor readings is present
   but suspect — a miscalibrated device, a clock that may have drifted.
   How much can the corruption move the analysis?

   Run with: dune exec examples/dirty_readings.exe *)

module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
module D = Pc_dirty.Dirty

let () =
  let rng = Pc_util.Rng.create 99 in
  let readings = Pc_synth.Sensor.generate rng ~rows:5_000 in
  Printf.printf "%d readings loaded; device 7 is suspected miscalibrated\n"
    (Pc_data.Relation.cardinality readings);
  Printf.printf "and every clock may have drifted by up to 0.25 hours\n\n";

  (* Annotations: beliefs about how wrong the recorded values can be. *)
  let annotations =
    [
      (* device 7's photodiode reads up to 15% off *)
      D.annotation
        ~pred:[ Atom.num_eq "device" 7. ]
        ~attr:"light" (D.Relative 0.15);
      (* all timestamps within ±0.25h of the truth *)
      D.annotation ~attr:"time" (D.Additive 0.25);
    ]
  in

  let show title q =
    let truth = Pc_query.Query.eval readings q in
    match (D.bound readings annotations q, truth) with
    | D.Range r, Some recorded ->
        Printf.printf "  %-34s recorded %10.1f   true value in [%10.1f, %10.1f]\n"
          title recorded r.Pc_core.Range.lo r.Pc_core.Range.hi
    | D.Range r, None ->
        Printf.printf "  %-34s (recorded undefined)  [%.1f, %.1f]\n" title
          r.Pc_core.Range.lo r.Pc_core.Range.hi
    | D.Empty, _ -> Printf.printf "  %-34s may select no rows at all\n" title
    | D.Inconsistent, _ ->
        Printf.printf "  %-34s annotations are contradictory\n" title
  in

  print_endline "aggregates with hard corruption bounds:";
  show "SUM(light), device 7"
    (Q.sum ~where_:[ Atom.num_eq "device" 7. ] "light");
  show "AVG(light), device 7"
    (Q.avg ~where_:[ Atom.num_eq "device" 7. ] "light");
  show "COUNT(*), first night hours"
    (Q.count ~where_:[ Atom.between "time" 0. 6. ] ());
  show "MAX(light), all devices" (Q.max_ "light");
  print_newline ();

  (* The time-drift annotation makes window membership itself uncertain:
     COUNT ranges reflect rows that may or may not fall inside. *)
  print_endline "window counts under clock drift (membership is three-valued):";
  List.iter
    (fun (lo, hi) ->
      show
        (Printf.sprintf "COUNT(*), time in [%g, %g]" lo hi)
        (Q.count ~where_:[ Atom.between "time" lo hi ] ()))
    [ (10., 12.); (100., 124.); (0., 336.) ]
