(* Join bounds (paper Section 5): bounding aggregates over natural joins
   of tables with missing rows, using the Fractional-Edge-Cover / GWE
   formulation — and why it beats both the naive Cartesian product and
   the elastic-sensitivity technique from the privacy literature.

   Run with: dune exec examples/join_bounds.exe *)

module JB = Pc_join.Join_bound

let pcs_for rel attr =
  Pc_core.Pc_set.make
    (Pc_core.Generate.corr_partition rel ~attrs:[ attr ] ~n:16 ~value_attrs:[] ())

let () =
  let rng = Pc_util.Rng.create 7 in
  let n = 2_000 in

  (* ---- triangle counting: |R(a,b) |><| S(b,c) |><| T(c,a)| ---- *)
  let r = Pc_synth.Graphs.random_edges rng ~a:"a" ~b:"b" ~n ~vertices:n in
  let s = Pc_synth.Graphs.random_edges rng ~a:"b" ~b:"c" ~n ~vertices:n in
  let t = Pc_synth.Graphs.random_edges rng ~a:"c" ~b:"a" ~n ~vertices:n in
  let tables =
    [
      JB.table ~name:"R" ~join_attrs:[ "a"; "b" ] (pcs_for r "a");
      JB.table ~name:"S" ~join_attrs:[ "b"; "c" ] (pcs_for s "b");
      JB.table ~name:"T" ~join_attrs:[ "c"; "a" ] (pcs_for t "c");
    ]
  in
  Printf.printf "triangle counting on three %d-edge tables:\n" n;
  Printf.printf "  true count                      %d\n"
    (Pc_synth.Graphs.triangle_count ~r ~s ~t);
  Printf.printf "  GWE / edge-cover bound          %.3e   (= N^1.5)\n"
    (JB.count_bound tables);
  Printf.printf "  naive Cartesian bound           %.3e   (= N^3)\n"
    (JB.naive_count_bound tables);
  Printf.printf "  elastic sensitivity bound       %.3e\n"
    (Pc_join.Elastic.triangle_bound ~n:(float_of_int n));
  print_newline ();

  (* The edge cover behind the bound. *)
  (match
     Pc_join.Edge_cover.solve
       ~weights:[ ("R", float_of_int n); ("S", float_of_int n); ("T", float_of_int n) ]
       Pc_join.Hypergraph.triangle
   with
  | Some cover ->
      print_endline "  optimal fractional edge cover:";
      List.iter (fun (name, c) -> Printf.printf "    c_%s = %.2f\n" name c) cover
  | None -> ());
  print_newline ();

  (* ---- acyclic 5-chain ---- *)
  let k = 5 in
  let rels =
    List.init k (fun i ->
        Pc_synth.Graphs.random_edges rng
          ~a:(Printf.sprintf "x%d" (i + 1))
          ~b:(Printf.sprintf "x%d" (i + 2))
          ~n ~vertices:n)
  in
  let chain_tables =
    List.mapi
      (fun i rel ->
        JB.table
          ~name:(Printf.sprintf "R%d" (i + 1))
          ~join_attrs:[ Printf.sprintf "x%d" (i + 1); Printf.sprintf "x%d" (i + 2) ]
          (pcs_for rel (Printf.sprintf "x%d" (i + 1))))
      rels
  in
  Printf.printf "acyclic %d-chain join on %d-row tables:\n" k n;
  Printf.printf "  true join size                  %d\n"
    (Pc_synth.Graphs.chain_join_count rels);
  Printf.printf "  GWE / edge-cover bound          %.3e   (= N^3)\n"
    (JB.count_bound chain_tables);
  Printf.printf "  naive Cartesian bound           %.3e   (= N^5)\n"
    (JB.naive_count_bound chain_tables);
  Printf.printf "  elastic sensitivity bound       %.3e\n"
    (Pc_join.Elastic.chain_bound ~n:(float_of_int n) ~k);
  print_newline ();

  (* ---- SUM over a join: fix the aggregate relation's coefficient ---- *)
  let weighted =
    Pc_synth.Graphs.random_edges rng ~a:"a" ~b:"b" ~n ~vertices:n
  in
  let w_tables =
    [
      JB.table ~name:"R" ~join_attrs:[ "a"; "b" ]
        (Pc_core.Pc_set.make
           (Pc_core.Generate.corr_partition weighted ~attrs:[ "a" ] ~n:16 ()));
      JB.table ~name:"S" ~join_attrs:[ "b"; "c" ] (pcs_for s "b");
      JB.table ~name:"T" ~join_attrs:[ "c"; "a" ] (pcs_for t "c");
    ]
  in
  Printf.printf "SUM(R.b) over the triangle join (c_R fixed to 1):\n";
  Printf.printf "  GWE sum bound                   %.3e\n"
    (JB.sum_bound w_tables ~agg:("R", "b"))
