(* Quickstart: the paper's worked example (Section 4.4).

   Two predicate-constraints describe sales data lost between Nov 11 and
   Nov 13; we compute the hard range of SUM(price) over the missing rows.

   Run with: dune exec examples/quickstart.exe *)

module I = Pc_interval.Interval
module Atom = Pc_predicate.Atom
open Pc_core

let show title answer =
  match answer with
  | Bounds.Range r -> Printf.printf "%-28s %s\n" title (Range.to_string r)
  | Bounds.Empty -> Printf.printf "%-28s (empty)\n" title
  | Bounds.Infeasible -> Printf.printf "%-28s (infeasible)\n" title

let () =
  (* ---- disjoint constraints: one per day ---- *)
  (* t1: Nov-11 <= utc < Nov-12 => 0.99 <= price <= 129.99, (50, 100) *)
  let t1 =
    Pc.make ~name:"nov11"
      ~pred:[ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 12.)) ]
      ~values:[ ("price", I.closed 0.99 129.99) ]
      ~freq:(50, 100) ()
  in
  let t2 =
    Pc.make ~name:"nov12"
      ~pred:[ Atom.Num_range ("utc", I.make_exn (I.Closed 12.) (I.Open 13.)) ]
      ~values:[ ("price", I.closed 0.99 149.99) ]
      ~freq:(50, 100) ()
  in
  let disjoint = Pc_set.make [ t1; t2 ] in
  print_endline "Disjoint constraints (one per day):";
  show "  SUM(price)" (Bounds.bound disjoint (Pc_query.Query.sum "price"));
  print_endline "  (paper: [99.00, 27998.00])";
  print_newline ();

  (* ---- overlapping constraints: a day and a two-day window ---- *)
  let t2' =
    Pc.make ~name:"window"
      ~pred:[ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 13.)) ]
      ~values:[ ("price", I.closed 0.99 149.99) ]
      ~freq:(75, 125) ()
  in
  let overlapping = Pc_set.make [ t1; t2' ] in
  print_endline "Overlapping constraints (cell decomposition + MILP):";
  show "  SUM(price)" (Bounds.bound overlapping (Pc_query.Query.sum "price"));
  print_endline "  (paper: [74.25, 17748.75])";
  show "  COUNT(*)" (Bounds.bound overlapping (Pc_query.Query.count ()));
  show "  AVG(price)" (Bounds.bound overlapping (Pc_query.Query.avg "price"));
  show "  MAX(price)" (Bounds.bound overlapping (Pc_query.Query.max_ "price"));
  print_newline ();

  (* ---- the same analysis with a query predicate (pushdown) ---- *)
  let where_ = [ Atom.Num_range ("utc", I.make_exn (I.Closed 12.) (I.Open 13.)) ] in
  print_endline "Restricted to Nov-12 (query-predicate pushdown):";
  show "  SUM(price) on Nov-12"
    (Bounds.bound overlapping (Pc_query.Query.sum ~where_ "price"))
