(* The motivating scenario of the paper's introduction (Sections 1-2):
   a network outage lost the New York and Chicago transactions between
   Nov 10 and Nov 13. The analyst still wants total sales — with a
   defensible error range instead of a gut-feeling extrapolation.

   Demonstrates: defining constraints in the DSL, testing them against
   history, combining the certain partition with the missing-data range,
   and GROUP-BY-style per-branch analysis.

   Run with: dune exec examples/sales_contingency.exe *)

module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
open Pc_core

let sales_schema =
  Pc_data.Schema.of_names
    [
      ("utc", Pc_data.Schema.Numeric);  (* day number in November *)
      ("branch", Pc_data.Schema.Categorical);
      ("price", Pc_data.Schema.Numeric);
    ]

let row utc branch price =
  [| Pc_data.Value.Num utc; Pc_data.Value.Str branch; Pc_data.Value.Num price |]

(* The rows that made it into the warehouse: Trenton kept reporting, and
   everything outside the outage window survived. *)
let observed =
  Pc_data.Relation.create sales_schema
    [
      row 9. "Chicago" 3.02;
      row 9. "New York" 6.71;
      row 9. "Trenton" 18.99;
      row 10.5 "Trenton" 12.50;
      row 11.2 "Trenton" 9.99;
      row 12.8 "Trenton" 24.00;
      row 13.5 "Chicago" 7.25;
      row 13.6 "New York" 88.00;
    ]

(* Last month's complete data: used to sanity-check the constraints. *)
let history =
  Pc_data.Relation.create sales_schema
    (List.concat_map
       (fun day ->
         [
           row day "Chicago" 49.99;
           row day "Chicago" 120.00;
           row day "New York" 75.00;
           row day "Trenton" 15.00;
         ])
       [ 1.; 2.; 3.; 4.; 5. ])

(* Beliefs about the lost rows, written in the PC DSL. *)
let constraint_text =
  {|
-- Chicago: premium products, capped at 149.99; at most 60 sales over
-- the three lost days
constraint chicago:
  branch = 'Chicago' and utc between 10 and 13
  => price in [0.0, 149.99], count [0, 60];

-- New York: cheaper catalogue, at most 90 sales
constraint new_york:
  branch = 'New York' and utc between 10 and 13
  => price in [0.0, 100.0], count [0, 90];
|}

let show title answer =
  match answer with
  | Bounds.Range r ->
      Printf.printf "  %-34s [%.2f, %.2f]\n" title r.Range.lo r.Range.hi
  | Bounds.Empty -> Printf.printf "  %-34s (no qualifying rows possible)\n" title
  | Bounds.Infeasible -> Printf.printf "  %-34s (constraints unsatisfiable)\n" title

let () =
  let pcs = Pc_parse.Pc_parser.parse constraint_text in
  let set = Pc_set.make pcs in

  (* 1. Constraints are testable: check them against last month. *)
  print_endline "Checking constraints against last month's complete data:";
  (match Pc_set.violations history set with
  | [] -> print_endline "  all constraints held historically"
  | vs -> List.iter (fun v -> Printf.printf "  VIOLATION: %s\n" v) vs);
  print_newline ();

  (* 2. Total sales, combining what we have with what we might miss. *)
  print_endline "Contingency analysis (observed rows + bounded missing rows):";
  let total = Q.sum "price" in
  show "SUM(price), all branches" (Bounds.bound_with_certain set ~certain:observed total);
  let chicago = Q.sum ~where_:[ Atom.cat_eq "branch" "Chicago" ] "price" in
  show "SUM(price), Chicago" (Bounds.bound_with_certain set ~certain:observed chicago);
  let counts = Q.count ~where_:[ Atom.between "utc" 10. 13. ] () in
  show "COUNT(*), outage window" (Bounds.bound_with_certain set ~certain:observed counts);
  print_newline ();

  (* 3. GROUP BY branch = a union of per-branch queries (paper Section 2). *)
  print_endline "Per-branch breakdown (GROUP BY as a union of queries):";
  List.iter
    (fun branch ->
      let q = Q.sum ~where_:[ Atom.cat_eq "branch" branch ] "price" in
      show (Printf.sprintf "SUM(price), %s" branch)
        (Bounds.bound_with_certain set ~certain:observed q))
    [ "Chicago"; "New York"; "Trenton" ];
  print_newline ();

  (* 4. What a simple extrapolation would have claimed instead. *)
  let missing_guess = 150 in
  (match Pc_stats.Extrapolate.estimate ~observed ~n_missing:missing_guess total with
  | Some est ->
      Printf.printf
        "For contrast, simple extrapolation (assuming %d missing rows) \
         claims a single number: %.2f - with no honest error bar at all.\n"
        missing_guess est
  | None -> ())
