(* The temperature-sensor scenario from the paper's introduction: data
   arrives in partitions and one fails to load. How much can the failed
   partition change the analysis?

   Demonstrates: generating constraints automatically from historical
   data (Corr-PC partitioning), validating closure, hard ranges for a
   threshold-count query, and checking the eventual ground truth landed
   inside the range.

   Run with: dune exec examples/sensor_outage.exe *)

module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
open Pc_core

let () =
  let rng = Pc_util.Rng.create 2024 in
  let full = Pc_synth.Sensor.generate rng ~rows:30_000 in

  (* Partition 7 of 10 (a time slice) failed to load. *)
  let lost_window = [ Atom.between "time" 201.6 235.2 ] in
  let split = Pc_synth.Missing.by_predicate full (Pc_predicate.Pred.conj lost_window) in
  let observed = split.Pc_synth.Missing.observed in
  let missing = split.Pc_synth.Missing.missing in
  Printf.printf "loaded %d rows; partition with %d rows failed to load\n\n"
    (Pc_data.Relation.cardinality observed)
    (Pc_data.Relation.cardinality missing);

  (* Build constraints for the lost window from a comparable historical
     window (same time-of-day profile, one week earlier), then rebase
     their predicates onto the lost window by construction: here we
     simply derive them from the true missing partition, the idealized
     protocol of the paper's experiments. *)
  let attrs =
    Generate.correlated_attrs missing ~agg:"light"
      ~candidates:[ "device"; "time"; "temperature"; "humidity"; "voltage" ]
      ~k:2
  in
  Printf.printf "attributes most correlated with light: %s\n"
    (String.concat ", " attrs);
  let pcs = Generate.corr_partition missing ~attrs ~n:300 () in
  let set = Pc_set.make pcs in
  Printf.printf "derived %d constraints; closed over the lost partition: %b\n\n"
    (Pc_set.size set)
    (Pc_set.closed_over missing set);

  (* The analyst's question: how often did light exceed 1000? *)
  let hot = Q.count ~where_:[ Atom.greater_than "light" 1000. ] () in
  let answer = Bounds.bound_with_certain set ~certain:observed hot in
  let truth =
    Option.get (Q.eval (Pc_data.Relation.union observed missing) hot)
  in
  print_endline "how many readings exceeded light = 1000?";
  (match answer with
  | Bounds.Range r ->
      Printf.printf "  hard range:    [%.0f, %.0f]\n" r.Range.lo r.Range.hi;
      Printf.printf "  ground truth:  %.0f  (inside: %b)\n" truth
        (Range.contains r truth)
  | Bounds.Empty -> print_endline "  (no qualifying rows possible)"
  | Bounds.Infeasible -> print_endline "  (constraints unsatisfiable)");
  print_newline ();

  (* Other aggregates over the lost window itself. *)
  print_endline "aggregates over the lost partition alone:";
  List.iter
    (fun (title, q) ->
      match (Bounds.bound set q, Q.eval missing q) with
      | Bounds.Range r, Some truth ->
          Printf.printf "  %-12s range [%10.0f, %10.0f]   truth %10.0f   inside: %b\n"
            title r.Range.lo r.Range.hi truth (Range.contains r truth)
      | Bounds.Range r, None ->
          Printf.printf "  %-12s range [%10.0f, %10.0f]   (no truth)\n" title
            r.Range.lo r.Range.hi
      | (Bounds.Empty | Bounds.Infeasible), _ ->
          Printf.printf "  %-12s (no bound)\n" title)
    [
      ("COUNT(*)", Q.count ());
      ("SUM(light)", Q.sum "light");
      ("AVG(light)", Q.avg "light");
      ("MAX(light)", Q.max_ "light");
      ("MIN(light)", Q.min_ "light");
    ]
