(* Zone maps ARE predicate-constraints.

   Analytical stores already keep per-partition statistics — row counts
   and per-column min/max (Parquet row-group stats, ORC stripe stats,
   "zone maps"). When a partition is lost, those surviving statistics are
   precisely a predicate-constraint on the lost rows: contingency
   analysis needs no user-written beliefs at all.

   This example loads a month of sales into daily partitions, loses three
   days to an outage, and answers revenue questions with hard ranges
   derived purely from the retained metadata.

   Run with: dune exec examples/zone_maps.exe *)

module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
module V = Pc_data.Value
open Pc_store

let schema =
  Pc_data.Schema.of_names
    [
      ("day", Pc_data.Schema.Numeric);
      ("branch", Pc_data.Schema.Categorical);
      ("price", Pc_data.Schema.Numeric);
    ]

let branches = [| "Chicago"; "New York"; "Trenton" |]

let daily_partition rng day =
  let n = 30 + Pc_util.Rng.int rng 40 in
  Pc_data.Relation.create schema
    (List.init n (fun _ ->
         [|
           V.Num (float_of_int day +. Pc_util.Rng.float rng 1.);
           V.Str branches.(Pc_util.Rng.int rng 3);
           V.Num (Pc_util.Rng.lognormal rng ~mu:3. ~sigma:0.8);
         |]))

let show store title q truth =
  match Store.query store q with
  | Pc_core.Bounds.Range r ->
      Printf.printf "  %-36s [%10.2f, %10.2f]  truth %10.2f  inside: %b\n" title
        r.Pc_core.Range.lo r.Pc_core.Range.hi truth
        (Pc_core.Range.contains r truth)
  | Pc_core.Bounds.Empty -> Printf.printf "  %-36s (empty)\n" title
  | Pc_core.Bounds.Infeasible -> Printf.printf "  %-36s (infeasible)\n" title

let () =
  let rng = Pc_util.Rng.create 7 in
  let days = List.init 30 (fun d -> (d, daily_partition rng d)) in
  let store =
    List.fold_left
      (fun st (d, rel) ->
        Store.add_partition st ~id:(Printf.sprintf "day_%02d" d) rel)
      (Store.create schema) days
  in
  let full =
    List.fold_left
      (fun acc (_, rel) -> Pc_data.Relation.union acc rel)
      (Pc_data.Relation.create schema [])
      days
  in
  Printf.printf "30 daily partitions, %d rows total\n"
    (Pc_data.Relation.cardinality full);

  (* The outage: days 10-12 never arrive. Only their zone maps survive. *)
  let store =
    List.fold_left
      (fun st d -> Store.mark_missing st ~id:(Printf.sprintf "day_%02d" d))
      store [ 10; 11; 12 ]
  in
  Printf.printf "days 10-12 lost (%d rows); zone maps retained\n\n"
    (Store.missing_count store);

  let truth q = Option.value (Q.eval full q) ~default:nan in
  print_endline "queries answered from loaded rows + retained metadata only:";
  let total = Q.sum "price" in
  show store "SUM(price), whole month" total (truth total);
  let outage_window = Q.sum ~where_:[ Atom.between "day" 9.5 13.5 ] "price" in
  show store "SUM(price), around the outage" outage_window (truth outage_window);
  let counts = Q.count ~where_:[ Atom.between "day" 10. 13. ] () in
  show store "COUNT(*), lost window" counts (truth counts);
  let before = Q.sum ~where_:[ Atom.between "day" 0. 9. ] "price" in
  show store "SUM(price), before the outage" before (truth before);
  print_newline ();

  (* Tighten with one analyst belief: nothing over 60 sold those days. *)
  let belief =
    Pc_core.Pc.make ~name:"price_cap" ~pred:Pc_predicate.Pred.tt
      ~values:[ ("price", Pc_interval.Interval.closed 0. 60.) ]
      ~freq:(0, 10_000) ()
  in
  print_endline "with one extra belief (lost prices were all <= 60):";
  (match Store.query ~extra:[ belief ] store outage_window with
  | Pc_core.Bounds.Range r ->
      Printf.printf "  %-36s [%10.2f, %10.2f]\n" "SUM(price), around the outage"
        r.Pc_core.Range.lo r.Pc_core.Range.hi
  | _ -> print_endline "  unexpected");
  print_newline ();

  (* The durable metadata a deployment would check in next to the data. *)
  print_endline "retained zone maps as a constraint file (first 3 lines):";
  String.split_on_char '\n' (Store.summaries_to_dsl store)
  |> List.filteri (fun i _ -> i < 3)
  |> List.iter (fun l -> Printf.printf "  %s\n" l)
