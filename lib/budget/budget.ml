type resource = Deadline | Cells | Sat_calls | Nodes | Iterations

let resource_name = function
  | Deadline -> "deadline"
  | Cells -> "cells"
  | Sat_calls -> "sat-calls"
  | Nodes -> "nodes"
  | Iterations -> "iterations"

exception Exhausted of resource

type spec = {
  timeout : float option;
  max_cells : int option;
  max_sat_calls : int option;
  max_nodes : int option;
  max_iters : int option;
}

let spec ?timeout ?cells ?sat_calls ?nodes ?iters () =
  {
    timeout;
    max_cells = cells;
    max_sat_calls = sat_calls;
    max_nodes = nodes;
    max_iters = iters;
  }

let unlimited_spec = spec ()

type t = {
  spec : spec;
  deadline : float option;  (* absolute Unix.gettimeofday *)
  t0 : float;
  mutable cells : int;
  mutable sat_calls : int;
  mutable nodes : int;
  mutable iters : int;
  mutable deadline_hit : bool;
  mutable dead : resource option;
}

let now () = Unix.gettimeofday ()

let start spec =
  let t0 = now () in
  {
    spec;
    deadline = Option.map (fun s -> t0 +. Float.max 0. s) spec.timeout;
    t0;
    cells = 0;
    sat_calls = 0;
    nodes = 0;
    iters = 0;
    deadline_hit = false;
    dead = None;
  }

let unlimited () = start unlimited_spec

let limits t = t.spec

(* A non-positive timeout means "already expired": callers crushing the
   budget to zero must see immediate exhaustion even within the clock's
   resolution. *)
let out_of_time t =
  match t.dead with
  | Some _ -> true
  | None -> (
      match t.deadline with
      | None -> false
      | Some d ->
          if now () >= d then begin
            t.deadline_hit <- true;
            t.dead <- Some Deadline;
            true
          end
          else false)

let take counter limit bump resource t =
  match t.dead with
  | Some _ -> false
  | None -> (
      match limit with
      | Some cap when counter t >= cap ->
          ignore resource;
          false
      | _ ->
          bump t;
          true)

let take_cell t =
  take (fun t -> t.cells) t.spec.max_cells (fun t -> t.cells <- t.cells + 1) Cells t

let take_sat t =
  take
    (fun t -> t.sat_calls)
    t.spec.max_sat_calls
    (fun t -> t.sat_calls <- t.sat_calls + 1)
    Sat_calls t

let take_node t =
  take (fun t -> t.nodes) t.spec.max_nodes (fun t -> t.nodes <- t.nodes + 1) Nodes t

let take_iter t =
  if
    not
      (take (fun t -> t.iters) t.spec.max_iters (fun t -> t.iters <- t.iters + 1)
         Iterations t)
  then begin
    (* the global pivot pool starves every downstream solve *)
    if t.dead = None then t.dead <- Some Iterations;
    false
  end
  else true

let is_dead t = t.dead <> None

let exhaust t resource = if t.dead = None then t.dead <- Some resource

let check t =
  ignore (out_of_time t);
  match t.dead with Some r -> raise (Exhausted r) | None -> ()

type usage = {
  cells : int;
  sat_calls : int;
  nodes : int;
  iters : int;
  elapsed : float;
  deadline_hit : bool;
  dead : resource option;
}

let usage (t : t) =
  {
    cells = t.cells;
    sat_calls = t.sat_calls;
    nodes = t.nodes;
    iters = t.iters;
    elapsed = now () -. t.t0;
    deadline_hit = t.deadline_hit;
    dead = t.dead;
  }

let pp_usage ppf u =
  Format.fprintf ppf "cells=%d sat=%d nodes=%d iters=%d%s" u.cells u.sat_calls
    u.nodes u.iters
    (if u.deadline_hit then " deadline-hit" else "")
