type resource = Deadline | Cells | Sat_calls | Nodes | Iterations

(* Cold-path observability: exhaustion events are rare, so counting them
   directly at the mark site costs nothing on healthy runs. *)
let c_exhaustions = Pc_obs.Registry.Counter.make "budget.exhaustions"
let c_deadline_hits = Pc_obs.Registry.Counter.make "budget.deadline_hits"

let resource_name = function
  | Deadline -> "deadline"
  | Cells -> "cells"
  | Sat_calls -> "sat-calls"
  | Nodes -> "nodes"
  | Iterations -> "iterations"

exception Exhausted of resource

type spec = {
  timeout : float option;
  max_cells : int option;
  max_sat_calls : int option;
  max_nodes : int option;
  max_iters : int option;
}

let spec ?timeout ?cells ?sat_calls ?nodes ?iters () =
  {
    timeout;
    max_cells = cells;
    max_sat_calls = sat_calls;
    max_nodes = nodes;
    max_iters = iters;
  }

let unlimited_spec = spec ()

(* Counters are atomic so one budget can be shared across the domains of
   a parallel map (per-table join bounds, per-group bounds, …) and remain
   sound: a cap can never be breached by two domains racing past the
   check, and consumption totals aggregate exactly. *)
type t = {
  spec : spec;
  deadline : float option;  (* absolute monotonic seconds, Pc_util.Clock *)
  t0 : float;
  cells : int Atomic.t;
  sat_calls : int Atomic.t;
  nodes : int Atomic.t;
  iters : int Atomic.t;
  deadline_hit : bool Atomic.t;
  dead : resource option Atomic.t;
}

let now () = Pc_util.Clock.now ()

let start spec =
  let t0 = now () in
  {
    spec;
    deadline = Option.map (fun s -> t0 +. Float.max 0. s) spec.timeout;
    t0;
    cells = Atomic.make 0;
    sat_calls = Atomic.make 0;
    nodes = Atomic.make 0;
    iters = Atomic.make 0;
    deadline_hit = Atomic.make false;
    dead = Atomic.make None;
  }

let unlimited () = start unlimited_spec

let limits t = t.spec

(* First writer wins: once dead on some resource, stay dead on it. *)
let mark_dead t resource =
  if Atomic.compare_and_set t.dead None (Some resource) then begin
    Pc_obs.Registry.Counter.incr c_exhaustions;
    if resource = Deadline then
      Pc_obs.Registry.Counter.incr c_deadline_hits
  end

(* A non-positive timeout means "already expired": callers crushing the
   budget to zero must see immediate exhaustion even within the clock's
   resolution. *)
let out_of_time t =
  match Atomic.get t.dead with
  | Some _ -> true
  | None -> (
      match t.deadline with
      | None -> false
      | Some d ->
          (* Clock-skew fault injection: deadline checks may see a clock
             jumped forward. Firing a deadline early only degrades the
             answer down the ladder — never corrupts it — which is
             exactly the property the chaos tests pin. *)
          let skew =
            if Pc_fault.Fault.enabled () then Pc_fault.Fault.clock_skew_s ()
            else 0.
          in
          if now () +. skew >= d then begin
            Atomic.set t.deadline_hit true;
            mark_dead t Deadline;
            true
          end
          else false)

(* Reserve one unit with fetch-and-add, handing it back on overshoot so
   the counter converges to the cap instead of drifting past it. *)
let take counter limit t =
  match Atomic.get t.dead with
  | Some _ -> false
  | None -> (
      match limit with
      | None ->
          Atomic.incr counter;
          true
      | Some cap ->
          if Atomic.fetch_and_add counter 1 < cap then true
          else begin
            Atomic.decr counter;
            false
          end)

let take_cell t = take t.cells t.spec.max_cells t
let take_sat t = take t.sat_calls t.spec.max_sat_calls t
let take_node t = take t.nodes t.spec.max_nodes t

let take_iter t =
  if take t.iters t.spec.max_iters t then true
  else begin
    (* the global pivot pool starves every downstream solve *)
    mark_dead t Iterations;
    false
  end

let is_dead t = Atomic.get t.dead <> None

let exhaust t resource = mark_dead t resource

let check t =
  ignore (out_of_time t);
  match Atomic.get t.dead with Some r -> raise (Exhausted r) | None -> ()

type usage = {
  cells : int;
  sat_calls : int;
  nodes : int;
  iters : int;
  elapsed : float;
  deadline_hit : bool;
  dead : resource option;
}

let usage (t : t) =
  {
    cells = Atomic.get t.cells;
    sat_calls = Atomic.get t.sat_calls;
    nodes = Atomic.get t.nodes;
    iters = Atomic.get t.iters;
    elapsed = now () -. t.t0;
    deadline_hit = Atomic.get t.deadline_hit;
    dead = Atomic.get t.dead;
  }

let snapshot (t : t) =
  [
    (Cells, Atomic.get t.cells);
    (Sat_calls, Atomic.get t.sat_calls);
    (Nodes, Atomic.get t.nodes);
    (Iterations, Atomic.get t.iters);
  ]

let pp_usage ppf u =
  Format.fprintf ppf "cells=%d sat=%d nodes=%d iters=%d%s" u.cells u.sat_calls
    u.nodes u.iters
    (if u.deadline_hit then " deadline-hit" else "")
