(** Resource budgets for the bound pipeline.

    One budget context is threaded through cell decomposition
    ({!Pc_core.Cells}), the simplex ({!Pc_lp.Simplex}), branch-and-bound
    ({!Pc_milp.Milp}) and the join bounds, so that a single deadline or
    resource cap governs an entire [bound] call. Exhausting a budget never
    makes an answer wrong — callers step down a degradation ladder of
    sound over-approximations (see DESIGN.md, "Degradation ladder &
    budgets").

    A {!spec} is an immutable description of the limits; {!start} stamps
    the deadline and produces the mutable consumption context. Budgets are
    single-shot: start a fresh one per query (or share one deliberately to
    cap a whole batch, e.g. every per-table bound of a join).

    Consumption counters are {!Atomic}, so one budget may be shared
    across the domains of a {!Pc_par.Pool.parallel_map}: caps cannot be
    breached by domains racing past a check, and totals aggregate
    exactly. Deadlines are measured on the monotonic clock
    ({!Pc_util.Clock}) — wall-time NTP steps cannot fire or starve
    them. *)

type resource =
  | Deadline  (** wall-clock timeout *)
  | Cells  (** decomposition cells materialized *)
  | Sat_calls  (** satisfiability checks during decomposition *)
  | Nodes  (** branch-and-bound nodes expanded *)
  | Iterations  (** simplex pivots *)

val resource_name : resource -> string

exception Exhausted of resource
(** Raised only by {!check} (and by decomposition when the cell cap is
    hit): the checkpoints where no graceful in-place degradation exists.
    Solvers themselves never raise this — they return structured
    early-stop outcomes. *)

type spec = {
  timeout : float option;  (** wall-clock seconds, from [start] *)
  max_cells : int option;
  max_sat_calls : int option;
  max_nodes : int option;
  max_iters : int option;
}

val spec :
  ?timeout:float ->
  ?cells:int ->
  ?sat_calls:int ->
  ?nodes:int ->
  ?iters:int ->
  unit ->
  spec

val unlimited_spec : spec

type t

val start : spec -> t
(** Stamp the deadline ([timeout] seconds from now) and reset counters. *)

val unlimited : unit -> t
(** [start unlimited_spec]: counters are still tracked, nothing is ever
    exhausted. *)

val limits : t -> spec

(* -------- consumption (used by the solvers) -------- *)

val take_cell : t -> bool
(** Consume one unit; [false] means the cap is exhausted (the unit is not
    counted past the cap). Same contract for the other [take_*]. *)

val take_sat : t -> bool
val take_node : t -> bool
val take_iter : t -> bool

val out_of_time : t -> bool
(** Deadline passed (or the budget was already marked dead). Records
    [deadline_hit]. Cheap enough to call per node; the simplex calls it
    every few dozen pivots. *)

val is_dead : t -> bool
(** A starving resource (deadline or the global iteration pool) ran out:
    further solver calls cannot make progress, loops should stop early.
    Unlike cell/sat/node caps, which only degrade one stage, a dead
    budget starves every downstream stage. *)

val check : t -> unit
(** Raise {!Exhausted} when the budget is dead. For ladder checkpoints
    between stages, where raising (and being caught by the ladder driver)
    is the degradation mechanism. *)

val exhaust : t -> resource -> unit
(** Mark the budget dead on [resource] (used by decomposition when the
    cell cap is hit, before raising). *)

(* -------- accounting -------- *)

type usage = {
  cells : int;
  sat_calls : int;
  nodes : int;
  iters : int;
  elapsed : float;  (** wall-clock seconds since [start] *)
  deadline_hit : bool;
  dead : resource option;
}

val usage : t -> usage
(** A consistent snapshot of each counter (individually exact; the tuple
    is not a cross-counter atomic snapshot under concurrent use). *)

val snapshot : t -> (resource * int) list
(** The four countable resources with their current consumption, in a
    fixed order ([Cells]; [Sat_calls]; [Nodes]; [Iterations]) — the
    machine-readable face of {!usage} for [--metrics] reporting. Same
    consistency caveat as {!usage}. *)

val pp_usage : Format.formatter -> usage -> unit
