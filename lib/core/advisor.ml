module Q = Pc_query.Query

type scored = {
  attrs : string list;
  median_over_estimation : float;
  failure_free : bool;
}

let subsets ~max_size xs =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let without = go rest in
        List.map (fun s -> x :: s) without @ without
  in
  go xs
  |> List.filter (fun s ->
         let len = List.length s in
         len >= 1 && len <= max_size)

let score_subset rel ~n ~queries attrs =
  let set = Pc_set.make (Generate.corr_partition rel ~attrs ~n ()) in
  let ratios =
    List.filter_map
      (fun q ->
        match (Q.eval rel q, Bounds.bound set q) with
        | Some truth, Bounds.Range r
          when truth > 0. && Float.is_finite r.Range.hi ->
            Some (r.Range.hi /. truth)
        | _ -> None)
      queries
  in
  match ratios with
  | [] -> None
  | _ ->
      Some
        {
          attrs;
          median_over_estimation = Pc_util.Stat.median (Array.of_list ratios);
          failure_free = true;
        }

let rank ?(max_attrs = 2) ?(n = 100) rel ~candidates ~queries =
  if candidates = [] then invalid_arg "Advisor.rank: no candidates";
  subsets ~max_size:max_attrs candidates
  |> List.filter_map (score_subset rel ~n ~queries)
  |> List.stable_sort (fun a b ->
         Float.compare a.median_over_estimation b.median_over_estimation)

let best ?max_attrs ?n rel ~candidates ~queries =
  match rank ?max_attrs ?n rel ~candidates ~queries with
  | [] -> invalid_arg "Advisor.best: no subset could be scored"
  | top :: _ -> top.attrs
