(** Choosing *which attributes to constrain*: the paper observes that the
    PC framework's accuracy hinges on partitioning over attributes
    correlated with the aggregate (§6.1.4, Corr-PC), and leaves the
    choice to the analyst. This module automates it: candidate attribute
    subsets are scored by the actual bound tightness they produce on a
    validation workload, which subsumes correlation heuristics (a highly
    correlated attribute that produces ragged partitions scores
    accordingly).

    Typical use: run on a comparable historical window, then build the
    production constraints over the winning attributes. *)

type scored = {
  attrs : string list;
  median_over_estimation : float;
      (** median upper-bound/truth ratio on the validation workload;
          lower is better, 1.0 is optimal *)
  failure_free : bool;  (** always true for PCs derived from the data *)
}

val rank :
  ?max_attrs:int ->
  ?n:int ->
  Pc_data.Relation.t ->
  candidates:string list ->
  queries:Pc_query.Query.t list ->
  scored list
(** Scores every non-empty candidate subset of size ≤ [max_attrs]
    (default 2), building an [n]-constraint (default 100) equi-cardinality
    partition per subset, best first. Queries whose true answer is not a
    positive number are skipped. Raises [Invalid_argument] when
    [candidates] is empty. *)

val best :
  ?max_attrs:int ->
  ?n:int ->
  Pc_data.Relation.t ->
  candidates:string list ->
  queries:Pc_query.Query.t list ->
  string list
(** The winning subset. *)
