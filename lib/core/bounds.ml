module I = Pc_interval.Interval
module Pred = Pc_predicate.Pred
module Cnf = Pc_predicate.Cnf
module Sat = Pc_predicate.Sat
module Box = Pc_predicate.Box
module S = Pc_lp.Simplex
module M = Pc_milp.Milp
module B = Pc_budget.Budget
module Q = Pc_query.Query
module Counter = Pc_obs.Registry.Counter
module Trace = Pc_obs.Trace

let c_calls = Counter.make "bound.calls"
let c_exact = Counter.make "bound.exact"
let c_relaxed = Counter.make "bound.relaxed"
let c_early = Counter.make "bound.early_stopped"
let c_trivial = Counter.make "bound.trivial"
let h_bound = Pc_obs.Registry.Histogram.make "bound.ns"

type answer = Range of Range.t | Empty | Infeasible

type provenance = Exact | Relaxed | Early_stopped | Trivial

let provenance_name = function
  | Exact -> "exact"
  | Relaxed -> "relaxed"
  | Early_stopped -> "early-stopped"
  | Trivial -> "trivial"

let provenance_order = function
  | Exact -> 0
  | Relaxed -> 1
  | Early_stopped -> 2
  | Trivial -> 3

let worst_provenance a b = if provenance_order a >= provenance_order b then a else b

type stats = {
  provenance : provenance;
  rungs : provenance list;
  cells : int;
  sat_calls : int;
  admitted_unchecked : int;
  milp_nodes : int;
  lp_iterations : int;
  elapsed : float;
  deadline_hit : bool;
}

type outcome = { answer : answer; stats : stats }

type opts = {
  strategy : Cells.strategy;
  node_limit : int;
  tighten : bool;
  use_greedy : bool;
}

let default_opts =
  { strategy = Cells.Dfs_rewrite; node_limit = 2_000; tighten = true; use_greedy = true }

(* Degradation events observed while a ladder run is in flight. The worst
   event determines the answer's provenance. *)
type trace = {
  mutable relaxed : bool;  (** some MILP truncated: dual bounds, not optima *)
  mutable early : bool;  (** decomposition admitted cells unchecked *)
  mutable trivial : bool;  (** fell to the decomposition-free floor *)
  mutable admitted : int;
}

type ctx = {
  opts : opts;
  budget : B.t;
  trace : trace;
  fdd : Pc_predicate.Fdd.compiled option;
      (** diagram precompiled from the full PC set (server bound cache);
          only consulted by the [Cells.Fdd] strategy *)
}

(* Raised when a stage cannot produce any sound value within budget (the
   LP/MILP underneath was starved before a dual bound existed). Caught by
   the ladder driver, which steps down to the trivial rung. *)
exception Degrade

(* ------------------------------------------------------------------ *)
(* Preparation: cells, per-cell value bounds, frequency constraints    *)
(* ------------------------------------------------------------------ *)

(* Effective frequency lower bound under query pushdown: a PC's missing
   rows may hide outside the query region unless its predicate is wholly
   contained in it, so kl is only enforceable in that case. *)
let effective_kl qpred (pc : Pc.t) =
  if pc.Pc.freq_lo = 0 then 0
  else if qpred = Pred.tt then pc.Pc.freq_lo
  else begin
    let escapes =
      Sat.check (Cnf.conj (Cnf.of_pred pc.Pc.pred) (Cnf.of_neg_pred qpred))
    in
    if escapes then 0 else pc.Pc.freq_lo
  end

(* Value interval for rows of a cell on one attribute: the most
   restrictive active value constraint (paper's U_i(a)/L_i(a)), optionally
   clipped by the predicate/query box. Returns [None] when no row can
   exist in the cell at all (empty value intersection). *)
let cell_value_interval ~tighten set qpred active attr =
  let from_values =
    List.fold_left
      (fun acc j ->
        Option.bind acc (fun iv ->
            I.intersect iv (Pc.value_interval (Pc_set.get set j) attr)))
      (Some I.full) active
  in
  match from_values with
  | None -> None
  | Some iv ->
      if not tighten then Some iv
      else begin
        let box =
          List.fold_left
            (fun acc j ->
              Option.bind acc (fun b ->
                  Box.add_pred b (Pc_set.get set j).Pc.pred))
            (Box.add_pred Box.top qpred)
            active
        in
        match box with
        | None -> None (* cell region itself is empty (early-stop artifact) *)
        | Some b -> I.intersect iv (Box.num_interval b attr)
      end

(* Can a row exist in this cell: every constrained attribute must keep a
   non-empty value range. *)
let cell_inhabitable ~tighten set qpred active =
  let attrs =
    List.concat_map (fun j -> Pc.value_attrs (Pc_set.get set j)) active
    |> List.sort_uniq String.compare
  in
  List.for_all
    (fun a -> Option.is_some (cell_value_interval ~tighten set qpred active a))
    attrs
  &&
  (* guard against admitted-but-unsat cells from Early_stop *)
  match attrs with
  | _ :: _ -> true
  | [] ->
      (not tighten)
      || Option.is_some
           (List.fold_left
              (fun acc j ->
                Option.bind acc (fun b -> Box.add_pred b (Pc_set.get set j).Pc.pred))
              (Box.add_pred Box.top qpred)
              active)

type info = {
  active : int list;
  u : float;  (** max value of the aggregated attribute; +inf possible *)
  l : float;  (** min value; -inf possible *)
}

type prepared = {
  sub : Pc_set.t;
      (** the PCs whose predicate overlaps the query region — the only
          ones that can constrain in-region cells (exact reduction: a
          non-overlapping ψ is vacuously negated inside the region) *)
  infos : info array;
  cons : S.constr list;  (** PC frequency constraints over cell variables *)
  vbounds : (int * float * float) list;
      (** per-cell box bounds folded out of single-cell covering rows: a
          PC covering exactly one cell constrains that cell's variable
          alone, which the bounded-variable simplex handles without a
          tableau row *)
  v_hi : float array;  (** dense upper bounds (infinity when unbounded) *)
  all_kl_zero : bool;
}

exception Found_infeasible

(* Build the allocation problem for a query. [agg_attr = None] is COUNT
   (unit coefficients). Returns [Error Infeasible] when the constraint
   system provably admits no instance. *)
let prepare ~ctx set (query : Q.t) : (prepared, answer) result =
  let opts = ctx.opts in
  let qpred = query.Q.where_ in
  try
    (* A frequency lower bound on an unsatisfiable predicate is
       unsatisfiable as a system. *)
    List.iter
      (fun (pc : Pc.t) ->
        if pc.Pc.freq_lo > 0 && not (Pred.satisfiable pc.Pc.pred) then
          raise Found_infeasible)
      (Pc_set.pcs set);
    (* Predicate pushdown at the set level: only PCs overlapping the query
       region participate in the decomposition. Skipped under [Fdd] so the
       precompiled diagram's indices stay aligned with [set] — harmless,
       because a non-overlapping PC never appears in a reachable active
       set: it contributes no covering row and its effective kl is 0. *)
    let set =
      if qpred = Pred.tt || opts.strategy = Cells.Fdd then set
      else
        Pc_set.make
          (List.filter
             (fun (pc : Pc.t) ->
               match Box.of_pred pc.Pc.pred with
               | None -> false
               | Some b -> Option.is_some (Box.add_pred b qpred))
             (Pc_set.pcs set))
    in
    let cells, cstats =
      Cells.decompose ~budget:ctx.budget ?fdd:ctx.fdd ~strategy:opts.strategy
        ~query_pred:qpred set
    in
    if cstats.Cells.admitted_unchecked > 0 then begin
      ctx.trace.early <- true;
      ctx.trace.admitted <- ctx.trace.admitted + cstats.Cells.admitted_unchecked
    end;
    let cells =
      List.filter
        (fun (c : Cells.cell) ->
          cell_inhabitable ~tighten:opts.tighten set qpred c.Cells.active)
        cells
    in
    let agg_attr = Q.agg_attr query in
    let infos =
      List.map
        (fun (c : Cells.cell) ->
          match agg_attr with
          | None -> { active = c.Cells.active; u = 1.; l = 1. }
          | Some a -> (
              match
                cell_value_interval ~tighten:opts.tighten set qpred c.Cells.active a
              with
              | None -> { active = c.Cells.active; u = 0.; l = 0. }
              | Some iv ->
                  {
                    active = c.Cells.active;
                    u = I.hi_float iv;
                    l = I.lo_float iv;
                  }))
        cells
      |> Array.of_list
    in
    let n_pcs = Pc_set.size set in
    let n_cells = Array.length infos in
    let cons = ref [] in
    let v_lo = Array.make n_cells 0. in
    let v_hi = Array.make n_cells infinity in
    let all_kl_zero = ref true in
    for j = 0 to n_pcs - 1 do
      let pc = Pc_set.get set j in
      let covering = ref [] in
      Array.iteri
        (fun i inf -> if List.mem j inf.active then covering := (i, 1.) :: !covering)
        infos;
      let kl' = effective_kl qpred pc in
      if kl' > 0 then all_kl_zero := false;
      match !covering with
      | [] -> if kl' > 0 then raise Found_infeasible
      | [ (i, _) ] ->
          (* single-cell cover: a pure box bound on x_i, no constraint row *)
          v_hi.(i) <- Float.min v_hi.(i) (float_of_int pc.Pc.freq_hi);
          if kl' > 0 then v_lo.(i) <- Float.max v_lo.(i) (float_of_int kl');
          if v_lo.(i) > v_hi.(i) then raise Found_infeasible
      | coeffs ->
          cons := S.c_le coeffs (float_of_int pc.Pc.freq_hi) :: !cons;
          if kl' > 0 then cons := S.c_ge coeffs (float_of_int kl') :: !cons
    done;
    let vbounds = ref [] in
    for i = n_cells - 1 downto 0 do
      if v_lo.(i) > 0. || Float.is_finite v_hi.(i) then
        vbounds := (i, v_lo.(i), v_hi.(i)) :: !vbounds
    done;
    Ok
      {
        sub = set;
        infos;
        cons = !cons;
        vbounds = !vbounds;
        v_hi;
        all_kl_zero = !all_kl_zero;
      }
  with Found_infeasible -> Error Infeasible

(* ------------------------------------------------------------------ *)
(* MILP plumbing                                                       *)
(* ------------------------------------------------------------------ *)

let milp ~ctx ~maximize ~objective ?(var_bounds = []) cons n_vars =
  let r =
    M.solve ~budget:ctx.budget ~node_limit:ctx.opts.node_limit
      { S.n_vars; maximize; objective; constraints = cons; var_bounds }
  in
  (match r with
  | M.Optimal res when res.M.truncated -> ctx.trace.relaxed <- true
  | _ -> ());
  r

(* Can the system place at least [k] rows in cell [i]? Conservative on
   truncation and starvation (answers [true]: a maybe-host only loosens).
   The demand is a bound tightening, not an extra row; when it exceeds the
   cell's folded cap the answer is No without any solve. *)
let cell_can_host ~ctx prep i k =
  let fk = float_of_int k in
  if fk > prep.v_hi.(i) then false
  else begin
    let var_bounds = (i, fk, infinity) :: prep.vbounds in
    match
      milp ~ctx ~maximize:true ~objective:[] ~var_bounds prep.cons
        (Array.length prep.infos)
    with
    | M.Infeasible -> false
    | M.Optimal r -> r.M.incumbent <> None || not r.M.exact
    | M.Unbounded -> true
    | M.Stopped _ ->
        ctx.trace.relaxed <- true;
        true
  end

(* Any row at all in the query region? Unknown-within-budget counts as
   yes: claiming Empty requires proof. *)
let some_row_feasible ~ctx prep =
  let n = Array.length prep.infos in
  if n = 0 then false
  else begin
    let all = List.init n (fun i -> (i, 1.)) in
    let cons = S.c_ge all 1. :: prep.cons in
    match milp ~ctx ~maximize:true ~objective:[] ~var_bounds:prep.vbounds cons n with
    | M.Infeasible -> false
    | M.Optimal r -> r.M.incumbent <> None || not r.M.exact
    | M.Unbounded -> true
    | M.Stopped _ ->
        ctx.trace.relaxed <- true;
        true
  end

(* Replace infinite objective coefficients: a cell with an unbounded
   value that can actually host a row makes the bound infinite; one that
   cannot host a row contributes nothing. *)
let resolve_infinite ~ctx prep coeff_of =
  let n = Array.length prep.infos in
  let coeffs = Array.init n (fun i -> coeff_of prep.infos.(i)) in
  let unbounded = ref false in
  Array.iteri
    (fun i c ->
      if Float.is_finite c then ()
      else if cell_can_host ~ctx prep i 1 then unbounded := true
      else coeffs.(i) <- 0.)
    coeffs;
  (coeffs, !unbounded)

type side = { value : float; exact : bool }

(* Optimize Σ coeffs·x over the frequency polytope. [maximize] selects
   the direction; infinities in coefficients must be resolved first.
   A starved solve (not even a dual bound) degrades the whole ladder. *)
let optimize ~ctx ~maximize ~var_bounds cons coeffs =
  let n = Array.length coeffs in
  let objective =
    Array.to_list (Array.mapi (fun i c -> (i, c)) coeffs)
    |> List.filter (fun (_, c) -> c <> 0.)
  in
  match milp ~ctx ~maximize ~objective ~var_bounds cons n with
  | M.Infeasible -> Error Infeasible
  | M.Unbounded ->
      Ok { value = (if maximize then infinity else neg_infinity); exact = true }
  | M.Optimal r -> Ok { value = r.M.bound; exact = r.M.exact }
  | M.Stopped _ -> raise Degrade

(* ------------------------------------------------------------------ *)
(* COUNT and SUM                                                       *)
(* ------------------------------------------------------------------ *)

let sum_like ~ctx prep ~is_count =
  let n = Array.length prep.infos in
  if n = 0 then
    (* no cell overlaps the query: the aggregate over missing rows is 0 *)
    Range (Range.make ~lo_exact:true ~hi_exact:true 0. 0.)
  else begin
    let hi_result =
      let coeffs, unbounded = resolve_infinite ~ctx prep (fun inf -> inf.u) in
      if unbounded then Ok { value = infinity; exact = true }
      else optimize ~ctx ~maximize:true ~var_bounds:prep.vbounds prep.cons coeffs
    in
    let lo_result =
      if
        prep.all_kl_zero
        && (is_count || Array.for_all (fun inf -> inf.l >= 0.) prep.infos)
      then (* the empty instance minimizes *) Ok { value = 0.; exact = true }
      else begin
        let coeffs, unbounded =
          resolve_infinite ~ctx prep (fun inf -> inf.l)
        in
        if unbounded then Ok { value = neg_infinity; exact = true }
        else
          optimize ~ctx ~maximize:false ~var_bounds:prep.vbounds prep.cons coeffs
      end
    in
    match (lo_result, hi_result) with
    | Error a, _ | _, Error a -> a
    | Ok lo, Ok hi ->
        Range
          (Range.make ~lo_exact:lo.exact ~hi_exact:hi.exact lo.value hi.value)
  end

(* ------------------------------------------------------------------ *)
(* MIN / MAX                                                           *)
(* ------------------------------------------------------------------ *)

(* For MAX (and symmetrically MIN): the top of the range is the largest
   per-cell upper bound among cells that can host a row (paper §4.2); the
   bottom is what an adversary minimizing the maximum can reach — every
   forced constraint still pins rows somewhere. *)
let extremal ~ctx (query : Q.t) prep ~is_max =
  let set = prep.sub in
  let hosts =
    Array.to_list (Array.mapi (fun i inf -> (i, inf)) prep.infos)
    |> List.filter (fun (i, _) -> cell_can_host ~ctx prep i 1)
  in
  match hosts with
  | [] -> Empty
  | _ ->
      let qpred = query.Q.where_ in
      let values_of f = List.map (fun (_, inf) -> f inf) hosts in
      let best = if is_max then Pc_util.Stat.maximum else Pc_util.Stat.minimum in
      let worst = if is_max then Pc_util.Stat.minimum else Pc_util.Stat.maximum in
      let principal = best (Array.of_list (values_of (fun inf -> if is_max then inf.u else inf.l))) in
      (* Adversarial other side. *)
      let forced =
        List.filter
          (fun j -> effective_kl qpred (Pc_set.get set j) > 0)
          (List.init (Pc_set.size set) Fun.id)
      in
      let other_side =
        match forced with
        | [] ->
            (* instance may contain a single row in the least favourable
               hosting cell *)
            worst (Array.of_list (values_of (fun inf -> if is_max then inf.l else inf.u)))
        | _ ->
            let per_forced =
              List.map
                (fun j ->
                  let own =
                    List.filter (fun (_, inf) -> List.mem j inf.active) hosts
                  in
                  match own with
                  | [] -> if is_max then neg_infinity else infinity
                  | _ ->
                      let vals =
                        Array.of_list
                          (List.map
                             (fun (_, inf) -> if is_max then inf.l else inf.u)
                             own)
                      in
                      if is_max then Pc_util.Stat.minimum vals
                      else Pc_util.Stat.maximum vals)
                forced
            in
            let arr = Array.of_list per_forced in
            if is_max then Pc_util.Stat.maximum arr else Pc_util.Stat.minimum arr
      in
      let lo, hi =
        if is_max then (other_side, principal) else (principal, other_side)
      in
      if Float.is_nan lo || Float.is_nan hi || lo > hi then
        (* pathological interaction; fall back to the principal side *)
        Range
          (Range.make ~lo_exact:false ~hi_exact:false
             (Float.min principal other_side)
             (Float.max principal other_side))
      else Range (Range.make ~lo_exact:false ~hi_exact:false lo hi)

(* ------------------------------------------------------------------ *)
(* AVG via binary search (paper §4.2)                                  *)
(* ------------------------------------------------------------------ *)

(* Decide whether the maximal reachable average is >= r, where the
   instance may be combined with a certain partition contributing
   [c_count] rows and [c_sum] total. Uses the MILP upper bound, which is
   sound (can only overstate reachability, widening the range). *)
let avg_reachable_above ~ctx prep ~c_count ~c_sum r =
  let n = Array.length prep.infos in
  let coeffs = Array.map (fun inf -> inf.u -. r) prep.infos in
  let cons =
    if c_count >= 1. then prep.cons
    else S.c_ge (List.init n (fun i -> (i, 1.))) 1. :: prep.cons
  in
  match optimize ~ctx ~maximize:true ~var_bounds:prep.vbounds cons coeffs with
  | Error _ -> false
  | Ok { value; _ } -> value >= (r *. c_count) -. c_sum -. 1e-9

let avg_reachable_below ~ctx prep ~c_count ~c_sum r =
  let n = Array.length prep.infos in
  let coeffs = Array.map (fun inf -> inf.l -. r) prep.infos in
  let cons =
    if c_count >= 1. then prep.cons
    else S.c_ge (List.init n (fun i -> (i, 1.))) 1. :: prep.cons
  in
  match optimize ~ctx ~maximize:false ~var_bounds:prep.vbounds cons coeffs with
  | Error _ -> false
  | Ok { value; _ } -> value <= (r *. c_count) -. c_sum +. 1e-9

let binary_search ~reachable ~lo ~hi ~dir =
  (* [dir = `Up]: find sup { r | reachable r }, assuming reachable lo and
     bracketing the sup in [lo, hi]. The *outer* side of the final bracket
     is returned — the bound must err outward to stay a hard bound. *)
  let rec go lo hi iters =
    if iters = 0 || hi -. lo <= 1e-9 *. Float.max 1. (Float.abs hi) then
      match dir with `Up -> hi | `Down -> lo
    else begin
      let mid = 0.5 *. (lo +. hi) in
      let r = reachable mid in
      match (dir, r) with
      | `Up, true -> go mid hi (iters - 1)
      | `Up, false -> go lo mid (iters - 1)
      | `Down, true -> go lo mid (iters - 1)
      | `Down, false -> go mid hi (iters - 1)
    end
  in
  go lo hi 60

let avg_bounds ~ctx prep ~c_count ~c_sum =
  let n = Array.length prep.infos in
  let no_missing_rows_possible = n = 0 || not (some_row_feasible ~ctx prep) in
  if no_missing_rows_possible && c_count < 1. then Empty
  else if no_missing_rows_possible then
    (* only the certain partition contributes *)
    Range (Range.point (c_sum /. c_count))
  else begin
    (* Unbounded value ranges that can host rows yield infinite ends. *)
    let u_coeffs, u_unbounded =
      resolve_infinite ~ctx prep (fun inf -> inf.u)
    in
    let l_coeffs, l_unbounded =
      resolve_infinite ~ctx prep (fun inf -> inf.l)
    in
    let finite_u = Pc_util.Stat.maximum u_coeffs in
    let finite_l = Pc_util.Stat.minimum l_coeffs in
    let certain_avg = if c_count >= 1. then Some (c_sum /. c_count) else None in
    let search_hi0 =
      match certain_avg with
      | Some a -> Float.max a finite_u
      | None -> finite_u
    and search_lo0 =
      match certain_avg with
      | Some a -> Float.min a finite_l
      | None -> finite_l
    in
    let hi =
      if u_unbounded then infinity
      else
        binary_search
          ~reachable:(avg_reachable_above ~ctx prep ~c_count ~c_sum)
          ~lo:search_lo0 ~hi:(search_hi0 +. 1e-6) ~dir:`Up
    and lo =
      if l_unbounded then neg_infinity
      else
        binary_search
          ~reachable:(avg_reachable_below ~ctx prep ~c_count ~c_sum)
          ~lo:(search_lo0 -. 1e-6) ~hi:search_hi0 ~dir:`Down
    in
    if lo > hi +. 1e-6 then
      (* numeric corner: both searches met; collapse to their midpoint *)
      Range (Range.point (0.5 *. (lo +. hi)))
    else Range (Range.make ~lo_exact:false ~hi_exact:false (Float.min lo hi) hi)
  end

(* ------------------------------------------------------------------ *)
(* Greedy fast path for disjoint predicate sets (paper §4.2,           *)
(* "Faster Algorithm in Special Cases"): each predicate is its own     *)
(* cell and the allocation decouples per constraint — O(n) per query.  *)
(* ------------------------------------------------------------------ *)

module Greedy = struct
  type gcell = {
    u : float;
    l : float;
    kl : int;  (** effective lower bound under pushdown *)
    ku : int;
  }

  (* One gcell per PC overlapping the query region; [None] when the
     system is infeasible. Specialized to the one-PC-per-cell shape: the
     PC's in-query region box is built once and reused for every
     attribute, instead of routing through the generic cell machinery
     (which allocates a singleton [Pc_set] and rebuilds the box per
     attribute). *)
  let prepare ~opts set (query : Q.t) =
    let qpred = query.Q.where_ in
    let agg_attr = Q.agg_attr query in
    try
      let cells =
        List.filter_map
          (fun (pc : Pc.t) ->
            let region =
              match Box.of_pred pc.Pc.pred with
              | None ->
                  if pc.Pc.freq_lo > 0 then raise Found_infeasible;
                  None
              | Some b -> Box.add_pred b qpred
            in
            match region with
            | None -> None (* no overlap with the query region *)
            | Some box ->
                let value_iv attr =
                  let iv = Pc.value_interval pc attr in
                  if opts.tighten then I.intersect iv (Box.num_interval box attr)
                  else Some iv
                in
                let inhabitable =
                  List.for_all
                    (fun a -> Option.is_some (value_iv a))
                    (Pc.value_attrs pc)
                in
                if not inhabitable then begin
                  (* predicate region overlaps the query but admits no
                     valid row values *)
                  if effective_kl qpred pc > 0 then raise Found_infeasible;
                  None
                end
                else begin
                  let l, u =
                    match agg_attr with
                    | None -> (1., 1.)
                    | Some a -> (
                        match value_iv a with
                        | None -> (0., 0.)
                        | Some iv -> (I.lo_float iv, I.hi_float iv))
                  in
                  Some { u; l; kl = effective_kl qpred pc; ku = pc.Pc.freq_hi }
                end)
          (Pc_set.pcs set)
      in
      Ok cells
    with Found_infeasible -> Error Infeasible

  (* max over x in [kl, ku] of x * coeff, and min respectively. *)
  let max_contrib c =
    if c.ku = 0 then 0.
    else if c.u >= 0. then float_of_int c.ku *. c.u
    else float_of_int c.kl *. c.u

  let min_contrib c =
    if c.ku = 0 then 0.
    else if c.l <= 0. then float_of_int c.ku *. c.l
    else float_of_int c.kl *. c.l

  let sum_like cells ~is_count =
    let cells = if is_count then List.map (fun c -> { c with u = 1.; l = 1. }) cells else cells in
    let hi = List.fold_left (fun acc c -> acc +. max_contrib c) 0. cells in
    let lo = List.fold_left (fun acc c -> acc +. min_contrib c) 0. cells in
    Range (Range.make ~lo_exact:true ~hi_exact:true lo hi)

  let hosts cells = List.filter (fun c -> c.ku >= 1) cells

  let extremal cells ~is_max =
    match hosts cells with
    | [] -> Empty
    | hs ->
        let arr f = Array.of_list (List.map f hs) in
        let principal =
          if is_max then Pc_util.Stat.maximum (arr (fun c -> c.u))
          else Pc_util.Stat.minimum (arr (fun c -> c.l))
        in
        let forced = List.filter (fun c -> c.kl >= 1) hs in
        let other =
          match forced with
          | [] ->
              if is_max then Pc_util.Stat.minimum (arr (fun c -> c.l))
              else Pc_util.Stat.maximum (arr (fun c -> c.u))
          | _ ->
              let farr f = Array.of_list (List.map f forced) in
              if is_max then Pc_util.Stat.maximum (farr (fun c -> c.l))
              else Pc_util.Stat.minimum (farr (fun c -> c.u))
        in
        let lo, hi = if is_max then (other, principal) else (principal, other) in
        Range
          (Range.make ~lo_exact:false ~hi_exact:false (Float.min lo hi)
             (Float.max lo hi))

  (* Threshold test for AVG: can the (possibly certain-combined) average
     reach at least / at most r? *)
  let reach_above cells ~c_count ~c_sum r =
    let total = ref 0. and allocated = ref false and best_single = ref neg_infinity in
    List.iter
      (fun c ->
        if c.ku >= 1 then begin
          let w = c.u -. r in
          if w > 0. then begin
            total := !total +. (float_of_int c.ku *. w);
            allocated := true
          end
          else if c.kl >= 1 then begin
            total := !total +. (float_of_int c.kl *. w);
            allocated := true
          end;
          if w > !best_single then best_single := w
        end)
      cells;
    if c_count >= 1. then !total >= (r *. c_count) -. c_sum -. 1e-9
    else begin
      let v = if !allocated then !total else !best_single in
      v >= -1e-9
    end

  let reach_below cells ~c_count ~c_sum r =
    let total = ref 0. and allocated = ref false and best_single = ref infinity in
    List.iter
      (fun c ->
        if c.ku >= 1 then begin
          let w = c.l -. r in
          if w < 0. then begin
            total := !total +. (float_of_int c.ku *. w);
            allocated := true
          end
          else if c.kl >= 1 then begin
            total := !total +. (float_of_int c.kl *. w);
            allocated := true
          end;
          if w < !best_single then best_single := w
        end)
      cells;
    if c_count >= 1. then !total <= (r *. c_count) -. c_sum +. 1e-9
    else begin
      let v = if !allocated then !total else !best_single in
      v <= 1e-9
    end

  let avg cells ~c_count ~c_sum =
    match hosts cells with
    | [] when c_count < 1. -> Empty
    | [] -> Range (Range.point (c_sum /. c_count))
    | hs ->
        let us = Array.of_list (List.map (fun c -> c.u) hs) in
        let ls = Array.of_list (List.map (fun c -> c.l) hs) in
        if Array.exists (fun u -> u = infinity) us then
          Range (Range.make neg_infinity infinity)
        else begin
          let fin_hi = Pc_util.Stat.maximum us and fin_lo = Pc_util.Stat.minimum ls in
          let fin_lo = if Float.is_finite fin_lo then fin_lo else -1e12 in
          let certain_avg = if c_count >= 1. then Some (c_sum /. c_count) else None in
          let hi0 =
            match certain_avg with Some a -> Float.max a fin_hi | None -> fin_hi
          and lo0 =
            match certain_avg with Some a -> Float.min a fin_lo | None -> fin_lo
          in
          let lo_unbounded = Array.exists (fun l -> l = neg_infinity) ls in
          let hi =
            binary_search
              ~reachable:(reach_above cells ~c_count ~c_sum)
              ~lo:lo0 ~hi:(hi0 +. 1e-6) ~dir:`Up
          in
          let lo =
            if lo_unbounded then neg_infinity
            else
              binary_search
                ~reachable:(reach_below cells ~c_count ~c_sum)
                ~lo:(lo0 -. 1e-6) ~hi:hi0 ~dir:`Down
          in
          Range
            (Range.make ~lo_exact:false ~hi_exact:false (Float.min lo hi)
               (Float.max lo hi))
        end

  let bound ~opts set (query : Q.t) ~c_count ~c_sum =
    match prepare ~opts set query with
    | Error a -> a
    | Ok cells -> (
        match query.Q.agg with
        | Q.Count -> (
            match sum_like cells ~is_count:true with
            | Range r -> Range (Range.shift r c_count)
            | other -> other)
        | Q.Sum _ -> (
            match sum_like cells ~is_count:false with
            | Range r -> Range (Range.shift r c_sum)
            | other -> other)
        | Q.Avg _ -> avg cells ~c_count ~c_sum
        | Q.Max _ | Q.Min _ ->
            (* the per-cell shapes match the general path; certain
               combination is handled by the caller *)
            extremal cells ~is_max:(query.Q.agg = Q.Max (Option.get (Q.agg_attr query))))
end

(* ------------------------------------------------------------------ *)
(* Trivial rung: a decomposition- and solver-free interval computed    *)
(* directly from frequency caps × value bounds. The ladder's floor —   *)
(* O(n), allocation-free, cannot be starved. Soundness per aggregate:  *)
(*   COUNT  in-region rows each satisfy ≥1 overlapping PC (closure),   *)
(*          each PC holds ≤ ku rows, so COUNT ≤ Σ ku; with no query    *)
(*          predicate every kl is enforceable and distinct rows ≥ any  *)
(*          single kl, so COUNT ≥ max kl.                              *)
(*   SUM    a row assigned to one covering PC contributes ≤ max(0,u)   *)
(*          within its ≤ ku peers; dropping negative terms on the hi   *)
(*          side (and positive ones on the lo side) only loosens.      *)
(*   AVG    every row's value lies in [min l, max u] over hosting PCs, *)
(*          hence so does any average of them (certain rows widen the  *)
(*          bracket to include their exact average).                   *)
(*   MIN/MAX the extremum is one row's value, bracketed the same way.  *)
(* Overlap with the query region is tested by boxes only; a predicate  *)
(* that cannot be boxed is kept (possibly-overlapping loosens, never   *)
(* invalidates).                                                       *)
(* ------------------------------------------------------------------ *)

module Trivial = struct
  type tcell = { u : float; l : float; ku : int; kl : int }

  let cells set (query : Q.t) =
    let qpred = query.Q.where_ in
    let agg_attr = Q.agg_attr query in
    List.filter_map
      (fun (pc : Pc.t) ->
        let overlaps =
          match Box.of_pred pc.Pc.pred with
          | None -> true
          | Some b -> Option.is_some (Box.add_pred b qpred)
        in
        if not overlaps then None
        else begin
          let l, u =
            match agg_attr with
            | None -> (1., 1.)
            | Some a ->
                let iv = Pc.value_interval pc a in
                (I.lo_float iv, I.hi_float iv)
          in
          (* kl is only enforceable without a query predicate; testing
             containment would need the solver this rung must not touch *)
          let kl = if qpred = Pred.tt then pc.Pc.freq_lo else 0 in
          Some { u; l; ku = pc.Pc.freq_hi; kl }
        end)
      (Pc_set.pcs set)

  let range lo hi = Range (Range.make ~lo_exact:false ~hi_exact:false (Float.min lo hi) hi)

  let bound set (query : Q.t) ~c_count ~c_sum =
    let cells = cells set query in
    let hosts = List.filter (fun c -> c.ku >= 1) cells in
    match query.Q.agg with
    | Q.Count ->
        let hi = List.fold_left (fun acc c -> acc +. float_of_int c.ku) 0. hosts in
        let lo = List.fold_left (fun acc c -> Float.max acc (float_of_int c.kl)) 0. hosts in
        range (c_count +. lo) (c_count +. hi)
    | Q.Sum _ ->
        let hi =
          List.fold_left
            (fun acc c -> acc +. (float_of_int c.ku *. Float.max 0. c.u))
            0. hosts
        in
        let lo =
          List.fold_left
            (fun acc c -> acc +. (float_of_int c.ku *. Float.min 0. c.l))
            0. hosts
        in
        range (c_sum +. lo) (c_sum +. hi)
    | Q.Avg _ -> (
        match hosts with
        | [] when c_count < 1. -> Empty
        | [] -> Range (Range.point (c_sum /. c_count))
        | _ ->
            let lo = List.fold_left (fun acc c -> Float.min acc c.l) infinity hosts in
            let hi = List.fold_left (fun acc c -> Float.max acc c.u) neg_infinity hosts in
            let lo, hi =
              if c_count >= 1. then begin
                let a = c_sum /. c_count in
                (Float.min lo a, Float.max hi a)
              end
              else (lo, hi)
            in
            range lo hi)
    | Q.Min _ | Q.Max _ -> (
        (* certain combination is handled by the caller, as in Greedy *)
        match hosts with
        | [] -> Empty
        | _ ->
            let lo = List.fold_left (fun acc c -> Float.min acc c.l) infinity hosts in
            let hi = List.fold_left (fun acc c -> Float.max acc c.u) neg_infinity hosts in
            range lo hi)
end

(* ------------------------------------------------------------------ *)
(* Ladder driver                                                       *)
(* ------------------------------------------------------------------ *)

let use_greedy_path ~opts set = opts.use_greedy && Pc_set.is_disjoint set

(* Full-strength bound over the missing partition (exact MILP, degrading
   in place to dual bounds / admitted cells). Raises on starvation. *)
let missing_bound_exn ~ctx set (query : Q.t) =
  let opts = ctx.opts in
  if use_greedy_path ~opts set then
    Greedy.bound ~opts set query ~c_count:0. ~c_sum:0.
  else begin
    match prepare ~ctx set query with
    | Error a -> a
    | Ok prep -> (
        match query.Q.agg with
        | Q.Count -> sum_like ~ctx prep ~is_count:true
        | Q.Sum _ -> sum_like ~ctx prep ~is_count:false
        | Q.Avg _ -> avg_bounds ~ctx prep ~c_count:0. ~c_sum:0.
        | Q.Max _ -> extremal ~ctx query prep ~is_max:true
        | Q.Min _ -> extremal ~ctx query prep ~is_max:false)
  end

let is_decompose_guard msg =
  String.length msg >= 16 && String.sub msg 0 16 = "Cells.decompose:"

(* Run [f]; when the budget starves it (or the configured strategy cannot
   even enumerate), step down to the trivial rung instead of raising.
   Each rung gets its own span so a trace shows exactly where a query
   spent its time and why it fell. *)
let with_floor ~ctx f floor =
  let fall cause =
    ctx.trace.trivial <- true;
    if Trace.enabled () then
      Trace.with_span ~name:"rung.trivial" ~attrs:[ ("cause", cause) ] floor
    else floor ()
  in
  let run () =
    if Trace.enabled () then
      Trace.with_span ~name:"rung.full" (fun () ->
          match f () with
          | r ->
              Trace.add_attr "outcome" "ok";
              r
          | exception e ->
              Trace.add_attr "outcome" "degraded";
              raise e)
    else f ()
  in
  try run () with
  | B.Exhausted r -> fall ("exhausted:" ^ B.resource_name r)
  | Degrade -> fall "starved"
  | Invalid_argument msg when is_decompose_guard msg -> fall "enumeration-guard"
  | Pc_fault.Fault.Injected site ->
      (* an injected SAT/solver failure degrades exactly like budget
         exhaustion; the floor below is solver-free, so it cannot be
         re-injected *)
      fall ("fault:" ^ Pc_fault.Fault.site_name site)

let missing_answer ~ctx set query =
  with_floor ~ctx
    (fun () -> missing_bound_exn ~ctx set query)
    (fun () -> Trivial.bound set query ~c_count:0. ~c_sum:0.)

let can_be_empty set (query : Q.t) =
  List.for_all
    (fun pc -> effective_kl query.Q.where_ pc = 0)
    (Pc_set.pcs set)

(* Combined R* ∪ R? bound (§6.2's partial-ground-truth protocol): the
   certain partition is evaluated exactly; only the missing-data side is
   subject to the ladder. *)
let combined_answer ~ctx set ~certain (query : Q.t) =
  let opts = ctx.opts in
  let certain_sel = Q.selection certain query in
  let c_count = float_of_int (Pc_data.Relation.cardinality certain_sel) in
  match query.Q.agg with
  | Q.Count -> (
      match missing_answer ~ctx set query with
      | Range r -> Range (Range.shift r c_count)
      | (Empty | Infeasible) as a -> a)
  | Q.Sum a -> (
      let c_sum =
        if c_count = 0. then 0.
        else Pc_util.Stat.sum (Pc_data.Relation.column certain_sel a)
      in
      match missing_answer ~ctx set query with
      | Range r -> Range (Range.shift r c_sum)
      | (Empty | Infeasible) as ans -> ans)
  | Q.Avg a -> (
      let c_sum =
        if c_count = 0. then 0.
        else Pc_util.Stat.sum (Pc_data.Relation.column certain_sel a)
      in
      with_floor ~ctx
        (fun () ->
          if use_greedy_path ~opts set then
            Greedy.bound ~opts set query ~c_count ~c_sum
          else
            match prepare ~ctx set query with
            | Error ans -> ans
            | Ok prep -> avg_bounds ~ctx prep ~c_count ~c_sum)
        (fun () -> Trivial.bound set query ~c_count ~c_sum))
  | Q.Min a | Q.Max a -> (
      let is_max = match query.Q.agg with Q.Max _ -> true | _ -> false in
      let certain_extreme =
        if c_count = 0. then None
        else begin
          let col = Pc_data.Relation.column certain_sel a in
          Some
            (if is_max then Pc_util.Stat.maximum col else Pc_util.Stat.minimum col)
        end
      in
      let missing = missing_answer ~ctx set query in
      match (missing, certain_extreme) with
      | Infeasible, _ -> Infeasible
      | Empty, None -> Empty
      | Empty, Some m -> Range (Range.point m)
      | Range r, None -> Range r
      | Range r, Some m ->
          let empty_ok =
            (* an injected SAT failure here is absorbed conservatively:
               claiming "may be empty" only widens the combined range *)
            try can_be_empty set query
            with Pc_fault.Fault.Injected _ ->
              ctx.trace.relaxed <- true;
              true
          in
          if is_max then begin
            (* MAX(union) = max(m*, MAX(missing)); an allowed-empty
               missing partition pins the low end at m*. *)
            let lo = if empty_ok then m else Float.max m r.Range.lo in
            let hi = Float.max m r.Range.hi in
            Range (Range.make ~lo_exact:false ~hi_exact:false (Float.min lo hi) hi)
          end
          else begin
            let hi = if empty_ok then m else Float.min m r.Range.hi in
            let lo = Float.min m r.Range.lo in
            Range (Range.make ~lo_exact:false ~hi_exact:false lo (Float.max lo hi))
          end)

(* ------------------------------------------------------------------ *)
(* Public interface                                                    *)
(* ------------------------------------------------------------------ *)

let provenance_counter = function
  | Exact -> c_exact
  | Relaxed -> c_relaxed
  | Early_stopped -> c_early
  | Trivial -> c_trivial

let bound_budgeted ?(opts = default_opts) ?budget ?certain ?fdd set
    (query : Q.t) =
  let budget = match budget with Some b -> b | None -> B.unlimited () in
  let u0 = B.usage budget in
  let t0 = Pc_util.Clock.now () in
  let trace = { relaxed = false; early = false; trivial = false; admitted = 0 } in
  let ctx = { opts; budget; trace; fdd } in
  let compute () =
    let answer =
      match certain with
      | None -> missing_answer ~ctx set query
      | Some certain -> combined_answer ~ctx set ~certain query
    in
    let provenance =
      if trace.trivial then Trivial
      else if trace.early then Early_stopped
      else if trace.relaxed then Relaxed
      else Exact
    in
    (answer, provenance)
  in
  let answer, provenance =
    (* the branch keeps the disabled path closure-free *)
    if Trace.enabled () then
      Trace.with_span ~name:"bound" (fun () ->
          let ((_, p) as r) = compute () in
          Trace.add_attr "provenance" (provenance_name p);
          r)
    else compute ()
  in
  let u1 = B.usage budget in
  let elapsed = Pc_util.Clock.elapsed_s ~since:t0 in
  Counter.incr c_calls;
  Counter.incr (provenance_counter provenance);
  Pc_obs.Registry.Histogram.observe_ns h_bound (elapsed *. 1e9);
  (* the rungs this call actually engaged, in ladder order: the
     full-strength attempt always runs first; each degradation event adds
     its rung. A fall straight to the floor reads [Exact; Trivial]. *)
  let rungs =
    (Exact :: (if trace.relaxed then [ Relaxed ] else []))
    @ (if trace.early then [ Early_stopped ] else [])
    @ if trace.trivial then [ Trivial ] else []
  in
  {
    answer;
    stats =
      {
        provenance;
        rungs;
        cells = u1.B.cells - u0.B.cells;
        sat_calls = u1.B.sat_calls - u0.B.sat_calls;
        admitted_unchecked = trace.admitted;
        milp_nodes = u1.B.nodes - u0.B.nodes;
        lp_iterations = u1.B.iters - u0.B.iters;
        elapsed;
        deadline_hit = u1.B.deadline_hit;
      };
  }

let bound ?opts set query = (bound_budgeted ?opts set query).answer

let bound_with_certain ?opts set ~certain query =
  (bound_budgeted ?opts ~certain set query).answer
