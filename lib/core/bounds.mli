(** Result ranges for aggregate queries over missing data (paper §4).

    Given a closed predicate-constraint set describing the missing
    partition R? and an aggregate query, computes the hard range of values
    the aggregate can take over any R? consistent with the constraints:
    cell decomposition, then a mixed-integer program allocating row counts
    to cells (Equation 2), with the paper's special cases — greedy
    solution for disjoint constraint sets, binary search for AVG, per-cell
    scan for MIN/MAX.

    Semantics of the aggregates:
    - COUNT/SUM: the range always exists (an empty R? gives 0).
    - AVG/MIN/MAX: undefined on an empty selection, so the answer is
      [Empty] when no consistent R? can place a row in the query region;
      otherwise the range is over consistent instances with at least one
      qualifying row.
    - [Infeasible] signals a constraint system no relation satisfies
      (e.g. a frequency lower bound on an unsatisfiable predicate).

    {2 Degradation ladder}

    Every entry point is total under resource pressure: when a
    {!Pc_budget.Budget.t} (or the solvers' internal caps) cuts a stage
    short, the computation steps down a ladder of sound
    over-approximations instead of raising —

    + exact MILP allocation ({!Exact}),
    + truncated branch-and-bound whose open-node dual bound stands in for
      the optimum ({!Relaxed}),
    + decomposition with unchecked admitted cells, as in
      [Cells.Early_stop] ({!Early_stopped}),
    + a decomposition- and solver-free interval from PC frequency caps ×
      value bounds ({!Trivial}).

    Each rung only loosens the range (see DESIGN.md, "Degradation ladder
    & budgets" for the per-rung soundness argument). {!bound_budgeted}
    reports which rung produced the answer, together with consumption
    stats. Provenance tracks budget-driven degradation relative to the
    configured {!opts}: an explicitly requested [Early_stop] strategy or
    small [node_limit] is the caller's chosen baseline and still reports
    [Exact] when the budget itself never intervened — except that a
    truncated MILP always reports at least [Relaxed]. *)

type answer = Range of Range.t | Empty | Infeasible

type provenance =
  | Exact  (** full-strength pipeline, optima proved *)
  | Relaxed  (** some MILP truncated: dual bounds, not proved optima *)
  | Early_stopped  (** decomposition admitted cells without checking *)
  | Trivial  (** frequency-caps × value-bounds floor *)

val provenance_name : provenance -> string

val provenance_order : provenance -> int
(** [Exact] = 0 … [Trivial] = 3; higher is more degraded. *)

val worst_provenance : provenance -> provenance -> provenance

type stats = {
  provenance : provenance;
  rungs : provenance list;
      (** the ladder rungs this call engaged, in ladder order: the head
          is always [Exact] (the full-strength attempt), each
          degradation event appends its rung, and the last entry equals
          [provenance]. A query that fell straight from the full attempt
          to the floor reads [[Exact; Trivial]]. Request-scoped
          telemetry (the server's flight recorder) records this walk
          per request. *)
  cells : int;  (** decomposition cells materialized *)
  sat_calls : int;  (** budget-charged satisfiability checks *)
  admitted_unchecked : int;  (** cells admitted after SAT-pool exhaustion *)
  milp_nodes : int;  (** branch-and-bound nodes expanded *)
  lp_iterations : int;  (** simplex pivots *)
  elapsed : float;  (** wall-clock seconds (monotonic) for this call *)
  deadline_hit : bool;  (** the budget's deadline expired at some point *)
}

type outcome = { answer : answer; stats : stats }

type opts = {
  strategy : Cells.strategy;
  node_limit : int;  (** MILP node budget; exceeding it only loosens bounds *)
  tighten : bool;
      (** also clip cell value bounds by predicate/query ranges on the
          aggregated attribute (sound strengthening of the paper's
          U_i(a) = min value-constraint bound) *)
  use_greedy : bool;
      (** use the O(n) greedy path when the predicates are disjoint
          (paper §4.2, "Faster Algorithm in Special Cases") *)
}

val default_opts : opts

val bound_budgeted :
  ?opts:opts ->
  ?budget:Pc_budget.Budget.t ->
  ?certain:Pc_data.Relation.t ->
  ?fdd:Pc_predicate.Fdd.compiled ->
  Pc_set.t ->
  Pc_query.Query.t ->
  outcome
(** Range of the aggregate with provenance and consumption stats. With
    [certain], ranges over R* ∪ R? as {!bound_with_certain}; without,
    over R? only. [budget] defaults to an unlimited one; budgets are
    single-shot, so pass a freshly {!Pc_budget.Budget.start}ed context per
    call unless deliberately capping a batch. Never raises on budget
    exhaustion — the answer degrades down the ladder instead.

    [fdd] supplies a diagram precompiled from exactly [set] (the server
    compiles one per dataset at load). Only consulted when
    [opts.strategy = Cells.Fdd]; under that strategy the set-level
    predicate pushdown is skipped so diagram indices stay aligned with
    the set — semantics-preserving, since non-overlapping PCs never
    reach a live cell. *)

val bound : ?opts:opts -> Pc_set.t -> Pc_query.Query.t -> answer
(** Range of the aggregate over the missing partition only
    ([{(bound_budgeted set q)} .answer] with an unlimited budget). *)

val bound_with_certain :
  ?opts:opts ->
  Pc_set.t ->
  certain:Pc_data.Relation.t ->
  Pc_query.Query.t ->
  answer
(** Range over R* ∪ R?: evaluates the query exactly on the certain
    partition and combines it with the missing-data range (§6.2's
    partial-ground-truth protocol). *)

val can_be_empty : Pc_set.t -> Pc_query.Query.t -> bool
(** No frequency lower bound forces a row into the query region. *)

(** {2 Cell-level building blocks}

    Exported for {!Incremental}, which rebuilds the same allocation LP
    once and then maintains it across ingestion under pure variable-bound
    changes. The semantics are exactly those the internal preparation
    uses; see the implementation comments for the soundness notes. *)

val effective_kl : Pc_predicate.Pred.t -> Pc.t -> int
(** Frequency lower bound enforceable under query pushdown: a PC's
    missing rows may hide outside the query region unless its predicate
    is wholly contained in it (checked by SAT), so kl is only usable in
    that case. *)

val cell_value_interval :
  tighten:bool ->
  Pc_set.t ->
  Pc_predicate.Pred.t ->
  int list ->
  string ->
  Pc_interval.Interval.t option
(** Value interval for rows of the cell [active] on one attribute (the
    paper's U_i(a)/L_i(a)), optionally clipped by the predicate/query
    box; [None] when no row can exist in the cell at all. *)

val cell_inhabitable :
  tighten:bool -> Pc_set.t -> Pc_predicate.Pred.t -> int list -> bool
(** Can a row exist in this cell: every constrained attribute keeps a
    non-empty value range. *)
