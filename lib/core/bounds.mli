(** Result ranges for aggregate queries over missing data (paper §4).

    Given a closed predicate-constraint set describing the missing
    partition R? and an aggregate query, computes the hard range of values
    the aggregate can take over any R? consistent with the constraints:
    cell decomposition, then a mixed-integer program allocating row counts
    to cells (Equation 2), with the paper's special cases — greedy
    solution for disjoint constraint sets, binary search for AVG, per-cell
    scan for MIN/MAX.

    Semantics of the aggregates:
    - COUNT/SUM: the range always exists (an empty R? gives 0).
    - AVG/MIN/MAX: undefined on an empty selection, so the answer is
      [Empty] when no consistent R? can place a row in the query region;
      otherwise the range is over consistent instances with at least one
      qualifying row.
    - [Infeasible] signals a constraint system no relation satisfies
      (e.g. a frequency lower bound on an unsatisfiable predicate). *)

type answer = Range of Range.t | Empty | Infeasible

type opts = {
  strategy : Cells.strategy;
  node_limit : int;  (** MILP node budget; exceeding it only loosens bounds *)
  tighten : bool;
      (** also clip cell value bounds by predicate/query ranges on the
          aggregated attribute (sound strengthening of the paper's
          U_i(a) = min value-constraint bound) *)
  use_greedy : bool;
      (** use the O(n) greedy path when the predicates are disjoint
          (paper §4.2, "Faster Algorithm in Special Cases") *)
}

val default_opts : opts

val bound : ?opts:opts -> Pc_set.t -> Pc_query.Query.t -> answer
(** Range of the aggregate over the missing partition only. *)

val bound_with_certain :
  ?opts:opts ->
  Pc_set.t ->
  certain:Pc_data.Relation.t ->
  Pc_query.Query.t ->
  answer
(** Range over R* ∪ R?: evaluates the query exactly on the certain
    partition and combines it with the missing-data range (§6.2's
    partial-ground-truth protocol). *)

val can_be_empty : Pc_set.t -> Pc_query.Query.t -> bool
(** No frequency lower bound forces a row into the query region. *)
