module Pred = Pc_predicate.Pred
module Cnf = Pc_predicate.Cnf
module Sat = Pc_predicate.Sat
module B = Pc_budget.Budget

type cell = { active : int list; expr : Cnf.t }

type strategy = Naive | Dfs | Dfs_rewrite | Early_stop of int

type stats = {
  sat_calls : int;
  n_cells : int;
  admitted_unchecked : int;
  elapsed : float;
}

let strategy_name = function
  | Naive -> "naive"
  | Dfs -> "dfs"
  | Dfs_rewrite -> "dfs+rewrite"
  | Early_stop k -> Printf.sprintf "early-stop(%d)" k

let max_enum_bits = 24

let guard_enumeration n =
  if n > max_enum_bits then
    invalid_arg
      (Printf.sprintf
         "Cells.decompose: exhaustive strategy on %d constraints would \
          enumerate 2^%d cells"
         n n)

(* Budget adapter shared by all strategies. [check] answers true without
   consulting the solver once the SAT budget or deadline is exhausted
   (dynamic early stop: admitted cells can only loosen the bounds, never
   invalidate them — same soundness argument as [Early_stop]). [emit]
   enforces the hard cell cap: past it there is no sound way to continue
   (dropping cells would tighten), so it raises {!B.Exhausted} for the
   ladder driver to catch. *)
type budgeted = {
  check : Cnf.t -> bool;
  emit : cell list ref -> cell -> unit;
  admitting : unit -> bool;
  admitted : int ref;
}

(* Admission only degrades (false-positive cells loosen the bounds), so a
   SAT-cap overrun switches to admit mode; but it must not become a memory
   bomb on deep predicate sets, hence a hard ceiling on cells emitted
   after the switch. A deadline overrun raises instead: there is no time
   left to even enumerate, and the ladder's trivial rung needs none. *)
let max_admitted = 4096

let budgeted budget =
  let admit = ref false in
  let admitted = ref 0 in
  let check expr =
    if !admit then true
    else begin
      match budget with
      | None -> Sat.check expr
      | Some b ->
          if B.out_of_time b then raise (B.Exhausted B.Deadline)
          else if not (B.take_sat b) then begin
            admit := true;
            true
          end
          else Sat.check expr
    end
  in
  let emit cells cell =
    (match budget with
    | None -> ()
    | Some b ->
        if B.out_of_time b then raise (B.Exhausted B.Deadline);
        if not (B.take_cell b) then begin
          B.exhaust b B.Cells;
          raise (B.Exhausted B.Cells)
        end);
    if !admit then begin
      incr admitted;
      if !admitted > max_admitted then begin
        Option.iter (fun b -> B.exhaust b B.Cells) budget;
        raise (B.Exhausted B.Cells)
      end
    end;
    cells := cell :: !cells
  in
  { check; emit; admitting = (fun () -> !admit); admitted }

let naive bg preds base =
  let n = Array.length preds in
  guard_enumeration n;
  let cells = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let expr = ref base in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then
        expr := Cnf.conj (Cnf.of_pred preds.(i)) !expr
      else expr := Cnf.conj (Cnf.of_neg_pred preds.(i)) !expr
    done;
    if bg.check !expr then begin
      let active =
        List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id)
      in
      bg.emit cells { active; expr = !expr }
    end
  done;
  List.rev !cells

(* Depth-first over predicate indices; [rewrite] enables Optimization 3.
   Invariant: [expr] (the prefix expression) is known satisfiable when
   [known_sat]; in plain DFS mode we verify each extension eagerly, so the
   prefix is always known satisfiable and every extension costs a solver
   call. With rewriting, a failed positive extension certifies the
   negative one for free. *)
let dfs bg ~rewrite preds base =
  let n = Array.length preds in
  let cells = ref [] in
  let rec go i expr active =
    if i = n then begin
      match active with
      | [] -> () (* closure excludes the all-negative region *)
      | _ -> bg.emit cells { active = List.rev active; expr }
    end
    else begin
      let pos = Cnf.conj expr (Cnf.of_pred preds.(i)) in
      let neg = Cnf.conj expr (Cnf.of_neg_pred preds.(i)) in
      let pos_sat = bg.check pos in
      if pos_sat then go (i + 1) pos (i :: active);
      if rewrite && not pos_sat then
        (* X sat ∧ X∧ψ unsat ⟹ X∧¬ψ sat: skip the solver call *)
        go (i + 1) neg active
      else if bg.check neg then go (i + 1) neg active
    end
  in
  if bg.check base then go 0 base [];
  List.rev !cells

(* Optimization 4: verify prefixes only down to depth [k]; admit every
   deeper completion as satisfiable (sound for bounding: false positives
   only relax the optimization problem). *)
let early_stop bg ~k preds base =
  let n = Array.length preds in
  if n - k > max_enum_bits then guard_enumeration n;
  let cells = ref [] in
  let rec go i expr active =
    if i = n then begin
      match active with
      | [] -> ()
      | _ -> bg.emit cells { active = List.rev active; expr }
    end
    else begin
      let pos = Cnf.conj expr (Cnf.of_pred preds.(i)) in
      let neg = Cnf.conj expr (Cnf.of_neg_pred preds.(i)) in
      if i < k then begin
        let pos_sat = bg.check pos in
        if pos_sat then go (i + 1) pos (i :: active);
        if not pos_sat then go (i + 1) neg active
        else if bg.check neg then go (i + 1) neg active
      end
      else begin
        (* beyond the verified prefix: admit both branches *)
        go (i + 1) pos (i :: active);
        go (i + 1) neg active
      end
    end
  in
  if k <= 0 || bg.check base then go 0 base [];
  List.rev !cells

let decompose ?budget ?(strategy = Dfs_rewrite) ?(query_pred = Pred.tt) set =
  let preds =
    Array.of_list (List.map (fun (pc : Pc.t) -> pc.Pc.pred) (Pc_set.pcs set))
  in
  let base = Cnf.of_pred query_pred in
  let calls_before = Sat.calls () in
  let t0 = Sys.time () in
  let bg = budgeted budget in
  let cells =
    match strategy with
    | Naive -> naive bg preds base
    | Dfs -> dfs bg ~rewrite:false preds base
    | Dfs_rewrite -> dfs bg ~rewrite:true preds base
    | Early_stop k -> early_stop bg ~k preds base
  in
  let elapsed = Sys.time () -. t0 in
  let sat_calls = Sat.calls () - calls_before in
  ( cells,
    {
      sat_calls;
      n_cells = List.length cells;
      admitted_unchecked = !(bg.admitted);
      elapsed;
    } )
