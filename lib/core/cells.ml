module Pred = Pc_predicate.Pred
module Atom = Pc_predicate.Atom
module Cnf = Pc_predicate.Cnf
module Sat = Pc_predicate.Sat
module B = Pc_budget.Budget
module Counter = Pc_obs.Registry.Counter
module Trace = Pc_obs.Trace

(* Registered at load time so the --metrics key set is stable. Hot paths
   accumulate in locals (the refs inside [budgeted]) and flush once per
   decomposition. *)
let c_decompositions = Counter.make "cells.decompositions"
let c_cells = Counter.make "cells.emitted"
let c_witness_hits = Counter.make "cells.witness_hits"
let c_admitted = Counter.make "cells.admitted_unchecked"

type cell = { active : int list; expr : Cnf.t }

type strategy = Naive | Dfs | Dfs_rewrite | Early_stop of int | Fdd

type stats = {
  sat_calls : int;
  atom_ops : int;
  n_cells : int;
  admitted_unchecked : int;
  elapsed : float;
}

let strategy_name = function
  | Naive -> "naive"
  | Dfs -> "dfs"
  | Dfs_rewrite -> "dfs+rewrite"
  | Early_stop k -> Printf.sprintf "early-stop(%d)" k
  | Fdd -> "fdd"

let max_enum_bits = 24

let guard_enumeration n =
  if n > max_enum_bits then
    invalid_arg
      (Printf.sprintf
         "Cells.decompose: exhaustive strategy on %d constraints would \
          enumerate 2^%d cells"
         n n)

(* Budget adapter shared by all strategies. [check]/[decide] answer
   "satisfiable" without consulting the solver once the SAT budget or
   deadline is exhausted (dynamic early stop: admitted cells can only
   loosen the bounds, never invalidate them — same soundness argument as
   [Early_stop]). [emit] enforces the hard cell cap: past it there is no
   sound way to continue (dropping cells would tighten), so it raises
   {!B.Exhausted} for the ladder driver to catch. *)
type budgeted = {
  check : Cnf.t -> bool;  (** naive path: one solver search per subset *)
  decide : eager:bool -> Sat.state -> Sat.state option;
      (** incremental path: decide a branch state. With [eager] every
          decision runs (and is charged) one solver search; otherwise a
          live witness certifies satisfiability for free and only
          witness-dead states pay for a search. *)
  emit : cell list ref -> cell -> unit;
  admitting : unit -> bool;
  admitted : int ref;
  witness_hits : int ref;
      (** decisions certified by a live cached witness, i.e. answered
          without a solver search *)
}

(* Admission only degrades (false-positive cells loosen the bounds), so a
   SAT-cap overrun switches to admit mode; but it must not become a memory
   bomb on deep predicate sets, hence a hard ceiling on cells emitted
   after the switch. A deadline overrun raises instead: there is no time
   left to even enumerate, and the ladder's trivial rung needs none. *)
let max_admitted = 4096

let budgeted budget =
  let admit = ref false in
  let admitted = ref 0 in
  let witness_hits = ref 0 in
  let check expr =
    if !admit then true
    else begin
      match budget with
      | None -> Sat.check expr
      | Some b ->
          if B.out_of_time b then raise (B.Exhausted B.Deadline)
          else if not (B.take_sat b) then begin
            admit := true;
            true
          end
          else Sat.check expr
    end
  in
  (* A charged search: [Some] on success or after switching to admit mode
     (the state then rides along undecided), [None] on proven unsat. *)
  let solve_charged st =
    match budget with
    | None -> Sat.solve_state st
    | Some b ->
        if B.out_of_time b then raise (B.Exhausted B.Deadline)
        else if not (B.take_sat b) then begin
          admit := true;
          Some st
        end
        else Sat.solve_state st
  in
  let decide ~eager st =
    if !admit then Some st
    else if eager then solve_charged (Sat.uncertify st)
    else if Sat.certified st then begin
      incr witness_hits;
      Some st
    end
    else solve_charged st
  in
  let emit cells cell =
    (match budget with
    | None -> ()
    | Some b ->
        if B.out_of_time b then raise (B.Exhausted B.Deadline);
        if not (B.take_cell b) then begin
          B.exhaust b B.Cells;
          raise (B.Exhausted B.Cells)
        end);
    if !admit then begin
      incr admitted;
      if !admitted > max_admitted then begin
        Option.iter (fun b -> B.exhaust b B.Cells) budget;
        raise (B.Exhausted B.Cells)
      end
    end;
    cells := cell :: !cells
  in
  { check; decide; emit; admitting = (fun () -> !admit); admitted; witness_hits }

let naive bg preds base =
  let n = Array.length preds in
  guard_enumeration n;
  let pos_cnf = Array.map Cnf.of_pred preds in
  let neg_cnf = Array.map Cnf.of_neg_pred preds in
  let cells = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let expr = ref base in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then expr := Cnf.conj pos_cnf.(i) !expr
      else expr := Cnf.conj neg_cnf.(i) !expr
    done;
    if bg.check !expr then begin
      let active =
        List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id)
      in
      bg.emit cells { active; expr = !expr }
    end
  done;
  List.rev !cells

(* Depth-first over predicate indices, threading an incremental solver
   state (box + pending negated clauses + witness, see
   {!Pc_predicate.Sat}) down the recursion instead of re-solving the full
   prefix CNF at every node: a positive extension is a single box
   narrowing, a negative one adds a single clause, and only witness-dead
   states fall back to branch-and-prune seeded from the inherited box.

   [rewrite] enables Optimization 3: a failed positive extension
   certifies the negative one for free ("X sat ∧ X∧ψ unsat ⟹ X∧¬ψ
   sat"). Without it ([Dfs], Optimization 2) every surviving extension is
   verified eagerly with one charged solver search, preserving that
   strategy's historical cost model as the comparison baseline. *)
let dfs bg ~rewrite preds qpred =
  let n = Array.length preds in
  let eager = not rewrite in
  let pos_cnf = Array.map Cnf.of_pred preds in
  let neg_cnf = Array.map Cnf.of_neg_pred preds in
  let neg_clause = Array.map (fun p -> List.concat_map Atom.negate p) preds in
  let cells = ref [] in
  let rec go i st expr active =
    if i = n then begin
      match active with
      | [] -> () (* closure excludes the all-negative region *)
      | _ -> bg.emit cells { active = List.rev active; expr }
    end
    else begin
      let pos_sat =
        match Sat.assume_pred st preds.(i) with
        | None -> false
        | Some st' -> (
            match bg.decide ~eager st' with
            | None -> false
            | Some st'' ->
                go (i + 1) st'' (Cnf.conj pos_cnf.(i) expr) (i :: active);
                true)
      in
      match Sat.assume_clause st neg_clause.(i) with
      | None -> () (* the negative region is empty *)
      | Some st' ->
          let neg_expr = Cnf.conj neg_cnf.(i) expr in
          if rewrite && not pos_sat then
            (* the rewrite certificate: skip the solver search *)
            go (i + 1) st' neg_expr active
          else begin
            match bg.decide ~eager st' with
            | Some st'' -> go (i + 1) st'' neg_expr active
            | None -> ()
          end
    end
  in
  (match Option.bind (Sat.assume_pred (Sat.start ()) qpred) (bg.decide ~eager) with
  | Some st -> go 0 st (Cnf.of_pred qpred) []
  | None -> ());
  List.rev !cells

(* Optimization 4: verify prefixes only down to depth [k] (incrementally,
   with eager per-extension searches as in [Dfs]); admit every deeper
   completion as satisfiable (sound for bounding: false positives only
   relax the optimization problem). *)
let early_stop bg ~k preds qpred =
  let n = Array.length preds in
  if n - k > max_enum_bits then guard_enumeration n;
  let pos_cnf = Array.map Cnf.of_pred preds in
  let neg_cnf = Array.map Cnf.of_neg_pred preds in
  let neg_clause = Array.map (fun p -> List.concat_map Atom.negate p) preds in
  let cells = ref [] in
  let emit expr active =
    match active with
    | [] -> ()
    | _ -> bg.emit cells { active = List.rev active; expr }
  in
  (* beyond the verified prefix: admit both branches blindly *)
  let rec go_blind i expr active =
    if i = n then emit expr active
    else begin
      go_blind (i + 1) (Cnf.conj pos_cnf.(i) expr) (i :: active);
      go_blind (i + 1) (Cnf.conj neg_cnf.(i) expr) active
    end
  in
  let rec go i st expr active =
    if i = n then emit expr active
    else if i >= k then go_blind i expr active
    else begin
      let pos_sat =
        match Sat.assume_pred st preds.(i) with
        | None -> false
        | Some st' -> (
            match bg.decide ~eager:true st' with
            | None -> false
            | Some st'' ->
                go (i + 1) st'' (Cnf.conj pos_cnf.(i) expr) (i :: active);
                true)
      in
      match Sat.assume_clause st neg_clause.(i) with
      | None -> ()
      | Some st' ->
          let neg_expr = Cnf.conj neg_cnf.(i) expr in
          if not pos_sat then go (i + 1) st' neg_expr active
          else begin
            match bg.decide ~eager:true st' with
            | Some st'' -> go (i + 1) st'' neg_expr active
            | None -> ()
          end
    end
  in
  if k <= 0 then go_blind 0 (Cnf.of_pred qpred) []
  else begin
    match
      Option.bind (Sat.assume_pred (Sat.start ()) qpred) (bg.decide ~eager:true)
    with
    | Some st -> go 0 st (Cnf.of_pred qpred) []
    | None -> ()
  end;
  List.rev !cells

(* FDD fast path: compile the predicate set into a hash-consed interval
   decision diagram (or reuse a precompiled one) and read the satisfiable
   cells straight off the reachable leaves — zero solver searches. Cell
   exprs are rebuilt exactly as the DFS builds them (query CNF first,
   then one conjunct per predicate in index order) so the two strategies
   are output-identical, which the qcheck oracle property pins down. *)
let fdd_path bg ?budget ?fdd preds query_pred =
  (match budget with
  | Some b when B.out_of_time b -> raise (B.Exhausted B.Deadline)
  | _ -> ());
  let compiled =
    match fdd with
    | Some f when Pc_predicate.Fdd.n_preds f = Array.length preds -> f
    | _ -> Pc_predicate.Fdd.compile preds
  in
  let actives = Pc_predicate.Fdd.cells ~query:query_pred compiled in
  let n = Array.length preds in
  let pos_cnf = Array.map Cnf.of_pred preds in
  let neg_cnf = Array.map Cnf.of_neg_pred preds in
  let base = Cnf.of_pred query_pred in
  let cells = ref [] in
  List.iter
    (fun active ->
      let expr = ref base in
      let rest = ref active in
      for i = 0 to n - 1 do
        match !rest with
        | j :: tl when j = i ->
            expr := Cnf.conj pos_cnf.(i) !expr;
            rest := tl
        | _ -> expr := Cnf.conj neg_cnf.(i) !expr
      done;
      bg.emit cells { active; expr = !expr })
    actives;
  List.rev !cells

(* Compile-once memo for the Fdd strategy: one slot keyed on the set's
   physical identity. Predicates inside a [Pc_set.t] are immutable, so a
   physical hit can never be stale; callers that re-bound the same set
   (the common shape: one set, many queries) pay compile exactly once.
   The server still passes its per-dataset ?fdd explicitly, which wins
   over the memo. A losing race just compiles twice; both results are
   equivalent. *)
let fdd_memo : (Pc_set.t * Pc_predicate.Fdd.compiled) option Atomic.t =
  Atomic.make None

let fdd_for set preds =
  match Atomic.get fdd_memo with
  | Some (s, f) when s == set -> f
  | _ ->
      let f = Pc_predicate.Fdd.compile preds in
      Atomic.set fdd_memo (Some (set, f));
      f

let decompose_run ?budget ?fdd ~strategy ~query_pred set =
  let preds =
    Array.of_list (List.map (fun (pc : Pc.t) -> pc.Pc.pred) (Pc_set.pcs set))
  in
  let base = Cnf.of_pred query_pred in
  let calls_before = Sat.calls () in
  let atoms_before = Sat.atom_ops () in
  let t0 = Pc_util.Clock.now () in
  let bg = budgeted budget in
  let cells =
    match strategy with
    | Naive -> naive bg preds base
    | Dfs -> dfs bg ~rewrite:false preds query_pred
    | Dfs_rewrite -> dfs bg ~rewrite:true preds query_pred
    | Early_stop k -> early_stop bg ~k preds query_pred
    | Fdd ->
        let fdd =
          match fdd with Some f -> f | None -> fdd_for set preds
        in
        fdd_path bg ?budget ~fdd preds query_pred
  in
  let elapsed = Pc_util.Clock.elapsed_s ~since:t0 in
  let sat_calls = Sat.calls () - calls_before in
  let atom_ops = Sat.atom_ops () - atoms_before in
  let n_cells = List.length cells in
  Counter.add c_cells n_cells;
  Counter.add c_witness_hits !(bg.witness_hits);
  Counter.add c_admitted !(bg.admitted);
  ( cells,
    {
      sat_calls;
      atom_ops;
      n_cells;
      admitted_unchecked = !(bg.admitted);
      elapsed;
    } )

let decompose ?budget ?fdd ?(strategy = Dfs_rewrite) ?(query_pred = Pred.tt)
    set =
  Counter.incr c_decompositions;
  (* the branch keeps the disabled path closure-free *)
  if Trace.enabled () then
    Trace.with_span ~name:"decompose"
      ~attrs:[ ("strategy", strategy_name strategy) ]
      (fun () ->
        let ((_, stats) as r) =
          decompose_run ?budget ?fdd ~strategy ~query_pred set
        in
        Trace.add_attr "cells" (string_of_int stats.n_cells);
        Trace.add_attr "sat_calls" (string_of_int stats.sat_calls);
        r)
  else decompose_run ?budget ?fdd ~strategy ~query_pred set
