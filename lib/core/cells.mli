(** Cell decomposition (paper §4.1): split possibly-overlapping predicates
    into disjoint satisfiable cells.

    A cell is identified by its non-empty set of *active* constraints A:
    its region is [Q ∧ (∧_{i∈A} ψᵢ) ∧ (∧_{i∉A} ¬ψᵢ)], where [Q] is the
    target query's predicate (pushdown, Optimization 1). The all-negative
    cell is excluded by closure. Strategies:

    - [Naive]: test all 2ⁿ − 1 subsets (paper's baseline; n ≤ 24 enforced).
    - [Dfs]: depth-first over predicates, pruning unsatisfiable prefixes
      (Optimization 2) — one solver search per surviving extension.
    - [Dfs_rewrite]: additionally uses the rewrite rule
      "X sat ∧ (X∧ψ unsat) ⟹ X∧¬ψ sat" to skip solver calls
      (Optimization 3).
    - [Early_stop k]: prune with DFS for the first [k] levels only and
      admit every deeper cell unchecked (Optimization 4) — may yield
      false-positive cells, which loosen but never invalidate the bounds.
    - [Fdd]: compile the predicate set into a hash-consed interval
      decision diagram ({!Pc_predicate.Fdd}) and read the satisfiable
      cells off the reachable leaves — zero solver searches, and the
      compiled diagram can be built once per PC set and reused across
      queries via the [?fdd] argument. Output-identical to
      [Dfs_rewrite] (same cells, same order, same exprs); the DFS
      decomposer remains the qcheck reference oracle.

    The DFS strategies are {e incremental}: instead of re-solving the
    whole prefix CNF at each node (O(depth²) atom work per path), they
    thread a {!Pc_predicate.Sat.state} down the recursion — a positive
    extension is a single box narrowing, a negative one appends a single
    clause, and a cached witness certifies most branches without any
    search (≈O(depth) atom work per path). [Dfs_rewrite] exploits this
    fully; plain [Dfs] keeps its eager one-search-per-extension
    accounting so Figure 7's strategy comparison stays meaningful. *)

type cell = {
  active : int list;  (** indices into the PC set, ascending, non-empty *)
  expr : Pc_predicate.Cnf.t;  (** the cell's region *)
}

type strategy = Naive | Dfs | Dfs_rewrite | Early_stop of int | Fdd

type stats = {
  sat_calls : int;  (** satisfiability-solver searches *)
  atom_ops : int;
      (** atom-level box operations performed by the solver — the
          machine-level measure of decomposition effort (global counter
          delta: concurrent decompositions on other domains leak into
          each other's per-call readings; totals remain exact) *)
  n_cells : int;  (** satisfiable (or admitted) cells *)
  admitted_unchecked : int;
      (** cells admitted without a solver check after the budget's
          SAT-call pool ran dry (dynamic early stop — same soundness as
          [Early_stop]: only loosens) *)
  elapsed : float;  (** wall-clock seconds (monotonic) *)
}

val decompose :
  ?budget:Pc_budget.Budget.t ->
  ?fdd:Pc_predicate.Fdd.compiled ->
  ?strategy:strategy ->
  ?query_pred:Pc_predicate.Pred.t ->
  Pc_set.t ->
  cell list * stats
(** [?fdd] (only consulted by the [Fdd] strategy) supplies a diagram
    precompiled from exactly this PC set, skipping the per-call compile;
    a size mismatch falls back to compiling fresh.

    Budget semantics: exhausting the SAT-call pool switches to admitting
    cells unchecked (bounded by an internal ceiling); exhausting the cell
    cap or the deadline raises {!Pc_budget.Budget.Exhausted} — past those
    there is no sound way to keep enumerating, and the caller is expected
    to degrade to a decomposition-free bound. Raises [Invalid_argument]
    when [Naive] or [Early_stop] would enumerate more than 2²⁴ cells. *)

val strategy_name : strategy -> string
