type impact = {
  name : string;
  without : Bounds.answer;
  hi_widening : float;
  lo_widening : float;
}

type report = { baseline : Bounds.answer; impacts : impact list }

let hi_of = function
  | Bounds.Range r -> r.Range.hi
  | Bounds.Empty -> neg_infinity
  | Bounds.Infeasible -> neg_infinity

let lo_of = function
  | Bounds.Range r -> r.Range.lo
  | Bounds.Empty -> infinity
  | Bounds.Infeasible -> infinity

let widenings ~baseline ~without =
  let dh = hi_of without -. hi_of baseline in
  let dl = lo_of baseline -. lo_of without in
  (* clamp numeric noise and the degenerate empty/infeasible encodings *)
  let clean x = if Float.is_nan x then 0. else Float.max 0. x in
  (clean dh, clean dl)

(* "Dropping" a constraint must not also revoke its region's permission
   to hold rows (closure makes predicates double as existence
   permissions), so the counterfactual keeps the predicate but relaxes
   the belief to vacuous: no value bounds, a huge frequency cap. *)
let vacuous_ku = 1_000_000_000

let relax (pc : Pc.t) =
  Pc.make ~name:pc.Pc.name ~pred:pc.Pc.pred ~values:[] ~freq:(0, vacuous_ku) ()

let leave_one_out ?opts set query =
  let baseline = Bounds.bound ?opts set query in
  let pcs = Pc_set.pcs set in
  let impacts =
    List.mapi
      (fun i (pc : Pc.t) ->
        let relaxed = List.mapi (fun j p -> if j = i then relax p else p) pcs in
        let without = Bounds.bound ?opts (Pc_set.make relaxed) query in
        let hi_widening, lo_widening = widenings ~baseline ~without in
        { name = pc.Pc.name; without; hi_widening; lo_widening })
      pcs
  in
  { baseline; impacts }

let binding report =
  List.filter (fun i -> i.hi_widening > 1e-9 || i.lo_widening > 1e-9) report.impacts
  |> List.stable_sort (fun a b ->
         let c = Float.compare b.hi_widening a.hi_widening in
         if c <> 0 then c else Float.compare b.lo_widening a.lo_widening)

let pp_answer ppf = function
  | Bounds.Range r -> Range.pp ppf r
  | Bounds.Empty -> Format.fprintf ppf "(empty)"
  | Bounds.Infeasible -> Format.fprintf ppf "(infeasible)"

let pp_report ppf report =
  Format.fprintf ppf "@[<v>baseline: %a@," pp_answer report.baseline;
  List.iter
    (fun i ->
      Format.fprintf ppf "  without %-20s %a  (hi +%g, lo -%g)@," i.name
        pp_answer i.without i.hi_widening i.lo_widening)
    report.impacts;
  Format.fprintf ppf "@]"
