(** Attribution of result ranges to individual constraints, towards the
    paper's stated future work of "understanding the robustness
    properties of result ranges" (§8): which constraints is a bound
    actually resting on?

    Each constraint is *relaxed* in turn (its predicate kept — under
    closure a predicate doubles as an existence permission — but its
    value bounds and frequency cap made vacuous) and the range is
    recomputed. A constraint whose relaxation widens the range is
    *binding*; one whose relaxation blows a side up toward infinity is
    *load-bearing* — it is the only thing standing between the analyst
    and an unbounded answer. Analysts should scrutinize binding
    constraints first: they are the beliefs the conclusion depends on. *)

type impact = {
  name : string;
  without : Bounds.answer;  (** range when this constraint is dropped *)
  hi_widening : float;
      (** increase of the upper bound when dropped; [infinity] for a
          load-bearing constraint, [0.] for a redundant one *)
  lo_widening : float;  (** decrease of the lower bound when dropped *)
}

type report = { baseline : Bounds.answer; impacts : impact list }

val leave_one_out :
  ?opts:Bounds.opts -> Pc_set.t -> Pc_query.Query.t -> report
(** O(n) bound computations. *)

val binding : report -> impact list
(** Impacts with non-zero widening, most influential (by [hi_widening],
    then [lo_widening]) first. *)

val pp_report : Format.formatter -> report -> unit
