module I = Pc_interval.Interval
module Atom = Pc_predicate.Atom
module Schema = Pc_data.Schema
module Relation = Pc_data.Relation
module Value = Pc_data.Value

let pearson xs ys =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let mx = Pc_util.Stat.mean xs and my = Pc_util.Stat.mean ys in
    let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0. || !syy = 0. then 0. else !sxy /. sqrt (!sxx *. !syy)
  end

(* Fraction of the aggregate's variance explained by the categorical
   grouping (eta-squared). *)
let r_squared_grouped rel ~agg ~by =
  let total = Relation.column rel agg in
  if Array.length total < 2 then 0.
  else begin
    let grand_mean = Pc_util.Stat.mean total in
    let ss_total =
      Array.fold_left (fun acc x -> acc +. ((x -. grand_mean) ** 2.)) 0. total
    in
    if ss_total = 0. then 0.
    else begin
      let ss_between =
        Relation.group_by rel by
        |> List.fold_left
             (fun acc (_, group) ->
               let xs = Relation.column group agg in
               let m = Pc_util.Stat.mean xs in
               acc
               +. (float_of_int (Array.length xs) *. ((m -. grand_mean) ** 2.)))
             0.
      in
      ss_between /. ss_total
    end
  end

let correlated_attrs rel ~agg ~candidates ~k =
  let schema = Relation.schema rel in
  let scored =
    List.filter_map
      (fun attr ->
        if attr = agg || not (Schema.mem schema attr) then None
        else begin
          let score =
            match Schema.kind schema attr with
            | Schema.Numeric ->
                Float.abs (pearson (Relation.column rel attr) (Relation.column rel agg))
            | Schema.Categorical -> r_squared_grouped rel ~agg ~by:attr
          in
          Some (attr, score)
        end)
      candidates
  in
  List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) scored
  |> List.filteri (fun i _ -> i < k)
  |> List.map fst

(* ------------------------------------------------------------------ *)
(* Grid partitioning shared by Corr-PC and the equi-width histogram    *)
(* ------------------------------------------------------------------ *)

type axis =
  | Num_axis of string * float array  (** edges, length = buckets + 1 *)
  | Cat_axis of string * string array

let axis_size = function
  | Num_axis (_, edges) -> Array.length edges - 1
  | Cat_axis (_, vs) -> Array.length vs

(* Index of the bucket holding [x]: the last bucket is closed above. *)
let num_bucket edges x =
  let b = Array.length edges - 1 in
  let rec search lo hi =
    (* invariant: edges.(lo) <= x, searching the greatest i with
       edges.(i) <= x *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi + 1) / 2 in
      if edges.(mid) <= x then search mid hi else search lo (mid - 1)
    end
  in
  if x < edges.(0) then 0
  else begin
    let i = search 0 (b - 1) in
    min i (b - 1)
  end

let axis_bucket axis (v : Value.t) =
  match (axis, v) with
  | Num_axis (_, edges), Value.Num x -> num_bucket edges x
  | Cat_axis (_, vs), Value.Str s ->
      let rec find i = if vs.(i) = s then i else find (i + 1) in
      find 0
  | Num_axis _, Value.Str _ | Cat_axis _, Value.Num _ ->
      invalid_arg "Generate: attribute kind mismatch"

let axis_atom axis i =
  match axis with
  | Cat_axis (attr, vs) -> Atom.cat_eq attr vs.(i)
  | Num_axis (attr, edges) ->
      let b = Array.length edges - 1 in
      let lo = edges.(i) and hi = edges.(i + 1) in
      let hi_ep = if i = b - 1 then I.Closed hi else I.Open hi in
      Atom.Num_range (attr, I.make_exn (I.Closed lo) hi_ep)

let quantile_edges xs buckets =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let raw =
    Array.init (buckets + 1) (fun i ->
        if i = buckets then sorted.(n - 1)
        else sorted.(i * n / buckets))
  in
  (* collapse duplicate edges caused by repeated values *)
  let edges = ref [ raw.(0) ] in
  Array.iter (fun e -> if e > List.hd !edges then edges := e :: !edges) raw;
  let edges = Array.of_list (List.rev !edges) in
  if Array.length edges < 2 then [| raw.(0); raw.(0) +. 1e-9 |] else edges

let uniform_edges xs buckets =
  let lo = Pc_util.Stat.minimum xs and hi = Pc_util.Stat.maximum xs in
  if lo = hi then [| lo; hi +. 1e-9 |]
  else
    Array.init (buckets + 1) (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int buckets))

type bucket_acc = {
  mutable count : int;
  mins : float array;
  maxs : float array;
}

let grid_pcs rel ~axes ~value_attrs ~freq_of_count =
  let d = List.length axes in
  if d = 0 then invalid_arg "Generate: no partition axes";
  let axes = Array.of_list axes in
  let sizes = Array.map axis_size axes in
  let total_buckets = Array.fold_left ( * ) 1 sizes in
  let schema = Relation.schema rel in
  let attr_idx =
    Array.map
      (fun axis ->
        let name =
          match axis with Num_axis (a, _) | Cat_axis (a, _) -> a
        in
        Schema.index schema name)
      axes
  in
  let value_idx = List.map (fun a -> (a, Schema.index schema a)) value_attrs in
  let nv = List.length value_idx in
  let buckets : (int, bucket_acc) Hashtbl.t = Hashtbl.create 256 in
  ignore total_buckets;
  Relation.iter
    (fun row ->
      let key = ref 0 in
      Array.iteri
        (fun ai axis ->
          let b = axis_bucket axis row.(attr_idx.(ai)) in
          key := (!key * sizes.(ai)) + b)
        axes;
      let acc =
        match Hashtbl.find_opt buckets !key with
        | Some acc -> acc
        | None ->
            let acc =
              {
                count = 0;
                mins = Array.make nv infinity;
                maxs = Array.make nv neg_infinity;
              }
            in
            Hashtbl.add buckets !key acc;
            acc
      in
      acc.count <- acc.count + 1;
      List.iteri
        (fun vi (_, idx) ->
          let x = Value.as_num row.(idx) in
          if x < acc.mins.(vi) then acc.mins.(vi) <- x;
          if x > acc.maxs.(vi) then acc.maxs.(vi) <- x)
        value_idx)
    rel;
  (* decode a flat key back into per-axis bucket indices *)
  let decode key =
    let ids = Array.make (Array.length axes) 0 in
    let k = ref key in
    for ai = Array.length axes - 1 downto 0 do
      ids.(ai) <- !k mod sizes.(ai);
      k := !k / sizes.(ai)
    done;
    ids
  in
  Hashtbl.fold
    (fun key acc pcs ->
      let ids = decode key in
      let atoms =
        Array.to_list (Array.mapi (fun ai axis -> axis_atom axis ids.(ai)) axes)
      in
      let values =
        List.mapi
          (fun vi (attr, _) -> (attr, I.closed acc.mins.(vi) acc.maxs.(vi)))
          value_idx
      in
      Pc.make ~pred:atoms ~values ~freq:(freq_of_count acc.count) () :: pcs)
    buckets []
  |> List.sort (fun (a : Pc.t) b -> String.compare a.Pc.name b.Pc.name)

let default_value_attrs rel =
  Schema.numeric_names (Relation.schema rel)

let build_axes rel ~attrs ~numeric_buckets ~edges_fn =
  let schema = Relation.schema rel in
  List.map
    (fun attr ->
      match Schema.kind schema attr with
      | Schema.Numeric -> Num_axis (attr, edges_fn (Relation.column rel attr) numeric_buckets)
      | Schema.Categorical ->
          Cat_axis (attr, Array.of_list (Relation.distinct_strings rel attr)))
    attrs

let per_axis_buckets rel ~attrs ~n =
  let schema = Relation.schema rel in
  let numeric =
    List.length (List.filter (fun a -> Schema.kind schema a = Schema.Numeric) attrs)
  in
  if numeric = 0 then 1
  else begin
    let cat_product =
      List.fold_left
        (fun acc a ->
          match Schema.kind schema a with
          | Schema.Categorical -> acc * max 1 (List.length (Relation.distinct_strings rel a))
          | Schema.Numeric -> acc)
        1 attrs
    in
    let remaining = max 1 (n / max 1 cat_product) in
    max 1
      (int_of_float
         (Float.round (float_of_int remaining ** (1. /. float_of_int numeric))))
  end

let corr_partition ?value_attrs ?(exact_counts = false) rel ~attrs ~n () =
  if Relation.is_empty rel then []
  else begin
    let value_attrs = Option.value value_attrs ~default:(default_value_attrs rel) in
    let buckets = per_axis_buckets rel ~attrs ~n in
    let axes = build_axes rel ~attrs ~numeric_buckets:buckets ~edges_fn:quantile_edges in
    let freq_of_count c = if exact_counts then (c, c) else (0, c) in
    grid_pcs rel ~axes ~value_attrs ~freq_of_count
  end

let equiwidth_grid ?value_attrs rel ~attrs ~bins () =
  if Relation.is_empty rel then []
  else begin
    let value_attrs = Option.value value_attrs ~default:(default_value_attrs rel) in
    let axes = build_axes rel ~attrs ~numeric_buckets:bins ~edges_fn:uniform_edges in
    grid_pcs rel ~axes ~value_attrs ~freq_of_count:(fun c -> (c, c))
  end

let rand_pcs ?value_attrs ?width_frac rng rel ~attrs ~n () =
  if Relation.is_empty rel then []
  else begin
    let schema = Relation.schema rel in
    List.iter
      (fun a ->
        if Schema.kind schema a <> Schema.Numeric then
          invalid_arg "Generate.rand_pcs: only numeric partition attributes")
      attrs;
    let value_attrs = Option.value value_attrs ~default:(default_value_attrs rel) in
    let ranges =
      List.map (fun a -> (a, Option.get (Relation.min_max rel a))) attrs
    in
    let random_pc i =
      let atoms =
        List.map
          (fun (a, (lo, hi)) ->
            match width_frac with
            | None ->
                let x = Pc_util.Rng.uniform rng ~lo ~hi
                and y = Pc_util.Rng.uniform rng ~lo ~hi in
                Atom.between a (Float.min x y) (Float.max x y)
            | Some (wlo, whi) ->
                let w = (hi -. lo) *. Pc_util.Rng.uniform rng ~lo:wlo ~hi:whi in
                let start =
                  Pc_util.Rng.uniform rng ~lo ~hi:(Float.max lo (hi -. w))
                in
                Atom.between a start (start +. w))
          ranges
      in
      let matching =
        Relation.filter
          (fun row -> List.for_all (fun atom -> Atom.eval schema atom row) atoms)
          rel
      in
      let count = Relation.cardinality matching in
      let values =
        if count = 0 then []
        else
          List.map
            (fun a ->
              let lo, hi = Option.get (Relation.min_max matching a) in
              (a, I.closed lo hi))
            value_attrs
      in
      Pc.make ~name:(Printf.sprintf "rand%d" i) ~pred:atoms ~values
        ~freq:(0, count) ()
    in
    let catch_all =
      let values =
        List.map
          (fun a ->
            let lo, hi = Option.get (Relation.min_max rel a) in
            (a, I.closed lo hi))
          value_attrs
      in
      Pc.make ~name:"catch_all" ~pred:Pc_predicate.Pred.tt ~values
        ~freq:(0, Relation.cardinality rel) ()
    in
    catch_all :: List.init (max 0 (n - 1)) random_pc
  end
