(** PC generation schemes used by the paper's macro-benchmarks (§6.1.4):
    [Corr-PC] — equi-cardinality partitions over attributes correlated
    with the aggregate — and [Rand-PC] — random overlapping constraints.
    Histograms are generated as the equi-width special case.

    All generators derive constraints that *hold by construction* on the
    relation they summarize (typically the missing partition, matching the
    paper's idealized protocol where every baseline gets true information
    about the missing data in O(n) space). *)

val correlated_attrs :
  Pc_data.Relation.t -> agg:string -> candidates:string list -> k:int -> string list
(** The [k] candidates most correlated with [agg]: numeric candidates by
    |Pearson correlation|, categorical ones by the R² of group means. *)

val corr_partition :
  ?value_attrs:string list ->
  ?exact_counts:bool ->
  Pc_data.Relation.t ->
  attrs:string list ->
  n:int ->
  unit ->
  Pc.t list
(** Equi-cardinality grid partition over [attrs] with roughly [n]
    non-empty buckets. Each bucket becomes one PC: its predicate is the
    bucket box, its value constraint the min/max of each [value_attrs]
    (default: all numeric attributes) within the bucket, its frequency
    (0, bucket count) — or (count, count) with [exact_counts], which
    also yields informative lower bounds. The result is disjoint, so the
    greedy solver path applies. *)

val rand_pcs :
  ?value_attrs:string list ->
  ?width_frac:float * float ->
  Pc_util.Rng.t ->
  Pc_data.Relation.t ->
  attrs:string list ->
  n:int ->
  unit ->
  Pc.t list
(** [n] random overlapping range predicates over numeric [attrs], each
    with exact value ranges and counts of its matching rows, plus one
    catch-all constraint that guarantees coverage of the space.
    [width_frac = (lo, hi)] controls window widths as a fraction of each
    attribute's domain (default: the difference of two uniform draws,
    mean 1/3). *)

val equiwidth_grid :
  ?value_attrs:string list ->
  Pc_data.Relation.t ->
  attrs:string list ->
  bins:int ->
  unit ->
  Pc.t list
(** Equi-width grid ([bins] per numeric attribute; one bucket per distinct
    value of categorical attributes). This is the Histogram baseline
    (§6.1.3) expressed as disjoint PCs with exact per-bucket counts. *)
