module Q = Pc_query.Query
module Atom = Pc_predicate.Atom

type result = {
  groups : (Pc_data.Value.t * Bounds.answer) list;
  residual : Bounds.answer option;
}

let keys_of_pred by pred =
  List.concat_map
    (fun atom ->
      match atom with
      | Atom.Cat_eq (a, s) when a = by -> [ s ]
      | Atom.Cat_in (a, ss) when a = by -> ss
      | Atom.Cat_eq _ | Atom.Cat_in _ | Atom.Cat_neq _ | Atom.Cat_not_in _
      | Atom.Num_range _ ->
          [])
    pred

let known_keys set ~certain ~by =
  let schema = Pc_data.Relation.schema certain in
  (match Pc_data.Schema.kind schema by with
  | Pc_data.Schema.Categorical -> ()
  | Pc_data.Schema.Numeric ->
      invalid_arg "Group_by: grouping attribute must be categorical");
  let from_certain = Pc_data.Relation.distinct_strings certain by in
  let from_pcs =
    List.concat_map (fun (pc : Pc.t) -> keys_of_pred by pc.Pc.pred) (Pc_set.pcs set)
  in
  List.sort_uniq String.compare (from_certain @ from_pcs)

(* Can a missing row take a key outside [keys]? True when some
   constraint's predicate is satisfiable with [by ∉ keys]. *)
let admits_residual set ~by ~keys =
  List.exists
    (fun (pc : Pc.t) ->
      let cnf =
        Pc_predicate.Cnf.conj
          (Pc_predicate.Cnf.of_pred pc.Pc.pred)
          [ [ Atom.Cat_not_in (by, keys) ] ]
      in
      Pc_predicate.Sat.check cnf)
    (Pc_set.pcs set)

let bound ?opts ?pool set ~certain ~by (query : Q.t) =
  let pool = match pool with Some p -> p | None -> Pc_par.Pool.default () in
  let keys = known_keys set ~certain ~by in
  (* per-group bounds are independent solver runs over disjoint query
     regions — the natural parallel unit of a GROUP-BY *)
  let groups =
    Pc_par.Pool.parallel_map pool
      (fun key ->
        let where_ = query.Q.where_ @ [ Atom.cat_eq by key ] in
        ( Pc_data.Value.Str key,
          Bounds.bound_with_certain ?opts set ~certain { query with Q.where_ } ))
      keys
  in
  let residual =
    if keys <> [] && not (admits_residual set ~by ~keys) then None
    else begin
      let where_ = query.Q.where_ @ [ Atom.Cat_not_in (by, keys) ] in
      Some (Bounds.bound ?opts set { query with Q.where_ })
    end
  in
  { groups; residual }
