(** GROUP-BY contingency analysis. The paper treats a GROUP-BY query as a
    union of per-group queries (§2); this module materializes that union.

    The group keys are discovered from the certain partition and from the
    categorical equality/membership atoms of the constraint predicates —
    a missing row can only form a *new* group if some constraint admits a
    key outside both, which is reported via [residual]. *)

type result = {
  groups : (Pc_data.Value.t * Bounds.answer) list;
      (** one result range per known group key *)
  residual : Bounds.answer option;
      (** range for rows whose key is provably outside the known groups
          (an open categorical domain admits unseen keys);
          [None] when no constraint admits such rows *)
}

val bound :
  ?opts:Bounds.opts ->
  ?pool:Pc_par.Pool.t ->
  Pc_set.t ->
  certain:Pc_data.Relation.t ->
  by:string ->
  Pc_query.Query.t ->
  result
(** [bound set ~certain ~by query] computes the result range of [query]
    for every group of [by]. [by] must be a categorical attribute of the
    certain partition's schema.

    Per-group bounds run on [pool] (default {!Pc_par.Pool.default}); they
    are independent solves, so the result is identical to the sequential
    one for any pool size. *)

val known_keys : Pc_set.t -> certain:Pc_data.Relation.t -> by:string -> string list
(** The group keys considered: certain-partition values plus constraint
    predicate constants, sorted. *)
