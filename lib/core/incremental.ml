module I = Pc_interval.Interval
module Fdd = Pc_predicate.Fdd
module S = Pc_lp.Simplex
module Q = Pc_query.Query
module Counter = Pc_obs.Registry.Counter

let c_engines = Counter.make "incr.engines"
let c_warm = Counter.make "incr.rebounds_warm"
let c_cold = Counter.make "incr.rebounds_cold"

type t = {
  n_pcs : int;
  n_cells : int;
  n_vars : int;  (* cells, then one w per covered PC *)
  w_of_pc : int array;  (* -1: no in-query cover, consumption is moot *)
  ku : float array;  (* per-PC cap, the clamp for w *)
  prob_hi : S.problem;
  prob_lo : S.problem option;  (* [None]: the lower bound is constantly 0 *)
  lo_vec : float array;
  hi_vec : float array;
  mutable snap_hi : S.snapshot option;
  mutable snap_lo : S.snapshot option;
}

let supported (query : Q.t) =
  match query.Q.agg with Q.Count | Q.Sum _ -> true | _ -> false

let n_cells t = t.n_cells

let create ?(tighten = true) ~fdd set (query : Q.t) =
  let qpred = query.Q.where_ in
  let n_pcs = Pc_set.size set in
  if (not (supported query)) || Fdd.n_preds fdd <> n_pcs then None
  else begin
    let actives =
      Fdd.cells ~query:qpred fdd
      |> List.filter (Bounds.cell_inhabitable ~tighten set qpred)
      |> Array.of_list
    in
    let n_cells = Array.length actives in
    let agg_attr = Q.agg_attr query in
    (* per-cell objective coefficients (u for the hi side, l for the lo) *)
    let coeff =
      Array.map
        (fun active ->
          match agg_attr with
          | None -> (1., 1.)
          | Some a -> (
              match Bounds.cell_value_interval ~tighten set qpred active a with
              | None -> (0., 0.)
              | Some iv -> (I.hi_float iv, I.lo_float iv)))
        actives
    in
    let covers = Array.make n_pcs [] in
    Array.iteri
      (fun i active -> List.iter (fun j -> covers.(j) <- i :: covers.(j)) active)
      actives;
    let w_of_pc = Array.make n_pcs (-1) in
    let ku = Array.make n_pcs 0. in
    let n_vars = ref n_cells in
    let cons = ref [] in
    let all_kl_zero = ref true in
    let out_of_scope = ref false in
    for j = 0 to n_pcs - 1 do
      let pc = Pc_set.get set j in
      ku.(j) <- float_of_int pc.Pc.freq_hi;
      let kl = Bounds.effective_kl qpred pc in
      if kl > 0 then all_kl_zero := false;
      match covers.(j) with
      | [] ->
          (* an enforceable lower bound with nowhere to place rows makes
             the query infeasible regardless of consumption; leave the
             diagnosis to the full path *)
          if kl > 0 then out_of_scope := true
      | cover ->
          let w = !n_vars in
          incr n_vars;
          w_of_pc.(j) <- w;
          let coeffs = (w, 1.) :: List.map (fun i -> (i, 1.)) cover in
          cons := S.c_le coeffs ku.(j) :: !cons;
          if kl > 0 then cons := S.c_ge coeffs (float_of_int kl) :: !cons
    done;
    let is_count = agg_attr = None in
    let lo_const_zero =
      !all_kl_zero && (is_count || Array.for_all (fun (_, l) -> l >= 0.) coeff)
    in
    (* infinite coefficients need the can-host analysis of the full
       path; an engine restricted to finite objectives stays a pure
       bounds-only LP *)
    if Array.exists (fun (u, _) -> not (Float.is_finite u)) coeff then
      out_of_scope := true;
    if
      (not lo_const_zero)
      && Array.exists (fun (_, l) -> not (Float.is_finite l)) coeff
    then out_of_scope := true;
    if !out_of_scope then None
    else begin
      let objective side =
        List.filter
          (fun (_, c) -> c <> 0.)
          (List.init n_cells (fun i ->
               let u, l = coeff.(i) in
               (i, if side = `Hi then u else l)))
      in
      let problem maximize obj =
        {
          S.n_vars = !n_vars;
          maximize;
          objective = obj;
          constraints = !cons;
          var_bounds = [];
        }
      in
      let lo_vec = Array.make !n_vars 0. in
      let hi_vec = Array.make !n_vars infinity in
      (* w boxes start at zero consumption; [rebound] re-pins them *)
      Array.iter (fun w -> if w >= 0 then hi_vec.(w) <- 0.) w_of_pc;
      Counter.incr c_engines;
      Some
        {
          n_pcs;
          n_cells;
          n_vars = !n_vars;
          w_of_pc;
          ku;
          prob_hi = problem true (objective `Hi);
          prob_lo =
            (if lo_const_zero then None
             else Some (problem false (objective `Lo)));
          lo_vec;
          hi_vec;
          snap_hi = None;
          snap_lo = None;
        }
    end
  end

let integral_cells t (sol : S.solution) =
  let ok = ref true in
  for i = 0 to t.n_cells - 1 do
    let x = sol.S.values.(i) in
    if Float.abs (x -. Float.round x) > 1e-6 *. Float.max 1. (Float.abs x)
    then ok := false
  done;
  !ok

type side_result = Value of float * bool | Side_infeasible | Starved

let solve_side t prob snap =
  (match snap with None -> Counter.incr c_cold | Some _ -> Counter.incr c_warm);
  let bounds = (t.lo_vec, t.hi_vec) in
  let outcome, snap' =
    match snap with
    | Some s -> S.solve_from ~snapshot:s ~bounds prob
    | None -> S.solve_snapshot ~bounds prob
  in
  let r =
    match outcome with
    | S.Optimal sol -> Value (sol.S.objective_value, integral_cells t sol)
    | S.Unbounded ->
        Value ((if prob.S.maximize then infinity else neg_infinity), true)
    | S.Infeasible -> Side_infeasible
    | S.Stopped _ -> Starved
  in
  (r, snap')

let rebound t ~consumed =
  if Array.length consumed <> t.n_pcs then None
  else if t.n_cells = 0 then
    (* no cell overlaps the query: the missing-side aggregate is 0 *)
    Some (Bounds.Range (Range.make ~lo_exact:true ~hi_exact:true 0. 0.))
  else begin
    Array.iteri
      (fun j w ->
        if w >= 0 then begin
          let c = Float.min (float_of_int consumed.(j)) t.ku.(j) in
          t.lo_vec.(w) <- c;
          t.hi_vec.(w) <- c
        end)
      t.w_of_pc;
    let hi_r, snap_hi = solve_side t t.prob_hi t.snap_hi in
    t.snap_hi <- snap_hi;
    let lo_r =
      match t.prob_lo with
      | None -> Value (0., true)
      | Some prob ->
          let r, snap_lo = solve_side t prob t.snap_lo in
          t.snap_lo <- snap_lo;
          r
    in
    match (lo_r, hi_r) with
    | Starved, _ | _, Starved -> None
    | Side_infeasible, _ | _, Side_infeasible -> Some Bounds.Infeasible
    | Value (lo, lo_exact), Value (hi, hi_exact) ->
        Some
          (Bounds.Range
             (Range.make ~lo_exact ~hi_exact (Float.min lo hi) hi))
  end
