(** Incremental bound maintenance across streaming ingestion.

    An engine compiles the COUNT/SUM allocation LP for one (PC set,
    query) pair {e once} — cells from the precompiled FDD, one frequency
    row per covering PC — and then re-solves it across append/retract
    batches from the previous optimum's basis snapshot
    ({!Pc_lp.Simplex.solve_from}), with {e pure variable-bound} changes.

    The trick that keeps every ingestion step inside [solve_from]'s
    bounds-only contract: per-PC consumption is not a right-hand-side
    update. Each PC [j] with an in-query cover gets an auxiliary
    variable [w_j] with coefficient [+1] in both its frequency rows
    (Σ x_i + w_j ≤ ku_j, and Σ x_i + w_j ≥ kl_j when the lower bound is
    enforceable under pushdown), pinned by its box to the consumed count
    [w_j = min(c_j, ku_j)]. Appending a certain row that the FDD routes
    to active set A bumps [c_j] for every j ∈ A, which tightens only
    variable boxes — the rows and objective never change, so the basis
    snapshot stays reusable and a re-bound costs a handful of
    dual-simplex pivots instead of a cold decomposition + MILP.

    Equivalence with the from-scratch path (qcheck-pinned in
    [test_ingest]): fixing [w_j = min(c_j, ku_j)] makes the ≤ row
    [Σ x_i ≤ max 0 (ku_j − c_j)] and the ≥ row
    [Σ x_i ≥ kl_j − min(c_j, ku_j)] — exactly the frequency range of the
    residual PC set [{(kl−c)⁺ ∧ ku', ku' = (ku−c)⁺}] that a full
    recompute sees.

    Exactness: when the LP optimum assigns integral counts to every
    cell it coincides with the MILP optimum and the bound is exact;
    otherwise the LP value is still a sound (dual-side) bound and the
    answer is marked inexact — the server reports such replies as
    [relaxed] and does not cache them. Engines are single-threaded by
    design; the server serializes access per dataset. *)

type t

val create :
  ?tighten:bool ->
  fdd:Pc_predicate.Fdd.compiled ->
  Pc_set.t ->
  Pc_query.Query.t ->
  t option
(** Build the engine, or [None] when the instance is out of scope and
    the caller must use the full {!Bounds} path: a non-COUNT/SUM
    aggregate, a diagram whose size disagrees with [set], an unbounded
    value interval in the objective, or an enforceable frequency lower
    bound with no in-query cover (the query is infeasible — the full
    path reports it). No LP is solved here; the first {!rebound} is the
    cold solve. *)

val supported : Pc_query.Query.t -> bool
(** The aggregate shapes an engine can maintain (COUNT and SUM). *)

val n_cells : t -> int
(** In-query inhabitable cells (LP structural variables). *)

val rebound : t -> consumed:int array -> Bounds.answer option
(** Missing-partition bound under per-PC consumption [consumed] (length
    = PC-set size, as maintained by [Pc_store.Stream]). Warm-starts from
    the previous call's basis when one exists; the underlying solver
    falls back to a cold solve on any numeric trouble. [None] when the
    solver was starved or [consumed] has the wrong length — callers fall
    back to the full path. The certain-partition shift is the caller's
    job, as in {!Bounds.bound_with_certain}. *)
