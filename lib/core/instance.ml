module I = Pc_interval.Interval
module Box = Pc_predicate.Box
module Sat = Pc_predicate.Sat
module S = Pc_lp.Simplex
module M = Pc_milp.Milp
module Q = Pc_query.Query
module Schema = Pc_data.Schema
module Value = Pc_data.Value

(* A cell prepared for row generation: its witness region (one satisfiable
   branch of the cell expression) intersected per-attribute with the
   active value constraints. *)
type gen_cell = {
  active : int list;
  num_ranges : (string * I.t) list;  (** numeric schema attrs, all of them *)
  cat_choice : (string * string) list;  (** categorical attrs, one value *)
}

let fresh_string excluded =
  let len = List.fold_left (fun acc s -> max acc (String.length s)) 0 excluded in
  String.make (len + 1) 'z'

let prepare_cell set ~schema (cell : Cells.cell) =
  match Sat.solve cell.Cells.expr with
  | None -> None (* early-stop artifact: not actually satisfiable *)
  | Some box ->
      let value_intersection attr =
        List.fold_left
          (fun acc j ->
            Option.bind acc (fun iv ->
                I.intersect iv (Pc.value_interval (Pc_set.get set j) attr)))
          (Some (Box.num_interval box attr))
          cell.Cells.active
      in
      let rec build_nums acc = function
        | [] -> Some (List.rev acc)
        | a :: rest -> (
            match value_intersection a with
            | Some iv -> build_nums ((a, iv) :: acc) rest
            | None -> None (* no valid value: the cell cannot host rows *))
      in
      let nums = build_nums [] (Schema.numeric_names schema) in
      Option.map
        (fun num_ranges ->
          let cat_choice =
            List.filter_map
              (fun (attr : Schema.attr) ->
                match attr.Schema.kind with
                | Schema.Numeric -> None
                | Schema.Categorical ->
                    let v =
                      match Box.cat_constraint box attr.Schema.name with
                      | Some (Box.In (v :: _)) -> v
                      | Some (Box.In []) -> "unreachable"
                      | Some (Box.Not_in excluded) -> fresh_string excluded
                      | None -> "any"
                    in
                    Some (attr.Schema.name, v))
              (Schema.attrs schema)
          in
          { active = cell.Cells.active; num_ranges; cat_choice })
        nums

let coverage_constraints set cells =
  let n_pcs = Pc_set.size set in
  let cons = ref [] in
  let ok = ref true in
  for j = 0 to n_pcs - 1 do
    let pc = Pc_set.get set j in
    let covering = ref [] in
    List.iteri
      (fun i c -> if List.mem j c.active then covering := (i, 1.) :: !covering)
      cells;
    match !covering with
    | [] -> if pc.Pc.freq_lo > 0 then ok := false
    | coeffs ->
        cons := S.c_le coeffs (float_of_int pc.Pc.freq_hi) :: !cons;
        if pc.Pc.freq_lo > 0 then
          cons := S.c_ge coeffs (float_of_int pc.Pc.freq_lo) :: !cons
  done;
  if !ok then Some !cons else None

let solve_allocation ~opts ~objective cells cons =
  let problem =
    {
      S.n_vars = List.length cells;
      maximize = true;
      objective;
      constraints = cons;
      var_bounds = [];
    }
  in
  match M.solve ~node_limit:opts.Bounds.node_limit problem with
  | M.Optimal { M.incumbent = Some sol; _ } ->
      Some (Array.map (fun x -> Pc_util.Float_eps.round_to_int x) sol.S.values)
  | M.Optimal { M.incumbent = None; _ }
  | M.Infeasible | M.Unbounded
  | M.Stopped _ ->
      None

let materialize rng ~schema cells allocation ~num_value =
  let rows = ref [] in
  List.iteri
    (fun i cell ->
      for _ = 1 to allocation.(i) do
        let row =
          Array.of_list
            (List.map
               (fun (attr : Schema.attr) ->
                 match attr.Schema.kind with
                 | Schema.Numeric ->
                     let iv = List.assoc attr.Schema.name cell.num_ranges in
                     Value.Num (num_value rng cell attr.Schema.name iv)
                 | Schema.Categorical ->
                     Value.Str (List.assoc attr.Schema.name cell.cat_choice))
               (Schema.attrs schema))
        in
        rows := row :: !rows
      done)
    cells;
  Pc_data.Relation.create schema !rows

let prepared_cells ~opts set ~schema =
  let cells, _ = Cells.decompose ~strategy:opts.Bounds.strategy set in
  List.filter_map (prepare_cell set ~schema) cells

let sample ?(opts = Bounds.default_opts) rng set ~schema =
  let feasible_pred (pc : Pc.t) =
    pc.Pc.freq_lo = 0 || Pc_predicate.Pred.satisfiable pc.Pc.pred
  in
  if not (List.for_all feasible_pred (Pc_set.pcs set)) then None
  else begin
    let cells = prepared_cells ~opts set ~schema in
    match coverage_constraints set cells with
    | None -> None
    | Some cons ->
        (* randomize which vertex of the feasible region we land on *)
        let objective =
          List.mapi (fun i _ -> (i, Pc_util.Rng.uniform rng ~lo:(-1.) ~hi:1.)) cells
        in
        Option.map
          (fun allocation ->
            materialize rng ~schema cells allocation
              ~num_value:(fun rng _cell _attr iv -> I.sample rng iv))
          (solve_allocation ~opts ~objective cells cons)
  end

let witness_max ?(opts = Bounds.default_opts) set ~schema (query : Q.t) =
  (match query.Q.agg with
  | Q.Count | Q.Sum _ -> ()
  | Q.Avg _ | Q.Min _ | Q.Max _ ->
      invalid_arg "Instance.witness_max: COUNT/SUM only");
  if query.Q.where_ <> Pc_predicate.Pred.tt then
    invalid_arg "Instance.witness_max: unpredicated queries only";
  let cells = prepared_cells ~opts set ~schema in
  match coverage_constraints set cells with
  | None -> None
  | Some cons ->
      let coeff cell =
        match Q.agg_attr query with
        | None -> 1.
        | Some a ->
            let hi = I.hi_float (List.assoc a cell.num_ranges) in
            if Float.is_finite hi then hi else 1e9
      in
      let objective = List.mapi (fun i c -> (i, coeff c)) cells in
      Option.map
        (fun allocation ->
          let rng = Pc_util.Rng.create 0 in
          materialize rng ~schema cells allocation
            ~num_value:(fun rng _cell attr iv ->
              match Q.agg_attr query with
              | Some a when a = attr ->
                  (* pin the aggregated attribute at its supremum *)
                  let hi = I.hi_float iv in
                  if Float.is_finite hi && I.contains iv hi then hi
                  else I.sample rng iv
              | _ -> I.sample rng iv))
        (solve_allocation ~opts ~objective cells cons)

(* Witness-based self-audit: any concrete instance satisfying the
   constraint set is a lower bound on what the range must cover, so a
   sampled instance whose aggregate escapes the reported range is a
   soundness bug — in the bound, the sampler, or both. *)
let audit ?(opts = Bounds.default_opts) ?(samples = 5) rng set ~schema
    (query : Q.t) =
  match Bounds.bound ~opts set query with
  | Bounds.Infeasible ->
      (* infeasibility must mean: no instance exists at all *)
      (match sample ~opts rng set ~schema with
      | None -> Ok ()
      | Some _ -> Error "reported Infeasible but a satisfying instance exists")
  | Bounds.Empty | Bounds.Range _ as answer ->
      let check i =
        match sample ~opts rng set ~schema with
        | None -> Error (Printf.sprintf "sample %d: set became unsatisfiable" i)
        | Some rel -> (
            match (Q.eval rel query, answer) with
            | None, _ -> Ok () (* empty selection: consistent with any range *)
            | Some v, Bounds.Range r ->
                if Range.contains r v then Ok ()
                else
                  Error
                    (Printf.sprintf
                       "sample %d: aggregate %g escapes reported range %s" i v
                       (Format.asprintf "%a" Range.pp r))
            | Some v, _ ->
                Error
                  (Printf.sprintf
                     "sample %d: aggregate %g exists but range is Empty" i v))
      in
      let rec go i =
        if i > samples then Ok ()
        else match check i with Ok () -> go (i + 1) | Error _ as e -> e
      in
      go 1
