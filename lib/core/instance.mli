(** Concrete missing-data instances: relations that *satisfy* a
    predicate-constraint set.

    The paper's §4 claims its bounds are tight — "the bound found by the
    optimization problem is a valid relation that satisfies the
    constraints". This module makes that operational: it materializes
    such relations, both arbitrary ones (for fuzzing: any sampled
    instance's aggregate must fall inside the computed range) and
    worst-case ones ({!witness_max} reconstructs a relation attaining the
    SUM/COUNT upper bound, which is how the tightness claim is tested in
    this repository).

    Sampling works on the solved structure: a feasible integer cell
    allocation (from the MILP, randomized via a random objective), then
    rows drawn inside each cell's witness region intersected with the
    active value constraints. *)

val sample :
  ?opts:Bounds.opts ->
  Pc_util.Rng.t ->
  Pc_set.t ->
  schema:Pc_data.Schema.t ->
  Pc_data.Relation.t option
(** A random relation over [schema] satisfying the constraint set, or
    [None] when the set is infeasible. Every attribute of [schema] not
    constrained in a cell is filled with an arbitrary in-domain value.
    Categorical attributes constrained only by exclusion get a fresh
    string. *)

val witness_max :
  ?opts:Bounds.opts ->
  Pc_set.t ->
  schema:Pc_data.Schema.t ->
  Pc_query.Query.t ->
  Pc_data.Relation.t option
(** A relation approximately attaining the COUNT/SUM upper bound of the
    query (exactly, when the solver closed its search and the value
    suprema are attained). Raises [Invalid_argument] for AVG/MIN/MAX —
    their extremal instances are the per-cell constructions already
    implied by {!Bounds}. *)

val audit :
  ?opts:Bounds.opts ->
  ?samples:int ->
  Pc_util.Rng.t ->
  Pc_set.t ->
  schema:Pc_data.Schema.t ->
  Pc_query.Query.t ->
  (unit, string) result
(** Witness-based self-audit of {!Bounds.bound}: materializes up to
    [samples] (default 5) random instances of the constraint set and
    checks each instance's actual aggregate lands inside the reported
    range (and that [Infeasible] really means no instance exists). Any
    escape is a soundness bug and is reported with the offending value. *)
