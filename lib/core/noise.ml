module I = Pc_interval.Interval

let attr_sigmas rel ~attrs ~scale =
  List.map
    (fun a -> (a, scale *. Pc_util.Stat.stddev (Pc_data.Relation.column rel a)))
    attrs

let corrupt_endpoint rng sigma = function
  | I.Neg_inf -> I.Neg_inf
  | I.Pos_inf -> I.Pos_inf
  | I.Closed x -> I.Closed (x +. Pc_util.Rng.gaussian rng ~mu:0. ~sigma)
  | I.Open x -> I.Open (x +. Pc_util.Rng.gaussian rng ~mu:0. ~sigma)

let endpoint_value = function
  | I.Closed x | I.Open x -> x
  | I.Neg_inf -> neg_infinity
  | I.Pos_inf -> infinity

let corrupt_interval rng sigma iv =
  let lo = corrupt_endpoint rng sigma iv.I.lo in
  let hi = corrupt_endpoint rng sigma iv.I.hi in
  match I.make lo hi with
  | Some iv' -> iv'
  | None ->
      (* noise inverted the endpoints: swap the values, keeping closure *)
      let a = endpoint_value lo and b = endpoint_value hi in
      I.closed (Float.min a b) (Float.max a b)

let shift_endpoint delta = function
  | I.Neg_inf -> I.Neg_inf
  | I.Pos_inf -> I.Pos_inf
  | I.Closed x -> I.Closed (x +. delta)
  | I.Open x -> I.Open (x +. delta)

let shift_interval rng sigma iv =
  let lo = shift_endpoint (Pc_util.Rng.gaussian rng ~mu:0. ~sigma) iv.I.lo in
  let hi = shift_endpoint (Pc_util.Rng.gaussian rng ~mu:0. ~sigma) iv.I.hi in
  match I.make lo hi with
  | Some iv' -> iv'
  | None ->
      let a = endpoint_value lo and b = endpoint_value hi in
      I.closed (Float.min a b) (Float.max a b)

let corrupt_values_systematic rng ~sigma pcs =
  let shared =
    List.map (fun (a, _) -> (a, Pc_util.Rng.gaussian rng ~mu:0. ~sigma:1.)) sigma
  in
  List.map
    (fun (pc : Pc.t) ->
      let values =
        List.map
          (fun (attr, iv) ->
            match (List.assoc_opt attr sigma, List.assoc_opt attr shared) with
            | Some s, Some z when s > 0. ->
                let systematic = z *. s in
                let iv' = shift_interval rng (0.3 *. s) iv in
                let lo = shift_endpoint systematic iv'.I.lo in
                let hi = shift_endpoint systematic iv'.I.hi in
                (attr, Option.value (I.make lo hi) ~default:iv')
            | _ -> (attr, iv))
          pc.Pc.values
      in
      Pc.make ~name:pc.Pc.name ~pred:pc.Pc.pred ~values
        ~freq:(pc.Pc.freq_lo, pc.Pc.freq_hi) ())
    pcs

let corrupt_values_relative rng ~attrs ~scale pcs =
  (* systematic component: the analyst's mis-belief is shared across all
     the constraints she wrote (one draw per attribute), with a smaller
     idiosyncratic component per endpoint. Purely independent noise would
     average out over fine partitions and understate the risk. *)
  let shared =
    List.map (fun a -> (a, Pc_util.Rng.gaussian rng ~mu:0. ~sigma:1.)) attrs
  in
  List.map
    (fun (pc : Pc.t) ->
      let values =
        List.map
          (fun (attr, iv) ->
            match List.assoc_opt attr shared with
            | None -> (attr, iv)
            | Some z ->
                let w = I.width iv in
                if not (Float.is_finite w) || w = 0. || scale = 0. then (attr, iv)
                else begin
                  let unit = scale *. w /. 4. in
                  let systematic = z *. unit in
                  let iv' = shift_interval rng (0.3 *. unit) iv in
                  let lo = shift_endpoint systematic iv'.I.lo in
                  let hi = shift_endpoint systematic iv'.I.hi in
                  (attr, Option.value (I.make lo hi) ~default:iv')
                end)
          pc.Pc.values
      in
      Pc.make ~name:pc.Pc.name ~pred:pc.Pc.pred ~values
        ~freq:(pc.Pc.freq_lo, pc.Pc.freq_hi) ())
    pcs

let corrupt_values rng ~sigma pcs =
  List.map
    (fun (pc : Pc.t) ->
      let values =
        List.map
          (fun (attr, iv) ->
            match List.assoc_opt attr sigma with
            | None | Some 0. -> (attr, iv)
            | Some s -> (attr, corrupt_interval rng s iv))
          pc.Pc.values
      in
      Pc.make ~name:pc.Pc.name ~pred:pc.Pc.pred ~values
        ~freq:(pc.Pc.freq_lo, pc.Pc.freq_hi) ())
    pcs
