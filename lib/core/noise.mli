(** Controlled corruption of PC value bounds, for the robustness study
    (paper §6.3.2, Figure 6): independent Gaussian noise added to the
    minimum and maximum of each attribute range in each PC. Noisy PCs may
    no longer hold on the data — that is the point: the experiment
    measures how failure rates degrade. *)

val corrupt_values :
  Pc_util.Rng.t ->
  sigma:(string * float) list ->
  Pc.t list ->
  Pc.t list
(** [corrupt_values rng ~sigma pcs] perturbs each finite value-range
    endpoint of attribute [a] by [N(0, sigma_a)]. Endpoints are swapped if
    the noise inverts them, so the results are still well-formed PCs.
    Attributes absent from [sigma] are left untouched. *)

val attr_sigmas :
  Pc_data.Relation.t -> attrs:string list -> scale:float -> (string * float) list
(** Per-attribute noise levels: [scale] × the attribute's standard
    deviation on the relation ("k SD noise" in the paper's figure). *)

val corrupt_values_systematic :
  Pc_util.Rng.t -> sigma:(string * float) list -> Pc.t list -> Pc.t list
(** Like {!corrupt_values} but with a *systematic* component: one shared
    N(0,1) draw per attribute scales [sigma_a] and shifts every
    constraint's range in the same direction (an analyst whose mis-belief
    is consistent across the constraints she wrote), plus a smaller
    idiosyncratic per-endpoint term. *)

val corrupt_values_relative :
  Pc_util.Rng.t -> attrs:string list -> scale:float -> Pc.t list -> Pc.t list
(** Like {!corrupt_values} but the noise is proportional to each
    constraint's own value dispersion (width/4 ≈ one standard deviation
    of the summarized values) and has a *systematic* component shared by
    every constraint on the same attribute — modelling an analyst whose
    mis-belief is consistent across the constraints she wrote — plus a
    smaller idiosyncratic per-endpoint term. A "k SD" mis-specification
    then means constraints are wrong by about k of their own standard
    deviations, regardless of how coarse or fine they are. *)
