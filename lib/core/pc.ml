module I = Pc_interval.Interval
module Pred = Pc_predicate.Pred
module Relation = Pc_data.Relation

type t = {
  name : string;
  pred : Pred.t;
  values : (string * I.t) list;
  freq_lo : int;
  freq_hi : int;
}

let counter = ref 0

let make ?name ~pred ~values ~freq:(freq_lo, freq_hi) () =
  if freq_lo < 0 then invalid_arg "Pc.make: negative frequency lower bound";
  if freq_lo > freq_hi then invalid_arg "Pc.make: kl > ku";
  let attrs = List.map fst values in
  if List.length (List.sort_uniq String.compare attrs) <> List.length attrs then
    invalid_arg "Pc.make: duplicate value-constraint attribute";
  let name =
    match name with
    | Some n -> n
    | None ->
        incr counter;
        Printf.sprintf "pc%d" !counter
  in
  { name; pred; values; freq_lo; freq_hi }

let value_interval t attr =
  Option.value (List.assoc_opt attr t.values) ~default:I.full

let value_attrs t = List.map fst t.values

let matching rel t =
  let schema = Relation.schema rel in
  Relation.filter (fun row -> Pred.eval schema t.pred row) rel

let violations rel t =
  let schema = Relation.schema rel in
  let matched = matching rel t in
  let n = Relation.cardinality matched in
  let freq_violation =
    if n < t.freq_lo then
      [
        Printf.sprintf "%s: %d matching rows, below frequency lower bound %d"
          t.name n t.freq_lo;
      ]
    else if n > t.freq_hi then
      [
        Printf.sprintf "%s: %d matching rows, above frequency upper bound %d"
          t.name n t.freq_hi;
      ]
    else []
  in
  let value_violations =
    List.filter_map
      (fun (attr, iv) ->
        match Pc_data.Schema.index_opt schema attr with
        | None -> Some (Printf.sprintf "%s: attribute %s not in schema" t.name attr)
        | Some idx ->
            let bad = ref 0 in
            Relation.iter
              (fun row ->
                let v = Pc_data.Value.as_num row.(idx) in
                if not (I.contains iv v) then incr bad)
              matched;
            if !bad > 0 then
              Some
                (Printf.sprintf "%s: %d rows violate %s in %s" t.name !bad attr
                   (I.to_string iv))
            else None)
      t.values
  in
  freq_violation @ value_violations

let holds rel t = violations rel t = []

let pp ppf t =
  let pp_value ppf (attr, iv) = Format.fprintf ppf "%s in %a" attr I.pp iv in
  Format.fprintf ppf "@[<h>%s: %a => %a, (%d, %d)@]" t.name Pred.pp t.pred
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " AND ") pp_value)
    t.values t.freq_lo t.freq_hi

let to_string t = Format.asprintf "%a" pp t
