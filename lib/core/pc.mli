(** A single predicate-constraint π = (ψ, ν, κ) (paper, Definition 3.1):
    for every missing row that satisfies the predicate ψ, its attribute
    values are bounded by ν, and the number of such rows lies in
    κ = [kl, ku]. *)

type t = private {
  name : string;
  pred : Pc_predicate.Pred.t;  (** ψ *)
  values : (string * Pc_interval.Interval.t) list;  (** ν, one range per attribute *)
  freq_lo : int;  (** kl ≥ 0 *)
  freq_hi : int;  (** ku ≥ kl *)
}

val make :
  ?name:string ->
  pred:Pc_predicate.Pred.t ->
  values:(string * Pc_interval.Interval.t) list ->
  freq:int * int ->
  unit ->
  t
(** Raises [Invalid_argument] when [kl < 0], [kl > ku], or [values] has
    duplicate attributes. *)

val value_interval : t -> string -> Pc_interval.Interval.t
(** The ν range for an attribute; [Interval.full] when unconstrained. *)

val value_attrs : t -> string list

val matching : Pc_data.Relation.t -> t -> Pc_data.Relation.t
(** Rows satisfying ψ. *)

val holds : Pc_data.Relation.t -> t -> bool
(** [R |= π]: constraints are efficiently testable on historical data
    (paper §1, desideratum 1). *)

val violations : Pc_data.Relation.t -> t -> string list
(** Human-readable reasons why [holds] fails; empty when it holds. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
