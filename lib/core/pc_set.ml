module Pred = Pc_predicate.Pred
module Box = Pc_predicate.Box

type t = { arr : Pc.t array; disjoint : bool Lazy.t }

let compute_disjoint arr =
  let n = Array.length arr in
  let boxes = Array.map (fun (pc : Pc.t) -> Box.of_pred pc.Pc.pred) arr in
  let overlap i j =
    match boxes.(i) with
    | None -> false
    | Some bi -> (
        match Box.add_pred bi arr.(j).Pc.pred with
        | Some _ -> true
        | None -> false)
  in
  let rec scan i j =
    if i >= n then true
    else if j >= n then scan (i + 1) (i + 2)
    else if overlap i j then false
    else scan i (j + 1)
  in
  scan 0 1

let of_array arr =
  let arr = Array.copy arr in
  { arr; disjoint = lazy (compute_disjoint arr) }

let make pcs = of_array (Array.of_list pcs)
let pcs t = Array.to_list t.arr
let size t = Array.length t.arr
let get t i = t.arr.(i)

let violations rel t =
  Array.to_list t.arr |> List.concat_map (Pc.violations rel)

let holds rel t = Array.for_all (fun pc -> Pc.holds rel pc) t.arr

let closed_over rel t =
  let schema = Pc_data.Relation.schema rel in
  let covered row =
    Array.exists (fun (pc : Pc.t) -> Pred.eval schema pc.Pc.pred row) t.arr
  in
  Pc_data.Relation.fold (fun acc row -> acc && covered row) true rel

let is_disjoint t = Lazy.force t.disjoint

let attrs t =
  Array.to_list t.arr
  |> List.concat_map (fun (pc : Pc.t) ->
         Pred.attrs pc.Pc.pred @ Pc.value_attrs pc)
  |> List.sort_uniq String.compare

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter (fun pc -> Format.fprintf ppf "%a@," Pc.pp pc) t.arr;
  Format.fprintf ppf "@]"
