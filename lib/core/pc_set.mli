(** Predicate-constraint sets S = {π₁, …, πₙ} (paper §3.2). *)

type t

val make : Pc.t list -> t
val of_array : Pc.t array -> t
val pcs : t -> Pc.t list
val size : t -> int
val get : t -> int -> Pc.t

val holds : Pc_data.Relation.t -> t -> bool
(** Every constraint holds on the relation. *)

val violations : Pc_data.Relation.t -> t -> string list

val closed_over : Pc_data.Relation.t -> t -> bool
(** Closure (Definition 3.2) checked empirically: every tuple satisfies at
    least one predicate. The framework's result ranges are guaranteed only
    under closure. *)

val is_disjoint : t -> bool
(** True when predicates are pairwise unsatisfiable together — the fast
    greedy path applies (paper §4.2, "Faster Algorithm in Special Cases").
    Computed once and cached. *)

val attrs : t -> string list
(** Sorted distinct attributes mentioned by any predicate or value
    constraint. *)

val pp : Format.formatter -> t -> unit
