type t = { lo : float; hi : float; lo_exact : bool; hi_exact : bool }

let make ?(lo_exact = false) ?(hi_exact = false) lo hi =
  if Float.is_nan lo || Float.is_nan hi then invalid_arg "Range.make: NaN bound";
  if lo > hi +. 1e-6 *. Float.max 1. (Float.abs hi) then
    invalid_arg (Printf.sprintf "Range.make: lo %g > hi %g" lo hi);
  { lo = Float.min lo hi; hi; lo_exact; hi_exact }

let point x = make ~lo_exact:true ~hi_exact:true x x
let contains t x = x >= t.lo -. 1e-9 && x <= t.hi +. 1e-9
let width t = t.hi -. t.lo

let shift t d =
  { t with lo = t.lo +. d; hi = t.hi +. d }

let join a b =
  {
    lo = Float.min a.lo b.lo;
    hi = Float.max a.hi b.hi;
    lo_exact = (if a.lo <= b.lo then a.lo_exact else b.lo_exact);
    hi_exact = (if a.hi >= b.hi then a.hi_exact else b.hi_exact);
  }

let over_estimation t ~truth = if truth <= 0. then nan else t.hi /. truth

let pp ppf t =
  Format.fprintf ppf "[%g%s, %g%s]" t.lo
    (if t.lo_exact then "" else "-")
    t.hi
    (if t.hi_exact then "" else "+")

let to_string t = Format.asprintf "%a" pp t
