(** Deterministic result ranges ("hard bounds", as opposed to
    probabilistic confidence intervals — paper footnote 1). *)

type t = {
  lo : float;  (** may be [neg_infinity] *)
  hi : float;  (** may be [infinity] *)
  lo_exact : bool;
      (** the optimizer proved [lo] is attained by a valid missing-data
          instance (bound tightness, §4) — [false] means [lo] is merely a
          sound under-approximation *)
  hi_exact : bool;
}

val make : ?lo_exact:bool -> ?hi_exact:bool -> float -> float -> t
(** Raises [Invalid_argument] when [lo > hi] (beyond tolerance) or a bound
    is NaN. *)

val point : float -> t
val contains : t -> float -> bool
val width : t -> float

val shift : t -> float -> t
(** Translate both endpoints (combining with a certain-partition value). *)

val join : t -> t -> t
(** Smallest range containing both. *)

val over_estimation : t -> truth:float -> float
(** [hi / truth], the paper's tightness metric (§6.1). Meaningful for
    positive [truth]; returns [nan] when [truth <= 0]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
