(* Columnar append batches. Construction funnels through [Relation] so a
   batch is validated exactly once, with the same arity/kind rules the
   rest of the data layer enforces; the transpose into per-attribute
   columns happens after validation. *)

type t = {
  schema : Schema.t;
  cols : Value.t array array;  (* cols.(a).(i): attribute a of row i *)
  rows : int;
}

let of_relation rel =
  let schema = Relation.schema rel in
  let n = Relation.cardinality rel in
  let arity = Schema.arity schema in
  let cols =
    Array.init arity (fun a ->
        Array.init n (fun i -> (Relation.get rel i).(a)))
  in
  { schema; cols; rows = n }

let of_rows schema tuples = of_relation (Relation.create schema tuples)
let of_csv_string ?schema text = of_relation (Csv.read_string ?schema text)
let schema t = t.schema
let rows t = t.rows

let row t i =
  if i < 0 || i >= t.rows then invalid_arg "Batch.row: index out of bounds";
  Array.map (fun col -> col.(i)) t.cols

let iter f t =
  for i = 0 to t.rows - 1 do
    f (row t i)
  done

let column t name =
  Array.copy t.cols.(Schema.index t.schema name)

let to_relation t =
  Relation.of_array t.schema (Array.init t.rows (row t))
