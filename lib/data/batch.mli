(** Columnar append batches: the unit of streaming ingestion.

    A batch is a schema plus one value array per attribute (column-major
    storage), validated on construction exactly like {!Relation.create}.
    Batches are immutable from the outside and cheap to scan column-wise
    (routing a batch through an FDD touches only the attributes the
    diagram tests), while {!row}/{!iter} materialize row views for
    per-tuple consumers. *)

type t

val of_rows : Schema.t -> Relation.tuple list -> t
(** Validates every tuple against the schema (arity and kinds); raises
    [Invalid_argument] on a mismatch, as {!Relation.create} does. *)

val of_relation : Relation.t -> t

val of_csv_string : ?schema:Schema.t -> string -> t
(** Parses CSV text with a header row ({!Csv.read_string}); with
    [schema] the columns are checked against it, otherwise kinds are
    inferred. Raises [Failure] / [Invalid_argument] like the reader. *)

val schema : t -> Schema.t

val rows : t -> int

val row : t -> int -> Relation.tuple
(** Materializes row [i] as a fresh tuple (schema order). *)

val iter : (Relation.tuple -> unit) -> t -> unit

val column : t -> string -> Value.t array
(** A defensive copy of one column. *)

val to_relation : t -> Relation.t
