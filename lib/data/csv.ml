(* Record-splitting CSV parser: handles quoted fields containing commas,
   escaped quotes, and newlines inside quotes. *)

type state = { buf : Buffer.t; mutable fields : string list; mutable in_quotes : bool }

let parse_records text =
  let st = { buf = Buffer.create 64; fields = []; in_quotes = false } in
  let records = ref [] in
  let flush_field () =
    st.fields <- Buffer.contents st.buf :: st.fields;
    Buffer.clear st.buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev st.fields :: !records;
    st.fields <- []
  in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if st.in_quotes then begin
      if c = '"' then
        if !i + 1 < n && text.[!i + 1] = '"' then begin
          Buffer.add_char st.buf '"';
          incr i
        end
        else st.in_quotes <- false
      else Buffer.add_char st.buf c
    end
    else begin
      match c with
      | '"' -> st.in_quotes <- true
      | ',' -> flush_field ()
      | '\n' -> flush_record ()
      | '\r' -> ()
      | c -> Buffer.add_char st.buf c
    end;
    incr i
  done;
  if st.in_quotes then failwith "Csv: unterminated quote";
  if Buffer.length st.buf > 0 || st.fields <> [] then flush_record ();
  (* drop fully-empty trailing records *)
  List.rev !records |> List.filter (function [ "" ] | [] -> false | _ -> true)

let infer_schema header rows =
  let ncols = List.length header in
  let numeric = Array.make ncols true in
  let nonempty = Array.make ncols false in
  List.iter
    (fun row ->
      List.iteri
        (fun i field ->
          if i < ncols && field <> "" then begin
            nonempty.(i) <- true;
            if Option.is_none (float_of_string_opt (String.trim field)) then
              numeric.(i) <- false
          end)
        row)
    rows;
  Schema.of_names
    (List.mapi
       (fun i name ->
         let kind =
           if numeric.(i) && nonempty.(i) then Schema.Numeric
           else Schema.Categorical
         in
         (name, kind))
       header)

let read_string ?schema text =
  match parse_records text with
  | [] -> failwith "Csv: empty input"
  | header :: rows ->
      let schema =
        match schema with
        | Some s ->
            if List.map String.trim header <> Schema.names s then
              invalid_arg "Csv.read_string: header does not match schema";
            s
        | None -> infer_schema (List.map String.trim header) rows
      in
      let kinds = Array.of_list (List.map (fun (a : Schema.attr) -> a.kind) (Schema.attrs schema)) in
      let names = Array.of_list (Schema.names schema) in
      let arity = Schema.arity schema in
      let tuples =
        List.mapi
          (fun lineno row ->
            if List.length row <> arity then
              failwith
                (Printf.sprintf "Csv: record %d has %d fields, expected %d"
                   (lineno + 2) (List.length row) arity);
            Array.of_list
              (List.mapi
                 (fun i field ->
                   match kinds.(i) with
                   | Schema.Numeric -> (
                       match float_of_string_opt (String.trim field) with
                       | Some x when Float.is_finite x -> Value.Num x
                       | Some _ ->
                           (* NaN/±inf would silently poison every bound
                              computed downstream; reject at the door *)
                           failwith
                             (Printf.sprintf
                                "Csv: record %d column %S: non-finite numeric \
                                 value %S"
                                (lineno + 2) names.(i) field)
                       | None ->
                           failwith
                             (Printf.sprintf
                                "Csv: record %d field %d: %S is not numeric"
                                (lineno + 2) (i + 1) field))
                   | Schema.Categorical -> Value.Str field)
                 row))
          rows
      in
      Relation.create schema tuples

let read_file ?schema path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      read_string ?schema text)

let escape field =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if needs_quoting then begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else field

let write_string rel =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (Schema.names (Relation.schema rel)));
  Buffer.add_char buf '\n';
  Relation.iter
    (fun row ->
      let fields =
        Array.to_list row
        |> List.map (function
             | Value.Num x -> Printf.sprintf "%.12g" x
             | Value.Str s -> escape s)
      in
      Buffer.add_string buf (String.concat "," fields);
      Buffer.add_char buf '\n')
    rel;
  Buffer.contents buf

let write_file path rel =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (write_string rel))
