(** Minimal CSV reader/writer for relations.

    Supports a header row, comma separation, and double-quote quoting with
    [""] escapes. Column kinds are inferred (a column is numeric when every
    non-empty field parses as a float) unless a schema is supplied. *)

val read_string : ?schema:Schema.t -> string -> Relation.t
(** Parses CSV text. Raises [Failure] with a line number on malformed
    input, and [Invalid_argument] when a supplied schema does not match. *)

val read_file : ?schema:Schema.t -> string -> Relation.t

val write_string : Relation.t -> string
val write_file : string -> Relation.t -> unit
