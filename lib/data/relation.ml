type tuple = Value.t array

type t = { schema : Schema.t; rows : tuple array }

let validate schema row =
  if Array.length row <> Schema.arity schema then
    invalid_arg "Relation: tuple arity mismatch";
  List.iteri
    (fun i (a : Schema.attr) ->
      match (a.kind, row.(i)) with
      | Schema.Numeric, Value.Num _ | Schema.Categorical, Value.Str _ -> ()
      | Schema.Numeric, Value.Str s ->
          invalid_arg
            (Printf.sprintf "Relation: %S in numeric attribute %s" s a.name)
      | Schema.Categorical, Value.Num x ->
          invalid_arg
            (Printf.sprintf "Relation: %g in categorical attribute %s" x a.name))
    (Schema.attrs schema)

let of_array schema rows =
  Array.iter (validate schema) rows;
  { schema; rows = Array.map Array.copy rows }

let create schema rows = of_array schema (Array.of_list rows)
let schema t = t.schema
let cardinality t = Array.length t.rows
let is_empty t = cardinality t = 0
let tuples t = Array.map Array.copy t.rows
let get t i = Array.copy t.rows.(i)
let value t i name = t.rows.(i).(Schema.index t.schema name)
let number t i name = Value.as_num (value t i name)
let iter f t = Array.iter f t.rows
let fold f init t = Array.fold_left f init t.rows

let filter p t =
  { t with rows = Array.of_seq (Seq.filter p (Array.to_seq t.rows)) }

let partition p t =
  let yes, no = List.partition p (Array.to_list t.rows) in
  ({ t with rows = Array.of_list yes }, { t with rows = Array.of_list no })

let union a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Relation.union: schema mismatch";
  { a with rows = Array.append a.rows b.rows }

let column t name =
  let i = Schema.index t.schema name in
  Array.map (fun row -> Value.as_num row.(i)) t.rows

let column_values t name =
  let i = Schema.index t.schema name in
  Array.map (fun row -> row.(i)) t.rows

let distinct_strings t name =
  let i = Schema.index t.schema name in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun row ->
      let s = Value.as_str row.(i) in
      if not (Hashtbl.mem seen s) then Hashtbl.add seen s ())
    t.rows;
  Hashtbl.fold (fun s () acc -> s :: acc) seen [] |> List.sort String.compare

let min_max t name =
  if is_empty t then None
  else begin
    let xs = column t name in
    Some (Pc_util.Stat.minimum xs, Pc_util.Stat.maximum xs)
  end

let sort_by cmp t =
  let rows = Array.map Array.copy t.rows in
  Array.sort cmp rows;
  { t with rows }

let group_by t name =
  let i = Schema.index t.schema name in
  let order = ref [] in
  let groups : (Value.t, tuple list ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun row ->
      let key = row.(i) in
      match Hashtbl.find_opt groups key with
      | Some cell -> cell := row :: !cell
      | None ->
          Hashtbl.add groups key (ref [ row ]);
          order := key :: !order)
    t.rows;
  List.rev_map
    (fun key ->
      let rows = List.rev !(Hashtbl.find groups key) in
      (key, { t with rows = Array.of_list rows }))
    !order

let take n t =
  let n = min n (cardinality t) in
  { t with rows = Array.sub t.rows 0 n }

let drop n t =
  let n = min n (cardinality t) in
  { t with rows = Array.sub t.rows n (cardinality t - n) }

let pp ppf t =
  Format.fprintf ppf "@[<v>%a (%d rows)@," Schema.pp t.schema (cardinality t);
  let shown = min 10 (cardinality t) in
  for i = 0 to shown - 1 do
    let row = t.rows.(i) in
    Format.fprintf ppf "  %a@,"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
         Value.pp)
      (Array.to_list row)
  done;
  if cardinality t > shown then Format.fprintf ppf "  ...@,";
  Format.fprintf ppf "@]"
