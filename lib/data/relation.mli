(** In-memory relations: a schema plus an array of tuples.

    A tuple is a [Value.t array] whose layout matches the schema. Relations
    are immutable from the outside; operations return fresh relations and
    never alias the caller's arrays. *)

type tuple = Value.t array

type t

val create : Schema.t -> tuple list -> t
(** Validates every tuple against the schema (arity and kinds). *)

val of_array : Schema.t -> tuple array -> t
val schema : t -> Schema.t
val cardinality : t -> int
val is_empty : t -> bool
val tuples : t -> tuple array
(** A defensive copy. *)

val get : t -> int -> tuple
val value : t -> int -> string -> Value.t
(** [value r i a] is attribute [a] of tuple [i]. *)

val number : t -> int -> string -> float
(** Numeric attribute access; raises on categorical. *)

val iter : (tuple -> unit) -> t -> unit
val fold : ('a -> tuple -> 'a) -> 'a -> t -> 'a
val filter : (tuple -> bool) -> t -> t
val partition : (tuple -> bool) -> t -> t * t
val union : t -> t -> t
(** Bag union; schemas must be equal. *)

val column : t -> string -> float array
(** Numeric column as floats. *)

val column_values : t -> string -> Value.t array

val distinct_strings : t -> string -> string list
(** Sorted distinct values of a categorical column. *)

val min_max : t -> string -> (float * float) option
(** Range of a numeric column; [None] when empty. *)

val sort_by : (tuple -> tuple -> int) -> t -> t

val group_by : t -> string -> (Value.t * t) list
(** Groups by one attribute; order of groups follows first occurrence. *)

val take : int -> t -> t
val drop : int -> t -> t
val pp : Format.formatter -> t -> unit
(** Prints the schema and up to 10 tuples. *)
