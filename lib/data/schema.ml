type kind = Numeric | Categorical

type attr = { name : string; kind : kind }

type t = { attrs : attr array; by_name : (string, int) Hashtbl.t }

let make attrs =
  let arr = Array.of_list attrs in
  let by_name = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem by_name a.name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %S" a.name);
      Hashtbl.add by_name a.name i)
    arr;
  { attrs = arr; by_name }

let of_names pairs = make (List.map (fun (name, kind) -> { name; kind }) pairs)
let attrs t = Array.to_list t.attrs
let arity t = Array.length t.attrs
let index_opt t name = Hashtbl.find_opt t.by_name name

let index t name =
  match index_opt t name with Some i -> i | None -> raise Not_found

let mem t name = Hashtbl.mem t.by_name name
let attr t name = t.attrs.(index t name)
let kind t name = (attr t name).kind
let names t = Array.to_list t.attrs |> List.map (fun a -> a.name)

let numeric_names t =
  Array.to_list t.attrs
  |> List.filter_map (fun a ->
         match a.kind with Numeric -> Some a.name | Categorical -> None)

let concat a b =
  let right =
    List.map
      (fun at -> if mem a at.name then { at with name = at.name ^ "_r" } else at)
      (attrs b)
  in
  make (attrs a @ right)

let equal a b =
  arity a = arity b
  && Array.for_all2 (fun x y -> x.name = y.name && x.kind = y.kind) a.attrs
       b.attrs

let pp ppf t =
  let pp_attr ppf a =
    Format.fprintf ppf "%s:%s" a.name
      (match a.kind with Numeric -> "num" | Categorical -> "cat")
  in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_attr)
    (attrs t)
