(** Relation schemas: ordered, named, typed attributes. *)

type kind = Numeric | Categorical

type attr = { name : string; kind : kind }

type t

val make : attr list -> t
(** Raises [Invalid_argument] on duplicate attribute names. *)

val of_names : (string * kind) list -> t
val attrs : t -> attr list
val arity : t -> int

val index : t -> string -> int
(** Position of the attribute; raises [Not_found]. *)

val index_opt : t -> string -> int option
val mem : t -> string -> bool
val attr : t -> string -> attr
val kind : t -> string -> kind
val names : t -> string list
val numeric_names : t -> string list

val concat : t -> t -> t
(** Schema of a product/join; duplicate names from the right side are
    suffixed with ["_r"]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
