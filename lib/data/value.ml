type t = Num of float | Str of string

let num x = Num x
let str s = Str s

let as_num = function
  | Num x -> x
  | Str s -> invalid_arg (Printf.sprintf "Value.as_num: %S is not numeric" s)

let as_num_opt = function Num x -> Some x | Str _ -> None

let as_str = function
  | Str s -> s
  | Num x -> invalid_arg (Printf.sprintf "Value.as_str: %g is not a string" x)

let equal a b =
  match (a, b) with
  | Num x, Num y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Num _, Str _ | Str _, Num _ -> false

let compare a b =
  match (a, b) with
  | Num x, Num y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Num _, Str _ -> -1
  | Str _, Num _ -> 1

let pp ppf = function
  | Num x -> Format.fprintf ppf "%g" x
  | Str s -> Format.fprintf ppf "%s" s

let to_string v = Format.asprintf "%a" pp v

let of_string s =
  match float_of_string_opt (String.trim s) with
  | Some x -> Num x
  | None -> Str s
