(** Atomic attribute values: numbers or strings.

    Aggregates are only defined over numeric values; categorical values
    participate in predicates (equality / set membership). *)

type t = Num of float | Str of string

val num : float -> t
val str : string -> t

val as_num : t -> float
(** Raises [Invalid_argument] on a [Str]. *)

val as_num_opt : t -> float option

val as_str : t -> string
(** Raises [Invalid_argument] on a [Num]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Numbers order before strings; numbers by [Float.compare], strings
    lexicographically. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t
(** Parses a float when possible, otherwise keeps the string. *)
