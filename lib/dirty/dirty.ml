module I = Pc_interval.Interval
module Atom = Pc_predicate.Atom
module Q = Pc_query.Query
module Relation = Pc_data.Relation
module Schema = Pc_data.Schema
module Value = Pc_data.Value
module Range = Pc_core.Range

type model = Absolute of I.t | Additive of float | Relative of float

type annotation = { pred : Pc_predicate.Pred.t; attr : string; model : model }

let annotation ?(pred = Pc_predicate.Pred.tt) ~attr model = { pred; attr; model }

type answer = Range of Range.t | Empty | Inconsistent

let model_interval model recorded =
  match model with
  | Absolute iv -> iv
  | Additive delta ->
      if delta < 0. then invalid_arg "Dirty: negative additive delta";
      I.closed (recorded -. delta) (recorded +. delta)
  | Relative r ->
      if r < 0. then invalid_arg "Dirty: negative relative factor";
      let delta = r *. Float.abs recorded in
      I.closed (recorded -. delta) (recorded +. delta)

let value_interval schema annotations row attr =
  match Schema.kind schema attr with
  | Schema.Categorical -> Some (I.full) (* unused; categoricals are trusted *)
  | Schema.Numeric ->
      let recorded = Value.as_num row.(Schema.index schema attr) in
      let applicable =
        List.filter
          (fun a -> a.attr = attr && Pc_predicate.Pred.eval schema a.pred row)
          annotations
      in
      if applicable = [] then Some (I.point recorded)
      else
        List.fold_left
          (fun acc a ->
            Option.bind acc (fun iv -> I.intersect iv (model_interval a.model recorded)))
          (Some I.full) applicable

(* Three-valued predicate matching over interval-valued rows. *)
type match3 = Must | May | No

exception Contradiction

let atom_match3 schema annotations row atom =
  match atom with
  | Atom.Cat_eq _ | Atom.Cat_neq _ | Atom.Cat_in _ | Atom.Cat_not_in _ ->
      (* categorical attributes are trusted: exact evaluation *)
      if Atom.eval schema atom row then Must else No
  | Atom.Num_range (attr, range) -> (
      match value_interval schema annotations row attr with
      | None -> raise Contradiction
      | Some iv ->
          if I.subset iv range then Must
          else if I.overlaps iv range then May
          else No)

let row_match3 schema annotations row pred =
  List.fold_left
    (fun acc atom ->
      match (acc, atom_match3 schema annotations row atom) with
      | No, _ | _, No -> No
      | May, _ | _, May -> May
      | Must, Must -> Must)
    Must pred

(* The agg-attribute values a row can contribute *when it is included*:
   its uncertainty interval clipped by the query's own constraints on the
   aggregated attribute (an included row's chosen value must satisfy
   them). Non-empty for Must/May rows by construction. *)
let contribution_interval schema annotations (query : Q.t) row attr =
  match value_interval schema annotations row attr with
  | None -> raise Contradiction
  | Some iv ->
      List.fold_left
        (fun acc atom ->
          match atom with
          | Atom.Num_range (a, range) when a = attr ->
              Option.bind acc (fun iv -> I.intersect iv range)
          | Atom.Num_range _ | Atom.Cat_eq _ | Atom.Cat_neq _ | Atom.Cat_in _
          | Atom.Cat_not_in _ ->
              acc)
        (Some iv) query.Q.where_

type contrib = { status : match3; lo : float; hi : float }

(* Merge multiple numeric atoms on one attribute into a single range so
   that jointly-unsatisfiable pairs (t <= 5 AND t >= 7) classify rows as
   No instead of May. *)
let normalize_pred pred =
  match Pc_predicate.Box.of_pred pred with
  | None -> None
  | Some box ->
      let cat_atoms =
        List.filter
          (fun atom -> match atom with Atom.Num_range _ -> false | _ -> true)
          pred
      in
      let num_attrs =
        List.filter_map
          (fun atom ->
            match atom with Atom.Num_range (a, _) -> Some a | _ -> None)
          pred
        |> List.sort_uniq String.compare
      in
      Some
        (cat_atoms
        @ List.map
            (fun a -> Atom.Num_range (a, Pc_predicate.Box.num_interval box a))
            num_attrs)

let classify rel annotations (query : Q.t) =
  let schema = Relation.schema rel in
  match normalize_pred query.Q.where_ with
  | None -> [] (* unsatisfiable predicate selects nothing in any repair *)
  | Some where_ ->
      let query = { query with Q.where_ } in
      let agg_attr = Q.agg_attr query in
      Relation.fold
        (fun acc row ->
          match row_match3 schema annotations row query.Q.where_ with
          | No -> acc
          | (Must | May) as status -> (
              match agg_attr with
              | None -> { status; lo = 1.; hi = 1. } :: acc
              | Some attr -> (
                  match contribution_interval schema annotations query row attr with
                  | Some iv ->
                      { status; lo = I.lo_float iv; hi = I.hi_float iv } :: acc
                  | None ->
                      (* no valid aggregated value exists for this row
                         inside the query region: it cannot be part of any
                         repair's selection *)
                      acc)))
        [] rel

let musts_and_mays contribs =
  ( List.filter (fun c -> c.status = Must) contribs,
    List.filter (fun c -> c.status = May) contribs )

let count_range contribs =
  let musts, mays = musts_and_mays contribs in
  let m = float_of_int (List.length musts) in
  Range
    (Range.make ~lo_exact:true ~hi_exact:true m
       (m +. float_of_int (List.length mays)))

let sum_range contribs =
  let musts, mays = musts_and_mays contribs in
  let lo =
    List.fold_left (fun acc c -> acc +. c.lo) 0. musts
    +. List.fold_left (fun acc c -> acc +. Float.min 0. c.lo) 0. mays
  and hi =
    List.fold_left (fun acc c -> acc +. c.hi) 0. musts
    +. List.fold_left (fun acc c -> acc +. Float.max 0. c.hi) 0. mays
  in
  Range (Range.make ~lo_exact:true ~hi_exact:true lo hi)

let extremal_range contribs ~is_max =
  match contribs with
  | [] -> Empty
  | _ ->
      let musts, _ = musts_and_mays contribs in
      let all_lo = List.map (fun c -> c.lo) contribs in
      let all_hi = List.map (fun c -> c.hi) contribs in
      if is_max then begin
        (* max possible MAX: the best contributor at its top.
           min possible MAX: musts pinned low, mays excluded; when no
           must exists the adversary keeps a single lowest may-row. *)
        let hi = Pc_util.Stat.maximum (Array.of_list all_hi) in
        let lo =
          match musts with
          | _ :: _ ->
              Pc_util.Stat.maximum
                (Array.of_list (List.map (fun c -> c.lo) musts))
          | [] -> Pc_util.Stat.minimum (Array.of_list all_lo)
        in
        Range (Range.make ~lo_exact:true ~hi_exact:true (Float.min lo hi) hi)
      end
      else begin
        let lo = Pc_util.Stat.minimum (Array.of_list all_lo) in
        let hi =
          match musts with
          | _ :: _ ->
              Pc_util.Stat.minimum
                (Array.of_list (List.map (fun c -> c.hi) musts))
          | [] -> Pc_util.Stat.maximum (Array.of_list all_hi)
        in
        Range (Range.make ~lo_exact:true ~hi_exact:true lo (Float.max lo hi))
      end

(* Greedy optimal-average: start from the forced rows at their extreme
   values and admit optional rows in best-first order while they improve
   the running average (prefix optimality of sorted selection). *)
let best_average ~forced ~optional ~maximize =
  let cmp a b = if maximize then Float.compare b a else Float.compare a b in
  let optional = List.sort cmp optional in
  let improves avg v = if maximize then v > avg else v < avg in
  match (forced, optional) with
  | [], [] -> None
  | [], best :: rest ->
      let rec go sum count = function
        | v :: rest when improves (sum /. count) v ->
            go (sum +. v) (count +. 1.) rest
        | _ -> sum /. count
      in
      Some (go best 1. rest)
  | _ :: _, _ ->
      let sum = List.fold_left ( +. ) 0. forced in
      let count = float_of_int (List.length forced) in
      let rec go sum count = function
        | v :: rest when improves (sum /. count) v ->
            go (sum +. v) (count +. 1.) rest
        | _ -> sum /. count
      in
      Some (go sum count optional)

let avg_range contribs =
  match contribs with
  | [] -> Empty
  | _ ->
      let musts, mays = musts_and_mays contribs in
      let hi =
        best_average
          ~forced:(List.map (fun c -> c.hi) musts)
          ~optional:(List.map (fun c -> c.hi) mays)
          ~maximize:true
      and lo =
        best_average
          ~forced:(List.map (fun c -> c.lo) musts)
          ~optional:(List.map (fun c -> c.lo) mays)
          ~maximize:false
      in
      (match (lo, hi) with
      | Some lo, Some hi ->
          Range (Range.make ~lo_exact:true ~hi_exact:true (Float.min lo hi) (Float.max lo hi))
      | None, _ | _, None -> Empty)

let bound rel annotations (query : Q.t) =
  match classify rel annotations query with
  | exception Contradiction -> Inconsistent
  | contribs -> (
      match query.Q.agg with
      | Q.Count -> count_range contribs
      | Q.Sum _ -> sum_range contribs
      | Q.Avg _ -> avg_range contribs
      | Q.Max _ -> extremal_range contribs ~is_max:true
      | Q.Min _ -> extremal_range contribs ~is_max:false)
