(** Contingency analysis for dirty rows — the extension sketched in the
    paper's conclusion (§8): "rather than considering completely missing
    or dirty rows, we want to consider rows with some good and some
    faulty information."

    Rows are present, but annotations declare that some numeric attribute
    values are untrustworthy: the true value lies in an interval around
    (or instead of) the recorded one. Aggregates are then bounded over
    every relation obtainable by replacing annotated values within their
    intervals — same hard-bound semantics as the missing-row framework,
    evaluated by three-valued predicate matching (a row with an uncertain
    predicate attribute *may* satisfy the query) plus an exact
    interval-aggregation step.

    Categorical attributes are always trusted; annotations apply to
    numeric attributes only. *)

type model =
  | Absolute of Pc_interval.Interval.t
      (** the true value lies in this interval, wherever the recorded one is *)
  | Additive of float  (** within ± delta of the recorded value *)
  | Relative of float  (** within ± (r × |recorded value|) *)

type annotation = {
  pred : Pc_predicate.Pred.t;  (** which rows are suspect *)
  attr : string;  (** which attribute is unreliable *)
  model : model;
}

val annotation :
  ?pred:Pc_predicate.Pred.t -> attr:string -> model -> annotation
(** [pred] defaults to all rows. *)

type answer = Range of Pc_core.Range.t | Empty | Inconsistent

val value_interval :
  Pc_data.Schema.t ->
  annotation list ->
  Pc_data.Relation.tuple ->
  string ->
  Pc_interval.Interval.t option
(** Possible true values of one attribute of one row: the recorded point
    unless annotations apply; overlapping annotations intersect (most
    restrictive wins, as with overlapping PCs). [None] when annotations
    contradict each other. *)

val bound :
  Pc_data.Relation.t -> annotation list -> Pc_query.Query.t -> answer
(** Hard range of the aggregate over all consistent repairs of the dirty
    relation. [Inconsistent] when some row admits no true value under
    the annotations; [Empty] when AVG/MIN/MAX may be undefined in every
    repair... (never returned for COUNT/SUM, whose empty value is 0). *)
