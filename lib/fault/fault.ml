type site = Sat_fail | Sat_slow | Lp_doubt | Clock_skew | Sock_tear | Sock_close

let site_name = function
  | Sat_fail -> "sat_fail"
  | Sat_slow -> "sat_slow"
  | Lp_doubt -> "lp_doubt"
  | Clock_skew -> "clock_skew"
  | Sock_tear -> "sock_tear"
  | Sock_close -> "sock_close"

let all_sites = [ Sat_fail; Sat_slow; Lp_doubt; Clock_skew; Sock_tear; Sock_close ]
let n_sites = List.length all_sites

let site_index = function
  | Sat_fail -> 0
  | Sat_slow -> 1
  | Lp_doubt -> 2
  | Clock_skew -> 3
  | Sock_tear -> 4
  | Sock_close -> 5

exception Injected of site

let () =
  Printexc.register_printer (function
    | Injected s -> Some (Printf.sprintf "Pc_fault.Fault.Injected(%s)" (site_name s))
    | _ -> None)

type config = {
  seed : int;
  rates : (site * float) list;
  slow_s : float;
  skew_s : float;
}

let config ?(seed = 0) ?(slow_s = 0.002) ?(skew_s = 60.) rates =
  { seed; rates; slow_s; skew_s }

let config_of_string s =
  let site_of_key k =
    List.find_opt (fun site -> site_name site = k) all_sites
  in
  let parse_item acc part =
    Result.bind acc (fun cfg ->
        let part = String.trim part in
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "bad fault item %S (want key=value)" part)
        | Some i -> (
            let k = String.trim (String.sub part 0 i) in
            let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
            let float_v () =
              match float_of_string_opt v with
              | Some f when Float.is_finite f -> Ok f
              | _ -> Error (Printf.sprintf "fault %s: %S is not a number" k v)
            in
            match k with
            | "seed" -> (
                match int_of_string_opt v with
                | Some n -> Ok { cfg with seed = n }
                | None -> Error (Printf.sprintf "fault seed: %S is not an integer" v))
            | "slow_ms" ->
                Result.map (fun f -> { cfg with slow_s = f /. 1000. }) (float_v ())
            | "skew_s" -> Result.map (fun f -> { cfg with skew_s = f }) (float_v ())
            | _ -> (
                match site_of_key k with
                | None -> Error (Printf.sprintf "unknown fault site %S" k)
                | Some site ->
                    Result.bind (float_v ()) (fun f ->
                        if f < 0. || f > 1. then
                          Error
                            (Printf.sprintf "fault %s: rate %g outside [0, 1]" k f)
                        else Ok { cfg with rates = (site, f) :: cfg.rates }))))
  in
  List.fold_left parse_item
    (Ok { seed = 0; rates = []; slow_s = 0.002; skew_s = 60. })
    (String.split_on_char ',' s)

(* ------------------------------------------------------------------ *)
(* Armed state                                                         *)
(* ------------------------------------------------------------------ *)

(* One injection event per fired visit, rare enough to count directly. *)
let c_injected = Pc_obs.Registry.Counter.make "fault.injections"

type armed = {
  cfg : config;
  rate : float array;  (** dense per-site rates *)
  visits : int Atomic.t array;  (** per-site visit sequence numbers *)
  fired : int Atomic.t array;
}

(* [enabled_flag] is the one-load fast-path gate; [state] only changes
   while disabled, so sites that pass the gate read a consistent
   schedule. *)
let enabled_flag = Atomic.make false
let state : armed option Atomic.t = Atomic.make None

let enabled () = Atomic.get enabled_flag

(* Keep the last armed state so post-run accounting ([injected]) still
   reads after the schedule is turned off. *)
let disable () = Atomic.set enabled_flag false

let configure cfg =
  Atomic.set enabled_flag false;
  let rate = Array.make n_sites 0. in
  List.iter
    (fun (site, r) -> rate.(site_index site) <- Float.max 0. (Float.min 1. r))
    cfg.rates;
  Atomic.set state
    (Some
       {
         cfg;
         rate;
         visits = Array.init n_sites (fun _ -> Atomic.make 0);
         fired = Array.init n_sites (fun _ -> Atomic.make 0);
       });
  Atomic.set enabled_flag true

let with_faults cfg f =
  configure cfg;
  Fun.protect ~finally:disable f

(* splitmix64: decisions depend only on (seed, site, visit number). *)
let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let unit_float h =
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical h 11) *. (1. /. 9007199254740992.)

let decide a site n =
  let i = site_index site in
  let r = a.rate.(i) in
  if r <= 0. then false
  else if r >= 1. then true
  else begin
    let key =
      Int64.add
        (Int64.mul (Int64.of_int a.cfg.seed) 0x100000001B3L)
        (Int64.add (Int64.mul (Int64.of_int i) 0x1000003L) (Int64.of_int n))
    in
    unit_float (splitmix64 key) < r
  end

let fire site =
  if not (Atomic.get enabled_flag) then false
  else
    match Atomic.get state with
    | None -> false
    | Some a ->
        let i = site_index site in
        let n = Atomic.fetch_and_add a.visits.(i) 1 in
        let hit = decide a site n in
        if hit then begin
          Atomic.incr a.fired.(i);
          Pc_obs.Registry.Counter.incr c_injected
        end;
        hit

let point site = if fire site then raise (Injected site)

let slow_point () =
  if fire Sat_slow then
    match Atomic.get state with
    | None -> ()
    | Some a -> Unix.sleepf (Float.max 0. a.cfg.slow_s)

let clock_skew_s () =
  if fire Clock_skew then
    match Atomic.get state with None -> 0. | Some a -> a.cfg.skew_s
  else 0.

let injected site =
  match Atomic.get state with
  | None -> 0
  | Some a -> Atomic.get a.fired.(site_index site)

let total_injected () =
  match Atomic.get state with
  | None -> 0
  | Some a -> Array.fold_left (fun acc c -> acc + Atomic.get c) 0 a.fired
