(** Deterministic fault injection for robustness testing.

    A small set of named {e injection sites} is threaded through the
    solver stack and the bound server: each site is a point where a real
    deployment can fail (a SAT call that hangs or dies, a warm-started
    simplex whose numerics are doubtful, a skewed clock, a client socket
    torn mid-reply). Tests and the chaos harness arm a seeded schedule;
    production runs leave the subsystem disabled, in which case every
    site costs a single atomic load and a branch — no allocation, no
    randomness.

    Decisions are {e deterministic}: whether the [n]-th visit to a site
    fires depends only on [(seed, site, n)], via a splitmix64 hash. Two
    runs with the same schedule and the same per-site visit sequence
    inject identical faults, so chaos failures replay. Per-site visit
    counters are {!Atomic}, so concurrent server threads draw distinct
    decisions without locking (the interleaving, not the decision
    function, is the only nondeterminism under concurrency).

    How each site manifests, and why it stays sound:
    - [Sat_fail] raises {!Injected} out of the SAT solver; the ladder
      driver in [Pc_core.Bounds] catches it and falls to the trivial
      rung, exactly like budget exhaustion.
    - [Sat_slow] sleeps inside the SAT solver, so deadlines expire and
      budget-driven degradation takes over.
    - [Lp_doubt] makes a warm-started simplex distrust its basis and
      take the cold-solve fallback — the path real numeric doubt takes.
    - [Clock_skew] adds seconds to deadline checks ([Pc_budget]), firing
      them early; early expiry only degrades, never corrupts.
    - [Sock_tear] / [Sock_close] tear or close a server-side client
      socket mid-reply / before the reply, exercising the connection
      pool's isolation. *)

type site =
  | Sat_fail  (** SAT solver call dies *)
  | Sat_slow  (** SAT solver call stalls *)
  | Lp_doubt  (** warm-started simplex doubts its numerics *)
  | Clock_skew  (** deadline checks see a clock jumped forward *)
  | Sock_tear  (** client socket torn mid-reply (partial write) *)
  | Sock_close  (** client socket closed before the reply *)

val site_name : site -> string
val all_sites : site list

exception Injected of site
(** Raised by {!point} when the site fires. Never escapes
    [Pc_core.Bounds.bound_budgeted] (the ladder catches it) or the
    server's per-request isolation. *)

type config = {
  seed : int;
  rates : (site * float) list;  (** firing probability per site, [0, 1] *)
  slow_s : float;  (** [Sat_slow] stall, seconds *)
  skew_s : float;  (** [Clock_skew] jump, seconds *)
}

val config : ?seed:int -> ?slow_s:float -> ?skew_s:float -> (site * float) list -> config
(** Defaults: [seed = 0], [slow_s = 0.002], [skew_s = 60.]. Omitted
    sites never fire. *)

val config_of_string : string -> (config, string) result
(** Parse a CLI schedule: comma-separated [key=value] with keys [seed],
    [slow_ms], [skew_s] and one per site ([sat_fail], [sat_slow],
    [lp_doubt], [clock_skew], [sock_tear], [sock_close]) giving its
    rate. Example: ["seed=7,sat_fail=0.2,lp_doubt=0.5,slow_ms=1"]. *)

val configure : config -> unit
(** Arm the schedule and zero every visit/injection counter. *)

val disable : unit -> unit
(** Return every site to a no-op. Counters keep their totals. *)

val enabled : unit -> bool

val with_faults : config -> (unit -> 'a) -> 'a
(** [configure], run, then [disable] (also on raise). Not reentrant. *)

(* -------- sites (called by the instrumented subsystems) -------- *)

val fire : site -> bool
(** Visit the site: [false] when disabled, otherwise the deterministic
    decision for this visit. Fired visits are counted. *)

val point : site -> unit
(** [if fire site then raise (Injected site)]. *)

val slow_point : unit -> unit
(** Visit [Sat_slow]; sleep [slow_s] when it fires. *)

val clock_skew_s : unit -> float
(** Visit [Clock_skew]; the configured jump when it fires, else [0.]. *)

(* -------- accounting -------- *)

val injected : site -> int
(** Fired visits at this site since the last {!configure}. *)

val total_injected : unit -> int
