type endpoint = Neg_inf | Pos_inf | Closed of float | Open of float

type t = { lo : endpoint; hi : endpoint }

let check_finite = function
  | Closed x | Open x ->
      if not (Float.is_finite x) then
        invalid_arg "Interval: non-finite endpoint value"
  | Neg_inf | Pos_inf -> ()

(* Comparison of two endpoints viewed as *lower* bounds: which one is the
   stronger (larger) restriction. Open x is stronger than Closed x. *)
let compare_lower a b =
  match (a, b) with
  | Neg_inf, Neg_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, Pos_inf -> 0
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | (Closed x | Open x), (Closed y | Open y) when x <> y -> Float.compare x y
  | Closed _, Closed _ | Open _, Open _ -> 0
  | Closed _, Open _ -> -1
  | Open _, Closed _ -> 1

(* As *upper* bounds: Open x is stronger (smaller) than Closed x. *)
let compare_upper a b =
  match (a, b) with
  | Pos_inf, Pos_inf -> 0
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | Neg_inf, Neg_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | (Closed x | Open x), (Closed y | Open y) when x <> y -> Float.compare x y
  | Closed _, Closed _ | Open _, Open _ -> 0
  | Closed _, Open _ -> 1
  | Open _, Closed _ -> -1

let nonempty lo hi =
  match (lo, hi) with
  | Pos_inf, _ | _, Neg_inf -> false
  | Neg_inf, _ | _, Pos_inf -> true
  | Closed x, Closed y -> x <= y
  | (Closed x | Open x), (Closed y | Open y) -> x < y

let make lo hi =
  check_finite lo;
  check_finite hi;
  if nonempty lo hi then Some { lo; hi } else None

let make_exn lo hi =
  match make lo hi with
  | Some t -> t
  | None -> invalid_arg "Interval.make_exn: empty interval"

let full = { lo = Neg_inf; hi = Pos_inf }
let point x = make_exn (Closed x) (Closed x)

let closed lo hi =
  if lo > hi then invalid_arg "Interval.closed: lo > hi";
  make_exn (Closed lo) (Closed hi)

let at_least x = make_exn (Closed x) Pos_inf
let at_most x = make_exn Neg_inf (Closed x)
let greater_than x = make_exn (Open x) Pos_inf
let less_than x = make_exn Neg_inf (Open x)

let contains { lo; hi } x =
  let above_lo =
    match lo with
    | Neg_inf -> true
    | Pos_inf -> false
    | Closed l -> x >= l
    | Open l -> x > l
  and below_hi =
    match hi with
    | Pos_inf -> true
    | Neg_inf -> false
    | Closed h -> x <= h
    | Open h -> x < h
  in
  above_lo && below_hi

let intersect a b =
  let lo = if compare_lower a.lo b.lo >= 0 then a.lo else b.lo in
  let hi = if compare_upper a.hi b.hi <= 0 then a.hi else b.hi in
  if nonempty lo hi then Some { lo; hi } else None

let overlaps a b = Option.is_some (intersect a b)

let subset a b =
  (* a ⊆ b: b's lower bound no stronger than a's, same for upper *)
  compare_lower b.lo a.lo <= 0 && compare_upper b.hi a.hi >= 0

let complement { lo; hi } =
  let below =
    match lo with
    | Neg_inf -> []
    | Pos_inf -> [ full ]
    | Closed x -> [ { lo = Neg_inf; hi = Open x } ]
    | Open x -> [ { lo = Neg_inf; hi = Closed x } ]
  and above =
    match hi with
    | Pos_inf -> []
    | Neg_inf -> [ full ]
    | Closed x -> [ { lo = Open x; hi = Pos_inf } ]
    | Open x -> [ { lo = Closed x; hi = Pos_inf } ]
  in
  below @ above

let hull a b =
  let lo = if compare_lower a.lo b.lo <= 0 then a.lo else b.lo in
  let hi = if compare_upper a.hi b.hi >= 0 then a.hi else b.hi in
  { lo; hi }

let compare_lo a b = compare_lower a.lo b.lo
let compare_hi a b = compare_upper a.hi b.hi

let abuts a b =
  match (a.hi, b.lo) with
  | Closed x, Open y | Open x, Closed y -> x = y
  | _ -> false

(* Everything strictly below / strictly above an endpoint, as intervals.
   Used to split ℝ at an interval's edges; [None] when nothing is on that
   side (the endpoint is infinite). *)
let below_lo = function
  | Neg_inf -> None
  | Pos_inf -> Some full
  | Closed x -> Some { lo = Neg_inf; hi = Open x }
  | Open x -> Some { lo = Neg_inf; hi = Closed x }

let above_hi = function
  | Pos_inf -> None
  | Neg_inf -> Some full
  | Closed x -> Some { lo = Open x; hi = Pos_inf }
  | Open x -> Some { lo = Closed x; hi = Pos_inf }

let refine ivs =
  let cut piece iv =
    let part side = Option.bind side (intersect piece) in
    Option.to_list (part (below_lo iv.lo))
    @ Option.to_list (intersect piece iv)
    @ Option.to_list (part (above_hi iv.hi))
  in
  List.fold_left
    (fun pieces iv -> List.concat_map (fun piece -> cut piece iv) pieces)
    [ full ] ivs

let lo_value t =
  match t.lo with Closed x | Open x -> Some x | Neg_inf | Pos_inf -> None

let hi_value t =
  match t.hi with Closed x | Open x -> Some x | Neg_inf | Pos_inf -> None

let lo_float t =
  match t.lo with Closed x | Open x -> x | Neg_inf -> neg_infinity | Pos_inf -> infinity

let hi_float t =
  match t.hi with Closed x | Open x -> x | Pos_inf -> infinity | Neg_inf -> neg_infinity

let is_singleton t =
  match (t.lo, t.hi) with Closed a, Closed b -> a = b | _ -> false

let width t = hi_float t -. lo_float t

let midpoint t =
  match (lo_value t, hi_value t) with
  | Some l, Some h -> (l +. h) /. 2.
  | Some l, None -> if contains t l then l else l +. 1.
  | None, Some h -> if contains t h then h else h -. 1.
  | None, None -> 0.

(* Finite truncation used to sample from unbounded intervals. *)
let truncation = 1e6

let sample rng t =
  let lo = Float.max (lo_float t) (-.truncation)
  and hi = Float.min (hi_float t) truncation in
  if lo >= hi then midpoint t
  else begin
    let x = Pc_util.Rng.uniform rng ~lo ~hi in
    if contains t x then x else midpoint t
  end

let equal a b = a = b

let compare a b =
  let c = compare_lower a.lo b.lo in
  if c <> 0 then c else compare_upper a.hi b.hi

let pp ppf t =
  let lo_bracket, lo_str =
    match t.lo with
    | Neg_inf -> ("(", "-inf")
    | Pos_inf -> ("(", "+inf")
    | Closed x -> ("[", Printf.sprintf "%g" x)
    | Open x -> ("(", Printf.sprintf "%g" x)
  and hi_str, hi_bracket =
    match t.hi with
    | Pos_inf -> ("+inf", ")")
    | Neg_inf -> ("-inf", ")")
    | Closed x -> (Printf.sprintf "%g" x, "]")
    | Open x -> (Printf.sprintf "%g" x, ")")
  in
  Format.fprintf ppf "%s%s, %s%s" lo_bracket lo_str hi_str hi_bracket

let to_string t = Format.asprintf "%a" pp t
