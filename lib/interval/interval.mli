(** Real intervals with open, closed, and infinite endpoints.

    These are the building blocks of predicates (range atoms), value
    constraints, and cell boxes. An [Interval.t] is always non-empty; empty
    results of algebraic operations are signalled with [option]. *)

type endpoint =
  | Neg_inf
  | Pos_inf
  | Closed of float  (** endpoint included *)
  | Open of float  (** endpoint excluded *)

type t = private { lo : endpoint; hi : endpoint }

val make : endpoint -> endpoint -> t option
(** [make lo hi] is the interval if non-empty, [None] otherwise.
    [Neg_inf] is only meaningful as a lower endpoint and [Pos_inf] as an
    upper one; passing them on the wrong side yields [None]. Non-finite
    floats inside [Closed]/[Open] raise [Invalid_argument]. *)

val make_exn : endpoint -> endpoint -> t
(** Like {!make} but raises [Invalid_argument] on an empty interval. *)

val full : t
(** The whole real line. *)

val point : float -> t
(** Degenerate closed interval [x, x]. *)

val closed : float -> float -> t
(** [closed lo hi] is [lo, hi]; raises [Invalid_argument] if [lo > hi]. *)

val at_least : float -> t
(** [[x, ∞)]. *)

val at_most : float -> t
(** [(-∞, x]]. *)

val greater_than : float -> t
(** [(x, ∞)]. *)

val less_than : float -> t
(** [(-∞, x)]. *)

val contains : t -> float -> bool

val intersect : t -> t -> t option
(** [None] when the intersection is empty. *)

val overlaps : t -> t -> bool
val subset : t -> t -> bool

(** [complement t] is the set difference [ℝ \ t] as 0, 1, or 2 disjoint
    intervals. *)
val complement : t -> t list

val hull : t -> t -> t
(** Smallest interval containing both. *)

val compare_lo : t -> t -> int
(** Compare lower endpoints as restrictions: negative when [a] starts
    before (or less strictly than) [b] — [Open x] is stronger than
    [Closed x]. *)

val compare_hi : t -> t -> int
(** Compare upper endpoints as restrictions: negative when [a] ends
    before (or more strictly than) [b]. *)

val abuts : t -> t -> bool
(** [abuts a b]: [a]'s upper and [b]'s lower endpoint split ℝ at a shared
    finite point with no gap and no overlap — [a = (…, x)] against
    [b = [x, …)], or [a = (…, x]] against [b = (x, …)]. The invariant
    behind FDD edge coalescing: two adjacent edges of a partition always
    abut. *)

val refine : t list -> t list
(** [refine ivs] is the common refinement of ℝ by the inputs: an
    ascending list of disjoint intervals covering ℝ, each wholly inside
    or wholly outside every input. Splits at shared endpoints honour
    open/closed-ness, so [refine [\[0,10\]; \[10,20\]]] contains the
    singleton [\[10,10\]]. [refine \[\]] is [[full]]. *)

val lo_value : t -> float option
(** Finite lower endpoint value, [None] for [Neg_inf]. *)

val hi_value : t -> float option

val lo_float : t -> float
(** Lower endpoint as a float, [neg_infinity] for [Neg_inf]. *)

val hi_float : t -> float

val is_singleton : t -> bool
val width : t -> float
(** [hi - lo]; [infinity] when unbounded. *)

val midpoint : t -> float
(** A representative interior-or-endpoint element. For unbounded intervals
    picks a finite representative near the finite endpoint (or 0). *)

val sample : Pc_util.Rng.t -> t -> float
(** Random element of the interval (uniform over a finite truncation for
    unbounded intervals). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
