module S = Pc_lp.Simplex

type cover = (string * float) list

let solve ?budget ?(fixed = []) ~weights hg =
  let rels = Hypergraph.rels hg in
  let n = List.length rels in
  let index =
    List.mapi (fun i (r : Hypergraph.rel) -> (r.Hypergraph.name, i)) rels
  in
  let weight_of name =
    match List.assoc_opt name weights with
    | Some w -> Float.max 1. w
    | None -> invalid_arg (Printf.sprintf "Edge_cover.solve: missing weight for %s" name)
  in
  let objective =
    List.map
      (fun (r : Hypergraph.rel) ->
        (List.assoc r.Hypergraph.name index, log (weight_of r.Hypergraph.name)))
      rels
  in
  let cover_cons =
    List.map
      (fun attr ->
        let coeffs =
          List.map (fun name -> (List.assoc name index, 1.)) (Hypergraph.covering hg attr)
        in
        S.c_ge coeffs 1.)
      (Hypergraph.attrs hg)
  in
  (* A pinned relation is a [v, v] box, not an equality row. The free
     weights live in [0, 1]: objective coefficients are log(max 1 w) >= 0,
     and clamping any w_e > 1 down to 1 keeps every covering row at >= 1
     (each term caps at 1), so the optimum is preserved while the LP loses
     its equality rows — and with them, phase 1 work. *)
  let fixed_bounds =
    List.map
      (fun (name, v) ->
        match List.assoc_opt name index with
        | Some i -> (i, v, v)
        | None -> invalid_arg (Printf.sprintf "Edge_cover.solve: unknown relation %s" name))
      fixed
  in
  let free_bounds =
    List.filter_map
      (fun (r : Hypergraph.rel) ->
        let i = List.assoc r.Hypergraph.name index in
        if List.exists (fun (j, _, _) -> j = i) fixed_bounds then None
        else Some (i, 0., 1.))
      rels
  in
  let problem =
    {
      S.n_vars = n;
      maximize = false;
      objective;
      constraints = cover_cons;
      var_bounds = fixed_bounds @ free_bounds;
    }
  in
  match S.solve ?budget problem with
  | S.Optimal sol ->
      Some
        (List.map
           (fun (r : Hypergraph.rel) ->
             (r.Hypergraph.name, sol.S.values.(List.assoc r.Hypergraph.name index)))
           rels)
  | S.Infeasible | S.Unbounded -> None
  | S.Stopped _ ->
      (* starved before optimality: no cover — callers fall back to the
         (sound, looser) plain product bound *)
      None

let product_bound ~weights cover =
  List.fold_left
    (fun acc (name, c) ->
      if c <= 1e-12 then acc
      else begin
        let w =
          match List.assoc_opt name weights with
          | Some w -> Float.max 1. w
          | None -> invalid_arg "Edge_cover.product_bound: missing weight"
        in
        acc *. (w ** c)
      end)
    1. cover

let integral_cover hg =
  let weights =
    List.map
      (fun (r : Hypergraph.rel) -> (r.Hypergraph.name, Float.exp 1.))
      (Hypergraph.rels hg)
  in
  solve ~weights hg
