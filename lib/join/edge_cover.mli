(** Fractional edge cover via linear programming (paper §5.2).

    A fractional edge cover assigns cᵢ ≥ 0 to each relation such that
    every attribute is covered: Σ_{i ∋ s} cᵢ ≥ 1. Minimizing
    Σ cᵢ·log(wᵢ) gives the tightest GWE/AGM-style product bound
    Π wᵢ^cᵢ. *)

type cover = (string * float) list
(** Relation name → cᵢ. *)

val solve :
  ?budget:Pc_budget.Budget.t ->
  ?fixed:(string * float) list ->
  weights:(string * float) list ->
  Hypergraph.t ->
  cover option
(** [solve ~weights hg] minimizes [Σ cᵢ·log wᵢ] over fractional edge
    covers. [fixed] pins selected coefficients (e.g. [c_a = 1] for the
    SUM-bearing relation). Weights must be ≥ 1 — entries below 1 are
    clamped to 1, which can only loosen the bound. [None] when no cover
    exists (an attribute not covered even with every cᵢ free, which
    cannot happen for well-formed hypergraphs), when the LP fails, or
    when [budget] starves the LP before optimality — callers must fall
    back to a cover-free product bound. *)

val product_bound : weights:(string * float) list -> cover -> float
(** [Π wᵢ^cᵢ]. *)

val integral_cover : Hypergraph.t -> cover option
(** Classic (integral-relaxation-free) reference: the LP solution with all
    weights equal, i.e. the minimum fractional edge cover number ρ*. *)
