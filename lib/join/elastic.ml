let size_of sizes name =
  match List.assoc_opt name sizes with
  | Some n -> Float.max 0. n
  | None -> invalid_arg (Printf.sprintf "Elastic: missing size for %s" name)

let sensitivity_at ~sizes hg ~distance =
  let rels = Hypergraph.rels hg in
  let impact_of_insert_into target =
    List.fold_left
      (fun acc (r : Hypergraph.rel) ->
        if r.Hypergraph.name = target then acc
        else acc *. (size_of sizes r.Hypergraph.name +. distance))
      1. rels
  in
  List.fold_left
    (fun acc (r : Hypergraph.rel) ->
      Float.max acc (impact_of_insert_into r.Hypergraph.name))
    0. rels

(* Growing the database row by row from empty, the result can increase by
   at most S(k) at step k; the closed-form integral upper-approximates the
   sum for large K to keep this O(1). *)
let result_bound ~sizes hg =
  let total =
    List.fold_left
      (fun acc (r : Hypergraph.rel) -> acc +. size_of sizes r.Hypergraph.name)
      0. (Hypergraph.rels hg)
  in
  let k_total = int_of_float (Float.min total 200_000.) in
  if float_of_int k_total >= total then begin
    let acc = ref 0. in
    for k = 0 to k_total - 1 do
      acc := !acc +. sensitivity_at ~sizes hg ~distance:(float_of_int k)
    done;
    !acc
  end
  else begin
    (* integral upper bound: S is nondecreasing in k *)
    total *. sensitivity_at ~sizes hg ~distance:total
  end

let triangle_bound ~n =
  result_bound
    ~sizes:[ ("R", n); ("S", n); ("T", n) ]
    Hypergraph.triangle

let chain_bound ~n ~k =
  let hg = Hypergraph.chain k in
  let sizes =
    List.map (fun (r : Hypergraph.rel) -> (r.Hypergraph.name, n)) (Hypergraph.rels hg)
  in
  result_bound ~sizes hg
