(** Elastic-sensitivity baseline (Johnson, Near, Song, VLDB 2018) for
    bounding counting queries over equi-joins, as compared against in the
    paper's Figure 12.

    Elastic sensitivity bounds how much a join count can change when one
    row is added at distance k from the database: the product of the other
    relations' maximum join-key frequencies at that distance, each itself
    bounded by (mf + k). With only cardinality information available, the
    max frequency of a relation of size N is bounded by N. Summing the
    sensitivities while growing the database from empty to its full size
    yields a hard bound on the query result — the bound our
    worst-case-optimal-join formulation beats by orders of magnitude. *)

val sensitivity_at :
  sizes:(string * float) list -> Hypergraph.t -> distance:float -> float
(** S(k): the largest one-row impact at distance k. *)

val result_bound : sizes:(string * float) list -> Hypergraph.t -> float
(** Σ_{k=0}^{K-1} S(k) with K the total number of rows. *)

val triangle_bound : n:float -> float
(** Closed form of [result_bound] for the triangle query on three
    relations of size [n]. *)

val chain_bound : n:float -> k:int -> float
(** [result_bound] for the k-relation chain join with equal sizes. *)
