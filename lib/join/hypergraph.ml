type rel = { name : string; attrs : string list }

type t = rel list

let make rels =
  let names = List.map (fun r -> r.name) rels in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Hypergraph.make: duplicate relation names";
  List.iter
    (fun r -> if r.attrs = [] then invalid_arg "Hypergraph.make: relation without attributes")
    rels;
  rels

let rels t = t
let size t = List.length t

let attrs t =
  List.concat_map (fun r -> r.attrs) t |> List.sort_uniq String.compare

let covering t attr =
  List.filter_map
    (fun r -> if List.mem attr r.attrs then Some r.name else None)
    t

let mem t name = List.exists (fun r -> r.name = name) t

let triangle =
  make
    [
      { name = "R"; attrs = [ "a"; "b" ] };
      { name = "S"; attrs = [ "b"; "c" ] };
      { name = "T"; attrs = [ "c"; "a" ] };
    ]

let clique k =
  if k < 2 then invalid_arg "Hypergraph.clique: k < 2";
  let rels = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      rels :=
        {
          name = Printf.sprintf "E%d_%d" i j;
          attrs = [ Printf.sprintf "x%d" i; Printf.sprintf "x%d" j ];
        }
        :: !rels
    done
  done;
  make (List.rev !rels)

let chain k =
  if k < 1 then invalid_arg "Hypergraph.chain: k < 1";
  make
    (List.init k (fun i ->
         {
           name = Printf.sprintf "R%d" (i + 1);
           attrs = [ Printf.sprintf "x%d" (i + 1); Printf.sprintf "x%d" (i + 2) ];
         }))
