(** Join hypergraphs: one hyperedge per relation, vertices are join
    attributes. When several relations join on an attribute the attribute
    is considered indistinguishable across them (paper §5.2). *)

type rel = { name : string; attrs : string list }

type t

val make : rel list -> t
(** Raises [Invalid_argument] on duplicate relation names or a relation
    without attributes. *)

val rels : t -> rel list
val size : t -> int
val attrs : t -> string list
(** All distinct attributes, sorted. *)

val covering : t -> string -> string list
(** Names of the relations containing an attribute. *)

val mem : t -> string -> bool
(** Membership by relation name. *)

(** Standard shapes used in the paper's evaluation (§6.6.3). *)

val triangle : t
(** R(a,b) ⋈ S(b,c) ⋈ T(c,a). *)

val clique : int -> t
(** The k-clique pattern: one binary relation per vertex pair. *)

val chain : int -> t
(** R1(x1,x2) ⋈ R2(x2,x3) ⋈ … ⋈ Rk(xk, x(k+1)) — the acyclic join. *)
