module Q = Pc_query.Query
module Bounds = Pc_core.Bounds
module Pc_set = Pc_core.Pc_set
module Pc = Pc_core.Pc
module B = Pc_budget.Budget
module Counter = Pc_obs.Registry.Counter
module Trace = Pc_obs.Trace

let c_bounds = Counter.make "join.bounds"
let c_cover_fallbacks = Counter.make "join.cover_fallbacks"

type table = {
  name : string;
  join_attrs : string list;
  pcs : Pc_set.t;
  where_ : Pc_predicate.Pred.t;
      (** per-table selection pushed below the join; [Pred.tt] when the
          query has no predicate on this table *)
}

type bounded = { value : float; provenance : Bounds.provenance }

let table ?(where_ = Pc_predicate.Pred.tt) ~name ~join_attrs pcs =
  { name; join_attrs; pcs; where_ }

let hi_of = function
  | Bounds.Range r -> r.Pc_core.Range.hi
  | Bounds.Empty -> 0.
  | Bounds.Infeasible -> 0.

let count_upper_b ?opts ?budget t =
  let o = Bounds.bound_budgeted ?opts ?budget t.pcs (Q.count ~where_:t.where_ ()) in
  { value = hi_of o.Bounds.answer; provenance = o.Bounds.stats.Bounds.provenance }

let sum_upper_b ?opts ?budget t ~attr =
  let o = Bounds.bound_budgeted ?opts ?budget t.pcs (Q.sum ~where_:t.where_ attr) in
  {
    value = Float.max 0. (hi_of o.Bounds.answer);
    provenance = o.Bounds.stats.Bounds.provenance;
  }

let count_upper ?opts ?budget t = (count_upper_b ?opts ?budget t).value

let sum_upper ?opts ?budget t ~attr = (sum_upper_b ?opts ?budget t ~attr).value

let hypergraph_of tables =
  Hypergraph.make
    (List.map
       (fun t -> { Hypergraph.name = t.name; attrs = t.join_attrs })
       tables)

let worst_of bs =
  List.fold_left
    (fun acc b -> Bounds.worst_provenance acc b.provenance)
    Bounds.Exact bs

(* Combine per-table weights through the edge-cover LP — cover weights
   live in [0, 1] box bounds and a [fixed] table is a pinned [v, v] box,
   so the LP has only the covering rows (see Edge_cover). A starved or
   failed LP falls back to the plain product (a cover of all-ones is
   always valid, just looser). The shared [budget] caps the whole join
   bound: per-table ladders plus the cover LP draw from one pool. *)
let combine_run ?budget ?fixed ~weights tables =
  if List.exists (fun (_, c) -> c <= 0.) weights then 0.
  else begin
    let hg = hypergraph_of tables in
    match Edge_cover.solve ?budget ?fixed ~weights hg with
    | Some cover -> Edge_cover.product_bound ~weights cover
    | None ->
        Counter.incr c_cover_fallbacks;
        List.fold_left (fun acc (_, c) -> acc *. c) 1. weights
  end

let combine ?budget ?fixed ~weights tables =
  (* the branch keeps the disabled path closure-free *)
  if Trace.enabled () then
    Trace.with_span ~name:"join.cover" (fun () ->
        combine_run ?budget ?fixed ~weights tables)
  else combine_run ?budget ?fixed ~weights tables

(* Per-table bounds are independent solves; when they share a [budget]
   the atomic caps keep the total sound, though which table degrades
   first may vary between parallel runs (see Pc_par.Pool's contract). *)
let pool_of = function Some p -> p | None -> Pc_par.Pool.default ()

(* Per-table sub-span: runs on whichever domain the pool hands the table
   to, so a trace shows the per-table ladder work laid out per domain. *)
let table_span t f =
  if Trace.enabled () then
    Trace.with_span ~name:"join.table" ~attrs:[ ("table", t.name) ] f
  else f ()

let count_bound_budgeted_run ?opts ?budget ?pool tables =
  Counter.incr c_bounds;
  let per =
    Pc_par.Pool.parallel_map (pool_of pool)
      (fun t -> table_span t (fun () -> (t.name, count_upper_b ?opts ?budget t)))
      tables
  in
  let weights = List.map (fun (n, b) -> (n, b.value)) per in
  {
    value = combine ?budget ~weights tables;
    provenance = worst_of (List.map snd per);
  }

let count_bound_budgeted ?opts ?budget ?pool tables =
  if Trace.enabled () then
    Trace.with_span ~name:"join.bound" ~attrs:[ ("kind", "count") ] (fun () ->
        count_bound_budgeted_run ?opts ?budget ?pool tables)
  else count_bound_budgeted_run ?opts ?budget ?pool tables

let count_bound ?opts ?budget ?pool tables =
  (count_bound_budgeted ?opts ?budget ?pool tables).value

let sum_bound_budgeted_run ?opts ?budget ?pool tables ~agg:(agg_table, attr) =
  if not (List.exists (fun t -> t.name = agg_table) tables) then
    invalid_arg "Join_bound.sum_bound: unknown aggregate table";
  Counter.incr c_bounds;
  let per =
    Pc_par.Pool.parallel_map (pool_of pool)
      (fun t ->
        table_span t (fun () ->
            if t.name = agg_table then (t.name, sum_upper_b ?opts ?budget t ~attr)
            else (t.name, count_upper_b ?opts ?budget t)))
      tables
  in
  let weights = List.map (fun (n, b) -> (n, b.value)) per in
  {
    value = combine ?budget ~fixed:[ (agg_table, 1.) ] ~weights tables;
    provenance = worst_of (List.map snd per);
  }

let sum_bound_budgeted ?opts ?budget ?pool tables ~agg =
  if Trace.enabled () then
    Trace.with_span ~name:"join.bound" ~attrs:[ ("kind", "sum") ] (fun () ->
        sum_bound_budgeted_run ?opts ?budget ?pool tables ~agg)
  else sum_bound_budgeted_run ?opts ?budget ?pool tables ~agg

let sum_bound ?opts ?budget ?pool tables ~agg =
  (sum_bound_budgeted ?opts ?budget ?pool tables ~agg).value

let naive_count_bound ?opts ?budget tables =
  List.fold_left (fun acc t -> acc *. count_upper ?opts ?budget t) 1. tables

let product_pc_set a b =
  let shared =
    List.filter (fun x -> List.mem x (Pc_set.attrs b)) (Pc_set.attrs a)
  in
  if shared <> [] then
    invalid_arg
      (Printf.sprintf "Join_bound.product_pc_set: shared attributes (%s)"
         (String.concat ", " shared));
  let pairs =
    List.concat_map
      (fun (pa : Pc.t) ->
        List.map
          (fun (pb : Pc.t) ->
            Pc.make
              ~name:(pa.Pc.name ^ "*" ^ pb.Pc.name)
              ~pred:(pa.Pc.pred @ pb.Pc.pred)
              ~values:(pa.Pc.values @ pb.Pc.values)
              ~freq:(pa.Pc.freq_lo * pb.Pc.freq_lo, pa.Pc.freq_hi * pb.Pc.freq_hi)
              ())
          (Pc_set.pcs b))
      (Pc_set.pcs a)
  in
  Pc_set.make pairs
