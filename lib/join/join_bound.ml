module Q = Pc_query.Query
module Bounds = Pc_core.Bounds
module Pc_set = Pc_core.Pc_set
module Pc = Pc_core.Pc

type table = {
  name : string;
  join_attrs : string list;
  pcs : Pc_set.t;
  where_ : Pc_predicate.Pred.t;
      (** per-table selection pushed below the join; [Pred.tt] when the
          query has no predicate on this table *)
}

let table ?(where_ = Pc_predicate.Pred.tt) ~name ~join_attrs pcs =
  { name; join_attrs; pcs; where_ }

let hi_of = function
  | Bounds.Range r -> r.Pc_core.Range.hi
  | Bounds.Empty -> 0.
  | Bounds.Infeasible -> 0.

let count_upper ?opts t =
  hi_of (Bounds.bound ?opts t.pcs (Q.count ~where_:t.where_ ()))

let sum_upper ?opts t ~attr =
  Float.max 0. (hi_of (Bounds.bound ?opts t.pcs (Q.sum ~where_:t.where_ attr)))

let hypergraph_of tables =
  Hypergraph.make
    (List.map
       (fun t -> { Hypergraph.name = t.name; attrs = t.join_attrs })
       tables)

let count_bound ?opts tables =
  let counts = List.map (fun t -> (t.name, count_upper ?opts t)) tables in
  if List.exists (fun (_, c) -> c <= 0.) counts then 0.
  else begin
    let hg = hypergraph_of tables in
    match Edge_cover.solve ~weights:counts hg with
    | Some cover -> Edge_cover.product_bound ~weights:counts cover
    | None -> List.fold_left (fun acc (_, c) -> acc *. c) 1. counts
  end

let sum_bound ?opts tables ~agg:(agg_table, attr) =
  if not (List.exists (fun t -> t.name = agg_table) tables) then
    invalid_arg "Join_bound.sum_bound: unknown aggregate table";
  let sums_and_counts =
    List.map
      (fun t ->
        if t.name = agg_table then (t.name, sum_upper ?opts t ~attr)
        else (t.name, count_upper ?opts t))
      tables
  in
  if List.exists (fun (_, c) -> c <= 0.) sums_and_counts then 0.
  else begin
    let hg = hypergraph_of tables in
    match Edge_cover.solve ~fixed:[ (agg_table, 1.) ] ~weights:sums_and_counts hg with
    | Some cover -> Edge_cover.product_bound ~weights:sums_and_counts cover
    | None -> List.fold_left (fun acc (_, c) -> acc *. c) 1. sums_and_counts
  end

let naive_count_bound ?opts tables =
  List.fold_left (fun acc t -> acc *. count_upper ?opts t) 1. tables

let product_pc_set a b =
  let shared =
    List.filter (fun x -> List.mem x (Pc_set.attrs b)) (Pc_set.attrs a)
  in
  if shared <> [] then
    invalid_arg
      (Printf.sprintf "Join_bound.product_pc_set: shared attributes (%s)"
         (String.concat ", " shared));
  let pairs =
    List.concat_map
      (fun (pa : Pc.t) ->
        List.map
          (fun (pb : Pc.t) ->
            Pc.make
              ~name:(pa.Pc.name ^ "*" ^ pb.Pc.name)
              ~pred:(pa.Pc.pred @ pb.Pc.pred)
              ~values:(pa.Pc.values @ pb.Pc.values)
              ~freq:(pa.Pc.freq_lo * pb.Pc.freq_lo, pa.Pc.freq_hi * pb.Pc.freq_hi)
              ())
          (Pc_set.pcs b))
      (Pc_set.pcs a)
  in
  Pc_set.make pairs
