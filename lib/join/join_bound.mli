(** Upper bounds for aggregates over natural joins of relations with
    missing rows described by predicate-constraints (paper §5).

    Each joined table carries a PC set for its missing partition. The
    single-table machinery yields per-table COUNT/SUM upper bounds; the
    Generalized Weighted Entropy inequality combines them:

    SUM(A) over the join ≤ SUM_ub(R_a) × Π_{i≠a} COUNT_ub(R_i)^cᵢ

    where c is a fractional edge cover with c_a = 1 (equation (**)).
    COUNT uses the plain AGM form Π COUNT_ub(R_i)^cᵢ.

    All entry points accept an optional {!Pc_budget.Budget.t}. One budget
    caps the whole join bound: every per-table degradation ladder and the
    edge-cover LP draw from the same pool, and starvation only loosens
    the result (per-table bounds step down their ladder; a starved cover
    LP falls back to the plain product bound). The [_budgeted] variants
    additionally report the worst per-table provenance. *)

type table = {
  name : string;  (** must match a hypergraph relation *)
  join_attrs : string list;
  pcs : Pc_core.Pc_set.t;  (** constraints on the table's missing rows *)
  where_ : Pc_predicate.Pred.t;
      (** per-table selection predicate, pushed below the join into the
          single-table bounds; [Pred.tt] when absent *)
}

type bounded = { value : float; provenance : Pc_core.Bounds.provenance }
(** A bound value tagged with the worst degradation rung that produced
    any of its per-table ingredients. *)

val table :
  ?where_:Pc_predicate.Pred.t ->
  name:string ->
  join_attrs:string list ->
  Pc_core.Pc_set.t ->
  table

val count_upper :
  ?opts:Pc_core.Bounds.opts -> ?budget:Pc_budget.Budget.t -> table -> float
(** COUNT upper bound of one table's missing partition. *)

val sum_upper :
  ?opts:Pc_core.Bounds.opts ->
  ?budget:Pc_budget.Budget.t ->
  table ->
  attr:string ->
  float
(** SUM(attr) upper bound of one table's missing partition (clamped below
    at 0, as required by the GWE weight non-negativity). *)

val count_bound :
  ?opts:Pc_core.Bounds.opts ->
  ?budget:Pc_budget.Budget.t ->
  ?pool:Pc_par.Pool.t ->
  table list ->
  float
(** GWE/AGM bound on |⋈ tables|. Per-table bounds run on [pool]
    (default {!Pc_par.Pool.default}); the combined value is identical to
    the sequential one. Under a shared [budget], {e which} table's
    ladder degrades first may vary between parallel runs — the atomic
    caps keep every outcome sound. *)

val count_bound_budgeted :
  ?opts:Pc_core.Bounds.opts ->
  ?budget:Pc_budget.Budget.t ->
  ?pool:Pc_par.Pool.t ->
  table list ->
  bounded

val sum_bound :
  ?opts:Pc_core.Bounds.opts ->
  ?budget:Pc_budget.Budget.t ->
  ?pool:Pc_par.Pool.t ->
  table list ->
  agg:string * string ->
  float
(** [sum_bound tables ~agg:(table_name, attr)] bounds SUM(attr) over the
    natural join, fixing the aggregate relation's cover coefficient to 1.
    Parallelism as in {!count_bound}. *)

val sum_bound_budgeted :
  ?opts:Pc_core.Bounds.opts ->
  ?budget:Pc_budget.Budget.t ->
  ?pool:Pc_par.Pool.t ->
  table list ->
  agg:string * string ->
  bounded

val naive_count_bound :
  ?opts:Pc_core.Bounds.opts -> ?budget:Pc_budget.Budget.t -> table list -> float
(** The Cartesian-product bound of §5.1 — kept as the baseline the GWE
    bound improves on. *)

val product_pc_set : Pc_core.Pc_set.t -> Pc_core.Pc_set.t -> Pc_core.Pc_set.t
(** §5.1's direct-product construction: pairwise conjunction of
    predicates, concatenated value constraints, multiplied frequency
    bounds. The result describes the join of the two missing partitions
    when attribute names are disjoint (enforced). *)
