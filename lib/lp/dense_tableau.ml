(* The dense bounded-variable tableau simplex exactly as it stood before
   the revised-simplex rework, minus warm starts, budgets, faults, and
   observability: a pure (problem -> outcome) oracle. Kept deliberately
   independent of Simplex's internals — the two share only the public
   problem/outcome types, so agreement between them is evidence, not
   tautology. *)

module S = Simplex

type vstat = Vbasic | Vlower | Vupper

let tol = 1e-7
let max_iters = 1_000_000

let canon_coeffs = function
  | ([] | [ _ ]) as c -> c
  | coeffs ->
      let sorted =
        List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) coeffs
      in
      let rec merge = function
        | (j1, v1) :: (j2, v2) :: rest when j1 = j2 ->
            merge ((j1, v1 +. v2) :: rest)
        | (j, v) :: rest -> if v = 0. then merge rest else (j, v) :: merge rest
        | [] -> []
      in
      merge sorted

let normalize (p : S.problem) =
  {
    p with
    S.objective = canon_coeffs p.S.objective;
    constraints =
      List.map
        (fun (c : S.constr) -> { c with S.coeffs = canon_coeffs c.S.coeffs })
        p.S.constraints;
  }

let validate (p : S.problem) =
  if p.S.n_vars < 0 then invalid_arg "Simplex: negative n_vars";
  let check_term (j, c) =
    if j < 0 || j >= p.S.n_vars then
      invalid_arg "Simplex: variable index out of range";
    if not (Float.is_finite c) then invalid_arg "Simplex: non-finite coefficient"
  in
  List.iter check_term p.S.objective;
  List.iter
    (fun (cn : S.constr) ->
      List.iter check_term cn.S.coeffs;
      if not (Float.is_finite cn.S.rhs) then
        invalid_arg "Simplex: non-finite rhs")
    p.S.constraints;
  List.iter
    (fun (j, l, h) ->
      if j < 0 || j >= p.S.n_vars then
        invalid_arg "Simplex: bound variable index out of range";
      if Float.is_nan l || Float.is_nan h then invalid_arg "Simplex: NaN bound")
    p.S.var_bounds

let bounds_arrays (p : S.problem) =
  let lo = Array.make p.S.n_vars 0. and hi = Array.make p.S.n_vars infinity in
  List.iter
    (fun (j, l, h) ->
      lo.(j) <- Float.max lo.(j) l;
      hi.(j) <- Float.min hi.(j) h)
    p.S.var_bounds;
  (lo, hi)

type tab = {
  m : int;
  n : int;
  nv : int;
  a : float array array;
  z : float array;
  lo : float array;
  hi : float array;
  basis : int array;
  xb : float array;
  status : vstat array;
  banned : bool array;
  mutable cols : int array;
}

let fixed t j = t.hi.(j) -. t.lo.(j) <= tol

let rebuild_cols t =
  let buf = Array.make (Stdlib.max 1 t.n) 0 in
  let k = ref 0 in
  for j = 0 to t.n - 1 do
    if (not t.banned.(j)) && not (fixed t j) then begin
      buf.(!k) <- j;
      incr k
    end
  done;
  t.cols <- Array.sub buf 0 !k

let nb_value t j =
  match t.status.(j) with
  | Vlower -> t.lo.(j)
  | Vupper -> t.hi.(j)
  | Vbasic -> assert false

let objective_of t c =
  let acc = ref 0. in
  for i = 0 to t.m - 1 do
    acc := !acc +. (c.(t.basis.(i)) *. t.xb.(i))
  done;
  for j = 0 to t.n - 1 do
    if c.(j) <> 0. then
      match t.status.(j) with
      | Vbasic -> ()
      | Vlower -> acc := !acc +. (c.(j) *. t.lo.(j))
      | Vupper -> acc := !acc +. (c.(j) *. t.hi.(j))
  done;
  !acc

let pivot_tab t ~row ~col =
  let arow = t.a.(row) in
  let piv = arow.(col) in
  let inv = 1. /. piv in
  for j = 0 to t.n - 1 do
    arow.(j) <- arow.(j) *. inv
  done;
  arow.(col) <- 1.;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let r = t.a.(i) in
      let factor = r.(col) in
      if factor <> 0. then begin
        for j = 0 to t.n - 1 do
          r.(j) <- r.(j) -. (factor *. arow.(j))
        done;
        r.(col) <- 0.
      end
    end
  done;
  let factor = t.z.(col) in
  if factor <> 0. then begin
    for j = 0 to t.n - 1 do
      t.z.(j) <- t.z.(j) -. (factor *. arow.(j))
    done;
    t.z.(col) <- 0.
  end

let set_z t c =
  for j = 0 to t.n - 1 do
    t.z.(j) <- -.c.(j)
  done;
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    let factor = t.z.(b) in
    if factor <> 0. then begin
      let r = t.a.(i) in
      for j = 0 to t.n - 1 do
        t.z.(j) <- t.z.(j) -. (factor *. r.(j))
      done;
      t.z.(b) <- 0.
    end
  done

let viol t j =
  match t.status.(j) with
  | Vlower -> -.t.z.(j)
  | Vupper -> t.z.(j)
  | Vbasic -> 0.

let entering t ~bland =
  let ncols = Array.length t.cols in
  if bland then begin
    let rec find k =
      if k >= ncols then None
      else
        let j = t.cols.(k) in
        if viol t j > tol then Some j else find (k + 1)
    in
    find 0
  end
  else begin
    let best = ref (-1) and best_v = ref tol in
    for k = 0 to ncols - 1 do
      let j = t.cols.(k) in
      let v = viol t j in
      if v > !best_v then begin
        best := j;
        best_v := v
      end
    done;
    if !best = -1 then None else Some !best
  end

exception Unbounded_exc
exception Stop_exc of S.stop_reason

let primal_step t ~col =
  let d =
    match t.status.(col) with
    | Vlower -> 1.
    | Vupper -> -1.
    | Vbasic -> assert false
  in
  let best_row = ref (-1) in
  let best_t = ref (t.hi.(col) -. t.lo.(col)) in
  let leave_at_upper = ref false in
  let consider i ratio at_upper =
    if
      ratio < !best_t -. tol
      || (Float.abs (ratio -. !best_t) <= tol
          && !best_row >= 0
          && t.basis.(i) < t.basis.(!best_row))
    then begin
      best_row := i;
      best_t := ratio;
      leave_at_upper := at_upper
    end
  in
  for i = 0 to t.m - 1 do
    let rate = -.(d *. t.a.(i).(col)) in
    if rate > tol then begin
      let head = t.hi.(t.basis.(i)) -. t.xb.(i) in
      if Float.is_finite head then consider i (Float.max 0. (head /. rate)) true
    end
    else if rate < -.tol then begin
      let head = t.xb.(i) -. t.lo.(t.basis.(i)) in
      consider i (Float.max 0. (head /. -.rate)) false
    end
  done;
  if not (Float.is_finite !best_t) then raise Unbounded_exc;
  let step = d *. !best_t in
  if !best_row = -1 then begin
    for i = 0 to t.m - 1 do
      t.xb.(i) <- t.xb.(i) -. (t.a.(i).(col) *. step)
    done;
    t.status.(col) <-
      (match t.status.(col) with
      | Vlower -> Vupper
      | Vupper -> Vlower
      | Vbasic -> assert false)
  end
  else begin
    let row = !best_row in
    let enter_val = nb_value t col +. step in
    for i = 0 to t.m - 1 do
      t.xb.(i) <- t.xb.(i) -. (t.a.(i).(col) *. step)
    done;
    let leaving = t.basis.(row) in
    t.status.(leaving) <- (if !leave_at_upper then Vupper else Vlower);
    t.status.(col) <- Vbasic;
    t.basis.(row) <- col;
    t.xb.(row) <- enter_val;
    pivot_tab t ~row ~col
  end

let optimize ~iters ~c t =
  let stall = ref 0 in
  let last_obj = ref (objective_of t c) in
  let continue_ = ref true in
  while !continue_ do
    if !iters > max_iters then raise (Stop_exc S.Iteration_limit);
    let bland = !stall > 2 * (t.m + t.n) in
    match entering t ~bland with
    | None -> continue_ := false
    | Some col ->
        primal_step t ~col;
        incr iters;
        let obj = objective_of t c in
        if obj > !last_obj +. tol then begin
          stall := 0;
          last_obj := obj
        end
        else incr stall
  done

let extract_solution t ~sign ~c2 =
  let values = Array.make t.nv 0. in
  for j = 0 to t.nv - 1 do
    match t.status.(j) with
    | Vlower -> values.(j) <- t.lo.(j)
    | Vupper -> values.(j) <- t.hi.(j)
    | Vbasic -> ()
  done;
  for i = 0 to t.m - 1 do
    if t.basis.(i) < t.nv then values.(t.basis.(i)) <- t.xb.(i)
  done;
  for j = 0 to t.nv - 1 do
    let v = values.(j) in
    let v = if Float.abs (v -. t.lo.(j)) <= tol then t.lo.(j) else v in
    let v =
      if Float.is_finite t.hi.(j) && Float.abs (v -. t.hi.(j)) <= tol then
        t.hi.(j)
      else v
    in
    values.(j) <- v
  done;
  { S.objective_value = sign *. objective_of t c2; values }

let cold_solve (p : S.problem) =
  let cons = Array.of_list p.S.constraints in
  let m = Array.length cons in
  let nv = p.S.n_vars in
  let n_slack =
    Array.fold_left
      (fun acc (c : S.constr) ->
        match c.S.op with S.Le | S.Ge -> acc + 1 | S.Eq -> acc)
      0 cons
  in
  let n = nv + n_slack + m in
  let rows = Array.init m (fun _ -> Array.make n 0.) in
  let rhs = Array.make m 0. in
  let slack_col = Array.make m (-1) in
  let art_col = Array.make m (-1) in
  let lo = Array.make n 0. and hi = Array.make n infinity in
  let vlo, vhi = bounds_arrays p in
  Array.blit vlo 0 lo 0 nv;
  Array.blit vhi 0 hi 0 nv;
  let next_slack = ref nv in
  let art_start = nv + n_slack in
  Array.iteri
    (fun i (c : S.constr) ->
      List.iter (fun (j, v) -> rows.(i).(j) <- rows.(i).(j) +. v) c.S.coeffs;
      rhs.(i) <- c.S.rhs;
      (match c.S.op with
      | S.Le ->
          rows.(i).(!next_slack) <- 1.;
          slack_col.(i) <- !next_slack;
          incr next_slack
      | S.Ge ->
          rows.(i).(!next_slack) <- -1.;
          slack_col.(i) <- !next_slack;
          incr next_slack
      | S.Eq -> ());
      art_col.(i) <- art_start + i)
    cons;
  let domain_empty = ref false in
  for j = 0 to nv - 1 do
    if lo.(j) > hi.(j) then domain_empty := true
  done;
  if !domain_empty then (S.Infeasible, 0)
  else begin
    let art_neg = Array.make m false in
    let basis = Array.make m (-1) in
    let status = Array.make n Vlower in
    let xb = Array.make m 0. in
    for i = 0 to m - 1 do
      let resid = ref rhs.(i) in
      for j = 0 to nv - 1 do
        let aij = rows.(i).(j) in
        if aij <> 0. then resid := !resid -. (aij *. lo.(j))
      done;
      let r = !resid in
      let art_basic neg v =
        art_neg.(i) <- neg;
        basis.(i) <- art_col.(i);
        xb.(i) <- v
      in
      match cons.(i).S.op with
      | S.Le ->
          if r >= 0. then begin
            basis.(i) <- slack_col.(i);
            xb.(i) <- r
          end
          else art_basic true (-.r)
      | S.Ge ->
          if r <= 0. then begin
            basis.(i) <- slack_col.(i);
            xb.(i) <- -.r
          end
          else art_basic false r
      | S.Eq -> art_basic (r < 0.) (Float.abs r)
    done;
    for i = 0 to m - 1 do
      rows.(i).(art_col.(i)) <- (if art_neg.(i) then -1. else 1.)
    done;
    let a = rows in
    for i = 0 to m - 1 do
      if a.(i).(basis.(i)) < 0. then
        for j = 0 to n - 1 do
          a.(i).(j) <- -.a.(i).(j)
        done
    done;
    for i = 0 to m - 1 do
      status.(basis.(i)) <- Vbasic
    done;
    let banned = Array.make n false in
    for i = 0 to m - 1 do
      banned.(art_col.(i)) <- true
    done;
    let t =
      { m; n; nv; a; z = Array.make n 0.; lo; hi; basis; xb; status; banned;
        cols = [||] }
    in
    rebuild_cols t;
    let iters = ref 0 in
    let stopped reason ~best_objective =
      S.Stopped { S.reason; best_objective; iterations = !iters }
    in
    let art_sum () =
      let s = ref 0. in
      for i = 0 to m - 1 do
        if basis.(i) >= art_start then s := !s +. Float.abs xb.(i)
      done;
      !s
    in
    let need_p1 = art_sum () > tol in
    let phase1_failed = ref false in
    let phase1_stopped = ref None in
    if need_p1 then begin
      let c1 = Array.make n 0. in
      for i = 0 to m - 1 do
        c1.(art_col.(i)) <- -1.
      done;
      set_z t c1;
      try optimize ~iters ~c:c1 t with
      | Unbounded_exc -> phase1_failed := true
      | Stop_exc reason -> phase1_stopped := Some reason
    end;
    if !phase1_stopped = None && not !phase1_failed then begin
      if art_sum () > tol *. 10. then phase1_failed := true
      else begin
        for i = 0 to m - 1 do
          if basis.(i) >= art_start then begin
            let found = ref (-1) in
            for j = 0 to art_start - 1 do
              if !found = -1 && (not (fixed t j)) && Float.abs t.a.(i).(j) > tol
              then found := j
            done;
            if !found >= 0 then begin
              let col = !found in
              let v = nb_value t col in
              status.(basis.(i)) <- Vlower;
              status.(col) <- Vbasic;
              basis.(i) <- col;
              xb.(i) <- v;
              pivot_tab t ~row:i ~col
            end
          end
        done;
        for i = 0 to m - 1 do
          t.lo.(art_col.(i)) <- 0.;
          t.hi.(art_col.(i)) <- 0.
        done
      end
    end;
    let outcome =
      match !phase1_stopped with
      | Some reason -> stopped reason ~best_objective:None
      | None ->
          if !phase1_failed then S.Infeasible
          else begin
            let sign = if p.S.maximize then 1. else -1. in
            let c2 = Array.make n 0. in
            List.iter
              (fun (j, v) -> c2.(j) <- c2.(j) +. (sign *. v))
              p.S.objective;
            set_z t c2;
            match optimize ~iters ~c:c2 t with
            | exception Unbounded_exc -> S.Unbounded
            | exception Stop_exc reason ->
                stopped reason ~best_objective:(Some (sign *. objective_of t c2))
            | () -> (
                let sol = extract_solution t ~sign ~c2 in
                match S.check_solution p sol with
                | Ok () -> S.Optimal sol
                | Error msg -> stopped (S.Numeric msg) ~best_objective:None)
          end
    in
    (outcome, !iters)
  end

let solve_stats p =
  validate p;
  cold_solve (normalize p)

let solve p = fst (solve_stats p)
