(** The pre-revised dense-tableau simplex, retained as a reference oracle.

    This is the bounded-variable two-phase primal simplex that
    {!Simplex} used before it was reworked into a sparse revised
    simplex: a dense [float array array] tableau holding [B⁻¹A], full
    Gauss–Jordan pivots (O(mn) each), Dantzig pricing with a Bland
    fallback on stall. Cold solves only — no warm starts, no budgets,
    no fault injection, and {e no registered instruments}, so linking it
    does not change the [--metrics] key set.

    It exists for two consumers:

    - the qcheck oracle in [test/test_lp.ml], which pits the revised
      simplex against this implementation on random bounded LPs — two
      independent codebases agreeing on optima is the cross-check the
      rewrite is gated on; and
    - [bench --baseline]'s Fig. 8 disjoint-partition scaling micro,
      which records dense-vs-revised wall time and pivot counts.

    Answers use {!Simplex}'s problem/outcome types so callers compare
    outcomes directly. The same post-solve self-check semantics apply:
    an optimal answer that fails residual checks degrades to
    [Stopped (Numeric _)]. *)

val solve : Simplex.problem -> Simplex.outcome
(** Cold two-phase dense-tableau solve. Raises [Invalid_argument] on
    malformed input, exactly as {!Simplex.solve} does. *)

val solve_stats : Simplex.problem -> Simplex.outcome * int
(** Like {!solve}, additionally returning the pivot count (phase 1 +
    phase 2, bound flips included) — the denominator of the bench's
    pivot-weighted time comparison. *)
