module B = Pc_budget.Budget
module Counter = Pc_obs.Registry.Counter

(* Registered once at load time; solve flushes its local pivot tallies
   with [Counter.add] so the per-pivot loop stays free of atomic ops. *)
let c_solves = Counter.make "lp.solves"
let c_pivots = Counter.make "lp.pivots"
let c_phase1_pivots = Counter.make "lp.phase1_pivots"
let c_bland = Counter.make "lp.bland_activations"
let c_warm = Counter.make "lp.warm_starts"
let c_warm_fb = Counter.make "lp.warm_fallbacks"
let c_dual_pivots = Counter.make "lp.dual_pivots"
let h_solve = Pc_obs.Registry.Histogram.make "lp.solve.ns"

type relop = Le | Ge | Eq

type constr = { coeffs : (int * float) list; op : relop; rhs : float }

type problem = {
  n_vars : int;
  maximize : bool;
  objective : (int * float) list;
  constraints : constr list;
  var_bounds : (int * float * float) list;
}

type solution = { objective_value : float; values : float array }

type stop_reason = Iteration_limit | Deadline | Numeric of string

type stop = {
  reason : stop_reason;
  best_objective : float option;
  iterations : int;
}

type outcome = Optimal of solution | Infeasible | Unbounded | Stopped of stop

(* The column layout (structurals, one slack per inequality row, one
   artificial per row) is fixed by the problem shape alone, so a snapshot
   stays valid when only the variable bounds change. The artificial signs
   are the one bound-dependent artifact of the originating solve, recorded
   so the restored basis matrix matches the parent's exactly. *)
type snapshot = {
  s_nv : int;
  s_m : int;
  s_basis : int array;  (* basic column of each row *)
  s_at_upper : bool array;  (* per column: nonbasic at its upper bound *)
  s_art_neg : bool array;  (* per row: artificial column carries -1 *)
}

let c_le coeffs rhs = { coeffs; op = Le; rhs }
let c_ge coeffs rhs = { coeffs; op = Ge; rhs }
let c_eq coeffs rhs = { coeffs; op = Eq; rhs }

let tol = 1e-7
let max_iters = 1_000_000

(* Canonicalize a sparse row: sort by index, sum duplicates once, drop
   exact zeros — so [(0,1.); (0,1.)] means 2 x0 regardless of which layer
   built the list. *)
let canon_coeffs = function
  | ([] | [ _ ]) as c -> c
  | coeffs ->
      let sorted =
        List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) coeffs
      in
      let rec merge = function
        | (j1, v1) :: (j2, v2) :: rest when j1 = j2 ->
            merge ((j1, v1 +. v2) :: rest)
        | (j, v) :: rest -> if v = 0. then merge rest else (j, v) :: merge rest
        | [] -> []
      in
      merge sorted

let normalize p =
  {
    p with
    objective = canon_coeffs p.objective;
    constraints =
      List.map (fun c -> { c with coeffs = canon_coeffs c.coeffs }) p.constraints;
  }

let validate p =
  if p.n_vars < 0 then invalid_arg "Simplex: negative n_vars";
  let check_term (j, c) =
    if j < 0 || j >= p.n_vars then invalid_arg "Simplex: variable index out of range";
    if not (Float.is_finite c) then invalid_arg "Simplex: non-finite coefficient"
  in
  List.iter check_term p.objective;
  List.iter
    (fun cn ->
      List.iter check_term cn.coeffs;
      if not (Float.is_finite cn.rhs) then invalid_arg "Simplex: non-finite rhs")
    p.constraints;
  List.iter
    (fun (j, l, h) ->
      if j < 0 || j >= p.n_vars then
        invalid_arg "Simplex: bound variable index out of range";
      if Float.is_nan l || Float.is_nan h then invalid_arg "Simplex: NaN bound")
    p.var_bounds

(* Dense [lo, hi] per structural variable: the problem's sparse boxes (or
   the caller's override) intersected with the implicit x >= 0 domain. *)
let bounds_arrays ?bounds p =
  match bounds with
  | Some (l, h) ->
      if Array.length l <> p.n_vars || Array.length h <> p.n_vars then
        invalid_arg "Simplex: bounds arrays must have length n_vars";
      (Array.map (Float.max 0.) l, Array.copy h)
  | None ->
      let lo = Array.make p.n_vars 0. and hi = Array.make p.n_vars infinity in
      List.iter
        (fun (j, l, h) ->
          lo.(j) <- Float.max lo.(j) l;
          hi.(j) <- Float.min hi.(j) h)
        p.var_bounds;
      (lo, hi)

(* ---- Mutable tableau state for one solve. ---- *)

type vstat = Vbasic | Vlower | Vupper

type tab = {
  m : int;  (* constraint rows *)
  n : int;  (* total columns: structural + slack + artificial *)
  nv : int;  (* structural columns *)
  a : float array array;  (* m rows of length n: B^-1 A, no rhs column *)
  z : float array;  (* reduced costs c_B B^-1 A_j - c_j, length n *)
  lo : float array;  (* per-column lower bounds, length n *)
  hi : float array;  (* per-column upper bounds, length n *)
  basis : int array;  (* basic column of each row *)
  xb : float array;  (* value of each row's basic variable *)
  status : vstat array;  (* length n *)
  banned : bool array;  (* columns excluded from entering (artificials) *)
  mutable cols : int array;  (* candidate entering columns, ascending *)
}

(* A column pinned to a single point can never move, so it can never be an
   entering candidate — in the primal (no improving step) or in the dual
   (no admissible direction). Excluding it is sound both ways. *)
let fixed t j = t.hi.(j) -. t.lo.(j) <= tol

(* Candidate entering columns: everything not banned and not fixed. Kept
   as a compact ascending array so Dantzig pricing never rescans dead
   artificial columns (they are both banned and, after phase 1, fixed). *)
let rebuild_cols t =
  let buf = Array.make (Stdlib.max 1 t.n) 0 in
  let k = ref 0 in
  for j = 0 to t.n - 1 do
    if (not t.banned.(j)) && not (fixed t j) then begin
      buf.(!k) <- j;
      incr k
    end
  done;
  t.cols <- Array.sub buf 0 !k

let nb_value t j =
  match t.status.(j) with
  | Vlower -> t.lo.(j)
  | Vupper -> t.hi.(j)
  | Vbasic -> assert false

(* Objective of the current iterate, recomputed in O(m + n); the tableau
   carries no objective-value cell (bound flips would invalidate it). *)
let objective_of t c =
  let acc = ref 0. in
  for i = 0 to t.m - 1 do
    acc := !acc +. (c.(t.basis.(i)) *. t.xb.(i))
  done;
  for j = 0 to t.n - 1 do
    if c.(j) <> 0. then
      match t.status.(j) with
      | Vbasic -> ()
      | Vlower -> acc := !acc +. (c.(j) *. t.lo.(j))
      | Vupper -> acc := !acc +. (c.(j) *. t.hi.(j))
  done;
  !acc

let pivot_tab t ~row ~col =
  let arow = t.a.(row) in
  let piv = arow.(col) in
  let inv = 1. /. piv in
  for j = 0 to t.n - 1 do
    arow.(j) <- arow.(j) *. inv
  done;
  arow.(col) <- 1.;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let r = t.a.(i) in
      let factor = r.(col) in
      if factor <> 0. then begin
        for j = 0 to t.n - 1 do
          r.(j) <- r.(j) -. (factor *. arow.(j))
        done;
        r.(col) <- 0.
      end
    end
  done;
  let factor = t.z.(col) in
  if factor <> 0. then begin
    for j = 0 to t.n - 1 do
      t.z.(j) <- t.z.(j) -. (factor *. arow.(j))
    done;
    t.z.(col) <- 0.
  end

(* Reduced-cost row for objective [c]: z_j = -c_j, then eliminate the
   basic columns so z is expressed over the current basis. *)
let set_z t c =
  for j = 0 to t.n - 1 do
    t.z.(j) <- -.c.(j)
  done;
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    let factor = t.z.(b) in
    if factor <> 0. then begin
      let r = t.a.(i) in
      for j = 0 to t.n - 1 do
        t.z.(j) <- t.z.(j) -. (factor *. r.(j))
      done;
      t.z.(b) <- 0.
    end
  done

(* Entering column for the (maximizing) primal: a nonbasic at its lower
   bound improves by increasing when z_j < -tol; one at its upper bound
   improves by decreasing when z_j > tol. [cols] is ascending, so the
   first violation is Bland's choice. *)
let viol t j =
  match t.status.(j) with
  | Vlower -> -.t.z.(j)
  | Vupper -> t.z.(j)
  | Vbasic -> 0.

let entering t ~bland =
  let ncols = Array.length t.cols in
  if bland then begin
    let rec find k =
      if k >= ncols then None
      else
        let j = t.cols.(k) in
        if viol t j > tol then Some j else find (k + 1)
    in
    find 0
  end
  else begin
    let best = ref (-1) and best_v = ref tol in
    for k = 0 to ncols - 1 do
      let j = t.cols.(k) in
      let v = viol t j in
      if v > !best_v then begin
        best := j;
        best_v := v
      end
    done;
    if !best = -1 then None else Some !best
  end

exception Unbounded_exc
exception Stop_exc of stop_reason

(* One bounded-variable primal step on entering column [col]: the step
   length is limited by the entering variable's own opposite bound (a pure
   bound flip, no basis change) or by the first basic variable to hit one
   of its bounds (a regular exchange). Ties between rows break toward the
   smallest basic index, which combines well with Bland's rule. *)
let primal_step t ~col =
  let d =
    match t.status.(col) with
    | Vlower -> 1.
    | Vupper -> -1.
    | Vbasic -> assert false
  in
  let best_row = ref (-1) in
  let best_t = ref (t.hi.(col) -. t.lo.(col)) in
  let leave_at_upper = ref false in
  let consider i ratio at_upper =
    if
      ratio < !best_t -. tol
      || (Float.abs (ratio -. !best_t) <= tol
          && !best_row >= 0
          && t.basis.(i) < t.basis.(!best_row))
    then begin
      best_row := i;
      best_t := ratio;
      leave_at_upper := at_upper
    end
  in
  for i = 0 to t.m - 1 do
    let rate = -.(d *. t.a.(i).(col)) in
    if rate > tol then begin
      let head = t.hi.(t.basis.(i)) -. t.xb.(i) in
      if Float.is_finite head then consider i (Float.max 0. (head /. rate)) true
    end
    else if rate < -.tol then begin
      let head = t.xb.(i) -. t.lo.(t.basis.(i)) in
      consider i (Float.max 0. (head /. -.rate)) false
    end
  done;
  if not (Float.is_finite !best_t) then raise Unbounded_exc;
  let step = d *. !best_t in
  if !best_row = -1 then begin
    for i = 0 to t.m - 1 do
      t.xb.(i) <- t.xb.(i) -. (t.a.(i).(col) *. step)
    done;
    t.status.(col) <-
      (match t.status.(col) with
      | Vlower -> Vupper
      | Vupper -> Vlower
      | Vbasic -> assert false)
  end
  else begin
    let row = !best_row in
    let enter_val = nb_value t col +. step in
    for i = 0 to t.m - 1 do
      t.xb.(i) <- t.xb.(i) -. (t.a.(i).(col) *. step)
    done;
    let leaving = t.basis.(row) in
    t.status.(leaving) <- (if !leave_at_upper then Vupper else Vlower);
    t.status.(col) <- Vbasic;
    t.basis.(row) <- col;
    t.xb.(row) <- enter_val;
    pivot_tab t ~row ~col
  end

(* [iters] is shared across phases so a stop reports the solve's total
   pivot count. Deadline checks are amortized: every 64 pivots. *)
let charge ?budget ~iters () =
  if !iters > max_iters then raise (Stop_exc Iteration_limit);
  match budget with
  | None -> ()
  | Some b ->
      if not (B.take_iter b) then raise (Stop_exc Iteration_limit);
      if !iters land 63 = 0 && B.out_of_time b then raise (Stop_exc Deadline)

let optimize ?budget ~iters ~bland_acts ~c t =
  let stall = ref 0 in
  let last_obj = ref (objective_of t c) in
  let was_bland = ref false in
  let continue_ = ref true in
  while !continue_ do
    charge ?budget ~iters ();
    let bland = !stall > 2 * (t.m + t.n) in
    if bland <> !was_bland then begin
      if bland then incr bland_acts;
      was_bland := bland
    end;
    match entering t ~bland with
    | None -> continue_ := false
    | Some col ->
        primal_step t ~col;
        incr iters;
        let obj = objective_of t c in
        if obj > !last_obj +. tol then begin
          stall := 0;
          last_obj := obj
        end
        else incr stall
  done

(* Post-solve self-check: residual feasibility of every constraint, each
   variable within its box, and objective consistency, with tolerances
   scaled by row magnitude — catches tableau drift before a wrong
   "optimal" answer escapes into a bound. *)
let check_solution_arrays ~vlo ~vhi p (sol : solution) =
  let eps = 1e-6 in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  Array.iteri
    (fun j v ->
      if not (Float.is_finite v) then
        fail (Printf.sprintf "variable %d is non-finite" j)
      else begin
        let slack = eps *. Float.max 1. (Float.abs v) in
        if v < vlo.(j) -. slack then
          fail (Printf.sprintf "variable %d below lower bound (%g < %g)" j v vlo.(j))
        else if v > vhi.(j) +. slack then
          fail (Printf.sprintf "variable %d above upper bound (%g > %g)" j v vhi.(j))
      end)
    sol.values;
  List.iteri
    (fun i (c : constr) ->
      let lhs, mag =
        List.fold_left
          (fun (acc, mag) (j, v) ->
            let term = v *. sol.values.(j) in
            (acc +. term, Float.max mag (Float.abs term)))
          (0., Float.abs c.rhs) c.coeffs
      in
      let slack = Float.max 1. mag *. eps in
      let ok =
        match c.op with
        | Le -> lhs <= c.rhs +. slack
        | Ge -> lhs >= c.rhs -. slack
        | Eq -> Float.abs (lhs -. c.rhs) <= slack
      in
      if not ok then
        fail
          (Printf.sprintf "constraint %d residual: lhs %g vs rhs %g" i lhs c.rhs))
    p.constraints;
  let recomputed =
    List.fold_left (fun acc (j, v) -> acc +. (v *. sol.values.(j))) 0. p.objective
  in
  let mag = Float.max 1. (Float.abs recomputed) in
  if Float.abs (recomputed -. sol.objective_value) > 1e-5 *. mag then
    fail
      (Printf.sprintf "objective drift: reported %g, recomputed %g"
         sol.objective_value recomputed);
  match !err with None -> Ok () | Some msg -> Error msg

let check_solution p sol =
  let vlo, vhi = bounds_arrays p in
  check_solution_arrays ~vlo ~vhi p sol

(* ---- Shared problem arrays. The column layout is a function of the
   problem shape alone: structurals [0, nv), one slack per inequality row,
   then one artificial per row. Artificial matrix entries are left at 0
   here; the caller stamps their signs (cold: from phase-1 residuals;
   warm: from the snapshot). ---- *)

type build = {
  b_m : int;
  b_n : int;
  b_art_start : int;
  b_rows : float array array;  (* m x n raw A *)
  b_rhs : float array;
  b_ops : relop array;
  b_slack_col : int array;  (* -1 for Eq rows *)
  b_art_col : int array;
  b_lo : float array;  (* length n *)
  b_hi : float array;
}

let build ?bounds p =
  let cons = Array.of_list p.constraints in
  let m = Array.length cons in
  let nv = p.n_vars in
  let n_slack =
    Array.fold_left
      (fun acc c -> match c.op with Le | Ge -> acc + 1 | Eq -> acc)
      0 cons
  in
  let n = nv + n_slack + m in
  let rows = Array.init m (fun _ -> Array.make n 0.) in
  let rhs = Array.make m 0. in
  let ops = Array.map (fun c -> c.op) cons in
  let slack_col = Array.make m (-1) in
  let art_col = Array.make m (-1) in
  let lo = Array.make n 0. and hi = Array.make n infinity in
  let vlo, vhi = bounds_arrays ?bounds p in
  Array.blit vlo 0 lo 0 nv;
  Array.blit vhi 0 hi 0 nv;
  let next_slack = ref nv in
  let art_start = nv + n_slack in
  Array.iteri
    (fun i c ->
      List.iter (fun (j, v) -> rows.(i).(j) <- rows.(i).(j) +. v) c.coeffs;
      rhs.(i) <- c.rhs;
      (match c.op with
      | Le ->
          rows.(i).(!next_slack) <- 1.;
          slack_col.(i) <- !next_slack;
          incr next_slack
      | Ge ->
          rows.(i).(!next_slack) <- -1.;
          slack_col.(i) <- !next_slack;
          incr next_slack
      | Eq -> ());
      art_col.(i) <- art_start + i)
    cons;
  {
    b_m = m;
    b_n = n;
    b_art_start = art_start;
    b_rows = rows;
    b_rhs = rhs;
    b_ops = ops;
    b_slack_col = slack_col;
    b_art_col = art_col;
    b_lo = lo;
    b_hi = hi;
  }

let domain_empty bld nv =
  let empty = ref false in
  for j = 0 to nv - 1 do
    if bld.b_lo.(j) > bld.b_hi.(j) then empty := true
  done;
  !empty

let snap_of t ~art_neg =
  {
    s_nv = t.nv;
    s_m = t.m;
    s_basis = Array.copy t.basis;
    s_at_upper = Array.init t.n (fun j -> t.status.(j) = Vupper);
    s_art_neg = Array.copy art_neg;
  }

let extract_solution t ~sign ~c2 =
  let values = Array.make t.nv 0. in
  for j = 0 to t.nv - 1 do
    match t.status.(j) with
    | Vlower -> values.(j) <- t.lo.(j)
    | Vupper -> values.(j) <- t.hi.(j)
    | Vbasic -> ()
  done;
  for i = 0 to t.m - 1 do
    if t.basis.(i) < t.nv then values.(t.basis.(i)) <- t.xb.(i)
  done;
  (* snap values resting within tolerance of a bound onto it *)
  for j = 0 to t.nv - 1 do
    let v = values.(j) in
    let v = if Float.abs (v -. t.lo.(j)) <= tol then t.lo.(j) else v in
    let v =
      if Float.is_finite t.hi.(j) && Float.abs (v -. t.hi.(j)) <= tol then
        t.hi.(j)
      else v
    in
    values.(j) <- v
  done;
  { objective_value = sign *. objective_of t c2; values }

(* ---- Cold two-phase solve. [p] must already be validated/normalized.
   Returns the outcome and, on Optimal, a basis snapshot. ---- *)
let cold_solve ?budget ?bounds p =
  let bld = build ?bounds p in
  let m = bld.b_m and n = bld.b_n and nv = p.n_vars in
  if domain_empty bld nv then (Infeasible, None)
  else begin
    let art_start = bld.b_art_start in
    let art_neg = Array.make m false in
    let basis = Array.make m (-1) in
    let status = Array.make n Vlower in
    let xb = Array.make m 0. in
    (* Initial basis: structurals at their lower bounds; each row gets its
       slack when the residual sign permits, otherwise a residual-signed
       artificial. No rhs-sign normalization pass is needed. *)
    for i = 0 to m - 1 do
      let resid = ref bld.b_rhs.(i) in
      for j = 0 to nv - 1 do
        let aij = bld.b_rows.(i).(j) in
        if aij <> 0. then resid := !resid -. (aij *. bld.b_lo.(j))
      done;
      let r = !resid in
      let art_basic neg v =
        art_neg.(i) <- neg;
        basis.(i) <- bld.b_art_col.(i);
        xb.(i) <- v
      in
      match bld.b_ops.(i) with
      | Le ->
          if r >= 0. then begin
            basis.(i) <- bld.b_slack_col.(i);
            xb.(i) <- r
          end
          else art_basic true (-.r)
      | Ge ->
          if r <= 0. then begin
            basis.(i) <- bld.b_slack_col.(i);
            xb.(i) <- -.r
          end
          else art_basic false r
      | Eq -> art_basic (r < 0.) (Float.abs r)
    done;
    for i = 0 to m - 1 do
      bld.b_rows.(i).(bld.b_art_col.(i)) <- (if art_neg.(i) then -1. else 1.)
    done;
    let a = Array.init m (fun i -> Array.copy bld.b_rows.(i)) in
    (* canonicalize: basic coefficient +1 in its own row (this IS B^-1 for
       the initial diagonal basis) *)
    for i = 0 to m - 1 do
      if a.(i).(basis.(i)) < 0. then
        for j = 0 to n - 1 do
          a.(i).(j) <- -.a.(i).(j)
        done
    done;
    for i = 0 to m - 1 do
      status.(basis.(i)) <- Vbasic
    done;
    (* Artificials may leave the basis but never re-enter: once phase 1
       drives one to zero it stays there, and if the problem is feasible a
       point with every artificial at zero exists, so the restriction
       cannot produce a false Infeasible. *)
    let banned = Array.make n false in
    for i = 0 to m - 1 do
      banned.(bld.b_art_col.(i)) <- true
    done;
    let t =
      {
        m;
        n;
        nv;
        a;
        z = Array.make n 0.;
        lo = bld.b_lo;
        hi = bld.b_hi;
        basis;
        xb;
        status;
        banned;
        cols = [||];
      }
    in
    rebuild_cols t;
    let iters = ref 0 in
    let bland_acts = ref 0 in
    let stopped reason ~best_objective =
      Stopped { reason; best_objective; iterations = !iters }
    in
    let art_sum () =
      let s = ref 0. in
      for i = 0 to m - 1 do
        if basis.(i) >= art_start then s := !s +. Float.abs xb.(i)
      done;
      !s
    in
    let need_p1 = art_sum () > tol in
    let phase1_failed = ref false in
    let phase1_stopped = ref None in
    if need_p1 then begin
      let c1 = Array.make n 0. in
      for i = 0 to m - 1 do
        c1.(bld.b_art_col.(i)) <- -1.
      done;
      set_z t c1;
      try optimize ?budget ~iters ~bland_acts ~c:c1 t with
      | Unbounded_exc ->
          (* Invariant: the phase-1 objective -(Σ artificials) is bounded
             above by 0, so an unbounded ray is impossible by construction.
             If float drift ever manufactures one, no feasible basis was
             certified either way — degrade to Infeasible (the caller-safe
             answer for "phase 1 did not produce a feasible basis") instead
             of killing the caller. *)
          phase1_failed := true
      | Stop_exc reason -> phase1_stopped := Some reason
    end;
    if !phase1_stopped = None && not !phase1_failed then begin
      if art_sum () > tol *. 10. then phase1_failed := true
      else begin
        (* Drive out artificials still basic at zero with a degenerate
           exchange (nothing moves; the entering variable becomes basic at
           its current bound value), then pin every artificial to [0, 0] —
           phase 1 certified a feasible point with all of them at zero. *)
        for i = 0 to m - 1 do
          if basis.(i) >= art_start then begin
            let found = ref (-1) in
            for j = 0 to art_start - 1 do
              if !found = -1 && (not (fixed t j)) && Float.abs t.a.(i).(j) > tol
              then found := j
            done;
            if !found >= 0 then begin
              let col = !found in
              let v = nb_value t col in
              status.(basis.(i)) <- Vlower;
              status.(col) <- Vbasic;
              basis.(i) <- col;
              xb.(i) <- v;
              pivot_tab t ~row:i ~col
            end
            (* else: redundant row, harmless to keep with artificial at 0 *)
          end
        done;
        for i = 0 to m - 1 do
          let aj = bld.b_art_col.(i) in
          t.lo.(aj) <- 0.;
          t.hi.(aj) <- 0.
        done
      end
    end;
    let phase1_iters = !iters in
    let result =
      match !phase1_stopped with
      | Some reason -> (stopped reason ~best_objective:None, None)
      | None ->
          if !phase1_failed then (Infeasible, None)
          else begin
            (* ---- Phase 2: real objective, as maximization. ---- *)
            let sign = if p.maximize then 1. else -1. in
            let c2 = Array.make n 0. in
            List.iter (fun (j, v) -> c2.(j) <- c2.(j) +. (sign *. v)) p.objective;
            set_z t c2;
            match optimize ?budget ~iters ~bland_acts ~c:c2 t with
            | exception Unbounded_exc -> (Unbounded, None)
            | exception Stop_exc reason ->
                (* The tableau is primal-feasible throughout phase 2, so
                   the current objective is the value of a genuine feasible
                   point (a primal bound), reported as the best-so-far. *)
                ( stopped reason
                    ~best_objective:(Some (sign *. objective_of t c2)),
                  None )
            | () -> (
                let sol = extract_solution t ~sign ~c2 in
                let vlo = Array.sub t.lo 0 nv and vhi = Array.sub t.hi 0 nv in
                match check_solution_arrays ~vlo ~vhi p sol with
                | Ok () -> (Optimal sol, Some (snap_of t ~art_neg))
                | Error msg ->
                    (* A drifted tableau's answer must not escape into a
                       hard bound; report distrust and let the caller
                       degrade. *)
                    (stopped (Numeric msg) ~best_objective:None, None))
          end
    in
    Counter.incr c_solves;
    Counter.add c_pivots !iters;
    Counter.add c_phase1_pivots phase1_iters;
    Counter.add c_bland !bland_acts;
    result
  end

(* ---- Warm re-solve from a basis snapshot under new bounds. ---- *)

exception Fallback of string

(* Past this many dual pivots something is off (cycling on a degenerate
   basis, or a bound change far too large for a warm start to pay off) —
   hand the problem to the cold path rather than grind on. *)
let warm_cap m n = Stdlib.max 64 (4 * (m + n))

let warm_solve ?budget ~snapshot ~bounds p =
  let bld = build ~bounds p in
  let m = bld.b_m and n = bld.b_n and nv = p.n_vars in
  if snapshot.s_nv <> nv || snapshot.s_m <> m
     || Array.length snapshot.s_at_upper <> n
  then None (* shape mismatch: the snapshot is from another problem *)
  else if domain_empty bld nv then Some (Infeasible, None)
  else begin
    let iters = ref 0 in
    let dual_pivs = ref 0 in
    let bland_acts = ref 0 in
    let flush () =
      Counter.add c_pivots !iters;
      Counter.add c_dual_pivots !dual_pivs;
      Counter.add c_bland !bland_acts
    in
    try
      for i = 0 to m - 1 do
        bld.b_rows.(i).(bld.b_art_col.(i)) <-
          (if snapshot.s_art_neg.(i) then -1. else 1.);
        (* artificials were pinned by the originating solve's phase 1 *)
        bld.b_lo.(bld.b_art_col.(i)) <- 0.;
        bld.b_hi.(bld.b_art_col.(i)) <- 0.
      done;
      let a = Array.init m (fun i -> Array.copy bld.b_rows.(i)) in
      let rhs = Array.copy bld.b_rhs in
      (* Gauss–Jordan with partial pivoting over unassigned rows: make the
         snapshot's basis columns an identity. A near-singular pivot means
         the basis is unusable here — fall back. *)
      let basis = Array.make m (-1) in
      let used = Array.make m false in
      for k = 0 to m - 1 do
        let c = snapshot.s_basis.(k) in
        if c < 0 || c >= n then raise (Fallback "snapshot column out of range");
        let best = ref (-1) and best_mag = ref 1e-9 in
        for i = 0 to m - 1 do
          let mag = Float.abs a.(i).(c) in
          if (not used.(i)) && mag > !best_mag then begin
            best := i;
            best_mag := mag
          end
        done;
        if !best = -1 then raise (Fallback "singular restored basis");
        let row = !best in
        used.(row) <- true;
        basis.(row) <- c;
        let arow = a.(row) in
        let inv = 1. /. arow.(c) in
        for j = 0 to n - 1 do
          arow.(j) <- arow.(j) *. inv
        done;
        arow.(c) <- 1.;
        rhs.(row) <- rhs.(row) *. inv;
        for i = 0 to m - 1 do
          if i <> row then begin
            let ri = a.(i) in
            let f = ri.(c) in
            if f <> 0. then begin
              for j = 0 to n - 1 do
                ri.(j) <- ri.(j) -. (f *. arow.(j))
              done;
              ri.(c) <- 0.;
              rhs.(i) <- rhs.(i) -. (f *. rhs.(row))
            end
          end
        done
      done;
      let status = Array.make n Vlower in
      for i = 0 to m - 1 do
        status.(basis.(i)) <- Vbasic
      done;
      for j = 0 to n - 1 do
        if
          status.(j) <> Vbasic
          && snapshot.s_at_upper.(j)
          && Float.is_finite bld.b_hi.(j)
        then status.(j) <- Vupper
      done;
      (* xb = B^-1 b - Σ_nonbasic (B^-1 A_j) v_j *)
      let xb = rhs in
      for j = 0 to n - 1 do
        if status.(j) <> Vbasic then begin
          let v =
            match status.(j) with Vupper -> bld.b_hi.(j) | _ -> bld.b_lo.(j)
          in
          if v <> 0. then
            for i = 0 to m - 1 do
              xb.(i) <- xb.(i) -. (a.(i).(j) *. v)
            done
        end
      done;
      let banned = Array.make n false in
      for i = 0 to m - 1 do
        banned.(bld.b_art_col.(i)) <- true
      done;
      let t =
        {
          m;
          n;
          nv;
          a;
          z = Array.make n 0.;
          lo = bld.b_lo;
          hi = bld.b_hi;
          basis;
          xb;
          status;
          banned;
          cols = [||];
        }
      in
      rebuild_cols t;
      let sign = if p.maximize then 1. else -1. in
      let c2 = Array.make n 0. in
      List.iter (fun (j, v) -> c2.(j) <- c2.(j) +. (sign *. v)) p.objective;
      set_z t c2;
      (* Dual-feasibility repair: reduced costs depend only on the basis,
         so after a pure bound change the snapshot statuses are already
         dual-feasible — unless a status refers to a bound that no longer
         supports it, in which case flipping to the other (finite) bound
         restores the sign condition. An unflippable violation means the
         warm basis is not dual-usable: fall back. *)
      Array.iter
        (fun j ->
          match t.status.(j) with
          | Vlower when t.z.(j) < -.tol ->
              if Float.is_finite t.hi.(j) then begin
                let d = t.hi.(j) -. t.lo.(j) in
                for i = 0 to m - 1 do
                  t.xb.(i) <- t.xb.(i) -. (t.a.(i).(j) *. d)
                done;
                t.status.(j) <- Vupper
              end
              else raise (Fallback "dual-infeasible restored statuses")
          | Vupper when t.z.(j) > tol ->
              let d = t.lo.(j) -. t.hi.(j) in
              for i = 0 to m - 1 do
                t.xb.(i) <- t.xb.(i) -. (t.a.(i).(j) *. d)
              done;
              t.status.(j) <- Vlower
          | _ -> ())
        t.cols;
      (* ---- Dual simplex: drive out-of-bounds basic variables back into
         their boxes while keeping the reduced costs dual-feasible. ---- *)
      let cap = warm_cap m n in
      let infeasible = ref false in
      let stopped_reason = ref None in
      (try
         let continue_ = ref true in
         while !continue_ do
           let r = ref (-1) and worst = ref tol in
           for i = 0 to m - 1 do
             let b = basis.(i) in
             let v =
               Float.max (t.lo.(b) -. t.xb.(i)) (t.xb.(i) -. t.hi.(b))
             in
             if v > !worst then begin
               r := i;
               worst := v
             end
           done;
           if !r = -1 then continue_ := false
           else begin
             if !dual_pivs >= cap then raise (Fallback "dual pivot cap");
             charge ?budget ~iters ();
             let row = !r in
             let b = basis.(row) in
             let below = t.xb.(row) < t.lo.(b) in
             let arow = t.a.(row) in
             (* Entering candidate: a nonbasic that can move x_B(row) back
                toward the violated bound; min-ratio |z_j| / |alpha_j|
                keeps dual feasibility. No candidate certifies primal
                infeasibility: x_B(row) is already extremal over every
                movable nonbasic. *)
             let best = ref (-1) and best_ratio = ref infinity in
             Array.iter
               (fun j ->
                 let alpha = arow.(j) in
                 let adm =
                   match t.status.(j) with
                   | Vlower -> if below then alpha < -.tol else alpha > tol
                   | Vupper -> if below then alpha > tol else alpha < -.tol
                   | Vbasic -> false
                 in
                 if adm then begin
                   let ratio = Float.abs t.z.(j) /. Float.abs alpha in
                   if ratio < !best_ratio -. 1e-12 then begin
                     best := j;
                     best_ratio := ratio
                   end
                 end)
               t.cols;
             if !best = -1 then begin
               infeasible := true;
               continue_ := false
             end
             else begin
               let col = !best in
               let target = if below then t.lo.(b) else t.hi.(b) in
               let delta = (t.xb.(row) -. target) /. arow.(col) in
               let enter_val = nb_value t col +. delta in
               for i = 0 to m - 1 do
                 if i <> row then
                   t.xb.(i) <- t.xb.(i) -. (t.a.(i).(col) *. delta)
               done;
               t.status.(b) <- (if below then Vlower else Vupper);
               t.status.(col) <- Vbasic;
               t.basis.(row) <- col;
               t.xb.(row) <- enter_val;
               pivot_tab t ~row ~col;
               incr iters;
               incr dual_pivs
             end
           end
         done
       with Stop_exc reason -> stopped_reason := Some reason);
      let result =
        match !stopped_reason with
        | Some reason ->
            (* starved mid-repair: primal infeasible, so no best-so-far *)
            (Stopped { reason; best_objective = None; iterations = !iters }, None)
        | None ->
            if !infeasible then (Infeasible, None)
            else begin
              (* primal cleanup: usually zero pivots — dual-feasible and
                 primal-feasible together mean optimal *)
              match optimize ?budget ~iters ~bland_acts ~c:c2 t with
              | exception Unbounded_exc ->
                  (* a bound tightening cannot unbound a bounded parent;
                     treat as numeric trouble *)
                  raise (Fallback "warm path reported unbounded")
              | exception Stop_exc reason ->
                  ( Stopped
                      {
                        reason;
                        best_objective = Some (sign *. objective_of t c2);
                        iterations = !iters;
                      },
                    None )
              | () -> (
                  let sol = extract_solution t ~sign ~c2 in
                  let vlo = Array.sub t.lo 0 nv
                  and vhi = Array.sub t.hi 0 nv in
                  match check_solution_arrays ~vlo ~vhi p sol with
                  | Ok () ->
                      ( Optimal sol,
                        Some (snap_of t ~art_neg:snapshot.s_art_neg) )
                  | Error msg -> raise (Fallback msg))
            end
      in
      Counter.incr c_solves;
      flush ();
      Some result
    with Fallback _ ->
      flush ();
      None
  end

(* ---- Entry points. ---- *)

let solve_run ?budget ?bounds p =
  validate p;
  cold_solve ?budget ?bounds (normalize p)

let solve_from_run ?budget ~snapshot ~bounds p =
  validate p;
  Counter.incr c_warm;
  let p = normalize p in
  (* Fault injection: distrust the warm basis outright, as a failed
     post-solve self-check would, and take the cold fallback. The
     fallback is the soundness story for every real numeric doubt, so
     chaos runs exercise precisely the path they must prove. *)
  let doubt =
    Pc_fault.Fault.enabled () && Pc_fault.Fault.fire Pc_fault.Fault.Lp_doubt
  in
  match (if doubt then None else warm_solve ?budget ~snapshot ~bounds p) with
  | Some result -> result
  | None ->
      Counter.incr c_warm_fb;
      cold_solve ?budget ~bounds p

(* Span + latency histogram around the solve, kept out of the plain entry
   points so the disabled path is a single atomic load and a branch. *)
let observed f =
  let run () =
    let t0 = Pc_util.Clock.now_ns () in
    let r = f () in
    Pc_obs.Registry.Histogram.observe_ns h_solve
      (Int64.to_float (Int64.sub (Pc_util.Clock.now_ns ()) t0));
    r
  in
  if Pc_obs.Trace.enabled () then Pc_obs.Trace.with_span ~name:"lp.solve" run
  else run ()

let maybe_observed f =
  if Pc_obs.Trace.enabled () || Pc_obs.Registry.enabled () then observed f
  else f ()

let solve ?budget p = fst (maybe_observed (fun () -> solve_run ?budget p))

let solve_snapshot ?budget ?bounds p =
  maybe_observed (fun () -> solve_run ?budget ?bounds p)

let solve_from ?budget ~snapshot ~bounds p =
  maybe_observed (fun () -> solve_from_run ?budget ~snapshot ~bounds p)

let feasible ?budget p =
  match solve ?budget { p with objective = []; maximize = true } with
  | Optimal _ -> true
  | Infeasible -> false
  | Unbounded | Stopped _ -> true
