module B = Pc_budget.Budget
module Counter = Pc_obs.Registry.Counter

(* Registered once at load time; solve flushes its local pivot tallies
   with [Counter.add] so the per-pivot loop stays free of atomic ops. *)
let c_solves = Counter.make "lp.solves"
let c_pivots = Counter.make "lp.pivots"
let c_phase1_pivots = Counter.make "lp.phase1_pivots"
let c_bland = Counter.make "lp.bland_activations"
let h_solve = Pc_obs.Registry.Histogram.make "lp.solve.ns"

type relop = Le | Ge | Eq

type constr = { coeffs : (int * float) list; op : relop; rhs : float }

type problem = {
  n_vars : int;
  maximize : bool;
  objective : (int * float) list;
  constraints : constr list;
}

type solution = { objective_value : float; values : float array }

type stop_reason = Iteration_limit | Deadline | Numeric of string

type stop = {
  reason : stop_reason;
  best_objective : float option;
  iterations : int;
}

type outcome = Optimal of solution | Infeasible | Unbounded | Stopped of stop

let c_le coeffs rhs = { coeffs; op = Le; rhs }
let c_ge coeffs rhs = { coeffs; op = Ge; rhs }
let c_eq coeffs rhs = { coeffs; op = Eq; rhs }

let tol = 1e-7
let max_iters = 1_000_000

let validate p =
  if p.n_vars < 0 then invalid_arg "Simplex: negative n_vars";
  let check_term (j, c) =
    if j < 0 || j >= p.n_vars then invalid_arg "Simplex: variable index out of range";
    if not (Float.is_finite c) then invalid_arg "Simplex: non-finite coefficient"
  in
  List.iter check_term p.objective;
  List.iter
    (fun cn ->
      List.iter check_term cn.coeffs;
      if not (Float.is_finite cn.rhs) then invalid_arg "Simplex: non-finite rhs")
    p.constraints

(* Mutable tableau state for one solve. *)
type tableau = {
  m : int;  (* constraint rows *)
  n : int;  (* total columns (structural + slack + artificial) *)
  a : float array array;  (* m rows of length n + 1; column n is rhs *)
  z : float array;  (* objective row, length n + 1: reduced costs + value *)
  basis : int array;  (* basic variable of each row *)
  banned : bool array;  (* columns excluded from entering (artificials in phase 2) *)
}

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let piv = arow.(col) in
  let inv = 1. /. piv in
  for j = 0 to t.n do
    arow.(j) <- arow.(j) *. inv
  done;
  arow.(col) <- 1.;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let r = t.a.(i) in
      let factor = r.(col) in
      if factor <> 0. then begin
        for j = 0 to t.n do
          r.(j) <- r.(j) -. (factor *. arow.(j))
        done;
        r.(col) <- 0.
      end
    end
  done;
  let factor = t.z.(col) in
  if factor <> 0. then begin
    for j = 0 to t.n do
      t.z.(j) <- t.z.(j) -. (factor *. arow.(j))
    done;
    t.z.(col) <- 0.
  end;
  t.basis.(row) <- col

(* Entering column: Dantzig (most negative reduced cost) or Bland
   (smallest index with negative reduced cost). *)
let entering t ~bland =
  if bland then begin
    let rec find j =
      if j >= t.n then None
      else if (not t.banned.(j)) && t.z.(j) < -.tol then Some j
      else find (j + 1)
    in
    find 0
  end
  else begin
    let best = ref (-1) and best_val = ref (-.tol) in
    for j = 0 to t.n - 1 do
      if (not t.banned.(j)) && t.z.(j) < !best_val then begin
        best := j;
        best_val := t.z.(j)
      end
    done;
    if !best = -1 then None else Some !best
  end

(* Leaving row by minimum ratio; ties broken by smallest basis variable
   index (lexicographic-ish tie-break that combines well with Bland). *)
let leaving t ~col =
  let best = ref (-1) and best_ratio = ref infinity in
  for i = 0 to t.m - 1 do
    let aij = t.a.(i).(col) in
    if aij > tol then begin
      let ratio = t.a.(i).(t.n) /. aij in
      if
        ratio < !best_ratio -. tol
        || (Float.abs (ratio -. !best_ratio) <= tol
            && !best >= 0
            && t.basis.(i) < t.basis.(!best))
      then begin
        best := i;
        best_ratio := ratio
      end
    end
  done;
  if !best = -1 then None else Some !best

exception Unbounded_exc
exception Stop_exc of stop_reason

(* [iters] is shared across both phases so a stop reports the solve's
   total pivot count. Deadline checks are amortized: every 64 pivots. *)
let optimize ?budget ~iters ~bland_acts t =
  let stall = ref 0 in
  let last_obj = ref t.z.(t.n) in
  let was_bland = ref false in
  let continue_ = ref true in
  let charge () =
    if !iters > max_iters then raise (Stop_exc Iteration_limit);
    match budget with
    | None -> ()
    | Some b ->
        if not (B.take_iter b) then raise (Stop_exc Iteration_limit);
        if !iters land 63 = 0 && B.out_of_time b then raise (Stop_exc Deadline)
  in
  while !continue_ do
    charge ();
    let bland = !stall > 2 * (t.m + t.n) in
    if bland <> !was_bland then begin
      if bland then incr bland_acts;
      was_bland := bland
    end;
    match entering t ~bland with
    | None -> continue_ := false
    | Some col -> (
        match leaving t ~col with
        | None -> raise Unbounded_exc
        | Some row ->
            pivot t ~row ~col;
            incr iters;
            let obj = t.z.(t.n) in
            if obj > !last_obj +. tol then begin
              stall := 0;
              last_obj := obj
            end
            else incr stall)
  done

(* Post-solve self-check: residual feasibility of every constraint, sign
   of the variables, and objective consistency, with tolerances scaled by
   row magnitude — catches tableau drift before a wrong "optimal" answer
   escapes into a bound. *)
let check_solution p (sol : solution) =
  let eps = 1e-6 in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  Array.iteri
    (fun j v ->
      if not (Float.is_finite v) then
        fail (Printf.sprintf "variable %d is non-finite" j)
      else if v < -.(eps *. Float.max 1. (Float.abs v)) then
        fail (Printf.sprintf "variable %d negative (%g)" j v))
    sol.values;
  List.iteri
    (fun i (c : constr) ->
      let lhs, mag =
        List.fold_left
          (fun (acc, mag) (j, v) ->
            let term = v *. sol.values.(j) in
            (acc +. term, Float.max mag (Float.abs term)))
          (0., Float.abs c.rhs) c.coeffs
      in
      let slack = Float.max 1. mag *. eps in
      let ok =
        match c.op with
        | Le -> lhs <= c.rhs +. slack
        | Ge -> lhs >= c.rhs -. slack
        | Eq -> Float.abs (lhs -. c.rhs) <= slack
      in
      if not ok then
        fail
          (Printf.sprintf "constraint %d residual: lhs %g vs rhs %g" i lhs c.rhs))
    p.constraints;
  let recomputed =
    List.fold_left (fun acc (j, v) -> acc +. (v *. sol.values.(j))) 0. p.objective
  in
  let mag = Float.max 1. (Float.abs recomputed) in
  if Float.abs (recomputed -. sol.objective_value) > 1e-5 *. mag then
    fail
      (Printf.sprintf "objective drift: reported %g, recomputed %g"
         sol.objective_value recomputed);
  match !err with None -> Ok () | Some msg -> Error msg

let solve_run ?budget p =
  validate p;
  let cons =
    (* Normalize to rhs >= 0 so artificial bases are valid. *)
    List.map
      (fun c ->
        if c.rhs < 0. then begin
          let coeffs = List.map (fun (j, v) -> (j, -.v)) c.coeffs in
          let op = match c.op with Le -> Ge | Ge -> Le | Eq -> Eq in
          { coeffs; op; rhs = -.c.rhs }
        end
        else c)
      p.constraints
    |> Array.of_list
  in
  let m = Array.length cons in
  let n_slack =
    Array.fold_left
      (fun acc c -> match c.op with Le | Ge -> acc + 1 | Eq -> acc)
      0 cons
  in
  let n_art =
    Array.fold_left
      (fun acc c -> match c.op with Ge | Eq -> acc + 1 | Le -> acc)
      0 cons
  in
  let n = p.n_vars + n_slack + n_art in
  let a = Array.init m (fun _ -> Array.make (n + 1) 0.) in
  let basis = Array.make m (-1) in
  let banned = Array.make n false in
  let art_start = p.n_vars + n_slack in
  let slack = ref p.n_vars and art = ref art_start in
  Array.iteri
    (fun i c ->
      List.iter
        (fun (j, v) -> a.(i).(j) <- a.(i).(j) +. v)
        c.coeffs;
      a.(i).(n) <- c.rhs;
      (match c.op with
      | Le ->
          a.(i).(!slack) <- 1.;
          basis.(i) <- !slack;
          incr slack
      | Ge ->
          a.(i).(!slack) <- -1.;
          incr slack;
          a.(i).(!art) <- 1.;
          basis.(i) <- !art;
          incr art
      | Eq ->
          a.(i).(!art) <- 1.;
          basis.(i) <- !art;
          incr art))
    cons;
  let t = { m; n; a; z = Array.make (n + 1) 0.; basis; banned } in
  let iters = ref 0 in
  let bland_acts = ref 0 in
  let stopped reason ~best_objective =
    Stopped { reason; best_objective; iterations = !iters }
  in
  (* ---- Phase 1: maximize -(sum of artificials). The reduced-cost row
     for the initial artificial basis is the negated sum of rows whose
     basic variable is artificial. ---- *)
  let has_art = n_art > 0 in
  let phase1_failed = ref false in
  let phase1_stopped = ref None in
  if has_art then begin
    Array.fill t.z 0 (n + 1) 0.;
    for i = 0 to m - 1 do
      if basis.(i) >= art_start then
        for j = 0 to n do
          t.z.(j) <- t.z.(j) -. a.(i).(j)
        done
    done;
    (* reduced cost of each artificial itself is 0 in the basis *)
    for j = art_start to n - 1 do
      t.z.(j) <- t.z.(j) +. 1.
    done;
    (try optimize ?budget ~iters ~bland_acts t with
    | Unbounded_exc ->
        (* Invariant: the phase-1 objective -(Σ artificials) is bounded
           above by 0, so an unbounded ray is impossible by construction.
           If float drift ever manufactures one, no feasible basis was
           certified either way — degrade to Infeasible (the caller-safe
           answer for "phase 1 did not produce a feasible basis") instead
           of killing the caller. *)
        phase1_failed := true
    | Stop_exc reason -> phase1_stopped := Some reason);
    if !phase1_stopped = None && not !phase1_failed then begin
      if t.z.(n) < -.(tol *. 10.) then phase1_failed := true
      else begin
        (* Drive out artificials still basic at zero, ban artificial columns. *)
        for i = 0 to m - 1 do
          if basis.(i) >= art_start then begin
            let found = ref (-1) in
            for j = 0 to art_start - 1 do
              if !found = -1 && Float.abs a.(i).(j) > tol then found := j
            done;
            if !found >= 0 then pivot t ~row:i ~col:!found
            (* else: redundant row, harmless to keep with artificial at 0 *)
          end
        done;
        for j = art_start to n - 1 do
          banned.(j) <- true
        done
      end
    end
  end;
  let phase1_iters = !iters in
  let outcome =
    match !phase1_stopped with
    | Some reason -> stopped reason ~best_objective:None
    | None ->
      if !phase1_failed then Infeasible
      else begin
        (* ---- Phase 2: real objective, as maximization. ---- *)
        let sign = if p.maximize then 1. else -1. in
        let c = Array.make n 0. in
        List.iter (fun (j, v) -> c.(j) <- c.(j) +. (sign *. v)) p.objective;
        Array.fill t.z 0 (n + 1) 0.;
        for j = 0 to n - 1 do
          t.z.(j) <- -.c.(j)
        done;
        (* Make reduced costs of basic variables zero. *)
        for i = 0 to m - 1 do
          let b = basis.(i) in
          let factor = t.z.(b) in
          if factor <> 0. then begin
            for j = 0 to n do
              t.z.(j) <- t.z.(j) -. (factor *. a.(i).(j))
            done;
            t.z.(b) <- 0.
          end
        done;
        match optimize ?budget ~iters ~bland_acts t with
        | exception Unbounded_exc -> Unbounded
        | exception Stop_exc reason ->
            (* The tableau is primal-feasible throughout phase 2, so the
               current objective is the value of a genuine feasible point
               (a primal bound), reported as the best-so-far. *)
            stopped reason ~best_objective:(Some (sign *. t.z.(t.n)))
        | () ->
            let values = Array.make p.n_vars 0. in
            for i = 0 to m - 1 do
              if basis.(i) < p.n_vars then begin
                let v = a.(i).(n) in
                values.(basis.(i)) <- (if Float.abs v < tol then 0. else v)
              end
            done;
            let obj = sign *. t.z.(n) in
            let sol = { objective_value = obj; values } in
            (match check_solution p sol with
            | Ok () -> Optimal sol
            | Error msg ->
                (* A drifted tableau's answer must not escape into a hard
                   bound; report distrust and let the caller degrade. *)
                stopped (Numeric msg) ~best_objective:None)
      end
  in
  Counter.incr c_solves;
  Counter.add c_pivots !iters;
  Counter.add c_phase1_pivots phase1_iters;
  Counter.add c_bland !bland_acts;
  outcome

(* Cold path: span + latency histogram around the solve. Kept out of
   [solve] so the disabled path is a single atomic load and a branch. *)
let solve_observed ?budget p =
  let run () =
    let t0 = Pc_util.Clock.now_ns () in
    let r = solve_run ?budget p in
    Pc_obs.Registry.Histogram.observe_ns h_solve
      (Int64.to_float (Int64.sub (Pc_util.Clock.now_ns ()) t0));
    r
  in
  if Pc_obs.Trace.enabled () then Pc_obs.Trace.with_span ~name:"lp.solve" run
  else run ()

let solve ?budget p =
  if Pc_obs.Trace.enabled () || Pc_obs.Registry.enabled () then
    solve_observed ?budget p
  else solve_run ?budget p

let feasible ?budget p =
  match solve ?budget { p with objective = []; maximize = true } with
  | Optimal _ -> true
  | Infeasible -> false
  | Unbounded | Stopped _ -> true
