(* Sparse revised simplex with a factorized basis.

   The problem matrix is stored once in CSC form (structural columns from
   the constraint rows, one ±1 slack singleton per inequality row, one ±1
   artificial singleton per row) and never modified by pivoting. The
   basis inverse is a product-form eta file: refactorization pivots the
   current basis columns through the file one by one (singletons first,
   then by ascending column nonzero count — the near-triangular order the
   PC matrices are full of), and every basis exchange appends one eta
   built from the FTRAN'd entering column. After [refactor_interval]
   appended etas the file is rebuilt from scratch and the basic values
   are recomputed, which both caps eta-file growth and washes out
   accumulated float drift.

   FTRAN/BTRAN run over Bigarray-backed dense work vectors
   ({!Pc_util.Fvec}) with write-tracked sparsity patterns, so a solve
   touches O(column nnz · eta nnz) floats per pivot instead of the dense
   tableau's O(mn). Pricing is devex over a maintained candidate list
   (reduced costs cached per candidate and refreshed only when the basis
   changes), with the historical Bland's-rule fallback after a stall so
   termination is still guaranteed.

   Everything *around* the core is unchanged from the dense
   implementation: two-phase cold solves, bounded-variable statuses with
   bound-flip pivots, structured [Stopped] outcomes, the post-solve
   self-check, and the dual-simplex warm start that falls back to a cold
   solve on any numeric doubt. The pre-rework dense tableau survives as
   {!Dense_tableau}, the qcheck oracle this file is tested against. *)

module B = Pc_budget.Budget
module Counter = Pc_obs.Registry.Counter
module V = Pc_util.Fvec

(* Registered once at load time; solve flushes its local tallies with
   [Counter.add] so the per-pivot loop stays free of atomic ops. The
   [ftran_ns]/[btran_ns] pair is only accumulated while the metrics
   registry is enabled (a clock read per kernel call is not free). *)
let c_solves = Counter.make "lp.solves"
let c_pivots = Counter.make "lp.pivots"
let c_phase1_pivots = Counter.make "lp.phase1_pivots"
let c_bland = Counter.make "lp.bland_activations"
let c_warm = Counter.make "lp.warm_starts"
let c_warm_fb = Counter.make "lp.warm_fallbacks"
let c_dual_pivots = Counter.make "lp.dual_pivots"
let c_refact = Counter.make "lp.refactorizations"
let c_eta_len = Counter.make "lp.eta_len"
let c_ftran_ns = Counter.make "lp.ftran_ns"
let c_btran_ns = Counter.make "lp.btran_ns"
let h_solve = Pc_obs.Registry.Histogram.make "lp.solve.ns"

type relop = Le | Ge | Eq

type constr = { coeffs : (int * float) list; op : relop; rhs : float }

type problem = {
  n_vars : int;
  maximize : bool;
  objective : (int * float) list;
  constraints : constr list;
  var_bounds : (int * float * float) list;
}

type solution = { objective_value : float; values : float array }

type stop_reason = Iteration_limit | Deadline | Numeric of string

type stop = {
  reason : stop_reason;
  best_objective : float option;
  iterations : int;
}

type outcome = Optimal of solution | Infeasible | Unbounded | Stopped of stop

(* The column layout (structurals, one slack per inequality row, one
   artificial per row) is fixed by the problem shape alone, so a snapshot
   stays valid when only the variable bounds change. The artificial signs
   are the one bound-dependent artifact of the originating solve, recorded
   so the restored basis matrix matches the parent's exactly. *)
type snapshot = {
  s_nv : int;
  s_m : int;
  s_basis : int array;  (* basic column of each row *)
  s_at_upper : bool array;  (* per column: nonbasic at its upper bound *)
  s_art_neg : bool array;  (* per row: artificial column carries -1 *)
}

let c_le coeffs rhs = { coeffs; op = Le; rhs }
let c_ge coeffs rhs = { coeffs; op = Ge; rhs }
let c_eq coeffs rhs = { coeffs; op = Eq; rhs }

let tol = 1e-7
let max_iters = 1_000_000

let refactor_interval = 64

(* Canonicalize a sparse row: sort by index, sum duplicates once, drop
   exact zeros — so [(0,1.); (0,1.)] means 2 x0 regardless of which layer
   built the list. *)
let canon_coeffs = function
  | ([] | [ _ ]) as c -> c
  | coeffs ->
      let sorted =
        List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) coeffs
      in
      let rec merge = function
        | (j1, v1) :: (j2, v2) :: rest when j1 = j2 ->
            merge ((j1, v1 +. v2) :: rest)
        | (j, v) :: rest -> if v = 0. then merge rest else (j, v) :: merge rest
        | [] -> []
      in
      merge sorted

let normalize p =
  {
    p with
    objective = canon_coeffs p.objective;
    constraints =
      List.map (fun c -> { c with coeffs = canon_coeffs c.coeffs }) p.constraints;
  }

let validate p =
  if p.n_vars < 0 then invalid_arg "Simplex: negative n_vars";
  let check_term (j, c) =
    if j < 0 || j >= p.n_vars then invalid_arg "Simplex: variable index out of range";
    if not (Float.is_finite c) then invalid_arg "Simplex: non-finite coefficient"
  in
  List.iter check_term p.objective;
  List.iter
    (fun cn ->
      List.iter check_term cn.coeffs;
      if not (Float.is_finite cn.rhs) then invalid_arg "Simplex: non-finite rhs")
    p.constraints;
  List.iter
    (fun (j, l, h) ->
      if j < 0 || j >= p.n_vars then
        invalid_arg "Simplex: bound variable index out of range";
      if Float.is_nan l || Float.is_nan h then invalid_arg "Simplex: NaN bound")
    p.var_bounds

(* Dense [lo, hi] per structural variable: the problem's sparse boxes (or
   the caller's override) intersected with the implicit x >= 0 domain. *)
let bounds_arrays ?bounds p =
  match bounds with
  | Some (l, h) ->
      if Array.length l <> p.n_vars || Array.length h <> p.n_vars then
        invalid_arg "Simplex: bounds arrays must have length n_vars";
      (Array.map (Float.max 0.) l, Array.copy h)
  | None ->
      let lo = Array.make p.n_vars 0. and hi = Array.make p.n_vars infinity in
      List.iter
        (fun (j, l, h) ->
          lo.(j) <- Float.max lo.(j) l;
          hi.(j) <- Float.min hi.(j) h)
        p.var_bounds;
      (lo, hi)

(* Post-solve self-check: residual feasibility of every constraint, each
   variable within its box, and objective consistency, with tolerances
   scaled by row magnitude — catches factorization drift before a wrong
   "optimal" answer escapes into a bound. *)
let check_solution_arrays ~vlo ~vhi p (sol : solution) =
  let eps = 1e-6 in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  Array.iteri
    (fun j v ->
      if not (Float.is_finite v) then
        fail (Printf.sprintf "variable %d is non-finite" j)
      else begin
        let slack = eps *. Float.max 1. (Float.abs v) in
        if v < vlo.(j) -. slack then
          fail (Printf.sprintf "variable %d below lower bound (%g < %g)" j v vlo.(j))
        else if v > vhi.(j) +. slack then
          fail (Printf.sprintf "variable %d above upper bound (%g > %g)" j v vhi.(j))
      end)
    sol.values;
  List.iteri
    (fun i (c : constr) ->
      let lhs, mag =
        List.fold_left
          (fun (acc, mag) (j, v) ->
            let term = v *. sol.values.(j) in
            (acc +. term, Float.max mag (Float.abs term)))
          (0., Float.abs c.rhs) c.coeffs
      in
      let slack = Float.max 1. mag *. eps in
      let ok =
        match c.op with
        | Le -> lhs <= c.rhs +. slack
        | Ge -> lhs >= c.rhs -. slack
        | Eq -> Float.abs (lhs -. c.rhs) <= slack
      in
      if not ok then
        fail
          (Printf.sprintf "constraint %d residual: lhs %g vs rhs %g" i lhs c.rhs))
    p.constraints;
  let recomputed =
    List.fold_left (fun acc (j, v) -> acc +. (v *. sol.values.(j))) 0. p.objective
  in
  let mag = Float.max 1. (Float.abs recomputed) in
  if Float.abs (recomputed -. sol.objective_value) > 1e-5 *. mag then
    fail
      (Printf.sprintf "objective drift: reported %g, recomputed %g"
         sol.objective_value recomputed);
  match !err with None -> Ok () | Some msg -> Error msg

let check_solution p sol =
  let vlo, vhi = bounds_arrays p in
  check_solution_arrays ~vlo ~vhi p sol

(* ---- Shared problem arrays, CSC. The column layout is a function of
   the problem shape alone: structurals [0, nv), one slack per inequality
   row, then one artificial per row. Artificial values default to +1
   here; the caller stamps their signs (cold: from phase-1 residuals;
   warm: from the snapshot) by writing the singleton's [b_vals] slot. ---- *)

type build = {
  b_m : int;
  b_n : int;
  b_art_start : int;
  b_colp : int array;  (* n+1 column pointers *)
  b_rowi : int array;  (* row index per entry *)
  b_vals : float array;  (* value per entry *)
  b_rhs : float array;
  b_ops : relop array;
  b_slack_col : int array;  (* -1 for Eq rows *)
  b_art_col : int array;
  b_lo : float array;  (* length n *)
  b_hi : float array;
}

let build ?bounds p =
  let cons = Array.of_list p.constraints in
  let m = Array.length cons in
  let nv = p.n_vars in
  let n_slack =
    Array.fold_left
      (fun acc c -> match c.op with Le | Ge -> acc + 1 | Eq -> acc)
      0 cons
  in
  let n = nv + n_slack + m in
  let art_start = nv + n_slack in
  let counts = Array.make (n + 1) 0 in
  Array.iter
    (fun c -> List.iter (fun (j, _) -> counts.(j) <- counts.(j) + 1) c.coeffs)
    cons;
  for j = nv to n - 1 do
    counts.(j) <- 1 (* slack and artificial singletons *)
  done;
  let colp = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    colp.(j + 1) <- colp.(j) + counts.(j)
  done;
  let nnz = colp.(n) in
  let rowi = Array.make (Stdlib.max 1 nnz) 0 in
  let vals = Array.make (Stdlib.max 1 nnz) 0. in
  let cursor = Array.sub colp 0 (Stdlib.max 1 n) in
  let put j row v =
    let s = cursor.(j) in
    rowi.(s) <- row;
    vals.(s) <- v;
    cursor.(j) <- s + 1
  in
  let rhs = Array.make m 0. in
  let ops = Array.map (fun c -> c.op) cons in
  let slack_col = Array.make m (-1) in
  let art_col = Array.make m (-1) in
  let lo = Array.make n 0. and hi = Array.make n infinity in
  let vlo, vhi = bounds_arrays ?bounds p in
  Array.blit vlo 0 lo 0 nv;
  Array.blit vhi 0 hi 0 nv;
  let next_slack = ref nv in
  Array.iteri
    (fun i c ->
      List.iter (fun (j, v) -> put j i v) c.coeffs;
      rhs.(i) <- c.rhs;
      (match c.op with
      | Le ->
          put !next_slack i 1.;
          slack_col.(i) <- !next_slack;
          incr next_slack
      | Ge ->
          put !next_slack i (-1.);
          slack_col.(i) <- !next_slack;
          incr next_slack
      | Eq -> ());
      let ac = art_start + i in
      art_col.(i) <- ac;
      put ac i 1.)
    cons;
  {
    b_m = m;
    b_n = n;
    b_art_start = art_start;
    b_colp = colp;
    b_rowi = rowi;
    b_vals = vals;
    b_rhs = rhs;
    b_ops = ops;
    b_slack_col = slack_col;
    b_art_col = art_col;
    b_lo = lo;
    b_hi = hi;
  }

let domain_empty bld nv =
  let empty = ref false in
  for j = 0 to nv - 1 do
    if bld.b_lo.(j) > bld.b_hi.(j) then empty := true
  done;
  !empty

(* ---- Product-form eta file. An eta records one pivot: FTRAN scales the
   pivot slot by [1/ediag] and subtracts the off-pivot column; BTRAN is
   the transposed update. B^-1 = E_k ... E_1 over the file in order. ---- *)

type eta = { er : int; ediag : float; eidx : int array; evals : float array }

type etafile = {
  mutable e_arr : eta array;
  mutable e_len : int;
  mutable e_base : int;  (* file length right after the last refactorization *)
}

let dummy_eta = { er = 0; ediag = 1.; eidx = [||]; evals = [||] }

let ef_create () = { e_arr = Array.make 64 dummy_eta; e_len = 0; e_base = 0 }

let ef_reset ef =
  ef.e_len <- 0;
  ef.e_base <- 0

let ef_append ef eta =
  if ef.e_len = Array.length ef.e_arr then begin
    let bigger = Array.make (2 * ef.e_len) dummy_eta in
    Array.blit ef.e_arr 0 bigger 0 ef.e_len;
    ef.e_arr <- bigger
  end;
  ef.e_arr.(ef.e_len) <- eta;
  ef.e_len <- ef.e_len + 1

(* ---- Mutable revised-simplex state for one solve. ---- *)

type vstat = Vbasic | Vlower | Vupper

type rsm = {
  m : int;  (* constraint rows *)
  n : int;  (* total columns: structural + slack + artificial *)
  nv : int;  (* structural columns *)
  colp : int array;  (* CSC of the full column set, never mutated *)
  rowi : int array;
  avals : float array;
  rhs : float array;
  lo : float array;  (* per-column bounds, length n *)
  hi : float array;
  basis : int array;  (* basic column of each row *)
  xb : float array;  (* value of each row's basic variable *)
  status : vstat array;  (* length n *)
  banned : bool array;  (* columns excluded from entering (artificials) *)
  ef : etafile;
  w : V.t;  (* FTRAN work vector, pattern-tracked *)
  y : V.t;  (* BTRAN pricing vector, used densely *)
  rho : V.t;  (* BTRAN unit-row vector, used densely *)
  dw : float array;  (* devex reference weights, length n *)
  mutable cand : int array;  (* candidate entering columns *)
  mutable cand_r : float array;  (* cached reduced costs, parallel to cand *)
  mutable ncand : int;
  mutable y_valid : bool;
  fail : string -> exn;  (* how this path reports a broken factorization *)
  obs_time : bool;
  mutable ftran_ns : int;
  mutable btran_ns : int;
  mutable eta_entries : int;  (* total eta nnz appended, refactors included *)
  mutable refacts : int;
}

(* A column pinned to a single point can never move, so it can never be an
   entering candidate — in the primal (no improving step) or in the dual
   (no admissible direction). Excluding it is sound both ways. *)
let fixed t j = t.hi.(j) -. t.lo.(j) <= tol

let nb_value t j =
  match t.status.(j) with
  | Vlower -> t.lo.(j)
  | Vupper -> t.hi.(j)
  | Vbasic -> assert false

(* Objective of the current iterate in O(m + n): used once per phase to
   seed the incremental tracker, and for final/stop readouts. *)
let objective_of t c =
  let acc = ref 0. in
  for i = 0 to t.m - 1 do
    acc := !acc +. (c.(t.basis.(i)) *. t.xb.(i))
  done;
  for j = 0 to t.n - 1 do
    if c.(j) <> 0. then
      match t.status.(j) with
      | Vbasic -> ()
      | Vlower -> acc := !acc +. (c.(j) *. t.lo.(j))
      | Vupper -> acc := !acc +. (c.(j) *. t.hi.(j))
  done;
  !acc

(* ---- FTRAN / BTRAN kernels over the eta file. ---- *)

let ftran_apply t (x : V.t) =
  let t0 = if t.obs_time then Pc_util.Clock.now_ns () else 0L in
  let ef = t.ef in
  for k = 0 to ef.e_len - 1 do
    let e = Array.unsafe_get ef.e_arr k in
    let xr = V.uget x e.er in
    if xr <> 0. then begin
      let s = xr /. e.ediag in
      V.uset x e.er s;
      let idx = e.eidx and vals = e.evals in
      for q = 0 to Array.length idx - 1 do
        V.add x (Array.unsafe_get idx q) (-.Array.unsafe_get vals q *. s)
      done
    end
  done;
  if t.obs_time then
    t.ftran_ns <-
      t.ftran_ns
      + Int64.to_int (Int64.sub (Pc_util.Clock.now_ns ()) t0)

let btran_apply t (x : V.t) =
  let t0 = if t.obs_time then Pc_util.Clock.now_ns () else 0L in
  let ef = t.ef in
  for k = ef.e_len - 1 downto 0 do
    let e = Array.unsafe_get ef.e_arr k in
    let s =
      V.dot_sparse x ~idx:e.eidx ~vals:e.evals ~lo:0
        ~hi:(Array.length e.eidx)
    in
    V.uset x e.er ((V.uget x e.er -. s) /. e.ediag)
  done;
  if t.obs_time then
    t.btran_ns <-
      t.btran_ns
      + Int64.to_int (Int64.sub (Pc_util.Clock.now_ns ()) t0)

(* w := B^-1 a_j (pattern-tracked) *)
let load_ftran t j =
  V.clear t.w;
  V.scatter t.w ~idx:t.rowi ~vals:t.avals ~lo:t.colp.(j) ~hi:t.colp.(j + 1);
  ftran_apply t t.w

(* rho := B^-T e_row (dense use) *)
let load_btran_row t row =
  V.fill_all t.rho 0.;
  V.uset t.rho row 1.;
  btran_apply t t.rho

(* Reduced cost of column j under pricing vector y: r_j = c_j - y·a_j.
   Positive means increasing x_j raises the (maximization) objective. *)
let rcost t ~c j =
  c.(j)
  -. V.dot_sparse t.y ~idx:t.rowi ~vals:t.avals ~lo:t.colp.(j)
       ~hi:t.colp.(j + 1)

(* y := B^-T c_B, recomputed only when the basis (or the phase objective)
   changed; bound flips leave it valid. Candidate reduced costs are
   cached alongside and refreshed with it. *)
let ensure_y t ~c =
  if not t.y_valid then begin
    V.fill_all t.y 0.;
    for i = 0 to t.m - 1 do
      let cb = c.(t.basis.(i)) in
      if cb <> 0. then V.uset t.y i cb
    done;
    btran_apply t t.y;
    for k = 0 to t.ncand - 1 do
      let j = t.cand.(k) in
      t.cand_r.(k) <- (if t.status.(j) = Vbasic then 0. else rcost t ~c j)
    done;
    t.y_valid <- true
  end

let eta_of_w t ~row =
  let nz = ref 0 in
  V.iter_nz t.w (fun i v -> if i <> row && v <> 0. then incr nz);
  let eidx = Array.make !nz 0 and evals = Array.make !nz 0. in
  let k = ref 0 in
  V.iter_nz t.w (fun i v ->
      if i <> row && v <> 0. then begin
        eidx.(!k) <- i;
        evals.(!k) <- v;
        incr k
      end);
  t.eta_entries <- t.eta_entries + !nz + 1;
  { er = row; ediag = V.uget t.w row; eidx; evals }

(* ---- Refactorization: rebuild the eta file from the current basis
   column set. Columns are pivoted in ascending-nnz order (singleton
   slacks and artificials first), with the pivot row chosen by magnitude
   among rows not yet assigned — partial pivoting restricted to the
   unpivoted set. Row assignments may change; [xb] is recomputed from
   scratch afterwards, which is also the drift wash-out. *)

let refactorize t =
  let cols = Array.copy t.basis in
  Array.sort
    (fun a b ->
      let na = t.colp.(a + 1) - t.colp.(a)
      and nb = t.colp.(b + 1) - t.colp.(b) in
      if na <> nb then Int.compare na nb else Int.compare a b)
    cols;
  ef_reset t.ef;
  let pivoted = Array.make (Stdlib.max 1 t.m) false in
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < t.m do
    let c = cols.(!k) in
    load_ftran t c;
    let best = ref (-1) and best_mag = ref 1e-9 in
    V.iter_nz t.w (fun i v ->
        if not pivoted.(i) then begin
          let mag = Float.abs v in
          if mag > !best_mag then begin
            best := i;
            best_mag := mag
          end
        end);
    if !best = -1 then ok := false
    else begin
      let row = !best in
      pivoted.(row) <- true;
      t.basis.(row) <- c;
      ef_append t.ef (eta_of_w t ~row)
    end;
    incr k
  done;
  V.clear t.w;
  if not !ok then Error "singular basis on refactorization"
  else begin
    t.ef.e_base <- t.ef.e_len;
    t.refacts <- t.refacts + 1;
    (* xb := B^-1 (b - Σ_nonbasic a_j v_j), fresh *)
    for i = 0 to t.m - 1 do
      V.set t.w i t.rhs.(i)
    done;
    for j = 0 to t.n - 1 do
      if t.status.(j) <> Vbasic then begin
        let v = nb_value t j in
        if v <> 0. then
          for s = t.colp.(j) to t.colp.(j + 1) - 1 do
            V.add t.w t.rowi.(s) (-.t.avals.(s) *. v)
          done
      end
    done;
    ftran_apply t t.w;
    for i = 0 to t.m - 1 do
      t.xb.(i) <- V.uget t.w i
    done;
    V.clear t.w;
    t.y_valid <- false;
    Ok ()
  end

let refactor_now t =
  match refactorize t with Ok () -> () | Error msg -> raise (t.fail msg)

let maybe_refactor t =
  if t.ef.e_len - t.ef.e_base >= refactor_interval then refactor_now t

let make_rsm ~fail ~obs_time ~nv bld =
  let m = bld.b_m and n = bld.b_n in
  {
    m;
    n;
    nv;
    colp = bld.b_colp;
    rowi = bld.b_rowi;
    avals = bld.b_vals;
    rhs = bld.b_rhs;
    lo = bld.b_lo;
    hi = bld.b_hi;
    basis = Array.make (Stdlib.max 1 m) (-1);
    xb = Array.make (Stdlib.max 1 m) 0.;
    status = Array.make (Stdlib.max 1 n) Vlower;
    banned = Array.make (Stdlib.max 1 n) false;
    ef = ef_create ();
    w = V.create (Stdlib.max 1 m);
    y = V.create (Stdlib.max 1 m);
    rho = V.create (Stdlib.max 1 m);
    dw = Array.make (Stdlib.max 1 n) 1.;
    cand = [||];
    cand_r = [||];
    ncand = 0;
    y_valid = false;
    fail;
    obs_time;
    ftran_ns = 0;
    btran_ns = 0;
    eta_entries = 0;
    refacts = 0;
  }

(* ---- Pricing: devex over a maintained candidate list. ---- *)

let candidate_cap t = Stdlib.max 64 (Stdlib.min 1024 (t.n / 8))

let viol_of t j r =
  match t.status.(j) with
  | Vlower -> r
  | Vupper -> -.r
  | Vbasic -> neg_infinity

let eligible t j = (not t.banned.(j)) && (not (fixed t j)) && t.status.(j) <> Vbasic

(* Full-price every column and rebuild the candidate list from the
   violating ones (largest devex scores first, capped). Returns the best
   entering column or None at optimality. *)
let refresh_candidates t ~c =
  let cap = candidate_cap t in
  let found = ref [] in
  let nfound = ref 0 in
  for j = t.n - 1 downto 0 do
    if eligible t j then begin
      let r = rcost t ~c j in
      if viol_of t j r > tol then begin
        found := (j, r) :: !found;
        incr nfound
      end
    end
  done;
  if !nfound = 0 then begin
    t.ncand <- 0;
    None
  end
  else begin
    let arr = Array.of_list !found in
    let score (j, r) = r *. r /. t.dw.(j) in
    if !nfound > cap then
      Array.sort (fun a b -> Float.compare (score b) (score a)) arr;
    let keep = Stdlib.min cap !nfound in
    if Array.length t.cand < keep then begin
      t.cand <- Array.make (Stdlib.max keep 64) 0;
      t.cand_r <- Array.make (Stdlib.max keep 64) 0.
    end;
    let best = ref (-1) and best_r = ref 0. and best_score = ref neg_infinity in
    for k = 0 to keep - 1 do
      let j, r = arr.(k) in
      t.cand.(k) <- j;
      t.cand_r.(k) <- r;
      let s = score (j, r) in
      if s > !best_score then begin
        best := j;
        best_r := r;
        best_score := s
      end
    done;
    t.ncand <- keep;
    Some (!best, !best_r)
  end

(* Entering column. Devex path: scan the candidate list with cached
   reduced costs; fall back to a full re-price when it runs dry. Bland
   path: lowest-index violating column over a full scan — the
   termination guarantee after a stall. *)
let entering t ~c ~bland =
  ensure_y t ~c;
  if bland then begin
    let best = ref None in
    let j = ref 0 in
    while !best = None && !j < t.n do
      (if eligible t !j then
         let r = rcost t ~c !j in
         if viol_of t !j r > tol then best := Some (!j, r));
      incr j
    done;
    !best
  end
  else begin
    let best = ref (-1) and best_r = ref 0. and best_score = ref neg_infinity in
    for k = 0 to t.ncand - 1 do
      let j = t.cand.(k) in
      if eligible t j then begin
        let r = t.cand_r.(k) in
        if viol_of t j r > tol then begin
          let s = r *. r /. t.dw.(j) in
          if s > !best_score then begin
            best := j;
            best_r := r;
            best_score := s
          end
        end
      end
    done;
    if !best >= 0 then Some (!best, !best_r) else refresh_candidates t ~c
  end

exception Unbounded_exc
exception Stop_exc of stop_reason

(* Devex weight update for a basis exchange: the reference-framework
   update restricted to the candidate list (the only columns whose pivot
   row entries we price anyway). rho must be B_old^-T e_row — computed
   before the new eta is appended. *)
let devex_update t ~row ~col ~piv =
  load_btran_row t row;
  let wq = t.dw.(col) in
  let piv2 = piv *. piv in
  let maxw = ref 0. in
  for k = 0 to t.ncand - 1 do
    let j = t.cand.(k) in
    if j <> col && t.status.(j) <> Vbasic then begin
      let alpha =
        V.dot_sparse t.rho ~idx:t.rowi ~vals:t.avals ~lo:t.colp.(j)
          ~hi:t.colp.(j + 1)
      in
      if alpha <> 0. then begin
        let cand_w = alpha *. alpha /. piv2 *. wq in
        if cand_w > t.dw.(j) then t.dw.(j) <- cand_w
      end;
      if t.dw.(j) > !maxw then maxw := t.dw.(j)
    end
  done;
  let leaving = t.basis.(row) in
  t.dw.(leaving) <- Float.max 1. (wq /. piv2);
  if Float.max !maxw t.dw.(leaving) > 1e8 then Array.fill t.dw 0 t.n 1.

(* One bounded-variable primal step on entering column [col] with reduced
   cost [r]: the step length is limited by the entering variable's own
   opposite bound (a pure bound flip, no basis change) or by the first
   basic variable to hit one of its bounds (a regular exchange). Ties
   between rows break toward the smallest basic index, which combines
   well with Bland's rule. Returns the signed step (the caller's reduced
   cost [r] moves the objective by [r *. step]). *)
let primal_step t ~col =
  let d =
    match t.status.(col) with
    | Vlower -> 1.
    | Vupper -> -1.
    | Vbasic -> assert false
  in
  load_ftran t col;
  let best_row = ref (-1) in
  let best_t = ref (t.hi.(col) -. t.lo.(col)) in
  let leave_at_upper = ref false in
  let consider i ratio at_upper =
    if
      ratio < !best_t -. tol
      || (Float.abs (ratio -. !best_t) <= tol
          && !best_row >= 0
          && t.basis.(i) < t.basis.(!best_row))
    then begin
      best_row := i;
      best_t := ratio;
      leave_at_upper := at_upper
    end
  in
  V.iter_nz t.w (fun i wv ->
      let rate = -.(d *. wv) in
      if rate > tol then begin
        let head = t.hi.(t.basis.(i)) -. t.xb.(i) in
        if Float.is_finite head then consider i (Float.max 0. (head /. rate)) true
      end
      else if rate < -.tol then begin
        let head = t.xb.(i) -. t.lo.(t.basis.(i)) in
        consider i (Float.max 0. (head /. -.rate)) false
      end);
  if not (Float.is_finite !best_t) then raise Unbounded_exc;
  let step = d *. !best_t in
  if !best_row = -1 then begin
    V.iter_nz t.w (fun i wv -> t.xb.(i) <- t.xb.(i) -. (wv *. step));
    t.status.(col) <-
      (match t.status.(col) with
      | Vlower -> Vupper
      | Vupper -> Vlower
      | Vbasic -> assert false)
  end
  else begin
    let row = !best_row in
    let enter_val = nb_value t col +. step in
    V.iter_nz t.w (fun i wv -> t.xb.(i) <- t.xb.(i) -. (wv *. step));
    let leaving = t.basis.(row) in
    t.status.(leaving) <- (if !leave_at_upper then Vupper else Vlower);
    t.status.(col) <- Vbasic;
    t.basis.(row) <- col;
    t.xb.(row) <- enter_val;
    let piv = V.uget t.w row in
    devex_update t ~row ~col ~piv;
    ef_append t.ef (eta_of_w t ~row);
    t.y_valid <- false;
    maybe_refactor t
  end;
  step

(* [iters] is shared across phases so a stop reports the solve's total
   pivot count. Deadline checks are amortized: every 64 pivots. *)
let charge ?budget ~iters () =
  if !iters > max_iters then raise (Stop_exc Iteration_limit);
  match budget with
  | None -> ()
  | Some b ->
      if not (B.take_iter b) then raise (Stop_exc Iteration_limit);
      if !iters land 63 = 0 && B.out_of_time b then raise (Stop_exc Deadline)

let optimize ?budget ~iters ~bland_acts ~c t =
  t.y_valid <- false;
  t.ncand <- 0;
  let stall = ref 0 in
  let was_bland = ref false in
  let continue_ = ref true in
  while !continue_ do
    charge ?budget ~iters ();
    let bland = !stall > 2 * (t.m + t.n) in
    if bland <> !was_bland then begin
      if bland then incr bland_acts;
      was_bland := bland
    end;
    match entering t ~c ~bland with
    | None -> continue_ := false
    | Some (col, r) ->
        let step = primal_step t ~col in
        incr iters;
        (* objective moved by r·step; exact enough for stall detection,
           and the final objective is recomputed from scratch anyway *)
        if r *. step > tol then stall := 0 else incr stall
  done

let snap_of t ~art_neg =
  {
    s_nv = t.nv;
    s_m = t.m;
    s_basis = Array.copy t.basis;
    s_at_upper = Array.init t.n (fun j -> t.status.(j) = Vupper);
    s_art_neg = Array.copy art_neg;
  }

let extract_solution t ~sign ~c2 =
  let values = Array.make t.nv 0. in
  for j = 0 to t.nv - 1 do
    match t.status.(j) with
    | Vlower -> values.(j) <- t.lo.(j)
    | Vupper -> values.(j) <- t.hi.(j)
    | Vbasic -> ()
  done;
  for i = 0 to t.m - 1 do
    if t.basis.(i) < t.nv then values.(t.basis.(i)) <- t.xb.(i)
  done;
  (* snap values resting within tolerance of a bound onto it *)
  for j = 0 to t.nv - 1 do
    let v = values.(j) in
    let v = if Float.abs (v -. t.lo.(j)) <= tol then t.lo.(j) else v in
    let v =
      if Float.is_finite t.hi.(j) && Float.abs (v -. t.hi.(j)) <= tol then
        t.hi.(j)
      else v
    in
    values.(j) <- v
  done;
  { objective_value = sign *. objective_of t c2; values }

let flush_factor_stats t =
  Counter.add c_refact t.refacts;
  Counter.add c_eta_len t.eta_entries;
  if t.obs_time then begin
    Counter.add c_ftran_ns t.ftran_ns;
    Counter.add c_btran_ns t.btran_ns
  end

(* ---- Cold two-phase solve. [p] must already be validated/normalized.
   Returns the outcome and, on Optimal, a basis snapshot. ---- *)
let cold_solve ?budget ?bounds p =
  let bld = build ?bounds p in
  let m = bld.b_m and nv = p.n_vars in
  if domain_empty bld nv then (Infeasible, None)
  else begin
    let art_start = bld.b_art_start in
    let exception Cold_numeric of string in
    let t =
      make_rsm ~fail:(fun msg -> Cold_numeric msg)
        ~obs_time:(Pc_obs.Registry.enabled ()) ~nv bld
    in
    let art_neg = Array.make m false in
    (* Initial basis: structurals at their lower bounds; each row gets its
       slack when the residual sign permits, otherwise a residual-signed
       artificial whose sign is stamped into the CSC singleton. *)
    let resid = Array.copy bld.b_rhs in
    for j = 0 to nv - 1 do
      let l = bld.b_lo.(j) in
      if l <> 0. then
        for s = bld.b_colp.(j) to bld.b_colp.(j + 1) - 1 do
          resid.(bld.b_rowi.(s)) <- resid.(bld.b_rowi.(s)) -. (bld.b_vals.(s) *. l)
        done
    done;
    for i = 0 to m - 1 do
      let r = resid.(i) in
      let art_basic neg =
        art_neg.(i) <- neg;
        t.basis.(i) <- bld.b_art_col.(i)
      in
      match bld.b_ops.(i) with
      | Le -> if r >= 0. then t.basis.(i) <- bld.b_slack_col.(i) else art_basic true
      | Ge -> if r <= 0. then t.basis.(i) <- bld.b_slack_col.(i) else art_basic false
      | Eq -> art_basic (r < 0.)
    done;
    for i = 0 to m - 1 do
      let ac = bld.b_art_col.(i) in
      t.avals.(bld.b_colp.(ac)) <- (if art_neg.(i) then -1. else 1.);
      t.banned.(ac) <- true
    done;
    for i = 0 to m - 1 do
      t.status.(t.basis.(i)) <- Vbasic
    done;
    let iters = ref 0 in
    let bland_acts = ref 0 in
    let stopped reason ~best_objective =
      Stopped { reason; best_objective; iterations = !iters }
    in
    let result =
      try
        (* all-singleton initial basis: the refactorization is m trivial
           etas, and it computes the initial xb from the residuals *)
        refactor_now t;
        let art_sum () =
          let s = ref 0. in
          for i = 0 to m - 1 do
            if t.basis.(i) >= art_start then s := !s +. Float.abs t.xb.(i)
          done;
          !s
        in
        let phase1_failed = ref false in
        let phase1_stopped = ref None in
        if art_sum () > tol then begin
          let c1 = Array.make t.n 0. in
          for i = 0 to m - 1 do
            c1.(bld.b_art_col.(i)) <- -1.
          done;
          (* Artificials may leave the basis but never re-enter: once
             phase 1 drives one to zero it stays there, and if the
             problem is feasible a point with every artificial at zero
             exists, so the restriction cannot produce a false
             Infeasible. *)
          try optimize ?budget ~iters ~bland_acts ~c:c1 t with
          | Unbounded_exc ->
              (* Invariant: the phase-1 objective -(Σ artificials) is
                 bounded above by 0, so an unbounded ray is impossible by
                 construction. If float drift ever manufactures one, no
                 feasible basis was certified either way — degrade to
                 Infeasible (the caller-safe answer for "phase 1 did not
                 produce a feasible basis") instead of killing the
                 caller. *)
              phase1_failed := true
          | Stop_exc reason -> phase1_stopped := Some reason
        end;
        if !phase1_stopped = None && not !phase1_failed then begin
          if art_sum () > tol *. 10. then phase1_failed := true
          else begin
            (* Drive out artificials still basic at zero with a degenerate
               exchange (nothing moves; the entering variable becomes
               basic at its current bound value), then pin every
               artificial to [0, 0] — phase 1 certified a feasible point
               with all of them at zero. *)
            for i = 0 to m - 1 do
              if t.basis.(i) >= art_start then begin
                load_btran_row t i;
                let found = ref (-1) in
                let j = ref 0 in
                while !found = -1 && !j < art_start do
                  (if t.status.(!j) <> Vbasic && not (fixed t !j) then
                     let alpha =
                       V.dot_sparse t.rho ~idx:t.rowi ~vals:t.avals
                         ~lo:t.colp.(!j) ~hi:t.colp.(!j + 1)
                     in
                     if Float.abs alpha > tol then found := !j);
                  incr j
                done;
                if !found >= 0 then begin
                  let col = !found in
                  let v = nb_value t col in
                  load_ftran t col;
                  t.status.(t.basis.(i)) <- Vlower;
                  t.status.(col) <- Vbasic;
                  t.basis.(i) <- col;
                  t.xb.(i) <- v;
                  ef_append t.ef (eta_of_w t ~row:i);
                  t.y_valid <- false;
                  maybe_refactor t
                end
                (* else: redundant row, harmless to keep with the
                   artificial at 0 *)
              end
            done;
            for i = 0 to m - 1 do
              let aj = bld.b_art_col.(i) in
              t.lo.(aj) <- 0.;
              t.hi.(aj) <- 0.
            done
          end
        end;
        let phase1_iters = !iters in
        let result =
          match !phase1_stopped with
          | Some reason -> (stopped reason ~best_objective:None, None)
          | None ->
              if !phase1_failed then (Infeasible, None)
              else begin
                (* ---- Phase 2: real objective, as maximization. ---- *)
                let sign = if p.maximize then 1. else -1. in
                let c2 = Array.make t.n 0. in
                List.iter
                  (fun (j, v) -> c2.(j) <- c2.(j) +. (sign *. v))
                  p.objective;
                Array.fill t.dw 0 t.n 1.;
                match optimize ?budget ~iters ~bland_acts ~c:c2 t with
                | exception Unbounded_exc -> (Unbounded, None)
                | exception Stop_exc reason ->
                    (* The iterate is primal-feasible throughout phase 2,
                       so the current objective is the value of a genuine
                       feasible point (a primal bound), reported as the
                       best-so-far. *)
                    ( stopped reason
                        ~best_objective:(Some (sign *. objective_of t c2)),
                      None )
                | () -> (
                    let sol = extract_solution t ~sign ~c2 in
                    let vlo = Array.sub t.lo 0 nv
                    and vhi = Array.sub t.hi 0 nv in
                    match check_solution_arrays ~vlo ~vhi p sol with
                    | Ok () -> (Optimal sol, Some (snap_of t ~art_neg))
                    | Error msg ->
                        (* A drifted factorization's answer must not
                           escape into a hard bound; report distrust and
                           let the caller degrade. *)
                        (stopped (Numeric msg) ~best_objective:None, None))
              end
        in
        Counter.add c_phase1_pivots phase1_iters;
        result
      with
      | Cold_numeric msg ->
          (stopped (Numeric msg) ~best_objective:None, None)
      | Stop_exc reason -> (stopped reason ~best_objective:None, None)
    in
    Counter.incr c_solves;
    Counter.add c_pivots !iters;
    Counter.add c_bland !bland_acts;
    flush_factor_stats t;
    result
  end

(* ---- Warm re-solve from a basis snapshot under new bounds. ---- *)

exception Fallback of string

(* Past this many dual pivots something is off (cycling on a degenerate
   basis, or a bound change far too large for a warm start to pay off) —
   hand the problem to the cold path rather than grind on. *)
let warm_cap m n = Stdlib.max 64 (4 * (m + n))

let warm_solve ?budget ~snapshot ~bounds p =
  let bld = build ~bounds p in
  let m = bld.b_m and n = bld.b_n and nv = p.n_vars in
  if snapshot.s_nv <> nv || snapshot.s_m <> m
     || Array.length snapshot.s_at_upper <> n
  then None (* shape mismatch: the snapshot is from another problem *)
  else if domain_empty bld nv then Some (Infeasible, None)
  else begin
    let iters = ref 0 in
    let dual_pivs = ref 0 in
    let bland_acts = ref 0 in
    let t =
      make_rsm ~fail:(fun msg -> Fallback msg)
        ~obs_time:(Pc_obs.Registry.enabled ()) ~nv bld
    in
    let flush () =
      Counter.add c_pivots !iters;
      Counter.add c_dual_pivots !dual_pivs;
      Counter.add c_bland !bland_acts;
      flush_factor_stats t
    in
    try
      for i = 0 to m - 1 do
        let ac = bld.b_art_col.(i) in
        t.avals.(bld.b_colp.(ac)) <-
          (if snapshot.s_art_neg.(i) then -1. else 1.);
        t.banned.(ac) <- true;
        (* artificials were pinned by the originating solve's phase 1 *)
        t.lo.(ac) <- 0.;
        t.hi.(ac) <- 0.
      done;
      for i = 0 to m - 1 do
        let c = snapshot.s_basis.(i) in
        if c < 0 || c >= n then raise (Fallback "snapshot column out of range");
        t.basis.(i) <- c
      done;
      for i = 0 to m - 1 do
        t.status.(t.basis.(i)) <- Vbasic
      done;
      for j = 0 to n - 1 do
        if
          t.status.(j) <> Vbasic
          && snapshot.s_at_upper.(j)
          && Float.is_finite t.hi.(j)
        then t.status.(j) <- Vupper
      done;
      (* Factorize the snapshot basis — the sparse replacement for the
         old dense Gauss–Jordan restore. A singular set means the basis
         is unusable here: fall back. This also computes xb under the
         new bounds. *)
      refactor_now t;
      let sign = if p.maximize then 1. else -1. in
      let c2 = Array.make t.n 0. in
      List.iter (fun (j, v) -> c2.(j) <- c2.(j) +. (sign *. v)) p.objective;
      ensure_y t ~c:c2;
      (* Dual-feasibility repair: reduced costs depend only on the basis,
         so after a pure bound change the snapshot statuses are already
         dual-feasible — unless a status refers to a bound that no longer
         supports it, in which case flipping to the other (finite) bound
         restores the sign condition. An unflippable violation means the
         warm basis is not dual-usable: fall back. *)
      for j = 0 to n - 1 do
        if eligible t j then begin
          let r = rcost t ~c:c2 j in
          match t.status.(j) with
          | Vlower when r > tol ->
              if Float.is_finite t.hi.(j) then begin
                let d = t.hi.(j) -. t.lo.(j) in
                load_ftran t j;
                V.iter_nz t.w (fun i wv -> t.xb.(i) <- t.xb.(i) -. (wv *. d));
                t.status.(j) <- Vupper
              end
              else raise (Fallback "dual-infeasible restored statuses")
          | Vupper when r < -.tol ->
              let d = t.lo.(j) -. t.hi.(j) in
              load_ftran t j;
              V.iter_nz t.w (fun i wv -> t.xb.(i) <- t.xb.(i) -. (wv *. d));
              t.status.(j) <- Vlower
          | _ -> ()
        end
      done;
      (* ---- Dual simplex: drive out-of-bounds basic variables back into
         their boxes while keeping the reduced costs dual-feasible. ---- *)
      let cap = warm_cap m n in
      let infeasible = ref false in
      let stopped_reason = ref None in
      (try
         let continue_ = ref true in
         while !continue_ do
           let r = ref (-1) and worst = ref tol in
           for i = 0 to m - 1 do
             let b = t.basis.(i) in
             let v = Float.max (t.lo.(b) -. t.xb.(i)) (t.xb.(i) -. t.hi.(b)) in
             if v > !worst then begin
               r := i;
               worst := v
             end
           done;
           if !r = -1 then continue_ := false
           else begin
             if !dual_pivs >= cap then raise (Fallback "dual pivot cap");
             charge ?budget ~iters ();
             let row = !r in
             let b = t.basis.(row) in
             let below = t.xb.(row) < t.lo.(b) in
             ensure_y t ~c:c2;
             load_btran_row t row;
             (* Entering candidate: a nonbasic that can move x_B(row)
                back toward the violated bound; min-ratio |r_j| /
                |alpha_j| keeps dual feasibility. No candidate certifies
                primal infeasibility: x_B(row) is already extremal over
                every movable nonbasic. *)
             let best = ref (-1)
             and best_ratio = ref infinity
             and best_alpha = ref 0. in
             for j = 0 to n - 1 do
               if eligible t j then begin
                 let alpha =
                   V.dot_sparse t.rho ~idx:t.rowi ~vals:t.avals
                     ~lo:t.colp.(j) ~hi:t.colp.(j + 1)
                 in
                 let adm =
                   match t.status.(j) with
                   | Vlower -> if below then alpha < -.tol else alpha > tol
                   | Vupper -> if below then alpha > tol else alpha < -.tol
                   | Vbasic -> false
                 in
                 if adm then begin
                   let rj = rcost t ~c:c2 j in
                   let ratio = Float.abs rj /. Float.abs alpha in
                   if ratio < !best_ratio -. 1e-12 then begin
                     best := j;
                     best_ratio := ratio;
                     best_alpha := alpha
                   end
                 end
               end
             done;
             if !best = -1 then begin
               infeasible := true;
               continue_ := false
             end
             else begin
               let col = !best in
               let target = if below then t.lo.(b) else t.hi.(b) in
               load_ftran t col;
               (* the FTRAN'd pivot element; equals rho·a_col up to
                  roundoff, and the eta is built from this vector *)
               let piv = V.uget t.w row in
               let piv = if piv = 0. then !best_alpha else piv in
               let delta = (t.xb.(row) -. target) /. piv in
               let enter_val = nb_value t col +. delta in
               V.iter_nz t.w (fun i wv ->
                   if i <> row then t.xb.(i) <- t.xb.(i) -. (wv *. delta));
               t.status.(b) <- (if below then Vlower else Vupper);
               t.status.(col) <- Vbasic;
               t.basis.(row) <- col;
               t.xb.(row) <- enter_val;
               ef_append t.ef (eta_of_w t ~row);
               t.y_valid <- false;
               incr iters;
               incr dual_pivs;
               maybe_refactor t
             end
           end
         done
       with Stop_exc reason -> stopped_reason := Some reason);
      let result =
        match !stopped_reason with
        | Some reason ->
            (* starved mid-repair: primal infeasible, so no best-so-far *)
            (Stopped { reason; best_objective = None; iterations = !iters }, None)
        | None ->
            if !infeasible then (Infeasible, None)
            else begin
              (* primal cleanup: usually zero pivots — dual-feasible and
                 primal-feasible together mean optimal *)
              match optimize ?budget ~iters ~bland_acts ~c:c2 t with
              | exception Unbounded_exc ->
                  (* a bound tightening cannot unbound a bounded parent;
                     treat as numeric trouble *)
                  raise (Fallback "warm path reported unbounded")
              | exception Stop_exc reason ->
                  ( Stopped
                      {
                        reason;
                        best_objective = Some (sign *. objective_of t c2);
                        iterations = !iters;
                      },
                    None )
              | () -> (
                  let sol = extract_solution t ~sign ~c2 in
                  let vlo = Array.sub t.lo 0 nv
                  and vhi = Array.sub t.hi 0 nv in
                  match check_solution_arrays ~vlo ~vhi p sol with
                  | Ok () ->
                      (Optimal sol, Some (snap_of t ~art_neg:snapshot.s_art_neg))
                  | Error msg -> raise (Fallback msg))
            end
      in
      Counter.incr c_solves;
      flush ();
      Some result
    with Fallback _ ->
      flush ();
      None
  end

(* ---- Entry points. ---- *)

let solve_run ?budget ?bounds p =
  validate p;
  cold_solve ?budget ?bounds (normalize p)

let solve_from_run ?budget ~snapshot ~bounds p =
  validate p;
  Counter.incr c_warm;
  let p = normalize p in
  (* Fault injection: distrust the warm basis outright, as a failed
     post-solve self-check would, and take the cold fallback. The
     fallback is the soundness story for every real numeric doubt, so
     chaos runs exercise precisely the path they must prove. *)
  let doubt =
    Pc_fault.Fault.enabled () && Pc_fault.Fault.fire Pc_fault.Fault.Lp_doubt
  in
  match (if doubt then None else warm_solve ?budget ~snapshot ~bounds p) with
  | Some result -> result
  | None ->
      Counter.incr c_warm_fb;
      cold_solve ?budget ~bounds p

(* Span + latency histogram around the solve, kept out of the plain entry
   points so the disabled path is a single atomic load and a branch. *)
let observed f =
  let run () =
    let t0 = Pc_util.Clock.now_ns () in
    let r = f () in
    Pc_obs.Registry.Histogram.observe_ns h_solve
      (Int64.to_float (Int64.sub (Pc_util.Clock.now_ns ()) t0));
    r
  in
  if Pc_obs.Trace.enabled () then Pc_obs.Trace.with_span ~name:"lp.solve" run
  else run ()

let maybe_observed f =
  if Pc_obs.Trace.enabled () || Pc_obs.Registry.enabled () then observed f
  else f ()

let solve ?budget p = fst (maybe_observed (fun () -> solve_run ?budget p))

let solve_snapshot ?budget ?bounds p =
  maybe_observed (fun () -> solve_run ?budget ?bounds p)

let solve_from ?budget ~snapshot ~bounds p =
  maybe_observed (fun () -> solve_from_run ?budget ~snapshot ~bounds p)

let feasible ?budget p =
  match solve ?budget { p with objective = []; maximize = true } with
  | Optimal _ -> true
  | Infeasible -> false
  | Unbounded | Stopped _ -> true
