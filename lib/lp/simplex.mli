(** Sparse revised bounded-variable primal simplex over floats, with a
    factorized basis and a dual-simplex warm start.

    Solves [max/min c^T x] subject to linear constraints and box bounds
    [lo_j <= x_j <= hi_j]; the implicit domain is [x >= 0], so per-variable
    bounds from {!problem.var_bounds} are intersected with [[0, +inf)].
    Phase 1 finds a basic feasible solution with artificial variables;
    phase 2 optimizes the real objective. Nonbasic variables rest at
    either bound, and a pivot can be a pure bound flip, so box constraints
    cost no tableau rows.

    Internally the problem columns are stored CSC and the basis inverse is
    a product-form eta file: each exchange appends one eta, and after
    {!refactor_interval} appended etas the file is rebuilt from the basis
    columns (which also recomputes the basic values, washing out float
    drift). FTRAN/BTRAN run over Bigarray-backed work vectors
    ({!Pc_util.Fvec}). Pricing is devex over a maintained candidate list,
    with a switch to Bland's rule after a stall, which guarantees
    termination. The pre-rework dense tableau survives as
    {!Dense_tableau}, the oracle the rewrite is property-tested against
    (see DESIGN.md, "Sparse revised simplex & basis factorization").

    {!solve_snapshot} additionally returns an opaque basis {!snapshot};
    {!solve_from} refactorizes such a snapshot's basis under {e different}
    variable bounds, repairs dual feasibility, and re-optimizes with
    dual-simplex pivots — the hot path for branch-and-bound, where a child
    differs from its parent by a single tightened bound. The warm path
    falls back to a cold solve on any numeric trouble (singular basis,
    unrepairable statuses, pivot-cap overrun, failed self-check):
    soundness is never entrusted to the warm start alone.

    Tolerances come from {!Pc_util.Float_eps}; this is a float code and its
    answers are exact only up to those tolerances (see DESIGN.md).

    The solver never raises on resource pressure: hitting the iteration
    cap, a budget limit, or a failed post-solve self-check yields a
    structured {!Stopped} outcome that callers degrade on (see DESIGN.md,
    "Degradation ladder & budgets"). *)

type relop = Le | Ge | Eq

type constr = { coeffs : (int * float) list; op : relop; rhs : float }
(** Sparse row: [coeffs] pairs a variable index with its coefficient.
    Variable indices must be in [0, n_vars). Duplicate indices are
    canonicalized (summed once) at solve time, so
    [c_le [(0, 1.); (0, 1.)] 1.] means [2 x0 <= 1]. *)

type problem = {
  n_vars : int;
  maximize : bool;
  objective : (int * float) list;  (** sparse; omitted indices are 0 *)
  constraints : constr list;
  var_bounds : (int * float * float) list;
      (** sparse [(j, lo, hi)] box bounds, intersected with the implicit
          [x_j >= 0] domain (and with each other when [j] repeats); [[]]
          leaves every variable at [[0, +inf)]. An empty box
          ([lo > hi] after intersection) makes the problem [Infeasible] —
          not an error. *)
}

type solution = { objective_value : float; values : float array }

type stop_reason =
  | Iteration_limit  (** pivot cap (internal 1e6 or the budget's) hit *)
  | Deadline  (** the budget's wall-clock deadline passed *)
  | Numeric of string
      (** the post-solve self-check found residuals beyond tolerance: the
          tableau drifted and the "optimal" point cannot be trusted *)

type stop = {
  reason : stop_reason;
  best_objective : float option;
      (** objective value of the last feasible iterate when the solver
          stopped in phase 2 — a valid {e primal} value (a feasible
          point's objective, i.e. a lower bound when maximizing), never a
          bound on the optimum from the other side; [None] when the stop
          happened before feasibility was established *)
  iterations : int;
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Stopped of stop  (** resource exhaustion or numeric distrust *)

type snapshot
(** Compact basis snapshot: the final basic column set, the at-upper flags
    of the nonbasic columns, and the artificial column signs — everything
    needed to refactorize the basis under new bounds. Constant-size per
    problem shape; holds no factorization state. *)

val refactor_interval : int
(** Appended-eta budget between refactorizations: once a factorization has
    accumulated this many eta updates since it was last rebuilt, the next
    pivot triggers a rebuild (counted in [lp.refactorizations]). Exposed
    so tests can construct solves guaranteed to cross the threshold. *)

val solve : ?budget:Pc_budget.Budget.t -> problem -> outcome
(** Cold two-phase solve. Raises [Invalid_argument] on malformed input
    (bad indices, non-finite coefficients, NaN bounds) — caller bugs, not
    hard instances. Resource pressure is reported as [Stopped], never an
    exception. Every [Optimal] outcome has passed {!check_solution}. *)

val solve_snapshot :
  ?budget:Pc_budget.Budget.t ->
  ?bounds:float array * float array ->
  problem ->
  outcome * snapshot option
(** Like {!solve}, additionally returning a basis snapshot on [Optimal]
    (and [None] otherwise). [bounds = (lo, hi)], dense of length [n_vars],
    {e replaces} [problem.var_bounds] when given — the caller owns the
    box. *)

val solve_from :
  ?budget:Pc_budget.Budget.t ->
  snapshot:snapshot ->
  bounds:float array * float array ->
  problem ->
  outcome * snapshot option
(** Warm re-solve: restore [snapshot]'s basis for [problem] under the new
    [bounds], repair dual feasibility, and re-optimize with dual-simplex
    pivots. The problem's rows and objective must be those the snapshot
    came from; only the variable bounds may differ. Falls back to a cold
    {!solve_snapshot} internally on shape mismatch or numeric trouble
    (counted in [lp.warm_fallbacks]), so the outcome is always as
    trustworthy as a cold solve. *)

val check_solution : problem -> solution -> (unit, string) result
(** Post-solve self-check: every constraint satisfied, every variable
    within its box, and the objective consistent with a recomputation from
    [values], within {!Pc_util.Float_eps} tolerances scaled by row
    magnitude. [solve] runs this on every optimal answer and degrades to
    [Stopped (Numeric _)] when it fails. *)

val feasible : ?budget:Pc_budget.Budget.t -> problem -> bool
(** Phase-1 feasibility only. A [Stopped] phase 1 answers [true]
    (unknown treated as feasible — the direction that can only loosen a
    bound built on it). *)

(** Constraint construction helpers. *)

val c_le : (int * float) list -> float -> constr
val c_ge : (int * float) list -> float -> constr
val c_eq : (int * float) list -> float -> constr
