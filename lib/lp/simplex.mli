(** Dense two-phase primal simplex over floats.

    Solves [max/min c^T x] subject to linear constraints and [x >= 0].
    Phase 1 finds a basic feasible solution with artificial variables;
    phase 2 optimizes the real objective. Pricing is Dantzig's rule with a
    switch to Bland's rule after a stall, which guarantees termination.

    Tolerances come from {!Pc_util.Float_eps}; this is a float code and its
    answers are exact only up to those tolerances (see DESIGN.md). Problem
    sizes in this library are at most a few thousand variables/constraints,
    well within dense-tableau territory. *)

type relop = Le | Ge | Eq

type constr = { coeffs : (int * float) list; op : relop; rhs : float }
(** Sparse row: [coeffs] pairs a variable index with its coefficient.
    Variable indices must be in [0, n_vars). *)

type problem = {
  n_vars : int;
  maximize : bool;
  objective : (int * float) list;  (** sparse; omitted indices are 0 *)
  constraints : constr list;
}

type solution = { objective_value : float; values : float array }

type outcome = Optimal of solution | Infeasible | Unbounded

val solve : problem -> outcome
(** Raises [Invalid_argument] on malformed input (bad indices, non-finite
    coefficients) and [Failure] if the iteration cap (1e6) is hit, which
    indicates a bug rather than a hard instance at our sizes. *)

val feasible : problem -> bool
(** Phase-1 feasibility only. *)

(** Constraint construction helpers. *)

val c_le : (int * float) list -> float -> constr
val c_ge : (int * float) list -> float -> constr
val c_eq : (int * float) list -> float -> constr
