(** Dense two-phase primal simplex over floats.

    Solves [max/min c^T x] subject to linear constraints and [x >= 0].
    Phase 1 finds a basic feasible solution with artificial variables;
    phase 2 optimizes the real objective. Pricing is Dantzig's rule with a
    switch to Bland's rule after a stall, which guarantees termination.

    Tolerances come from {!Pc_util.Float_eps}; this is a float code and its
    answers are exact only up to those tolerances (see DESIGN.md). Problem
    sizes in this library are at most a few thousand variables/constraints,
    well within dense-tableau territory.

    The solver never raises on resource pressure: hitting the iteration
    cap, a budget limit, or a failed post-solve self-check yields a
    structured {!Stopped} outcome that callers degrade on (see DESIGN.md,
    "Degradation ladder & budgets"). *)

type relop = Le | Ge | Eq

type constr = { coeffs : (int * float) list; op : relop; rhs : float }
(** Sparse row: [coeffs] pairs a variable index with its coefficient.
    Variable indices must be in [0, n_vars). *)

type problem = {
  n_vars : int;
  maximize : bool;
  objective : (int * float) list;  (** sparse; omitted indices are 0 *)
  constraints : constr list;
}

type solution = { objective_value : float; values : float array }

type stop_reason =
  | Iteration_limit  (** pivot cap (internal 1e6 or the budget's) hit *)
  | Deadline  (** the budget's wall-clock deadline passed *)
  | Numeric of string
      (** the post-solve self-check found residuals beyond tolerance: the
          tableau drifted and the "optimal" point cannot be trusted *)

type stop = {
  reason : stop_reason;
  best_objective : float option;
      (** objective value of the last feasible iterate when the solver
          stopped in phase 2 — a valid {e primal} value (a feasible
          point's objective, i.e. a lower bound when maximizing), never a
          bound on the optimum from the other side; [None] when the stop
          happened before feasibility was established *)
  iterations : int;
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Stopped of stop  (** resource exhaustion or numeric distrust *)

val solve : ?budget:Pc_budget.Budget.t -> problem -> outcome
(** Raises [Invalid_argument] on malformed input (bad indices, non-finite
    coefficients) — caller bugs, not hard instances. Resource pressure is
    reported as [Stopped], never an exception. Every [Optimal] outcome has
    passed {!check_solution}. *)

val check_solution : problem -> solution -> (unit, string) result
(** Post-solve self-check: every constraint satisfied and the objective
    consistent with a recomputation from [values], within
    {!Pc_util.Float_eps} tolerances scaled by row magnitude. [solve] runs
    this on every optimal answer and degrades to [Stopped (Numeric _)]
    when it fails. *)

val feasible : ?budget:Pc_budget.Budget.t -> problem -> bool
(** Phase-1 feasibility only. A [Stopped] phase 1 answers [true]
    (unknown treated as feasible — the direction that can only loosen a
    bound built on it). *)

(** Constraint construction helpers. *)

val c_le : (int * float) list -> float -> constr
val c_ge : (int * float) list -> float -> constr
val c_eq : (int * float) list -> float -> constr
