module S = Pc_lp.Simplex
module F = Pc_util.Float_eps
module B = Pc_budget.Budget
module Counter = Pc_obs.Registry.Counter
module Trace = Pc_obs.Trace

let c_solves = Counter.make "milp.solves"
let c_nodes = Counter.make "milp.nodes"
let c_incumbents = Counter.make "milp.incumbent_updates"
let h_node = Pc_obs.Registry.Histogram.make "milp.node.ns"

type result = {
  bound : float;
  incumbent : S.solution option;
  exact : bool;
  truncated : bool;
  nodes : int;
}

type outcome = Optimal of result | Infeasible | Unbounded | Stopped of S.stop

let int_tol = 1e-6

(* A node is a box of variable bounds (the branching decisions on the path
   from the root, folded into per-variable [lo, hi]) plus the parent's
   final basis snapshot, which warm-starts the children: branching adds no
   constraint rows, so every node's LP has the root's shape. *)
type node = {
  lo : float array;
  hi : float array;
  snap : S.snapshot;
  relax : S.solution;
}

let most_fractional integrality values =
  let best = ref (-1) and best_frac = ref int_tol in
  Array.iteri
    (fun j v ->
      if integrality j then begin
        let frac = Float.abs (v -. Float.round v) in
        if frac > !best_frac then begin
          best := j;
          best_frac := frac
        end
      end)
    values;
  if !best = -1 then None else Some !best

let solve_run ?budget ~node_limit ~integrality ~warm problem =
  let sign = if problem.S.maximize then 1. else -1. in
  let inc_updates = ref 0 in
  let total_nodes = ref 0 in
  let flush outcome =
    Counter.incr c_solves;
    Counter.add c_nodes !total_nodes;
    Counter.add c_incumbents !inc_updates;
    outcome
  in
  (* Internally treat everything as maximization of sign * objective by
     comparing signed values. *)
  let better a b = sign *. a > sign *. b in
  let nv = problem.S.n_vars in
  let root_lo = Array.make nv 0. and root_hi = Array.make nv infinity in
  List.iter
    (fun (j, l, h) ->
      root_lo.(j) <- Float.max root_lo.(j) l;
      root_hi.(j) <- Float.min root_hi.(j) h)
    problem.S.var_bounds;
  let solve_child snap lo hi =
    if warm then S.solve_from ?budget ~snapshot:snap ~bounds:(lo, hi) problem
    else S.solve_snapshot ?budget ~bounds:(lo, hi) problem
  in
  match S.solve_snapshot ?budget ~bounds:(root_lo, root_hi) problem with
  | S.Infeasible, _ -> flush Infeasible
  | S.Unbounded, _ -> flush Unbounded
  | S.Stopped stop, _ -> flush (Stopped stop)
  | S.Optimal _, None -> assert false (* Optimal always carries a snapshot *)
  | S.Optimal root, Some root_snap ->
      let open_nodes : node Pc_util.Heap.t = Pc_util.Heap.create () in
      Pc_util.Heap.push open_nodes (sign *. root.S.objective_value)
        { lo = root_lo; hi = root_hi; snap = root_snap; relax = root };
      let incumbent = ref None in
      let incumbent_val = ref neg_infinity (* signed value *) in
      let nodes = total_nodes in
      let stopped_early = ref false in
      let continue_ = ref true in
      let budget_starved () =
        match budget with
        | None -> false
        | Some b -> B.is_dead b || B.out_of_time b
      in
      let take_budget_node () =
        match budget with None -> true | Some b -> B.take_node b
      in
      let observe = Pc_obs.Registry.enabled () in
      while !continue_ do
        match Pc_util.Heap.pop open_nodes with
        | None -> continue_ := false
        | Some (signed_bound, node) ->
            if signed_bound <= !incumbent_val +. int_tol then
              (* Best-first: every remaining node is no better. *)
              continue_ := false
            else if
              !nodes >= node_limit || budget_starved ()
              || not (take_budget_node ())
            then begin
              stopped_early := true;
              (* put it back so the dual bound accounts for it *)
              Pc_util.Heap.push open_nodes signed_bound node;
              continue_ := false
            end
            else begin
              incr nodes;
              let t0 = if observe then Pc_util.Clock.now_ns () else 0L in
              (match most_fractional integrality node.relax.S.values with
              | None ->
                  (* Integral: candidate incumbent. *)
                  if better node.relax.S.objective_value (sign *. !incumbent_val)
                  then begin
                    incumbent := Some node.relax;
                    incumbent_val := sign *. node.relax.S.objective_value;
                    incr inc_updates;
                    (* zero-length marker span: shows incumbent arrival
                       times on the trace timeline *)
                    if Trace.enabled () then
                      Trace.with_span ~name:"milp.incumbent"
                        ~attrs:
                          [
                            ( "objective",
                              Printf.sprintf "%g"
                                node.relax.S.objective_value );
                          ]
                        (fun () -> ())
                  end
              | Some j ->
                  let v = node.relax.S.values.(j) in
                  let fl = Float.floor v in
                  (* Branching is pure bound tightening: x_j <= fl on one
                     side, x_j >= fl + 1 on the other. *)
                  List.iter
                    (fun up ->
                      let lo = Array.copy node.lo and hi = Array.copy node.hi in
                      if up then lo.(j) <- Float.max lo.(j) (fl +. 1.)
                      else hi.(j) <- Float.min hi.(j) fl;
                      if lo.(j) > hi.(j) then () (* empty box: no child LP *)
                      else
                        match solve_child node.snap lo hi with
                        | S.Infeasible, _ -> ()
                        | (S.Unbounded | S.Stopped _), _ ->
                            (* Unbounded cannot happen if the root is
                               bounded; a Stopped child gives no bound of
                               its own. Either way, re-cover the subtree at
                               the parent's (sound) bound and truncate the
                               search — repeatedly re-solving a starved or
                               pathological child would loop. *)
                            Pc_util.Heap.push open_nodes signed_bound
                              { lo; hi; snap = node.snap; relax = node.relax };
                            stopped_early := true;
                            continue_ := false
                        | S.Optimal sol, Some snap ->
                            let sb = sign *. sol.S.objective_value in
                            if sb > !incumbent_val +. int_tol then
                              Pc_util.Heap.push open_nodes sb
                                { lo; hi; snap; relax = sol }
                        | S.Optimal _, None -> assert false)
                    [ false; true ]);
              if observe then
                Pc_obs.Registry.Histogram.observe_ns h_node
                  (Int64.to_float
                     (Int64.sub (Pc_util.Clock.now_ns ()) t0))
            end
      done;
      let open_bound =
        match Pc_util.Heap.peek_priority open_nodes with
        | Some p when !stopped_early -> Some p
        | _ -> None
      in
      let signed_final =
        match open_bound with
        | Some p -> Float.max p !incumbent_val
        | None -> !incumbent_val
      in
      if !incumbent = None && open_bound = None then
        (* No integral solution exists (e.g. constraints force a
           fractional-only region). *)
        flush Infeasible
      else begin
        let bound =
          if signed_final = neg_infinity then nan else sign *. signed_final
        in
        let exact =
          match (!incumbent, open_bound) with
          | Some inc, None ->
              F.approx_eq ~eps:1e-6 inc.S.objective_value bound
          | Some _, Some _ | None, _ -> false
        in
        flush
          (Optimal
             {
               bound;
               incumbent = !incumbent;
               exact;
               truncated = !stopped_early;
               nodes = !nodes;
             })
      end

(* Relative optimality gap at exit, for the trace attribute. *)
let gap_string r =
  match r.incumbent with
  | Some inc when Float.is_finite r.bound ->
      let g =
        Float.abs (r.bound -. inc.S.objective_value)
        /. Float.max 1. (Float.abs r.bound)
      in
      Printf.sprintf "%.3g" g
  | _ -> "inf"

let solve ?budget ?(node_limit = 10_000) ?(integrality = fun _ -> true)
    ?(warm = true) problem =
  (* the branch keeps the disabled path closure-free *)
  if Trace.enabled () then
    Trace.with_span ~name:"milp.solve" (fun () ->
        let r = solve_run ?budget ~node_limit ~integrality ~warm problem in
        (match r with
        | Optimal res ->
            Trace.add_attr "nodes" (string_of_int res.nodes);
            Trace.add_attr "gap" (gap_string res)
        | Infeasible -> Trace.add_attr "outcome" "infeasible"
        | Unbounded -> Trace.add_attr "outcome" "unbounded"
        | Stopped _ -> Trace.add_attr "outcome" "stopped");
        r)
  else solve_run ?budget ~node_limit ~integrality ~warm problem
