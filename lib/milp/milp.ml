module S = Pc_lp.Simplex
module F = Pc_util.Float_eps
module B = Pc_budget.Budget
module Counter = Pc_obs.Registry.Counter
module Trace = Pc_obs.Trace

let c_solves = Counter.make "milp.solves"
let c_nodes = Counter.make "milp.nodes"
let c_incumbents = Counter.make "milp.incumbent_updates"

type result = {
  bound : float;
  incumbent : S.solution option;
  exact : bool;
  truncated : bool;
  nodes : int;
}

type outcome = Optimal of result | Infeasible | Unbounded | Stopped of S.stop

let int_tol = 1e-6

(* A node is the list of branching constraints accumulated on the path
   from the root. *)
type node = { extra : S.constr list; relax : S.solution }

let most_fractional integrality values =
  let best = ref (-1) and best_frac = ref int_tol in
  Array.iteri
    (fun j v ->
      if integrality j then begin
        let frac = Float.abs (v -. Float.round v) in
        if frac > !best_frac then begin
          best := j;
          best_frac := frac
        end
      end)
    values;
  if !best = -1 then None else Some !best

let solve_run ?budget ~node_limit ~integrality problem =
  let sign = if problem.S.maximize then 1. else -1. in
  let inc_updates = ref 0 in
  let total_nodes = ref 0 in
  let flush outcome =
    Counter.incr c_solves;
    Counter.add c_nodes !total_nodes;
    Counter.add c_incumbents !inc_updates;
    outcome
  in
  (* Internally treat everything as maximization of sign * objective by
     comparing signed values. *)
  let better a b = sign *. a > sign *. b in
  let solve_relax extra =
    S.solve ?budget { problem with S.constraints = problem.S.constraints @ extra }
  in
  match solve_relax [] with
  | S.Infeasible -> flush Infeasible
  | S.Unbounded -> flush Unbounded
  | S.Stopped stop -> flush (Stopped stop)
  | S.Optimal root ->
      let open_nodes : node Pc_util.Heap.t = Pc_util.Heap.create () in
      Pc_util.Heap.push open_nodes (sign *. root.S.objective_value)
        { extra = []; relax = root };
      let incumbent = ref None in
      let incumbent_val = ref neg_infinity (* signed value *) in
      let nodes = total_nodes in
      let stopped_early = ref false in
      let continue_ = ref true in
      let budget_starved () =
        match budget with
        | None -> false
        | Some b -> B.is_dead b || B.out_of_time b
      in
      let take_budget_node () =
        match budget with None -> true | Some b -> B.take_node b
      in
      while !continue_ do
        match Pc_util.Heap.pop open_nodes with
        | None -> continue_ := false
        | Some (signed_bound, node) ->
            if signed_bound <= !incumbent_val +. int_tol then
              (* Best-first: every remaining node is no better. *)
              continue_ := false
            else if
              !nodes >= node_limit || budget_starved ()
              || not (take_budget_node ())
            then begin
              stopped_early := true;
              (* put it back so the dual bound accounts for it *)
              Pc_util.Heap.push open_nodes signed_bound node;
              continue_ := false
            end
            else begin
              incr nodes;
              match most_fractional integrality node.relax.S.values with
              | None ->
                  (* Integral: candidate incumbent. *)
                  if better node.relax.S.objective_value (sign *. !incumbent_val)
                  then begin
                    incumbent := Some node.relax;
                    incumbent_val := sign *. node.relax.S.objective_value;
                    incr inc_updates;
                    (* zero-length marker span: shows incumbent arrival
                       times on the trace timeline *)
                    if Trace.enabled () then
                      Trace.with_span ~name:"milp.incumbent"
                        ~attrs:
                          [
                            ( "objective",
                              Printf.sprintf "%g"
                                node.relax.S.objective_value );
                          ]
                        (fun () -> ())
                  end
              | Some j ->
                  let v = node.relax.S.values.(j) in
                  let fl = Float.of_int (int_of_float (Float.floor v)) in
                  let branches =
                    [
                      S.c_le [ (j, 1.) ] fl;
                      S.c_ge [ (j, 1.) ] (fl +. 1.);
                    ]
                  in
                  List.iter
                    (fun bc ->
                      let extra = bc :: node.extra in
                      match solve_relax extra with
                      | S.Infeasible -> ()
                      | S.Unbounded | S.Stopped _ ->
                          (* Unbounded cannot happen if the root is
                             bounded; a Stopped child gives no bound of
                             its own. Either way, re-cover the subtree at
                             the parent's (sound) bound and truncate the
                             search — repeatedly re-solving a starved or
                             pathological child would loop. *)
                          Pc_util.Heap.push open_nodes signed_bound
                            { extra; relax = node.relax };
                          stopped_early := true;
                          continue_ := false
                      | S.Optimal sol ->
                          let sb = sign *. sol.S.objective_value in
                          if sb > !incumbent_val +. int_tol then
                            Pc_util.Heap.push open_nodes sb
                              { extra; relax = sol })
                    branches
            end
      done;
      let open_bound =
        match Pc_util.Heap.peek_priority open_nodes with
        | Some p when !stopped_early -> Some p
        | _ -> None
      in
      let signed_final =
        match open_bound with
        | Some p -> Float.max p !incumbent_val
        | None -> !incumbent_val
      in
      if !incumbent = None && open_bound = None then
        (* No integral solution exists (e.g. constraints force a
           fractional-only region). *)
        flush Infeasible
      else begin
        let bound =
          if signed_final = neg_infinity then nan else sign *. signed_final
        in
        let exact =
          match (!incumbent, open_bound) with
          | Some inc, None ->
              F.approx_eq ~eps:1e-6 inc.S.objective_value bound
          | Some _, Some _ | None, _ -> false
        in
        flush
          (Optimal
             {
               bound;
               incumbent = !incumbent;
               exact;
               truncated = !stopped_early;
               nodes = !nodes;
             })
      end

(* Relative optimality gap at exit, for the trace attribute. *)
let gap_string r =
  match r.incumbent with
  | Some inc when Float.is_finite r.bound ->
      let g =
        Float.abs (r.bound -. inc.S.objective_value)
        /. Float.max 1. (Float.abs r.bound)
      in
      Printf.sprintf "%.3g" g
  | _ -> "inf"

let solve ?budget ?(node_limit = 10_000) ?(integrality = fun _ -> true) problem =
  (* the branch keeps the disabled path closure-free *)
  if Trace.enabled () then
    Trace.with_span ~name:"milp.solve" (fun () ->
        let r = solve_run ?budget ~node_limit ~integrality problem in
        (match r with
        | Optimal res ->
            Trace.add_attr "nodes" (string_of_int res.nodes);
            Trace.add_attr "gap" (gap_string res)
        | Infeasible -> Trace.add_attr "outcome" "infeasible"
        | Unbounded -> Trace.add_attr "outcome" "unbounded"
        | Stopped _ -> Trace.add_attr "outcome" "stopped");
        r)
  else solve_run ?budget ~node_limit ~integrality problem
