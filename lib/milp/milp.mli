(** Mixed-integer linear programming by branch-and-bound over the
    {!Pc_lp.Simplex} relaxation.

    Node selection is best-bound-first, so when the node budget runs out
    the best open relaxation value is still a valid *dual bound* on the
    true optimum — exactly what a hard result range needs: the reported
    range can only get looser, never incorrect. Branching is
    most-fractional-variable; all variables are non-negative, and all are
    integer unless [integrality] says otherwise. *)

type result = {
  bound : float;
      (** Valid bound on the optimum in the optimization direction (an
          upper bound when maximizing). Equals the optimum when [exact]. *)
  incumbent : Pc_lp.Simplex.solution option;
      (** Best integral solution found, if any. *)
  exact : bool;
      (** The search closed the gap: [bound] is attained by [incumbent]. *)
  nodes : int;  (** Branch-and-bound nodes expanded. *)
}

type outcome = Optimal of result | Infeasible | Unbounded

val solve :
  ?node_limit:int ->
  ?integrality:(int -> bool) ->
  Pc_lp.Simplex.problem ->
  outcome
(** [node_limit] defaults to 10_000; [integrality] defaults to all-integer.
    [Unbounded] is reported when the relaxation is unbounded. *)

val solve_exn :
  ?node_limit:int -> ?integrality:(int -> bool) -> Pc_lp.Simplex.problem -> result
(** Raises [Failure] on infeasible/unbounded. *)
