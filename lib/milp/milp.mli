(** Mixed-integer linear programming by branch-and-bound over the
    {!Pc_lp.Simplex} relaxation.

    Node selection is best-bound-first, so when the node budget runs out
    the best open relaxation value is still a valid *dual bound* on the
    true optimum — exactly what a hard result range needs: the reported
    range can only get looser, never incorrect. Branching is
    most-fractional-variable; all variables are non-negative, and all are
    integer unless [integrality] says otherwise.

    Branching on [x_j <= floor v / x_j >= ceil v] is a pure bound
    tightening on the {!Pc_lp.Simplex} box, so every node's LP has the
    root's shape (no accumulated constraint rows), and each child
    re-optimizes from its parent's final basis snapshot with dual-simplex
    pivots ({!Pc_lp.Simplex.solve_from}). Pass [~warm:false] to force a
    cold LP solve per node — the reference the warm path is tested
    against.

    There is no exception-raising path on this surface: resource
    exhaustion (per-call [node_limit], the budget's node pool, its
    deadline, or a starved LP underneath) either truncates the search —
    still [Optimal], with [truncated] set and [bound] a sound dual bound —
    or, when not even the root relaxation finished, reports {!Stopped}. *)

type result = {
  bound : float;
      (** Valid bound on the optimum in the optimization direction (an
          upper bound when maximizing). Equals the optimum when [exact]. *)
  incumbent : Pc_lp.Simplex.solution option;
      (** Best integral solution found, if any. *)
  exact : bool;
      (** The search closed the gap: [bound] is attained by [incumbent]. *)
  truncated : bool;
      (** The search stopped early (node/iteration/deadline budget); the
          dual [bound] is still sound, just possibly loose. *)
  nodes : int;  (** Branch-and-bound nodes expanded. *)
}

type outcome =
  | Optimal of result
  | Infeasible
  | Unbounded
  | Stopped of Pc_lp.Simplex.stop
      (** the root relaxation itself could not be solved within budget:
          no bound of any kind is available *)

val solve :
  ?budget:Pc_budget.Budget.t ->
  ?node_limit:int ->
  ?integrality:(int -> bool) ->
  ?warm:bool ->
  Pc_lp.Simplex.problem ->
  outcome
(** [node_limit] defaults to 10_000 and is a per-call cap; the budget's
    node pool (if any) is shared across calls. [node_limit = 0] yields the
    root LP-relaxation dual bound ([truncated], no incumbent).
    [Unbounded] is reported when the relaxation is unbounded. [warm]
    (default [true]) warm-starts each child LP from its parent's basis;
    results are identical either way (the warm path cold-falls-back on
    any numeric doubt), only the pivot counts differ. *)
