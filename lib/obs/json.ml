exception Bad of int * string

let fail i msg = raise (Bad (i, msg))

let validate s =
  let n = String.length s in
  let peek i = if i < n then Some s.[i] else None in
  let rec skip_ws i =
    match peek i with
    | Some (' ' | '\t' | '\n' | '\r') -> skip_ws (i + 1)
    | _ -> i
  in
  let expect i c =
    match peek i with
    | Some c' when c' = c -> i + 1
    | _ -> fail i (Printf.sprintf "expected %C" c)
  in
  let literal i word =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then i + l
    else fail i ("expected " ^ word)
  in
  let is_digit c = c >= '0' && c <= '9' in
  let rec digits i =
    match peek i with Some c when is_digit c -> digits (i + 1) | _ -> i
  in
  let number i =
    let i = match peek i with Some '-' -> i + 1 | _ -> i in
    let i =
      match peek i with
      | Some '0' -> i + 1
      | Some c when is_digit c -> digits (i + 1)
      | _ -> fail i "expected digit"
    in
    let i =
      match peek i with
      | Some '.' ->
          let j = digits (i + 1) in
          if j = i + 1 then fail j "expected fraction digits" else j
      | _ -> i
    in
    match peek i with
    | Some ('e' | 'E') ->
        let i = match peek (i + 1) with Some ('+' | '-') -> i + 2 | _ -> i + 1 in
        let j = digits i in
        if j = i then fail j "expected exponent digits" else j
    | _ -> i
  in
  let string_lit i =
    let i = expect i '"' in
    let rec go i =
      match peek i with
      | None -> fail i "unterminated string"
      | Some '"' -> i + 1
      | Some '\\' -> (
          match peek (i + 1) with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> go (i + 2)
          | Some 'u' ->
              if
                i + 5 < n
                && String.for_all
                     (fun c ->
                       is_digit c
                       || (c >= 'a' && c <= 'f')
                       || (c >= 'A' && c <= 'F'))
                     (String.sub s (i + 2) 4)
              then go (i + 6)
              else fail i "bad \\u escape"
          | _ -> fail i "bad escape")
      | Some c when Char.code c < 0x20 -> fail i "control char in string"
      | Some _ -> go (i + 1)
    in
    go i
  in
  let rec value i =
    let i = skip_ws i in
    match peek i with
    | Some '{' -> obj (skip_ws (i + 1))
    | Some '[' -> arr (skip_ws (i + 1))
    | Some '"' -> string_lit i
    | Some 't' -> literal i "true"
    | Some 'f' -> literal i "false"
    | Some 'n' -> literal i "null"
    | Some ('-' | '0' .. '9') -> number i
    | _ -> fail i "expected a JSON value"
  and obj i =
    match peek i with
    | Some '}' -> i + 1
    | _ ->
        let rec members i =
          let i = skip_ws i in
          let i = string_lit i in
          let i = expect (skip_ws i) ':' in
          let i = skip_ws (value i) in
          match peek i with
          | Some ',' -> members (i + 1)
          | Some '}' -> i + 1
          | _ -> fail i "expected ',' or '}'"
        in
        members i
  and arr i =
    match peek i with
    | Some ']' -> i + 1
    | _ ->
        let rec elems i =
          let i = skip_ws (value i) in
          match peek i with
          | Some ',' -> elems (i + 1)
          | Some ']' -> i + 1
          | _ -> fail i "expected ',' or ']'"
        in
        elems i
  in
  match skip_ws (value 0) with
  | i when i = n -> Ok ()
  | i -> Error (Printf.sprintf "trailing garbage at offset %d" i)
  | exception Bad (i, msg) -> Error (Printf.sprintf "%s at offset %d" msg i)

let is_valid s = match validate s with Ok () -> true | Error _ -> false
