exception Bad of int * string

let fail i msg = raise (Bad (i, msg))

let validate s =
  let n = String.length s in
  let peek i = if i < n then Some s.[i] else None in
  let rec skip_ws i =
    match peek i with
    | Some (' ' | '\t' | '\n' | '\r') -> skip_ws (i + 1)
    | _ -> i
  in
  let expect i c =
    match peek i with
    | Some c' when c' = c -> i + 1
    | _ -> fail i (Printf.sprintf "expected %C" c)
  in
  let literal i word =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then i + l
    else fail i ("expected " ^ word)
  in
  let is_digit c = c >= '0' && c <= '9' in
  let rec digits i =
    match peek i with Some c when is_digit c -> digits (i + 1) | _ -> i
  in
  let number i =
    let i = match peek i with Some '-' -> i + 1 | _ -> i in
    let i =
      match peek i with
      | Some '0' -> i + 1
      | Some c when is_digit c -> digits (i + 1)
      | _ -> fail i "expected digit"
    in
    let i =
      match peek i with
      | Some '.' ->
          let j = digits (i + 1) in
          if j = i + 1 then fail j "expected fraction digits" else j
      | _ -> i
    in
    match peek i with
    | Some ('e' | 'E') ->
        let i = match peek (i + 1) with Some ('+' | '-') -> i + 2 | _ -> i + 1 in
        let j = digits i in
        if j = i then fail j "expected exponent digits" else j
    | _ -> i
  in
  let string_lit i =
    let i = expect i '"' in
    let rec go i =
      match peek i with
      | None -> fail i "unterminated string"
      | Some '"' -> i + 1
      | Some '\\' -> (
          match peek (i + 1) with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> go (i + 2)
          | Some 'u' ->
              if
                i + 5 < n
                && String.for_all
                     (fun c ->
                       is_digit c
                       || (c >= 'a' && c <= 'f')
                       || (c >= 'A' && c <= 'F'))
                     (String.sub s (i + 2) 4)
              then go (i + 6)
              else fail i "bad \\u escape"
          | _ -> fail i "bad escape")
      | Some c when Char.code c < 0x20 -> fail i "control char in string"
      | Some _ -> go (i + 1)
    in
    go i
  in
  let rec value i =
    let i = skip_ws i in
    match peek i with
    | Some '{' -> obj (skip_ws (i + 1))
    | Some '[' -> arr (skip_ws (i + 1))
    | Some '"' -> string_lit i
    | Some 't' -> literal i "true"
    | Some 'f' -> literal i "false"
    | Some 'n' -> literal i "null"
    | Some ('-' | '0' .. '9') -> number i
    | _ -> fail i "expected a JSON value"
  and obj i =
    match peek i with
    | Some '}' -> i + 1
    | _ ->
        let rec members i =
          let i = skip_ws i in
          let i = string_lit i in
          let i = expect (skip_ws i) ':' in
          let i = skip_ws (value i) in
          match peek i with
          | Some ',' -> members (i + 1)
          | Some '}' -> i + 1
          | _ -> fail i "expected ',' or '}'"
        in
        members i
  and arr i =
    match peek i with
    | Some ']' -> i + 1
    | _ ->
        let rec elems i =
          let i = skip_ws (value i) in
          match peek i with
          | Some ',' -> elems (i + 1)
          | Some ']' -> i + 1
          | _ -> fail i "expected ',' or ']'"
        in
        elems i
  in
  match skip_ws (value 0) with
  | i when i = n -> Ok ()
  | i -> Error (Printf.sprintf "trailing garbage at offset %d" i)
  | exception Bad (i, msg) -> Error (Printf.sprintf "%s at offset %d" msg i)

let is_valid s = match validate s with Ok () -> true | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

(* The parser mirrors the validator's grammar; it is kept separate so
   the validator stays a zero-allocation syntax check for big artifact
   files while this builds a tree for small protocol lines. *)
let parse s =
  let n = String.length s in
  let peek i = if i < n then Some s.[i] else None in
  let rec skip_ws i =
    match peek i with
    | Some (' ' | '\t' | '\n' | '\r') -> skip_ws (i + 1)
    | _ -> i
  in
  let literal i word v =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then (v, i + l)
    else fail i ("expected " ^ word)
  in
  let is_digit c = c >= '0' && c <= '9' in
  let number i0 =
    let rec digits i =
      match peek i with Some c when is_digit c -> digits (i + 1) | _ -> i
    in
    let i = match peek i0 with Some '-' -> i0 + 1 | _ -> i0 in
    let i =
      match peek i with
      | Some '0' -> i + 1
      | Some c when is_digit c -> digits (i + 1)
      | _ -> fail i "expected digit"
    in
    let i =
      match peek i with
      | Some '.' ->
          let j = digits (i + 1) in
          if j = i + 1 then fail j "expected fraction digits" else j
      | _ -> i
    in
    let i =
      match peek i with
      | Some ('e' | 'E') ->
          let k =
            match peek (i + 1) with Some ('+' | '-') -> i + 2 | _ -> i + 1
          in
          let j = digits k in
          if j = k then fail j "expected exponent digits" else j
      | _ -> i
    in
    match float_of_string_opt (String.sub s i0 (i - i0)) with
    | Some f -> (Num f, i)
    | None -> fail i0 "unparseable number"
  in
  let hex4 i =
    if i + 4 > n then fail i "bad \\u escape"
    else begin
      let v = ref 0 in
      for k = i to i + 3 do
        let c = s.[k] in
        let d =
          if is_digit c then Char.code c - Char.code '0'
          else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
          else if c >= 'A' && c <= 'F' then Char.code c - Char.code 'A' + 10
          else fail k "bad \\u escape"
        in
        v := (!v * 16) + d
      done;
      !v
    end
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_lit i =
    let i = match peek i with Some '"' -> i + 1 | _ -> fail i "expected '\"'" in
    let buf = Buffer.create 16 in
    let rec go i =
      match peek i with
      | None -> fail i "unterminated string"
      | Some '"' -> (Buffer.contents buf, i + 1)
      | Some '\\' -> (
          match peek (i + 1) with
          | Some '"' -> Buffer.add_char buf '"'; go (i + 2)
          | Some '\\' -> Buffer.add_char buf '\\'; go (i + 2)
          | Some '/' -> Buffer.add_char buf '/'; go (i + 2)
          | Some 'b' -> Buffer.add_char buf '\b'; go (i + 2)
          | Some 'f' -> Buffer.add_char buf '\012'; go (i + 2)
          | Some 'n' -> Buffer.add_char buf '\n'; go (i + 2)
          | Some 'r' -> Buffer.add_char buf '\r'; go (i + 2)
          | Some 't' -> Buffer.add_char buf '\t'; go (i + 2)
          | Some 'u' ->
              let cp = hex4 (i + 2) in
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                (* high surrogate: a \uXXXX low surrogate must follow *)
                if
                  i + 6 + 6 <= n
                  && s.[i + 6] = '\\'
                  && s.[i + 7] = 'u'
                then begin
                  let lo = hex4 (i + 8) in
                  if lo >= 0xDC00 && lo <= 0xDFFF then begin
                    add_utf8 buf
                      (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00));
                    go (i + 12)
                  end
                  else fail i "unpaired surrogate"
                end
                else fail i "unpaired surrogate"
              end
              else begin
                add_utf8 buf cp;
                go (i + 6)
              end
          | _ -> fail i "bad escape")
      | Some c when Char.code c < 0x20 -> fail i "control char in string"
      | Some c -> Buffer.add_char buf c; go (i + 1)
    in
    go i
  in
  let rec value i =
    let i = skip_ws i in
    match peek i with
    | Some '{' -> obj (skip_ws (i + 1))
    | Some '[' -> arr (skip_ws (i + 1))
    | Some '"' ->
        let str, i = string_lit i in
        (Str str, i)
    | Some 't' -> literal i "true" (Bool true)
    | Some 'f' -> literal i "false" (Bool false)
    | Some 'n' -> literal i "null" Null
    | Some ('-' | '0' .. '9') -> number i
    | _ -> fail i "expected a JSON value"
  and obj i =
    match peek i with
    | Some '}' -> (Obj [], i + 1)
    | _ ->
        let rec members acc i =
          let i = skip_ws i in
          let k, i = string_lit i in
          let i =
            match peek (skip_ws i) with
            | Some ':' -> skip_ws i + 1
            | _ -> fail (skip_ws i) "expected ':'"
          in
          let v, i = value i in
          let i = skip_ws i in
          match peek i with
          | Some ',' -> members ((k, v) :: acc) (i + 1)
          | Some '}' -> (Obj (List.rev ((k, v) :: acc)), i + 1)
          | _ -> fail i "expected ',' or '}'"
        in
        members [] i
  and arr i =
    match peek i with
    | Some ']' -> (Arr [], i + 1)
    | _ ->
        let rec elems acc i =
          let v, i = value i in
          let i = skip_ws i in
          match peek i with
          | Some ',' -> elems (v :: acc) (i + 1)
          | Some ']' -> (Arr (List.rev (v :: acc)), i + 1)
          | _ -> fail i "expected ',' or ']'"
        in
        elems [] i
  in
  match value 0 with
  | v, i when skip_ws i = n -> Ok v
  | _, i -> Error (Printf.sprintf "trailing garbage at offset %d" (skip_ws i))
  | exception Bad (i, msg) -> Error (Printf.sprintf "%s at offset %d" msg i)

let escape_to buf str =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    str;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
        if not (Float.is_finite f) then Buffer.add_string buf "null"
        else if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.0f" f)
        else Buffer.add_string buf (Printf.sprintf "%.12g" f)
    | Str str -> escape_to buf str
    | Arr vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          vs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_to buf k;
            Buffer.add_char buf ':';
            go v)
          kvs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
