(** Minimal JSON syntax checker (no external dependencies).

    Used by tests and CI to assert that the artifacts this library emits
    — Chrome traces, metrics dumps, workload summaries — are valid JSON
    (RFC 8259: in particular [NaN] and [Infinity] are rejected, which is
    exactly the bug class the emitters must avoid). It validates syntax
    only; nothing is built. *)

val validate : string -> (unit, string) result
(** [Ok ()] when the whole input is one valid JSON value (surrounding
    whitespace allowed); [Error msg] with a position otherwise. *)

val is_valid : string -> bool
