(** Minimal JSON syntax checker (no external dependencies).

    Used by tests and CI to assert that the artifacts this library emits
    — Chrome traces, metrics dumps, workload summaries — are valid JSON
    (RFC 8259: in particular [NaN] and [Infinity] are rejected, which is
    exactly the bug class the emitters must avoid). It validates syntax
    only; nothing is built. *)

val validate : string -> (unit, string) result
(** [Ok ()] when the whole input is one valid JSON value (surrounding
    whitespace allowed); [Error msg] with a position otherwise. *)

val is_valid : string -> bool

(** {2 Values}

    A concrete JSON tree, for the places that must {e read} JSON rather
    than just emit it — the bound server's line-oriented request
    protocol ([Pc_server]). The parser accepts exactly what {!validate}
    accepts; the printer emits RFC 8259 output (non-finite numbers
    become [null], the same policy as every other emitter in this
    repository). *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

val parse : string -> (value, string) result
(** One JSON value spanning the whole input (surrounding whitespace
    allowed). [\uXXXX] escapes are decoded to UTF-8; surrogate pairs are
    combined. *)

val to_string : value -> string
(** Compact single-line rendering; always valid JSON. *)

(* -------- accessors (shape-checking helpers) -------- *)

val member : string -> value -> value option
(** Field of an [Obj] ([None] on missing field or non-object). *)

val to_str : value -> string option
val to_num : value -> float option
val to_bool : value -> bool option
