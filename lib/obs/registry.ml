let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type counter = { c_name : string; value : int Atomic.t }

type histogram = {
  h_name : string;
  buckets : int Atomic.t array;  (* bucket i: values in [2^i, 2^(i+1)) ns *)
  h_count : int Atomic.t;
  h_sum_ns : int Atomic.t;
  h_min_ns : int Atomic.t;  (* exact extremes: not bucket-quantized *)
  h_max_ns : int Atomic.t;
}

type instrument = C of counter | H of histogram

(* Registration is rare (module load time) and mutex-protected; reads of
   individual instruments are plain atomics. *)
let reg_mutex = Mutex.create ()
let tbl : (string, instrument) Hashtbl.t = Hashtbl.create 64

let register name mk unwrap =
  Mutex.lock reg_mutex;
  let r =
    match Hashtbl.find_opt tbl name with
    | Some i -> unwrap i
    | None ->
        let i = mk () in
        Hashtbl.replace tbl name i;
        unwrap i
  in
  Mutex.unlock reg_mutex;
  r

module Counter = struct
  type t = counter

  let make name =
    register name
      (fun () -> C { c_name = name; value = Atomic.make 0 })
      (function
        | C c -> c
        | H _ -> invalid_arg ("Registry: " ^ name ^ " is a histogram"))

  let incr t = Atomic.incr t.value
  let add t n = if n <> 0 then ignore (Atomic.fetch_and_add t.value n)
  let get t = Atomic.get t.value
  let clear t = Atomic.set t.value 0
  let name t = t.c_name
end

module Histogram = struct
  type t = histogram

  let n_buckets = 64

  let make name =
    register name
      (fun () ->
        H
          {
            h_name = name;
            buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
            h_count = Atomic.make 0;
            h_sum_ns = Atomic.make 0;
            h_min_ns = Atomic.make max_int;
            h_max_ns = Atomic.make 0;
          })
      (function
        | H h -> h
        | C _ -> invalid_arg ("Registry: " ^ name ^ " is a counter"))

  let bucket_of_ns v =
    if not (v > 1.) then 0
    else min (n_buckets - 1) (int_of_float (Float.log2 v))

  (* monotone CAS fold: lock-free exact extremes *)
  let rec atomic_min a v =
    let cur = Atomic.get a in
    if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

  let rec atomic_max a v =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

  let observe_ns t ns =
    if Atomic.get enabled_flag then begin
      Atomic.incr t.h_count;
      let ns_int = int_of_float (Float.max 0. (Float.min ns 4.6e18)) in
      ignore (Atomic.fetch_and_add t.h_sum_ns ns_int);
      atomic_min t.h_min_ns ns_int;
      atomic_max t.h_max_ns ns_int;
      Atomic.incr t.buckets.(bucket_of_ns ns)
    end

  let count t = Atomic.get t.h_count
  let sum_ns t = Atomic.get t.h_sum_ns
  let min_ns t = if count t = 0 then 0 else Atomic.get t.h_min_ns
  let max_ns t = Atomic.get t.h_max_ns

  let mean_ns t =
    let n = count t in
    if n = 0 then 0. else float_of_int (sum_ns t) /. float_of_int n

  (* Representative value inside bucket i: 1.5 * 2^i, which maps back to
     bucket i under [bucket_of_ns] — readouts stay within one bucket of
     the exact sample percentile. *)
  let percentile_ns t p =
    let n = count t in
    if n = 0 then 0.
    else begin
      let p = Float.max 0. (Float.min 100. p) in
      let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
      let rec find i cum =
        if i >= n_buckets then Float.ldexp 1.5 (n_buckets - 1)
        else begin
          let cum = cum + Atomic.get t.buckets.(i) in
          if cum >= rank then Float.ldexp 1.5 i else find (i + 1) cum
        end
      in
      find 0 0
    end

  let clear t =
    Array.iter (fun b -> Atomic.set b 0) t.buckets;
    Atomic.set t.h_count 0;
    Atomic.set t.h_sum_ns 0;
    Atomic.set t.h_min_ns max_int;
    Atomic.set t.h_max_ns 0

  let name t = t.h_name
end

let instruments () =
  Mutex.lock reg_mutex;
  let all = Hashtbl.fold (fun name i acc -> (name, i) :: acc) tbl [] in
  Mutex.unlock reg_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let counters () =
  List.filter_map
    (function name, C c -> Some (name, Counter.get c) | _, H _ -> None)
    (instruments ())

let histograms () =
  List.filter_map (function _, H h -> Some h | _, C _ -> None) (instruments ())

let reset_values () =
  List.iter
    (function _, C c -> Counter.clear c | _, H h -> Histogram.clear h)
    (instruments ())

let dump_text () =
  let b = Buffer.create 512 in
  Buffer.add_string b "metrics:\n";
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %s %d\n" name v))
    (counters ());
  Buffer.add_string b "histograms:\n";
  List.iter
    (fun h ->
      let p q = Histogram.percentile_ns h q /. 1e3 in
      Buffer.add_string b
        (Printf.sprintf "  %s count=%d p50=%.1fus p90=%.1fus p99=%.1fus\n"
           (Histogram.name h) (Histogram.count h) (p 50.) (p 90.) (p 99.)))
    (histograms ());
  Buffer.contents b

let dump_json () =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n    \"%s\": %d" name v))
    (counters ());
  Buffer.add_string b "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    \"%s\": {\"count\": %d, \"sum_ns\": %d, \"min_ns\": %d, \
            \"max_ns\": %d, \"mean_ns\": %.1f, \"p50_ns\": %.1f, \
            \"p90_ns\": %.1f, \"p99_ns\": %.1f}"
           (Histogram.name h) (Histogram.count h) (Histogram.sum_ns h)
           (Histogram.min_ns h) (Histogram.max_ns h) (Histogram.mean_ns h)
           (Histogram.percentile_ns h 50.)
           (Histogram.percentile_ns h 90.)
           (Histogram.percentile_ns h 99.)))
    (histograms ());
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b
