(** Named instrument registry: counters and latency histograms.

    One global registry holds every instrument; modules register theirs
    at load time ([Counter.make] / [Histogram.make] are idempotent by
    name), so the key set printed by [pcda ... --metrics] is fixed and
    pinnable in tests.

    Counters are single {!Atomic} ints and are always live — they replace
    ad-hoc statistics that were unconditional before (e.g.
    [Pc_predicate.Sat.calls]), whose public accessors remain as thin
    views over the registered instrument. Instrumentation sites keep hot
    loops clean by accumulating in locals and flushing once per solve
    with {!Counter.add}.

    Histograms are lock-free fixed-bucket log₂ histograms over
    nanoseconds (64 power-of-two buckets), cheap enough for per-solve
    latencies; {!Histogram.observe_ns} is gated on the registry
    {!enabled} flag so disabled runs pay one branch. Percentile readouts
    are bucket-resolution: the reported p50/p90/p99 falls in the bucket
    range of the order statistics bracketing the exact percentile, so it
    is within one bucket (a factor of two) of
    {!Pc_util.Stat.percentile} whenever those statistics share a bucket
    — verified by a qcheck property. *)

val enabled : unit -> bool
(** Whether histogram observation is on. Counters ignore this flag. *)

val set_enabled : bool -> unit

module Counter : sig
  type t

  val make : string -> t
  (** Register (or look up) the counter named [name]. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val clear : t -> unit
  val name : t -> string
end

module Histogram : sig
  type t

  val make : string -> t
  (** Register (or look up) the histogram named [name]. *)

  val observe_ns : t -> float -> unit
  (** Record one observation in nanoseconds; no-op unless {!enabled}.
      Non-positive values land in the first bucket. *)

  val count : t -> int
  val sum_ns : t -> int

  val min_ns : t -> int
  (** Exact smallest observation (not bucket-quantized); [0] when empty. *)

  val max_ns : t -> int
  (** Exact largest observation; [0] when empty. *)

  val mean_ns : t -> float
  (** [sum_ns / count] — exact, unlike the bucketed percentiles; [0.]
      when empty. *)

  val percentile_ns : t -> float -> float
  (** [percentile_ns h p] for [p] in [0, 100]: a representative value
      from the bucket where the cumulative count crosses the
      nearest-rank percentile — i.e. the bucket of the rank-th smallest
      sample. [0.] on an empty histogram. *)

  val bucket_of_ns : float -> int
  (** The bucket index a value falls into — exposed so tests can check
      the one-bucket accuracy contract. *)

  val n_buckets : int
  val clear : t -> unit
  val name : t -> string
end

val counters : unit -> (string * int) list
(** All registered counters with current values, sorted by name. *)

val histograms : unit -> Histogram.t list
(** All registered histograms, sorted by name. *)

val reset_values : unit -> unit
(** Zero every counter and histogram (registration is kept). *)

val dump_text : unit -> string
(** Human-readable dump: a [metrics:] block with one ["  name value"]
    line per counter, then a [histograms:] block with count and
    p50/p90/p99 per histogram (microseconds). Key order is sorted, so the
    key set is stable across runs. *)

val dump_json : unit -> string
(** The same data as one JSON object:
    [{"counters": {...}, "histograms": {name: {count, sum_ns, min_ns,
    max_ns, mean_ns, p50_ns, p90_ns, p99_ns}}}]. Extremes and the mean
    are exact (tracked beside the buckets); percentiles stay
    bucket-resolution. Always valid JSON (no NaN / infinity). *)
