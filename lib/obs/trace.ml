type span = {
  name : string;
  attrs : (string * string) list;
  t0_ns : int64;
  dur_ns : int64;
  depth : int;
  domain : int;
}

(* An open span is mutable so [add_attr] can annotate it until it closes. *)
type open_span = {
  o_name : string;
  mutable o_attrs : (string * string) list;
  o_t0 : int64;
  o_depth : int;
}

(* Per-domain recording state. The owning domain is the only writer of
   [stack] and [out]; the registration list is the only shared structure
   and is mutex-protected. Export happens after parallel work joins, so
   reading [out] without the owner's cooperation is safe in practice. *)
type dstate = {
  dom_id : int;
  mutable stack : open_span list;
  mutable out : span list;  (* reverse chronological *)
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let reg_mutex = Mutex.create ()
let states : dstate list ref = ref []

(* Export timestamps are relative to this epoch so they stay readable. *)
let epoch = Atomic.make (Pc_util.Clock.now_ns ())

let key =
  Domain.DLS.new_key (fun () ->
      let st = { dom_id = (Domain.self () :> int); stack = []; out = [] } in
      Mutex.lock reg_mutex;
      states := st :: !states;
      Mutex.unlock reg_mutex;
      st)

let reset () =
  Mutex.lock reg_mutex;
  List.iter
    (fun st ->
      st.stack <- [];
      st.out <- [])
    !states;
  Mutex.unlock reg_mutex;
  Atomic.set epoch (Pc_util.Clock.now_ns ())

let with_span ?(attrs = []) ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let st = Domain.DLS.get key in
    let sp =
      {
        o_name = name;
        o_attrs = attrs;
        o_t0 = Pc_util.Clock.now_ns ();
        o_depth = List.length st.stack;
      }
    in
    st.stack <- sp :: st.stack;
    let close () =
      (* Usually the head; a [reset] mid-span may have emptied the stack. *)
      st.stack <- List.filter (fun s -> s != sp) st.stack;
      let dur = Int64.sub (Pc_util.Clock.now_ns ()) sp.o_t0 in
      st.out <-
        {
          name = sp.o_name;
          attrs = sp.o_attrs;
          t0_ns = sp.o_t0;
          dur_ns = (if Int64.compare dur 0L < 0 then 0L else dur);
          depth = sp.o_depth;
          domain = st.dom_id;
        }
        :: st.out
    in
    Fun.protect ~finally:close f
  end

let add_attr k v =
  if Atomic.get enabled_flag then begin
    match (Domain.DLS.get key).stack with
    | [] -> ()
    | sp :: _ -> sp.o_attrs <- (k, v) :: sp.o_attrs
  end

let spans () =
  Mutex.lock reg_mutex;
  let all = List.concat_map (fun st -> st.out) !states in
  Mutex.unlock reg_mutex;
  List.sort (fun a b -> Int64.compare a.t0_ns b.t0_ns) all

let span_names () =
  List.sort_uniq String.compare (List.map (fun sp -> sp.name) (spans ()))

let totals_by_name () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let c, t =
        Option.value (Hashtbl.find_opt tbl sp.name) ~default:(0, 0L)
      in
      Hashtbl.replace tbl sp.name (c + 1, Int64.add t sp.dur_ns))
    (spans ());
  Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) tbl []
  |> List.sort (fun (na, _, a) (nb, _, b) ->
         match Int64.compare b a with 0 -> String.compare na nb | n -> n)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json () =
  let e = Atomic.get epoch in
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      let ts = Int64.to_float (Int64.sub sp.t0_ns e) /. 1e3 in
      let dur = Int64.to_float sp.dur_ns /. 1e3 in
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{"
           (json_escape sp.name) ts dur sp.domain);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        (("depth", string_of_int sp.depth) :: List.rev sp.attrs);
      Buffer.add_string b "}}")
    (spans ());
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let summary () =
  let totals = totals_by_name () in
  let b = Buffer.create 256 in
  Buffer.add_string b "trace summary (total time per span, widest first):\n";
  if totals = [] then Buffer.add_string b "  (no spans recorded)\n"
  else
    List.iter
      (fun (name, count, total) ->
        Buffer.add_string b
          (Printf.sprintf "  %-28s %8d call%s %12.3f ms\n" name count
             (if count = 1 then " " else "s")
             (Int64.to_float total /. 1e6)))
      totals;
  Buffer.contents b
