(** Structured span tracing for the bound pipeline.

    A span is a named, timed region of execution with string attributes.
    Spans nest: {!with_span} pushes onto a per-domain stack, so the trace
    of a [bound] call shows decompose inside a ladder rung inside the
    top-level span, with SAT / LP / MILP solves below.

    Recording is gated on one global flag: when disabled (the default),
    {!with_span} is a single atomic load and a branch around the wrapped
    function — no allocation, no clock read — so instrumented hot paths
    cost nothing in production. Enable with {!set_enabled} (the CLI's
    [--trace] does this).

    Domain safety: every domain records into its own buffer, created
    lazily through [Domain.DLS] and registered in a global list, so spans
    produced inside {!Pc_par.Pool} workers are collected without locks on
    the hot path and merged at export time. A [--jobs N] run therefore
    yields the same span {e set} as a sequential one, just spread over
    several [tid]s.

    Timestamps come from {!Pc_util.Clock} (monotonic), so durations are
    never negative and NTP steps cannot corrupt a trace. *)

type span = {
  name : string;
  attrs : (string * string) list;
  t0_ns : int64;  (** start, monotonic clock *)
  dur_ns : int64;  (** duration, [>= 0] *)
  depth : int;  (** nesting depth within its domain at open time *)
  domain : int;  (** id of the domain that recorded the span *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop all recorded spans (in every domain's buffer) and re-stamp the
    export epoch. Open spans are discarded too: call between runs, not
    inside one. *)

val with_span : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [with_span ~name f] runs [f] inside a span. The span is closed (and
    recorded) even when [f] raises. When tracing is disabled this is
    exactly [f ()]. *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span of the calling domain
    (e.g. the outcome of a ladder rung, known only at the end). No-op when
    tracing is disabled or no span is open. *)

val spans : unit -> span list
(** Completed spans from every domain, merged and sorted by start time. *)

val span_names : unit -> string list
(** Sorted, de-duplicated span names — the span {e set} of the trace. *)

val totals_by_name : unit -> (string * int * int64) list
(** Per-name aggregate [(name, count, total_ns)], sorted by total
    descending — the data behind {!summary} and the bench's per-phase
    totals. *)

val to_chrome_json : unit -> string
(** The trace in Chrome [trace_event] JSON array format (["ph":"X"]
    complete events, microsecond timestamps): load in [chrome://tracing]
    or Perfetto. Always valid JSON, even with zero spans. *)

val summary : unit -> string
(** Human-readable flame-style summary: one line per span name with call
    count and total time, widest first. *)
