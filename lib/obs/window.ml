(* Sliding-window SLO stats over a ring of per-slot atomic counters.

   Each slot aggregates the requests whose completion time fell in one
   [slot_s]-second span; the slot's absolute index (epoch) disambiguates
   ring reuse. Writers rotate slots lazily: whoever first lands on a slot
   holding an older epoch CASes it forward and zeroes the counters. The
   CAS-then-zero order means a concurrent writer that observed the fresh
   epoch before the zeroing finished can lose its increments — at most
   (writers - 1) observations per rotation, and always an undercount. *)

let n_buckets = Registry.Histogram.n_buckets

type t = {
  slot_s : float;
  n_slots : int;
  epochs : int Atomic.t array;  (* absolute slot index; -1 = never used *)
  n : int Atomic.t array;
  errors : int Atomic.t array;
  degraded : int Atomic.t array;
  hits : int Atomic.t array;
  misses : int Atomic.t array;
  buckets : int Atomic.t array array;  (* slot -> log2 latency buckets *)
  latest : int Atomic.t;  (* max epoch ever observed: time never rewinds *)
}

let create ?(slot_s = 0.25) ?(slots = 256) () =
  let slot_s = if slot_s > 0. then slot_s else 0.25 in
  let n_slots = max 2 slots in
  let arr () = Array.init n_slots (fun _ -> Atomic.make 0) in
  {
    slot_s;
    n_slots;
    epochs = Array.init n_slots (fun _ -> Atomic.make (-1));
    n = arr ();
    errors = arr ();
    degraded = arr ();
    hits = arr ();
    misses = arr ();
    buckets = Array.init n_slots (fun _ -> Array.init n_buckets (fun _ -> Atomic.make 0));
    latest = Atomic.make 0;
  }

type cache_outcome = Hit | Miss | Uncached

let epoch_of t now = int_of_float (Float.max 0. now /. t.slot_s)

let rec raise_latest t e =
  let l = Atomic.get t.latest in
  if e > l && not (Atomic.compare_and_set t.latest l e) then raise_latest t e

let bump a i v = if v <> 0 then ignore (Atomic.fetch_and_add a.(i) v)

(* Rotate slot [i] to epoch [e]; [false] when the slot has already been
   recycled for a newer epoch (the observation is too old to record). *)
let rec claim t i e =
  let cur = Atomic.get t.epochs.(i) in
  if cur = e then true
  else if cur > e then false
  else if Atomic.compare_and_set t.epochs.(i) cur e then begin
    Atomic.set t.n.(i) 0;
    Atomic.set t.errors.(i) 0;
    Atomic.set t.degraded.(i) 0;
    Atomic.set t.hits.(i) 0;
    Atomic.set t.misses.(i) 0;
    Array.iter (fun b -> Atomic.set b 0) t.buckets.(i);
    true
  end
  else claim t i e

let observe ?now t ~latency_ns ~error ~degraded ~cache =
  let now = match now with Some x -> x | None -> Pc_util.Clock.now () in
  let e = epoch_of t now in
  raise_latest t e;
  (* an observation that predates every retained slot is dropped rather
     than wrapped onto a fresh epoch *)
  if e > Atomic.get t.latest - t.n_slots then begin
    let i = e mod t.n_slots in
    if claim t i e then begin
      bump t.n i 1;
      bump t.errors i (if error then 1 else 0);
      bump t.degraded i (if degraded then 1 else 0);
      (match cache with
      | Hit -> bump t.hits i 1
      | Miss -> bump t.misses i 1
      | Uncached -> ());
      bump t.buckets.(i) (Registry.Histogram.bucket_of_ns latency_ns) 1
    end
  end

type stats = {
  window_s : float;
  n : int;
  qps : float;
  error_rate : float;
  degraded_fraction : float;
  cache_hit_rate : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
}

let percentile_ns buckets p =
  let n = Array.fold_left ( + ) 0 buckets in
  if n = 0 then 0.
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
    let len = Array.length buckets in
    let rec find i cum =
      if i >= len then Float.ldexp 1.5 (len - 1)
      else begin
        let cum = cum + buckets.(i) in
        if cum >= rank then Float.ldexp 1.5 i else find (i + 1) cum
      end
    in
    find 0 0
  end

let snapshot ?now t ~window_s =
  let now = match now with Some x -> x | None -> Pc_util.Clock.now () in
  (* reference epoch: never behind the data — under clock skew the
     window shifts, the arithmetic stays non-negative *)
  let e_now = max (epoch_of t now) (Atomic.get t.latest) in
  let w =
    max 1
      (min (t.n_slots - 1)
         (int_of_float (Float.round (window_s /. t.slot_s))))
  in
  let n = ref 0
  and errors = ref 0
  and degraded = ref 0
  and hits = ref 0
  and misses = ref 0 in
  let buckets = Array.make n_buckets 0 in
  for e = e_now - w to e_now - 1 do
    if e >= 0 then begin
      let i = e mod t.n_slots in
      (* only slots still holding this epoch count; a recycled or stale
         slot contributes nothing *)
      if Atomic.get t.epochs.(i) = e then begin
        n := !n + Atomic.get t.n.(i);
        errors := !errors + Atomic.get t.errors.(i);
        degraded := !degraded + Atomic.get t.degraded.(i);
        hits := !hits + Atomic.get t.hits.(i);
        misses := !misses + Atomic.get t.misses.(i);
        Array.iteri
          (fun b cell -> buckets.(b) <- buckets.(b) + Atomic.get cell)
          t.buckets.(i)
      end
    end
  done;
  let span = float_of_int w *. t.slot_s in
  let frac num den = if den <= 0 then 0. else float_of_int num /. float_of_int den in
  {
    window_s = span;
    n = !n;
    qps = float_of_int !n /. span;
    error_rate = frac !errors !n;
    degraded_fraction = frac !degraded !n;
    cache_hit_rate = frac !hits (!hits + !misses);
    p50_ns = percentile_ns buckets 50.;
    p90_ns = percentile_ns buckets 90.;
    p99_ns = percentile_ns buckets 99.;
  }
