(** Windowed SLO monitor: lock-free sliding-window rates and latency
    quantiles for the live telemetry plane.

    A {!t} is a ring of fixed-duration time slots (default 0.25 s x 256,
    64 s of coverage); every completed request is recorded into the slot
    its timestamp falls in with one [fetch_and_add] per field — no locks,
    no allocation. A {!snapshot} over a window (1 s / 10 s / 60 s) sums
    the last [w] {e complete} slots, excluding the in-progress one, so
    rates are over a fully elapsed span and are never inflated by a
    partial slot.

    Rotation is lock-free: the first writer to reach a slot whose epoch
    is stale CASes the epoch forward and zeroes the counters. A writer
    racing into the same slot between the CAS and the zeroing can lose
    its observation; the loss is bounded by the number of concurrent
    writer threads per rotation (same contract as the flight recorder)
    and only ever {e undercounts} — a window can report a rate of zero,
    never a negative one.

    Time only moves forward: the reference epoch is the max of the
    caller's [now] and the largest epoch ever observed, so a skewed
    clock ([Pc_fault.Clock_skew] adds seconds at the call site, exactly
    as budget deadline checks see it) shifts which slots a window covers
    but can never produce a negative count, rate, or span — pinned by a
    fault-armed test. Observations older than the retained ring are
    dropped, not wrapped onto fresh slots. *)

type t

val create : ?slot_s:float -> ?slots:int -> unit -> t
(** [slot_s] is the slot duration in seconds (default 0.25), [slots]
    the ring size (default 256). Coverage is [slot_s *. slots] seconds;
    snapshots clamp their window to [slots - 1] complete slots. *)

type cache_outcome = Hit | Miss | Uncached

val observe :
  ?now:float ->
  t ->
  latency_ns:float ->
  error:bool ->
  degraded:bool ->
  cache:cache_outcome ->
  unit
(** Record one completed request. [now] defaults to
    [Pc_util.Clock.now ()]; pass it explicitly to compose with a skewed
    or simulated clock (tests, fault injection). *)

type stats = {
  window_s : float;  (** the fully-elapsed span the stats cover *)
  n : int;  (** requests completed in the window *)
  qps : float;  (** [n /. window_s]; [>= 0.] by construction *)
  error_rate : float;  (** errors / n ([0.] when [n = 0]) *)
  degraded_fraction : float;  (** degraded / n ([0.] when [n = 0]) *)
  cache_hit_rate : float;
      (** hits / (hits + misses), counting only cache-consulted
          requests; [0.] when none were *)
  p50_ns : float;  (** bucket-resolution latency quantiles, as
                       {!Registry.Histogram.percentile_ns} *)
  p90_ns : float;
  p99_ns : float;
}

val snapshot : ?now:float -> t -> window_s:float -> stats
(** Aggregate the last [window_s] seconds of complete slots. The
    effective span (after rounding to whole slots and clamping to the
    ring) is reported back in [stats.window_s]. *)

val percentile_ns : int array -> float -> float
(** Nearest-rank percentile over raw log2 bucket counts (the same
    bucket space as {!Registry.Histogram}); exposed for tests. *)
