(* Worker domains block on [work] when the queue is empty. Batch
   completion is tracked by a per-batch countdown protected by the pool
   mutex; [done_] is broadcast on every countdown so waiting callers
   re-check their own batch (spurious wakeups are benign). *)

(* Queue wait (enqueue -> chunk start) vs run time, per chunk. Observed
   only when the metrics registry is enabled; the [pool.map] span is
   recorded on the sequential fallback too, so the span *set* of a run
   does not depend on --jobs. *)
let h_queue_wait = Pc_obs.Registry.Histogram.make "pool.queue_wait_ns"
let h_run = Pc_obs.Registry.Histogram.make "pool.run_ns"

type t = {
  jobs : int;  (** requested parallelism, as configured (e.g. --jobs N) *)
  effective : int;
      (** parallelism actually used: requested clamped to the cores the
          runtime reports, so oversubscribed configs don't spawn domains
          that only add scheduling overhead *)
  q : (unit -> unit) Queue.t;
  m : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable workers : unit Domain.t array;
  mutable closed : bool;
}

(* Tasks must never recursively block on the pool they run inside: a
   nested parallel_map would enqueue work no idle worker is left to take.
   Workers mark their domain so nested calls degrade to List.map. *)
let inside_worker = Domain.DLS.new_key (fun () -> false)

let jobs t = t.jobs
let effective_jobs t = t.effective
let available_cores () = Domain.recommended_domain_count ()

(* Work sets smaller than this many items per effective worker run
   sequentially: the spawn/handoff latency outweighs any overlap. *)
let chunk_threshold = 2

let rec worker_loop pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.q && not pool.closed do
    Condition.wait pool.work pool.m
  done;
  if Queue.is_empty pool.q then Mutex.unlock pool.m (* closed *)
  else begin
    let task = Queue.pop pool.q in
    Mutex.unlock pool.m;
    task ();
    worker_loop pool
  end

let make jobs effective =
  {
    jobs;
    effective;
    q = Queue.create ();
    m = Mutex.create ();
    work = Condition.create ();
    done_ = Condition.create ();
    workers = [||];
    closed = false;
  }

let create_with ~clamp ~jobs =
  let jobs = max 1 jobs in
  let effective = if clamp then min jobs (available_cores ()) else jobs in
  let pool = make jobs effective in
  if effective > 1 then
    pool.workers <-
      Array.init (effective - 1) (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set inside_worker true;
              worker_loop pool));
  pool

let create ~jobs = create_with ~clamp:true ~jobs
let create_unclamped ~jobs = create_with ~clamp:false ~jobs

let sequential = make 1 1

let shutdown pool =
  if Array.length pool.workers > 0 && not pool.closed then begin
    Mutex.lock pool.m;
    pool.closed <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.m;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let default_pool = ref sequential

let default () = !default_pool

let set_default_jobs jobs =
  let old = !default_pool in
  default_pool := create ~jobs;
  shutdown old

type ('a, 'b) batch = {
  items : 'a array;
  results : 'b option array;
  f : 'a -> 'b;
  (* first error by input position: deterministic re-raise *)
  mutable err : (int * exn * Printexc.raw_backtrace) option;
  mutable remaining : int; (* chunks still running; under the pool mutex *)
}

let run_chunk pool batch lo hi =
  (try
     for i = lo to hi - 1 do
       batch.results.(i) <- Some (batch.f batch.items.(i))
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock pool.m;
     (match batch.err with
     | Some (j, _, _) when j <= lo -> ()
     | _ -> batch.err <- Some (lo, e, bt));
     Mutex.unlock pool.m);
  Mutex.lock pool.m;
  batch.remaining <- batch.remaining - 1;
  if batch.remaining = 0 then Condition.broadcast pool.done_;
  Mutex.unlock pool.m

let parallel_map_run pool f xs =
  if pool.effective = 1 || Domain.DLS.get inside_worker then List.map f xs
  else begin
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | xs when List.compare_length_with xs (chunk_threshold * pool.effective) < 0
      ->
        (* too little work to amortize the handoff *)
        List.map f xs
    | _ ->
        let items = Array.of_list xs in
        let n = Array.length items in
        (* a few chunks per worker evens out skewed task costs without
           paying a handoff per element *)
        let chunk = max 1 (n / (pool.effective * 4)) in
        let n_chunks = (n + chunk - 1) / chunk in
        let batch =
          { items; results = Array.make n None; f; err = None; remaining = n_chunks }
        in
        let observed = Pc_obs.Registry.enabled () in
        Mutex.lock pool.m;
        for c = 0 to n_chunks - 1 do
          let lo = c * chunk in
          let hi = min n (lo + chunk) in
          let task =
            if observed then begin
              let t_enq = Pc_util.Clock.now_ns () in
              fun () ->
                let t_start = Pc_util.Clock.now_ns () in
                Pc_obs.Registry.Histogram.observe_ns h_queue_wait
                  (Int64.to_float (Int64.sub t_start t_enq));
                run_chunk pool batch lo hi;
                Pc_obs.Registry.Histogram.observe_ns h_run
                  (Int64.to_float
                     (Int64.sub (Pc_util.Clock.now_ns ()) t_start))
            end
            else fun () -> run_chunk pool batch lo hi
          in
          Queue.push task pool.q
        done;
        Condition.broadcast pool.work;
        (* the caller works the queue too: guarantees progress even if
           every worker is busy elsewhere, and uses this domain's core *)
        while batch.remaining > 0 do
          if Queue.is_empty pool.q then Condition.wait pool.done_ pool.m
          else begin
            let task = Queue.pop pool.q in
            Mutex.unlock pool.m;
            task ();
            Mutex.lock pool.m
          end
        done;
        Mutex.unlock pool.m;
        (match batch.err with
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ());
        Array.to_list (Array.map Option.get batch.results)
  end

let parallel_map pool f xs =
  (* the branch keeps the disabled path closure-free *)
  if Pc_obs.Trace.enabled () then
    Pc_obs.Trace.with_span ~name:"pool.map"
      ~attrs:
        [
          ("jobs", string_of_int pool.jobs);
          ("items", string_of_int (List.length xs));
        ]
      (fun () -> parallel_map_run pool f xs)
  else parallel_map_run pool f xs

let parallel_iter pool f xs = ignore (parallel_map pool (fun x -> f x; ()) xs)
