(** A fixed-size domain pool with a chunked, order-preserving parallel
    map (stdlib [Domain]/[Mutex]/[Condition] only — no external
    dependencies).

    The pool owns [jobs - 1] worker domains; the caller's domain is the
    remaining worker, so [create ~jobs:1] spawns nothing and
    {!parallel_map} degenerates to [List.map]. Tasks are coarse units
    (per-query bounds, per-group bounds, per-table join bounds), so the
    queue is a plain mutex-protected FIFO — handoff cost is nanoseconds
    against task costs of microseconds to seconds.

    {2 Determinism contract}

    [parallel_map pool f xs] returns exactly [List.map f xs] — same
    values, same order — whenever [f] is deterministic per element:
    results are written into their input slot, and the first raised
    exception (by input position, not arrival time) is re-raised after
    the batch drains. Scheduling never reorders or drops results, so
    [--jobs N] output is bit-identical to [--jobs 1] unless tasks
    communicate through shared state. Shared {!Pc_budget.Budget.t}
    contexts are the sanctioned exception: caps are enforced atomically
    (soundness preserved) but {e which} task exhausts the pool may vary
    between runs — degradation provenance can differ, bounds stay sound.

    Nested calls (a task calling [parallel_map] on the same or another
    pool) run sequentially inline rather than deadlocking the queue. *)

type t

val create : jobs:int -> t
(** [create ~jobs] — a pool of [max 1 jobs] workers including the
    caller. Workers idle on a condition variable when the queue is
    empty; they hold no CPU.

    The pool spawns domains only up to {!available_cores}: requesting
    more parallelism than the machine has cores used to cost wall-clock
    (0.36× end-to-end at [--jobs 4] on one core) for zero overlap.
    {!jobs} still reports the requested value; {!effective_jobs} the
    clamped one. *)

val create_unclamped : jobs:int -> t
(** Like {!create} but without the core clamp — for tests that exercise
    true multi-domain scheduling regardless of the host. *)

val jobs : t -> int
(** Requested parallelism, as configured. *)

val effective_jobs : t -> int
(** Parallelism actually used: [min jobs (available_cores ())], unless
    the pool was created with [~force:true]. *)

val available_cores : unit -> int
(** Cores the runtime recommends ([Domain.recommended_domain_count]). *)

val chunk_threshold : int
(** Work sets smaller than [chunk_threshold * effective_jobs] items run
    sequentially inline — the handoff latency outweighs any overlap. *)

val sequential : t
(** The shared no-worker pool: [parallel_map sequential f] is
    [List.map f]. *)

val default : unit -> t
(** The process-wide pool, {!sequential} until {!set_default_jobs}
    configures it (e.g. from a [--jobs] flag). *)

val set_default_jobs : int -> unit
(** Replace the process-wide pool with one of [jobs] workers (shutting
    the previous one down). Call once at startup; racing calls from
    several domains are not supported. *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving map over the pool (see the determinism contract
    above). Chunks contiguous runs of inputs to bound handoff overhead;
    the caller's domain participates, so progress is guaranteed even
    with [jobs = 1] or a saturated queue. *)

val parallel_iter : t -> ('a -> unit) -> 'a list -> unit

val shutdown : t -> unit
(** Join the worker domains. Idempotent; {!sequential} ignores it. The
    pool must be idle (no concurrent {!parallel_map}). *)
