type token =
  | Ident of string
  | Number of float
  | String of string
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Colon
  | Le
  | Ge
  | Lt
  | Gt
  | Eq
  | Neq
  | Star
  | Eof

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %s" s
  | Number x -> Format.fprintf ppf "number %g" x
  | String s -> Format.fprintf ppf "string '%s'" s
  | Lparen -> Format.fprintf ppf "("
  | Rparen -> Format.fprintf ppf ")"
  | Lbracket -> Format.fprintf ppf "["
  | Rbracket -> Format.fprintf ppf "]"
  | Comma -> Format.fprintf ppf ","
  | Semicolon -> Format.fprintf ppf ";"
  | Colon -> Format.fprintf ppf ":"
  | Le -> Format.fprintf ppf "<="
  | Ge -> Format.fprintf ppf ">="
  | Lt -> Format.fprintf ppf "<"
  | Gt -> Format.fprintf ppf ">"
  | Eq -> Format.fprintf ppf "="
  | Neq -> Format.fprintf ppf "<>"
  | Star -> Format.fprintf ppf "*"
  | Eof -> Format.fprintf ppf "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let fail msg = failwith (Printf.sprintf "lex error at offset %d: %s" !i msg) in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (Ident (String.sub input start (!i - start)))
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit input.[!i + 1])
            || (c = '.' && !i + 1 < n && is_digit input.[!i + 1]) then begin
      let start = !i in
      if input.[!i] = '-' then incr i;
      while
        !i < n
        && (is_digit input.[!i]
           || input.[!i] = '.'
           || input.[!i] = 'e'
           || input.[!i] = 'E'
           || ((input.[!i] = '+' || input.[!i] = '-')
              && (input.[!i - 1] = 'e' || input.[!i - 1] = 'E')))
      do
        incr i
      done;
      let text = String.sub input start (!i - start) in
      match float_of_string_opt text with
      | Some x -> emit (Number x)
      | None -> fail (Printf.sprintf "bad number %S" text)
    end
    else begin
      match c with
      | '\'' ->
          let buf = Buffer.create 16 in
          incr i;
          let closed = ref false in
          while (not !closed) && !i < n do
            if input.[!i] = '\'' then
              if !i + 1 < n && input.[!i + 1] = '\'' then begin
                Buffer.add_char buf '\'';
                i := !i + 2
              end
              else begin
                closed := true;
                incr i
              end
            else begin
              Buffer.add_char buf input.[!i];
              incr i
            end
          done;
          if not !closed then fail "unterminated string";
          emit (String (Buffer.contents buf))
      | '(' -> emit Lparen; incr i
      | ')' -> emit Rparen; incr i
      | '[' -> emit Lbracket; incr i
      | ']' -> emit Rbracket; incr i
      | ',' -> emit Comma; incr i
      | ';' -> emit Semicolon; incr i
      | ':' -> emit Colon; incr i
      | '*' -> emit Star; incr i
      | '=' -> emit Eq; incr i
      | '!' ->
          if !i + 1 < n && input.[!i + 1] = '=' then begin
            emit Neq;
            i := !i + 2
          end
          else fail "expected != "
      | '<' ->
          if !i + 1 < n && input.[!i + 1] = '=' then begin
            emit Le;
            i := !i + 2
          end
          else if !i + 1 < n && input.[!i + 1] = '>' then begin
            emit Neq;
            i := !i + 2
          end
          else begin
            emit Lt;
            incr i
          end
      | '>' ->
          if !i + 1 < n && input.[!i + 1] = '=' then begin
            emit Ge;
            i := !i + 2
          end
          else begin
            emit Gt;
            incr i
          end
      | c -> fail (Printf.sprintf "unexpected character %C" c)
    end
  done;
  List.rev (Eof :: !tokens)
