(** Hand-written lexer shared by the PC DSL and the mini-SQL query
    parser. *)

type token =
  | Ident of string
  | Number of float
  | String of string  (** single-quoted *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Colon
  | Le  (** [<=] *)
  | Ge  (** [>=] *)
  | Lt
  | Gt
  | Eq
  | Neq  (** [<>] or [!=] *)
  | Star
  | Eof

val tokenize : string -> token list
(** Raises [Failure] with position information on invalid input.
    Identifiers are case-preserved; keyword matching is the parsers'
    concern (case-insensitive there). *)

val pp_token : Format.formatter -> token -> unit
