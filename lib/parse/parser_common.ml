(* Shared recursive-descent plumbing for the two parsers. *)

type state = { mutable tokens : Lexer.token list }

let make tokens = { tokens }

let peek st = match st.tokens with [] -> Lexer.Eof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let fail_expect st what =
  failwith
    (Format.asprintf "parse error: expected %s but found %a" what Lexer.pp_token
       (peek st))

let expect st token what =
  if peek st = token then advance st else fail_expect st what

let keyword_matches kw = function
  | Lexer.Ident s -> String.lowercase_ascii s = String.lowercase_ascii kw
  | _ -> false

let accept_keyword st kw =
  if keyword_matches kw (peek st) then begin
    advance st;
    true
  end
  else false

let expect_keyword st kw =
  if not (accept_keyword st kw) then fail_expect st (Printf.sprintf "keyword %s" kw)

let expect_ident st what =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      s
  | _ -> fail_expect st what

let expect_number st what =
  match peek st with
  | Lexer.Number x ->
      advance st;
      x
  | _ -> fail_expect st what

(* A comparison atom: ident op literal (or BETWEEN / IN forms). *)
let parse_atom st =
  let attr = expect_ident st "attribute name" in
  match peek st with
  | Lexer.Eq -> begin
      advance st;
      match peek st with
      | Lexer.Number x ->
          advance st;
          Pc_predicate.Atom.num_eq attr x
      | Lexer.String s ->
          advance st;
          Pc_predicate.Atom.cat_eq attr s
      | _ -> fail_expect st "number or string after ="
    end
  | Lexer.Neq -> begin
      advance st;
      match peek st with
      | Lexer.String s ->
          advance st;
          Pc_predicate.Atom.Cat_neq (attr, s)
      | _ -> fail_expect st "string after <>"
    end
  | Lexer.Le ->
      advance st;
      Pc_predicate.Atom.at_most attr (expect_number st "number after <=")
  | Lexer.Ge ->
      advance st;
      Pc_predicate.Atom.at_least attr (expect_number st "number after >=")
  | Lexer.Lt ->
      advance st;
      Pc_predicate.Atom.less_than attr (expect_number st "number after <")
  | Lexer.Gt ->
      advance st;
      Pc_predicate.Atom.greater_than attr (expect_number st "number after >")
  | Lexer.Ident _ when keyword_matches "between" (peek st) ->
      advance st;
      let lo = expect_number st "lower BETWEEN bound" in
      expect_keyword st "and";
      let hi = expect_number st "upper BETWEEN bound" in
      if lo > hi then failwith "parse error: BETWEEN bounds inverted";
      Pc_predicate.Atom.between attr lo hi
  | Lexer.Ident _ when keyword_matches "in" (peek st) -> begin
      advance st;
      expect st Lexer.Lparen "( after IN";
      let rec values acc =
        match peek st with
        | Lexer.String s -> begin
            advance st;
            match peek st with
            | Lexer.Comma ->
                advance st;
                values (s :: acc)
            | _ -> List.rev (s :: acc)
          end
        | _ -> fail_expect st "string in IN list"
      in
      (* numeric IN lists degrade to a disjunction we cannot represent in a
         conjunction; only categorical IN is supported *)
      match peek st with
      | Lexer.String _ ->
          let vs = values [] in
          expect st Lexer.Rparen ") after IN list";
          Pc_predicate.Atom.Cat_in (attr, vs)
      | _ -> fail_expect st "string values in IN list"
    end
  | _ -> fail_expect st "comparison operator"

(* conjunction: TRUE | atom (AND atom)* *)
let parse_conj st =
  if accept_keyword st "true" then Pc_predicate.Pred.tt
  else begin
    let rec atoms acc =
      let atom = parse_atom st in
      if accept_keyword st "and" then atoms (atom :: acc)
      else List.rev (atom :: acc)
    in
    Pc_predicate.Pred.conj (atoms [])
  end
