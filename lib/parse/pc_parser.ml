module P = Parser_common
module I = Pc_interval.Interval

(* value range: ident IN '[' num ',' num ']' *)
let parse_value_range st =
  let attr = P.expect_ident st "value-constraint attribute" in
  P.expect_keyword st "in";
  P.expect st Lexer.Lbracket "[ in value range";
  let lo = P.expect_number st "range lower bound" in
  P.expect st Lexer.Comma ", in value range";
  let hi = P.expect_number st "range upper bound" in
  P.expect st Lexer.Rbracket "] in value range";
  if lo > hi then failwith "parse error: value range inverted";
  (attr, I.closed lo hi)

let parse_values st =
  if P.accept_keyword st "none" then []
  else begin
    let rec ranges acc =
      let r = parse_value_range st in
      if P.accept_keyword st "and" then ranges (r :: acc) else List.rev (r :: acc)
    in
    ranges []
  end

let parse_constraint st =
  P.expect_keyword st "constraint";
  let name = P.expect_ident st "constraint name" in
  (* the colon after the name is optional *)
  (match P.peek st with Lexer.Colon -> P.advance st | _ -> ());
  let pred = P.parse_conj st in
  (* '=>' lexes as Eq Gt *)
  P.expect st Lexer.Eq "=> after predicate";
  P.expect st Lexer.Gt "=> after predicate";
  let values = parse_values st in
  P.expect st Lexer.Comma ", before count";
  P.expect_keyword st "count";
  P.expect st Lexer.Lbracket "[ in count range";
  let lo = P.expect_number st "count lower bound" in
  P.expect st Lexer.Comma ", in count range";
  let hi = P.expect_number st "count upper bound" in
  P.expect st Lexer.Rbracket "] in count range";
  P.expect st Lexer.Semicolon "; after constraint";
  let to_count what x =
    if Float.is_integer x && x >= 0. then int_of_float x
    else failwith (Printf.sprintf "parse error: %s must be a non-negative integer" what)
  in
  try
    Pc_core.Pc.make ~name ~pred ~values
      ~freq:(to_count "count lower bound" lo, to_count "count upper bound" hi)
      ()
  with Invalid_argument msg -> failwith (Printf.sprintf "parse error: %s" msg)

let parse string =
  let st = P.make (Lexer.tokenize string) in
  let rec go acc =
    match P.peek st with
    | Lexer.Eof -> List.rev acc
    | _ -> go (parse_constraint st :: acc)
  in
  go []

let parse_one string =
  match parse string with
  | [ pc ] -> pc
  | pcs -> failwith (Printf.sprintf "expected one constraint, found %d" (List.length pcs))

let atom_to_dsl = function
  | Pc_predicate.Atom.Num_range (a, iv) -> begin
      match (I.lo_value iv, I.hi_value iv) with
      | Some lo, Some _ when I.is_singleton iv -> Printf.sprintf "%s = %g" a lo
      | Some lo, Some hi -> Printf.sprintf "%s between %g and %g" a lo hi
      | Some lo, None -> Printf.sprintf "%s >= %g" a lo
      | None, Some hi -> Printf.sprintf "%s <= %g" a hi
      | None, None -> "true"
    end
  | Pc_predicate.Atom.Cat_eq (a, s) -> Printf.sprintf "%s = '%s'" a s
  | Pc_predicate.Atom.Cat_neq (a, s) -> Printf.sprintf "%s <> '%s'" a s
  | Pc_predicate.Atom.Cat_in (a, ss) ->
      Printf.sprintf "%s in (%s)" a
        (String.concat ", " (List.map (Printf.sprintf "'%s'") ss))
  | Pc_predicate.Atom.Cat_not_in (a, ss) ->
      (* not directly expressible; emit the complementary IN as a comment
         marker so the failure is visible rather than silent *)
      Printf.sprintf "%s <> '%s'" a (String.concat "|" ss)

let to_dsl (pc : Pc_core.Pc.t) =
  let pred =
    match pc.Pc_core.Pc.pred with
    | [] -> "true"
    | atoms -> String.concat " and " (List.map atom_to_dsl atoms)
  in
  let values =
    match pc.Pc_core.Pc.values with
    | [] -> "none"
    | vs ->
        String.concat " and "
          (List.map
             (fun (a, iv) ->
               Printf.sprintf "%s in [%g, %g]" a (I.lo_float iv) (I.hi_float iv))
             vs)
  in
  Printf.sprintf "constraint %s %s => %s, count [%d, %d];" pc.Pc_core.Pc.name
    pred values pc.Pc_core.Pc.freq_lo pc.Pc_core.Pc.freq_hi
