(** Parser for the predicate-constraint DSL, so constraints can be
    checked into a repository next to the analyses they guard:

    {v
    -- the most expensive Chicago product costs 149.99;
    -- at most 5 are sold
    constraint chicago_cap:
      branch = 'Chicago' => price in [0.0, 149.99], count [0, 5];

    constraint everything:
      true => price in [0.0, 149.99], count [0, 100];
    v}

    A file is a sequence of such declarations; [--] starts a line
    comment. Value constraints may list several ranges joined by AND, or
    be the keyword [none] when the constraint only bounds frequency. *)

val parse : string -> Pc_core.Pc.t list
(** Raises [Failure] on syntax errors. *)

val parse_one : string -> Pc_core.Pc.t

val to_dsl : Pc_core.Pc.t -> string
(** Render a PC back into parseable DSL text (round-trips through
    {!parse_one} for PCs built from closed ranges). *)
