module P = Parser_common
module Q = Pc_query.Query

let parse_agg st =
  let kind = P.expect_ident st "aggregate function" in
  P.expect st Lexer.Lparen "( after aggregate" ;
  let agg =
    match String.lowercase_ascii kind with
    | "count" ->
        P.expect st Lexer.Star "* in COUNT(*)";
        Q.Count
    | "sum" -> Q.Sum (P.expect_ident st "attribute in SUM()")
    | "avg" -> Q.Avg (P.expect_ident st "attribute in AVG()")
    | "min" -> Q.Min (P.expect_ident st "attribute in MIN()")
    | "max" -> Q.Max (P.expect_ident st "attribute in MAX()")
    | other -> failwith (Printf.sprintf "parse error: unknown aggregate %S" other)
  in
  P.expect st Lexer.Rparen ") after aggregate";
  agg

let parse string =
  let st = P.make (Lexer.tokenize string) in
  P.expect_keyword st "select";
  let agg = parse_agg st in
  if P.accept_keyword st "from" then ignore (P.expect_ident st "table name");
  let where_ =
    if P.accept_keyword st "where" then P.parse_conj st else Pc_predicate.Pred.tt
  in
  (match P.peek st with
  | Lexer.Semicolon -> P.advance st
  | _ -> ());
  P.expect st Lexer.Eof "end of query";
  { Q.agg; where_ }

let parse_predicate string =
  let st = P.make (Lexer.tokenize string) in
  let pred = P.parse_conj st in
  P.expect st Lexer.Eof "end of predicate";
  pred
