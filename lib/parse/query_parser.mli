(** Parser for the aggregate-query fragment the framework supports:

    {v
    SELECT SUM(price) FROM sales WHERE utc >= 10 AND branch = 'Chicago'
    SELECT COUNT( * ) WHERE price BETWEEN 5 AND 10
    SELECT MAX(price) WHERE branch IN ('Chicago', 'New York')
    v}

    The FROM clause is optional and ignored (queries run against the
    relation supplied at evaluation time). Keywords are
    case-insensitive. *)

val parse : string -> Pc_query.Query.t
(** Raises [Failure] with a description on syntax errors. *)

val parse_predicate : string -> Pc_predicate.Pred.t
(** Parses a bare conjunction (the WHERE-clause sublanguage). *)
