module I = Pc_interval.Interval

type t =
  | Num_range of string * I.t
  | Cat_eq of string * string
  | Cat_neq of string * string
  | Cat_in of string * string list
  | Cat_not_in of string * string list

let attr = function
  | Num_range (a, _)
  | Cat_eq (a, _)
  | Cat_neq (a, _)
  | Cat_in (a, _)
  | Cat_not_in (a, _) ->
      a

let eval schema t row =
  let get name = row.(Pc_data.Schema.index schema name) in
  match t with
  | Num_range (a, iv) -> I.contains iv (Pc_data.Value.as_num (get a))
  | Cat_eq (a, s) -> String.equal (Pc_data.Value.as_str (get a)) s
  | Cat_neq (a, s) -> not (String.equal (Pc_data.Value.as_str (get a)) s)
  | Cat_in (a, ss) ->
      let v = Pc_data.Value.as_str (get a) in
      List.exists (String.equal v) ss
  | Cat_not_in (a, ss) ->
      let v = Pc_data.Value.as_str (get a) in
      not (List.exists (String.equal v) ss)

let negate = function
  | Num_range (a, iv) -> List.map (fun c -> Num_range (a, c)) (I.complement iv)
  | Cat_eq (a, s) -> [ Cat_neq (a, s) ]
  | Cat_neq (a, s) -> [ Cat_eq (a, s) ]
  | Cat_in (a, ss) -> [ Cat_not_in (a, ss) ]
  | Cat_not_in (a, ss) -> [ Cat_in (a, ss) ]

let norm_set ss = List.sort_uniq String.compare ss

let compare a b =
  match (a, b) with
  | Num_range (x, i), Num_range (y, j) ->
      let c = String.compare x y in
      if c <> 0 then c else I.compare i j
  | Cat_eq (x, s), Cat_eq (y, t) | Cat_neq (x, s), Cat_neq (y, t) ->
      let c = String.compare x y in
      if c <> 0 then c else String.compare s t
  | Cat_in (x, s), Cat_in (y, t) | Cat_not_in (x, s), Cat_not_in (y, t) ->
      let c = String.compare x y in
      if c <> 0 then c else Stdlib.compare (norm_set s) (norm_set t)
  | Num_range _, _ -> -1
  | _, Num_range _ -> 1
  | Cat_eq _, _ -> -1
  | _, Cat_eq _ -> 1
  | Cat_neq _, _ -> -1
  | _, Cat_neq _ -> 1
  | Cat_in _, _ -> -1
  | _, Cat_in _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Num_range (a, iv) -> Format.fprintf ppf "%s in %a" a I.pp iv
  | Cat_eq (a, s) -> Format.fprintf ppf "%s = '%s'" a s
  | Cat_neq (a, s) -> Format.fprintf ppf "%s <> '%s'" a s
  | Cat_in (a, ss) ->
      Format.fprintf ppf "%s in {%s}" a (String.concat ", " ss)
  | Cat_not_in (a, ss) ->
      Format.fprintf ppf "%s not in {%s}" a (String.concat ", " ss)

let to_string t = Format.asprintf "%a" pp t
let between a lo hi = Num_range (a, I.closed lo hi)
let at_least a x = Num_range (a, I.at_least x)
let at_most a x = Num_range (a, I.at_most x)
let greater_than a x = Num_range (a, I.greater_than x)
let less_than a x = Num_range (a, I.less_than x)
let num_eq a x = Num_range (a, I.point x)
let cat_eq a s = Cat_eq (a, s)
