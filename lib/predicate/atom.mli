(** Atomic constraints over a single attribute.

    Predicates in the PC framework are conjunctions of these atoms
    (paper §3.1): numeric range constraints and categorical
    (in)equalities/memberships. *)

type t =
  | Num_range of string * Pc_interval.Interval.t
      (** attribute value lies in the interval *)
  | Cat_eq of string * string
  | Cat_neq of string * string
  | Cat_in of string * string list
  | Cat_not_in of string * string list

val attr : t -> string

val eval : Pc_data.Schema.t -> t -> Pc_data.Relation.tuple -> bool
(** Raises if the attribute is absent from the schema or has the wrong
    kind. *)

val negate : t -> t list
(** Negation as a disjunction of atoms (0, 1, or 2 of them — a bounded
    numeric range negates to two rays). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Convenience constructors. *)

val between : string -> float -> float -> t
(** Closed range [lo, hi]. *)

val at_least : string -> float -> t
val at_most : string -> float -> t
val greater_than : string -> float -> t
val less_than : string -> float -> t
val num_eq : string -> float -> t
val cat_eq : string -> string -> t
