module I = Pc_interval.Interval
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type cat = In of string list | Not_in of string list

(* Internal categorical representation uses sets for efficiency. *)
type cat_internal = CIn of SSet.t | CNot_in of SSet.t

type t = {
  num : I.t SMap.t;
  cat : cat_internal SMap.t;
  universe : SSet.t SMap.t;  (** optional finite domains for cat attrs *)
}

let top = { num = SMap.empty; cat = SMap.empty; universe = SMap.empty }

let with_universe u =
  {
    top with
    universe =
      List.fold_left
        (fun acc (a, vs) -> SMap.add a (SSet.of_list vs) acc)
        SMap.empty u;
  }

let check_kinds t attr ~numeric =
  if numeric then begin
    if SMap.mem attr t.cat then
      invalid_arg (Printf.sprintf "Box: attribute %s used as both kinds" attr)
  end
  else if SMap.mem attr t.num then
    invalid_arg (Printf.sprintf "Box: attribute %s used as both kinds" attr)

let cat_nonempty t attr = function
  | CIn s -> not (SSet.is_empty s)
  | CNot_in excl -> (
      match SMap.find_opt attr t.universe with
      | None -> true (* open universe: some string always remains *)
      | Some u -> not (SSet.subset u excl))

let restrict_cat t attr incoming =
  let current = SMap.find_opt attr t.cat in
  let combined =
    match (current, incoming) with
    | None, c -> c
    | Some (CIn a), CIn b -> CIn (SSet.inter a b)
    | Some (CIn a), CNot_in b -> CIn (SSet.diff a b)
    | Some (CNot_in a), CIn b -> CIn (SSet.diff b a)
    | Some (CNot_in a), CNot_in b -> CNot_in (SSet.union a b)
  in
  (* Clip an allowed set to the universe when one is declared. *)
  let combined =
    match (combined, SMap.find_opt attr t.universe) with
    | CIn s, Some u -> CIn (SSet.inter s u)
    | c, _ -> c
  in
  if cat_nonempty t attr combined then
    Some { t with cat = SMap.add attr combined t.cat }
  else None

let add_atom t atom =
  match atom with
  | Atom.Num_range (attr, iv) -> begin
      check_kinds t attr ~numeric:true;
      let current =
        Option.value (SMap.find_opt attr t.num) ~default:I.full
      in
      match I.intersect current iv with
      | Some iv' -> Some { t with num = SMap.add attr iv' t.num }
      | None -> None
    end
  | Atom.Cat_eq (attr, s) ->
      check_kinds t attr ~numeric:false;
      restrict_cat t attr (CIn (SSet.singleton s))
  | Atom.Cat_neq (attr, s) ->
      check_kinds t attr ~numeric:false;
      restrict_cat t attr (CNot_in (SSet.singleton s))
  | Atom.Cat_in (attr, ss) ->
      check_kinds t attr ~numeric:false;
      restrict_cat t attr (CIn (SSet.of_list ss))
  | Atom.Cat_not_in (attr, ss) ->
      check_kinds t attr ~numeric:false;
      restrict_cat t attr (CNot_in (SSet.of_list ss))

let add_pred t atoms =
  List.fold_left
    (fun acc atom -> Option.bind acc (fun box -> add_atom box atom))
    (Some t) atoms

let of_pred atoms = add_pred top atoms

let num_interval t attr =
  Option.value (SMap.find_opt attr t.num) ~default:I.full

let cat_constraint t attr =
  Option.map
    (function
      | CIn s -> In (SSet.elements s)
      | CNot_in s -> Not_in (SSet.elements s))
    (SMap.find_opt attr t.cat)

let fresh_outside excl =
  (* A string distinct from every excluded one: longer than all of them. *)
  let len =
    SSet.fold (fun s acc -> max acc (String.length s)) excl 0
  in
  String.make (len + 1) '_'

let witness t =
  let nums =
    SMap.bindings t.num
    |> List.map (fun (a, iv) -> (a, Pc_data.Value.Num (I.midpoint iv)))
  and cats =
    SMap.bindings t.cat
    |> List.map (fun (a, c) ->
           let s =
             match c with
             | CIn s -> SSet.min_elt s
             | CNot_in excl -> (
                 match SMap.find_opt a t.universe with
                 | Some u -> SSet.min_elt (SSet.diff u excl)
                 | None -> fresh_outside excl)
           in
           (a, Pc_data.Value.Str s))
  in
  nums @ cats

let contains schema t row =
  let num_ok =
    SMap.for_all
      (fun attr iv ->
        match Pc_data.Schema.index_opt schema attr with
        | None -> true
        | Some i -> I.contains iv (Pc_data.Value.as_num row.(i)))
      t.num
  and cat_ok =
    SMap.for_all
      (fun attr c ->
        match Pc_data.Schema.index_opt schema attr with
        | None -> true
        | Some i -> (
            let v = Pc_data.Value.as_str row.(i) in
            match c with
            | CIn s -> SSet.mem v s
            | CNot_in s -> not (SSet.mem v s)))
      t.cat
  in
  num_ok && cat_ok

let pp ppf t =
  let items =
    List.map
      (fun (a, iv) -> Format.asprintf "%s in %a" a I.pp iv)
      (SMap.bindings t.num)
    @ List.map
        (fun (a, c) ->
          match c with
          | CIn s ->
              Format.asprintf "%s in {%s}" a (String.concat "," (SSet.elements s))
          | CNot_in s ->
              Format.asprintf "%s not in {%s}" a
                (String.concat "," (SSet.elements s)))
        (SMap.bindings t.cat)
  in
  Format.fprintf ppf "{%s}" (String.concat "; " items)
