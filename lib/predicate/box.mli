(** A box is the solved form of a conjunction of atoms: one independent
    constraint per attribute. Boxes are the workhorse of satisfiability
    testing — a conjunction is satisfiable iff its box is non-empty, and
    attributes never interact.

    Categorical attributes over an unbounded string universe: an exclusion
    constraint alone is always satisfiable. When a finite universe is
    supplied ({!with_universe}), exclusions that rule out every universe
    value make the box empty. *)

type cat = In of string list | Not_in of string list
(** [In] is a non-empty allowed set; [Not_in] an excluded set (possibly
    empty, meaning unconstrained). *)

type t

val top : t
(** The unconstrained box. *)

val with_universe : (string * string list) list -> t
(** [with_universe u] is {!top} plus finite domains for the listed
    categorical attributes. *)

val add_atom : t -> Atom.t -> t option
(** Conjoin one atom; [None] when the result is empty. Raises
    [Invalid_argument] when the attribute is used with conflicting kinds. *)

val add_pred : t -> Atom.t list -> t option
(** Conjoin a conjunction of atoms. *)

val of_pred : Atom.t list -> t option

val num_interval : t -> string -> Pc_interval.Interval.t
(** Constraint on a numeric attribute ([Interval.full] if absent). *)

val cat_constraint : t -> string -> cat option
(** Constraint on a categorical attribute; [None] if unconstrained. *)

val witness : t -> (string * Pc_data.Value.t) list
(** One satisfying assignment for the constrained attributes. For an
    exclusion constraint over an open universe, invents a fresh string. *)

val contains : Pc_data.Schema.t -> t -> Pc_data.Relation.tuple -> bool
(** Tuple membership (attributes absent from the box are unconstrained).
    Only attributes present in the schema are checked. *)

val pp : Format.formatter -> t -> unit
