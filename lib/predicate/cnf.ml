type clause = Atom.t list

type t = clause list

let tt = []
let of_pred p = List.map (fun atom -> [ atom ]) p
let of_neg_pred p = [ List.concat_map Atom.negate p ]
let conj = ( @ )

let eval schema t row =
  List.for_all
    (fun clause -> List.exists (fun atom -> Atom.eval schema atom row) clause)
    t

let pp ppf t =
  let pp_clause ppf clause =
    match clause with
    | [] -> Format.fprintf ppf "FALSE"
    | atoms ->
        Format.fprintf ppf "(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf " OR ")
             Atom.pp)
          atoms
  in
  match t with
  | [] -> Format.fprintf ppf "TRUE"
  | clauses ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " AND ")
        pp_clause ppf clauses
