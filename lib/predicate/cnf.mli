(** Cell expressions in conjunctive normal form over interval atoms.

    A cell of the decomposition (paper §4.1) is
    [ψ_{i1} ∧ … ∧ ψ_{ik} ∧ ¬ψ_{j1} ∧ … ∧ ¬ψ_{jm}]: positive predicates
    contribute unit clauses per atom, each negated predicate contributes a
    single clause (the disjunction of its negated atoms). *)

type clause = Atom.t list
(** Disjunction; [[]] is False. *)

type t = clause list
(** Conjunction of clauses; [[]] is True. *)

val tt : t
val of_pred : Pred.t -> t
val of_neg_pred : Pred.t -> t
(** [of_neg_pred p] is [¬p] as CNF: one clause. The negation of the
    tautology is False (the single empty clause). *)

val conj : t -> t -> t
val eval : Pc_data.Schema.t -> t -> Pc_data.Relation.tuple -> bool
val pp : Format.formatter -> t -> unit
