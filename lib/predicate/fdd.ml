(* Interval FDDs: ordered-attribute decision diagrams over predicate sets.

   A compiled diagram tests attributes in a fixed global order (ascending
   attribute name). Numeric nodes carry an edge list whose intervals
   partition the whole real line (ascending, disjoint, gap-free);
   categorical nodes carry sorted explicit cases plus a default edge for
   the open string universe. Leaves are the sorted sets of predicate
   indices satisfied along the path, so every root-to-leaf path is a
   non-empty product box and the distinct non-empty leaves reachable
   under a query are exactly the satisfiable cells of the decomposition
   (paper §4.1).

   Nodes are hash-consed through a per-compile unit table: structural
   equality collapses to physical equality, which makes the memoized
   union apply O(shared structure) and gives canonical leaf identities
   for free. Keeping the unit table inside [compiled] (rather than
   global) means a compiled diagram is immutable after [compile] and can
   be walked concurrently from server threads without locking. *)

module I = Pc_interval.Interval
module Counter = Pc_obs.Registry.Counter

let c_compiles = Counter.make "fdd.compiles"
let c_nodes = Counter.make "fdd.nodes"

type node =
  | Leaf of int list  (** sorted indices of predicates satisfied here *)
  | Num of string * (I.t * t) array
      (** disjoint ascending intervals covering ℝ *)
  | Cat of string * (string * t) array * t
      (** sorted explicit cases, then the default edge *)

and t = { id : int; node : node }

(* Hash-cons key: children by id so lookup cost is independent of
   subtree size. *)
type key =
  | KLeaf of int list
  | KNum of string * (I.t * int) array
  | KCat of string * (string * int) array * int

type manager = { tbl : (key, t) Hashtbl.t; mutable next : int }
type compiled = { root : t; n_preds : int; mgr : manager }

let key_of_node = function
  | Leaf ids -> KLeaf ids
  | Num (a, edges) -> KNum (a, Array.map (fun (iv, c) -> (iv, c.id)) edges)
  | Cat (a, cases, d) ->
      KCat (a, Array.map (fun (s, c) -> (s, c.id)) cases, d.id)

let mk mgr node =
  let k = key_of_node node in
  match Hashtbl.find_opt mgr.tbl k with
  | Some t -> t
  | None ->
      let t = { id = mgr.next; node } in
      mgr.next <- mgr.next + 1;
      Hashtbl.add mgr.tbl k t;
      t

let mk_leaf mgr ids = mk mgr (Leaf ids)

(* [edges] must be an ascending partition of ℝ. Adjacent edges with the
   same (hash-consed, hence physically equal) child are coalesced with
   [hull] — sound because a partition's neighbours always abut — and a
   single surviving edge means the attribute does not discriminate. *)
let mk_num mgr attr edges =
  let coalesced =
    List.fold_left
      (fun acc (iv, c) ->
        match acc with
        | (iv', c') :: rest when c' == c -> (I.hull iv' iv, c') :: rest
        | _ -> (iv, c) :: acc)
      [] edges
    |> List.rev
  in
  match coalesced with
  | [ (_, c) ] -> c
  | edges -> mk mgr (Num (attr, Array.of_list edges))

let mk_cat mgr attr cases default =
  let cases = List.filter (fun (_, c) -> not (c == default)) cases in
  let cases = List.sort (fun (a, _) (b, _) -> String.compare a b) cases in
  match cases with
  | [] -> default
  | _ -> mk mgr (Cat (attr, Array.of_list cases, default))

let kind_error attr =
  invalid_arg
    (Printf.sprintf "Fdd: attribute %s used as both numeric and categorical"
       attr)

(* ---- Per-predicate constraint extraction ---------------------------- *)

(* A conjunction of atoms collapses to at most one constraint per
   attribute. [None] from [pred_constraints] means the predicate is
   unsatisfiable on its own (over independent attributes — the same
   notion of satisfiability the DFS decomposer's solver uses). *)
type constr =
  | Cnum of I.t
  | Cin of string list  (** sorted, non-empty *)
  | Cnot_in of string list  (** sorted *)

(* Polymorphic hashing treats -0. and 0. differently even though (=)
   equates them; normalize endpoints so hash-cons keys are stable. *)
let norm_ep = function
  | I.Closed x -> I.Closed (x +. 0.)
  | I.Open x -> I.Open (x +. 0.)
  | e -> e

let norm_iv iv = I.make_exn (norm_ep iv.I.lo) (norm_ep iv.I.hi)

let diff_sorted xs ys = List.filter (fun x -> not (List.mem x ys)) xs
let inter_sorted xs ys = List.filter (fun x -> List.mem x ys) xs

let conj_constr attr c1 c2 =
  match (c1, c2) with
  | Cnum a, Cnum b -> (
      match I.intersect a b with Some iv -> Some (Cnum iv) | None -> None)
  | Cin a, Cin b -> (
      match inter_sorted a b with [] -> None | l -> Some (Cin l))
  | Cin a, Cnot_in b | Cnot_in b, Cin a -> (
      match diff_sorted a b with [] -> None | l -> Some (Cin l))
  | Cnot_in a, Cnot_in b ->
      Some (Cnot_in (List.sort_uniq String.compare (a @ b)))
  | Cnum _, (Cin _ | Cnot_in _) | (Cin _ | Cnot_in _), Cnum _ ->
      kind_error attr

let constr_of_atom = function
  | Atom.Num_range (_, iv) -> Cnum (norm_iv iv)
  | Atom.Cat_eq (_, s) -> Cin [ s ]
  | Atom.Cat_neq (_, s) -> Cnot_in [ s ]
  | Atom.Cat_in (_, ss) -> Cin (List.sort_uniq String.compare ss)
  | Atom.Cat_not_in (_, ss) -> Cnot_in (List.sort_uniq String.compare ss)

(* Constraints sorted by attribute name — the FDD's global order. *)
let pred_constraints (p : Pred.t) : (string * constr) list option =
  let exception Unsat in
  try
    let acc =
      List.fold_left
        (fun acc atom ->
          let a = Atom.attr atom in
          let c = constr_of_atom atom in
          match c with
          | Cin [] -> raise Unsat
          | _ -> (
              match List.assoc_opt a acc with
              | None -> (a, c) :: acc
              | Some c0 -> (
                  match conj_constr a c0 c with
                  | None -> raise Unsat
                  | Some c' -> (a, c') :: List.remove_assoc a acc)))
        [] p
    in
    Some
      (List.sort (fun (a, _) (b, _) -> String.compare a b) acc)
  with Unsat -> None

(* ---- Building a single predicate's chain ---------------------------- *)

let constr_node mgr ~yes ~no (attr, c) =
  match c with
  | Cnum iv ->
      let below, above =
        match I.complement iv with
        | [] -> ([], [])
        | [ c ] -> if I.compare_lo c iv < 0 then ([ c ], []) else ([], [ c ])
        | [ c1; c2 ] -> ([ c1 ], [ c2 ])
        | _ -> assert false
      in
      let edge b = (b, no) in
      mk_num mgr attr
        (List.map edge below @ [ (iv, yes) ] @ List.map edge above)
  | Cin ss -> mk_cat mgr attr (List.map (fun s -> (s, yes)) ss) no
  | Cnot_in ss -> mk_cat mgr attr (List.map (fun s -> (s, no)) ss) yes

let pred_fdd mgr ~idx constraints =
  let no = mk_leaf mgr [] in
  let yes = mk_leaf mgr [ idx ] in
  List.fold_right (fun ac acc -> constr_node mgr ~yes:acc ~no ac) constraints
    yes

(* ---- Union apply ---------------------------------------------------- *)

let union_ids xs ys =
  let rec go xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | x :: xt, y :: yt ->
        if x < y then x :: go xt ys
        else if x > y then y :: go xs yt
        else x :: go xt yt
  in
  go xs ys

(* Zip two ascending partitions of ℝ into their common refinement,
   combining children with [f]. Both covers start at -∞ and the pointer
   with the smaller upper endpoint advances, so the current pair always
   overlaps. *)
let merge_partitions f e1 e2 =
  let n1 = Array.length e1 and n2 = Array.length e2 in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < n1 && !j < n2 do
    let iv1, c1 = e1.(!i) and iv2, c2 = e2.(!j) in
    (match I.intersect iv1 iv2 with
    | Some iv -> out := (iv, f c1 c2) :: !out
    | None -> assert false);
    let c = I.compare_hi iv1 iv2 in
    if c <= 0 then incr i;
    if c >= 0 then incr j
  done;
  List.rev !out

let attr_of = function Leaf _ -> None | Num (a, _) | Cat (a, _, _) -> Some a

let find_case cases default s =
  match
    Array.fold_left
      (fun found (l, c) -> if String.equal l s then Some c else found)
      None cases
  with
  | Some c -> c
  | None -> default

let rec union mgr memo a b =
  if a == b then a
  else
    let k = if a.id < b.id then (a.id, b.id) else (b.id, a.id) in
    match Hashtbl.find_opt memo k with
    | Some r -> r
    | None ->
        let r = union_raw mgr memo a b in
        Hashtbl.add memo k r;
        r

and union_raw mgr memo a b =
  let recur x y = union mgr memo x y in
  match (a.node, b.node) with
  | Leaf xs, Leaf ys -> mk_leaf mgr (union_ids xs ys)
  | an, bn -> (
      (* The smaller attribute splits first; the other side rides along
         unchanged on every edge. *)
      let first =
        match (attr_of an, attr_of bn) with
        | None, None -> assert false
        | Some _, None -> `A
        | None, Some _ -> `B
        | Some x, Some y ->
            let c = String.compare x y in
            if c < 0 then `A else if c > 0 then `B else `Both
      in
      match (first, an, bn) with
      | `A, Num (attr, edges), _ ->
          mk_num mgr attr
            (List.map (fun (iv, c) -> (iv, recur c b)) (Array.to_list edges))
      | `A, Cat (attr, cases, d), _ ->
          mk_cat mgr attr
            (List.map (fun (s, c) -> (s, recur c b)) (Array.to_list cases))
            (recur d b)
      | `B, _, Num (attr, edges) ->
          mk_num mgr attr
            (List.map (fun (iv, c) -> (iv, recur a c)) (Array.to_list edges))
      | `B, _, Cat (attr, cases, d) ->
          mk_cat mgr attr
            (List.map (fun (s, c) -> (s, recur a c)) (Array.to_list cases))
            (recur a d)
      | `Both, Num (attr, e1), Num (_, e2) ->
          mk_num mgr attr (merge_partitions recur e1 e2)
      | `Both, Cat (attr, c1, d1), Cat (_, c2, d2) ->
          let labels =
            List.sort_uniq String.compare
              (Array.to_list (Array.map fst c1)
              @ Array.to_list (Array.map fst c2))
          in
          mk_cat mgr attr
            (List.map
               (fun s ->
                 (s, recur (find_case c1 d1 s) (find_case c2 d2 s)))
               labels)
            (recur d1 d2)
      | `Both, Num (attr, _), Cat _ | `Both, Cat (attr, _, _), Num _ ->
          kind_error attr
      | _ -> assert false)

(* ---- Compile -------------------------------------------------------- *)

let compile preds =
  let mgr = { tbl = Hashtbl.create 256; next = 0 } in
  let empty = mk_leaf mgr [] in
  let per_pred =
    Array.mapi
      (fun i p ->
        match pred_constraints p with
        | None -> empty
        | Some cs -> pred_fdd mgr ~idx:i cs)
      preds
  in
  (* Balanced reduce keeps intermediate diagrams small and the apply
     memo effective across sibling merges. *)
  let memo = Hashtbl.create 256 in
  let rec reduce lo hi =
    if hi <= lo then empty
    else if hi - lo = 1 then per_pred.(lo)
    else
      let mid = (lo + hi) / 2 in
      union mgr memo (reduce lo mid) (reduce mid hi)
  in
  let root = reduce 0 (Array.length preds) in
  Counter.incr c_compiles;
  Counter.add c_nodes mgr.next;
  { root; n_preds = Array.length preds; mgr }

let n_preds t = t.n_preds
let n_nodes t = t.mgr.next

(* ---- Cell enumeration ----------------------------------------------- *)

(* DFS emission order of the reference decomposer: positive branch
   first, i.e. between two sorted active sets the one containing the
   smaller uncommon index comes first, and a set that ends is *later*
   than one that continues (the continuation includes an index the
   other excludes). *)
let rec dfs_order a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> 1
  | _ :: _, [] -> -1
  | x :: a', y :: b' ->
      let c = Int.compare x y in
      if c <> 0 then c else dfs_order a' b'

let cells ?(query = Pred.tt) t =
  match pred_constraints query with
  | None -> []
  | Some qcs ->
      (* Reachability under per-attribute query constraints is a global
         property of a node, so the visited memo is sound even though a
         node is shared across many paths. *)
      let visited = Hashtbl.create 64 in
      let leaves = ref [] in
      let rec go n =
        if not (Hashtbl.mem visited n.id) then begin
          Hashtbl.add visited n.id ();
          match n.node with
          | Leaf [] -> ()
          | Leaf ids -> leaves := ids :: !leaves
          | Num (attr, edges) -> (
              match List.assoc_opt attr qcs with
              | None -> Array.iter (fun (_, c) -> go c) edges
              | Some (Cnum q) ->
                  Array.iter (fun (iv, c) -> if I.overlaps iv q then go c) edges
              | Some (Cin _ | Cnot_in _) -> kind_error attr)
          | Cat (attr, cases, default) -> (
              match List.assoc_opt attr qcs with
              | None ->
                  Array.iter (fun (_, c) -> go c) cases;
                  go default
              | Some (Cin ss) ->
                  let covered = ref 0 in
                  Array.iter
                    (fun (l, c) ->
                      if List.mem l ss then begin
                        incr covered;
                        go c
                      end)
                    cases;
                  if !covered < List.length ss then go default
              | Some (Cnot_in ss) ->
                  Array.iter
                    (fun (l, c) -> if not (List.mem l ss) then go c)
                    cases;
                  (* open string universe: a value outside cases ∪ ss
                     always exists, so the default stays reachable *)
                  go default
              | Some (Cnum _) -> kind_error attr)
        end
      in
      go t.root;
      List.sort dfs_order !leaves

let active_pcs ?query t =
  List.fold_left (fun acc ids -> union_ids acc ids) [] (cells ?query t)

(* ---- Row routing ---------------------------------------------------- *)

let route t schema row =
  let rec go n =
    match n.node with
    | Leaf ids -> ids
    | Num (attr, edges) ->
        let x = Pc_data.Value.as_num row.(Pc_data.Schema.index schema attr) in
        if Float.is_nan x then invalid_arg "Fdd.route: NaN attribute value";
        let rec find i =
          let iv, c = edges.(i) in
          if I.contains iv x then go c else find (i + 1)
        in
        find 0
    | Cat (attr, cases, default) ->
        let s = Pc_data.Value.as_str row.(Pc_data.Schema.index schema attr) in
        let rec find i =
          if i >= Array.length cases then go default
          else
            let l, c = cases.(i) in
            let cc = String.compare s l in
            if cc = 0 then go c else if cc < 0 then go default else find (i + 1)
        in
        find 0
  in
  go t.root
