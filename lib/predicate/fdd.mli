(** Interval FDDs: hash-consed decision diagrams over predicate sets.

    Compiling a predicate-constraint set yields an ordered-attribute
    decision diagram: attributes are tested in ascending name order,
    numeric nodes fan out over disjoint intervals partitioning ℝ,
    categorical nodes over sorted explicit cases plus a default edge
    (the string universe is open), and each leaf is the sorted set of
    predicate indices satisfied along the path. Nodes are hash-consed
    through a unit table private to the compile, so a [compiled] value
    is immutable and safe to walk from multiple threads or domains.

    Every root-to-leaf path is a non-empty product box, which makes the
    distinct non-empty leaves reachable under a query exactly the
    satisfiable cells of the paper's decomposition (§4.1) — the basis of
    the [Fdd] strategy in [Pc_core.Cells], with the DFS decomposer kept
    as the reference oracle. *)

type compiled

val compile : Pred.t array -> compiled
(** Compile the predicate set into a shared diagram. Leaf index [i]
    refers to [preds.(i)]. Raises [Invalid_argument] if an attribute is
    used both numerically and categorically across the set. Registers
    under the [fdd.compiles] / [fdd.nodes] metrics counters. *)

val cells : ?query:Pred.t -> compiled -> int list list
(** Distinct non-empty active sets whose cell region intersects
    [query] (default: all), in the emission order of the reference DFS
    decomposer (positive branch first). [query] must be satisfiable per
    attribute or the result is [[]]. *)

val active_pcs : ?query:Pred.t -> compiled -> int list
(** Sorted union of the active sets of {!cells} under [query]: every
    predicate index that appears in some reachable non-empty leaf. This
    over-approximates the set of PCs whose frequency budget a bound for
    [query] can depend on — the basis of the server cache's delta-scoped
    invalidation (a batch consuming only PCs outside this set cannot
    change the query's answer). *)

val route : compiled -> Pc_data.Schema.t -> Pc_data.Relation.tuple -> int list
(** Active set of the cell hosting the row: one O(attrs) walk instead
    of evaluating every predicate. Raises if a tested attribute is
    absent from the schema or has the wrong kind. A row matching no
    predicate lands on the open-universe leaf and yields [[]]. *)

val n_preds : compiled -> int
(** Size of the compiled predicate set. *)

val n_nodes : compiled -> int
(** Unique hash-consed nodes allocated by the compile (diagram size). *)
