module I = Pc_interval.Interval

type t = Atom.t list

let tt = []
let conj atoms = atoms
let eval schema t row = List.for_all (fun a -> Atom.eval schema a row) t
let attrs t = List.map Atom.attr t |> List.sort_uniq String.compare
let to_box t = Box.of_pred t
let satisfiable t = Option.is_some (to_box t)

let implies_box box = function
  | [] -> true
  | atoms ->
      List.for_all
        (fun atom ->
          match atom with
          | Atom.Num_range (a, iv) -> I.subset (Box.num_interval box a) iv
          | Atom.Cat_eq (a, s) -> (
              match Box.cat_constraint box a with
              | Some (Box.In [ v ]) -> String.equal v s
              | Some (Box.In vs) -> List.for_all (String.equal s) vs
              | Some (Box.Not_in _) | None -> false)
          | Atom.Cat_neq (a, s) -> (
              match Box.cat_constraint box a with
              | Some (Box.In vs) -> not (List.exists (String.equal s) vs)
              | Some (Box.Not_in vs) -> List.exists (String.equal s) vs
              | None -> false)
          | Atom.Cat_in (a, ss) -> (
              match Box.cat_constraint box a with
              | Some (Box.In vs) ->
                  List.for_all (fun v -> List.exists (String.equal v) ss) vs
              | Some (Box.Not_in _) | None -> false)
          | Atom.Cat_not_in (a, ss) -> (
              match Box.cat_constraint box a with
              | Some (Box.In vs) ->
                  List.for_all
                    (fun v -> not (List.exists (String.equal v) ss))
                    vs
              | Some (Box.Not_in excl) ->
                  List.for_all
                    (fun s -> List.exists (String.equal s) excl)
                    ss
              | None -> false))
        atoms

let equal a b =
  let norm = List.sort_uniq Atom.compare in
  List.equal Atom.equal (norm a) (norm b)

let pp ppf = function
  | [] -> Format.fprintf ppf "TRUE"
  | atoms ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " AND ")
        Atom.pp ppf atoms

let to_string t = Format.asprintf "%a" pp t
