module I = Pc_interval.Interval

type t = Atom.t list

let tt = []
let conj atoms = atoms
let eval schema t row = List.for_all (fun a -> Atom.eval schema a row) t
let attrs t = List.map Atom.attr t |> List.sort_uniq String.compare
let to_box t = Box.of_pred t
let satisfiable t = Option.is_some (to_box t)

let implies_box box = function
  | [] -> true
  | atoms ->
      List.for_all
        (fun atom ->
          match atom with
          | Atom.Num_range (a, iv) -> I.subset (Box.num_interval box a) iv
          | Atom.Cat_eq (a, s) -> (
              match Box.cat_constraint box a with
              | Some (Box.In [ v ]) -> String.equal v s
              | Some (Box.In vs) -> List.for_all (String.equal s) vs
              | Some (Box.Not_in _) | None -> false)
          | Atom.Cat_neq (a, s) -> (
              match Box.cat_constraint box a with
              | Some (Box.In vs) -> not (List.exists (String.equal s) vs)
              | Some (Box.Not_in vs) -> List.exists (String.equal s) vs
              | None -> false)
          | Atom.Cat_in (a, ss) -> (
              match Box.cat_constraint box a with
              | Some (Box.In vs) ->
                  List.for_all (fun v -> List.exists (String.equal v) ss) vs
              | Some (Box.Not_in _) | None -> false)
          | Atom.Cat_not_in (a, ss) -> (
              match Box.cat_constraint box a with
              | Some (Box.In vs) ->
                  List.for_all
                    (fun v -> not (List.exists (String.equal v) ss))
                    vs
              | Some (Box.Not_in excl) ->
                  List.for_all
                    (fun s -> List.exists (String.equal s) excl)
                    ss
              | None -> false))
        atoms

let equal a b =
  let norm = List.sort_uniq Atom.compare in
  List.equal Atom.equal (norm a) (norm b)

let canonical t =
  let norm_atom = function
    | Atom.Cat_in (a, ss) -> Atom.Cat_in (a, List.sort_uniq String.compare ss)
    | Atom.Cat_not_in (a, ss) ->
        Atom.Cat_not_in (a, List.sort_uniq String.compare ss)
    | atom -> atom
  in
  List.sort_uniq Atom.compare (List.map norm_atom t)

(* Collision-free rendering for cache keys: %h prints floats exactly and
   %S escapes strings, so distinct canonical predicates never collide. *)
let canonical_key t =
  let ep = function
    | I.Neg_inf -> "-inf"
    | I.Pos_inf -> "+inf"
    | I.Closed x -> Printf.sprintf "c%h" x
    | I.Open x -> Printf.sprintf "o%h" x
  in
  let strings ss = String.concat ";" (List.map (Printf.sprintf "%S") ss) in
  let atom_key = function
    | Atom.Num_range (a, iv) ->
        Printf.sprintf "n%S[%s,%s]" a (ep iv.I.lo) (ep iv.I.hi)
    | Atom.Cat_eq (a, s) -> Printf.sprintf "e%S%S" a s
    | Atom.Cat_neq (a, s) -> Printf.sprintf "d%S%S" a s
    | Atom.Cat_in (a, ss) -> Printf.sprintf "i%S{%s}" a (strings ss)
    | Atom.Cat_not_in (a, ss) -> Printf.sprintf "x%S{%s}" a (strings ss)
  in
  match canonical t with
  | [] -> "TRUE"
  | atoms -> String.concat "&" (List.map atom_key atoms)

let pp ppf = function
  | [] -> Format.fprintf ppf "TRUE"
  | atoms ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " AND ")
        Atom.pp ppf atoms

let to_string t = Format.asprintf "%a" pp t
