(** Predicates: conjunctions of atoms, as restricted by the paper (§3.1).

    [tt] (the empty conjunction) is the tautology used for constraints that
    apply to every missing row, e.g. the paper's
    [c2 : TRUE => (0 <= price <= 149.99), (0, 100)]. *)

type t = Atom.t list
(** Conjunction; [[]] is True. *)

val tt : t
val conj : Atom.t list -> t
val eval : Pc_data.Schema.t -> t -> Pc_data.Relation.tuple -> bool
val attrs : t -> string list
(** Sorted distinct attribute names mentioned. *)

val to_box : t -> Box.t option
(** Solved form; [None] when the conjunction is unsatisfiable on its own. *)

val satisfiable : t -> bool

val implies_box : Box.t -> t -> bool
(** [implies_box box p]: every point of [box] satisfies [p]. Used by the
    decomposition to skip provably-redundant solver calls. Sound but not
    complete for categorical exclusions over an open universe. *)

val equal : t -> t -> bool

val canonical : t -> t
(** Canonical form: atoms sorted and deduplicated, categorical sets
    normalized. Two predicates that are syntactically equal up to atom
    order and set order share one canonical form. *)

val canonical_key : t -> string
(** Deterministic, collision-free string rendering of {!canonical}:
    floats are printed exactly (hex notation) and strings escaped, so
    equal keys imply equal canonical predicates. Used as the query
    component of the server's bound-cache key. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
