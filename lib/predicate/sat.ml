let call_count = ref 0
let calls () = !call_count
let reset_calls () = call_count := 0

(* Clause ordering heuristic: decide short clauses first — unit clauses
   are deterministic and prune the box before any branching happens. *)
let order_clauses cnf =
  List.stable_sort (fun a b -> Stdlib.compare (List.length a) (List.length b)) cnf

let solve ?(box = Box.top) cnf =
  incr call_count;
  let rec go box = function
    | [] -> Some box
    | [] :: _ -> None (* empty clause: unsatisfiable *)
    | clause :: rest ->
        List.find_map
          (fun atom ->
            match Box.add_atom box atom with
            | None -> None
            | Some box' -> go box' rest)
          clause
  in
  go box (order_clauses cnf)

let check ?box cnf = Option.is_some (solve ?box cnf)
