(* Counters are registered instruments (pc_obs registry), atomic so that
   per-domain solver work aggregates cleanly when decomposition or
   workload evaluation runs on several domains. The historical accessors
   below are thin views over the registered counters. *)
module Counter = Pc_obs.Registry.Counter

let call_count = Counter.make "sat.calls"
let atom_count = Counter.make "sat.atom_ops"
let calls () = Counter.get call_count
let atom_ops () = Counter.get atom_count

let reset_calls () =
  Counter.clear call_count;
  Counter.clear atom_count

let bump_atoms n = Counter.add atom_count n

(* Clause ordering heuristic: decide short clauses first — unit clauses
   are deterministic and prune the box before any branching happens.
   Lengths are precomputed (decorate-sort-undecorate) so the comparator
   is O(1) instead of rescanning each clause per comparison. *)
let order_clauses = function
  | ([] | [ _ ]) as cnf -> cnf
  | cnf ->
      List.map (fun clause -> (List.length clause, clause)) cnf
      |> List.stable_sort (fun (la, _) (lb, _) -> Int.compare la lb)
      |> List.map snd

let solve_search box cnf =
  let ops = ref 0 in
  let rec go box = function
    | [] -> Some box
    | [] :: _ -> None (* empty clause: unsatisfiable *)
    | clause :: rest ->
        List.find_map
          (fun atom ->
            incr ops;
            match Box.add_atom box atom with
            | None -> None
            | Some box' -> go box' rest)
          clause
  in
  let result = go box (order_clauses cnf) in
  bump_atoms !ops;
  result

let solve ?(box = Box.top) cnf =
  (* Fault injection: a real deployment's SAT call can die or stall.
     [Sat_fail] raises out of here and is absorbed by the degradation
     ladder; [Sat_slow] sleeps so deadlines fire. Disabled (the default)
     this is one atomic load. *)
  if Pc_fault.Fault.enabled () then begin
    Pc_fault.Fault.point Pc_fault.Fault.Sat_fail;
    Pc_fault.Fault.slow_point ()
  end;
  Counter.incr call_count;
  (* the branch keeps the disabled path closure-free *)
  if Pc_obs.Trace.enabled () then
    Pc_obs.Trace.with_span ~name:"sat.solve" (fun () -> solve_search box cnf)
  else solve_search box cnf

let check ?box cnf = Option.is_some (solve ?box cnf)

(* ------------------------------------------------------------------ *)
(* Resumable solving                                                   *)
(* ------------------------------------------------------------------ *)

type state = {
  box : Box.t;
  pending : Cnf.t;
  witness : Box.t option;
}

let certified st = Option.is_some st.witness

let start ?(box = Box.top) () = { box; pending = []; witness = Some box }

let assume_pred st pred =
  let n = List.length pred in
  bump_atoms n;
  match Box.add_pred st.box pred with
  | None -> None
  | Some box ->
      let witness =
        match st.witness with
        | None -> None
        | Some w ->
            bump_atoms n;
            Box.add_pred w pred
      in
      Some { box; pending = st.pending; witness }

let assume_clause st clause =
  bump_atoms (List.length clause);
  let alive =
    List.filter (fun atom -> Option.is_some (Box.add_atom st.box atom)) clause
  in
  match alive with
  | [] -> None
  | [ atom ] ->
      (* unit clause: deterministic, fold it into the box *)
      let box =
        match Box.add_atom st.box atom with
        | Some b -> b
        | None -> assert false (* alive above *)
      in
      let witness =
        match st.witness with
        | None -> None
        | Some w ->
            bump_atoms 1;
            Box.add_atom w atom
      in
      Some { box; pending = st.pending; witness }
  | _ when List.exists (fun atom -> Pred.implies_box st.box [ atom ]) alive ->
      (* the box already entails one disjunct: the clause is vacuous and
         the inherited witness (if any) still satisfies everything *)
      Some st
  | _ ->
      let witness =
        match st.witness with
        | None -> None
        | Some w ->
            bump_atoms (List.length alive);
            List.find_map (fun atom -> Box.add_atom w atom) alive
      in
      Some { st with pending = alive :: st.pending; witness }

let uncertify st = { st with witness = None }

let solve_state st =
  match st.witness with
  | Some _ -> Some st
  | None -> (
      match solve ~box:st.box st.pending with
      | None -> None
      | Some w -> Some { st with witness = Some w })

let state_box st = st.box
