(** Satisfiability of cell expressions (CNF over interval atoms).

    This is the library's substitute for the paper's use of Z3: the paper
    restricts predicates to conjunctions of ranges and inequalities exactly
    so that this decision problem is easy. The solver does DPLL-style
    branching over clause literals with an attribute-box store; pruning is
    by box emptiness. Sound and complete over independent attributes
    (numeric: interval domains; categorical: string domains, finite when a
    universe is supplied).

    Calls are counted in a global statistic so the decomposition
    experiments (Figure 7) can report solver effort. *)

val check : ?box:Box.t -> Cnf.t -> bool
(** [check cnf] decides satisfiability starting from [box]
    (default {!Box.top}, or a box built with {!Box.with_universe} to bound
    categorical domains). *)

val solve : ?box:Box.t -> Cnf.t -> Box.t option
(** Like {!check} but returns a witness box on success. *)

val calls : unit -> int
(** Number of [check]/[solve] invocations since {!reset_calls}. *)

val reset_calls : unit -> unit
