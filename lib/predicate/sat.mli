(** Satisfiability of cell expressions (CNF over interval atoms).

    This is the library's substitute for the paper's use of Z3: the paper
    restricts predicates to conjunctions of ranges and inequalities exactly
    so that this decision problem is easy. The solver does DPLL-style
    branching over clause literals with an attribute-box store; pruning is
    by box emptiness. Sound and complete over independent attributes
    (numeric: interval domains; categorical: string domains, finite when a
    universe is supplied).

    Calls are counted in a global statistic so the decomposition
    experiments (Figure 7) can report solver effort. Counters are
    {!Atomic} and therefore remain accurate when several domains solve
    concurrently. *)

val check : ?box:Box.t -> Cnf.t -> bool
(** [check cnf] decides satisfiability starting from [box]
    (default {!Box.top}, or a box built with {!Box.with_universe} to bound
    categorical domains). *)

val solve : ?box:Box.t -> Cnf.t -> Box.t option
(** Like {!check} but returns a witness box on success. *)

val calls : unit -> int
(** Number of [check]/[solve]/[solve_state] solver searches since
    {!reset_calls}. Cheap certificates ({!assume_pred}/{!assume_clause}
    resolving a branch via the box or an inherited witness) do not
    count. *)

val atom_ops : unit -> int
(** Number of atom-level box operations ([Box.add_atom] attempts) the
    solver has performed since {!reset_calls} — the machine-level measure
    of solver effort used by the decomposition benchmarks. *)

val reset_calls : unit -> unit
(** Reset both {!calls} and {!atom_ops}. *)

(** {2 Resumable solving}

    Incremental decomposition (see [Pc_core.Cells]) threads a solver
    {!state} down the DFS instead of re-solving the whole prefix CNF at
    every node. A state is the solved form of a prefix:

    - [box] — the deterministic narrowing: the conjunction of the query
      predicate, every positively-chosen predicate, and every unit clause
      propagated so far;
    - [pending] — the unresolved disjunctive clauses (negated
      predicates), already filtered against [box];
    - a [witness] sub-box, when known: every point of it satisfies the
      whole prefix, so satisfiability of an extension can often be
      certified by narrowing the witness — no search at all.

    [assume_*] return [None] only on {e definite} unsatisfiability.
    [Some st] with [certified st = false] means "not yet decided": call
    {!solve_state} to run branch-and-prune over the pending clauses,
    seeded from the inherited box. *)

type state

val start : ?box:Box.t -> unit -> state
(** Fresh state with an empty prefix; the optional [box] plays the same
    role as in {!check}. The empty prefix is trivially satisfiable. *)

val assume_pred : state -> Pred.t -> state option
(** Conjoin a conjunction of atoms (a positive predicate): a pure box
    narrowing, O(|pred|). [None] means the extended prefix is
    unsatisfiable. *)

val assume_clause : state -> Cnf.clause -> state option
(** Conjoin one disjunctive clause (a negated predicate). Atoms dead
    against the box are dropped ([None] if none survive), unit clauses
    are propagated into the box, entailed clauses are discarded, and the
    rest joins [pending]. *)

val certified : state -> bool
(** A witness is live: the prefix is known satisfiable at zero cost. *)

val uncertify : state -> state
(** Drop the witness, forcing the next {!solve_state} to run a real
    search. Used by eager strategies that account one solver search per
    extension ([Cells.Dfs], Optimization 2 without the rewrite rule). *)

val solve_state : state -> state option
(** Decide a non-certified state by branch-and-prune over [pending]
    seeded from the state's box (counted in {!calls}); [Some] re-arms the
    witness for the subtree below. Identity on certified states. *)

val state_box : state -> Box.t
(** The deterministic narrowing accumulated so far. *)
