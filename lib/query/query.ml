module Pred = Pc_predicate.Pred
module Relation = Pc_data.Relation

type agg = Count | Sum of string | Avg of string | Min of string | Max of string

type t = { agg : agg; where_ : Pred.t }

let make ?(where_ = Pred.tt) agg = { agg; where_ }
let count ?where_ () = make ?where_ Count
let sum ?where_ a = make ?where_ (Sum a)
let avg ?where_ a = make ?where_ (Avg a)
let min_ ?where_ a = make ?where_ (Min a)
let max_ ?where_ a = make ?where_ (Max a)

let agg_attr t =
  match t.agg with
  | Count -> None
  | Sum a | Avg a | Min a | Max a -> Some a

let selection rel t =
  let schema = Relation.schema rel in
  Relation.filter (fun row -> Pred.eval schema t.where_ row) rel

let eval rel t =
  let sel = selection rel t in
  let n = Relation.cardinality sel in
  match t.agg with
  | Count -> Some (float_of_int n)
  | Sum a -> Some (Pc_util.Stat.sum (Relation.column sel a))
  | Avg a -> if n = 0 then None else Some (Pc_util.Stat.mean (Relation.column sel a))
  | Min a ->
      if n = 0 then None else Some (Pc_util.Stat.minimum (Relation.column sel a))
  | Max a ->
      if n = 0 then None else Some (Pc_util.Stat.maximum (Relation.column sel a))

let eval_group_by rel t attr =
  let sel = selection rel t in
  Relation.group_by sel attr
  |> List.map (fun (key, group) -> (key, eval group { t with where_ = Pred.tt }))

let agg_to_string = function
  | Count -> "COUNT(*)"
  | Sum a -> Printf.sprintf "SUM(%s)" a
  | Avg a -> Printf.sprintf "AVG(%s)" a
  | Min a -> Printf.sprintf "MIN(%s)" a
  | Max a -> Printf.sprintf "MAX(%s)" a

let pp ppf t =
  Format.fprintf ppf "SELECT %s WHERE %a" (agg_to_string t.agg) Pred.pp t.where_

let to_string t = Format.asprintf "%a" pp t
