(** Aggregate queries of the shape the paper supports (§2):
    [SELECT agg(attr) FROM R WHERE conjunctive-predicate], plus GROUP BY as
    a union of such queries. *)

type agg = Count | Sum of string | Avg of string | Min of string | Max of string

type t = { agg : agg; where_ : Pc_predicate.Pred.t }

val make : ?where_:Pc_predicate.Pred.t -> agg -> t
val count : ?where_:Pc_predicate.Pred.t -> unit -> t
val sum : ?where_:Pc_predicate.Pred.t -> string -> t
val avg : ?where_:Pc_predicate.Pred.t -> string -> t
val min_ : ?where_:Pc_predicate.Pred.t -> string -> t
val max_ : ?where_:Pc_predicate.Pred.t -> string -> t

val agg_attr : t -> string option
(** The aggregated attribute; [None] for COUNT. *)

val eval : Pc_data.Relation.t -> t -> float option
(** Ground-truth evaluation. COUNT and SUM of an empty selection are [0.];
    AVG/MIN/MAX of an empty selection are [None]. *)

val eval_group_by :
  Pc_data.Relation.t -> t -> string -> (Pc_data.Value.t * float option) list
(** One result per group, in first-occurrence order. *)

val selection : Pc_data.Relation.t -> t -> Pc_data.Relation.t
(** Rows satisfying the WHERE clause. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
