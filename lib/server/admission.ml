module B = Pc_budget.Budget

type level = Full | Dual_only | Early_only | Floor_only

let level_name = function
  | Full -> "full"
  | Dual_only -> "dual-only"
  | Early_only -> "early-only"
  | Floor_only -> "floor-only"

let level_order = function
  | Full -> 0
  | Dual_only -> 1
  | Early_only -> 2
  | Floor_only -> 3

type policy = {
  full_below : int;
  dual_below : int;
  early_below : int;
  p99_slo_ms : float option;
}

let policy ?p99_slo_ms ~max_inflight () =
  if max_inflight <= 0 then
    {
      full_below = max_int;
      dual_below = max_int;
      early_below = max_int;
      p99_slo_ms;
    }
  else
    {
      full_below = max 1 (max_inflight / 4);
      dual_below = max 2 (max_inflight / 2);
      early_below = max 3 max_inflight;
      p99_slo_ms;
    }

let level_for p ~inflight =
  if inflight < p.full_below then Full
  else if inflight < p.dual_below then Dual_only
  else if inflight < p.early_below then Early_only
  else Floor_only

(* The latency side of admission: the server feeds the live windowed p99
   (Pc_obs.Window, 1 s window) here, so an overloaded tail triggers the
   same ladder rungs the in-flight count does — observable in the
   telemetry plane and principled (each rung is strictly cheaper). The
   escalation is geometric in the SLO so a transient blip sheds one
   rung, a meltdown sheds them all. *)
let level_for_p99 p ~p99_ms =
  match p.p99_slo_ms with
  | None -> Full
  | Some slo when slo <= 0. -> Full
  | Some slo ->
      if p99_ms <= slo then Full
      else if p99_ms <= 2. *. slo then Dual_only
      else if p99_ms <= 4. *. slo then Early_only
      else Floor_only

let combine a b = if level_order a >= level_order b then a else b

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

(* Each level pins the budget to a ladder rung by crushing exactly the
   resources that rung does without: [nodes = 0] starves branch-and-bound
   into its LP dual bound (Relaxed); [sat_calls = 0] additionally makes
   decomposition admit cells unchecked (Early_stopped); [timeout = 0] is
   dead on arrival, so the ladder driver falls straight to the trivial
   floor. All three are the same mechanisms a client-supplied deadline
   would trigger — admission control just triggers them up front, before
   any work is sunk. *)
let crush (spec : B.spec) = function
  | Full -> spec
  | Dual_only -> { spec with B.max_nodes = min_opt spec.B.max_nodes (Some 0) }
  | Early_only ->
      {
        spec with
        B.max_nodes = min_opt spec.B.max_nodes (Some 0);
        B.max_sat_calls = min_opt spec.B.max_sat_calls (Some 0);
      }
  | Floor_only ->
      { spec with B.timeout = min_opt spec.B.timeout (Some 0.) }
