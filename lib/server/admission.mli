(** Admission control: overload degrades, it does not queue.

    The server maps its instantaneous load (requests in flight across
    all connections) to one of four admission levels, each of which
    pins the per-request budget to a rung of the PR 1 degradation
    ladder. Requests are therefore {e never} rejected or queued
    unboundedly: past every threshold the server still answers, just
    from progressively cheaper rungs — a dual bound, an early-stopped
    decomposition, and finally the O(n) frequency-caps floor, which no
    load level can exhaust. Every reply carries its admission level and
    provenance, so a degraded answer is visible, not silent.

    Thresholds are fractions of [max_inflight] (defaults: full below
    1/4, dual bounds below 1/2, early-stop below 1, floor at or
    past it). See DESIGN.md, "Serving, admission control & fault
    injection". *)

type level =
  | Full  (** base budget untouched — exact answers within budget *)
  | Dual_only  (** branch-and-bound off ([nodes = 0]): LP dual bounds *)
  | Early_only  (** SAT pool off too: admit-unchecked decomposition *)
  | Floor_only  (** expired deadline: frequency-caps floor, O(n) *)

val level_name : level -> string
val level_order : level -> int
(** [Full] = 0 … [Floor_only] = 3; higher sheds more load. *)

type policy = {
  full_below : int;  (** in-flight < this: [Full] *)
  dual_below : int;  (** else in-flight < this: [Dual_only] *)
  early_below : int;  (** else in-flight < this: [Early_only]; else floor *)
  p99_slo_ms : float option;
      (** windowed-latency SLO: when set, the live 1 s p99 (from
          [Pc_obs.Window]) also selects a level — see {!level_for_p99};
          [None] (the default) disables the latency dimension. *)
}

val policy : ?p99_slo_ms:float -> max_inflight:int -> unit -> policy
(** Quarter-point thresholds from a single knob; [max_inflight <= 0]
    means uncapped ([Full] always on the in-flight dimension). *)

val level_for : policy -> inflight:int -> level

val level_for_p99 : policy -> p99_ms:float -> level
(** Latency-dimension level: [Full] while the windowed p99 meets the
    SLO, then one rung per doubling past it ([<= 2×] dual-only,
    [<= 4×] early-only, beyond that the floor). Always [Full] when no
    [p99_slo_ms] is configured. *)

val combine : level -> level -> level
(** The more degraded of two levels — the server combines the in-flight
    and latency dimensions so whichever signal is worse wins. *)

val crush : Pc_budget.Budget.spec -> level -> Pc_budget.Budget.spec
(** Tighten a base per-request budget to the level: caps only ever
    shrink (an existing tighter cap is kept), so admission control can
    never {e grant} resources the operator's base budget withheld. *)
