module Counter = Pc_obs.Registry.Counter
module Pred = Pc_predicate.Pred
module Q = Pc_query.Query

(* Global counters (the --metrics face): one cache per dataset, one
   counter pair per process — the hit rate is a server-level signal. *)
let c_hits = Counter.make "cache.hits"
let c_misses = Counter.make "cache.misses"

type t = {
  capacity : int;
  tbl : (string, string) Hashtbl.t;
  order : string Queue.t;  (* insertion order; FIFO eviction *)
  mu : Mutex.t;
}

let create ?(capacity = 1024) () =
  {
    capacity = max 1 capacity;
    tbl = Hashtbl.create 64;
    order = Queue.create ();
    mu = Mutex.create ();
  }

let find t key =
  Mutex.lock t.mu;
  let r = Hashtbl.find_opt t.tbl key in
  Mutex.unlock t.mu;
  (match r with
  | Some _ -> Counter.incr c_hits
  | None -> Counter.incr c_misses);
  r

let store t key value =
  Mutex.lock t.mu;
  if not (Hashtbl.mem t.tbl key) then begin
    if Hashtbl.length t.tbl >= t.capacity then
      (match Queue.take_opt t.order with
      | Some oldest -> Hashtbl.remove t.tbl oldest
      | None -> ());
    Hashtbl.add t.tbl key value;
    Queue.push key t.order
  end;
  Mutex.unlock t.mu

let size t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mu;
  n

(* The dataset digest covers everything a reply depends on besides the
   query: each PC's canonical predicate, value constraints, and
   frequency range, plus the raw certain-partition text. Interval
   endpoints are printed exactly (%h) so near-equal datasets never
   collide. *)
let digest_set set ~csv =
  let module I = Pc_interval.Interval in
  let ep = function
    | I.Neg_inf -> "-inf"
    | I.Pos_inf -> "+inf"
    | I.Closed x -> Printf.sprintf "c%h" x
    | I.Open x -> Printf.sprintf "o%h" x
  in
  let pc_line (pc : Pc_core.Pc.t) =
    Printf.sprintf "%s|%s|%d,%d"
      (Pred.canonical_key pc.Pc_core.Pc.pred)
      (String.concat ","
         (List.map
            (fun (a, iv) -> Printf.sprintf "%S[%s,%s]" a (ep iv.I.lo) (ep iv.I.hi))
            (List.sort compare pc.Pc_core.Pc.values)))
      pc.Pc_core.Pc.freq_lo pc.Pc_core.Pc.freq_hi
  in
  let body =
    String.concat "\n" (List.map pc_line (Pc_core.Pc_set.pcs set))
    ^ "\n--\n"
    ^ Option.value csv ~default:""
  in
  Digest.to_hex (Digest.string body)

let key ~digest ~(query : Q.t) ~missing_only ~timeout_ms =
  let agg =
    match query.Q.agg with
    | Q.Count -> "count"
    | Q.Sum a -> Printf.sprintf "sum(%S)" a
    | Q.Avg a -> Printf.sprintf "avg(%S)" a
    | Q.Min a -> Printf.sprintf "min(%S)" a
    | Q.Max a -> Printf.sprintf "max(%S)" a
  in
  Printf.sprintf "%s|%s|%s|m=%b|t=%s" digest agg
    (Pred.canonical_key query.Q.where_)
    missing_only
    (match timeout_ms with None -> "-" | Some ms -> Printf.sprintf "%h" ms)
