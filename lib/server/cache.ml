module Counter = Pc_obs.Registry.Counter
module Pred = Pc_predicate.Pred
module Q = Pc_query.Query

(* Global counters (the --metrics face): one cache per dataset, one
   counter set per process — hit/eviction rates are server-level
   signals. *)
let c_hits = Counter.make "cache.hits"
let c_misses = Counter.make "cache.misses"
let c_evictions = Counter.make "cache.evictions"
let c_invalidations = Counter.make "cache.invalidations"
let c_stale_stores = Counter.make "cache.stale_stores"

type meta = { pcs : int list; where_ : Pred.t; missing_only : bool }

type entry = {
  value : string;
  bytes : int;  (* key + value, the footprint both caps account *)
  stamp : int;
  meta : meta option;
}

type t = {
  capacity : int;
  capacity_bytes : int;
  tbl : (string, entry) Hashtbl.t;
  order : (string * int) Queue.t;
      (* insertion order with stamps: an entry removed by [invalidate]
         and later re-stored leaves a stale (key, old_stamp) pair behind,
         which eviction recognizes and skips *)
  mutable total_bytes : int;
  mutable next_stamp : int;
  mutable version : int;
      (* high-water stream version, advanced by [invalidate] under the
         lock. [store] carries the version its reply's snapshot was
         pinned at and is fenced against this: a reply computed against
         a superseded snapshot must not be stored after the
         invalidation for the superseding batch already swept — it
         would be served byte-identical at the new version. *)
  mu : Mutex.t;
}

let create ?(capacity = 1024) ?(capacity_bytes = 64 * 1024 * 1024) () =
  {
    capacity = max 1 capacity;
    capacity_bytes = max 1 capacity_bytes;
    tbl = Hashtbl.create 64;
    order = Queue.create ();
    total_bytes = 0;
    next_stamp = 0;
    version = 0;
    mu = Mutex.create ();
  }

let find t key =
  Mutex.lock t.mu;
  let r = Hashtbl.find_opt t.tbl key in
  Mutex.unlock t.mu;
  match r with
  | Some e ->
      Counter.incr c_hits;
      Some e.value
  | None ->
      Counter.incr c_misses;
      None

(* Drop the oldest live entries while either cap is exceeded. Must be
   called with the lock held. *)
let evict_over_caps t =
  while
    Hashtbl.length t.tbl > t.capacity || t.total_bytes > t.capacity_bytes
  do
    match Queue.take_opt t.order with
    | None ->
        (* caps exceeded with an empty queue cannot happen: every live
           entry has a queue pair; bail rather than spin *)
        t.total_bytes <- 0;
        Hashtbl.reset t.tbl
    | Some (key, stamp) -> (
        match Hashtbl.find_opt t.tbl key with
        | Some e when e.stamp = stamp ->
            Hashtbl.remove t.tbl key;
            t.total_bytes <- t.total_bytes - e.bytes;
            Counter.incr c_evictions
        | _ -> () (* stale pair from an invalidated entry *))
  done

(* Stale (key, stamp) pairs left behind by [invalidate] are normally
   drained by [evict_over_caps] — but only while a cap is exceeded.
   Under steady store→invalidate churn the table stays small and the
   queue would grow for the life of the server, so whenever it bloats
   past twice the live-entry count we rebuild it from the live pairs.
   Amortized O(1) per queue push; must be called with the lock held. *)
let compact_if_bloated t =
  let qlen = Queue.length t.order in
  if qlen > 64 && qlen > 2 * Hashtbl.length t.tbl then begin
    let live = Queue.create () in
    Queue.iter
      (fun ((key, stamp) as pair) ->
        match Hashtbl.find_opt t.tbl key with
        | Some e when e.stamp = stamp -> Queue.push pair live
        | _ -> ())
      t.order;
    Queue.clear t.order;
    Queue.transfer live t.order
  end

let store t ?meta ?version key value =
  Mutex.lock t.mu;
  let fresh =
    match version with None -> true | Some v -> v >= t.version
  in
  if not fresh then Counter.incr c_stale_stores
  else if not (Hashtbl.mem t.tbl key) then begin
    let bytes = String.length key + String.length value in
    let stamp = t.next_stamp in
    t.next_stamp <- stamp + 1;
    Hashtbl.add t.tbl key { value; bytes; stamp; meta };
    Queue.push (key, stamp) t.order;
    t.total_bytes <- t.total_bytes + bytes;
    evict_over_caps t
  end;
  Mutex.unlock t.mu

(* Does the ingestion delta reach this entry? Missing side: consumption
   of a reachable PC. Certain side: a batch row inside the entry's
   selection. A predicate that cannot be evaluated against the batch
   schema (attribute absent or mistyped) is treated as affected —
   conservative eviction is always sound. *)
let affected ~touched ~rows = function
  | None -> true
  | Some m ->
      List.exists (fun j -> List.mem j m.pcs) touched
      || (not m.missing_only)
         && (match rows with
            | None -> false
            | Some (schema, tuples) ->
                Array.exists
                  (fun row ->
                    try Pred.eval schema m.where_ row with
                    | Not_found | Invalid_argument _ -> true)
                  tuples)

let invalidate t ~version ~touched ~rows =
  Mutex.lock t.mu;
  if version > t.version then t.version <- version;
  let victims =
    Hashtbl.fold
      (fun key e acc ->
        if affected ~touched ~rows e.meta then (key, e.bytes) :: acc else acc)
      t.tbl []
  in
  List.iter
    (fun (key, bytes) ->
      Hashtbl.remove t.tbl key;
      t.total_bytes <- t.total_bytes - bytes;
      Counter.incr c_invalidations)
    victims;
  compact_if_bloated t;
  Mutex.unlock t.mu;
  List.length victims

let size t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mu;
  n

let bytes t =
  Mutex.lock t.mu;
  let n = t.total_bytes in
  Mutex.unlock t.mu;
  n

let queue_length t =
  Mutex.lock t.mu;
  let n = Queue.length t.order in
  Mutex.unlock t.mu;
  n

(* The dataset digest covers everything a reply depends on besides the
   query: each PC's canonical predicate, value constraints, and
   frequency range, plus the raw certain-partition text. Interval
   endpoints are printed exactly (%h) so near-equal datasets never
   collide. *)
let digest_set set ~csv =
  let module I = Pc_interval.Interval in
  let ep = function
    | I.Neg_inf -> "-inf"
    | I.Pos_inf -> "+inf"
    | I.Closed x -> Printf.sprintf "c%h" x
    | I.Open x -> Printf.sprintf "o%h" x
  in
  let pc_line (pc : Pc_core.Pc.t) =
    Printf.sprintf "%s|%s|%d,%d"
      (Pred.canonical_key pc.Pc_core.Pc.pred)
      (String.concat ","
         (List.map
            (fun (a, iv) -> Printf.sprintf "%S[%s,%s]" a (ep iv.I.lo) (ep iv.I.hi))
            (List.sort compare pc.Pc_core.Pc.values)))
      pc.Pc_core.Pc.freq_lo pc.Pc_core.Pc.freq_hi
  in
  let body =
    String.concat "\n" (List.map pc_line (Pc_core.Pc_set.pcs set))
    ^ "\n--\n"
    ^ Option.value csv ~default:""
  in
  Digest.to_hex (Digest.string body)

let key ~digest ~(query : Q.t) ~missing_only ~timeout_ms =
  let agg =
    match query.Q.agg with
    | Q.Count -> "count"
    | Q.Sum a -> Printf.sprintf "sum(%S)" a
    | Q.Avg a -> Printf.sprintf "avg(%S)" a
    | Q.Min a -> Printf.sprintf "min(%S)" a
    | Q.Max a -> Printf.sprintf "max(%S)" a
  in
  Printf.sprintf "%s|%s|%s|m=%b|t=%s" digest agg
    (Pred.canonical_key query.Q.where_)
    missing_only
    (match timeout_ms with None -> "-" | Some ms -> Printf.sprintf "%h" ms)
