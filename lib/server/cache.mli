(** Canonicalizing bound cache: serialized [bound] replies keyed on the
    canonical form of (dataset digest, aggregate, query predicate,
    request flags).

    The cached value is the reply's exact serialized text, so a hit is
    byte-identical to the reply the compute path would have produced —
    no re-serialization, no float-formatting drift. Only exact,
    fully-admitted replies are stored (degraded answers depend on the
    budget race that produced them). The server allocates a fresh cache
    per dataset load, so [load] naturally invalidates; streaming
    ingestion instead uses {!invalidate} for {e delta-scoped} eviction.

    Thread-safe; bounded by {e both} entry count and total byte size
    with FIFO eviction (large replies can no longer pin unbounded
    memory behind the entry cap). Hits and misses feed the global
    [cache.hits] / [cache.misses] counters; capacity-driven evictions
    feed [cache.evictions] and delta-scoped ones [cache.invalidations].

    {2 Delta-scoped invalidation}

    Each entry may carry {!meta}: the PC indices its query's FDD leaves
    can reach and its selection predicate. An ingestion batch evicts an
    entry iff it could have changed that entry's reply:

    - {e missing side}: the batch consumed budget of a PC in the
      entry's reachable set (consumption tightens every cell that PC
      covers, reachable cells included);
    - {e certain side}: some batch row satisfies the entry's selection
      predicate (the certain aggregate shifts) — skipped for
      [missing_only] entries, whose replies ignore the certain side.

    An entry stored without metadata (no compiled diagram available) is
    conservatively evicted by every batch. Batches touching neither
    side leave the entry byte-valid: the residual constraint system
    restricted to the entry's reachable cells and its certain selection
    are both unchanged.

    {2 Version fencing}

    Invalidation alone cannot make the cache safe against a reply that
    was {e computed} against a pre-batch snapshot but {e stored} after
    the batch's sweep: the stale bytes would land post-sweep and be
    served at the new version. The cache therefore tracks a monotonic
    stream version, advanced by {!invalidate} under the internal lock;
    {!store} carries the version the reply's snapshot was pinned at and
    is dropped (counted in [cache.stale_stores]) when the cache version
    has advanced past it — the check and the insert are atomic with
    respect to every sweep. *)

type t

type meta = {
  pcs : int list;
      (** sorted PC indices reachable from the query's FDD leaves
          ({!Pc_predicate.Fdd.active_pcs}) *)
  where_ : Pc_predicate.Pred.t;
  missing_only : bool;
}

val create : ?capacity:int -> ?capacity_bytes:int -> unit -> t
(** Defaults: 1024 entries, 64 MiB of key+value bytes. *)

val find : t -> string -> string option
(** Counts a hit or a miss. *)

val store : t -> ?meta:meta -> ?version:int -> string -> string -> unit
(** Insert unless present; evicts oldest entries while either cap is
    exceeded. [version] is the stream version the reply's snapshot was
    pinned at: the store is silently dropped when an {!invalidate} for
    a later version has already swept (the reply is stale by
    construction). Omitting [version] stores unconditionally. *)

val invalidate :
  t ->
  version:int ->
  touched:int list ->
  rows:(Pc_data.Schema.t * Pc_data.Relation.tuple array) option ->
  int
(** Evict every entry an ingestion delta could have affected: [touched]
    are the PC indices whose consumption changed, [rows] the batch's
    certain rows (for selection-predicate tests; [None] means no
    certain-side change, as when the rows are unavailable the caller
    should pass the batch rows). [version] is the stream version the
    batch publishes — it fences subsequent {!store}s of replies pinned
    before it. Returns the number of evictions. *)

val size : t -> int
val bytes : t -> int

val queue_length : t -> int
(** Length of the internal FIFO bookkeeping queue. Exposed for tests:
    compaction keeps it O(live entries) under store→invalidate churn
    rather than growing for the life of the process. *)

val digest_set : Pc_core.Pc_set.t -> csv:string option -> string
(** Hex digest of the dataset's semantic content: canonical PC
    predicates, value constraints, frequency ranges, and the raw
    certain-partition CSV text. *)

val key :
  digest:string ->
  query:Pc_query.Query.t ->
  missing_only:bool ->
  timeout_ms:float option ->
  string
(** The cache key. [timeout_ms] participates because it clips the
    request budget, which can change the reply's degradation path —
    two requests differing only in timeout must not share an entry. *)
