(** Canonicalizing bound cache: serialized [bound] replies keyed on the
    canonical form of (dataset digest, aggregate, query predicate,
    request flags).

    The cached value is the reply's exact serialized text, so a hit is
    byte-identical to the reply the compute path would have produced —
    no re-serialization, no float-formatting drift. Only exact,
    fully-admitted replies are stored (degraded answers depend on the
    budget race that produced them); the server allocates a fresh cache
    per dataset load, so [load] naturally invalidates.

    Thread-safe; bounded capacity with FIFO eviction. Hits and misses
    feed the global [cache.hits] / [cache.misses] metrics counters. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 1024 entries. *)

val find : t -> string -> string option
(** Counts a hit or a miss. *)

val store : t -> string -> string -> unit
(** Insert unless present; evicts the oldest entry at capacity. *)

val size : t -> int

val digest_set : Pc_core.Pc_set.t -> csv:string option -> string
(** Hex digest of the dataset's semantic content: canonical PC
    predicates, value constraints, frequency ranges, and the raw
    certain-partition CSV text. *)

val key :
  digest:string ->
  query:Pc_query.Query.t ->
  missing_only:bool ->
  timeout_ms:float option ->
  string
(** The cache key. [timeout_ms] participates because it clips the
    request budget, which can change the reply's degradation path —
    two requests differing only in timeout must not share an entry. *)
