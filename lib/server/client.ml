type t = {
  fd : Unix.file_descr;
  reader : Net.reader;
  mutable closed : bool;
}

let connect ~host ~port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; reader = Net.reader fd; closed = false }

let send t line = Net.write_string t.fd (line ^ "\n")

let request t line =
  match
    send t line;
    Net.read_line ~poll_s:0.05 t.reader
  with
  | `Line reply -> Some reply
  | `Eof | `Stopped -> None
  | exception Net.Closed -> None

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
