(** Minimal blocking line client for the {!Server} protocol.

    One connection, one request at a time: {!request} writes a line and
    blocks for the one reply line. Used by the CLI's [pcda client], the
    bench load generator, and the chaos tests; a real deployment would
    speak the (trivial) protocol from any language. *)

type t

val connect : host:string -> port:int -> t
(** Raises [Unix.Unix_error] if the server is unreachable. *)

val request : t -> string -> string option
(** Send one line (the newline is appended) and wait for the reply
    line. [None] when the server closed the connection instead of
    replying (e.g. a drained server or an injected socket fault). *)

val send : t -> string -> unit
(** Fire-and-forget write, for tests that tear the protocol on
    purpose. Raises {!Net.Closed} if the connection is gone. *)

val close : t -> unit
(** Idempotent. *)
