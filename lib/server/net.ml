exception Closed
exception Line_too_long

let ignore_sigpipe () =
  (* [sigpipe] is not wired up on every platform; ignore failures. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let closed_error = function
  | Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN | Unix.EBADF | Unix.ENOTCONN ->
      true
  | _ -> false

let write_string fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write fd b !pos (len - !pos) with
    | 0 -> raise Closed
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) when closed_error e -> raise Closed
  done

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes read but not yet returned *)
  max_line : int;
  mutable eof : bool;
}

let reader ?(max_line = 16 * 1024 * 1024) fd =
  { fd; buf = Buffer.create 256; max_line; eof = false }

(* Take one complete line out of the buffer, if present. *)
let take_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let stop = if i > 0 && s.[i - 1] = '\r' then i - 1 else i in
      let line = String.sub s 0 stop in
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      Some line

let chunk = 8192

let read_line ?(stop = fun () -> false) ?(poll_s = 0.1) r =
  let bytes = Bytes.create chunk in
  let rec go () =
    match take_line r with
    | Some line -> `Line line
    | None ->
        if r.eof then `Eof
        else if Buffer.length r.buf > r.max_line then raise Line_too_long
        else if stop () then `Stopped
        else begin
          match Unix.select [ r.fd ] [] [] poll_s with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | [], _, _ -> go () (* poll slice elapsed; re-check [stop] *)
          | _ -> (
              match Unix.read r.fd bytes 0 chunk with
              | 0 ->
                  r.eof <- true;
                  go ()
              | n ->
                  Buffer.add_subbytes r.buf bytes 0 n;
                  go ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | exception Unix.Unix_error (e, _, _) when closed_error e ->
                  r.eof <- true;
                  go ())
        end
  in
  go ()
