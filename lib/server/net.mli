(** Robust socket plumbing for the bound server and its clients.

    Wraps the handful of [Unix] calls the server relies on so that the
    two classic line-protocol killers cannot reach process scope:

    - {b SIGPIPE}: a client hanging up mid-reply turns the next write
      into a fatal signal unless it is ignored process-wide
      ({!ignore_sigpipe}); with it ignored, the write fails with
      [EPIPE], which these wrappers turn into {!Closed} — an ordinary,
      per-connection exception.
    - {b EINTR}: every read/write/accept/connect here retries on
      [EINTR], so signal delivery (SIGTERM starting a drain, SIGCHLD
      from a harness) never surfaces as a spurious I/O error.

    Reads are buffered line-at-a-time with a hard length cap, and poll
    via [select] so a blocked reader observes a drain flag within
    [poll_s] instead of hanging shutdown forever. *)

exception Closed
(** The peer is gone ([EPIPE], [ECONNRESET], [ESHUTDOWN], or a write
    after close). Connection-scoped: handlers catch it, drop the
    connection, and the server keeps serving. *)

exception Line_too_long
(** The peer sent more than the configured cap without a newline; the
    stream cannot be resynchronized and must be dropped. *)

val ignore_sigpipe : unit -> unit
(** Idempotent; call once at process start (both [pcda] and the server
    do). No-op on platforms without [SIGPIPE]. *)

val write_string : Unix.file_descr -> string -> unit
(** Write the whole string, retrying partial writes and [EINTR];
    raises {!Closed} when the peer is gone. *)

type reader
(** Buffered line reader over one descriptor. *)

val reader : ?max_line:int -> Unix.file_descr -> reader
(** [max_line] caps the bytes buffered while hunting for a newline
    (default 16 MiB — inline CSV loads are legitimate, unbounded
    garbage is not). *)

val read_line :
  ?stop:(unit -> bool) -> ?poll_s:float -> reader -> [ `Line of string | `Eof | `Stopped ]
(** Next LF-terminated line (the terminator, and a preceding CR, are
    stripped). Blocks in [select] slices of [poll_s] (default 0.1 s),
    re-checking [stop] between slices: [`Stopped] reports a drain
    request, [`Eof] a clean hangup (a final unterminated partial line
    is discarded). Raises {!Line_too_long} past the cap. *)
