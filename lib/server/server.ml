module B = Pc_budget.Budget
module Bounds = Pc_core.Bounds
module J = Pc_obs.Json
module Counter = Pc_obs.Registry.Counter
module Fault = Pc_fault.Fault
module Q = Pc_query.Query
module Stream = Pc_store.Stream

(* Global instruments (the [--metrics] face); per-instance counts for the
   [stats] op live on [t] so several servers in one test process don't
   bleed into each other. *)
let c_requests = Counter.make "server.requests"
let c_errors = Counter.make "server.errors"
let c_degraded = Counter.make "server.degraded"
let c_crushed = Counter.make "server.admission_crushed"
let c_slo_crushed = Counter.make "server.slo_crushed"
let h_request = Pc_obs.Registry.Histogram.make "server.request_ns"

(* Streaming-ingestion instruments. *)
let c_ingest_batches = Counter.make "ingest.batches"
let c_ingest_rows = Counter.make "ingest.rows"
let c_ingest_retracts = Counter.make "ingest.retracts"
let c_ingest_evicted = Counter.make "ingest.cache_evicted"
let c_incr_bounds = Counter.make "ingest.incremental_bounds"
let h_ingest = Pc_obs.Registry.Histogram.make "ingest.ns"

module W = Pc_obs.Window

type config = {
  host : string;
  port : int;
  base_spec : B.spec;
  opts : Bounds.opts;
  policy : Admission.policy;
  max_line : int;
  poll_s : float;
  trace_path : string option;
  metrics_path : string option;
  flight_path : string option;
  flight_capacity : int;
  cache : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    base_spec = B.unlimited_spec;
    opts = { Bounds.default_opts with Bounds.strategy = Pc_core.Cells.Fdd };
    policy = Admission.policy ~max_inflight:64 ();
    max_line = 16 * 1024 * 1024;
    poll_s = 0.1;
    trace_path = None;
    metrics_path = None;
    flight_path = None;
    flight_capacity = 512;
    cache = true;
  }

type dataset = {
  set : Pc_core.Pc_set.t;  (** the base (load-time) constraint set *)
  fdd : Pc_predicate.Fdd.compiled option;
      (** compiled once at load when the configured strategy is [Fdd] *)
  digest : string;  (** canonical content digest — the cache-key prefix *)
  cache : Cache.t;
      (** per-dataset reply cache; replaced wholesale on re-[load];
          ingestion evicts delta-scoped via [Cache.invalidate] *)
  stream : Pc_store.Stream.t;
      (** the evolving certain partition + per-PC consumption; queries
          pin one immutable snapshot, appends publish a fresh one *)
  engines : (string, Pc_core.Incremental.t option) Hashtbl.t;
      (** per-query incremental bound engines, keyed on the canonical
          (aggregate, predicate) form; [None] caches "out of scope" so
          unsupported queries don't retry engine construction *)
  engines_mu : Mutex.t;  (** serializes engine lookup and solves *)
}

(* Engine table bound: a dataset under a hostile query mix must not
   accumulate unbounded LP state. Crossing the cap resets the table —
   engines rebuild cold on demand, which is exactly the pre-incremental
   cost. *)
let max_engines = 32

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  datasets : (string, dataset) Hashtbl.t;
  mu : Mutex.t;  (** guards [datasets] *)
  drain : bool Atomic.t;
  conns : int Atomic.t;  (** live connection threads *)
  inflight : int Atomic.t;  (** requests being computed right now *)
  n_requests : int Atomic.t;
  n_errors : int Atomic.t;
  n_degraded : int Atomic.t;
  n_hits : int Atomic.t;  (** cache hits, this instance *)
  n_misses : int Atomic.t;
  n_append_batches : int Atomic.t;
  n_append_rows : int Atomic.t;
  n_retracts : int Atomic.t;
  n_incremental : int Atomic.t;  (** bounds served by the warm engine *)
  n_admitted : int Atomic.t array;  (** per admission level, by order *)
  req_id : int Atomic.t;  (** monotonically increasing request ids *)
  window : W.t;  (** live SLO windows (1 s / 10 s / 60 s snapshots) *)
  flight : Telemetry.Flight.t;  (** last-N request records, always on *)
  t0 : float;
}

(* The telemetry clock: wall time composed with the injected skew, the
   same view budget deadline checks get — so the skew fault exercises
   window rotation, which must never produce a negative rate. *)
let telemetry_now () =
  Pc_util.Clock.now ()
  +. (if Fault.enabled () then Fault.clock_skew_s () else 0.)

let create cfg =
  Net.ignore_sigpipe ();
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd addr;
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  {
    cfg;
    listen_fd = fd;
    bound_port;
    datasets = Hashtbl.create 8;
    mu = Mutex.create ();
    drain = Atomic.make false;
    conns = Atomic.make 0;
    inflight = Atomic.make 0;
    n_requests = Atomic.make 0;
    n_errors = Atomic.make 0;
    n_degraded = Atomic.make 0;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_append_batches = Atomic.make 0;
    n_append_rows = Atomic.make 0;
    n_retracts = Atomic.make 0;
    n_incremental = Atomic.make 0;
    n_admitted = Array.init 4 (fun _ -> Atomic.make 0);
    req_id = Atomic.make 0;
    window = W.create ();
    flight = Telemetry.Flight.create ~capacity:cfg.flight_capacity;
    t0 = Pc_util.Clock.now ();
  }

let port t = t.bound_port
let draining t = Atomic.get t.drain
let initiate_drain t = Atomic.set t.drain true

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> initiate_drain t) in
  (try Sys.set_signal Sys.sigterm handle with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint handle with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Dataset management                                                  *)
(* ------------------------------------------------------------------ *)

let load_dataset t ~name ~constraints ?csv () =
  match
    let set = Pc_core.Pc_set.make (Pc_parse.Pc_parser.parse constraints) in
    let certain = Option.map (fun text -> Pc_data.Csv.read_string text) csv in
    let fdd =
      if t.cfg.opts.Bounds.strategy = Pc_core.Cells.Fdd then
        Some
          (Pc_predicate.Fdd.compile
             (Array.of_list
                (List.map
                   (fun (pc : Pc_core.Pc.t) -> pc.Pc_core.Pc.pred)
                   (Pc_core.Pc_set.pcs set))))
      else None
    in
    (set, certain, fdd, Cache.digest_set set ~csv)
  with
  | set, certain, fdd, digest ->
      let stream = Pc_store.Stream.create ?certain ?fdd set in
      Mutex.lock t.mu;
      Hashtbl.replace t.datasets name
        {
          set;
          fdd;
          digest;
          cache = Cache.create ();
          stream;
          engines = Hashtbl.create 8;
          engines_mu = Mutex.create ();
        };
      Mutex.unlock t.mu;
      Ok
        ( Pc_core.Pc_set.size set,
          match certain with
          | None -> 0
          | Some r -> Pc_data.Relation.cardinality r )
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let find_dataset t name =
  Mutex.lock t.mu;
  let d = Hashtbl.find_opt t.datasets name in
  Mutex.unlock t.mu;
  d

let dataset_names t =
  Mutex.lock t.mu;
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) t.datasets [] in
  Mutex.unlock t.mu;
  List.sort String.compare names

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

(* A handler's reply: either a JSON value still to be serialized, or the
   exact bytes of a cached reply. Cached entries are only ever stored
   for ok replies, so error accounting needs to inspect [Rjson] alone. *)
type reply = Rjson of J.value | Rtext of string

let reply_text = function Rjson v -> J.to_string v | Rtext s -> s

let reply_is_error = function
  | Rjson (J.Obj (("ok", J.Bool false) :: _)) -> true
  | Rjson _ | Rtext _ -> false

let err_value code msg =
  J.Obj
    [
      ("ok", J.Bool false);
      ("error", J.Obj [ ("code", J.Str code); ("msg", J.Str msg) ]);
    ]

let answer_value = function
  | Bounds.Range r ->
      J.Obj
        [
          ("kind", J.Str "range");
          ("lo", J.Num r.Pc_core.Range.lo);
          ("hi", J.Num r.Pc_core.Range.hi);
          ("lo_exact", J.Bool r.Pc_core.Range.lo_exact);
          ("hi_exact", J.Bool r.Pc_core.Range.hi_exact);
        ]
  | Bounds.Empty -> J.Obj [ ("kind", J.Str "empty") ]
  | Bounds.Infeasible -> J.Obj [ ("kind", J.Str "infeasible") ]

let stats_value (s : Bounds.stats) =
  J.Obj
    [
      ("cells", J.Num (float_of_int s.Bounds.cells));
      ("sat_calls", J.Num (float_of_int s.Bounds.sat_calls));
      ("nodes", J.Num (float_of_int s.Bounds.milp_nodes));
      ("iters", J.Num (float_of_int s.Bounds.lp_iterations));
      ("elapsed_ms", J.Num (s.Bounds.elapsed *. 1e3));
      ("deadline_hit", J.Bool s.Bounds.deadline_hit);
    ]

(* ------------------------------------------------------------------ *)
(* Request handlers                                                    *)
(* ------------------------------------------------------------------ *)

let str_field v name = Option.bind (J.member name v) J.to_str
let num_field v name = Option.bind (J.member name v) J.to_num
let bool_field v name = Option.bind (J.member name v) J.to_bool

(* The request-scoped telemetry accumulator: one per request line,
   filled in as the request traverses admission, the cache, and the
   ladder, then sealed into a [Telemetry.record] at the send boundary
   (where the latency is known). Mutable because the interesting fields
   are discovered deep inside [handle_bound]. *)
type pending = {
  p_id : int;
  mutable p_op : string;
  mutable p_dataset : string;
  mutable p_admission : string;
  mutable p_rungs : string list;
  mutable p_provenance : string;
  mutable p_cache : W.cache_outcome;
  mutable p_degraded : bool;
  mutable p_sat : int;
  mutable p_pivots : int;
  mutable p_cells : int;
  mutable p_nodes : int;
}

let make_pending id =
  {
    p_id = id;
    p_op = "";
    p_dataset = "";
    p_admission = "";
    p_rungs = [];
    p_provenance = "";
    p_cache = W.Uncached;
    p_degraded = false;
    p_sat = 0;
    p_pivots = 0;
    p_cells = 0;
    p_nodes = 0;
  }

let reply_error_code = function
  | Rjson (J.Obj (("ok", J.Bool false) :: rest)) -> (
      match List.assoc_opt "error" rest with
      | Some (J.Obj fields) -> (
          match List.assoc_opt "code" fields with
          | Some (J.Str c) -> Some c
          | _ -> Some "error")
      | _ -> Some "error")
  | Rjson _ | Rtext _ -> None

let seal_record pend ~t_s ~latency_ns ~error =
  {
    Telemetry.id = pend.p_id;
    t_s;
    op = pend.p_op;
    dataset = pend.p_dataset;
    admission = pend.p_admission;
    rungs = pend.p_rungs;
    provenance = pend.p_provenance;
    cache =
      (match pend.p_cache with
      | W.Hit -> "hit"
      | W.Miss -> "miss"
      | W.Uncached -> "uncached");
    sat_calls = pend.p_sat;
    pivots = pend.p_pivots;
    cells = pend.p_cells;
    nodes = pend.p_nodes;
    latency_ns;
    error;
  }

let handle_load t v =
  match str_field v "name" with
  | None -> err_value "bad-request" "load: missing string field \"name\""
  | Some name -> (
      match str_field v "constraints" with
      | None ->
          err_value "bad-request" "load: missing string field \"constraints\""
      | Some constraints -> (
          let csv = str_field v "csv" in
          match load_dataset t ~name ~constraints ?csv () with
          | Error msg -> err_value "parse-error" msg
          | Ok (n_constraints, n_rows) ->
              J.Obj
                [
                  ("ok", J.Bool true);
                  ("op", J.Str "load");
                  ("name", J.Str name);
                  ("constraints", J.Num (float_of_int n_constraints));
                  ("certain_rows", J.Num (float_of_int n_rows));
                ]))

let handle_bound t pend v =
  match str_field v "query" with
  | None -> Rjson (err_value "bad-request" "bound: missing string field \"query\"")
  | Some qtext -> (
      let dname = Option.value (str_field v "dataset") ~default:"default" in
      match find_dataset t dname with
      | None ->
          Rjson
            (err_value "unknown-dataset"
               (Printf.sprintf "no dataset %S loaded" dname))
      | Some ds -> (
          pend.p_dataset <- ds.digest;
          match Pc_parse.Query_parser.parse qtext with
          | exception Failure msg -> Rjson (err_value "parse-error" msg)
          | query -> (
              let timeout_ms = num_field v "timeout_ms" in
              let missing_only =
                Option.value (bool_field v "missing_only") ~default:false
              in
              (* Cache lookup happens before admission: a hit costs no
                 compute, so it must not occupy an in-flight slot or be
                 crushed by load it does not add to. *)
              let ckey =
                if t.cfg.cache then
                  Some
                    (Cache.key ~digest:ds.digest ~query ~missing_only
                       ~timeout_ms)
                else None
              in
              match Option.bind ckey (Cache.find ds.cache) with
              | Some text ->
                  pend.p_cache <- W.Hit;
                  Atomic.incr t.n_hits;
                  Rtext text
              | None ->
                  if Option.is_some ckey then begin
                    pend.p_cache <- W.Miss;
                    Atomic.incr t.n_misses
                  end;
                  (* Admission: the level is decided from the in-flight
                     count *before* this request joins it, then the
                     request holds a slot for its whole compute. Drain
                     floors new arrivals so shutdown cannot be outrun by
                     traffic. *)
                  let inflight = Atomic.fetch_and_add t.inflight 1 in
                  Fun.protect
                    ~finally:(fun () -> Atomic.decr t.inflight)
                    (fun () ->
                      let level =
                        if Atomic.get t.drain then Admission.Floor_only
                        else begin
                          let by_load =
                            Admission.level_for t.cfg.policy ~inflight
                          in
                          (* the latency dimension: the live windowed
                             1 s p99 versus the configured SLO — reading
                             it only when an SLO is set keeps the
                             no-SLO hot path snapshot-free *)
                          let by_slo =
                            if
                              t.cfg.policy.Admission.p99_slo_ms = None
                            then Admission.Full
                            else begin
                              let s =
                                W.snapshot ~now:(telemetry_now ()) t.window
                                  ~window_s:1.
                              in
                              let l =
                                Admission.level_for_p99 t.cfg.policy
                                  ~p99_ms:(s.W.p99_ns /. 1e6)
                              in
                              if l <> Admission.Full then
                                Counter.incr c_slo_crushed;
                              l
                            end
                          in
                          Admission.combine by_load by_slo
                        end
                      in
                      Atomic.incr t.n_admitted.(Admission.level_order level);
                      pend.p_admission <- Admission.level_name level;
                      if level <> Admission.Full then Counter.incr c_crushed;
                      let spec = Admission.crush t.cfg.base_spec level in
                      let spec =
                        match timeout_ms with
                        | None -> spec
                        | Some ms ->
                            let s = Float.max 0. (ms /. 1e3) in
                            {
                              spec with
                              B.timeout =
                                (match spec.B.timeout with
                                | None -> Some s
                                | Some t -> Some (Float.min t s));
                            }
                      in
                      let budget = B.start spec in
                      (* Pin one immutable ingestion snapshot: the
                         certain relation, per-PC consumption, and
                         residual PC set below were published together,
                         so this request can never observe a batch's
                         rows without its budget consumption. *)
                      let st = Stream.snapshot ds.stream in
                      let certain =
                        if missing_only then None else st.Stream.certain
                      in
                      (* The warm path: a per-(aggregate, predicate)
                         incremental engine re-solves from the previous
                         optimum's basis with pure bound changes.
                         Reserved for fully-admitted COUNT/SUM requests
                         under an FDD with no per-request deadline — a
                         request that asked for a clipped budget keeps
                         the budgeted ladder's degradation contract
                         (timeout_ms 0 must still answer trivial with
                         deadline_hit, not exact). Anything else (or a
                         starved engine) falls through likewise. *)
                      let warm =
                        match ds.fdd with
                        | Some fdd
                          when level = Admission.Full && timeout_ms = None
                               && Pc_core.Incremental.supported query ->
                            let ekey =
                              Cache.key ~digest:"engine" ~query
                                ~missing_only:false ~timeout_ms:None
                            in
                            Mutex.lock ds.engines_mu;
                            Fun.protect
                              ~finally:(fun () -> Mutex.unlock ds.engines_mu)
                              (fun () ->
                                let eng =
                                  match Hashtbl.find_opt ds.engines ekey with
                                  | Some e -> e
                                  | None ->
                                      if Hashtbl.length ds.engines >= max_engines
                                      then Hashtbl.reset ds.engines;
                                      let e =
                                        Pc_core.Incremental.create
                                          ~tighten:t.cfg.opts.Bounds.tighten
                                          ~fdd ds.set query
                                      in
                                      Hashtbl.add ds.engines ekey e;
                                      e
                                in
                                match eng with
                                | None -> None
                                | Some e ->
                                    Option.map
                                      (fun a ->
                                        (a, Pc_core.Incremental.n_cells e))
                                      (Pc_core.Incremental.rebound e
                                         ~consumed:st.Stream.consumed))
                        | _ -> None
                      in
                      let t_solve0 = Pc_util.Clock.now () in
                      let outcome, incremental =
                        match warm with
                        | Some (missing, n_cells) ->
                            Counter.incr c_incr_bounds;
                            Atomic.incr t.n_incremental;
                            (* the certain-partition shift, as in
                               [Bounds.bound_with_certain] *)
                            let answer =
                              match (missing, certain) with
                              | Bounds.Range r, Some c ->
                                  let sel = Q.selection c query in
                                  let shift =
                                    match query.Q.agg with
                                    | Q.Sum a ->
                                        if Pc_data.Relation.cardinality sel = 0
                                        then 0.
                                        else
                                          Pc_util.Stat.sum
                                            (Pc_data.Relation.column sel a)
                                    | _ ->
                                        float_of_int
                                          (Pc_data.Relation.cardinality sel)
                                  in
                                  Bounds.Range (Pc_core.Range.shift r shift)
                              | a, _ -> a
                            in
                            let exact =
                              match answer with
                              | Bounds.Range r ->
                                  r.Pc_core.Range.lo_exact
                                  && r.Pc_core.Range.hi_exact
                              | Bounds.Empty | Bounds.Infeasible -> true
                            in
                            let provenance =
                              if exact then Bounds.Exact else Bounds.Relaxed
                            in
                            let stats =
                              {
                                Bounds.provenance;
                                rungs =
                                  (if exact then [ Bounds.Exact ]
                                   else [ Bounds.Exact; Bounds.Relaxed ]);
                                cells = n_cells;
                                sat_calls = 0;
                                admitted_unchecked = 0;
                                milp_nodes = 0;
                                lp_iterations = 0;
                                elapsed = Pc_util.Clock.now () -. t_solve0;
                                deadline_hit = false;
                              }
                            in
                            ({ Bounds.answer; stats }, true)
                        | None ->
                            ( Bounds.bound_budgeted ~opts:t.cfg.opts ~budget
                                ?certain ?fdd:ds.fdd st.Stream.residual query,
                              false )
                      in
                      let s = outcome.Bounds.stats in
                      let degraded = s.Bounds.provenance <> Bounds.Exact in
                      pend.p_rungs <-
                        List.map Bounds.provenance_name s.Bounds.rungs;
                      pend.p_provenance <-
                        Bounds.provenance_name s.Bounds.provenance;
                      pend.p_degraded <- degraded;
                      pend.p_sat <- s.Bounds.sat_calls;
                      pend.p_pivots <- s.Bounds.lp_iterations;
                      pend.p_cells <- s.Bounds.cells;
                      pend.p_nodes <- s.Bounds.milp_nodes;
                      if degraded then begin
                        Counter.incr c_degraded;
                        Atomic.incr t.n_degraded
                      end;
                      let reply =
                        J.Obj
                          ([
                             ("ok", J.Bool true);
                             ("op", J.Str "bound");
                             ("answer", answer_value outcome.Bounds.answer);
                             ( "provenance",
                               J.Str
                                 (Bounds.provenance_name s.Bounds.provenance) );
                             ("degraded", J.Bool degraded);
                             ("admission", J.Str (Admission.level_name level));
                             ("stats", stats_value s);
                           ]
                          @
                          if incremental then [ ("incremental", J.Bool true) ]
                          else [])
                      in
                      (* Only exact, fully-admitted replies are
                         reusable: degraded ones encode this request's
                         budget race, not the query's answer. Store the
                         serialized bytes so a hit is byte-identical.
                         The meta records which PCs the reply can depend
                         on, so ingestion evicts delta-scoped instead of
                         flushing; the pinned snapshot version fences
                         the store against a batch that published (and
                         swept the cache) while this reply was being
                         computed — without it the stale bytes would
                         land after the sweep and be served at the new
                         version. *)
                      match ckey with
                      | Some k
                        when level = Admission.Full
                             && s.Bounds.provenance = Bounds.Exact ->
                          let meta =
                            Option.map
                              (fun fdd ->
                                {
                                  Cache.pcs =
                                    Pc_predicate.Fdd.active_pcs
                                      ~query:query.Q.where_ fdd;
                                  where_ = query.Q.where_;
                                  missing_only;
                                })
                              ds.fdd
                          in
                          let text = J.to_string reply in
                          Cache.store ds.cache ?meta
                            ~version:st.Stream.version k text;
                          Rtext text
                      | _ -> Rjson reply))))

(* ------------------------------------------------------------------ *)
(* Streaming ingestion ops                                             *)
(* ------------------------------------------------------------------ *)

let ingest_reply ~op ~dname (info : Stream.info) ~evicted =
  J.Obj
    [
      ("ok", J.Bool true);
      ("op", J.Str op);
      ("dataset", J.Str dname);
      ("batch_id", J.Num (float_of_int info.Stream.batch_id));
      ("version", J.Num (float_of_int info.Stream.version));
      ("rows", J.Num (float_of_int info.Stream.rows));
      ( "touched",
        J.Arr
          (List.map (fun j -> J.Num (float_of_int j)) info.Stream.touched) );
      ("cache_evicted", J.Num (float_of_int evicted));
    ]

(* Evict exactly the cached replies the batch can have changed: entries
   whose predicate's FDD leaves reach a touched PC (missing side), or
   whose selection matches a batch row (certain side). Runs as the
   stream's [before_publish] hook — inside the writer critical section,
   before the new snapshot is visible — so the cache never serves a
   pre-ingest reply at the post-ingest version, and the version fence
   is up before any reader can pin the new snapshot. *)
let invalidate_for ds (info : Stream.info) batch =
  let rows =
    match batch with
    | None -> None
    | Some b ->
        Some
          ( Pc_data.Batch.schema b,
            Pc_data.Relation.tuples (Pc_data.Batch.to_relation b) )
  in
  let n =
    Cache.invalidate ds.cache ~version:info.Stream.version
      ~touched:info.Stream.touched ~rows
  in
  Counter.add c_ingest_evicted n;
  n

let handle_append t pend v =
  match str_field v "csv" with
  | None -> err_value "bad-request" "append: missing string field \"csv\""
  | Some csv -> (
      let dname = Option.value (str_field v "dataset") ~default:"default" in
      match find_dataset t dname with
      | None ->
          err_value "unknown-dataset"
            (Printf.sprintf "no dataset %S loaded" dname)
      | Some ds -> (
          pend.p_dataset <- ds.digest;
          let t0 = Pc_util.Clock.now_ns () in
          let r =
            Pc_obs.Trace.with_span ~name:"ingest.append"
              ~attrs:[ ("dataset", dname) ]
              (fun () ->
                match
                  Pc_data.Batch.of_csv_string
                    ?schema:(Stream.schema ds.stream) csv
                with
                | exception Failure msg -> Error ("parse-error", msg)
                | exception Invalid_argument msg -> Error ("parse-error", msg)
                | batch -> (
                    let evicted = ref 0 in
                    match
                      Stream.append ds.stream batch
                        ~before_publish:(fun info ->
                          evicted := invalidate_for ds info (Some batch))
                    with
                    | Error msg -> Error ("append-failed", msg)
                    | Ok (info, _snap) ->
                        let evicted = !evicted in
                        if Pc_obs.Trace.enabled () then begin
                          Pc_obs.Trace.add_attr "rows"
                            (string_of_int info.Stream.rows);
                          Pc_obs.Trace.add_attr "evicted"
                            (string_of_int evicted)
                        end;
                        Ok (info, evicted)))
          in
          let dt = Int64.to_float (Int64.sub (Pc_util.Clock.now_ns ()) t0) in
          Pc_obs.Registry.Histogram.observe_ns h_ingest dt;
          match r with
          | Error (code, msg) -> err_value code msg
          | Ok (info, evicted) ->
              Counter.incr c_ingest_batches;
              Counter.add c_ingest_rows info.Stream.rows;
              Atomic.incr t.n_append_batches;
              ignore
                (Atomic.fetch_and_add t.n_append_rows info.Stream.rows);
              ingest_reply ~op:"append" ~dname info ~evicted))

let handle_retract t pend v =
  match num_field v "batch" with
  | None -> err_value "bad-request" "retract: missing numeric field \"batch\""
  | Some bid -> (
      let batch_id = int_of_float bid in
      let dname = Option.value (str_field v "dataset") ~default:"default" in
      match find_dataset t dname with
      | None ->
          err_value "unknown-dataset"
            (Printf.sprintf "no dataset %S loaded" dname)
      | Some ds -> (
          pend.p_dataset <- ds.digest;
          let t0 = Pc_util.Clock.now_ns () in
          let r =
            Pc_obs.Trace.with_span ~name:"ingest.retract"
              ~attrs:[ ("dataset", dname) ]
              (fun () ->
                (* the rows must be captured before the retraction
                   removes them — they decide certain-side eviction *)
                let batch = Stream.find_batch ds.stream ~batch_id in
                let evicted = ref 0 in
                match
                  Stream.retract ds.stream ~batch_id
                    ~before_publish:(fun info ->
                      evicted := invalidate_for ds info batch)
                with
                | Error msg -> Error ("retract-failed", msg)
                | Ok (info, _snap) -> Ok (info, !evicted))
          in
          let dt = Int64.to_float (Int64.sub (Pc_util.Clock.now_ns ()) t0) in
          Pc_obs.Registry.Histogram.observe_ns h_ingest dt;
          match r with
          | Error (code, msg) -> err_value code msg
          | Ok (info, evicted) ->
              Counter.incr c_ingest_retracts;
              Atomic.incr t.n_retracts;
              ingest_reply ~op:"retract" ~dname info ~evicted))

let ni a = J.Num (float_of_int (Atomic.get a))

let cache_counters t =
  J.Obj [ ("hits", ni t.n_hits); ("misses", ni t.n_misses) ]

let admission_counters t =
  J.Obj
    (List.map
       (fun level ->
         ( Admission.level_name level,
           ni t.n_admitted.(Admission.level_order level) ))
       [ Admission.Full; Admission.Dual_only; Admission.Early_only;
         Admission.Floor_only ])

let handle_stats t =
  J.Obj
    [
      ("ok", J.Bool true);
      ("op", J.Str "stats");
      ("uptime_s", J.Num (Pc_util.Clock.now () -. t.t0));
      ("requests", ni t.n_requests);
      ("errors", ni t.n_errors);
      ("degraded", ni t.n_degraded);
      ("inflight", ni t.inflight);
      ("connections", ni t.conns);
      ("cache", cache_counters t);
      ("admission", admission_counters t);
      ( "ingest",
        J.Obj
          [
            ("batches", ni t.n_append_batches);
            ("rows", ni t.n_append_rows);
            ("retracts", ni t.n_retracts);
            ("incremental_bounds", ni t.n_incremental);
          ] );
      ("datasets", J.Arr (List.map (fun n -> J.Str n) (dataset_names t)));
      ("draining", J.Bool (Atomic.get t.drain));
      ("faults_injected", J.Num (float_of_int (Fault.total_injected ())));
    ]

(* ------------------------------------------------------------------ *)
(* The telemetry op                                                    *)
(* ------------------------------------------------------------------ *)

let window_labels = [ ("1s", 1.); ("10s", 10.); ("60s", 60.) ]

let window_snapshots t =
  let now = telemetry_now () in
  List.map
    (fun (label, w) -> (label, W.snapshot ~now t.window ~window_s:w))
    window_labels

let window_stats_value (s : W.stats) =
  J.Obj
    [
      ("window_s", J.Num s.W.window_s);
      ("n", J.Num (float_of_int s.W.n));
      ("qps", J.Num s.W.qps);
      ("error_rate", J.Num s.W.error_rate);
      ("degraded_fraction", J.Num s.W.degraded_fraction);
      ("cache_hit_rate", J.Num s.W.cache_hit_rate);
      ("p50_ns", J.Num s.W.p50_ns);
      ("p90_ns", J.Num s.W.p90_ns);
      ("p99_ns", J.Num s.W.p99_ns);
    ]

let handle_telemetry t v =
  let base rest =
    J.Obj
      (("ok", J.Bool true) :: ("op", J.Str "telemetry")
      :: ("uptime_s", J.Num (Pc_util.Clock.now () -. t.t0))
      :: ("last_id", ni t.req_id)
      :: rest)
  in
  match str_field v "view" with
  | Some "prometheus" ->
      let text =
        Telemetry.prometheus
          ~windows:(window_snapshots t)
          ~gauges:
            [
              ("server.inflight", float_of_int (Atomic.get t.inflight));
              ("server.connections", float_of_int (Atomic.get t.conns));
              ("server.uptime_s", Pc_util.Clock.now () -. t.t0);
            ]
      in
      base [ ("view", J.Str "prometheus"); ("text", J.Str text) ]
  | Some "flight" ->
      base
        [
          ("view", J.Str "flight");
          ("flight", Telemetry.Flight.to_json t.flight ~reason:"demand");
        ]
  | Some view ->
      err_value "bad-request"
        (Printf.sprintf "telemetry: unknown view %S" view)
  | None ->
      base
        [
          ("view", J.Str "windows");
          ( "windows",
            J.Obj
              (List.map
                 (fun (label, s) -> (label, window_stats_value s))
                 (window_snapshots t)) );
          ("requests", ni t.n_requests);
          ("errors", ni t.n_errors);
          ("degraded", ni t.n_degraded);
          ("inflight", ni t.inflight);
          ("cache", cache_counters t);
          ("admission", admission_counters t);
        ]

(* Dispatch one request line. Total: every failure mode, including an
   exception escaping a handler, becomes a structured error reply. *)
let handle_line t pend line =
  Atomic.incr t.n_requests;
  Counter.incr c_requests;
  let reply, shutdown =
    match J.parse line with
    | Error msg -> (Rjson (err_value "bad-json" msg), false)
    | Ok v -> (
        let op = str_field v "op" in
        pend.p_op <- Option.value op ~default:"";
        match op with
        | None ->
            (Rjson (err_value "bad-request" "missing string field \"op\""), false)
        | Some "ping" ->
            (Rjson (J.Obj [ ("ok", J.Bool true); ("op", J.Str "pong") ]), false)
        | Some "load" -> (Rjson (handle_load t v), false)
        | Some "bound" -> (handle_bound t pend v, false)
        | Some "append" -> (Rjson (handle_append t pend v), false)
        | Some "retract" -> (Rjson (handle_retract t pend v), false)
        | Some "stats" -> (Rjson (handle_stats t), false)
        | Some "telemetry" -> (Rjson (handle_telemetry t v), false)
        | Some "shutdown" ->
            ( Rjson
                (J.Obj
                   [
                     ("ok", J.Bool true);
                     ("op", J.Str "shutdown");
                     ("draining", J.Bool true);
                   ]),
              true )
        | Some op ->
            ( Rjson (err_value "unknown-op" (Printf.sprintf "unknown op %S" op)),
              false ))
    | exception e ->
        (* [J.parse] returns [result]; this arm only guards against bugs
           in our own dispatch — isolation beats precision here *)
        (Rjson (err_value "internal" (Printexc.to_string e)), false)
  in
  let reply =
    (* crash isolation for the handlers themselves *)
    match reply with
    | r -> r
    | exception e -> Rjson (err_value "internal" (Printexc.to_string e))
  in
  if reply_is_error reply then begin
    Atomic.incr t.n_errors;
    Counter.incr c_errors
  end;
  (reply, shutdown)

(* ------------------------------------------------------------------ *)
(* Connection loop                                                     *)
(* ------------------------------------------------------------------ *)

(* Socket fault injection lives at the reply boundary: a torn socket
   mid-write or a close-before-reply is indistinguishable from a client
   dying at the worst moment. *)
let send_reply fd line =
  if Fault.enabled () then begin
    if Fault.fire Fault.Sock_close then begin
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise Net.Closed
    end;
    if Fault.fire Fault.Sock_tear then begin
      let half = String.sub line 0 (String.length line / 2) in
      (try Net.write_string fd half with Net.Closed -> ());
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      raise Net.Closed
    end
  end;
  Net.write_string fd (line ^ "\n")

let dump_flight t ~reason =
  match t.cfg.flight_path with
  | None -> ()
  | Some path -> (
      let content = J.to_string (Telemetry.Flight.to_json t.flight ~reason) in
      try
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc content;
            output_char oc '\n')
      with Sys_error _ -> ())

let handle_conn t fd =
  let reader = Net.reader ~max_line:t.cfg.max_line fd in
  let stop () = Atomic.get t.drain in
  let rec loop () =
    match Net.read_line ~stop ~poll_s:t.cfg.poll_s reader with
    | `Eof | `Stopped -> ()
    | exception Net.Line_too_long ->
        (* cannot resync a stream with an unbounded line: answer, drop *)
        Atomic.incr t.n_errors;
        Counter.incr c_errors;
        (try send_reply fd (J.to_string (err_value "line-too-long" "request line exceeds the configured cap"))
         with Net.Closed -> ())
    | `Line line ->
        let t0 = Pc_util.Clock.now_ns () in
        let pend = make_pending (1 + Atomic.fetch_and_add t.req_id 1) in
        let reply, shutdown = handle_line t pend line in
        let sent =
          match send_reply fd (reply_text reply) with
          | () -> true
          | exception Net.Closed -> false
        in
        let latency_ns =
          Int64.to_float (Int64.sub (Pc_util.Clock.now_ns ()) t0)
        in
        Pc_obs.Registry.Histogram.observe_ns h_request latency_ns;
        (* Seal and publish the request record *before* any crash dump,
           so a dump triggered by this very request contains it. A
           failed send is recorded as an error even when the computed
           reply was fine — the client never saw the answer. *)
        let error =
          match reply_error_code reply with
          | Some _ as e -> e
          | None -> if sent then None else Some "send-failed"
        in
        let now = telemetry_now () in
        Telemetry.Flight.push t.flight
          (seal_record pend ~t_s:now
             ~latency_ns:(int_of_float latency_ns)
             ~error);
        W.observe ~now t.window ~latency_ns
          ~error:(Option.is_some error) ~degraded:pend.p_degraded
          ~cache:pend.p_cache;
        if not sent then dump_flight t ~reason:"crash";
        if shutdown then initiate_drain t else if sent then loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Accept loop and drain                                               *)
(* ------------------------------------------------------------------ *)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let flush_artifacts t =
  let write path content =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content)
  in
  (match t.cfg.trace_path with
  | None -> ()
  | Some path -> write path (Pc_obs.Trace.to_chrome_json ()));
  (match t.cfg.metrics_path with
  | None -> ()
  | Some path -> write path (Pc_obs.Registry.dump_json ()));
  dump_flight t ~reason:"drain"

let run t =
  while not (Atomic.get t.drain) do
    match Unix.select [ t.listen_fd ] [] [] t.cfg.poll_s with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
            ()
        | fd, _ ->
            Atomic.incr t.conns;
            ignore
              (Thread.create
                 (fun () ->
                   Fun.protect
                     ~finally:(fun () ->
                       close_noerr fd;
                       Atomic.decr t.conns)
                     (fun () ->
                       (* last-ditch isolation: a connection thread never
                          takes the server down, whatever escapes *)
                       try handle_conn t fd with _ -> ()))
                 ()))
  done;
  close_noerr t.listen_fd;
  (* connections observe the drain flag within one poll slice; in-flight
     requests run to completion under their budgets *)
  while Atomic.get t.conns > 0 do
    Thread.yield ();
    Unix.sleepf 0.005
  done;
  flush_artifacts t
