(** The `pcda serve` engine: a fault-isolated, line-oriented JSON bound
    server.

    One process, one listening socket, one OS thread per connection
    (systhreads; solver work also fans out through [Pc_par] when the
    caller configured a pool). Clients send one JSON object per line
    and receive one JSON object per line; see DESIGN.md, "Serving,
    admission control & fault injection" for the protocol grammar.

    Robustness contract, which the chaos tests pin:

    - {b Per-request crash isolation.} A malformed line, an unknown op,
      a parse error, or {e any} exception escaping a handler produces a
      structured [{"ok":false,"error":{...}}] reply on that connection;
      nothing ever unwinds past the request loop, kills a sibling
      connection, or kills the process.
    - {b Per-request deadlines.} Every [bound] runs under a
      {!Pc_budget.Budget.t} started from the server's base spec, the
      request's [timeout_ms], and the admission level — monotonic-clock
      deadlines, so degradation under pressure, never a hang.
    - {b Admission control} ({!Admission}): overload maps to cheaper
      ladder rungs instead of an unbounded queue. Replies carry both
      the admission level and the answer's provenance.
    - {b Graceful drain.} SIGTERM/SIGINT (or a [shutdown] request) stop
      the accept loop; in-flight requests finish (their budgets bound
      how long that takes), idle connections close at the next poll
      slice, then trace/metrics artifacts are flushed and {!run}
      returns. A second signal does not escalate; the drain is already
      as fast as the budgets allow.
    - {b Fault injection} ({!Pc_fault.Fault}): with a schedule armed,
      injected SAT failures/stalls, simplex doubt, clock skew and torn
      client sockets must all degrade or drop a single request or
      connection, never the server.
    - {b Live telemetry} ({!Telemetry}, [Pc_obs.Window]): every request
      gets a monotonically increasing id and materializes one record
      (admission verdict, cache outcome, ladder rungs, SAT calls /
      pivots / nodes, latency) into the always-on flight recorder and
      the sliding SLO windows. The [telemetry] op serves windowed
      qps / p50 / p99 / error-rate / degraded-fraction / cache-hit-rate
      (1 s / 10 s / 60 s), a Prometheus-style text exposition
      ([{"view": "prometheus"}]), and the flight dump
      ([{"view": "flight"}]); [pcda top] renders it live. When
      [policy.p99_slo_ms] is set, admission also reads the windowed
      1 s p99 and sheds to cheaper rungs as the tail blows through the
      SLO. *)

type config = {
  host : string;
  port : int;  (** [0] binds an ephemeral port; read it back with {!port} *)
  base_spec : Pc_budget.Budget.spec;  (** per-request budget before admission *)
  opts : Pc_core.Bounds.opts;
  policy : Admission.policy;
  max_line : int;
  poll_s : float;  (** blocked-reader / accept-loop drain poll slice *)
  trace_path : string option;  (** Chrome trace written at drain *)
  metrics_path : string option;  (** metrics JSON written at drain *)
  flight_path : string option;
      (** flight-recorder JSON dump, written at drain ([reason:
          "drain"]) and whenever a reply cannot be delivered — a torn
          or closed socket at the send boundary ([reason: "crash"]),
          which always includes the failing request's record. The
          [telemetry] op's ["view": "flight"] serves the same dump on
          demand regardless of this setting. *)
  flight_capacity : int;  (** flight-recorder ring size (default 512) *)
  cache : bool;
      (** canonicalizing bound cache: repeat [bound] requests (same
          dataset content, canonical query predicate, aggregate, and
          request flags) are answered byte-identically from a
          per-dataset reply cache without touching the solver stack.
          Only exact, fully-admitted replies are cached; re-[load]ing a
          dataset invalidates its entries. Hit/miss rates surface as
          [cache.hits]/[cache.misses] in [--metrics]. *)
}

val default_config : config
(** 127.0.0.1:0, unlimited base budget, FDD decomposition strategy with
    a per-dataset precompiled diagram, cache enabled, admission for 64
    in-flight, 16 MiB lines, 0.1 s poll, no artifacts. *)

type t

val create : config -> t
(** Bind and listen (with [SO_REUSEADDR]); raises [Unix.Unix_error] on
    bind failure. Also installs the process-wide SIGPIPE ignore. *)

val port : t -> int
(** The bound port (resolves [port = 0]). *)

val load_dataset :
  t -> name:string -> constraints:string -> ?csv:string -> unit -> (int * int, string) result
(** Parse and install a dataset (constraint DSL text, optional CSV text
    for the certain partition) under [name], replacing any previous
    binding. [Ok (n_constraints, n_certain_rows)]. Also the CLI's
    preload path. *)

val run : t -> unit
(** Serve until drained. Returns after the listen socket is closed,
    every connection thread has exited, and artifacts are flushed. *)

val initiate_drain : t -> unit
(** Stop accepting and begin the drain; safe from any thread and from
    signal handlers; idempotent. *)

val draining : t -> bool

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT call {!initiate_drain}. *)
