module J = Pc_obs.Json
module R = Pc_obs.Registry
module W = Pc_obs.Window

type record = {
  id : int;
  t_s : float;
  op : string;
  dataset : string;
  admission : string;
  rungs : string list;
  provenance : string;
  cache : string;
  sat_calls : int;
  pivots : int;
  cells : int;
  nodes : int;
  latency_ns : int;
  error : string option;
}

let record_json r =
  J.Obj
    [
      ("id", J.Num (float_of_int r.id));
      ("t_s", J.Num r.t_s);
      ("op", J.Str r.op);
      ("dataset", J.Str r.dataset);
      ("admission", J.Str r.admission);
      ("rungs", J.Arr (List.map (fun s -> J.Str s) r.rungs));
      ("provenance", J.Str r.provenance);
      ("cache", J.Str r.cache);
      ("sat_calls", J.Num (float_of_int r.sat_calls));
      ("pivots", J.Num (float_of_int r.pivots));
      ("cells", J.Num (float_of_int r.cells));
      ("nodes", J.Num (float_of_int r.nodes));
      ("latency_ns", J.Num (float_of_int r.latency_ns));
      ("error", match r.error with None -> J.Null | Some e -> J.Str e);
    ]

module Flight = struct
  (* One atomic per slot holding an immutable record: a reader sees each
     slot either before or after any overwrite, never torn. [next] hands
     out distinct slot indices, so concurrent writers cannot clobber one
     another — eviction is purely "capacity newer records exist". *)
  type t = { slots : record option Atomic.t array; next : int Atomic.t }

  let create ~capacity =
    let capacity = max 1 capacity in
    { slots = Array.init capacity (fun _ -> Atomic.make None); next = Atomic.make 0 }

  let capacity t = Array.length t.slots
  let pushed t = Atomic.get t.next

  let push t r =
    let i = Atomic.fetch_and_add t.next 1 in
    Atomic.set t.slots.(i mod Array.length t.slots) (Some r)

  let records t =
    let cap = Array.length t.slots in
    let n = Atomic.get t.next in
    let first = if n <= cap then 0 else n - cap in
    let out = ref [] in
    for k = n - 1 downto first do
      match Atomic.get t.slots.(k mod cap) with
      | Some r -> out := r :: !out
      | None -> ()
    done;
    (* records pushed concurrently with this read can land out of id
       order across the wrap point; present them sorted so the dump is
       canonical *)
    List.sort (fun a b -> compare a.id b.id) !out

  let to_json t ~reason =
    J.Obj
      [
        ("schema", J.Str "pcda-flight/1");
        ("reason", J.Str reason);
        ("capacity", J.Num (float_of_int (capacity t)));
        ("pushed", J.Num (float_of_int (pushed t)));
        ("records", J.Arr (List.map record_json (records t)));
      ]
end

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let prom_name name =
  let b = Bytes.of_string ("pcda_" ^ name) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

let fnum v =
  if Float.is_finite v then
    (* shortest-exact like the JSON emitters: integers print bare *)
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v
  else "0"

let prometheus ~windows ~gauges =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  List.iter
    (fun (name, v) ->
      let m = prom_name name in
      line "# HELP %s registry counter %s" m name;
      line "# TYPE %s counter" m;
      line "%s %d" m v)
    (R.counters ());
  List.iter
    (fun h ->
      let name = R.Histogram.name h in
      let m = prom_name name in
      line "# HELP %s registry histogram %s (nanoseconds)" m name;
      line "# TYPE %s summary" m;
      List.iter
        (fun q ->
          line "%s{quantile=\"%.2f\"} %s" m (q /. 100.)
            (fnum (R.Histogram.percentile_ns h q)))
        [ 50.; 90.; 99. ];
      line "%s_sum %d" m (R.Histogram.sum_ns h);
      line "%s_count %d" m (R.Histogram.count h);
      line "%s_min %d" m (R.Histogram.min_ns h);
      line "%s_max %d" m (R.Histogram.max_ns h))
    (R.histograms ());
  let window_gauge field help value_of =
    let m = "pcda_window_" ^ field in
    line "# HELP %s %s" m help;
    line "# TYPE %s gauge" m;
    List.iter
      (fun (label, (s : W.stats)) ->
        line "%s{window=%S} %s" m label (fnum (value_of s)))
      windows
  in
  window_gauge "qps" "requests per second over the window" (fun s -> s.W.qps);
  window_gauge "requests" "requests completed in the window" (fun s ->
      float_of_int s.W.n);
  window_gauge "error_rate" "error fraction over the window" (fun s ->
      s.W.error_rate);
  window_gauge "degraded_fraction" "degraded-reply fraction over the window"
    (fun s -> s.W.degraded_fraction);
  window_gauge "cache_hit_rate" "cache hit rate over the window" (fun s ->
      s.W.cache_hit_rate);
  window_gauge "p50_ns" "windowed latency p50 (nanoseconds)" (fun s ->
      s.W.p50_ns);
  window_gauge "p99_ns" "windowed latency p99 (nanoseconds)" (fun s ->
      s.W.p99_ns);
  List.iter
    (fun (name, v) ->
      let m = prom_name name in
      line "# HELP %s server gauge %s" m name;
      line "# TYPE %s gauge" m;
      line "%s %s" m (fnum v))
    gauges;
  Buffer.contents b
