(** Request-scoped telemetry: per-request records, the flight recorder,
    and the Prometheus-style text exposition.

    Every request the server answers materializes one compact {!record}
    — its monotonically increasing id, what it asked, how admission and
    the degradation ladder treated it, and what it cost. Records feed
    two sinks: the {!Flight} ring (always on, bounded, dumped as JSON on
    crash / drain / demand) and the windowed SLO monitor
    ([Pc_obs.Window], fed by the server directly).

    See DESIGN.md, "Live telemetry & flight recorder". *)

type record = {
  id : int;  (** server-wide monotonically increasing request id *)
  t_s : float;  (** completion wall-clock time (unix seconds) *)
  op : string;
  dataset : string;  (** dataset content digest ([""] for non-[bound] ops) *)
  admission : string;  (** admission level name ([""] when not admitted) *)
  rungs : string list;
      (** the degradation-ladder walk ([Pc_core.Bounds.stats.rungs]) *)
  provenance : string;  (** final rung ([""] for non-[bound] ops) *)
  cache : string;  (** ["hit"], ["miss"], or ["uncached"] *)
  sat_calls : int;
  pivots : int;  (** simplex iterations *)
  cells : int;
  nodes : int;  (** branch-and-bound nodes *)
  latency_ns : int;
  error : string option;  (** error code when the reply was an error *)
}

val record_json : record -> Pc_obs.Json.value

(** Always-on bounded ring of the last [capacity] request records.

    Writers claim distinct slots with one [fetch_and_add], so concurrent
    pushes never lose records — a record only leaves the ring when
    [capacity] newer ones have overwritten it. A {!records} read racing
    concurrent writers can observe a slot mid-overwrite as the {e newer}
    record; at most [writers] of the returned records may be newer than
    the read's start, and none are torn (slots hold immutable records
    behind one atomic). *)
module Flight : sig
  type t

  val create : capacity:int -> t
  (** [capacity] is clamped to at least 1. *)

  val capacity : t -> int

  val pushed : t -> int
  (** Total records ever pushed (≥ the number retained). *)

  val push : t -> record -> unit

  val records : t -> record list
  (** Retained records, oldest first. *)

  val to_json : t -> reason:string -> Pc_obs.Json.value
  (** The dump artifact:
      [{"schema": "pcda-flight/1", "reason": ..., "capacity": ...,
        "pushed": ..., "records": [...]}] — always valid JSON. *)
end

val prometheus :
  windows:(string * Pc_obs.Window.stats) list ->
  gauges:(string * float) list ->
  string
(** Prometheus text exposition ([text/plain; version=0.0.4] shape) of
    the whole telemetry plane: every registry counter as
    [pcda_<name> v] (dots become underscores), every registry histogram
    as [_count] / [_sum] plus [quantile]-labelled gauges, each [windows]
    entry (label, snapshot) as [pcda_window_*{window="label"}] gauges,
    and each extra gauge verbatim under [pcda_<name>]. [# TYPE] /
    [# HELP] comment lines precede each metric family. Numbers are
    rendered finite (no NaN / infinity). *)
