module Relation = Pc_data.Relation
module Q = Pc_query.Query
module Pred = Pc_predicate.Pred
module Range = Pc_core.Range

type method_ = Parametric | Nonparametric

(* Per-row contribution of a query: for totals (COUNT/SUM) every sampled
   row contributes (0 when the predicate rejects it). *)
let contributions sample (query : Q.t) =
  let schema = Relation.schema sample in
  let matches row = Pred.eval schema query.Q.where_ row in
  match query.Q.agg with
  | Q.Count ->
      Some (Relation.fold (fun acc row -> (if matches row then 1. else 0.) :: acc) [] sample)
  | Q.Sum a ->
      let idx = Pc_data.Schema.index schema a in
      Some
        (Relation.fold
           (fun acc row ->
             (if matches row then Pc_data.Value.as_num row.(idx) else 0.) :: acc)
           [] sample)
  | Q.Avg _ | Q.Min _ | Q.Max _ -> None

let matching_values sample (query : Q.t) attr =
  let schema = Relation.schema sample in
  let idx = Pc_data.Schema.index schema attr in
  Relation.fold
    (fun acc row ->
      if Pred.eval schema query.Q.where_ row then Pc_data.Value.as_num row.(idx) :: acc
      else acc)
    [] sample

let half_width ~method_ ~confidence ys =
  let m = Array.length ys in
  if m = 0 then 0.
  else begin
    match method_ with
    | Parametric ->
        let z = Pc_util.Stat.normal_quantile (1. -. ((1. -. confidence) /. 2.)) in
        z *. Pc_util.Stat.stddev ys /. sqrt (float_of_int m)
    | Nonparametric ->
        let spread = Pc_util.Stat.maximum ys -. Pc_util.Stat.minimum ys in
        let delta = Float.max 1e-12 (1. -. confidence) in
        spread *. sqrt (log (2. /. delta) /. (2. *. float_of_int m))
  end

(* Interval for the mean of the matching subsample (AVG queries). *)
let mean_interval ~method_ ~confidence values =
  match values with
  | [] -> None
  | _ ->
      let ys = Array.of_list values in
      let mean = Pc_util.Stat.mean ys in
      let half = half_width ~method_ ~confidence ys in
      Some (Range.make (mean -. half) (mean +. half))

let total_interval ~method_ ~confidence ~n_total contributions =
  match contributions with
  | [] -> None
  | _ ->
      let ys = Array.of_list contributions in
      let mean = Pc_util.Stat.mean ys in
      let half = half_width ~method_ ~confidence ys in
      let scale = float_of_int n_total in
      Some (Range.make (scale *. (mean -. half)) (scale *. (mean +. half)))

let extreme_interval values ~is_max =
  match values with
  | [] -> None
  | _ ->
      let ys = Array.of_list values in
      let v = if is_max then Pc_util.Stat.maximum ys else Pc_util.Stat.minimum ys in
      (* a sample offers no principled bound beyond its own extremes: pad
         by the observed spread, the honest best effort *)
      let spread = Pc_util.Stat.maximum ys -. Pc_util.Stat.minimum ys in
      let pad = 0.5 *. spread in
      if is_max then Some (Range.make (v -. 1e-12) (v +. pad))
      else Some (Range.make (v -. pad) (v +. 1e-12))

let uniform_estimator ~name ~method_ ~confidence ~sample ~n_total =
  Estimator.make name (fun query ->
      match query.Q.agg with
      | Q.Count | Q.Sum _ ->
          Option.bind (contributions sample query)
            (total_interval ~method_ ~confidence ~n_total)
      | Q.Avg a -> mean_interval ~method_ ~confidence (matching_values sample query a)
      | Q.Max a -> extreme_interval (matching_values sample query a) ~is_max:true
      | Q.Min a -> extreme_interval (matching_values sample query a) ~is_max:false)

let stratified_estimator ~name ~method_ ~confidence ~strata =
  Estimator.make name (fun query ->
      match query.Q.agg with
      | Q.Count | Q.Sum _ ->
          (* combine per-stratum totals; the confidence budget is split
             across strata (union bound) for the nonparametric form *)
          let h = max 1 (List.length strata) in
          let confidence_h =
            match method_ with
            | Parametric -> confidence
            | Nonparametric -> 1. -. ((1. -. confidence) /. float_of_int h)
          in
          let acc =
            List.fold_left
              (fun acc (s : Sample.stratum) ->
                match acc with
                | None -> None
                | Some (lo, hi, any) -> (
                    match contributions s.Sample.rows query with
                    | None -> None
                    | Some [] -> Some (lo, hi, any)
                    | Some cs -> (
                        match
                          total_interval ~method_ ~confidence:confidence_h
                            ~n_total:s.Sample.population cs
                        with
                        | None -> Some (lo, hi, any)
                        | Some r -> Some (lo +. r.Range.lo, hi +. r.Range.hi, true))))
              (Some (0., 0., false))
              strata
          in
          Option.bind acc (fun (lo, hi, any) ->
              if any then Some (Range.make lo hi) else None)
      | Q.Avg a ->
          let values =
            List.concat_map
              (fun (s : Sample.stratum) -> matching_values s.Sample.rows query a)
              strata
          in
          mean_interval ~method_ ~confidence values
      | Q.Max a ->
          let values =
            List.concat_map
              (fun (s : Sample.stratum) -> matching_values s.Sample.rows query a)
              strata
          in
          extreme_interval values ~is_max:true
      | Q.Min a ->
          let values =
            List.concat_map
              (fun (s : Sample.stratum) -> matching_values s.Sample.rows query a)
              strata
          in
          extreme_interval values ~is_max:false)
