(** Confidence intervals for the sampling baselines (§6.1.1, §6.7).

    [Parametric] is the Central-Limit-Theorem interval (US-kp / ST-kp):
    mean ± z·s/√m, scaled to the population. [Nonparametric] is the
    conservative range-based interval in the style of Hellerstein et al.'s
    online aggregation bounds (US-kn / ST-kn): it replaces the estimated
    standard error with the observed value spread and a Hoeffding term —
    milder assumptions, wider intervals, still fallible because the
    sample min/max underestimate the true spread. *)

type method_ = Parametric | Nonparametric

val uniform_estimator :
  name:string ->
  method_:method_ ->
  confidence:float ->
  sample:Pc_data.Relation.t ->
  n_total:int ->
  Estimator.t
(** Estimates COUNT/SUM totals over a missing partition of [n_total] rows
    from a uniform sample, and AVG/MIN/MAX from the matching subsample. *)

val stratified_estimator :
  name:string ->
  method_:method_ ->
  confidence:float ->
  strata:Sample.stratum list ->
  Estimator.t
