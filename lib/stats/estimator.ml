type t = {
  name : string;
  estimate : Pc_query.Query.t -> Pc_core.Range.t option;
}

let make name estimate = { name; estimate }
