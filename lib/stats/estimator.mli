(** Common interface for the competing frameworks of §6.1: each baseline
    is fitted once on (information about) the missing partition and then
    estimates a result interval per query. [None] means the technique
    cannot produce an estimate for this query (e.g. an empty sample for a
    ratio aggregate) — the experiment harness scores it as a failure when
    a true answer exists. *)

type t = {
  name : string;
  estimate : Pc_query.Query.t -> Pc_core.Range.t option;
}

val make : string -> (Pc_query.Query.t -> Pc_core.Range.t option) -> t
