module Q = Pc_query.Query
module Relation = Pc_data.Relation

let estimate ~observed ~n_missing (query : Q.t) =
  let n_obs = Relation.cardinality observed in
  if n_obs = 0 then None
  else begin
    let scale =
      float_of_int (n_obs + n_missing) /. float_of_int n_obs
    in
    Option.map
      (fun v ->
        match query.Q.agg with
        | Q.Count | Q.Sum _ -> v *. scale
        | Q.Avg _ | Q.Min _ | Q.Max _ -> v)
      (Q.eval observed query)
  end

let relative_error ~observed ~missing query =
  let full = Relation.union observed missing in
  match
    ( estimate ~observed ~n_missing:(Relation.cardinality missing) query,
      Q.eval full query )
  with
  | Some est, Some truth when truth <> 0. ->
      Some (Float.abs (est -. truth) /. Float.abs truth)
  | _ -> None
