(** Simple extrapolation (§1, Figure 1): scale the observed aggregate by
    the known total size, assuming the missing rows resemble the observed
    ones. Returns a single point, not an interval — exactly the
    methodological weakness the paper's introduction illustrates. *)

val estimate :
  observed:Pc_data.Relation.t -> n_missing:int -> Pc_query.Query.t -> float option
(** COUNT/SUM: observed value × (n_obs + n_missing) / n_obs.
    AVG/MIN/MAX: the observed value unchanged. [None] when undefined. *)

val relative_error :
  observed:Pc_data.Relation.t ->
  missing:Pc_data.Relation.t ->
  Pc_query.Query.t ->
  float option
(** |extrapolated − truth| / |truth| on the full relation, the quantity
    Figure 1 plots. [None] when either side is undefined or truth is 0. *)
