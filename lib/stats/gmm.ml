module Relation = Pc_data.Relation
module Q = Pc_query.Query
module Range = Pc_core.Range

type t = {
  attrs : string list;
  weights : float array;  (* k *)
  means : float array array;  (* k x d *)
  vars : float array array;  (* k x d, diagonal *)
}

let n_components t = Array.length t.weights

let data_matrix rel attrs =
  let cols = List.map (fun a -> Relation.column rel a) attrs in
  let d = List.length attrs in
  let n = Relation.cardinality rel in
  let cols = Array.of_list cols in
  Array.init n (fun i -> Array.init d (fun j -> cols.(j).(i)))

let log_density_component mean var x =
  let d = Array.length x in
  let acc = ref 0. in
  for j = 0 to d - 1 do
    let v = Float.max 1e-9 var.(j) in
    let diff = x.(j) -. mean.(j) in
    acc := !acc -. (0.5 *. (log (2. *. Float.pi *. v) +. (diff *. diff /. v)))
  done;
  !acc

let log_density t x =
  let k = n_components t in
  let terms =
    Array.init k (fun c ->
        log t.weights.(c) +. log_density_component t.means.(c) t.vars.(c) x)
  in
  Pc_util.Stat.log_sum_exp terms

(* k-means++-style seeding: first centre uniform, later centres biased
   towards points far from the chosen ones. *)
let seed_means rng xs k =
  let n = Array.length xs in
  let centres = Array.make k xs.(Pc_util.Rng.int rng n) in
  let dist2 a b =
    let acc = ref 0. in
    Array.iteri (fun j v -> acc := !acc +. ((v -. b.(j)) ** 2.)) a;
    !acc
  in
  for c = 1 to k - 1 do
    let d2 =
      Array.map
        (fun x ->
          let best = ref infinity in
          for c' = 0 to c - 1 do
            best := Float.min !best (dist2 x centres.(c'))
          done;
          !best)
        xs
    in
    let total = Array.fold_left ( +. ) 0. d2 in
    if total <= 0. then centres.(c) <- xs.(Pc_util.Rng.int rng n)
    else begin
      let r = Pc_util.Rng.float rng total in
      let acc = ref 0. and chosen = ref 0 in
      (try
         Array.iteri
           (fun i v ->
             acc := !acc +. v;
             if !acc >= r then begin
               chosen := i;
               raise Exit
             end)
           d2
       with Exit -> ());
      centres.(c) <- xs.(!chosen)
    end
  done;
  Array.map Array.copy centres

let fit ?(iters = 30) ?(k = 3) rng rel ~attrs =
  if Relation.is_empty rel then invalid_arg "Gmm.fit: empty relation";
  if k < 1 then invalid_arg "Gmm.fit: k < 1";
  let xs = data_matrix rel attrs in
  let n = Array.length xs in
  let d = List.length attrs in
  let k = min k n in
  let global_var =
    Array.init d (fun j ->
        let col = Array.map (fun x -> x.(j)) xs in
        Float.max 1e-6 (Pc_util.Stat.variance col))
  in
  let means = seed_means rng xs k in
  let vars = Array.init k (fun _ -> Array.copy global_var) in
  let weights = Array.make k (1. /. float_of_int k) in
  let model = ref { attrs; weights; means; vars } in
  let resp = Array.make_matrix n k 0. in
  for _ = 1 to iters do
    let m = !model in
    (* E step *)
    for i = 0 to n - 1 do
      let logs =
        Array.init k (fun c ->
            log m.weights.(c) +. log_density_component m.means.(c) m.vars.(c) xs.(i))
      in
      let lse = Pc_util.Stat.log_sum_exp logs in
      for c = 0 to k - 1 do
        resp.(i).(c) <- exp (logs.(c) -. lse)
      done
    done;
    (* M step *)
    let nk = Array.make k 0. in
    for i = 0 to n - 1 do
      for c = 0 to k - 1 do
        nk.(c) <- nk.(c) +. resp.(i).(c)
      done
    done;
    let new_weights = Array.map (fun x -> Float.max 1e-9 (x /. float_of_int n)) nk in
    let new_means =
      Array.init k (fun c ->
          let mu = Array.make d 0. in
          for i = 0 to n - 1 do
            for j = 0 to d - 1 do
              mu.(j) <- mu.(j) +. (resp.(i).(c) *. xs.(i).(j))
            done
          done;
          let denom = Float.max 1e-9 nk.(c) in
          Array.map (fun v -> v /. denom) mu)
    in
    let new_vars =
      Array.init k (fun c ->
          let var = Array.make d 0. in
          for i = 0 to n - 1 do
            for j = 0 to d - 1 do
              let diff = xs.(i).(j) -. new_means.(c).(j) in
              var.(j) <- var.(j) +. (resp.(i).(c) *. diff *. diff)
            done
          done;
          let denom = Float.max 1e-9 nk.(c) in
          Array.mapi (fun j v -> Float.max (1e-6 *. global_var.(j)) (v /. denom)) var)
    in
    model := { attrs; weights = new_weights; means = new_means; vars = new_vars }
  done;
  !model

let log_likelihood t rel =
  let xs = data_matrix rel t.attrs in
  if Array.length xs = 0 then invalid_arg "Gmm.log_likelihood: empty relation";
  Pc_util.Stat.mean (Array.map (log_density t) xs)

let sample rng t ~n =
  let d = List.length t.attrs in
  let k = n_components t in
  let schema =
    Pc_data.Schema.of_names (List.map (fun a -> (a, Pc_data.Schema.Numeric)) t.attrs)
  in
  let pick_component () =
    let r = Pc_util.Rng.float rng 1. in
    let acc = ref 0. and chosen = ref (k - 1) in
    (try
       Array.iteri
         (fun c w ->
           acc := !acc +. w;
           if !acc >= r then begin
             chosen := c;
             raise Exit
           end)
         t.weights
     with Exit -> ());
    !chosen
  in
  let rows =
    List.init n (fun _ ->
        let c = pick_component () in
        Array.init d (fun j ->
            Pc_data.Value.Num
              (Pc_util.Rng.gaussian rng ~mu:t.means.(c).(j)
                 ~sigma:(sqrt t.vars.(c).(j)))))
  in
  Relation.create schema rows

let estimator rng t ~n_missing ~trials =
  (* simulate the missing partitions once; queries reuse them *)
  let worlds = List.init (max 1 trials) (fun _ -> sample rng t ~n:n_missing) in
  Estimator.make "Gen" (fun query ->
      let answers = List.filter_map (fun w -> Q.eval w query) worlds in
      match answers with
      | [] -> None
      | _ ->
          let ys = Array.of_list answers in
          Some (Range.make (Pc_util.Stat.minimum ys) (Pc_util.Stat.maximum ys)))
