(** Diagonal-covariance Gaussian Mixture Model fitted by
    expectation-maximization — the generative baseline of §6.1.2. The
    fitted model simulates missing datasets; querying the simulations
    yields a range of likely values (min/max over trials). *)

type t

val fit :
  ?iters:int ->
  ?k:int ->
  Pc_util.Rng.t ->
  Pc_data.Relation.t ->
  attrs:string list ->
  t
(** EM with k-means++-style seeding; [k] defaults to 3 components, [iters]
    to 30. Raises [Invalid_argument] on an empty relation or non-numeric
    attributes. *)

val n_components : t -> int
val log_likelihood : t -> Pc_data.Relation.t -> float
(** Mean per-row log density — used by tests to check EM improves fit. *)

val sample : Pc_util.Rng.t -> t -> n:int -> Pc_data.Relation.t
(** Synthetic relation over the fitted attributes. *)

val estimator :
  Pc_util.Rng.t -> t -> n_missing:int -> trials:int -> Estimator.t
(** Simulates [trials] missing partitions of [n_missing] rows and returns
    the envelope of the query answers across them. *)
