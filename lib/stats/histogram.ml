let pcs rel ~attrs ~bins =
  Pc_core.Pc_set.make (Pc_core.Generate.equiwidth_grid rel ~attrs ~bins ())

let estimator rel ~attrs ~bins =
  let set = pcs rel ~attrs ~bins in
  Estimator.make "Histogram" (fun query ->
      match Pc_core.Bounds.bound set query with
      | Pc_core.Bounds.Range r -> Some r
      | Pc_core.Bounds.Empty | Pc_core.Bounds.Infeasible -> None)
