(** Equi-width histogram baseline (§6.1.3), realized as the disjoint-PC
    special case the paper identifies ("Histograms are a dense 1-D
    special case of our work"): one bucket per grid cell with its exact
    row count and value spread, answered through the PC bound machinery —
    so like PCs, histograms never fail when their contents are exact. *)

val pcs :
  Pc_data.Relation.t -> attrs:string list -> bins:int -> Pc_core.Pc_set.t

val estimator :
  Pc_data.Relation.t -> attrs:string list -> bins:int -> Estimator.t
