module Range = Pc_core.Range

let hard_of_pc_set ?opts set query =
  match Pc_core.Bounds.bound ?opts set query with
  | Pc_core.Bounds.Range r -> Some r
  | Pc_core.Bounds.Empty | Pc_core.Bounds.Infeasible -> None

let intersect (a : Range.t) (b : Range.t) =
  let lo = Float.max a.Range.lo b.Range.lo in
  let hi = Float.min a.Range.hi b.Range.hi in
  if lo > hi then None else Some (Range.make lo hi)

let inside (inner : Range.t) (outer : Range.t) =
  inner.Range.lo >= outer.Range.lo -. 1e-9 && inner.Range.hi <= outer.Range.hi +. 1e-9

let estimator ?(mode = `Reject_on_conflict) ~name ~hard ~statistical () =
  Estimator.make name (fun query ->
      match (hard query, statistical.Estimator.estimate query) with
      | None, other -> other
      | other, None -> other
      | Some h, Some s -> (
          match mode with
          | `Reject_on_conflict ->
              (* a statistical interval that asserts mass on values the
                 constraints prove impossible is evidence of a broken
                 sample or model: trust the hard range instead *)
              if inside s h then Some s else Some h
          | `Clip -> (
              match intersect h s with
              | Some r -> Some r
              | None -> Some h)))
