(** PCs and samples combined — the "best of both worlds" system the paper
    anticipates in §7: a statistical interval is usually much tighter,
    while the hard range defines the deterministically possible values.

    Two composition modes:

    - [`Reject_on_conflict] (default): trust the statistical interval
      only when it lies entirely inside the hard range. An interval that
      asserts probability mass on impossible values is evidence that the
      sample or its model is broken — a biased sample typically produces
      exactly that signature — so the hard range is reported instead.
    - [`Clip]: intersect the two intervals; when they are disjoint, the
      hard range alone is returned.

    Neither mode can fail more often than the hard range fails (never,
    when the constraints hold), except when an in-range statistical
    interval is itself wrong — the residual risk any statistical method
    carries. *)

val hard_of_pc_set :
  ?opts:Pc_core.Bounds.opts ->
  Pc_core.Pc_set.t ->
  Pc_query.Query.t ->
  Pc_core.Range.t option
(** The hard range as an estimator function ([Empty]/[Infeasible] map to
    abstention). *)

val estimator :
  ?mode:[ `Reject_on_conflict | `Clip ] ->
  name:string ->
  hard:(Pc_query.Query.t -> Pc_core.Range.t option) ->
  statistical:Estimator.t ->
  unit ->
  Estimator.t
(** Falls back to whichever side produced an interval when the other
    abstains. *)
