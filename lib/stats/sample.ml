module Relation = Pc_data.Relation

let uniform rng rel ~m =
  let rows = Relation.tuples rel in
  let chosen = Pc_util.Rng.sample_without_replacement rng m rows in
  Relation.of_array (Relation.schema rel) chosen

type stratum = { rows : Relation.t; population : int }

let stratified rng rel ~strata_of ~m =
  let groups : (int, Relation.tuple list ref) Hashtbl.t = Hashtbl.create 16 in
  Relation.iter
    (fun row ->
      let key = strata_of row in
      match Hashtbl.find_opt groups key with
      | Some cell -> cell := row :: !cell
      | None -> Hashtbl.add groups key (ref [ row ]))
    rel;
  let total = Relation.cardinality rel in
  if total = 0 then []
  else begin
    let schema = Relation.schema rel in
    Hashtbl.fold (fun key cell acc -> (key, !cell) :: acc) groups []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (_, rows) ->
           let population = List.length rows in
           let share =
             max 1 (int_of_float (Float.round (float_of_int (m * population) /. float_of_int total)))
           in
           let chosen =
             Pc_util.Rng.sample_without_replacement rng share (Array.of_list rows)
           in
           { rows = Relation.of_array schema chosen; population })
  end

let strata_by_quantiles rel ~attr ~buckets =
  let xs = Relation.column rel attr in
  Array.sort Float.compare xs;
  let n = Array.length xs in
  let edges =
    Array.init (buckets - 1) (fun i -> xs.(min (n - 1) ((i + 1) * n / buckets)))
  in
  let idx = Pc_data.Schema.index (Relation.schema rel) attr in
  fun row ->
    let v = Pc_data.Value.as_num row.(idx) in
    let rec find i = if i >= Array.length edges || v < edges.(i) then i else find (i + 1) in
    find 0
