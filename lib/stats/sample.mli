(** Sampling baselines (§6.1.1): the user supplies unbiased example rows
    of the missing partition; confidence intervals extrapolate from them.

    [US-k] draws k·n uniform rows; [ST-k] stratifies by the partitions a
    PC scheme would use, drawing proportionally within strata. *)

val uniform :
  Pc_util.Rng.t -> Pc_data.Relation.t -> m:int -> Pc_data.Relation.t
(** [m] rows without replacement (clipped to the population). *)

type stratum = { rows : Pc_data.Relation.t; population : int }

val stratified :
  Pc_util.Rng.t ->
  Pc_data.Relation.t ->
  strata_of:(Pc_data.Relation.tuple -> int) ->
  m:int ->
  stratum list
(** Splits the population with [strata_of], then draws from each stratum
    proportionally to its size (at least one row from each non-empty
    stratum when the budget allows). *)

val strata_by_quantiles :
  Pc_data.Relation.t -> attr:string -> buckets:int -> Pc_data.Relation.tuple -> int
(** A stratification function: quantile buckets of a numeric attribute —
    the same partitioning Corr-PC uses. *)
