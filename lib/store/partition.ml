module I = Pc_interval.Interval
module Schema = Pc_data.Schema
module Relation = Pc_data.Relation
module Atom = Pc_predicate.Atom

type summary = {
  count : int;
  ranges : (string * I.t) list;
  categories : (string * string list) list;
}

type status = Loaded | Missing

type t = {
  id : string;
  status : status;
  summary : summary;
  rows : Relation.t option;
}

let summarize ~id rel =
  if Relation.is_empty rel then
    invalid_arg "Partition.summarize: empty partition";
  let schema = Relation.schema rel in
  let ranges =
    List.filter_map
      (fun (a : Schema.attr) ->
        match a.Schema.kind with
        | Schema.Numeric ->
            let lo, hi = Option.get (Relation.min_max rel a.Schema.name) in
            Some (a.Schema.name, I.closed lo hi)
        | Schema.Categorical -> None)
      (Schema.attrs schema)
  and categories =
    List.filter_map
      (fun (a : Schema.attr) ->
        match a.Schema.kind with
        | Schema.Categorical ->
            Some (a.Schema.name, Relation.distinct_strings rel a.Schema.name)
        | Schema.Numeric -> None)
      (Schema.attrs schema)
  in
  {
    id;
    status = Loaded;
    summary = { count = Relation.cardinality rel; ranges; categories };
    rows = Some rel;
  }

let mark_missing t = { t with status = Missing; rows = None }

let rows_exn t =
  match t.rows with
  | Some rel -> rel
  | None -> invalid_arg (Printf.sprintf "Partition.rows_exn: %s is missing" t.id)

let bounding_pred t =
  List.map (fun (a, iv) -> Atom.Num_range (a, iv)) t.summary.ranges
  @ List.map (fun (a, vs) -> Atom.Cat_in (a, vs)) t.summary.categories

let to_pc t =
  Pc_core.Pc.make ~name:t.id
    ~pred:(bounding_pred t)
    ~values:t.summary.ranges
    ~freq:(t.summary.count, t.summary.count)
    ()

let summary_holds t =
  match t.rows with
  | None -> true
  | Some rel -> Pc_core.Pc.holds rel (to_pc t)

let pp ppf t =
  Format.fprintf ppf "partition %s [%s] %d rows" t.id
    (match t.status with Loaded -> "loaded" | Missing -> "MISSING")
    t.summary.count
