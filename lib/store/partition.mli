(** A table partition with retained zone-map statistics.

    Analytical stores already keep per-partition metadata — row counts and
    per-column min/max ("zone maps", Parquet row-group stats). Those
    statistics are exactly a predicate-constraint: when a partition's rows
    are lost, its surviving zone map bounds what the lost rows could have
    been. This module is that observation made concrete. *)

type summary = {
  count : int;
  ranges : (string * Pc_interval.Interval.t) list;
      (** min/max per numeric column *)
  categories : (string * string list) list;
      (** distinct values per categorical column *)
}

type status = Loaded | Missing

type t = private {
  id : string;
  status : status;
  summary : summary;
  rows : Pc_data.Relation.t option;  (** [None] when missing *)
}

val summarize : id:string -> Pc_data.Relation.t -> t
(** A loaded partition with its zone map computed from the rows. Raises
    [Invalid_argument] on an empty relation (empty partitions carry no
    information and should simply not exist). *)

val mark_missing : t -> t
(** Drop the rows, keep the statistics — the partition failed to load. *)

val rows_exn : t -> Pc_data.Relation.t
(** Raises [Invalid_argument] on a missing partition. *)

val bounding_pred : t -> Pc_predicate.Pred.t
(** The zone map's region as a predicate (numeric ranges ∧ categorical
    memberships). *)

val to_pc : t -> Pc_core.Pc.t
(** The zone map as a predicate-constraint: the predicate is the
    partition's bounding box (numeric ranges ∧ categorical memberships),
    the value constraints its numeric ranges, the frequency exactly its
    row count. Any relation instance placing the lost rows back must
    satisfy it. *)

val summary_holds : t -> bool
(** For loaded partitions: the zone map is consistent with the rows
    (used to validate persistence round-trips). *)

val pp : Format.formatter -> t -> unit
