module Schema = Pc_data.Schema
module Relation = Pc_data.Relation

type t = { schema : Schema.t; parts : Partition.t list (* insertion order *) }

let create schema = { schema; parts = [] }

let find t id = List.find_opt (fun (p : Partition.t) -> p.Partition.id = id) t.parts

let add_partition t ~id rel =
  if not (Schema.equal (Relation.schema rel) t.schema) then
    invalid_arg "Store.add_partition: schema mismatch";
  if find t id <> None then
    invalid_arg (Printf.sprintf "Store.add_partition: duplicate id %s" id);
  { t with parts = t.parts @ [ Partition.summarize ~id rel ] }

let update t ~id f =
  match find t id with
  | None -> raise Not_found
  | Some _ ->
      {
        t with
        parts =
          List.map
            (fun (p : Partition.t) -> if p.Partition.id = id then f p else p)
            t.parts;
      }

let mark_missing t ~id = update t ~id Partition.mark_missing

let restore t ~id rel =
  update t ~id (fun p ->
      let replacement = Partition.summarize ~id rel in
      (* the arriving rows must be consistent with the retained zone map *)
      if not (Pc_core.Pc.holds rel (Partition.to_pc p)) then
        invalid_arg
          (Printf.sprintf
             "Store.restore: rows for %s violate the retained zone map" id);
      replacement)

let schema t = t.schema
let partitions t = t.parts

let loaded_rows t =
  List.fold_left
    (fun acc (p : Partition.t) ->
      match p.Partition.rows with
      | Some rel -> Relation.union acc rel
      | None -> acc)
    (Relation.create t.schema []) t.parts

let missing_parts t =
  List.filter (fun (p : Partition.t) -> p.Partition.status = Partition.Missing) t.parts

let missing_count t =
  List.fold_left
    (fun acc (p : Partition.t) -> acc + p.Partition.summary.Partition.count)
    0 (missing_parts t)

(* Under closure a predicate also *permits* rows in its region, so a
   user constraint conjoined as-is would extend where lost rows may live.
   Restricting each extra constraint to every missing partition's zone-map
   box keeps it a pure restriction. The frequency cap then applies per
   partition (conservative) and frequency lower bounds cannot be split
   soundly, so they are dropped — both can only loosen, never invalidate. *)
let missing_pcs ?(extra = []) t =
  let parts = missing_parts t in
  let zone_pcs = List.map Partition.to_pc parts in
  let restricted =
    List.concat_map
      (fun (e : Pc_core.Pc.t) ->
        List.map
          (fun (p : Partition.t) ->
            Pc_core.Pc.make
              ~name:(e.Pc_core.Pc.name ^ "@" ^ p.Partition.id)
              ~pred:(e.Pc_core.Pc.pred @ Partition.bounding_pred p)
              ~values:e.Pc_core.Pc.values
              ~freq:(0, e.Pc_core.Pc.freq_hi)
              ())
          parts)
      extra
  in
  Pc_core.Pc_set.make (zone_pcs @ restricted)

let query ?opts ?extra t q =
  let certain = loaded_rows t in
  match missing_parts t with
  | [] -> (
      (* fully loaded: the exact answer as a point range *)
      match Pc_query.Query.eval certain q with
      | Some v -> Pc_core.Bounds.Range (Pc_core.Range.point v)
      | None -> Pc_core.Bounds.Empty)
  | _ -> Pc_core.Bounds.bound_with_certain ?opts (missing_pcs ?extra t) ~certain q

let summaries_to_dsl t =
  String.concat "\n"
    (List.map (fun p -> Pc_parse.Pc_parser.to_dsl (Partition.to_pc p)) t.parts)
  ^ "\n"

let pp ppf t =
  Format.fprintf ppf "@[<v>store %a, %d partitions (%d missing)@," Schema.pp
    t.schema (List.length t.parts)
    (List.length (missing_parts t));
  List.iter (fun p -> Format.fprintf ppf "  %a@," Partition.pp p) t.parts;
  Format.fprintf ppf "@]"
