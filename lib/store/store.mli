(** A partitioned table that answers aggregate queries with hard result
    ranges even when some partitions failed to load — the paper's
    motivating scenario (§1) as a data structure.

    Every partition's zone map (count, per-column min/max, categorical
    memberships) is retained when the partition is added; losing the
    partition keeps the zone map. Queries evaluate exactly over the
    loaded rows, and the lost partitions contribute a predicate-constraint
    each, bounded by the §4 machinery. No user-written constraints are
    needed: the statistics the store already keeps are the constraints —
    though user constraints can be conjoined to tighten further. *)

type t

val create : Pc_data.Schema.t -> t
(** An empty store. *)

val add_partition : t -> id:string -> Pc_data.Relation.t -> t
(** Raises [Invalid_argument] on duplicate ids, schema mismatches, or an
    empty partition. *)

val mark_missing : t -> id:string -> t
(** Simulate / record a load failure. Raises [Not_found] on unknown id. *)

val restore : t -> id:string -> Pc_data.Relation.t -> t
(** The partition arrived after all; its rows must satisfy the retained
    zone map (checked — raises [Invalid_argument] otherwise). *)

val schema : t -> Pc_data.Schema.t
val partitions : t -> Partition.t list
val loaded_rows : t -> Pc_data.Relation.t
(** Union of the loaded partitions. *)

val missing_count : t -> int
(** Exact number of rows in missing partitions (zone maps store counts). *)

val missing_pcs : ?extra:Pc_core.Pc.t list -> t -> Pc_core.Pc_set.t
(** One constraint per missing partition, plus any user-supplied [extra]
    constraints about the lost rows. Extras are conjoined with each
    missing partition's zone-map box so they *restrict* without granting
    existence outside the lost regions; their frequency caps consequently
    apply per partition and their frequency lower bounds are dropped
    (both conservative). *)

val query :
  ?opts:Pc_core.Bounds.opts ->
  ?extra:Pc_core.Pc.t list ->
  t ->
  Pc_query.Query.t ->
  Pc_core.Bounds.answer
(** Exact over loaded partitions, hard range over missing ones. With no
    missing partitions the answer is the exact point range. *)

val summaries_to_dsl : t -> string
(** All zone maps as a PC-DSL constraint file (one constraint per
    partition, loaded or not) — the durable metadata a deployment would
    persist next to the data. *)

val pp : Format.formatter -> t -> unit
