module Relation = Pc_data.Relation
module Batch = Pc_data.Batch
module Schema = Pc_data.Schema
module Pred = Pc_predicate.Pred
module Fdd = Pc_predicate.Fdd
module Pc = Pc_core.Pc
module Pc_set = Pc_core.Pc_set

type info = {
  batch_id : int;
  version : int;
  rows : int;
  touched : int list;
  delta : int array;
}

type snapshot = {
  version : int;
  certain : Relation.t option;
  consumed : int array;
  residual : Pc_set.t;
}

type entry = { id : int; batch : Batch.t; delta : int array }

type state = {
  snap : snapshot;
  entries : entry list;  (* arrival order, oldest first *)
}

type t = {
  base_set : Pc_set.t;
  base_certain : Relation.t option;
  fdd : Fdd.compiled option;
  cell : state Atomic.t;
  mu : Mutex.t;  (* serializes writers; readers go through [cell] only *)
  mutable next_id : int;  (* guarded by [mu] *)
}

(* The residual constraint system after consuming [c] rows of each PC's
   missing-row budget: ku' = (ku − c)⁺ and kl' = (kl − c)⁺ clamped into
   [0, ku']. kl ≤ ku gives kl − c ≤ ku − c, so the clamp only fires when
   consumption exceeded ku (certain data outran the constraint estimate
   — the residual stays well-formed and conservative). *)
let residual_of set consumed =
  Pc_set.make
    (List.mapi
       (fun j (pc : Pc.t) ->
         let c = consumed.(j) in
         if c = 0 then pc
         else begin
           let ku = max 0 (pc.Pc.freq_hi - c) in
           let kl = min ku (max 0 (pc.Pc.freq_lo - c)) in
           Pc.make ~name:pc.Pc.name ~pred:pc.Pc.pred ~values:pc.Pc.values
             ~freq:(kl, ku) ()
         end)
       (Pc_set.pcs set))

let create ?certain ?fdd base_set =
  let n = Pc_set.size base_set in
  (match fdd with
  | Some f when Fdd.n_preds f <> n ->
      invalid_arg "Stream.create: fdd size disagrees with the PC set"
  | _ -> ());
  let consumed = Array.make n 0 in
  {
    base_set;
    base_certain = certain;
    fdd;
    cell =
      Atomic.make
        {
          snap = { version = 0; certain; consumed; residual = base_set };
          entries = [];
        };
    mu = Mutex.create ();
    next_id = 0;
  }

let base_set t = t.base_set
let snapshot t = (Atomic.get t.cell).snap

let schema t =
  match (Atomic.get t.cell).snap.certain with
  | Some r -> Some (Relation.schema r)
  | None -> None

let batches t =
  List.map (fun e -> (e.id, Batch.rows e.batch)) (Atomic.get t.cell).entries

let find_batch t ~batch_id =
  List.find_opt
    (fun e -> e.id = batch_id)
    (Atomic.get t.cell).entries
  |> Option.map (fun e -> e.batch)

(* Active set of one certain row: the FDD walk when a diagram exists,
   otherwise naive per-PC evaluation. The two agree (qcheck-pinned);
   the naive path keeps streams usable under non-FDD strategies. *)
let route t schema row =
  match t.fdd with
  | Some f -> Fdd.route f schema row
  | None ->
      let acc = ref [] in
      List.iteri
        (fun j (pc : Pc.t) ->
          if Pred.eval schema pc.Pc.pred row then acc := j :: !acc)
        (Pc_set.pcs t.base_set);
      List.rev !acc

let batch_delta t batch =
  let n = Pc_set.size t.base_set in
  let delta = Array.make n 0 in
  let schema = Batch.schema batch in
  Batch.iter
    (fun row ->
      List.iter (fun j -> delta.(j) <- delta.(j) + 1) (route t schema row))
    batch;
  delta

let touched_of delta =
  let acc = ref [] in
  Array.iteri (fun j d -> if d <> 0 then acc := j :: !acc) delta;
  List.rev !acc

let with_writer t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let make_snap t st ~certain ~consumed =
  {
    version = st.snap.version + 1;
    certain;
    consumed;
    residual = residual_of t.base_set consumed;
  }

(* The publish seam: [before_publish] observes the batch's [info] while
   the writer mutex is held and the old snapshot is still the visible
   one. The server hangs cache invalidation here, so by the time the
   new version is readable no cached reply the batch could have changed
   still exists — and the cache's version fence is already advanced
   against in-flight replies pinned to the old snapshot. The callback
   must not raise: a raise aborts the publish (the batch is lost). *)
let publish t ~before_publish ~info ~snap ~entries =
  before_publish info;
  Atomic.set t.cell { snap; entries };
  Ok (info, snap)

let append ?(before_publish = ignore) t batch =
  with_writer t (fun () ->
      let st = Atomic.get t.cell in
      let schema_ok =
        match st.snap.certain with
        | None -> Ok ()
        | Some r ->
            if Schema.equal (Relation.schema r) (Batch.schema batch) then Ok ()
            else Error "append: batch schema disagrees with the certain schema"
      in
      match schema_ok with
      | Error _ as e -> e
      | Ok () -> (
          match batch_delta t batch with
          | exception Not_found ->
              Error "append: a routed attribute is missing from the batch schema"
          | exception Invalid_argument msg -> Error ("append: " ^ msg)
          | delta ->
              let consumed =
                Array.mapi (fun j c -> c + delta.(j)) st.snap.consumed
              in
              let rel = Batch.to_relation batch in
              let certain =
                match st.snap.certain with
                | None -> Some rel
                | Some r -> Some (Relation.union r rel)
              in
              let id = t.next_id in
              t.next_id <- id + 1;
              let entries = st.entries @ [ { id; batch; delta } ] in
              let snap = make_snap t st ~certain ~consumed in
              let info =
                {
                  batch_id = id;
                  version = snap.version;
                  rows = Batch.rows batch;
                  touched = touched_of delta;
                  delta;
                }
              in
              publish t ~before_publish ~info ~snap ~entries))

let retract ?(before_publish = ignore) t ~batch_id =
  with_writer t (fun () ->
      let st = Atomic.get t.cell in
      match List.find_opt (fun e -> e.id = batch_id) st.entries with
      | None -> Error (Printf.sprintf "retract: no batch %d" batch_id)
      | Some e ->
          let entries = List.filter (fun e' -> e'.id <> batch_id) st.entries in
          let consumed =
            Array.mapi (fun j c -> max 0 (c - e.delta.(j))) st.snap.consumed
          in
          (* rebuild the certain side from the base load plus the
             surviving batches, in arrival order *)
          let certain =
            List.fold_left
              (fun acc e' ->
                let rel = Batch.to_relation e'.batch in
                match acc with
                | None -> Some rel
                | Some r -> Some (Relation.union r rel))
              t.base_certain entries
          in
          let snap = make_snap t st ~certain ~consumed in
          let info =
            {
              batch_id;
              version = snap.version;
              rows = Batch.rows e.batch;
              touched = touched_of e.delta;
              delta = Array.map (fun d -> -d) e.delta;
            }
          in
          publish t ~before_publish ~info ~snap ~entries)
