(** Streaming ingestion with snapshot isolation.

    A stream owns the evolving certain partition of one dataset and the
    per-PC consumption it implies. Writers ([append]/[retract]) are
    serialized by an internal mutex; readers never lock — every query
    pins an immutable {!snapshot} obtained from a single [Atomic.get],
    and a batch publishes a fresh snapshot with a single [Atomic.set].
    A snapshot is internally consistent by construction: its certain
    relation, consumption vector, and residual PC set were derived
    together before the swap, so a reader can never observe a batch's
    rows on the certain side without its budget consumption on the
    missing side (or vice versa).

    Appending a batch routes every row through the dataset's
    precompiled FDD (or, without a diagram, naive per-PC predicate
    evaluation — the two agree, qcheck-pinned in [test_fdd]): the row's
    active set names the PCs whose missing-row budget it consumes. The
    {e residual} PC set replaces each frequency range [kl, ku] with
    [(kl − c)⁺ ∧ ku', ku' = (ku − c)⁺] for consumption [c] — the
    constraint system the full bound path solves after ingestion, and
    provably the same system {!Pc_core.Incremental} maintains under
    pure bound changes.

    Retraction is by batch id and restores the budget: consumption is
    subtracted and the certain relation rebuilt from the base load plus
    the surviving batches (arrival order). *)

type info = {
  batch_id : int;
  version : int;  (** the version the operation published *)
  rows : int;
  touched : int list;  (** PC indices whose consumption changed *)
  delta : int array;  (** per-PC consumption delta of the batch *)
}

type snapshot = {
  version : int;
  certain : Pc_data.Relation.t option;
      (** base CSV plus appended batches; [None] before any certain row
          exists *)
  consumed : int array;  (** total per-PC consumption, length = set size *)
  residual : Pc_core.Pc_set.t;  (** base set minus consumption *)
}

type t

val create :
  ?certain:Pc_data.Relation.t ->
  ?fdd:Pc_predicate.Fdd.compiled ->
  Pc_core.Pc_set.t ->
  t
(** A stream at version 0 over the base PC set. The base [certain]
    relation (the load-time CSV) is {e not} routed: the paper's
    protocol treats it as the ground truth the constraints were
    estimated against, while appended batches arrive {e after} the
    constraint set was fixed and therefore consume missing-row budget.
    [fdd] must be compiled from exactly the base set's predicates. *)

val base_set : t -> Pc_core.Pc_set.t

val schema : t -> Pc_data.Schema.t option
(** Schema of the certain side, once known (from the base CSV or the
    first appended batch). *)

val snapshot : t -> snapshot
(** Lock-free; the returned value is immutable and never changes under
    the caller. *)

val append :
  ?before_publish:(info -> unit) ->
  t ->
  Pc_data.Batch.t ->
  (info * snapshot, string) result
(** Route, consume, and publish. [Error] (and no published change) when
    the batch schema disagrees with the established certain schema or a
    routed attribute is missing/mistyped.

    [before_publish] runs with the batch's [info] inside the writer
    critical section, after routing but {e before} the new snapshot
    becomes visible — the seam where the server invalidates its bound
    cache, so no reader at the new version can hit a reply the batch
    obsoleted. It must not raise (a raise aborts the publish). *)

val retract :
  ?before_publish:(info -> unit) ->
  t ->
  batch_id:int ->
  (info * snapshot, string) result
(** Reverse one appended batch; [Error] on an unknown id. The returned
    [info] carries the (negative) consumption delta and the rows of the
    retracted batch in [rows]. [before_publish] as in {!append}. *)

val batches : t -> (int * int) list
(** Live (batch id, row count) pairs, oldest first. *)

val find_batch : t -> batch_id:int -> Pc_data.Batch.t option
(** The rows of a live batch (e.g. for cache invalidation around a
    retraction). *)
