module V = Pc_data.Value

let schema =
  Pc_data.Schema.of_names
    [
      ("port", Pc_data.Schema.Numeric);
      ("date", Pc_data.Schema.Numeric);
      ("value", Pc_data.Schema.Numeric);
      ("measure", Pc_data.Schema.Categorical);
    ]

let measures = [| "Personal Vehicles"; "Trucks"; "Pedestrians"; "Buses" |]

let generate ?(ports = 40) ?(days = 365) rng ~rows =
  let port_table = Pc_util.Rng.zipf_table ~n:ports ~s:1.4 in
  (* port popularity scale: rank r gets volume ~ 1/r^1.4 *)
  let port_scale =
    Array.init ports (fun i -> 50_000. /. (float_of_int (i + 1) ** 1.4))
  in
  let make_row _ =
    let port = Pc_util.Rng.zipf_sample rng port_table - 1 in
    let date = float_of_int (Pc_util.Rng.int rng days) in
    let season = 1. +. (0.3 *. sin (date /. 365. *. 2. *. Float.pi)) in
    let measure_idx = Pc_util.Rng.int rng (Array.length measures) in
    let measure_scale = [| 1.0; 0.25; 0.15; 0.03 |].(measure_idx) in
    let noise = Pc_util.Rng.uniform rng ~lo:0.6 ~hi:1.4 in
    let value =
      Float.round (port_scale.(port) *. season *. measure_scale *. noise)
    in
    [|
      V.Num (float_of_int port);
      V.Num date;
      V.Num value;
      V.Str measures.(measure_idx);
    |]
  in
  Pc_data.Relation.create schema (List.init rows make_row)
