(** Synthetic stand-in for the Bureau of Transportation Statistics border
    crossing dataset of §6.6.2: per-port, per-date summary counts. The
    skew the experiment relies on comes from Zipfian port popularity (a
    few huge ports, many tiny ones) and a mild seasonal cycle.

    Schema: port, date (day index), value (crossings) — numeric; measure
    (vehicle type) — categorical. *)

val schema : Pc_data.Schema.t

val generate : ?ports:int -> ?days:int -> Pc_util.Rng.t -> rows:int -> Pc_data.Relation.t
(** [ports] defaults to 40, [days] to 365. *)
