module Relation = Pc_data.Relation
module V = Pc_data.Value

let edges_schema a b =
  Pc_data.Schema.of_names [ (a, Pc_data.Schema.Numeric); (b, Pc_data.Schema.Numeric) ]

let random_edges rng ~a ~b ~n ~vertices =
  let rows =
    List.init n (fun _ ->
        [|
          V.Num (float_of_int (Pc_util.Rng.int rng vertices));
          V.Num (float_of_int (Pc_util.Rng.int rng vertices));
        |])
  in
  Relation.create (edges_schema a b) rows

let pairs rel =
  let n = Relation.cardinality rel in
  Array.init n (fun i ->
      ( int_of_float (Pc_data.Value.as_num (Relation.get rel i).(0)),
        int_of_float (Pc_data.Value.as_num (Relation.get rel i).(1)) ))

let triangle_count ~r ~s ~t =
  (* index S by first column, T by (first, second) pair count *)
  let s_by_b : (int, int list ref) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (b, c) ->
      match Hashtbl.find_opt s_by_b b with
      | Some cell -> cell := c :: !cell
      | None -> Hashtbl.add s_by_b b (ref [ c ]))
    (pairs s);
  let t_count : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (c, a) ->
      let key = (c, a) in
      Hashtbl.replace t_count key (1 + Option.value (Hashtbl.find_opt t_count key) ~default:0))
    (pairs t);
  Array.fold_left
    (fun acc (a, b) ->
      match Hashtbl.find_opt s_by_b b with
      | None -> acc
      | Some cs ->
          List.fold_left
            (fun acc c ->
              acc + Option.value (Hashtbl.find_opt t_count (c, a)) ~default:0)
            acc !cs)
    0 (pairs r)

let chain_join_count rels =
  match rels with
  | [] -> 0
  | first :: rest ->
      (* paths(v) = number of partial joins ending at value v *)
      let paths : (int, int) Hashtbl.t = Hashtbl.create 256 in
      Array.iter
        (fun (_, b) ->
          Hashtbl.replace paths b (1 + Option.value (Hashtbl.find_opt paths b) ~default:0))
        (pairs first);
      let step acc rel =
        let next : (int, int) Hashtbl.t = Hashtbl.create 256 in
        Array.iter
          (fun (a, b) ->
            match Hashtbl.find_opt acc a with
            | None -> ()
            | Some k ->
                Hashtbl.replace next b (k + Option.value (Hashtbl.find_opt next b) ~default:0))
          (pairs rel);
        next
      in
      let final = List.fold_left step paths rest in
      Hashtbl.fold (fun _ k acc -> acc + k) final 0
