(** Random edge tables and exact join-size computation for the join
    experiments (§6.6.3): the randomly populated [edges] tables of the
    triangle-counting comparison and the K-row relations of the acyclic
    chain join. Exact counts let tests verify that every bound dominates
    the truth. *)

val edges_schema : string -> string -> Pc_data.Schema.t
(** Two numeric attributes. *)

val random_edges :
  Pc_util.Rng.t -> a:string -> b:string -> n:int -> vertices:int -> Pc_data.Relation.t
(** [n] directed edges drawn uniformly (with possible repeats) over
    [vertices]² . *)

val triangle_count :
  r:Pc_data.Relation.t -> s:Pc_data.Relation.t -> t:Pc_data.Relation.t -> int
(** |R(a,b) ⋈ S(b,c) ⋈ T(c,a)| by hash join. The relations' first
    attribute joins with the previous relation's second, as in the paper's
    query. *)

val chain_join_count : Pc_data.Relation.t list -> int
(** |R1 ⋈ R2 ⋈ … ⋈ Rk| for binary relations joined on
    (second attribute = next first attribute), by dynamic programming —
    linear in the total edge count. *)
