module V = Pc_data.Value

let schema =
  Pc_data.Schema.of_names
    [
      ("latitude", Pc_data.Schema.Numeric);
      ("longitude", Pc_data.Schema.Numeric);
      ("price", Pc_data.Schema.Numeric);
      ("reviews", Pc_data.Schema.Numeric);
      ("room_type", Pc_data.Schema.Categorical);
    ]

let room_types = [| "Entire home/apt"; "Private room"; "Shared room" |]

let generate ?(clusters = 5) rng ~rows =
  (* Borough-like blobs over the NYC bounding box. *)
  let centers =
    Array.init clusters (fun _ ->
        ( Pc_util.Rng.uniform rng ~lo:40.55 ~hi:40.9,
          Pc_util.Rng.uniform rng ~lo:(-74.15) ~hi:(-73.75),
          (* price level: one expensive "Manhattan" cluster, others cheaper *)
          Pc_util.Rng.uniform rng ~lo:3.8 ~hi:5.3 ))
  in
  let make_row _ =
    let c = Pc_util.Rng.int rng clusters in
    let clat, clon, price_mu = centers.(c) in
    let lat = clat +. Pc_util.Rng.gaussian rng ~mu:0. ~sigma:0.03 in
    let lon = clon +. Pc_util.Rng.gaussian rng ~mu:0. ~sigma:0.03 in
    let price = Float.min 10_000. (Pc_util.Rng.lognormal rng ~mu:price_mu ~sigma:0.7) in
    let reviews =
      Float.of_int (Pc_util.Rng.zipf rng ~n:300 ~s:1.2) -. 1.
    in
    let room = room_types.(Pc_util.Rng.int rng (Array.length room_types)) in
    [| V.Num lat; V.Num lon; V.Num price; V.Num reviews; V.Str room |]
  in
  Pc_data.Relation.create schema (List.init rows make_row)
