(** Synthetic stand-in for the Airbnb NYC 2019 listings dataset of §6.6.1.
    Reproduces the features the experiment depends on: spatial clustering
    of listings into borough-like blobs, log-normally distributed (highly
    skewed) prices whose level depends on location, and a skewed review
    count.

    Schema: latitude, longitude, price, reviews (numeric); room_type
    (categorical). *)

val schema : Pc_data.Schema.t

val generate : ?clusters:int -> Pc_util.Rng.t -> rows:int -> Pc_data.Relation.t
(** [clusters] defaults to 5 (the boroughs). *)
