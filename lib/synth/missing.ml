module Relation = Pc_data.Relation

type split = { observed : Relation.t; missing : Relation.t }

let check_fraction f =
  if f < 0. || f > 1. then invalid_arg "Missing: fraction outside [0, 1]"

let random rng rel ~fraction =
  check_fraction fraction;
  let n = Relation.cardinality rel in
  let k = int_of_float (Float.round (fraction *. float_of_int n)) in
  let idx = Array.init n Fun.id in
  Pc_util.Rng.shuffle rng idx;
  let missing_set = Hashtbl.create k in
  Array.iteri (fun pos i -> if pos < k then Hashtbl.add missing_set i ()) idx;
  let pos = ref (-1) in
  let missing, observed =
    Relation.partition
      (fun _ ->
        incr pos;
        Hashtbl.mem missing_set !pos)
      rel
  in
  { observed; missing }

let top_values rel ~attr ~fraction =
  check_fraction fraction;
  let n = Relation.cardinality rel in
  let k = int_of_float (Float.round (fraction *. float_of_int n)) in
  if k = 0 then { observed = rel; missing = Relation.take 0 rel }
  else begin
    let xs = Relation.column rel attr in
    let sorted = Array.copy xs in
    Array.sort (fun a b -> Float.compare b a) sorted;
    let threshold = sorted.(k - 1) in
    (* count ties at the threshold so exactly k rows go missing *)
    let above = Array.fold_left (fun acc x -> if x > threshold then acc + 1 else acc) 0 xs in
    let ties_needed = ref (k - above) in
    let idx = Pc_data.Schema.index (Relation.schema rel) attr in
    let missing, observed =
      Relation.partition
        (fun row ->
          let v = Pc_data.Value.as_num row.(idx) in
          if v > threshold then true
          else if v = threshold && !ties_needed > 0 then begin
            decr ties_needed;
            true
          end
          else false)
        rel
    in
    { observed; missing }
  end

let by_predicate rel pred =
  let schema = Relation.schema rel in
  let missing, observed =
    Relation.partition (fun row -> Pc_predicate.Pred.eval schema pred row) rel
  in
  { observed; missing }
