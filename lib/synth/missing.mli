(** Missing-data mechanisms: split a relation into the certain partition
    R* and the missing partition R?.

    The paper's headline experiments remove rows *correlated with the
    aggregate* ("removing those rows with maximum values of the light
    attribute", §6.2) — the regime where extrapolation and sampling break
    down. Random removal and predicate-defined losses (e.g. a failed
    partition, §1's example) are also provided. *)

type split = { observed : Pc_data.Relation.t; missing : Pc_data.Relation.t }

val random : Pc_util.Rng.t -> Pc_data.Relation.t -> fraction:float -> split
(** Missing rows chosen uniformly. [fraction] in [0, 1]. *)

val top_values : Pc_data.Relation.t -> attr:string -> fraction:float -> split
(** The [fraction] of rows with the largest [attr] values go missing —
    maximally adversarial for extrapolation. *)

val by_predicate : Pc_data.Relation.t -> Pc_predicate.Pred.t -> split
(** Rows matching the predicate go missing (lost partitions, outage
    windows). *)
