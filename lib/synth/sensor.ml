module V = Pc_data.Value

let schema =
  Pc_data.Schema.of_names
    [
      ("device", Pc_data.Schema.Numeric);
      ("time", Pc_data.Schema.Numeric);
      ("light", Pc_data.Schema.Numeric);
      ("temperature", Pc_data.Schema.Numeric);
      ("humidity", Pc_data.Schema.Numeric);
      ("voltage", Pc_data.Schema.Numeric);
    ]

(* Lab lights follow a day cycle; windows add a noon bump; some devices
   sit near windows (higher base and amplitude). *)
let day_pattern hour_of_day =
  let x = (hour_of_day -. 13.) /. 24. *. 2. *. Float.pi in
  Float.max 0. (0.5 +. (0.5 *. cos x))

let generate ?(devices = 54) ?(days = 14) rng ~rows =
  let device_base = Array.init devices (fun _ -> Pc_util.Rng.uniform rng ~lo:20. ~hi:120.) in
  let device_amp = Array.init devices (fun _ -> Pc_util.Rng.uniform rng ~lo:100. ~hi:600.) in
  let horizon = float_of_int (days * 24) in
  let make_row _ =
    let device = Pc_util.Rng.int rng devices in
    let time = Pc_util.Rng.uniform rng ~lo:0. ~hi:horizon in
    let hour = Float.rem time 24. in
    let burst =
      (* direct-sunlight spikes around midday: heavy-tailed but
         localized in time, so time-correlated summaries can capture
         them *)
      if hour >= 11.5 && hour <= 14.5 && Pc_util.Rng.float rng 1. < 0.25 then
        Pc_util.Rng.pareto rng ~scale:300. ~shape:2.2
      else 0.
    in
    let light =
      device_base.(device)
      +. (device_amp.(device) *. day_pattern hour)
      +. Float.abs (Pc_util.Rng.gaussian rng ~mu:0. ~sigma:15.)
      +. burst
    in
    let temperature =
      18. +. (6. *. day_pattern hour) +. Pc_util.Rng.gaussian rng ~mu:0. ~sigma:1.
    in
    let humidity =
      45. -. (8. *. day_pattern hour) +. Pc_util.Rng.gaussian rng ~mu:0. ~sigma:3.
    in
    let voltage = 2.3 +. Pc_util.Rng.float rng 0.4 in
    [|
      V.Num (float_of_int device);
      V.Num time;
      V.Num (Float.min light 5_000.);
      V.Num temperature;
      V.Num humidity;
      V.Num voltage;
    |]
  in
  Pc_data.Relation.create schema (List.init rows make_row)
