(** Synthetic stand-in for the Intel Berkeley wireless sensor dataset
    [Bodik et al. 2004] used in §6.2 (the original 3M-row trace is not
    shipped in this container). Reproduces the properties the experiments
    rely on: per-device baselines, strong daily periodicity of [light],
    heavy-tailed bursts (the extreme values that break sampling-based
    confidence intervals), and correlation of [light] with [device] and
    [time].

    Schema: device, time (hours), light, temperature, humidity, voltage —
    all numeric. *)

val schema : Pc_data.Schema.t

val generate :
  ?devices:int -> ?days:int -> Pc_util.Rng.t -> rows:int -> Pc_data.Relation.t
(** [devices] defaults to 54 (as deployed in the lab), [days] to 14. *)
