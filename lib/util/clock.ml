external now_ns : unit -> (int64[@unboxed])
  = "pc_clock_now_ns_bytecode" "pc_clock_now_ns_native"
[@@noalloc]

let now () = Int64.to_float (now_ns ()) *. 1e-9

let elapsed_s ~since = Float.max 0. (now () -. since)
