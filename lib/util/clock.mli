(** Monotonic wall-clock time.

    Every elapsed-time and deadline measurement in the library goes
    through this module. [Sys.time] is CPU time — under multiple domains
    it advances once per running core and wildly inflates wall-clock
    readings — and [Unix.gettimeofday] is subject to NTP steps, so
    neither is safe for deadlines. This wraps the OS monotonic clock
    ([clock_gettime(CLOCK_MONOTONIC)]), which only moves forward and is
    unaffected by wall-time adjustments. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. The origin is unspecified (boot
    time on Linux): only differences are meaningful. *)

val now : unit -> float
(** Monotonic seconds as a float; same origin caveat as {!now_ns}. *)

val elapsed_s : since:float -> float
(** [elapsed_s ~since:(now ())] — seconds elapsed, never negative. *)
