#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

static int64_t pc_clock_monotonic_ns(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim int64_t pc_clock_now_ns_native(value unit)
{
  (void)unit;
  return pc_clock_monotonic_ns();
}

CAMLprim value pc_clock_now_ns_bytecode(value unit)
{
  (void)unit;
  return caml_copy_int64(pc_clock_monotonic_ns());
}
