let eps = 1e-9

let approx_eq ?(eps = eps) a b =
  let diff = Float.abs (a -. b) in
  diff <= eps || diff <= eps *. Float.max (Float.abs a) (Float.abs b)

let leq ?(eps = eps) a b = a <= b +. eps
let geq ?(eps = eps) a b = a >= b -. eps
let lt ?(eps = eps) a b = a < b -. eps
let gt ?(eps = eps) a b = a > b +. eps
let is_zero ?eps x = approx_eq ?eps x 0.
let is_integer ?(eps = eps) x = Float.abs (x -. Float.round x) <= eps

let round_to_int x =
  if not (Float.is_finite x) then
    invalid_arg "Float_eps.round_to_int: non-finite";
  let r = Float.round x in
  if Float.abs r > float_of_int max_int then
    invalid_arg "Float_eps.round_to_int: out of int range";
  int_of_float r

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x
