(** Floating-point comparisons with explicit tolerances.

    The LP/MILP stack and the bound computations work in floating point.
    All tolerance-sensitive comparisons go through this module so that the
    tolerance policy is defined in exactly one place. *)

val eps : float
(** Default absolute tolerance, [1e-9]. *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] is true when [a] and [b] differ by at most [eps]
    absolutely, or relatively for large magnitudes. *)

val leq : ?eps:float -> float -> float -> bool
(** [leq a b] is [a <= b + eps] (tolerant less-or-equal). *)

val geq : ?eps:float -> float -> float -> bool
(** [geq a b] is [a >= b - eps]. *)

val lt : ?eps:float -> float -> float -> bool
(** Strict less-than with tolerance: [a < b - eps]. *)

val gt : ?eps:float -> float -> float -> bool
(** Strict greater-than with tolerance: [a > b + eps]. *)

val is_zero : ?eps:float -> float -> bool
(** [is_zero x] is [approx_eq x 0.]. *)

val is_integer : ?eps:float -> float -> bool
(** True when [x] is within [eps] of its nearest integer. *)

val round_to_int : float -> int
(** Nearest integer as [int]. Raises [Invalid_argument] on non-finite
    input or magnitude beyond [max_int]. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to [lo, hi]. Requires [lo <= hi]. *)
