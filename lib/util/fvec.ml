type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  data : ba;
  pat : int array;  (* touched indices, first [npat] live *)
  mutable npat : int;
  mark : Bytes.t;  (* one byte per index: '\001' iff in [pat] *)
}

let create n =
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill data 0.;
  { data; pat = Array.make (Stdlib.max 1 n) 0; npat = 0; mark = Bytes.make (Stdlib.max 1 n) '\000' }

let length t = Bigarray.Array1.dim t.data

let get t i = Bigarray.Array1.get t.data i
let uget t i = Bigarray.Array1.unsafe_get t.data i

let mark t i =
  if Bytes.unsafe_get t.mark i = '\000' then begin
    Bytes.unsafe_set t.mark i '\001';
    Array.unsafe_set t.pat t.npat i;
    t.npat <- t.npat + 1
  end

let set t i v =
  Bigarray.Array1.set t.data i v;
  mark t i

let uset t i v =
  Bigarray.Array1.unsafe_set t.data i v;
  mark t i

let add t i v =
  Bigarray.Array1.unsafe_set t.data i (Bigarray.Array1.unsafe_get t.data i +. v);
  mark t i

let clear t =
  for k = 0 to t.npat - 1 do
    let i = Array.unsafe_get t.pat k in
    Bigarray.Array1.unsafe_set t.data i 0.;
    Bytes.unsafe_set t.mark i '\000'
  done;
  t.npat <- 0

let fill_all t v = Bigarray.Array1.fill t.data v

let pattern_size t = t.npat

let iter_nz t f =
  for k = 0 to t.npat - 1 do
    let i = Array.unsafe_get t.pat k in
    f i (Bigarray.Array1.unsafe_get t.data i)
  done

let fold_nz t ~init ~f =
  let acc = ref init in
  for k = 0 to t.npat - 1 do
    let i = Array.unsafe_get t.pat k in
    acc := f !acc i (Bigarray.Array1.unsafe_get t.data i)
  done;
  !acc

let dot_sparse t ~idx ~vals ~lo ~hi =
  let acc = ref 0. in
  for k = lo to hi - 1 do
    acc :=
      !acc
      +. Array.unsafe_get vals k
         *. Bigarray.Array1.unsafe_get t.data (Array.unsafe_get idx k)
  done;
  !acc

let scatter t ~idx ~vals ~lo ~hi =
  for k = lo to hi - 1 do
    add t (Array.unsafe_get idx k) (Array.unsafe_get vals k)
  done
