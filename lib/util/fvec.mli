(** Bigarray-backed dense float work vectors with sparse-pattern tracking.

    The revised simplex ({!Pc_lp.Simplex}) solves triangular/eta systems
    into dense length-[m] scratch vectors whose nonzero support is
    usually a small fraction of [m]. This module keeps the dense array in
    an unboxed [Bigarray.Array1] (no per-element boxing, contiguous C
    layout) and tracks the set of touched indices beside it, so

    - scatter / FTRAN / ratio-test passes iterate only the support, and
    - {!clear} resets in O(touched), not O(m).

    Pattern tracking is write-based: an index counts as touched once it
    has been written, even if cancellation later leaves an exact [0.]
    there. Iterating such an entry is harmless for every kernel use
    (multiplying by zero), so no cleanup pass is spent on it.

    The [u*] accessors skip bounds checks; callers own index validity.
    None of this module is thread-safe — one vector per solver state. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of length [n] with empty pattern. *)

val length : t -> int

val get : t -> int -> float
val uget : t -> int -> float

val set : t -> int -> float -> unit
(** Write and mark the index as touched. *)

val uset : t -> int -> float -> unit
(** Unchecked {!set}; still marks. *)

val add : t -> int -> float -> unit
(** [add t i v] is [set t i (get t i +. v)] in one marked write. *)

val clear : t -> unit
(** Zero every touched entry and empty the pattern — O(touched). *)

val fill_all : t -> float -> unit
(** Dense fill of every entry, marking nothing: for uses that treat the
    vector as plain dense storage (e.g. the BTRAN pricing vector). Pair
    with {!fill_all} [t 0.] to reset, not {!clear}. *)

val pattern_size : t -> int

val iter_nz : t -> (int -> float -> unit) -> unit
(** Iterate the touched entries (index, value), in touch order. Entries
    cancelled to exact [0.] may be included. *)

val fold_nz : t -> init:'a -> f:('a -> int -> float -> 'a) -> 'a

val dot_sparse : t -> idx:int array -> vals:float array -> lo:int -> hi:int -> float
(** [dot_sparse t ~idx ~vals ~lo ~hi] is [Σ vals.(k) *. t.(idx.(k))] for
    [k] in [[lo, hi)]: one sparse-column · dense-vector kernel, the inner
    loop of pricing and of BTRAN row dots. Unchecked indices. *)

val scatter : t -> idx:int array -> vals:float array -> lo:int -> hi:int -> unit
(** Add a sparse column into the vector, marking its indices. *)
