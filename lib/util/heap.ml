type 'a entry = { prio : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }
let is_empty t = t.len = 0
let size t = t.len

let grow t entry =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = max 8 (2 * cap) in
    let data = Array.make ncap entry in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.data.(parent).prio < t.data.(i).prio then begin
      swap t parent i;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.len && t.data.(l).prio > t.data.(!largest).prio then largest := l;
  if r < t.len && t.data.(r).prio > t.data.(!largest).prio then largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let push t prio value =
  let entry = { prio; value } in
  grow t entry;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let peek_priority t = if t.len = 0 then None else Some t.data.(0).prio
