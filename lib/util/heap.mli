(** Mutable binary max-heap keyed by float priority. Used by the MILP
    branch-and-bound for best-bound-first node selection. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Highest-priority element. *)

val peek_priority : 'a t -> float option
