type t = Random.State.t

let create seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5bd1e995 |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; 0x85ebca6b |]

let int t n = Random.State.int t n
let float t x = Random.State.float t x

let uniform t ~lo ~hi =
  assert (lo <= hi);
  if lo = hi then lo else lo +. Random.State.float t (hi -. lo)

let bool t = Random.State.bool t

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = Random.State.float t 1. in
    if u1 <= 0. then draw ()
    else begin
      let u2 = Random.State.float t 1. in
      mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))
    end
  in
  draw ()

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate <= 0";
  let rec draw () =
    let u = Random.State.float t 1. in
    if u <= 0. then draw () else -.log u /. rate
  in
  draw ()

let pareto t ~scale ~shape =
  if scale <= 0. || shape <= 0. then invalid_arg "Rng.pareto: non-positive";
  let rec draw () =
    let u = Random.State.float t 1. in
    if u <= 0. then draw () else scale /. (u ** (1. /. shape))
  in
  draw ()

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let zipf_table ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf_table: n <= 0";
  let weights = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cum.(i) <- !acc
  done;
  cum.(n - 1) <- 1.;
  cum

let zipf_sample t table =
  let u = Random.State.float t 1. in
  (* first index whose cumulative probability covers u *)
  let lo = ref 0 and hi = ref (Array.length table - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if table.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo + 1

let zipf t ~n ~s = zipf_sample t (zipf_table ~n ~s)

let shuffle t xs =
  let n = Array.length xs in
  for i = n - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done

let sample_without_replacement t k xs =
  let n = Array.length xs in
  let k = min k n in
  if k = 0 then [||]
  else begin
    let idx = Array.init n (fun i -> i) in
    (* partial Fisher–Yates: only the first k positions need shuffling *)
    for i = 0 to k - 1 do
      let j = i + Random.State.int t (n - i) in
      let tmp = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- tmp
    done;
    Array.init k (fun i -> xs.(idx.(i)))
  end

let choose t xs =
  if Array.length xs = 0 then invalid_arg "Rng.choose: empty";
  xs.(Random.State.int t (Array.length xs))
