(** Seeded pseudo-random number generation.

    Every randomized component of the library threads an explicit [Rng.t]
    so that all experiments are reproducible from a single integer seed.
    Wraps [Random.State] and adds the distributions the generators and
    baselines need. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). Requires [lo <= hi]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal sample via Box–Muller. *)

val exponential : t -> rate:float -> float
(** Exponential with the given rate. Requires [rate > 0]. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto(scale, shape): heavy-tailed, support [scale, ∞). *)

val lognormal : t -> mu:float -> sigma:float -> float

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [1, n] with probability proportional
    to [1 / rank^s], by inverse-CDF over precomputed weights (O(log n)
    after an O(n) table build per call; use {!zipf_table} for bulk). *)

val zipf_table : n:int -> s:float -> float array
(** Cumulative probability table for {!zipf_sample}. *)

val zipf_sample : t -> float array -> int
(** [zipf_sample t table] draws a 1-based rank using a table from
    {!zipf_table}. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k xs] draws [min k (length xs)] distinct
    elements. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
