let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (Printf.sprintf "Stat.%s: empty" name)

let sum xs = Array.fold_left ( +. ) 0. xs

let mean xs =
  check_nonempty "mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) ** 2.)) xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let minimum xs =
  check_nonempty "minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  check_nonempty "maximum" xs;
  Array.fold_left Float.max xs.(0) xs

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let median xs =
  check_nonempty "median" xs;
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.

let percentile xs p =
  check_nonempty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stat.percentile: p outside [0,100]";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.of_int (int_of_float rank) |> Float.min (float_of_int (n - 2))) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(lo + 1) -. ys.(lo)))
  end

(* Acklam's inverse normal CDF approximation. *)
let normal_quantile p =
  if p <= 0. || p >= 1. then invalid_arg "Stat.normal_quantile: p outside (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let p_high = 1. -. p_low in
  if p < p_low then begin
    let q = sqrt (-2. *. log p) in
    let num =
      ((((((c.(0) *. q) +. c.(1)) *. q) +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q
      +. c.(5)
    in
    let den =
      ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.
    in
    num /. den
  end
  else if p <= p_high then begin
    let q = p -. 0.5 in
    let r = q *. q in
    let num =
      (((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
      *. r
      +. a.(5)
    in
    let den =
      ((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r
      +. 1.
    in
    q *. num /. den
  end
  else begin
    let q = sqrt (-2. *. log (1. -. p)) in
    let num =
      ((((((c.(0) *. q) +. c.(1)) *. q) +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q
      +. c.(5)
    in
    let den =
      ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.
    in
    -.(num /. den)
  end

let erf x =
  (* Abramowitz & Stegun formula 7.1.26 *)
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429
  and p = 0.3275911 in
  let t = 1. /. (1. +. (p *. x)) in
  let y =
    1.
    -. (((((((((a5 *. t) +. a4) *. t) +. a3) *. t) +. a2) *. t) +. a1)
        *. t
        *. exp (-.(x *. x)))
  in
  sign *. y

let normal_cdf x = 0.5 *. (1. +. erf (x /. sqrt 2.))

let log_sum_exp xs =
  if Array.length xs = 0 then neg_infinity
  else begin
    let m = maximum xs in
    if m = neg_infinity then neg_infinity
    else begin
      let acc = ref 0. in
      Array.iter (fun x -> acc := !acc +. exp (x -. m)) xs;
      m +. log !acc
    end
  end
