(** Small descriptive-statistics helpers shared by the baselines and the
    experiment harness. All functions raise [Invalid_argument] on empty
    input unless documented otherwise. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]); returns [0.] for a
    single observation. *)

val stddev : float array -> float
val minimum : float array -> float
val maximum : float array -> float
val sum : float array -> float

val median : float array -> float
(** Median by sorting a copy; average of the two central elements for
    even-length input. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0, 100], linear interpolation between
    order statistics. *)

val normal_quantile : float -> float
(** [normal_quantile p] is the standard normal inverse CDF at [p] in
    (0, 1) (Acklam's rational approximation, |error| < 1.15e-9). *)

val erf : float -> float
(** Error function (Abramowitz & Stegun 7.1.26, |error| < 1.5e-7). *)

val normal_cdf : float -> float
(** Standard normal CDF via {!erf}. *)

val log_sum_exp : float array -> float
(** Numerically stable [log (sum_i (exp xs.(i)))]. Returns [neg_infinity]
    on empty input. *)
