module Q = Pc_query.Query
module Rng = Pc_util.Rng
module Relation = Pc_data.Relation
module Pc_set = Pc_core.Pc_set
module Bounds = Pc_core.Bounds
module Generate = Pc_core.Generate
module Cells = Pc_core.Cells
module Range = Pc_core.Range
module Atom = Pc_predicate.Atom

type config = { seed : int; scale : float; queries : int; jobs : int }

let default_config = { seed = 42; scale = 1.; queries = 100; jobs = 1 }

(* Experiments use the process-default pool (Runner, Group_by and
   Join_bound all default to it), so honoring [cfg.jobs] is one
   set_default_jobs call; cheap no-op when the size already matches. *)
let apply_jobs cfg =
  if Pc_par.Pool.jobs (Pc_par.Pool.default ()) <> max 1 cfg.jobs then
    Pc_par.Pool.set_default_jobs cfg.jobs

let scaled cfg base = max 10 (int_of_float (float_of_int base *. cfg.scale))
let fractions = [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

(* ------------------------------------------------------------------ *)
(* Shared setup                                                        *)
(* ------------------------------------------------------------------ *)

let sensor_rows cfg = scaled cfg 20_000
let n_pcs cfg = scaled cfg 400
let n_rand_pcs cfg = max 10 (scaled cfg 40)

let sensor_split cfg ~fraction =
  let rng = Rng.create cfg.seed in
  let full = Pc_synth.Sensor.generate rng ~rows:(sensor_rows cfg) in
  Pc_synth.Missing.top_values full ~attr:"light" ~fraction

let corr_pc_baseline ?(label = "Corr-PC") missing ~attrs ~n =
  Runner.of_pc_set label (Pc_set.make (Generate.corr_partition missing ~attrs ~n ()))

let rand_pc_baseline ?(label = "Rand-PC") rng missing ~attrs ~n =
  Runner.of_pc_set label (Pc_set.make (Generate.rand_pcs rng missing ~attrs ~n ()))

let histogram_baseline missing ~attrs ~bins =
  Runner.of_estimator (Pc_stats.Histogram.estimator missing ~attrs ~bins)

let us_baseline ?(confidence = 0.9999) rng missing ~m ~method_ ~label =
  let sample = Pc_stats.Sample.uniform rng missing ~m in
  Runner.of_estimator
    (Pc_stats.Ci.uniform_estimator ~name:label ~method_ ~confidence ~sample
       ~n_total:(Relation.cardinality missing))

let st_baseline ?(confidence = 0.9999) rng missing ~strata_attr ~m ~method_ ~label =
  let strata_of =
    Pc_stats.Sample.strata_by_quantiles missing ~attr:strata_attr ~buckets:10
  in
  let strata = Pc_stats.Sample.stratified rng missing ~strata_of ~m in
  Runner.of_estimator
    (Pc_stats.Ci.stratified_estimator ~name:label ~method_ ~confidence ~strata)

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let fig1_extrapolation cfg =
  Report.section "Figure 1: simple extrapolation under correlated missingness";
  print_endline "  (relative error of extrapolated SUM(light); paper: error grows";
  print_endline "   steeply with the missing fraction)";
  let rng = Rng.create cfg.seed in
  let full = Pc_synth.Sensor.generate rng ~rows:(sensor_rows cfg) in
  let rows =
    List.map
      (fun fraction ->
        let split = Pc_synth.Missing.top_values full ~attr:"light" ~fraction in
        let err =
          Pc_stats.Extrapolate.relative_error ~observed:split.Pc_synth.Missing.observed
            ~missing:split.Pc_synth.Missing.missing (Q.sum "light")
        in
        [
          Printf.sprintf "%.1f" fraction;
          (match err with Some e -> Report.fnum e | None -> "n/a");
        ])
      [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]
  in
  Report.table ~header:[ "missing fraction"; "relative error" ] rows

(* ------------------------------------------------------------------ *)
(* Figures 3 and 4                                                     *)
(* ------------------------------------------------------------------ *)

let sensor_attrs = [ "device"; "time" ]

let sensor_baselines cfg missing =
  let rng = Rng.create (cfg.seed + 1) in
  let n = n_pcs cfg in
  [
    corr_pc_baseline missing ~attrs:sensor_attrs ~n;
    rand_pc_baseline rng missing ~attrs:sensor_attrs ~n:(n_rand_pcs cfg);
    us_baseline rng missing ~m:n ~method_:Pc_stats.Ci.Nonparametric ~label:"US-1n";
    st_baseline rng missing ~strata_attr:"time" ~m:n
      ~method_:Pc_stats.Ci.Nonparametric ~label:"ST-1n";
    histogram_baseline missing ~attrs:sensor_attrs
      ~bins:(max 2 (int_of_float (sqrt (float_of_int n))));
  ]

let fig34_run cfg ~agg ~title =
  Report.section title;
  let header =
    "missing" :: List.map (fun b -> b.Runner.label) (sensor_baselines cfg (Pc_synth.Sensor.generate (Rng.create 0) ~rows:20))
  in
  let run_metric which =
    List.map
      (fun fraction ->
        let split = sensor_split cfg ~fraction in
        let missing = split.Pc_synth.Missing.missing in
        let baselines = sensor_baselines cfg missing in
        let queries =
          Querygen.random_queries
            (Rng.create (cfg.seed + 2))
            missing ~attrs:sensor_attrs ~agg ~n:cfg.queries
        in
        let results = Runner.run ~baselines ~missing ~queries in
        Printf.sprintf "%.1f" fraction
        :: List.map
             (fun (_, (s : Metrics.summary)) ->
               match which with
               | `Failure -> Report.fpct s.Metrics.failure_rate
               | `Over -> Report.fnum s.Metrics.median_over_estimation)
             results)
      fractions
  in
  print_endline "  Failure rate (paper: 0 for PC/Histogram; sampling fails on skew):";
  Report.table ~header (run_metric `Failure);
  print_endline "\n  Median over-estimation rate (paper: Corr-PC ~1-3x, Rand-PC ~10x):";
  Report.table ~header (run_metric `Over)

let fig3_count cfg =
  fig34_run cfg ~agg:Querygen.Count
    ~title:"Figure 3: COUNT(*) on the sensor dataset vs missing fraction"

let fig4_sum cfg =
  fig34_run cfg ~agg:(Querygen.Sum "light")
    ~title:"Figure 4: SUM(light) on the sensor dataset vs missing fraction"

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let tab1_confidence_tradeoff cfg =
  Report.section "Table 1: sampling confidence-level trade-off vs Corr-PC";
  let split = sensor_split cfg ~fraction:0.5 in
  let missing = split.Pc_synth.Missing.missing in
  let n = n_pcs cfg in
  (* broader predicates so the sample always sees matches: failures then
     come from interval width, the trade-off this table isolates *)
  let queries =
    Querygen.random_queries ~selectivity:(0.2, 0.5)
      (Rng.create (cfg.seed + 3))
      missing ~attrs:sensor_attrs ~agg:(Querygen.Sum "light") ~n:cfg.queries
  in
  let confidences = [ 0.80; 0.85; 0.90; 0.95; 0.99; 0.999; 0.9999 ] in
  let rng = Rng.create (cfg.seed + 4) in
  let sample = Pc_stats.Sample.uniform rng missing ~m:n in
  let rows =
    List.map
      (fun confidence ->
        let b =
          Runner.of_estimator
            (Pc_stats.Ci.uniform_estimator ~name:"US-1"
               ~method_:Pc_stats.Ci.Parametric ~confidence ~sample
               ~n_total:(Relation.cardinality missing))
        in
        let s = Metrics.summarize (Runner.outcomes b ~missing ~queries) in
        [
          Printf.sprintf "US-1 @ %g%%" (100. *. confidence);
          Report.fpct s.Metrics.failure_rate;
          Report.fnum s.Metrics.median_over_estimation;
        ])
      confidences
  in
  let pc = corr_pc_baseline missing ~attrs:sensor_attrs ~n in
  let s = Metrics.summarize (Runner.outcomes pc ~missing ~queries) in
  let rows =
    rows
    @ [
        [
          "Corr-PC";
          Report.fpct s.Metrics.failure_rate;
          Report.fnum s.Metrics.median_over_estimation;
        ];
      ]
  in
  Report.table ~header:[ "baseline"; "failure rate"; "median over-estimation" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)
(* ------------------------------------------------------------------ *)

let fig5_sample_size cfg =
  Report.section "Figure 5: sampling accuracy vs sample size (1x..10x)";
  print_endline "  (paper: ~10x the data is needed to match a well-designed PC)";
  let split = sensor_split cfg ~fraction:0.5 in
  let missing = split.Pc_synth.Missing.missing in
  let n = n_pcs cfg in
  let run_for agg =
    let queries =
      Querygen.random_queries ~selectivity:(0.2, 0.5)
        (Rng.create (cfg.seed + 5))
        missing ~attrs:sensor_attrs ~agg ~n:cfg.queries
    in
    let pc = corr_pc_baseline missing ~attrs:sensor_attrs ~n in
    let pc_summary = Metrics.summarize (Runner.outcomes pc ~missing ~queries) in
    let rows =
      List.map
        (fun mult ->
          (* average several sample draws: a single draw's spread estimate
             is noisy under heavy tails *)
          let reps = 5 in
          let summaries =
            List.init reps (fun rep ->
                let rng = Rng.create (cfg.seed + 6 + (100 * mult) + rep) in
                let b =
                  us_baseline rng missing ~m:(mult * n)
                    ~method_:Pc_stats.Ci.Nonparametric
                    ~label:(Printf.sprintf "US-%dN" mult)
                in
                Metrics.summarize (Runner.outcomes b ~missing ~queries))
          in
          let mean f =
            Pc_util.Stat.mean (Array.of_list (List.map f summaries))
          in
          [
            Printf.sprintf "%dN" mult;
            Report.fnum (mean (fun s -> s.Metrics.median_over_estimation));
            Report.fpct (mean (fun s -> s.Metrics.failure_rate));
          ])
        [ 1; 2; 5; 10 ]
    in
    rows
    @ [
        [
          "Corr-PC";
          Report.fnum pc_summary.Metrics.median_over_estimation;
          Report.fpct pc_summary.Metrics.failure_rate;
        ];
      ]
  in
  print_endline "  COUNT(*):";
  Report.table ~header:[ "sample"; "median over-est"; "failure rate" ]
    (run_for Querygen.Count);
  print_endline "\n  SUM(light):";
  Report.table ~header:[ "sample"; "median over-est"; "failure rate" ]
    (run_for (Querygen.Sum "light"))

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

let fig6_noise cfg =
  Report.section "Figure 6: robustness to mis-specified bounds (0-3 SD noise)";
  print_endline "  (paper: overlapping PCs reject some mis-specification; sampling";
  print_endline "   degrades fastest)";
  let split = sensor_split cfg ~fraction:0.5 in
  let missing = split.Pc_synth.Missing.missing in
  let n = n_pcs cfg in
  (* broader predicates keep the bounds interior-dominated (small
     count-boundary slack), isolating the effect of value noise *)
  let queries =
    Querygen.random_queries ~selectivity:(0.2, 0.5)
      (Rng.create (cfg.seed + 7))
      missing ~attrs:sensor_attrs ~agg:(Querygen.Sum "light") ~n:cfg.queries
  in
  let corr_pcs = Generate.corr_partition missing ~attrs:sensor_attrs ~n () in
  (* 10 coarse redundant constraints: lots of slack between bound and
     truth, so the same absolute mis-specification has to be much larger
     before the most restrictive surviving component clips below the
     true value *)
  let overlap_pcs =
    Generate.rand_pcs ~width_frac:(0.5, 1.)
      (Rng.create (cfg.seed + 8))
      missing ~attrs:sensor_attrs ~n:10 ()
  in
  let noisy_sample_baseline rng ~sd_scale =
    (* mis-measured examples (paper §6.3.2: "functionally equivalent to an
       inaccurate PC"): a systematic bias plus a rescaled dispersion,
       which mis-centers and mis-sizes the confidence interval *)
    let sample = Pc_stats.Sample.uniform rng missing ~m:(10 * n) in
    let schema = Relation.schema sample in
    let idx = Pc_data.Schema.index schema "light" in
    let col = Relation.column sample "light" in
    let mean = Pc_util.Stat.mean col in
    let sd = Pc_util.Stat.stddev col in
    let bias = Rng.gaussian rng ~mu:0. ~sigma:(0.8 *. sd_scale *. sd) in
    let factor =
      Float.max 0.02 (1. +. Rng.gaussian rng ~mu:0. ~sigma:(0.3 *. sd_scale))
    in
    let noisy =
      Relation.of_array schema
        (Array.map
           (fun row ->
             let row = Array.copy row in
             (match row.(idx) with
             | Pc_data.Value.Num x ->
                 row.(idx) <-
                   Pc_data.Value.Num (mean +. bias +. ((x -. mean) *. factor))
             | Pc_data.Value.Str _ -> ());
             row)
           (Relation.tuples sample))
    in
    Runner.of_estimator
      (Pc_stats.Ci.uniform_estimator ~name:"US-10n"
         ~method_:Pc_stats.Ci.Parametric ~confidence:0.9999 ~sample:noisy
         ~n_total:(Relation.cardinality missing))
  in
  (* the systematic mis-belief draw makes single runs all-or-nothing;
     average over repetitions *)
  let reps = 12 in
  let queries = List.filteri (fun i _ -> i < max 10 (cfg.queries / 3)) queries in
  let rows =
    List.map
      (fun sd ->
        let failure_rates =
          List.init reps (fun rep ->
              let rng = Rng.create (cfg.seed + 9 + (100 * rep) + int_of_float (10. *. sd)) in
              let sigma =
                [ ("light", sd *. Pc_util.Stat.stddev (Relation.column missing "light")) ]
              in
              let corrupt = Pc_core.Noise.corrupt_values_systematic rng ~sigma in
              let baselines =
                [
                  Runner.of_pc_set "Corr-PC" (Pc_set.make (corrupt corr_pcs));
                  Runner.of_pc_set "Overlapping-PC"
                    (Pc_set.make (corrupt overlap_pcs));
                  noisy_sample_baseline rng ~sd_scale:sd;
                ]
              in
              Runner.run ~baselines ~missing ~queries
              |> List.map (fun (_, (s : Metrics.summary)) -> s.Metrics.failure_rate))
        in
        let mean_of i =
          Pc_util.Stat.mean
            (Array.of_list (List.map (fun rates -> List.nth rates i) failure_rates))
        in
        [ Printf.sprintf "%g SD" sd; Report.fpct (mean_of 0); Report.fpct (mean_of 1);
          Report.fpct (mean_of 2) ])
      [ 0.; 1.; 2.; 3. ]
  in
  Report.table ~header:[ "noise"; "Corr-PC"; "Overlapping-PC"; "US-10n" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)
(* ------------------------------------------------------------------ *)

let fig7_decomposition cfg =
  Report.section "Figure 7: cell-decomposition optimizations (solver calls)";
  print_endline "  (paper: DFS + rewriting prunes >99.9% of the naive cells)";
  let n = min 20 (max 8 (scaled cfg 16)) in
  let rng = Rng.create cfg.seed in
  let pcs =
    List.init n (fun i ->
        let lo = Rng.uniform rng ~lo:0. ~hi:60. in
        let w = Rng.uniform rng ~lo:25. ~hi:60. in
        Pc_core.Pc.make
          ~name:(Printf.sprintf "p%d" i)
          ~pred:[ Atom.between "x" lo (lo +. w) ]
          ~values:[ ("v", Pc_interval.Interval.closed 0. 1.) ]
          ~freq:(0, 10) ())
  in
  let set = Pc_set.make pcs in
  let rows =
    List.map
      (fun strategy ->
        let cells, stats = Cells.decompose ~strategy set in
        [
          Cells.strategy_name strategy;
          string_of_int stats.Cells.sat_calls;
          string_of_int (List.length cells);
          Printf.sprintf "%.3f s" stats.Cells.elapsed;
        ])
      [ Cells.Naive; Cells.Dfs; Cells.Dfs_rewrite ]
  in
  Printf.printf "  (%d heavily overlapping PCs)\n" n;
  Report.table ~header:[ "strategy"; "solver calls"; "cells"; "time" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 8                                                            *)
(* ------------------------------------------------------------------ *)

let fig8_partition_scaling cfg =
  Report.section "Figure 8: solve time vs disjoint partition size";
  print_endline "  (paper: ~50ms at 2000 partitions, linear in partition size)";
  let rng = Rng.create cfg.seed in
  let full = Pc_synth.Sensor.generate rng ~rows:(sensor_rows cfg) in
  let split = Pc_synth.Missing.top_values full ~attr:"light" ~fraction:0.5 in
  let missing = split.Pc_synth.Missing.missing in
  let sizes = [ 50; 100; 500; 1000; 2000 ] in
  let queries =
    Querygen.random_queries (Rng.create (cfg.seed + 1)) missing
      ~attrs:sensor_attrs ~agg:(Querygen.Sum "light") ~n:20
  in
  let rows =
    List.map
      (fun size ->
        let set =
          Pc_set.make (Generate.corr_partition missing ~attrs:sensor_attrs ~n:size ())
        in
        ignore (Pc_set.is_disjoint set);
        let t0 = Pc_util.Clock.now () in
        List.iter (fun q -> ignore (Bounds.bound set q)) queries;
        let elapsed = Pc_util.Clock.elapsed_s ~since:t0 in
        [
          string_of_int size;
          string_of_int (List.length (Pc_set.pcs set));
          Printf.sprintf "%.2f ms" (1000. *. elapsed /. float_of_int (List.length queries));
        ])
      sizes
  in
  Report.table ~header:[ "requested partitions"; "non-empty PCs"; "time per query" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 9                                                            *)
(* ------------------------------------------------------------------ *)

let fig9_min_max_avg cfg =
  Report.section "Figure 9: MIN / MAX / AVG tightness with Corr-PC";
  print_endline "  (paper: optimal bounds for MIN/MAX; competitive for AVG)";
  (* full §6.2 protocol: the missing part is bounded with PCs and combined
     with the certain partition's exact partial answer *)
  let split = sensor_split cfg ~fraction:0.5 in
  let missing = split.Pc_synth.Missing.missing in
  let observed = split.Pc_synth.Missing.observed in
  let full = Relation.union observed missing in
  let set =
    Pc_set.make (Generate.corr_partition missing ~attrs:sensor_attrs ~n:(n_pcs cfg) ())
  in
  let ratio_for agg ~side =
    let queries =
      Querygen.random_queries (Rng.create (cfg.seed + 11)) missing
        ~attrs:sensor_attrs ~agg ~n:cfg.queries
    in
    let ratios =
      List.filter_map
        (fun q ->
          match (Q.eval full q, Bounds.bound_with_certain set ~certain:observed q) with
          | Some truth, Bounds.Range r when truth > 0. -> (
              match side with
              | `Hi when Float.is_finite r.Range.hi -> Some (r.Range.hi /. truth)
              | `Lo when r.Range.lo > 0. -> Some (truth /. r.Range.lo)
              | _ -> None)
          | _ -> None)
        queries
    in
    match ratios with
    | [] -> nan
    | _ -> Pc_util.Stat.median (Array.of_list ratios)
  in
  Report.table ~header:[ "aggregate"; "median over-estimation" ]
    [
      [ "MIN"; Report.fnum (ratio_for (Querygen.Min "light") ~side:`Lo) ];
      [ "MAX"; Report.fnum (ratio_for (Querygen.Max "light") ~side:`Hi) ];
      [ "AVG"; Report.fnum (ratio_for (Querygen.Avg "light") ~side:`Hi) ];
    ]

(* ------------------------------------------------------------------ *)
(* Figures 10 and 11                                                   *)
(* ------------------------------------------------------------------ *)

let skewed_dataset_run cfg ~title ~dataset ~attrs ~agg_attr ~strata_attr =
  Report.section title;
  print_endline "  (paper: informed PCs rival sampling; random PCs ~10x looser but";
  print_endline "   never fail)";
  let split = Pc_synth.Missing.top_values dataset ~attr:agg_attr ~fraction:0.5 in
  let missing = split.Pc_synth.Missing.missing in
  let rng = Rng.create (cfg.seed + 12) in
  let n = n_pcs cfg in
  let baselines =
    [
      corr_pc_baseline missing ~attrs ~n;
      rand_pc_baseline rng missing ~attrs ~n:(n_rand_pcs cfg);
      us_baseline rng missing ~m:(10 * n) ~method_:Pc_stats.Ci.Nonparametric
        ~label:"US-10n";
      st_baseline rng missing ~strata_attr ~m:(10 * n)
        ~method_:Pc_stats.Ci.Nonparametric ~label:"ST-10n";
      histogram_baseline missing ~attrs ~bins:(max 2 (int_of_float (sqrt (float_of_int n))));
    ]
  in
  let run agg title =
    let queries =
      Querygen.random_queries (Rng.create (cfg.seed + 13)) missing ~attrs ~agg
        ~n:cfg.queries
    in
    let results = Runner.run ~baselines ~missing ~queries in
    print_endline title;
    Report.table ~header:[ "baseline"; "median over-est"; "failure rate" ]
      (List.map
         (fun (label, (s : Metrics.summary)) ->
           [
             label;
             Report.fnum s.Metrics.median_over_estimation;
             Report.fpct s.Metrics.failure_rate;
           ])
         results)
  in
  run Querygen.Count "  COUNT(*):";
  print_newline ();
  run (Querygen.Sum agg_attr) (Printf.sprintf "  SUM(%s):" agg_attr)

let fig10_listings cfg =
  let dataset =
    Pc_synth.Listings.generate (Rng.create cfg.seed) ~rows:(scaled cfg 15_000)
  in
  skewed_dataset_run cfg
    ~title:"Figure 10: Airbnb-like listings (predicates on lat/lon)"
    ~dataset ~attrs:[ "latitude"; "longitude" ] ~agg_attr:"price"
    ~strata_attr:"latitude"

let fig11_border cfg =
  let dataset =
    Pc_synth.Border.generate (Rng.create cfg.seed) ~rows:(scaled cfg 15_000)
  in
  skewed_dataset_run cfg
    ~title:"Figure 11: border-crossing-like dataset (predicates on port/date)"
    ~dataset ~attrs:[ "port"; "date" ] ~agg_attr:"value" ~strata_attr:"port"

(* ------------------------------------------------------------------ *)
(* Figure 12                                                           *)
(* ------------------------------------------------------------------ *)

let fig12_joins cfg =
  Report.section "Figure 12: join bounds vs elastic sensitivity";
  print_endline "  (paper: the GWE/edge-cover bound is orders of magnitude tighter)";
  let sizes =
    List.filter (fun n -> float_of_int n <= 10_000. *. Float.max 1. cfg.scale)
      [ 10; 100; 1_000; 10_000 ]
  in
  let pcs_for rel attr =
    Pc_set.make
      (Generate.corr_partition rel ~attrs:[ attr ] ~n:20 ~value_attrs:[] ())
  in
  print_endline "  Triangle counting |R(a,b) |><| S(b,c) |><| T(c,a)|:";
  let triangle_rows =
    List.map
      (fun n ->
        let rng = Rng.create (cfg.seed + n) in
        let r = Pc_synth.Graphs.random_edges rng ~a:"a" ~b:"b" ~n ~vertices:n in
        let s = Pc_synth.Graphs.random_edges rng ~a:"b" ~b:"c" ~n ~vertices:n in
        let t = Pc_synth.Graphs.random_edges rng ~a:"c" ~b:"a" ~n ~vertices:n in
        let tables =
          [
            Pc_join.Join_bound.table ~name:"R" ~join_attrs:[ "a"; "b" ] (pcs_for r "a");
            Pc_join.Join_bound.table ~name:"S" ~join_attrs:[ "b"; "c" ] (pcs_for s "b");
            Pc_join.Join_bound.table ~name:"T" ~join_attrs:[ "c"; "a" ] (pcs_for t "c");
          ]
        in
        let pc_bound = Pc_join.Join_bound.count_bound tables in
        let naive = Pc_join.Join_bound.naive_count_bound tables in
        let es = Pc_join.Elastic.triangle_bound ~n:(float_of_int n) in
        let truth = Pc_synth.Graphs.triangle_count ~r ~s ~t in
        [
          string_of_int n;
          string_of_int truth;
          Report.fnum pc_bound;
          Report.fnum es;
          Report.fnum naive;
        ])
      sizes
  in
  Report.table
    ~header:[ "table size"; "true count"; "Corr-PC (GWE)"; "elastic sens."; "naive product" ]
    triangle_rows;
  print_endline "\n  Acyclic 5-chain |R1(x1,x2) |><| ... |><| R5(x5,x6)|:";
  let chain_rows =
    List.map
      (fun n ->
        let rng = Rng.create (cfg.seed + (2 * n) + 1) in
        let rels =
          List.init 5 (fun i ->
              Pc_synth.Graphs.random_edges rng
                ~a:(Printf.sprintf "x%d" (i + 1))
                ~b:(Printf.sprintf "x%d" (i + 2))
                ~n ~vertices:n)
        in
        let tables =
          List.mapi
            (fun i rel ->
              Pc_join.Join_bound.table
                ~name:(Printf.sprintf "R%d" (i + 1))
                ~join_attrs:
                  [ Printf.sprintf "x%d" (i + 1); Printf.sprintf "x%d" (i + 2) ]
                (pcs_for rel (Printf.sprintf "x%d" (i + 1))))
            rels
        in
        let pc_bound = Pc_join.Join_bound.count_bound tables in
        let naive = Pc_join.Join_bound.naive_count_bound tables in
        let es = Pc_join.Elastic.chain_bound ~n:(float_of_int n) ~k:5 in
        let truth = Pc_synth.Graphs.chain_join_count rels in
        [
          string_of_int n;
          string_of_int truth;
          Report.fnum pc_bound;
          Report.fnum es;
          Report.fnum naive;
        ])
      sizes
  in
  Report.table
    ~header:[ "table size"; "true count"; "Corr-PC (GWE)"; "elastic sens."; "naive product" ]
    chain_rows

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let tab2_failure_census cfg =
  Report.section "Table 2: failure counts over random predicates";
  print_endline "  (paper: PCs and Histograms never fail; CLT intervals fail far";
  print_endline "   beyond their nominal rate on skewed data; Gen is erratic)";
  let nq = max 20 (cfg.queries / 2) in
  let datasets =
    [
      ( "Sensor",
        Pc_synth.Sensor.generate (Rng.create cfg.seed) ~rows:(scaled cfg 12_000),
        "light",
        [ [ "time" ]; [ "device" ]; [ "device"; "time" ] ] );
      ( "Listings",
        Pc_synth.Listings.generate (Rng.create cfg.seed) ~rows:(scaled cfg 12_000),
        "price",
        [ [ "latitude" ]; [ "longitude" ]; [ "latitude"; "longitude" ] ] );
      ( "Border",
        Pc_synth.Border.generate (Rng.create cfg.seed) ~rows:(scaled cfg 12_000),
        "value",
        [ [ "port" ]; [ "date" ]; [ "port"; "date" ] ] );
    ]
  in
  let header =
    [ "dataset"; "query"; "pred attrs"; "PC"; "Hist"; "US-1p"; "US-10p"; "US-1n";
      "US-10n"; "ST-1n"; "ST-10n"; "Gen" ]
  in
  let all_rows = ref [] in
  List.iter
    (fun (ds_name, dataset, agg_attr, attr_sets) ->
      let split = Pc_synth.Missing.top_values dataset ~attr:agg_attr ~fraction:0.4 in
      let missing = split.Pc_synth.Missing.missing in
      let n = max 20 (n_pcs cfg / 2) in
      let rng = Rng.create (cfg.seed + 17) in
      let gmm_attrs =
        List.sort_uniq String.compare
          (agg_attr
          :: List.concat_map
               (fun attrs ->
                 List.filter
                   (fun a ->
                     Pc_data.Schema.kind (Relation.schema missing) a
                     = Pc_data.Schema.Numeric)
                   attrs)
               attr_sets)
      in
      let gmm = Pc_stats.Gmm.fit ~iters:20 ~k:4 rng missing ~attrs:gmm_attrs in
      let gen_baseline =
        Runner.of_estimator
          (Pc_stats.Gmm.estimator rng gmm
             ~n_missing:(Relation.cardinality missing)
             ~trials:10)
      in
      List.iter
        (fun (agg, agg_name) ->
          List.iter
            (fun attrs ->
              let strata_attr = List.hd attrs in
              let baselines =
                [
                  corr_pc_baseline ~label:"PC" missing ~attrs ~n;
                  histogram_baseline missing ~attrs
                    ~bins:(max 2 (int_of_float (sqrt (float_of_int n))));
                  us_baseline ~confidence:0.99 rng missing ~m:n
                    ~method_:Pc_stats.Ci.Parametric ~label:"US-1p";
                  us_baseline ~confidence:0.99 rng missing ~m:(10 * n)
                    ~method_:Pc_stats.Ci.Parametric ~label:"US-10p";
                  us_baseline ~confidence:0.99 rng missing ~m:n
                    ~method_:Pc_stats.Ci.Nonparametric ~label:"US-1n";
                  us_baseline ~confidence:0.99 rng missing ~m:(10 * n)
                    ~method_:Pc_stats.Ci.Nonparametric ~label:"US-10n";
                  st_baseline ~confidence:0.99 rng missing ~strata_attr ~m:n
                    ~method_:Pc_stats.Ci.Nonparametric ~label:"ST-1n";
                  st_baseline ~confidence:0.99 rng missing ~strata_attr ~m:(10 * n)
                    ~method_:Pc_stats.Ci.Nonparametric ~label:"ST-10n";
                  gen_baseline;
                ]
              in
              let queries =
                Querygen.random_queries (Rng.create (cfg.seed + 19)) missing
                  ~attrs ~agg ~n:nq
              in
              let results = Runner.run ~baselines ~missing ~queries in
              let row =
                [ ds_name; agg_name; String.concat "," attrs ]
                @ List.map
                    (fun (_, (s : Metrics.summary)) ->
                      string_of_int s.Metrics.failures)
                    results
              in
              all_rows := row :: !all_rows)
            attr_sets)
        [ (Querygen.Count, "COUNT(*)"); (Querygen.Sum agg_attr, "SUM") ])
    datasets;
  Printf.printf "  (%d queries per row)\n" nq;
  Report.table ~header (List.rev !all_rows)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let overlapping_test_set cfg k =
  let rng = Rng.create (cfg.seed + 23) in
  let missing =
    Pc_synth.Sensor.generate (Rng.create cfg.seed) ~rows:(scaled cfg 4_000)
  in
  ( missing,
    Pc_set.make (Generate.rand_pcs rng missing ~attrs:[ "time" ] ~n:k ()) )

let ablation_earlystop cfg =
  Report.section "Ablation: early-stop depth (Optimization 4)";
  print_endline "  (verified prefix depth K trades solver calls for bound tightness)";
  let missing, set = overlapping_test_set cfg 10 in
  let query = Q.sum "light" in
  ignore missing;
  let exact_hi =
    match Bounds.bound set query with
    | Bounds.Range r -> r.Range.hi
    | _ -> nan
  in
  let k_max = Pc_set.size set in
  let rows =
    List.map
      (fun k ->
        let strategy = if k >= k_max then Cells.Dfs_rewrite else Cells.Early_stop k in
        let _, stats = Cells.decompose ~strategy set in
        let opts = { Bounds.default_opts with Bounds.strategy; use_greedy = false } in
        let hi =
          match Bounds.bound ~opts set query with
          | Bounds.Range r -> r.Range.hi
          | _ -> nan
        in
        [
          (if k >= k_max then "exact" else Printf.sprintf "K=%d" k);
          string_of_int stats.Cells.sat_calls;
          string_of_int stats.Cells.n_cells;
          Report.fnum hi;
          Report.fnum (hi /. exact_hi);
        ])
      [ 2; 4; 6; k_max ]
  in
  Report.table
    ~header:[ "depth"; "solver calls"; "cells"; "SUM upper bound"; "vs exact" ]
    rows

(* The paper's Proposition 4.1 reduction: an independent-set instance as
   predicate-constraints. One PC per vertex (x = v, value 1, at most one
   row) and one per edge (x ∈ {v, v'}, at most one row). The maximal SUM
   equals the maximum independent set; odd cycles make the LP relaxation
   fractional (k/2 vs the true ⌊k/2⌋). *)
let odd_cycle_pc_set k =
  let vertex v = Printf.sprintf "v%d" v in
  let vertex_pcs =
    List.init k (fun v ->
        Pc_core.Pc.make
          ~name:(Printf.sprintf "vertex%d" v)
          ~pred:[ Atom.cat_eq "x" (vertex v) ]
          ~values:[ ("w", Pc_interval.Interval.closed 1. 1.) ]
          ~freq:(0, 1) ())
  in
  let edge_pcs =
    List.init k (fun v ->
        Pc_core.Pc.make
          ~name:(Printf.sprintf "edge%d" v)
          ~pred:[ Atom.Cat_in ("x", [ vertex v; vertex ((v + 1) mod k) ]) ]
          ~values:[]
          ~freq:(0, 1) ())
  in
  Pc_set.make (vertex_pcs @ edge_pcs)

let ablation_milp _cfg =
  Report.section "Ablation: root LP relaxation vs branch-and-bound";
  print_endline "  (the paper's Prop. 4.1 independent-set instances: odd cycles make";
  print_endline "   the LP relaxation fractional, so rounding it would overstate the";
  print_endline "   bound; branch-and-bound recovers the integral optimum k/2 -> (k-1)/2)";
  let rows =
    List.map
      (fun k ->
        let set = odd_cycle_pc_set k in
        let hi ~node_limit =
          let opts =
            { Bounds.default_opts with Bounds.node_limit; use_greedy = false }
          in
          match Bounds.bound ~opts set (Q.sum "w") with
          | Bounds.Range r -> r.Range.hi
          | _ -> nan
        in
        [
          Printf.sprintf "%d-cycle" k;
          Report.fnum (hi ~node_limit:0);
          Report.fnum (hi ~node_limit:4_000);
          string_of_int ((k - 1) / 2);
        ])
      [ 5; 7; 9; 11 ]
  in
  Report.table
    ~header:[ "instance"; "root-LP bound"; "B&B bound"; "max independent set" ]
    rows

let ablation_tighten cfg =
  Report.section "Ablation: inferring value bounds from predicate/query ranges";
  print_endline "  (PCs that state only frequencies over value regions - e.g. \"at";
  print_endline "   most k rows with light in [a,b]\" - have no explicit value";
  print_endline "   constraint; without clipping, SUM is unbounded)";
  let missing =
    Pc_synth.Sensor.generate (Rng.create cfg.seed) ~rows:(scaled cfg 4_000)
  in
  (* frequency-only histogram over the aggregate attribute itself *)
  let set =
    Pc_set.make
      (Generate.corr_partition ~value_attrs:[] missing ~attrs:[ "light" ] ~n:12 ())
  in
  let queries =
    Querygen.random_queries (Rng.create (cfg.seed + 31)) missing ~attrs:[ "light" ]
      ~agg:(Querygen.Sum "light") ~n:10
  in
  let hi_with ~tighten q =
    let opts = { Bounds.default_opts with Bounds.tighten } in
    match Bounds.bound ~opts set q with
    | Bounds.Range r -> r.Range.hi
    | _ -> nan
  in
  let rows =
    List.mapi
      (fun i q ->
        let truth = Option.value (Q.eval missing q) ~default:nan in
        [
          Printf.sprintf "query %d" (i + 1);
          Report.fnum truth;
          Report.fnum (hi_with ~tighten:false q);
          Report.fnum (hi_with ~tighten:true q);
        ])
      queries
  in
  Report.table
    ~header:[ "query"; "true SUM"; "hi (paper's U)"; "hi (clipped, ours)" ]
    rows

let ablation_overlap_scaling cfg =
  Report.section "Ablation: solve cost vs number of overlapping constraints";
  print_endline "  (the general path is exponential in the per-query overlap degree;";
  print_endline "   pushdown keeps that degree small in practice)";
  let missing =
    Pc_synth.Sensor.generate (Rng.create cfg.seed) ~rows:(scaled cfg 4_000)
  in
  let queries =
    Querygen.random_queries (Rng.create (cfg.seed + 41)) missing
      ~attrs:[ "time" ] ~agg:(Querygen.Sum "light") ~n:10
  in
  let rows =
    List.map
      (fun k ->
        let set =
          Pc_set.make
            (Generate.rand_pcs
               (Rng.create (cfg.seed + 43))
               missing ~attrs:[ "time" ] ~n:k ())
        in
        let cells, stats = Cells.decompose set in
        let t0 = Pc_util.Clock.now () in
        List.iter (fun q -> ignore (Bounds.bound set q)) queries;
        let elapsed = Pc_util.Clock.elapsed_s ~since:t0 in
        [
          string_of_int k;
          string_of_int (List.length cells);
          string_of_int stats.Cells.sat_calls;
          Printf.sprintf "%.2f ms" (1000. *. elapsed /. float_of_int (List.length queries));
        ])
      [ 4; 8; 12; 16 ]
  in
  Report.table
    ~header:[ "overlapping PCs"; "cells (full domain)"; "solver calls"; "time per query" ]
    rows

let ext_advisor cfg =
  Report.section "Extension: partition-attribute advisor";
  print_endline "  (which attributes should the constraints partition on? scored by";
  print_endline "   actual bound tightness on a validation workload)";
  let missing =
    (sensor_split cfg ~fraction:0.5).Pc_synth.Missing.missing
  in
  let queries =
    Querygen.random_queries (Rng.create (cfg.seed + 47)) missing
      ~attrs:sensor_attrs ~agg:(Querygen.Sum "light") ~n:(max 20 (cfg.queries / 3))
  in
  let ranked =
    Pc_core.Advisor.rank missing
      ~candidates:[ "device"; "time"; "temperature"; "voltage" ]
      ~n:(n_pcs cfg) ~queries
  in
  Report.table ~header:[ "partition attributes"; "median over-estimation" ]
    (List.map
       (fun (s : Pc_core.Advisor.scored) ->
         [ String.concat ", " s.Pc_core.Advisor.attrs;
           Report.fnum s.Pc_core.Advisor.median_over_estimation ])
       ranked)

let ext_hybrid cfg =
  Report.section "Extension: PC + sampling hybrid (paper §7's 'best of both worlds')";
  print_endline "  (intersecting the hard range with a sampling CI: tighter than the";
  print_endline "   PC alone, far fewer failures than the CI alone)";
  let split = sensor_split cfg ~fraction:0.5 in
  let missing = split.Pc_synth.Missing.missing in
  let n = n_pcs cfg in
  let rng = Rng.create (cfg.seed + 37) in
  let set =
    Pc_set.make
      (Generate.corr_partition ~exact_counts:true missing ~attrs:sensor_attrs ~n ())
  in
  let sample = Pc_stats.Sample.uniform rng missing ~m:n in
  let statistical =
    Pc_stats.Ci.uniform_estimator ~name:"US-1p" ~method_:Pc_stats.Ci.Parametric
      ~confidence:0.99 ~sample ~n_total:(Relation.cardinality missing)
  in
  (* a *biased* sample (bottom half of the light values): its CLT interval
     often lands entirely outside the deterministically possible values —
     the case the hard range rescues *)
  let biased_sample =
    let sorted =
      Relation.sort_by
        (fun a b ->
          Float.compare (Pc_data.Value.as_num a.(2)) (Pc_data.Value.as_num b.(2)))
        missing
    in
    Pc_stats.Sample.uniform rng
      (Relation.take (Relation.cardinality missing / 4) sorted)
      ~m:n
  in
  let biased =
    Pc_stats.Ci.uniform_estimator ~name:"US-biased"
      ~method_:Pc_stats.Ci.Parametric ~confidence:0.99 ~sample:biased_sample
      ~n_total:(Relation.cardinality missing)
  in
  let hybrid name statistical =
    Pc_stats.Hybrid.estimator ~name
      ~hard:(Pc_stats.Hybrid.hard_of_pc_set set)
      ~statistical ()
  in
  let baselines =
    [
      Runner.of_pc_set "Corr-PC" set;
      Runner.of_estimator statistical;
      Runner.of_estimator (hybrid "Hybrid" statistical);
      Runner.of_estimator biased;
      Runner.of_estimator (hybrid "Hybrid-biased" biased);
    ]
  in
  let queries =
    Querygen.random_queries (Rng.create (cfg.seed + 38)) missing
      ~attrs:sensor_attrs ~agg:(Querygen.Sum "light") ~n:cfg.queries
  in
  let results = Runner.run ~baselines ~missing ~queries in
  Report.table ~header:[ "baseline"; "median over-est"; "failure rate" ]
    (List.map
       (fun (label, (s : Metrics.summary)) ->
         [
           label;
           Report.fnum s.Metrics.median_over_estimation;
           Report.fpct s.Metrics.failure_rate;
         ])
       results)

let all =
  List.map
    (fun (id, desc, f) -> (id, desc, fun cfg -> apply_jobs cfg; f cfg))
  [
    ("fig1", "extrapolation error vs missing fraction", fig1_extrapolation);
    ("fig3", "COUNT failure/tightness vs missing fraction", fig3_count);
    ("fig4", "SUM failure/tightness vs missing fraction", fig4_sum);
    ("tab1", "confidence-level trade-off", tab1_confidence_tradeoff);
    ("fig5", "sample-size sweep", fig5_sample_size);
    ("fig6", "noise robustness", fig6_noise);
    ("fig7", "cell decomposition optimizations", fig7_decomposition);
    ("fig8", "disjoint partition scaling", fig8_partition_scaling);
    ("fig9", "MIN/MAX/AVG tightness", fig9_min_max_avg);
    ("fig10", "Airbnb-like dataset", fig10_listings);
    ("fig11", "border-crossing-like dataset", fig11_border);
    ("fig12", "join bounds vs elastic sensitivity", fig12_joins);
    ("tab2", "failure census across datasets", tab2_failure_census);
    ("ablation_earlystop", "early-stop depth trade-off", ablation_earlystop);
    ("ablation_milp", "LP relaxation vs branch-and-bound", ablation_milp);
    ("ablation_tighten", "value-bound clipping", ablation_tighten);
    ("ext_hybrid", "PC + sampling hybrid estimator", ext_hybrid);
    ("ablation_overlap", "solve cost vs overlap degree", ablation_overlap_scaling);
    ("ext_advisor", "partition-attribute advisor", ext_advisor);
  ]
