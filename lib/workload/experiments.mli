(** Reproduction harness: one entry per table and figure of the paper's
    evaluation (§6), plus ablations of this implementation's design
    choices. Each experiment prints its series in the same shape the
    paper reports (axes/rows/columns), using synthetic stand-ins for the
    original datasets (see DESIGN.md for the substitution rationale).

    All experiments are deterministic given [seed]. [scale] multiplies
    dataset sizes and [queries] the workload sizes, so the full suite can
    be run quickly (scale < 1) or at paper-like scale (scale ≥ 1). *)

type config = {
  seed : int;
  scale : float;
  queries : int;
  jobs : int;
      (** worker domains for the per-query/per-group parallel maps;
          entry points in {!all} resize the process-default pool to
          match. [1] = sequential (and bit-identical results). *)
}

val default_config : config

val fig1_extrapolation : config -> unit
(** Figure 1: simple extrapolation's relative error vs missing fraction
    under value-correlated missingness. *)

val fig3_count : config -> unit
(** Figure 3: failure rate and median over-estimation of COUNT queries on
    the sensor dataset across missing fractions. *)

val fig4_sum : config -> unit
(** Figure 4: same for SUM(light). *)

val tab1_confidence_tradeoff : config -> unit
(** Table 1: uniform-sampling failure/accuracy across confidence levels
    vs Corr-PC. *)

val fig5_sample_size : config -> unit
(** Figure 5: sampling accuracy at 1×/2×/5×/10× sample sizes. *)

val fig6_noise : config -> unit
(** Figure 6: failure rates of Corr-PC, Overlapping-PC, US-10n under
    0–3 SD bound corruption. *)

val fig7_decomposition : config -> unit
(** Figure 7: solver calls for naive vs DFS vs DFS+rewriting cell
    decomposition. *)

val fig8_partition_scaling : config -> unit
(** Figure 8: per-query solve time vs disjoint partition size. *)

val fig9_min_max_avg : config -> unit
(** Figure 9: tightness for MIN/MAX/AVG queries. *)

val fig10_listings : config -> unit
(** Figure 10: baseline tightness on the Airbnb-like dataset. *)

val fig11_border : config -> unit
(** Figure 11: baseline tightness on the border-crossing-like dataset. *)

val fig12_joins : config -> unit
(** Figure 12: triangle-count and acyclic-chain join bounds, PC/GWE vs
    elastic sensitivity (and the naive Cartesian bound). *)

val tab2_failure_census : config -> unit
(** Table 2: failure counts over random predicates for every baseline ×
    dataset × aggregate × predicate attributes. *)

val ablation_earlystop : config -> unit
(** Early-stop depth vs decomposition effort and bound tightness
    (Optimization 4's trade-off). *)

val ablation_milp : config -> unit
(** Root-LP-only vs full branch-and-bound tightness. *)

val ablation_tighten : config -> unit
(** Effect of clipping cell value bounds by predicate/query ranges. *)

val ablation_overlap_scaling : config -> unit
(** Decomposition and solve cost as the number of overlapping constraints
    grows. *)

val ext_advisor : config -> unit
(** Partition-attribute selection scored by realized bound tightness. *)

val ext_hybrid : config -> unit
(** Intersection of the hard range with a sampling CI (paper §7's
    anticipated mixed system). *)

val all : (string * string * (config -> unit)) list
(** (id, description, run) for every experiment above. *)
