module Range = Pc_core.Range

type outcome = { truth : float option; estimate : Range.t option }

type summary = {
  queries : int;
  failures : int;
  failure_rate : float;
  median_over_estimation : float;
  mean_over_estimation : float;
}

let is_failure o =
  match (o.truth, o.estimate) with
  | None, _ -> false
  | Some _, None -> true
  | Some v, Some r -> not (Range.contains r v)

let summarize outcomes =
  let scored = List.filter (fun o -> o.truth <> None) outcomes in
  let queries = List.length scored in
  let failures = List.length (List.filter is_failure scored) in
  let ratios =
    List.filter_map
      (fun o ->
        match (o.truth, o.estimate) with
        | Some v, Some r when v > 0. && Float.is_finite r.Range.hi ->
            Some (r.Range.hi /. v)
        | _ -> None)
      scored
  in
  let median_over_estimation, mean_over_estimation =
    match ratios with
    | [] -> (nan, nan)
    | _ ->
        let arr = Array.of_list ratios in
        (Pc_util.Stat.median arr, Pc_util.Stat.mean arr)
  in
  {
    queries;
    failures;
    failure_rate =
      (if queries = 0 then 0. else 100. *. float_of_int failures /. float_of_int queries);
    median_over_estimation;
    mean_over_estimation;
  }
