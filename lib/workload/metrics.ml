module Range = Pc_core.Range
module Bounds = Pc_core.Bounds

type outcome = {
  truth : float option;
  estimate : Range.t option;
  provenance : Bounds.provenance option;
}

type summary = {
  queries : int;
  failures : int;
  failure_rate : float;
  median_over_estimation : float;
  mean_over_estimation : float;
  degraded : int;
  by_provenance : (Bounds.provenance * int) list;
}

let outcome ?provenance ~truth ~estimate () = { truth; estimate; provenance }

let is_failure o =
  match (o.truth, o.estimate) with
  | None, _ -> false
  | Some _, None -> true
  | Some v, Some r -> not (Range.contains r v)

let summarize outcomes =
  let scored = List.filter (fun o -> o.truth <> None) outcomes in
  let queries = List.length scored in
  let failures = List.length (List.filter is_failure scored) in
  let ratios =
    List.filter_map
      (fun o ->
        match (o.truth, o.estimate) with
        | Some v, Some r when v > 0. && Float.is_finite r.Range.hi ->
            Some (r.Range.hi /. v)
        | _ -> None)
      scored
  in
  let median_over_estimation, mean_over_estimation =
    match ratios with
    | [] -> (nan, nan)
    | _ ->
        let arr = Array.of_list ratios in
        (Pc_util.Stat.median arr, Pc_util.Stat.mean arr)
  in
  let count_rung p =
    List.length (List.filter (fun o -> o.provenance = Some p) outcomes)
  in
  let by_provenance =
    List.filter_map
      (fun p ->
        match count_rung p with 0 -> None | n -> Some (p, n))
      [ Bounds.Exact; Bounds.Relaxed; Bounds.Early_stopped; Bounds.Trivial ]
  in
  let degraded =
    List.fold_left
      (fun acc (p, n) -> if p = Bounds.Exact then acc else acc + n)
      0 by_provenance
  in
  {
    queries;
    failures;
    failure_rate =
      (if queries = 0 then 0. else 100. *. float_of_int failures /. float_of_int queries);
    median_over_estimation;
    mean_over_estimation;
    degraded;
    by_provenance;
  }
