(** Scoring of estimated result ranges against ground truth: the paper's
    two quantities (§6.1) — failure rate (truth escapes the interval) and
    median over-estimation rate (interval top / truth, tightness) — plus
    degradation accounting when bounds run under a budget. *)

type outcome = {
  truth : float option;  (** [None] when the aggregate is undefined *)
  estimate : Pc_core.Range.t option;  (** [None] when the baseline abstains *)
  provenance : Pc_core.Bounds.provenance option;
      (** which degradation-ladder rung produced the estimate; [None] for
          baselines that don't report one *)
}

val outcome :
  ?provenance:Pc_core.Bounds.provenance ->
  truth:float option ->
  estimate:Pc_core.Range.t option ->
  unit ->
  outcome

type summary = {
  queries : int;  (** outcomes with a defined truth *)
  failures : int;
  failure_rate : float;  (** percent *)
  median_over_estimation : float;
      (** median of hi/truth over queries with positive truth; [nan] when
          none qualify *)
  mean_over_estimation : float;
  degraded : int;
      (** outcomes answered below the [Exact] rung (over all outcomes,
          including truth-less ones) *)
  by_provenance : (Pc_core.Bounds.provenance * int) list;
      (** non-zero rung counts, [Exact] first *)
}

val is_failure : outcome -> bool
(** Truth defined but missing from the interval (an abstention with
    defined truth counts as a failure). *)

val summarize : outcome list -> summary
