module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
module Relation = Pc_data.Relation
module Schema = Pc_data.Schema

type agg_spec =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

let to_agg = function
  | Count -> Q.Count
  | Sum a -> Q.Sum a
  | Avg a -> Q.Avg a
  | Min a -> Q.Min a
  | Max a -> Q.Max a

let random_queries ?(selectivity = (0.05, 0.3)) rng rel ~attrs ~agg ~n =
  let schema = Relation.schema rel in
  let sel_lo, sel_hi = selectivity in
  if sel_lo <= 0. || sel_hi > 1. || sel_lo > sel_hi then
    invalid_arg "Querygen.random_queries: bad selectivity";
  let domains =
    List.map
      (fun attr ->
        match Schema.kind schema attr with
        | Schema.Numeric -> (attr, `Num (Option.get (Relation.min_max rel attr)))
        | Schema.Categorical ->
            (attr, `Cat (Array.of_list (Relation.distinct_strings rel attr))))
      attrs
  in
  let random_atom (attr, dom) =
    match dom with
    | `Num (lo, hi) ->
        let width = (hi -. lo) *. Pc_util.Rng.uniform rng ~lo:sel_lo ~hi:sel_hi in
        let start = Pc_util.Rng.uniform rng ~lo ~hi:(Float.max lo (hi -. width)) in
        Atom.between attr start (start +. width)
    | `Cat values -> Atom.cat_eq attr (Pc_util.Rng.choose rng values)
  in
  List.init n (fun _ ->
      { Q.agg = to_agg agg; where_ = List.map random_atom domains })
