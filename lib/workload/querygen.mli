(** Random aggregate-query workloads over a relation's attribute domains
    (the "1000 randomly chosen predicates" of the paper's evaluation). *)

type agg_spec =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

val random_queries :
  ?selectivity:float * float ->
  Pc_util.Rng.t ->
  Pc_data.Relation.t ->
  attrs:string list ->
  agg:agg_spec ->
  n:int ->
  Pc_query.Query.t list
(** Each query conjoins one random window per predicate attribute: numeric
    attributes get a range covering a fraction of the domain drawn from
    [selectivity] (default 5–30%), categorical attributes an equality with
    a random present value. *)
