let section title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let table ~header rows =
  let ncols = List.length header in
  let pad row = row @ List.init (max 0 (ncols - List.length row)) (fun _ -> "") in
  let rows = List.map pad rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let print_row cells =
    let padded =
      List.map2 (fun w c -> c ^ String.make (w - String.length c) ' ') widths cells
    in
    print_endline ("  " ^ String.concat "  " padded)
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let fnum x =
  if Float.is_nan x then "nan"
  else if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else if x <> 0. && (Float.abs x >= 1e6 || Float.abs x < 1e-3) then
    Printf.sprintf "%.3e" x
  else Printf.sprintf "%.4g" x

let fpct x = if Float.is_nan x then "nan" else Printf.sprintf "%.2f%%" x
