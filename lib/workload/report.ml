let section title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let table ~header rows =
  let ncols = List.length header in
  let pad row = row @ List.init (max 0 (ncols - List.length row)) (fun _ -> "") in
  let rows = List.map pad rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let print_row cells =
    let padded =
      List.map2 (fun w c -> c ^ String.make (w - String.length c) ' ') widths cells
    in
    print_endline ("  " ^ String.concat "  " padded)
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let fnum x =
  if Float.is_nan x then "nan"
  else if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else if x <> 0. && (Float.abs x >= 1e6 || Float.abs x < 1e-3) then
    Printf.sprintf "%.3e" x
  else Printf.sprintf "%.4g" x

let fpct x = if Float.is_nan x then "nan" else Printf.sprintf "%.2f%%" x

(* JSON numbers cannot be NaN or infinite (RFC 8259); an empty workload
   has no over-estimation ratios, so the summary's medians are [nan] and
   must serialize as [null] instead of poisoning the whole document. *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let json_of_summary (s : Metrics.summary) =
  let by_provenance =
    String.concat ", "
      (List.map
         (fun (p, n) ->
           Printf.sprintf "\"%s\": %d" (Pc_core.Bounds.provenance_name p) n)
         s.Metrics.by_provenance)
  in
  Printf.sprintf
    "{\"queries\": %d, \"failures\": %d, \"failure_rate\": %s, \
     \"median_over_estimation\": %s, \"mean_over_estimation\": %s, \
     \"degraded\": %d, \"by_provenance\": {%s}}"
    s.Metrics.queries s.Metrics.failures
    (json_float s.Metrics.failure_rate)
    (json_float s.Metrics.median_over_estimation)
    (json_float s.Metrics.mean_over_estimation)
    s.Metrics.degraded by_provenance
