(** Fixed-width text tables for the experiment harness output, so each
    figure/table prints in a shape directly comparable to the paper. *)

val table : header:string list -> string list list -> unit
(** Prints to stdout with column auto-sizing. Rows shorter than the header
    are right-padded. *)

val section : string -> unit
(** Prints a banner. *)

val fnum : float -> string
(** Compact number formatting: 4 significant digits, scientific beyond
    1e6, "inf"/"nan" spelled out. *)

val fpct : float -> string
(** Percent with 2 decimals. *)
