(** Fixed-width text tables for the experiment harness output, so each
    figure/table prints in a shape directly comparable to the paper. *)

val table : header:string list -> string list list -> unit
(** Prints to stdout with column auto-sizing. Rows shorter than the header
    are right-padded. *)

val section : string -> unit
(** Prints a banner. *)

val fnum : float -> string
(** Compact number formatting: 4 significant digits, scientific beyond
    1e6, "inf"/"nan" spelled out. *)

val fpct : float -> string
(** Percent with 2 decimals. *)

val json_float : float -> string
(** A float as a JSON number token; [null] when non-finite. *)

val json_of_summary : Metrics.summary -> string
(** One JSON object for a workload summary. Always valid JSON: non-finite
    floats (e.g. the median over-estimation of an empty workload, which
    is [nan]) serialize as [null], never as bare [nan]/[inf] tokens. *)
