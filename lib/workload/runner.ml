module Q = Pc_query.Query
module Bounds = Pc_core.Bounds
module B = Pc_budget.Budget

type baseline = {
  label : string;
  answer : Q.t -> Pc_core.Range.t option * Bounds.provenance option;
}

let range_of = function
  | Bounds.Range r -> Some r
  | Bounds.Empty | Bounds.Infeasible -> None

let of_pc_set label ?opts set =
  {
    label;
    answer =
      (fun query ->
        let o = Bounds.bound_budgeted ?opts set query in
        (range_of o.Bounds.answer, Some o.Bounds.stats.Bounds.provenance));
  }

(* Budgets are single-shot, so each query starts a fresh one from the
   spec: the caps are per-query, making workload timing predictable. *)
let of_pc_set_budgeted label ?opts ~spec set =
  {
    label;
    answer =
      (fun query ->
        let budget = B.start spec in
        let o = Bounds.bound_budgeted ?opts ~budget set query in
        (range_of o.Bounds.answer, Some o.Bounds.stats.Bounds.provenance));
  }

let of_estimator (e : Pc_stats.Estimator.t) =
  {
    label = e.Pc_stats.Estimator.name;
    answer = (fun query -> (e.Pc_stats.Estimator.estimate query, None));
  }

(* Queries are independent; a fresh budget is started inside [answer]
   for budgeted baselines, so nothing is shared between tasks and the
   parallel outcomes equal the sequential ones element-for-element. *)
let outcomes ?pool baseline ~missing ~queries =
  let pool = match pool with Some p -> p | None -> Pc_par.Pool.default () in
  Pc_par.Pool.parallel_map pool
    (fun query ->
      let estimate, provenance = baseline.answer query in
      Metrics.outcome ?provenance ~truth:(Q.eval missing query) ~estimate ())
    queries

let run ~baselines ~missing ~queries =
  List.map
    (fun b -> (b.label, Metrics.summarize (outcomes b ~missing ~queries)))
    baselines
