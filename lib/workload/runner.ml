module Q = Pc_query.Query
module Bounds = Pc_core.Bounds

type baseline = { label : string; answer : Q.t -> Pc_core.Range.t option }

let of_pc_set label ?opts set =
  {
    label;
    answer =
      (fun query ->
        match Bounds.bound ?opts set query with
        | Bounds.Range r -> Some r
        | Bounds.Empty | Bounds.Infeasible -> None);
  }

let of_estimator (e : Pc_stats.Estimator.t) =
  { label = e.Pc_stats.Estimator.name; answer = e.Pc_stats.Estimator.estimate }

let outcomes baseline ~missing ~queries =
  List.map
    (fun query ->
      {
        Metrics.truth = Q.eval missing query;
        estimate = baseline.answer query;
      })
    queries

let run ~baselines ~missing ~queries =
  List.map
    (fun b -> (b.label, Metrics.summarize (outcomes b ~missing ~queries)))
    baselines
