(** Experiment driver: evaluate a set of baselines on a workload of
    queries against the missing partition's ground truth.

    Protocol (§6.2): baselines summarize the missing partition in O(n)
    space; queries are answered about the missing rows only — for
    COUNT/SUM this is equivalent to combining with the certain partition's
    exact partial answer, which would shift both the truth and the
    interval by the same constant. *)

type baseline = {
  label : string;
  answer :
    Pc_query.Query.t ->
    Pc_core.Range.t option * Pc_core.Bounds.provenance option;
      (** estimate plus, for PC baselines, the degradation rung that
          produced it *)
}

val of_pc_set : string -> ?opts:Pc_core.Bounds.opts -> Pc_core.Pc_set.t -> baseline
(** [Empty]/[Infeasible] map to abstention. *)

val of_pc_set_budgeted :
  string ->
  ?opts:Pc_core.Bounds.opts ->
  spec:Pc_budget.Budget.spec ->
  Pc_core.Pc_set.t ->
  baseline
(** Like {!of_pc_set}, but every query runs under a fresh budget started
    from [spec] (budgets are single-shot), so per-query latency is capped
    and the recorded provenance shows how often the ladder degraded. *)

val of_estimator : Pc_stats.Estimator.t -> baseline

val run :
  baselines:baseline list ->
  missing:Pc_data.Relation.t ->
  queries:Pc_query.Query.t list ->
  (string * Metrics.summary) list
(** One summary per baseline, in input order. Queries run on the
    process-default pool ({!Pc_par.Pool.default}, configured by
    [--jobs]); see {!outcomes} for the determinism argument. *)

val outcomes :
  ?pool:Pc_par.Pool.t ->
  baseline ->
  missing:Pc_data.Relation.t ->
  queries:Pc_query.Query.t list ->
  Metrics.outcome list
(** Per-query outcomes, evaluated on [pool] (default
    {!Pc_par.Pool.default}). Queries are independent — budgeted
    baselines start a fresh budget per query — so the outcome list is
    identical to the sequential one for any pool size. *)
