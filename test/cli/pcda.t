The pcda CLI end to end: write a constraint file and a CSV, then run
every subcommand against them.

  $ cat > pcs.txt <<'TXT'
  > -- the paper's running example
  > constraint chicago_cap:
  >   branch = 'Chicago' => price in [0.0, 149.99], count [0, 5];
  > constraint newyork_cap:
  >   branch = 'New York' => price in [0.0, 100.0], count [0, 10];
  > TXT

  $ cat > sales.csv <<'TXT'
  > utc,branch,price
  > 1,Chicago,3.02
  > 2,New York,6.71
  > 3,Chicago,18.99
  > TXT

show parses and classifies the constraint set:

  $ ../../bin/pcda.exe show -c pcs.txt
  constraint chicago_cap branch = 'Chicago' => price in [0, 149.99], count [0, 5];
  constraint newyork_cap branch = 'New York' => price in [0, 100], count [0, 10];
  -- 2 constraints, disjoint (fast greedy solving applies)

check validates against observed data:

  $ ../../bin/pcda.exe check --csv sales.csv -c pcs.txt
  all 2 constraints hold on 3 rows

bound combines the certain rows with the missing-data range:

  $ ../../bin/pcda.exe bound --csv sales.csv -c pcs.txt -q "SELECT SUM(price) WHERE branch = 'Chicago'"
  [22.01, 771.96]
    lower bound: 22.01 (attained)
    upper bound: 771.96 (attained)

missing-only restricts to the hypothetical lost rows:

  $ ../../bin/pcda.exe bound -c pcs.txt --missing-only -q "SELECT COUNT(*)"
  [0, 15]
    lower bound: 0 (attained)
    upper bound: 15 (attained)

group-by breaks the result down per key:

  $ ../../bin/pcda.exe bound --csv sales.csv -c pcs.txt -q "SELECT SUM(price)" --group-by branch
  [28.72, 1778.67]
    lower bound: 28.72 (attained)
    upper bound: 1778.67 (attained)
  per-group breakdown:
    Chicago              [22.01, 771.96]
    New York             [6.71, 1006.71]

explain reports the binding constraints:

  $ ../../bin/pcda.exe explain -c pcs.txt -q "SELECT SUM(price) WHERE branch = 'New York'"
  baseline: [0, 1000]
    without chicago_cap          [0, 1000]  (hi +0, lo -0)
    without newyork_cap          [-inf, inf]  (hi +inf, lo -inf)
  
  binding constraints (most influential first):
    newyork_cap              widens hi by inf / lo by inf when relaxed

generate derives constraints from data:

  $ ../../bin/pcda.exe generate --csv sales.csv --attrs branch -n 2
  constraint pc1 branch = 'Chicago' => utc in [1, 3] and price in [3.02, 18.99], count [0, 2];
  constraint pc2 branch = 'New York' => utc in [2, 2] and price in [6.71, 6.71], count [0, 1];

a violated constraint is reported and fails the check:

  $ cat > bad.csv <<'TXT'
  > utc,branch,price
  > 1,Chicago,500
  > TXT

  $ ../../bin/pcda.exe check --csv bad.csv -c pcs.txt
  VIOLATION: chicago_cap: 1 rows violate price in [0, 149.99]
  pcda: error: constraints violated
  [2]

overlapping constraints take the MILP path; a resource budget degrades
the answer down the ladder instead of failing, and says so:

  $ cat > over.txt <<'TXT'
  > constraint t1:
  >   utc between 11.0 and 12.0 => price in [0.99, 129.99], count [50, 100];
  > constraint t2:
  >   utc between 11.0 and 13.0 => price in [0.99, 149.99], count [75, 125];
  > TXT

  $ ../../bin/pcda.exe show -c over.txt
  constraint t1 utc between 11 and 12 => price in [0.99, 129.99], count [50, 100];
  constraint t2 utc between 11 and 13 => price in [0.99, 149.99], count [75, 125];
  -- 2 constraints, overlapping (cell decomposition applies)

  $ ../../bin/pcda.exe bound -c over.txt --missing-only -q "SELECT COUNT(*)"
  [75, 125]
    lower bound: 75 (attained)
    upper bound: 125 (attained)

the fdd strategy (one compiled interval diagram, cells read off as
paths) answers identically and without any SAT probes:

  $ ../../bin/pcda.exe bound -c over.txt --missing-only -q "SELECT COUNT(*)" --strategy fdd
  [75, 125]
    lower bound: 75 (attained)
    upper bound: 125 (attained)

a one-cell budget steps down to the trivial frequency-caps floor:

  $ ../../bin/pcda.exe bound -c over.txt --missing-only -q "SELECT COUNT(*)" --budget cells=1
  [75-, 225+]
    lower bound: 75
    upper bound: 225
    provenance: trivial (cells=1 sat=1 nodes=0 iters=0)

a zero-node budget keeps the LP-relaxation dual bound:

  $ ../../bin/pcda.exe bound -c over.txt --missing-only -q "SELECT COUNT(*)" --budget nodes=0
  [75-, 125+]
    lower bound: 75
    upper bound: 125
    provenance: relaxed (cells=2 sat=1 nodes=0 iters=8)

--trace writes a Chrome trace_event file and --metrics=FILE writes the
instrument registry as JSON; both artifacts must validate, and the
budget's consumption snapshot is echoed:

  $ ../../bin/pcda.exe bound -c over.txt --missing-only -q "SELECT COUNT(*)" --budget nodes=0 --trace trace.json --metrics=metrics.json
  [75-, 125+]
    lower bound: 75
    upper bound: 125
    provenance: relaxed (cells=2 sat=1 nodes=0 iters=8)
  trace: 8 spans -> trace.json
  budget: cells=2 sat-calls=1 nodes=0 iterations=8
  metrics: -> metrics.json

  $ ../tools/json_check.exe trace.json metrics.json
  trace.json: valid JSON
  metrics.json: valid JSON

the span set covers the whole pipeline — the decomposition and its SAT
probe under the ladder rung, the MILP and LP solves below:

  $ grep -o '"name":"[a-z.]*"' trace.json | sort -u
  "name":"bound"
  "name":"decompose"
  "name":"lp.solve"
  "name":"milp.solve"
  "name":"rung.full"
  "name":"sat.solve"

bare --metrics dumps text to stdout; the instrument key set is pinned
here so that adding or renaming a counter shows up in review:

  $ ../../bin/pcda.exe bound -c over.txt --missing-only -q "SELECT COUNT(*)" --budget nodes=0 --metrics | sed -n 's/^  \([a-z][a-z0-9_]*\.[a-z0-9._]*\) .*/\1/p'
  bound.calls
  bound.early_stopped
  bound.exact
  bound.relaxed
  bound.trivial
  budget.deadline_hits
  budget.exhaustions
  cache.evictions
  cache.hits
  cache.invalidations
  cache.misses
  cache.stale_stores
  cells.admitted_unchecked
  cells.decompositions
  cells.emitted
  cells.witness_hits
  fault.injections
  fdd.compiles
  fdd.nodes
  incr.engines
  incr.rebounds_cold
  incr.rebounds_warm
  ingest.batches
  ingest.cache_evicted
  ingest.incremental_bounds
  ingest.retracts
  ingest.rows
  lp.bland_activations
  lp.btran_ns
  lp.dual_pivots
  lp.eta_len
  lp.ftran_ns
  lp.phase1_pivots
  lp.pivots
  lp.refactorizations
  lp.solves
  lp.warm_fallbacks
  lp.warm_starts
  milp.incumbent_updates
  milp.nodes
  milp.solves
  sat.atom_ops
  sat.calls
  server.admission_crushed
  server.degraded
  server.errors
  server.requests
  server.slo_crushed
  bound.ns
  ingest.ns
  lp.solve.ns
  milp.node.ns
  pool.queue_wait_ns
  pool.run_ns
  server.request_ns

an expired deadline still answers, from value bounds alone:

  $ ../../bin/pcda.exe bound -c over.txt --missing-only -q "SELECT AVG(price)" --timeout 0
  [0.99-, 149.99+]
    lower bound: 0.99
    upper bound: 149.99
    provenance: trivial (cells=0 sat=0 nodes=0 iters=0, deadline hit)

an unsatisfiable constraint set is a distinct exit code (3), so scripts
can tell "no consistent relation exists" from ordinary failures:

  $ cat > clash.txt <<'TXT'
  > constraint audit_a:
  >   utc between 0.0 and 10.0 => none, count [5, 5];
  > constraint audit_b:
  >   utc between 0.0 and 10.0 => none, count [7, 7];
  > TXT

  $ ../../bin/pcda.exe bound -c clash.txt --missing-only -q "SELECT COUNT(*)"
  infeasible: no relation satisfies these constraints — check them with `pcda check`
  [3]

a malformed budget spec is rejected up front:

  $ ../../bin/pcda.exe bound -c over.txt --missing-only -q "SELECT COUNT(*)" --budget gremlins=9
  pcda: error: unknown budget key "gremlins"
  [2]

  $ ../../bin/pcda.exe bound -c over.txt --missing-only -q "SELECT COUNT(*)" --budget cells=-1
  pcda: error: budget cells: -1 is negative
  [2]

parse errors are reported cleanly:

  $ cat > broken.txt <<'TXT'
  > constraint oops true => none, count [5, 2];
  > TXT

  $ ../../bin/pcda.exe bound -c broken.txt --missing-only -q "SELECT COUNT(*)"
  pcda: error: parse error: Pc.make: kl > ku
  [2]

the error-handling contract: every user-input error is one line on
stderr and exit 2 — a missing file, a bad flag, an unreachable server:

  $ ../../bin/pcda.exe bound -c does-not-exist.txt -q "SELECT COUNT(*)"
  pcda: error: does-not-exist.txt: No such file or directory
  [2]

  $ ../../bin/pcda.exe check --csv does-not-exist.csv -c pcs.txt
  pcda: error: does-not-exist.csv: No such file or directory
  [2]

  $ ../../bin/pcda.exe client --port 1 </dev/null
  pcda: error: cannot connect to 127.0.0.1:1: Connection refused
  [2]

cmdliner usage errors fold into the same exit code:

  $ ../../bin/pcda.exe bound --no-such-flag 2>/dev/null
  [2]

  $ ../../bin/pcda.exe serve --faults gremlins=1
  pcda: error: unknown fault site "gremlins"
  [2]
