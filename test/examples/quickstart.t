The quickstart example reproduces the paper's Section 4.4 numbers
deterministically.

  $ ../../examples/quickstart.exe
  Disjoint constraints (one per day):
    SUM(price)                 [99, 27998]
    (paper: [99.00, 27998.00])
  
  Overlapping constraints (cell decomposition + MILP):
    SUM(price)                 [74.25, 17748.8]
    (paper: [74.25, 17748.75])
    COUNT(*)                   [75, 125]
    AVG(price)                 [0.99-, 141.99+]
    MAX(price)                 [0.99-, 149.99+]
  
  Restricted to Nov-12 (query-predicate pushdown):
    SUM(price) on Nov-12       [0, 18748.8]
