open Pc_core
module B = Pc_budget.Budget
module I = Pc_interval.Interval
module Atom = Pc_predicate.Atom
module Pred = Pc_predicate.Pred
module Q = Pc_query.Query
module R = Pc_util.Rng

let tc = Alcotest.test_case
let mk ?name pred values freq = Pc.make ?name ~pred ~values ~freq ()

(* -------------------------- budget mechanics ------------------------- *)

let test_take_caps () =
  let b = B.start (B.spec ~cells:2 ()) in
  Alcotest.(check bool) "first cell" true (B.take_cell b);
  Alcotest.(check bool) "second cell" true (B.take_cell b);
  Alcotest.(check bool) "third cell refused" false (B.take_cell b);
  Alcotest.(check int) "counted up to the cap" 2 (B.usage b).B.cells;
  (* uncapped resources never refuse *)
  Alcotest.(check bool) "uncapped sat" true (B.take_sat b);
  Alcotest.(check bool) "uncapped node" true (B.take_node b)

let test_zero_timeout_expired () =
  let b = B.start (B.spec ~timeout:0. ()) in
  Alcotest.(check bool) "immediately out of time" true (B.out_of_time b);
  Alcotest.(check bool) "dead" true (B.is_dead b);
  Alcotest.check_raises "check raises" (B.Exhausted B.Deadline) (fun () ->
      B.check b);
  Alcotest.(check bool) "deadline recorded" true (B.usage b).B.deadline_hit

let test_iter_exhaustion_starves () =
  let b = B.start (B.spec ~iters:1 ()) in
  Alcotest.(check bool) "one pivot granted" true (B.take_iter b);
  Alcotest.(check bool) "second refused" false (B.take_iter b);
  (* the iteration pool is a starving resource: once drained, everything
     downstream is refused too *)
  Alcotest.(check bool) "budget dead" true (B.is_dead b);
  Alcotest.(check bool) "cells starve" false (B.take_cell b);
  Alcotest.(check bool) "dead resource reported" true
    ((B.usage b).B.dead = Some B.Iterations)

let test_unlimited_still_counts () =
  let b = B.unlimited () in
  for _ = 1 to 5 do
    Alcotest.(check bool) "cell granted" true (B.take_cell b)
  done;
  B.check b;
  Alcotest.(check int) "cells counted" 5 (B.usage b).B.cells;
  Alcotest.(check bool) "never dead" false (B.is_dead b)

let test_exhaust_marks_dead () =
  let b = B.unlimited () in
  B.exhaust b B.Cells;
  Alcotest.(check bool) "dead after exhaust" true (B.is_dead b);
  Alcotest.check_raises "check raises cells" (B.Exhausted B.Cells) (fun () ->
      B.check b)

(* ------------------- the paper's overlapping example ------------------ *)
(* t1: utc in [11,12), price in [0.99,129.99], 50..100 rows
   t2: utc in [11,13), price in [0.99,149.99], 75..125 rows
   Exact COUNT range is [75, 125]. *)

let t1 =
  mk ~name:"t1"
    [ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 12.)) ]
    [ ("price", I.closed 0.99 129.99) ]
    (50, 100)

let t2 =
  mk ~name:"t2"
    [ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 13.)) ]
    [ ("price", I.closed 0.99 149.99) ]
    (75, 125)

let overlapping = Pc_set.make [ t1; t2 ]
let count = Q.count ()

let range_of = function
  | Bounds.Range r -> r
  | Bounds.Empty -> Alcotest.fail "unexpected Empty"
  | Bounds.Infeasible -> Alcotest.fail "unexpected Infeasible"

let exact_count = lazy (range_of (Bounds.bound overlapping count))

let check_contains_exact (d : Range.t) =
  let e = Lazy.force exact_count in
  Alcotest.(check bool) "degraded lo below exact lo" true
    (d.Range.lo <= e.Range.lo +. 1e-6);
  Alcotest.(check bool) "degraded hi above exact hi" true
    (d.Range.hi >= e.Range.hi -. 1e-6)

let test_unbudgeted_exact () =
  let o = Bounds.bound_budgeted overlapping count in
  Alcotest.(check string) "provenance" "exact"
    (Bounds.provenance_name o.Bounds.stats.Bounds.provenance);
  let r = range_of o.Bounds.answer in
  Alcotest.(check (float 1e-6)) "lo" 75. r.Range.lo;
  Alcotest.(check (float 1e-6)) "hi" 125. r.Range.hi;
  Alcotest.(check bool) "cells were charged" true (o.Bounds.stats.Bounds.cells > 0)

let test_cell_cap_steps_to_trivial () =
  let b = B.start (B.spec ~cells:1 ()) in
  let o = Bounds.bound_budgeted ~budget:b overlapping count in
  Alcotest.(check bool) "trivial rung" true
    (o.Bounds.stats.Bounds.provenance = Bounds.Trivial);
  let r = range_of o.Bounds.answer in
  check_contains_exact r;
  (* frequency-caps floor: lo = max kl, hi = sum of ku *)
  Alcotest.(check (float 1e-6)) "floor lo" 75. r.Range.lo;
  Alcotest.(check (float 1e-6)) "floor hi" 225. r.Range.hi;
  Alcotest.(check bool) "floor is not claimed tight" false
    (r.Range.lo_exact || r.Range.hi_exact)

let test_zero_nodes_relaxed () =
  let b = B.start (B.spec ~nodes:0 ()) in
  let o = Bounds.bound_budgeted ~budget:b overlapping count in
  Alcotest.(check bool) "relaxed rung" true
    (o.Bounds.stats.Bounds.provenance = Bounds.Relaxed);
  check_contains_exact (range_of o.Bounds.answer)

let test_zero_sat_early_stopped () =
  let b = B.start (B.spec ~sat_calls:0 ()) in
  let o = Bounds.bound_budgeted ~budget:b overlapping count in
  Alcotest.(check bool) "early-stopped rung" true
    (o.Bounds.stats.Bounds.provenance = Bounds.Early_stopped);
  Alcotest.(check bool) "admitted cells reported" true
    (o.Bounds.stats.Bounds.admitted_unchecked > 0);
  check_contains_exact (range_of o.Bounds.answer)

let test_expired_deadline_trivial () =
  let b = B.start (B.spec ~timeout:0. ()) in
  let o = Bounds.bound_budgeted ~budget:b overlapping count in
  Alcotest.(check bool) "trivial rung" true
    (o.Bounds.stats.Bounds.provenance = Bounds.Trivial);
  Alcotest.(check bool) "deadline reported" true
    o.Bounds.stats.Bounds.deadline_hit;
  check_contains_exact (range_of o.Bounds.answer)

let test_crushed_never_raises_any_agg () =
  let queries =
    [
      Q.count ();
      Q.count ~where_:[ Atom.Num_range ("utc", I.closed 11. 11.5) ] ();
      Q.sum "price";
      Q.avg "price";
      Q.min_ "price";
      Q.max_ "price";
    ]
  in
  let specs =
    [
      B.spec ~cells:1 ();
      B.spec ~nodes:0 ();
      B.spec ~sat_calls:0 ();
      B.spec ~iters:1 ();
      B.spec ~timeout:0. ();
      B.spec ~timeout:0. ~cells:1 ~sat_calls:0 ~nodes:0 ~iters:1 ();
    ]
  in
  List.iter
    (fun q ->
      List.iter
        (fun spec ->
          let b = B.start spec in
          match (Bounds.bound_budgeted ~budget:b overlapping q).Bounds.answer with
          | Bounds.Range _ | Bounds.Empty -> ()
          | Bounds.Infeasible ->
              Alcotest.fail "crushed budget must not invent infeasibility")
        specs)
    queries

let test_audit_passes () =
  let schema =
    Pc_data.Schema.of_names
      [ ("utc", Pc_data.Schema.Numeric); ("price", Pc_data.Schema.Numeric) ]
  in
  let rng = R.create 7 in
  List.iter
    (fun q ->
      match Instance.audit rng overlapping ~schema q with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ Q.count (); Q.sum "price"; Q.max_ "price" ]

(* ------------------------------ joins -------------------------------- *)

let test_join_bound_degrades_soundly () =
  (* overlapping predicates per table, so the per-table bounds go through
     the MILP pipeline (a disjoint set would take the budget-free greedy
     path and legitimately stay Exact) *)
  let overlapping_set name lo k =
    Pc_set.make
      [
        mk ~name:(name ^ "0")
          [ Atom.Num_range ("a", I.closed lo (lo +. 10.)) ]
          [ ("k", I.closed 0. 10.) ]
          (0, k);
        mk ~name:(name ^ "1")
          [ Atom.Num_range ("a", I.closed (lo +. 5.) (lo +. 15.)) ]
          [ ("k", I.closed 0. 10.) ]
          (0, k - 1);
      ]
  in
  let set_r = overlapping_set "r" 0. 5 in
  let set_s = overlapping_set "s" 0. 7 in
  let tables =
    [
      Pc_join.Join_bound.table ~name:"r" ~join_attrs:[ "k" ] set_r;
      Pc_join.Join_bound.table ~name:"s" ~join_attrs:[ "k" ] set_s;
    ]
  in
  let exact = Pc_join.Join_bound.count_bound tables in
  let b = B.start (B.spec ~timeout:0. ~cells:1 ~nodes:0 ~iters:0 ()) in
  let d = Pc_join.Join_bound.count_bound_budgeted ~budget:b tables in
  Alcotest.(check bool) "degraded value still an upper bound" true
    (d.Pc_join.Join_bound.value >= exact -. 1e-6);
  Alcotest.(check bool) "degradation reported" true
    (Bounds.provenance_order d.Pc_join.Join_bound.provenance > 0)

(* ---------------- qcheck: ladder containment property ----------------- *)
(* Satellite: for random PC sets, random queries and deliberately crushed
   budgets, the degraded answer (a) never raises and (b) only loosens the
   exact answer — its range contains the exact range, and it never turns a
   feasible instance infeasible or a non-empty aggregate empty. *)

let random_pc rng i =
  let pred =
    if R.int rng 4 = 0 then Pred.tt
    else
      let lo = float_of_int (R.int rng 10) in
      let w = float_of_int (1 + R.int rng 10) in
      [ Atom.Num_range ("x", I.closed lo (lo +. w)) ]
  in
  let values =
    if R.int rng 4 = 0 then []
    else
      let vlo = float_of_int (R.int rng 20 - 10) in
      let vw = float_of_int (R.int rng 15) in
      [ ("v", I.closed vlo (vlo +. vw)) ]
  in
  let ku = R.int rng 8 in
  let kl = if R.int rng 3 = 0 then min ku (R.int rng 4) else 0 in
  mk ~name:(Printf.sprintf "p%d" i) pred values (kl, ku)

let random_set rng = Pc_set.make (List.init (2 + R.int rng 3) (random_pc rng))

let random_query rng =
  let where_ =
    if R.int rng 2 = 0 then Pred.tt
    else
      let lo = float_of_int (R.int rng 12) in
      let w = float_of_int (1 + R.int rng 8) in
      [ Atom.Num_range ("x", I.closed lo (lo +. w)) ]
  in
  match R.int rng 5 with
  | 0 -> Q.count ~where_ ()
  | 1 -> Q.sum ~where_ "v"
  | 2 -> Q.avg ~where_ "v"
  | 3 -> Q.min_ ~where_ "v"
  | _ -> Q.max_ ~where_ "v"

(* [a <= b] up to a relative tolerance, infinity-safe. *)
let le_tol a b =
  a <= b
  || Float.is_finite a && Float.is_finite b
     && a -. b <= 1e-6 *. Float.max 1. (Float.abs b)

let sound ~exact ~degraded =
  match (exact, degraded) with
  | Bounds.Infeasible, _ ->
      (* no consistent instance exists: any claim is vacuously sound *)
      true
  | Bounds.Empty, (Bounds.Empty | Bounds.Range _) -> true
  | Bounds.Empty, Bounds.Infeasible -> false
  | Bounds.Range r, Bounds.Range d ->
      le_tol d.Range.lo r.Range.lo && le_tol r.Range.hi d.Range.hi
  | Bounds.Range _, (Bounds.Empty | Bounds.Infeasible) -> false

let answer_to_string = function
  | Bounds.Range r -> Range.to_string r
  | Bounds.Empty -> "empty"
  | Bounds.Infeasible -> "infeasible"

let crushed_specs =
  [
    ("cells=1", B.spec ~cells:1 ());
    ("nodes=0", B.spec ~nodes:0 ());
    ("sat=0", B.spec ~sat_calls:0 ());
    ("iters=5", B.spec ~iters:5 ());
    ("timeout=1ms", B.spec ~timeout:0.001 ());
    ("all-crushed", B.spec ~timeout:0. ~cells:1 ~sat_calls:0 ~nodes:0 ~iters:1 ());
  ]

let prop_ladder_containment =
  QCheck.Test.make ~name:"every ladder rung contains the exact range"
    ~count:250 QCheck.small_int (fun seed ->
      let rng = R.create (seed + 31) in
      let set = random_set rng in
      let query = random_query rng in
      let exact = Bounds.bound set query in
      List.for_all
        (fun (label, spec) ->
          let b = B.start spec in
          let degraded = (Bounds.bound_budgeted ~budget:b set query).Bounds.answer in
          sound ~exact ~degraded
          || QCheck.Test.fail_reportf
               "budget %s unsound on %s: exact %s, degraded %s" label
               (Q.to_string query) (answer_to_string exact)
               (answer_to_string degraded))
        crushed_specs)

let prop_provenance_exact_means_identical =
  (* When a budgeted run reports Exact, the budget never intervened, so
     the answer must coincide with the unbudgeted one. *)
  QCheck.Test.make ~name:"Exact provenance implies the unbudgeted answer"
    ~count:100 QCheck.small_int (fun seed ->
      let rng = R.create (seed + 97) in
      let set = random_set rng in
      let query = random_query rng in
      let exact = Bounds.bound set query in
      List.for_all
        (fun (_, spec) ->
          let b = B.start spec in
          let o = Bounds.bound_budgeted ~budget:b set query in
          o.Bounds.stats.Bounds.provenance <> Bounds.Exact
          ||
          match (exact, o.Bounds.answer) with
          | Bounds.Empty, Bounds.Empty | Bounds.Infeasible, Bounds.Infeasible
            ->
              true
          | Bounds.Range r, Bounds.Range d ->
              let eq a b = a = b || Float.abs (a -. b) <= 1e-6 in
              eq r.Range.lo d.Range.lo && eq r.Range.hi d.Range.hi
          | _ -> false)
        crushed_specs)

let () =
  Alcotest.run "pc_budget"
    [
      ( "budget",
        [
          tc "take caps" `Quick test_take_caps;
          tc "zero timeout expired" `Quick test_zero_timeout_expired;
          tc "iteration pool starves" `Quick test_iter_exhaustion_starves;
          tc "unlimited still counts" `Quick test_unlimited_still_counts;
          tc "exhaust marks dead" `Quick test_exhaust_marks_dead;
        ] );
      ( "ladder",
        [
          tc "unbudgeted is exact" `Quick test_unbudgeted_exact;
          tc "cell cap -> trivial" `Quick test_cell_cap_steps_to_trivial;
          tc "zero nodes -> relaxed" `Quick test_zero_nodes_relaxed;
          tc "zero sat -> early stop" `Quick test_zero_sat_early_stopped;
          tc "expired deadline -> trivial" `Quick test_expired_deadline_trivial;
          tc "crushed budgets never raise" `Quick test_crushed_never_raises_any_agg;
          tc "witness audit" `Quick test_audit_passes;
          tc "join bound degrades soundly" `Quick test_join_bound_degrades_soundly;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_ladder_containment;
          QCheck_alcotest.to_alcotest prop_provenance_exact_means_identical;
        ] );
    ]
