(* Targeted tests for paths the main suites exercise only lightly:
   file-based CSV I/O, infinite/degenerate bounds, forced-row extremal
   cases, zero solver budgets, report formatting, and range algebra. *)

module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
module I = Pc_interval.Interval
module V = Pc_data.Value
open Pc_core

let tc = Alcotest.test_case
let check_float = Alcotest.(check (float 1e-6))

let schema =
  Pc_data.Schema.of_names
    [ ("t", Pc_data.Schema.Numeric); ("v", Pc_data.Schema.Numeric) ]

let mk ?name pred values freq = Pc.make ?name ~pred ~values ~freq ()

(* ----------------------------- csv files ---------------------------- *)

let test_csv_file_roundtrip () =
  let rel =
    Pc_data.Relation.create schema
      [ [| V.Num 1.; V.Num 10. |]; [| V.Num 2.; V.Num 20. |] ]
  in
  let path = Filename.temp_file "pcda_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Pc_data.Csv.write_file path rel;
      let back = Pc_data.Csv.read_file path in
      Alcotest.(check int) "cardinality" 2 (Pc_data.Relation.cardinality back);
      check_float "value" 20. (Pc_data.Relation.number back 1 "v"))

let test_csv_missing_file () =
  Alcotest.(check bool) "missing file raises" true
    (try
       ignore (Pc_data.Csv.read_file "/nonexistent/nope.csv");
       false
     with Sys_error _ -> true)

(* ------------------------- range algebra ---------------------------- *)

let test_range_algebra () =
  let a = Range.make 1. 5. and b = Range.make 3. 10. in
  let j = Range.join a b in
  check_float "join lo" 1. j.Range.lo;
  check_float "join hi" 10. j.Range.hi;
  check_float "width" 4. (Range.width a);
  let s = Range.shift a 2. in
  check_float "shift lo" 3. s.Range.lo;
  Alcotest.(check bool) "over-estimation of nonpositive truth is nan" true
    (Float.is_nan (Range.over_estimation a ~truth:0.));
  check_float "over-estimation" 2.5 (Range.over_estimation a ~truth:2.);
  Alcotest.(check bool) "NaN rejected" true
    (try
       ignore (Range.make Float.nan 1.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "inverted rejected" true
    (try
       ignore (Range.make 5. 1.);
       false
     with Invalid_argument _ -> true);
  (* tiny inversions from float noise are tolerated and normalized *)
  let tiny = Range.make 1.0000000001 1. in
  Alcotest.(check bool) "normalized" true (tiny.Range.lo <= tiny.Range.hi)

(* -------------------- unbounded value constraints ------------------- *)

let test_unbounded_sum () =
  (* a frequency-only constraint with no value bounds and a predicate
     that doesn't constrain v: SUM is genuinely unbounded *)
  let set = Pc_set.make [ mk [ Atom.between "t" 0. 10. ] [] (0, 5) ] in
  (match Bounds.bound set (Q.sum "v") with
  | Bounds.Range r ->
      Alcotest.(check bool) "hi infinite" true (r.Range.hi = infinity);
      Alcotest.(check bool) "lo -infinite" true (r.Range.lo = neg_infinity)
  | _ -> Alcotest.fail "expected range");
  (* COUNT stays finite: frequency caps always bound it *)
  match Bounds.bound set (Q.count ()) with
  | Bounds.Range r ->
      check_float "count lo" 0. r.Range.lo;
      check_float "count hi" 5. r.Range.hi
  | _ -> Alcotest.fail "expected range"

let test_half_bounded_sum () =
  (* values bounded below only: hi infinite, lo finite *)
  let set =
    Pc_set.make [ mk [ Atom.between "t" 0. 10. ] [ ("v", I.at_least 0.) ] (0, 5) ]
  in
  match Bounds.bound set (Q.sum "v") with
  | Bounds.Range r ->
      check_float "lo zero" 0. r.Range.lo;
      Alcotest.(check bool) "hi infinite" true (r.Range.hi = infinity)
  | _ -> Alcotest.fail "expected range"

let test_predicate_bounds_the_aggregate () =
  (* no value constraint, but the predicate itself pins v: tighten infers
     the bound *)
  let set =
    Pc_set.make
      [ mk [ Atom.between "t" 0. 10.; Atom.between "v" 2. 7. ] [] (0, 4) ]
  in
  match Bounds.bound set (Q.sum "v") with
  | Bounds.Range r ->
      check_float "hi from predicate" (4. *. 7.) r.Range.hi;
      check_float "lo zero (empty instance)" 0. r.Range.lo
  | _ -> Alcotest.fail "expected range"

(* ------------------------ forced-row extremal ----------------------- *)

let test_forced_min_max () =
  (* kl = 2 forces rows: the adversary cannot avoid them *)
  let set =
    Pc_set.make [ mk [ Atom.between "t" 0. 10. ] [ ("v", I.closed 5. 9.) ] (2, 6) ]
  in
  (match Bounds.bound set (Q.max_ "v") with
  | Bounds.Range r ->
      (* max possible MAX = 9; min possible MAX = 5 (all forced rows low) *)
      check_float "max hi" 9. r.Range.hi;
      check_float "max lo" 5. r.Range.lo
  | _ -> Alcotest.fail "expected range");
  match Bounds.bound set (Q.min_ "v") with
  | Bounds.Range r ->
      check_float "min lo" 5. r.Range.lo;
      check_float "min hi" 9. r.Range.hi
  | _ -> Alcotest.fail "expected range"

let test_forced_sum_lower_bound () =
  let set =
    Pc_set.make [ mk [ Atom.between "t" 0. 10. ] [ ("v", I.closed 5. 9.) ] (2, 6) ]
  in
  match Bounds.bound set (Q.sum "v") with
  | Bounds.Range r ->
      check_float "forced lo" 10. r.Range.lo;
      check_float "hi" 54. r.Range.hi
  | _ -> Alcotest.fail "expected range"

(* ----------------------- degenerate budgets ------------------------- *)

let test_zero_node_limit_sound () =
  let set =
    Pc_set.make
      [
        mk [ Atom.between "t" 0. 6. ] [ ("v", I.closed 0. 10.) ] (1, 4);
        mk [ Atom.between "t" 4. 10. ] [ ("v", I.closed 0. 20.) ] (1, 4);
      ]
  in
  let exact =
    match Bounds.bound ~opts:{ Bounds.default_opts with use_greedy = false } set (Q.sum "v") with
    | Bounds.Range r -> r
    | _ -> Alcotest.fail "expected range"
  in
  match
    Bounds.bound
      ~opts:{ Bounds.default_opts with Bounds.node_limit = 0; use_greedy = false }
      set (Q.sum "v")
  with
  | Bounds.Range r ->
      Alcotest.(check bool) "root bound dominates" true
        (r.Range.hi >= exact.Range.hi -. 1e-6);
      Alcotest.(check bool) "root lower bound dominated" true
        (r.Range.lo <= exact.Range.lo +. 1e-6)
  | _ -> Alcotest.fail "expected range"

(* --------------------------- report/pp ------------------------------ *)

let capture f =
  let path = Filename.temp_file "pcda_capture" ".txt" in
  let oc = open_out path in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel oc) Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      close_out_noerr oc)
    f;
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () ->
      close_in_noerr ic;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> really_input_string ic (in_channel_length ic))

let test_report_table () =
  let out =
    capture (fun () ->
        Pc_workload.Report.table ~header:[ "a"; "bb" ]
          [ [ "1"; "2" ]; [ "333" ] ])
  in
  Alcotest.(check bool) "header present" true
    (String.length out > 0
    && String.index_opt out 'a' <> None
    && String.index_opt out '3' <> None)

let test_report_fnum () =
  Alcotest.(check string) "nan" "nan" (Pc_workload.Report.fnum Float.nan);
  Alcotest.(check string) "inf" "inf" (Pc_workload.Report.fnum infinity);
  Alcotest.(check string) "plain" "3.5" (Pc_workload.Report.fnum 3.5);
  Alcotest.(check string) "scientific" "1.200e+07"
    (Pc_workload.Report.fnum 1.2e7);
  Alcotest.(check string) "zero" "0" (Pc_workload.Report.fnum 0.)

let test_pp_smoke () =
  let set =
    Pc_set.make [ mk ~name:"x" [ Atom.between "t" 0. 1. ] [ ("v", I.closed 0. 1.) ] (0, 1) ]
  in
  let s = Format.asprintf "%a" Pc_set.pp set in
  Alcotest.(check bool) "pc_set pp" true (String.length s > 0);
  let rel = Pc_data.Relation.create schema [ [| V.Num 1.; V.Num 2. |] ] in
  let s = Format.asprintf "%a" Pc_data.Relation.pp rel in
  Alcotest.(check bool) "relation pp" true (String.length s > 0)

(* --------------------- interval/box odds and ends ------------------- *)

let test_interval_sample_unbounded () =
  let rng = Pc_util.Rng.create 3 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "sample of full line is member" true
      (I.contains I.full (I.sample rng I.full));
    Alcotest.(check bool) "sample of ray is member" true
      (I.contains (I.at_least 5.) (I.sample rng (I.at_least 5.)))
  done

let test_box_witness_open_universe () =
  let box =
    Option.get
      (Pc_predicate.Box.add_atom Pc_predicate.Box.top
         (Atom.Cat_not_in ("c", [ "a"; "bb"; "ccc" ])))
  in
  let w = Pc_predicate.Box.witness box in
  let v = V.as_str (List.assoc "c" w) in
  Alcotest.(check bool) "fresh string avoids exclusions" true
    (not (List.mem v [ "a"; "bb"; "ccc" ]))

(* --------------------- query evaluation corners --------------------- *)

let test_query_groupby_empty () =
  let rel = Pc_data.Relation.create schema [] in
  Alcotest.(check int) "no groups on empty" 0
    (List.length (Q.eval_group_by rel (Q.count ()) "t"))

let test_effective_emptiness () =
  (* a PC whose value constraint is unsatisfiable on its own attribute:
     no rows can live there *)
  let impossible_values =
    mk ~name:"imp" [ Atom.between "t" 0. 5. ]
      [ ("v", I.closed 5. 9.); ("t", I.closed 100. 200.) ]
      (0, 10)
  in
  let set = Pc_set.make [ impossible_values ] in
  (* rows would need t in [0,5] (predicate) and t in [100,200] (value):
     with tighten the cell is uninhabitable, so COUNT is 0 *)
  match Bounds.bound set (Q.count ()) with
  | Bounds.Range r -> check_float "no inhabitable cells" 0. r.Range.hi
  | _ -> Alcotest.fail "expected range"

let () =
  Alcotest.run "pc_coverage"
    [
      ( "csv files",
        [
          tc "roundtrip" `Quick test_csv_file_roundtrip;
          tc "missing file" `Quick test_csv_missing_file;
        ] );
      ("range", [ tc "algebra" `Quick test_range_algebra ]);
      ( "unbounded",
        [
          tc "no value constraint" `Quick test_unbounded_sum;
          tc "half bounded" `Quick test_half_bounded_sum;
          tc "predicate bounds aggregate" `Quick test_predicate_bounds_the_aggregate;
        ] );
      ( "forced rows",
        [
          tc "min/max" `Quick test_forced_min_max;
          tc "sum lower bound" `Quick test_forced_sum_lower_bound;
        ] );
      ("budgets", [ tc "zero node limit" `Quick test_zero_node_limit_sound ]);
      ( "report",
        [
          tc "table" `Quick test_report_table;
          tc "fnum" `Quick test_report_fnum;
          tc "pp smoke" `Quick test_pp_smoke;
        ] );
      ( "corners",
        [
          tc "unbounded interval sampling" `Quick test_interval_sample_unbounded;
          tc "open-universe witness" `Quick test_box_witness_open_universe;
          tc "group-by on empty" `Quick test_query_groupby_empty;
          tc "uninhabitable cells" `Quick test_effective_emptiness;
        ] );
    ]
