open Pc_data

let tc = Alcotest.test_case

let sales_schema =
  Schema.of_names
    [ ("utc", Schema.Numeric); ("branch", Schema.Categorical); ("price", Schema.Numeric) ]

let row utc branch price = [| Value.Num utc; Value.Str branch; Value.Num price |]

let sales =
  Relation.create sales_schema
    [
      row 1. "Chicago" 3.02;
      row 2. "New York" 6.71;
      row 3. "Chicago" 18.99;
      row 4. "Trenton" 1.50;
      row 5. "Chicago" 149.99;
    ]

let test_value () =
  Alcotest.(check (float 0.)) "as_num" 3. (Value.as_num (Value.num 3.));
  Alcotest.(check string) "as_str" "x" (Value.as_str (Value.str "x"));
  Alcotest.(check bool) "of_string num" true (Value.of_string "4.5" = Value.Num 4.5);
  Alcotest.(check bool) "of_string str" true (Value.of_string "abc" = Value.Str "abc");
  Alcotest.check_raises "as_num on str"
    (Invalid_argument "Value.as_num: \"x\" is not numeric") (fun () ->
      ignore (Value.as_num (Value.str "x")));
  Alcotest.(check int) "compare num str" (-1) (Value.compare (Value.num 1.) (Value.str "a"))

let test_schema () =
  Alcotest.(check int) "arity" 3 (Schema.arity sales_schema);
  Alcotest.(check int) "index" 2 (Schema.index sales_schema "price");
  Alcotest.(check bool) "mem" true (Schema.mem sales_schema "branch");
  Alcotest.(check bool) "not mem" false (Schema.mem sales_schema "nope");
  Alcotest.(check (list string)) "numeric names" [ "utc"; "price" ]
    (Schema.numeric_names sales_schema);
  Alcotest.check_raises "duplicate attrs"
    (Invalid_argument "Schema.make: duplicate attribute \"a\"") (fun () ->
      ignore (Schema.of_names [ ("a", Schema.Numeric); ("a", Schema.Numeric) ]))

let test_schema_concat () =
  let a = Schema.of_names [ ("x", Schema.Numeric); ("y", Schema.Numeric) ] in
  let b = Schema.of_names [ ("y", Schema.Numeric); ("z", Schema.Numeric) ] in
  let c = Schema.concat a b in
  Alcotest.(check (list string)) "renamed" [ "x"; "y"; "y_r"; "z" ] (Schema.names c)

let test_relation_basics () =
  Alcotest.(check int) "cardinality" 5 (Relation.cardinality sales);
  Alcotest.(check (float 0.)) "value access" 18.99 (Relation.number sales 2 "price");
  Alcotest.(check (list string)) "distinct" [ "Chicago"; "New York"; "Trenton" ]
    (Relation.distinct_strings sales "branch");
  match Relation.min_max sales "price" with
  | Some (lo, hi) ->
      Alcotest.(check (float 0.)) "min" 1.50 lo;
      Alcotest.(check (float 0.)) "max" 149.99 hi
  | None -> Alcotest.fail "expected min_max"

let test_relation_kind_mismatch () =
  Alcotest.check_raises "numeric col with string"
    (Invalid_argument "Relation: \"x\" in numeric attribute utc") (fun () ->
      ignore
        (Relation.create sales_schema [ [| Value.Str "x"; Value.Str "c"; Value.Num 1. |] ]))

let test_filter_partition_union () =
  let chicago =
    Relation.filter
      (fun r -> Value.as_str r.(1) = "Chicago")
      sales
  in
  Alcotest.(check int) "filter" 3 (Relation.cardinality chicago);
  let yes, no = Relation.partition (fun r -> Value.as_num r.(2) > 5.) sales in
  Alcotest.(check int) "partition yes" 3 (Relation.cardinality yes);
  Alcotest.(check int) "partition no" 2 (Relation.cardinality no);
  Alcotest.(check int) "union restores" 5 (Relation.cardinality (Relation.union yes no))

let test_group_by () =
  let groups = Relation.group_by sales "branch" in
  Alcotest.(check int) "three groups" 3 (List.length groups);
  let first_key, first_rel = List.hd groups in
  Alcotest.(check bool) "first-occurrence order" true (first_key = Value.Str "Chicago");
  Alcotest.(check int) "group size" 3 (Relation.cardinality first_rel)

let test_sort_take_drop () =
  let sorted =
    Relation.sort_by
      (fun a b -> Float.compare (Value.as_num b.(2)) (Value.as_num a.(2)))
      sales
  in
  Alcotest.(check (float 0.)) "desc sorted" 149.99 (Relation.number sorted 0 "price");
  Alcotest.(check int) "take" 2 (Relation.cardinality (Relation.take 2 sales));
  Alcotest.(check int) "drop" 3 (Relation.cardinality (Relation.drop 2 sales));
  Alcotest.(check int) "take beyond" 5 (Relation.cardinality (Relation.take 99 sales))

let test_csv_roundtrip () =
  let text = Csv.write_string sales in
  let back = Csv.read_string text in
  Alcotest.(check int) "cardinality" (Relation.cardinality sales)
    (Relation.cardinality back);
  Alcotest.(check bool) "schema inferred" true
    (Schema.equal (Relation.schema back) sales_schema);
  Alcotest.(check (float 0.)) "values preserved" 149.99 (Relation.number back 4 "price")

let test_csv_quoting () =
  let schema =
    Schema.of_names [ ("name", Schema.Categorical); ("v", Schema.Numeric) ]
  in
  let rel =
    Relation.create schema
      [
        [| Value.Str "has,comma"; Value.Num 1. |];
        [| Value.Str "has\"quote"; Value.Num 2. |];
        [| Value.Str "has\nnewline"; Value.Num 3. |];
      ]
  in
  let back = Csv.read_string (Csv.write_string rel) in
  Alcotest.(check int) "cardinality" 3 (Relation.cardinality back);
  Alcotest.(check string) "comma" "has,comma" (Value.as_str (Relation.value back 0 "name"));
  Alcotest.(check string) "quote" "has\"quote" (Value.as_str (Relation.value back 1 "name"));
  Alcotest.(check string) "newline" "has\nnewline"
    (Value.as_str (Relation.value back 2 "name"))

let test_csv_errors () =
  (try
     ignore (Csv.read_string "a,b\n1");
     Alcotest.fail "expected failure"
   with Failure msg ->
     Alcotest.(check bool) "mentions record" true
       (String.length msg > 0));
  try
    ignore (Csv.read_string "a\n\"unterminated");
    Alcotest.fail "expected failure"
  with Failure _ -> ()

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_csv_nonfinite () =
  (* NaN/infinity would silently poison every downstream bound; the loader
     must reject them, naming the record and column *)
  let schema = Schema.of_names [ ("x", Schema.Numeric); ("y", Schema.Numeric) ] in
  List.iter
    (fun bad ->
      try
        ignore (Csv.read_string ~schema ("x,y\n1.0,2.0\n3.0," ^ bad ^ "\n"));
        Alcotest.fail ("accepted non-finite value " ^ bad)
      with Failure msg ->
        Alcotest.(check bool) ("names the column for " ^ bad) true
          (contains_sub msg "column \"y\"");
        Alcotest.(check bool) ("names the record for " ^ bad) true
          (contains_sub msg "record 3"))
    [ "nan"; "-nan"; "inf"; "-inf"; "infinity" ];
  (* ordinary extreme-but-finite values still load *)
  let ok = Csv.read_string ~schema "x,y\n1.0,-1.7e308\n" in
  Alcotest.(check (float 0.)) "finite extreme kept" (-1.7e308)
    (Relation.number ok 0 "y")

let prop_csv_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (1 -- 30)
        (pair (float_bound_inclusive 1000.) (string_size ~gen:printable (1 -- 8))))
  in
  QCheck.Test.make ~name:"csv roundtrips arbitrary relations" ~count:100
    (QCheck.make gen) (fun rows ->
      let schema =
        Schema.of_names [ ("n", Schema.Numeric); ("s", Schema.Categorical) ]
      in
      (* avoid strings that parse as floats switching inferred kinds:
         supply the schema explicitly on read *)
      let rel =
        Relation.create schema
          (List.map (fun (n, s) -> [| Value.Num n; Value.Str s |]) rows)
      in
      let back = Csv.read_string ~schema (Csv.write_string rel) in
      Relation.cardinality back = Relation.cardinality rel
      && List.for_all2
           (fun (n, s) i ->
             Float.abs (Relation.number back i "n" -. n) < 1e-6
             && Value.as_str (Relation.value back i "s") = s)
           rows
           (List.init (List.length rows) Fun.id))

let () =
  Alcotest.run "pc_data"
    [
      ("value", [ tc "basics" `Quick test_value ]);
      ( "schema",
        [ tc "basics" `Quick test_schema; tc "concat" `Quick test_schema_concat ] );
      ( "relation",
        [
          tc "basics" `Quick test_relation_basics;
          tc "kind mismatch" `Quick test_relation_kind_mismatch;
          tc "filter/partition/union" `Quick test_filter_partition_union;
          tc "group_by" `Quick test_group_by;
          tc "sort/take/drop" `Quick test_sort_take_drop;
        ] );
      ( "csv",
        [
          tc "roundtrip" `Quick test_csv_roundtrip;
          tc "quoting" `Quick test_csv_quoting;
          tc "errors" `Quick test_csv_errors;
          tc "non-finite rejected" `Quick test_csv_nonfinite;
          QCheck_alcotest.to_alcotest prop_csv_roundtrip;
        ] );
    ]
