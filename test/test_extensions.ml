(* Tests for the extension modules: GROUP-BY bounding, dirty-row analysis,
   bound explanation, and the PC+sampling hybrid. *)

module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
module I = Pc_interval.Interval
module V = Pc_data.Value
module Range = Pc_core.Range
open Pc_core

let tc = Alcotest.test_case
let check_float = Alcotest.(check (float 1e-6))

let schema =
  Pc_data.Schema.of_names
    [
      ("utc", Pc_data.Schema.Numeric);
      ("branch", Pc_data.Schema.Categorical);
      ("price", Pc_data.Schema.Numeric);
    ]

let row utc branch price = [| V.Num utc; V.Str branch; V.Num price |]

let mk ?name pred values freq = Pc.make ?name ~pred ~values ~freq ()

(* ----------------------------- group by ----------------------------- *)

let sales_pcs =
  Pc_set.make
    [
      mk ~name:"chi"
        [ Atom.cat_eq "branch" "Chicago" ]
        [ ("price", I.closed 0. 150.) ]
        (0, 5);
      mk ~name:"nyc"
        [ Atom.cat_eq "branch" "New York" ]
        [ ("price", I.closed 0. 100.) ]
        (0, 10);
    ]

let certain =
  Pc_data.Relation.create schema
    [ row 1. "Chicago" 20.; row 2. "Trenton" 30.; row 3. "Chicago" 10. ]

let test_group_by_keys () =
  let keys = Group_by.known_keys sales_pcs ~certain ~by:"branch" in
  Alcotest.(check (list string)) "keys from both sources"
    [ "Chicago"; "New York"; "Trenton" ] keys

let test_group_by_bound () =
  let result = Group_by.bound sales_pcs ~certain ~by:"branch" (Q.sum "price") in
  Alcotest.(check int) "three groups" 3 (List.length result.Group_by.groups);
  let get key = List.assoc (V.Str key) result.Group_by.groups in
  (match get "Chicago" with
  | Bounds.Range r ->
      check_float "chicago lo (certain only)" 30. r.Range.lo;
      check_float "chicago hi" (30. +. (5. *. 150.)) r.Range.hi
  | _ -> Alcotest.fail "chicago");
  (match get "Trenton" with
  | Bounds.Range r ->
      (* no constraint admits Trenton rows: the certain value is exact *)
      check_float "trenton exact lo" 30. r.Range.lo;
      check_float "trenton exact hi" 30. r.Range.hi
  | _ -> Alcotest.fail "trenton");
  (* the two PC predicates pin branch to known values: no residual *)
  Alcotest.(check bool) "no residual" true (result.Group_by.residual = None)

let test_group_by_residual () =
  (* a tautology constraint admits unseen branch values *)
  let open_set =
    Pc_set.make [ mk ~name:"any" [] [ ("price", I.closed 0. 50.) ] (0, 4) ]
  in
  let result = Group_by.bound open_set ~certain ~by:"branch" (Q.sum "price") in
  match result.Group_by.residual with
  | Some (Bounds.Range r) ->
      check_float "residual capacity" (4. *. 50.) r.Range.hi
  | _ -> Alcotest.fail "expected residual range"

let test_group_by_validation () =
  Alcotest.(check bool) "numeric group attr rejected" true
    (try
       ignore (Group_by.known_keys sales_pcs ~certain ~by:"utc");
       false
     with Invalid_argument _ -> true)

let test_group_by_consistency () =
  (* summing per-group COUNT upper bounds must dominate the global one *)
  let q = Q.count () in
  let result = Group_by.bound sales_pcs ~certain ~by:"branch" q in
  let group_hi_sum =
    List.fold_left
      (fun acc (_, a) ->
        match a with Bounds.Range r -> acc +. r.Range.hi | _ -> acc)
      0. result.Group_by.groups
  in
  match Bounds.bound_with_certain sales_pcs ~certain q with
  | Bounds.Range r ->
      Alcotest.(check bool) "groups cover the total" true
        (group_hi_sum >= r.Range.hi -. 1e-6)
  | _ -> Alcotest.fail "expected range"

(* ------------------------------ dirty ------------------------------- *)

let dirty_rel =
  Pc_data.Relation.create schema
    [
      row 1. "Chicago" 10.;
      row 2. "Chicago" 20.;
      row 3. "New York" 30.;
      row 10. "Trenton" 100.;
    ]

let dirty_range = function
  | Pc_dirty.Dirty.Range r -> r
  | Pc_dirty.Dirty.Empty -> Alcotest.fail "unexpected Empty"
  | Pc_dirty.Dirty.Inconsistent -> Alcotest.fail "unexpected Inconsistent"

let test_dirty_no_annotations_exact () =
  List.iter
    (fun (q, expected) ->
      let r = dirty_range (Pc_dirty.Dirty.bound dirty_rel [] q) in
      check_float "lo exact" expected r.Range.lo;
      check_float "hi exact" expected r.Range.hi)
    [
      (Q.sum "price", 160.);
      (Q.count (), 4.);
      (Q.avg "price", 40.);
      (Q.min_ "price", 10.);
      (Q.max_ "price", 100.);
    ]

let test_dirty_additive_sum () =
  let ann = [ Pc_dirty.Dirty.annotation ~attr:"price" (Pc_dirty.Dirty.Additive 5.) ] in
  let r = dirty_range (Pc_dirty.Dirty.bound dirty_rel ann (Q.sum "price")) in
  check_float "sum lo" (160. -. 20.) r.Range.lo;
  check_float "sum hi" (160. +. 20.) r.Range.hi

let test_dirty_predicate_scoped () =
  (* only Chicago prices are suspect *)
  let ann =
    [
      Pc_dirty.Dirty.annotation
        ~pred:[ Atom.cat_eq "branch" "Chicago" ]
        ~attr:"price" (Pc_dirty.Dirty.Additive 10.);
    ]
  in
  let r = dirty_range (Pc_dirty.Dirty.bound dirty_rel ann (Q.sum "price")) in
  check_float "only chicago moves" (160. -. 20.) r.Range.lo;
  check_float "only chicago moves hi" (160. +. 20.) r.Range.hi

let test_dirty_uncertain_predicate_attr () =
  (* utc is uncertain by ±2: row at utc=3 may or may not fall in [0, 2.5] *)
  let ann = [ Pc_dirty.Dirty.annotation ~attr:"utc" (Pc_dirty.Dirty.Additive 2.) ] in
  let q = Q.count ~where_:[ Atom.between "utc" 0. 2.5 ] () in
  let r = dirty_range (Pc_dirty.Dirty.bound dirty_rel ann q) in
  (* rows 1 and 2: may (intervals [-1,3], [0,4] straddle 2.5? both inside?
     [−1,3] ⊄ [0,2.5] but overlaps; [0,4] overlaps; row 3: [1,5] overlaps;
     row 10: [8,12] disjoint -> No. So 0 must, 3 may. *)
  check_float "count lo" 0. r.Range.lo;
  check_float "count hi" 3. r.Range.hi

let test_dirty_relative_and_absolute () =
  let ann_rel =
    [ Pc_dirty.Dirty.annotation ~attr:"price" (Pc_dirty.Dirty.Relative 0.1) ]
  in
  let r = dirty_range (Pc_dirty.Dirty.bound dirty_rel ann_rel (Q.max_ "price")) in
  check_float "max hi with 10% slack" 110. r.Range.hi;
  let ann_abs =
    [
      Pc_dirty.Dirty.annotation ~attr:"price"
        (Pc_dirty.Dirty.Absolute (I.closed 0. 50.));
    ]
  in
  let r = dirty_range (Pc_dirty.Dirty.bound dirty_rel ann_abs (Q.max_ "price")) in
  check_float "absolute replaces recorded" 50. r.Range.hi

let test_dirty_inconsistent () =
  let ann =
    [
      Pc_dirty.Dirty.annotation ~attr:"price"
        (Pc_dirty.Dirty.Absolute (I.closed 0. 10.));
      Pc_dirty.Dirty.annotation ~attr:"price"
        (Pc_dirty.Dirty.Absolute (I.closed 500. 600.));
    ]
  in
  Alcotest.(check bool) "conflicting annotations" true
    (Pc_dirty.Dirty.bound dirty_rel ann (Q.sum "price") = Pc_dirty.Dirty.Inconsistent)

let test_dirty_avg_with_mays () =
  (* price uncertain ±10 on a query selecting price >= 25: row 30 is may
     in [20,40]; row 100 must in [90,110]; rows 10,20 may ([0,20],[10,30]):
     row 10 -> [0,20] vs >=25: no. row 20 -> [10,30] overlaps -> may with
     contribution clipped to [25,30]. *)
  let ann = [ Pc_dirty.Dirty.annotation ~attr:"price" (Pc_dirty.Dirty.Additive 10.) ] in
  let q = Q.avg ~where_:[ Atom.at_least "price" 25. ] "price" in
  let r = dirty_range (Pc_dirty.Dirty.bound dirty_rel ann q) in
  (* max avg: must row at 110; adding mays (40, 30) lowers it -> 110 *)
  check_float "avg hi" 110. r.Range.hi;
  (* min avg: must row at 90; add mays at their clipped lows 25,25:
     (90+25+25)/3 = 46.666... *)
  check_float "avg lo" ((90. +. 25. +. 25.) /. 3.) r.Range.lo

let test_dirty_empty () =
  let q = Q.avg ~where_:[ Atom.at_least "price" 1e6 ] "price" in
  Alcotest.(check bool) "empty" true
    (Pc_dirty.Dirty.bound dirty_rel [] q = Pc_dirty.Dirty.Empty)

(* Soundness: random repairs stay inside the dirty bound. *)
let prop_dirty_sound =
  QCheck.Test.make ~name:"random repairs stay inside dirty bounds" ~count:120
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let n = 5 + Pc_util.Rng.int rng 20 in
      let rel =
        Pc_data.Relation.create schema
          (List.init n (fun i ->
               row (float_of_int i)
                 (if i mod 2 = 0 then "Chicago" else "New York")
                 (Pc_util.Rng.uniform rng ~lo:0. ~hi:100.)))
      in
      let delta = Pc_util.Rng.uniform rng ~lo:0. ~hi:20. in
      let ann =
        [ Pc_dirty.Dirty.annotation ~attr:"price" (Pc_dirty.Dirty.Additive delta) ]
      in
      let lo_q = Pc_util.Rng.uniform rng ~lo:0. ~hi:80. in
      let q =
        match Pc_util.Rng.int rng 5 with
        | 0 -> Q.count ~where_:[ Atom.at_least "price" lo_q ] ()
        | 1 -> Q.sum ~where_:[ Atom.at_least "price" lo_q ] "price"
        | 2 -> Q.avg ~where_:[ Atom.at_least "price" lo_q ] "price"
        | 3 -> Q.min_ ~where_:[ Atom.at_least "price" lo_q ] "price"
        | _ -> Q.max_ ~where_:[ Atom.at_least "price" lo_q ] "price"
      in
      let answer = Pc_dirty.Dirty.bound rel ann q in
      (* build a random repair: perturb each price within ±delta *)
      let repair =
        Pc_data.Relation.of_array schema
          (Array.map
             (fun r ->
               let r = Array.copy r in
               (match r.(2) with
               | V.Num p ->
                   r.(2) <- V.Num (p +. Pc_util.Rng.uniform rng ~lo:(-.delta) ~hi:delta)
               | V.Str _ -> ());
               r)
             (Pc_data.Relation.tuples rel))
      in
      match (answer, Q.eval repair q) with
      | Pc_dirty.Dirty.Inconsistent, _ -> false
      | Pc_dirty.Dirty.Empty, None -> true
      | Pc_dirty.Dirty.Empty, Some _ -> false
      | Pc_dirty.Dirty.Range _, None -> true
      | Pc_dirty.Dirty.Range r, Some truth -> Range.contains r truth)

(* ------------------------------ explain ----------------------------- *)

let test_explain_binding () =
  (* Chicago query: the chicago constraint is binding; relaxing it blows
     the bound up; the nyc constraint is irrelevant *)
  let q = Q.sum ~where_:[ Atom.cat_eq "branch" "Chicago" ] "price" in
  let report = Explain.leave_one_out sales_pcs q in
  let binding = Explain.binding report in
  Alcotest.(check int) "one binding constraint" 1 (List.length binding);
  let top = List.hd binding in
  Alcotest.(check string) "chicago binds" "chi" top.Explain.name;
  Alcotest.(check bool) "large widening" true (top.Explain.hi_widening > 1e6)

let test_explain_redundant () =
  (* add a redundant wider constraint over Chicago: relaxing either alone
     leaves the other binding -> finite widening *)
  let set =
    Pc_set.make
      [
        mk ~name:"tight"
          [ Atom.cat_eq "branch" "Chicago" ]
          [ ("price", I.closed 0. 100.) ]
          (0, 5);
        mk ~name:"loose"
          [ Atom.cat_eq "branch" "Chicago" ]
          [ ("price", I.closed 0. 200.) ]
          (0, 8);
      ]
  in
  let q = Q.sum ~where_:[ Atom.cat_eq "branch" "Chicago" ] "price" in
  let report = Explain.leave_one_out set q in
  (match report.Explain.baseline with
  | Bounds.Range r -> check_float "baseline respects both" 500. r.Range.hi
  | _ -> Alcotest.fail "baseline");
  List.iter
    (fun (i : Explain.impact) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s widening finite" i.Explain.name)
        true
        (Float.is_finite i.Explain.hi_widening))
    report.Explain.impacts

let test_explain_report_printing () =
  let q = Q.sum "price" in
  let report = Explain.leave_one_out sales_pcs q in
  let text = Format.asprintf "%a" Explain.pp_report report in
  Alcotest.(check bool) "mentions baseline" true
    (String.length text > 0 && String.sub text 0 8 = "baseline")

(* ------------------------------ hybrid ------------------------------ *)

let test_hybrid_clip () =
  let hard _ = Some (Range.make 0. 100.) in
  let statistical = Pc_stats.Estimator.make "s" (fun _ -> Some (Range.make 40. 160.)) in
  let h = Pc_stats.Hybrid.estimator ~mode:`Clip ~name:"H" ~hard ~statistical () in
  match h.Pc_stats.Estimator.estimate (Q.count ()) with
  | Some r ->
      check_float "lo" 40. r.Range.lo;
      check_float "hi" 100. r.Range.hi
  | None -> Alcotest.fail "expected estimate"

let test_hybrid_reject_on_conflict () =
  let hard _ = Some (Range.make 0. 100.) in
  let est v = Pc_stats.Estimator.make "s" (fun _ -> v) in
  (* inside: trusted verbatim *)
  let h =
    Pc_stats.Hybrid.estimator ~name:"H" ~hard
      ~statistical:(est (Some (Range.make 40. 60.))) ()
  in
  (match h.Pc_stats.Estimator.estimate (Q.count ()) with
  | Some r ->
      check_float "trusted lo" 40. r.Range.lo;
      check_float "trusted hi" 60. r.Range.hi
  | None -> Alcotest.fail "expected estimate");
  (* escaping the hard range: rejected *)
  let h =
    Pc_stats.Hybrid.estimator ~name:"H" ~hard
      ~statistical:(est (Some (Range.make 40. 160.))) ()
  in
  match h.Pc_stats.Estimator.estimate (Q.count ()) with
  | Some r ->
      check_float "hard lo" 0. r.Range.lo;
      check_float "hard hi" 100. r.Range.hi
  | None -> Alcotest.fail "expected estimate"

let test_hybrid_fallbacks () =
  let some = Some (Range.make 1. 2.) in
  let est v = Pc_stats.Estimator.make "s" (fun _ -> v) in
  let h1 =
    Pc_stats.Hybrid.estimator ~name:"h" ~hard:(fun _ -> None) ~statistical:(est some) ()
  in
  Alcotest.(check bool) "statistical only" true
    (h1.Pc_stats.Estimator.estimate (Q.count ()) = some);
  let h2 =
    Pc_stats.Hybrid.estimator ~name:"h"
      ~hard:(fun _ -> some)
      ~statistical:(est None) ()
  in
  Alcotest.(check bool) "hard only" true
    (h2.Pc_stats.Estimator.estimate (Q.count ()) = some);
  (* disjoint: the hard range wins *)
  let h3 =
    Pc_stats.Hybrid.estimator ~name:"h"
      ~hard:(fun _ -> Some (Range.make 0. 10.))
      ~statistical:(est (Some (Range.make 50. 60.))) ()
  in
  match h3.Pc_stats.Estimator.estimate (Q.count ()) with
  | Some r ->
      check_float "hard lo" 0. r.Range.lo;
      check_float "hard hi" 10. r.Range.hi
  | None -> Alcotest.fail "expected estimate"

let prop_hybrid_never_worse =
  (* when both sides produce intervals and the hard one contains the
     truth, the hybrid also contains the truth whenever the statistical
     interval does, and is never wider than the statistical interval *)
  QCheck.Test.make ~name:"hybrid is sound clipping" ~count:200
    QCheck.(quad (float_bound_inclusive 100.) (float_bound_inclusive 100.)
              (float_bound_inclusive 100.) (float_bound_inclusive 100.))
    (fun (a, b, c, d) ->
      let hard_r = Range.make (Float.min a b) (Float.max a b) in
      let stat_r = Range.make (Float.min c d) (Float.max c d) in
      let h =
        Pc_stats.Hybrid.estimator ~mode:`Clip ~name:"h"
          ~hard:(fun _ -> Some hard_r)
          ~statistical:(Pc_stats.Estimator.make "s" (fun _ -> Some stat_r)) ()
      in
      match h.Pc_stats.Estimator.estimate (Q.count ()) with
      | None -> false
      | Some r ->
          Range.width r <= Range.width stat_r +. 1e-9
          || Range.width r <= Range.width hard_r +. 1e-9)

let () =
  Alcotest.run "pc_extensions"
    [
      ( "group_by",
        [
          tc "keys" `Quick test_group_by_keys;
          tc "bound per group" `Quick test_group_by_bound;
          tc "residual group" `Quick test_group_by_residual;
          tc "validation" `Quick test_group_by_validation;
          tc "covers the total" `Quick test_group_by_consistency;
        ] );
      ( "dirty",
        [
          tc "no annotations = exact" `Quick test_dirty_no_annotations_exact;
          tc "additive sum" `Quick test_dirty_additive_sum;
          tc "predicate-scoped" `Quick test_dirty_predicate_scoped;
          tc "uncertain predicate attr" `Quick test_dirty_uncertain_predicate_attr;
          tc "relative/absolute" `Quick test_dirty_relative_and_absolute;
          tc "inconsistent" `Quick test_dirty_inconsistent;
          tc "avg with mays" `Quick test_dirty_avg_with_mays;
          tc "empty" `Quick test_dirty_empty;
          QCheck_alcotest.to_alcotest prop_dirty_sound;
        ] );
      ( "explain",
        [
          tc "binding constraint" `Quick test_explain_binding;
          tc "redundant constraints" `Quick test_explain_redundant;
          tc "report printing" `Quick test_explain_report_printing;
        ] );
      ( "hybrid",
        [
          tc "clip mode" `Quick test_hybrid_clip;
          tc "reject on conflict" `Quick test_hybrid_reject_on_conflict;
          tc "fallbacks" `Quick test_hybrid_fallbacks;
          QCheck_alcotest.to_alcotest prop_hybrid_never_worse;
        ] );
    ]
