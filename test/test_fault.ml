(* The fault-injection harness: deterministic schedules, and the chaos
   soundness property — under any seeded fault schedule the bound engine
   still returns a sound, provenance-tagged answer; no injected
   exception ever escapes. *)

open Pc_core
module B = Pc_budget.Budget
module F = Pc_fault.Fault
module I = Pc_interval.Interval
module Atom = Pc_predicate.Atom
module Pred = Pc_predicate.Pred
module Q = Pc_query.Query
module R = Pc_util.Rng

let tc = Alcotest.test_case
let mk ?name pred values freq = Pc.make ?name ~pred ~values ~freq ()

(* ----------------------- schedule mechanics -------------------------- *)

let test_disabled_is_noop () =
  F.disable ();
  Alcotest.(check bool) "disabled" false (F.enabled ());
  Alcotest.(check bool) "fire is false" false (F.fire F.Sat_fail);
  (* a point never raises when disabled *)
  F.point F.Sat_fail;
  F.slow_point ();
  Alcotest.(check (float 0.)) "no skew" 0. (F.clock_skew_s ())

let fire_sequence cfg n site =
  F.with_faults cfg (fun () -> List.init n (fun _ -> F.fire site))

let test_deterministic_replay () =
  let cfg = F.config ~seed:42 [ (F.Sat_fail, 0.5) ] in
  let a = fire_sequence cfg 64 F.Sat_fail in
  let b = fire_sequence cfg 64 F.Sat_fail in
  Alcotest.(check (list bool)) "same seed, same schedule" a b;
  Alcotest.(check bool) "schedule is not constant" true
    (List.exists Fun.id a && List.exists (fun x -> not x) a);
  let c = fire_sequence (F.config ~seed:43 [ (F.Sat_fail, 0.5) ]) 64 F.Sat_fail in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_rate_extremes () =
  let never = fire_sequence (F.config ~seed:1 [ (F.Sat_fail, 0.) ]) 50 F.Sat_fail in
  Alcotest.(check bool) "rate 0 never fires" false (List.exists Fun.id never);
  let always =
    fire_sequence (F.config ~seed:1 [ (F.Sat_fail, 1.) ]) 50 F.Sat_fail
  in
  Alcotest.(check bool) "rate 1 always fires" true (List.for_all Fun.id always);
  (* unlisted sites default to rate 0 *)
  let other = fire_sequence (F.config ~seed:1 [ (F.Sat_fail, 1.) ]) 50 F.Lp_doubt in
  Alcotest.(check bool) "unlisted site silent" false (List.exists Fun.id other)

let test_counters_survive_disable () =
  let cfg = F.config ~seed:9 [ (F.Sock_tear, 1.) ] in
  F.with_faults cfg (fun () ->
      ignore (F.fire F.Sock_tear);
      ignore (F.fire F.Sock_tear));
  Alcotest.(check bool) "disabled after with_faults" false (F.enabled ());
  Alcotest.(check int) "counts readable after disable" 2 (F.injected F.Sock_tear)

let test_config_of_string () =
  (match F.config_of_string "seed=7,sat_fail=0.25,slow_ms=5,skew_s=2" with
  | Error e -> Alcotest.fail e
  | Ok cfg ->
      Alcotest.(check int) "seed" 7 cfg.F.seed;
      Alcotest.(check (float 1e-9)) "slow" 0.005 cfg.F.slow_s;
      Alcotest.(check (float 1e-9)) "skew" 2. cfg.F.skew_s;
      Alcotest.(check (float 1e-9)) "rate" 0.25 (List.assoc F.Sat_fail cfg.F.rates));
  (match F.config_of_string "sat_fail=2.0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rate out of [0,1] accepted");
  match F.config_of_string "bogus_site=0.5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted"

(* ----------------- injection sites degrade soundly -------------------- *)

let t1 =
  mk ~name:"t1"
    [ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 12.)) ]
    [ ("price", I.closed 0.99 129.99) ]
    (50, 100)

let t2 =
  mk ~name:"t2"
    [ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 13.)) ]
    [ ("price", I.closed 0.99 149.99) ]
    (75, 125)

let overlapping = Pc_set.make [ t1; t2 ]
let count = Q.count ()

let range_of = function
  | Bounds.Range r -> r
  | Bounds.Empty -> Alcotest.fail "unexpected Empty"
  | Bounds.Infeasible -> Alcotest.fail "unexpected Infeasible"

let exact = lazy (range_of (Bounds.bound overlapping count))

let check_contains (d : Range.t) =
  let e = Lazy.force exact in
  Alcotest.(check bool) "lo sound" true (d.Range.lo <= e.Range.lo +. 1e-6);
  Alcotest.(check bool) "hi sound" true (d.Range.hi >= e.Range.hi -. 1e-6)

let test_sat_fail_falls_to_floor () =
  ignore (Lazy.force exact);
  let o =
    F.with_faults
      (F.config ~seed:3 [ (F.Sat_fail, 1.) ])
      (fun () -> Bounds.bound_budgeted overlapping count)
  in
  Alcotest.(check bool) "degraded provenance" true
    (Bounds.provenance_order o.Bounds.stats.Bounds.provenance > 0);
  check_contains (range_of o.Bounds.answer);
  Alcotest.(check bool) "injections recorded" true (F.injected F.Sat_fail > 0)

let test_lp_doubt_keeps_answer () =
  (* forced cold fallback is the existing numeric-doubt soundness path:
     slower, same optimum *)
  ignore (Lazy.force exact);
  let o =
    F.with_faults
      (F.config ~seed:5 [ (F.Lp_doubt, 1.) ])
      (fun () -> Bounds.bound_budgeted overlapping count)
  in
  let r = range_of o.Bounds.answer in
  let e = Lazy.force exact in
  Alcotest.(check (float 1e-6)) "lo unchanged" e.Range.lo r.Range.lo;
  Alcotest.(check (float 1e-6)) "hi unchanged" e.Range.hi r.Range.hi

let test_clock_skew_only_degrades () =
  ignore (Lazy.force exact);
  let o =
    F.with_faults
      (F.config ~seed:11 ~skew_s:3600. [ (F.Clock_skew, 1.) ])
      (fun () ->
        let b = B.start (B.spec ~timeout:30. ()) in
        Bounds.bound_budgeted ~budget:b overlapping count)
  in
  (* an hour of skew against a 30 s deadline: expired on arrival *)
  Alcotest.(check bool) "deadline hit" true o.Bounds.stats.Bounds.deadline_hit;
  check_contains (range_of o.Bounds.answer)

(* -------------------- qcheck: chaos soundness ------------------------- *)
(* Mirrors test_budget's generators so the property quantifies over the
   same space, now with a fault schedule layered on top of the crushed
   budgets. *)

let random_pc rng i =
  let pred =
    if R.int rng 4 = 0 then Pred.tt
    else
      let lo = float_of_int (R.int rng 10) in
      let w = float_of_int (1 + R.int rng 10) in
      [ Atom.Num_range ("x", I.closed lo (lo +. w)) ]
  in
  let values =
    if R.int rng 4 = 0 then []
    else
      let vlo = float_of_int (R.int rng 20 - 10) in
      let vw = float_of_int (R.int rng 15) in
      [ ("v", I.closed vlo (vlo +. vw)) ]
  in
  let ku = R.int rng 8 in
  let kl = if R.int rng 3 = 0 then min ku (R.int rng 4) else 0 in
  mk ~name:(Printf.sprintf "p%d" i) pred values (kl, ku)

let random_set rng = Pc_set.make (List.init (2 + R.int rng 3) (random_pc rng))

let random_query rng =
  let where_ =
    if R.int rng 2 = 0 then Pred.tt
    else
      let lo = float_of_int (R.int rng 12) in
      let w = float_of_int (1 + R.int rng 8) in
      [ Atom.Num_range ("x", I.closed lo (lo +. w)) ]
  in
  match R.int rng 5 with
  | 0 -> Q.count ~where_ ()
  | 1 -> Q.sum ~where_ "v"
  | 2 -> Q.avg ~where_ "v"
  | 3 -> Q.min_ ~where_ "v"
  | _ -> Q.max_ ~where_ "v"

let le_tol a b =
  a <= b
  || Float.is_finite a && Float.is_finite b
     && a -. b <= 1e-6 *. Float.max 1. (Float.abs b)

let sound ~exact ~degraded =
  match (exact, degraded) with
  | Bounds.Infeasible, _ -> true
  | Bounds.Empty, (Bounds.Empty | Bounds.Range _) -> true
  | Bounds.Empty, Bounds.Infeasible -> false
  | Bounds.Range r, Bounds.Range d ->
      le_tol d.Range.lo r.Range.lo && le_tol r.Range.hi d.Range.hi
  | Bounds.Range _, (Bounds.Empty | Bounds.Infeasible) -> false

let answer_to_string = function
  | Bounds.Range r -> Range.to_string r
  | Bounds.Empty -> "empty"
  | Bounds.Infeasible -> "infeasible"

let random_schedule rng =
  let rate site = (site, float_of_int (R.int rng 11) /. 10.) in
  F.config ~seed:(R.int rng 10_000)
    ~slow_s:(float_of_int (R.int rng 3) *. 1e-4)
    ~skew_s:(float_of_int (R.int rng 100))
    [
      rate F.Sat_fail;
      rate F.Sat_slow;
      rate F.Lp_doubt;
      rate F.Clock_skew;
    ]

let specs =
  [
    ("unlimited", B.unlimited_spec);
    ("nodes=0", B.spec ~nodes:0 ());
    ("sat=0", B.spec ~sat_calls:0 ());
    ("all-crushed", B.spec ~timeout:0. ~cells:1 ~sat_calls:0 ~nodes:0 ~iters:1 ());
  ]

let prop_chaos_soundness =
  QCheck.Test.make
    ~name:"any fault schedule: sound answer, valid provenance, no raise"
    ~count:200 QCheck.small_int (fun seed ->
      let rng = R.create (seed + 271) in
      let set = random_set rng in
      let query = random_query rng in
      let exact = Bounds.bound set query in
      let cfg = random_schedule rng in
      List.for_all
        (fun (label, spec) ->
          let o =
            try
              F.with_faults cfg (fun () ->
                  Bounds.bound_budgeted ~budget:(B.start spec) set query)
            with e ->
              QCheck.Test.fail_reportf "budget %s: escaped exception %s" label
                (Printexc.to_string e)
          in
          let rung =
            Bounds.provenance_order o.Bounds.stats.Bounds.provenance
          in
          (rung >= 0 && rung <= 3
          || QCheck.Test.fail_reportf "budget %s: bad provenance" label)
          &&
          (sound ~exact ~degraded:o.Bounds.answer
          || QCheck.Test.fail_reportf
               "budget %s unsound under faults on %s: exact %s, got %s" label
               (Q.to_string query) (answer_to_string exact)
               (answer_to_string o.Bounds.answer)))
        specs)

let () =
  Alcotest.run "pc_fault"
    [
      ( "schedule",
        [
          tc "disabled is a no-op" `Quick test_disabled_is_noop;
          tc "deterministic replay" `Quick test_deterministic_replay;
          tc "rate extremes" `Quick test_rate_extremes;
          tc "counters survive disable" `Quick test_counters_survive_disable;
          tc "config_of_string" `Quick test_config_of_string;
        ] );
      ( "sites",
        [
          tc "sat failure falls to the floor" `Quick test_sat_fail_falls_to_floor;
          tc "lp doubt keeps the optimum" `Quick test_lp_doubt_keeps_answer;
          tc "clock skew only degrades" `Quick test_clock_skew_only_degrades;
        ] );
      ("chaos", [ QCheck_alcotest.to_alcotest prop_chaos_soundness ]);
    ]
