(* Interval-FDD decomposition against the DFS reference oracle, plus the
   interval-edge splitting behaviour at shared endpoints. *)

open Pc_core
module I = Pc_interval.Interval
module Atom = Pc_predicate.Atom
module Pred = Pc_predicate.Pred
module Fdd = Pc_predicate.Fdd
module V = Pc_data.Value

let tc = Alcotest.test_case
let mk ?name pred values freq = Pc.make ?name ~pred ~values ~freq ()

let actives cells = List.map (fun c -> c.Cells.active) cells

let same_decomposition ?query_pred set =
  let oracle, _ = Cells.decompose ~strategy:Cells.Dfs_rewrite ?query_pred set in
  let fdd, stats = Cells.decompose ~strategy:Cells.Fdd ?query_pred set in
  if stats.Cells.sat_calls <> 0 then
    Alcotest.failf "fdd strategy made %d solver calls" stats.Cells.sat_calls;
  List.length oracle = List.length fdd
  && List.for_all2
       (fun (a : Cells.cell) (b : Cells.cell) ->
         a.Cells.active = b.Cells.active && a.Cells.expr = b.Cells.expr)
       oracle fdd

(* ------------------- shared-endpoint interval splitting ------------- *)

let test_shared_endpoint_closed () =
  (* [0,10] and [10,20] share x = 10: the singleton cell [10,10] is
     active in both, so three cells exist. *)
  let p0 = mk ~name:"a" [ Atom.between "x" 0. 10. ] [] (0, 5) in
  let p1 = mk ~name:"b" [ Atom.between "x" 10. 20. ] [] (0, 5) in
  let set = Pc_set.make [ p0; p1 ] in
  let cells, _ = Cells.decompose ~strategy:Cells.Fdd set in
  Alcotest.(check (list (list int)))
    "three cells, both-active singleton first"
    [ [ 0; 1 ]; [ 0 ]; [ 1 ] ]
    (actives cells);
  Alcotest.(check bool) "matches oracle" true (same_decomposition set)

let test_shared_endpoint_half_open () =
  (* [0,10) and [10,20] abut without overlapping: no shared cell. *)
  let p0 =
    mk ~name:"a"
      [ Atom.Num_range ("x", I.make_exn (I.Closed 0.) (I.Open 10.)) ]
      [] (0, 5)
  in
  let p1 = mk ~name:"b" [ Atom.between "x" 10. 20. ] [] (0, 5) in
  let set = Pc_set.make [ p0; p1 ] in
  let cells, _ = Cells.decompose ~strategy:Cells.Fdd set in
  Alcotest.(check (list (list int)))
    "two disjoint cells" [ [ 0 ]; [ 1 ] ] (actives cells);
  Alcotest.(check bool) "matches oracle" true (same_decomposition set)

let test_refine_splits_shared_endpoints () =
  let pieces = I.refine [ I.closed 0. 10.; I.closed 10. 20. ] in
  Alcotest.(check (list string))
    "five pieces, singleton at the shared endpoint"
    [ "(-inf, 0)"; "[0, 10)"; "[10, 10]"; "(10, 20]"; "(20, +inf)" ]
    (List.map I.to_string pieces);
  (* ascending partition: neighbours abut *)
  let rec check_abuts = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s abuts %s" (I.to_string a) (I.to_string b))
          true (I.abuts a b);
        check_abuts rest
    | _ -> ()
  in
  check_abuts pieces

(* --------------------------- fixed cases ---------------------------- *)

let test_paper_example () =
  let t1 =
    mk ~name:"t1"
      [ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 12.)) ]
      [ ("price", I.closed 0.99 129.99) ]
      (50, 100)
  in
  let t2 =
    mk ~name:"t2"
      [ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 13.)) ]
      [ ("price", I.closed 0.99 149.99) ]
      (75, 125)
  in
  let set = Pc_set.make [ t1; t2 ] in
  let cells, _ = Cells.decompose ~strategy:Cells.Fdd set in
  Alcotest.(check (list (list int)))
    "cells of the §4.4 example" [ [ 0; 1 ]; [ 1 ] ] (actives cells);
  Alcotest.(check bool) "matches oracle" true (same_decomposition set)

let test_categorical_and_query () =
  let chi =
    mk ~name:"chi" [ Atom.cat_eq "branch" "Chicago" ] [] (0, 5)
  in
  let not_ny =
    mk ~name:"not-ny" [ Atom.Cat_neq ("branch", "NY") ] [] (0, 7)
  in
  let cheap = mk ~name:"cheap" [ Atom.at_most "price" 100. ] [] (0, 9) in
  let set = Pc_set.make [ chi; not_ny; cheap ] in
  Alcotest.(check bool) "no query" true (same_decomposition set);
  Alcotest.(check bool) "numeric query" true
    (same_decomposition ~query_pred:[ Atom.at_least "price" 50. ] set);
  Alcotest.(check bool) "categorical query" true
    (same_decomposition ~query_pred:[ Atom.cat_eq "branch" "Chicago" ] set);
  Alcotest.(check bool) "excluding query" true
    (same_decomposition ~query_pred:[ Atom.Cat_neq ("branch", "Chicago") ] set);
  Alcotest.(check bool) "unsat query" true
    (same_decomposition
       ~query_pred:
         [ Atom.at_least "price" 200.; Atom.at_most "price" 100. ]
       set)

let test_sharing () =
  (* Ten copies of the same predicate share one chain: the diagram stays
     tiny even though there are 2¹⁰ subsets. *)
  let pred = [ Atom.between "x" 0. 10. ] in
  let fdd =
    Fdd.compile (Array.init 10 (fun _ -> pred))
  in
  Alcotest.(check bool)
    (Printf.sprintf "node count stays small (%d)" (Fdd.n_nodes fdd))
    true
    (Fdd.n_nodes fdd < 40);
  Alcotest.(check (list (list int)))
    "one all-active cell"
    [ [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] ]
    (Fdd.cells fdd)

let test_route () =
  let schema =
    Pc_data.Schema.of_names
      [ ("branch", Pc_data.Schema.Categorical); ("price", Pc_data.Schema.Numeric) ]
  in
  let preds =
    [|
      [ Atom.cat_eq "branch" "Chicago"; Atom.at_most "price" 100. ];
      [ Atom.Cat_neq ("branch", "NY") ];
      [ Atom.greater_than "price" 50. ];
    |]
  in
  let fdd = Fdd.compile preds in
  let rows =
    [
      [| V.Str "Chicago"; V.Num 80. |];
      [| V.Str "Chicago"; V.Num 120. |];
      [| V.Str "NY"; V.Num 60. |];
      [| V.Str "Trenton"; V.Num 10. |];
    ]
  in
  List.iter
    (fun row ->
      let expect =
        List.filter
          (fun i -> Pred.eval schema preds.(i) row)
          [ 0; 1; 2 ]
      in
      Alcotest.(check (list int)) "route = per-predicate eval" expect
        (Fdd.route fdd schema row))
    rows

let test_route_open_universe () =
  (* a row off every predicate walks to the open-universe leaf: its
     active set is empty, so streaming ingestion charges it to no PC's
     missing-row budget *)
  let schema =
    Pc_data.Schema.of_names
      [ ("branch", Pc_data.Schema.Categorical); ("price", Pc_data.Schema.Numeric) ]
  in
  let preds =
    [|
      [ Atom.cat_eq "branch" "Chicago" ];
      [ Atom.between "price" 0. 100. ];
    |]
  in
  let fdd = Fdd.compile preds in
  Alcotest.(check (list int))
    "off-universe row routes nowhere" []
    (Fdd.route fdd schema [| V.Str "NY"; V.Num 500. |]);
  (* boundary sanity around the same leaf structure *)
  Alcotest.(check (list int))
    "edge of the price interval still routes" [ 1 ]
    (Fdd.route fdd schema [| V.Str "NY"; V.Num 100. |]);
  Alcotest.(check (list int))
    "both predicates" [ 0; 1 ]
    (Fdd.route fdd schema [| V.Str "Chicago"; V.Num 40. |])

(* ------------------------- qcheck oracle ----------------------------- *)

(* Random PC sets over two numeric attributes and one categorical one;
   attribute kinds are fixed by name so numeric/categorical use never
   clashes. Up to 12 PCs — beyond the reach of the naive enumerator but
   cheap for both DFS and FDD. *)
let random_pc_set rng k =
  let branches = [ "a"; "b"; "c"; "d" ] in
  let pick l = List.nth l (Pc_util.Rng.int rng (List.length l)) in
  let num_atom attr =
    let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:80. in
    let w = Pc_util.Rng.uniform rng ~lo:5. ~hi:40. in
    match Pc_util.Rng.int rng 4 with
    | 0 -> Atom.Num_range (attr, I.make_exn (I.Closed lo) (I.Open (lo +. w)))
    | 1 -> Atom.at_least attr lo
    | 2 -> Atom.at_most attr (lo +. w)
    | _ -> Atom.between attr lo (lo +. w)
  in
  let cat_atom () =
    match Pc_util.Rng.int rng 4 with
    | 0 -> Atom.cat_eq "branch" (pick branches)
    | 1 -> Atom.Cat_neq ("branch", pick branches)
    | 2 -> Atom.Cat_in ("branch", [ pick branches; pick branches ])
    | _ -> Atom.Cat_not_in ("branch", [ pick branches; pick branches ])
  in
  let atom () =
    match Pc_util.Rng.int rng 3 with
    | 0 -> num_atom "utc"
    | 1 -> num_atom "price"
    | _ -> cat_atom ()
  in
  let pcs =
    List.init k (fun i ->
        let n_atoms = 1 + Pc_util.Rng.int rng 2 in
        mk
          ~name:(Printf.sprintf "p%d" i)
          (List.init n_atoms (fun _ -> atom ()))
          []
          (0, 1 + Pc_util.Rng.int rng 20))
  in
  Pc_set.make pcs

let random_query rng =
  match Pc_util.Rng.int rng 4 with
  | 0 -> Pred.tt
  | 1 -> [ Atom.between "utc" 20. 60. ]
  | 2 -> [ Atom.cat_eq "branch" "a" ]
  | _ -> [ Atom.at_least "price" 40.; Atom.Cat_neq ("branch", "b") ]

let prop_fdd_matches_dfs =
  QCheck.Test.make
    ~name:"FDD decomposition ≡ DFS oracle (cells, order, exprs)" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let k = 1 + Pc_util.Rng.int rng 12 in
      let set = random_pc_set rng k in
      let query_pred = random_query rng in
      same_decomposition ~query_pred set)

let prop_route_matches_eval =
  QCheck.Test.make ~name:"row routing ≡ per-predicate evaluation" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let k = 1 + Pc_util.Rng.int rng 8 in
      let set = random_pc_set rng k in
      let preds =
        Array.of_list (List.map (fun pc -> pc.Pc.pred) (Pc_set.pcs set))
      in
      let fdd = Fdd.compile preds in
      let schema =
        Pc_data.Schema.of_names
          [
            ("utc", Pc_data.Schema.Numeric);
            ("price", Pc_data.Schema.Numeric);
            ("branch", Pc_data.Schema.Categorical);
          ]
      in
      List.for_all
        (fun _ ->
          let row =
            [|
              V.Num (Pc_util.Rng.uniform rng ~lo:(-10.) ~hi:130.);
              V.Num (Pc_util.Rng.uniform rng ~lo:(-10.) ~hi:130.);
              V.Str (List.nth [ "a"; "b"; "c"; "d"; "zz" ] (Pc_util.Rng.int rng 5));
            |]
          in
          let expect =
            List.filter
              (fun i -> Pred.eval schema preds.(i) row)
              (List.init (Array.length preds) Fun.id)
          in
          Fdd.route fdd schema row = expect)
        (List.init 20 Fun.id))

let () =
  Alcotest.run "pc_fdd"
    [
      ( "splitting",
        [
          tc "shared closed endpoint" `Quick test_shared_endpoint_closed;
          tc "abutting half-open" `Quick test_shared_endpoint_half_open;
          tc "Interval.refine at shared endpoints" `Quick
            test_refine_splits_shared_endpoints;
        ] );
      ( "decomposition",
        [
          tc "paper example" `Quick test_paper_example;
          tc "categorical + query pushdown" `Quick test_categorical_and_query;
          tc "hash-cons sharing" `Quick test_sharing;
          tc "row routing" `Quick test_route;
          tc "open-universe leaf routes to no PC" `Quick
            test_route_open_universe;
        ] );
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest prop_fdd_matches_dfs;
          QCheck_alcotest.to_alcotest prop_route_matches_eval;
        ] );
    ]
