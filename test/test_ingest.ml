(* Streaming ingestion: columnar batches, the snapshot-isolated stream,
   delta-scoped cache invalidation, the server's append/retract wire
   ops, and the qcheck pin that the incremental engine's warm rebound
   equals a from-scratch bound on every prefix of random append/retract
   schedules. *)

open Pc_core
module Batch = Pc_data.Batch
module Relation = Pc_data.Relation
module Schema = Pc_data.Schema
module V = Pc_data.Value
module I = Pc_interval.Interval
module Atom = Pc_predicate.Atom
module Pred = Pc_predicate.Pred
module Fdd = Pc_predicate.Fdd
module Stream = Pc_store.Stream
module Cache = Pc_server.Cache
module Q = Pc_query.Query
module S = Pc_server.Server
module C = Pc_server.Client
module J = Pc_obs.Json

let tc = Alcotest.test_case
let mk ?name pred values freq = Pc.make ?name ~pred ~values ~freq ()

(* the §4.4 paper example, with value constraints so SUM is in scope *)
let paper_set () =
  let t1 =
    mk ~name:"t1"
      [ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 12.)) ]
      [ ("price", I.closed 0.99 129.99) ]
      (50, 100)
  in
  let t2 =
    mk ~name:"t2"
      [ Atom.Num_range ("utc", I.make_exn (I.Closed 11.) (I.Open 13.)) ]
      [ ("price", I.closed 0.99 149.99) ]
      (75, 125)
  in
  Pc_set.make [ t1; t2 ]

let compile_fdd set =
  Fdd.compile
    (Array.of_list (List.map (fun (pc : Pc.t) -> pc.Pc.pred) (Pc_set.pcs set)))

let schema_up =
  Schema.of_names [ ("utc", Schema.Numeric); ("price", Schema.Numeric) ]

let freqs set =
  List.map (fun (pc : Pc.t) -> (pc.Pc.freq_lo, pc.Pc.freq_hi)) (Pc_set.pcs set)

(* ------------------------------ batches ------------------------------ *)

let test_batch_roundtrip () =
  let b = Batch.of_csv_string "utc,price\n11.5,20.0\n12.4,99.0\n" in
  Alcotest.(check int) "rows" 2 (Batch.rows b);
  Alcotest.(check int) "arity" 2 (Schema.arity (Batch.schema b));
  (match Batch.row b 1 with
  | [| V.Num u; V.Num p |] ->
      Alcotest.(check (float 1e-9)) "utc" 12.4 u;
      Alcotest.(check (float 1e-9)) "price" 99.0 p
  | _ -> Alcotest.fail "row 1 has the wrong shape");
  Alcotest.(check int) "column length" 2
    (Array.length (Batch.column b "price"));
  let r = Batch.to_relation b in
  Alcotest.(check int) "relation cardinality" 2 (Relation.cardinality r);
  (* the checked constructor agrees with the inferred one *)
  let b2 = Batch.of_csv_string ~schema:schema_up "utc,price\n11.5,20.0\n" in
  Alcotest.(check int) "checked parse" 1 (Batch.rows b2)

let test_batch_validation () =
  match Batch.of_rows schema_up [ [| V.Num 11.5; V.Str "oops" |] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted"

(* ------------------------------- stream ------------------------------ *)

let test_stream_append_retract () =
  let set = paper_set () in
  let stream = Stream.create ~fdd:(compile_fdd set) set in
  let s0 = Stream.snapshot stream in
  Alcotest.(check int) "version 0" 0 s0.Stream.version;
  Alcotest.(check bool) "no certain side yet" true (s0.Stream.certain = None);
  (* 11.5 routes to both PCs, 12.4 to t2 only *)
  let b0 = Batch.of_csv_string "utc,price\n11.5,20.0\n12.4,99.0\n" in
  let info0, s1 =
    match Stream.append stream b0 with
    | Ok r -> r
    | Error e -> Alcotest.failf "append failed: %s" e
  in
  Alcotest.(check int) "batch id" 0 info0.Stream.batch_id;
  Alcotest.(check (list int)) "touched both PCs" [ 0; 1 ] info0.Stream.touched;
  Alcotest.(check (array int)) "per-PC delta" [| 1; 2 |] info0.Stream.delta;
  Alcotest.(check (array int)) "consumption" [| 1; 2 |] s1.Stream.consumed;
  Alcotest.(check (list (pair int int)))
    "residual budgets shrank" [ (49, 99); (73, 123) ]
    (freqs s1.Stream.residual);
  (match s1.Stream.certain with
  | Some r -> Alcotest.(check int) "certain rows" 2 (Relation.cardinality r)
  | None -> Alcotest.fail "append published no certain side");
  (* snapshot isolation: the pinned pre-append snapshot never moved *)
  Alcotest.(check int) "pinned version" 0 s0.Stream.version;
  Alcotest.(check (array int)) "pinned consumption" [| 0; 0 |] s0.Stream.consumed;
  (* a row off every predicate consumes nothing but lands certain-side *)
  let b1 = Batch.of_csv_string "utc,price\n20.0,1.0\n" in
  let info1, s2 =
    match Stream.append stream b1 with
    | Ok r -> r
    | Error e -> Alcotest.failf "open-universe append failed: %s" e
  in
  Alcotest.(check (list int)) "open-universe row touches nothing" []
    info1.Stream.touched;
  Alcotest.(check (array int)) "consumption unchanged" [| 1; 2 |]
    s2.Stream.consumed;
  (match s2.Stream.certain with
  | Some r -> Alcotest.(check int) "certain grew" 3 (Relation.cardinality r)
  | None -> Alcotest.fail "lost the certain side");
  (* retract the first batch: budget restored, its rows gone *)
  let info2, s3 =
    match Stream.retract stream ~batch_id:0 with
    | Ok r -> r
    | Error e -> Alcotest.failf "retract failed: %s" e
  in
  Alcotest.(check int) "retracted rows" 2 info2.Stream.rows;
  Alcotest.(check (array int)) "budget restored" [| 0; 0 |] s3.Stream.consumed;
  Alcotest.(check (list (pair int int)))
    "residual back to base" [ (50, 100); (75, 125) ]
    (freqs s3.Stream.residual);
  (match s3.Stream.certain with
  | Some r -> Alcotest.(check int) "survivor rows" 1 (Relation.cardinality r)
  | None -> Alcotest.fail "retract dropped the surviving batch");
  Alcotest.(check (list (pair int int)))
    "one live batch" [ (1, 1) ] (Stream.batches stream);
  (match Stream.retract stream ~batch_id:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double retract succeeded")

let test_stream_schema_mismatch () =
  let set = paper_set () in
  let stream = Stream.create ~fdd:(compile_fdd set) set in
  ignore (Stream.append stream (Batch.of_csv_string "utc,price\n11.5,20.0\n"));
  let v = Stream.snapshot stream in
  (match
     Stream.append stream (Batch.of_csv_string "humidity,light\n1.0,2.0\n")
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatched batch schema accepted");
  let v' = Stream.snapshot stream in
  Alcotest.(check int) "no version published on error" v.Stream.version
    v'.Stream.version

(* ------------------------------- cache ------------------------------- *)

let evictions () = Pc_obs.Registry.Counter.(get (make "cache.evictions"))

let test_cache_byte_cap () =
  Pc_obs.Registry.set_enabled true;
  let c = Cache.create ~capacity:1024 ~capacity_bytes:256 () in
  let before = evictions () in
  let big = String.make 100 'x' in
  Cache.store c "k0" big;
  Cache.store c "k1" big;
  Cache.store c "k2" big;
  (* three ~102-byte entries exceed 256 bytes: FIFO drops the oldest *)
  Alcotest.(check bool) "bytes under cap" true (Cache.bytes c <= 256);
  Alcotest.(check int) "oldest-out" 2 (Cache.size c);
  Alcotest.(check (option string)) "k0 evicted" None (Cache.find c "k0");
  Alcotest.(check (option string)) "k2 kept" (Some big) (Cache.find c "k2");
  Alcotest.(check bool) "cache.evictions counted" true (evictions () > before)

let test_cache_delta_invalidation () =
  let c = Cache.create () in
  let meta ?(missing_only = false) pcs where_ =
    { Cache.pcs; where_; missing_only }
  in
  let chicago = [ Atom.cat_eq "branch" "Chicago" ] in
  let ny = [ Atom.cat_eq "branch" "New York" ] in
  Cache.store c ~meta:(meta [ 0 ] chicago) "q_pc" "r_pc";
  Cache.store c ~meta:(meta [ 1 ] chicago) "q_row" "r_row";
  Cache.store c ~meta:(meta [ 1 ] ny) "q_safe" "r_safe";
  Cache.store c ~meta:(meta ~missing_only:true [ 1 ] chicago) "q_miss" "r_miss";
  Cache.store c "q_bare" "r_bare";
  let schema =
    Schema.of_names [ ("branch", Schema.Categorical); ("price", Schema.Numeric) ]
  in
  let rows = Some (schema, [| [| V.Str "Chicago"; V.Num 50. |] |]) in
  (* the batch consumed PC 0 and its row is a Chicago row: the PC-scoped
     entry, the selection-matching entry, and the no-meta entry go; the
     New-York entry and the missing-only entry (certain side invisible
     to it) survive *)
  let n = Cache.invalidate c ~version:1 ~touched:[ 0 ] ~rows in
  Alcotest.(check int) "three evictions" 3 n;
  Alcotest.(check (option string)) "pc overlap evicted" None (Cache.find c "q_pc");
  Alcotest.(check (option string)) "row match evicted" None (Cache.find c "q_row");
  Alcotest.(check (option string)) "no-meta evicted" None (Cache.find c "q_bare");
  Alcotest.(check (option string)) "disjoint entry survives" (Some "r_safe")
    (Cache.find c "q_safe");
  Alcotest.(check (option string)) "missing-only ignores certain rows"
    (Some "r_miss") (Cache.find c "q_miss");
  (* a retraction with no certain rows in hand: only PC overlap applies *)
  let n = Cache.invalidate c ~version:2 ~touched:[ 1 ] ~rows:None in
  Alcotest.(check int) "pc-only sweep" 2 n;
  Alcotest.(check int) "empty but for nothing" 0 (Cache.size c)

(* The stale-store race: a reply computed against a pre-batch snapshot
   must not enter the cache after the batch's invalidation sweep — it
   would be served byte-identical at the new version. The fence is the
   pinned snapshot version carried by [store] against the high-water
   version advanced by [invalidate]. *)
let test_cache_version_fence () =
  let c = Cache.create () in
  Cache.store c ~version:0 "q_v0" "r_v0";
  Alcotest.(check (option string)) "fresh store lands" (Some "r_v0")
    (Cache.find c "q_v0");
  (* a batch publishes version 1 and sweeps (no meta: everything goes) *)
  ignore (Cache.invalidate c ~version:1 ~touched:[] ~rows:None);
  Alcotest.(check (option string)) "swept" None (Cache.find c "q_v0");
  (* the in-flight reply pinned at version 0 arrives late: dropped *)
  Cache.store c ~version:0 "q_stale" "r_stale";
  Alcotest.(check (option string)) "stale store fenced" None
    (Cache.find c "q_stale");
  (* a reply pinned at the published version stores normally *)
  Cache.store c ~version:1 "q_v1" "r_v1";
  Alcotest.(check (option string)) "current store lands" (Some "r_v1")
    (Cache.find c "q_v1");
  (* version-less stores (no streaming in play) are unconditional *)
  Cache.store c "q_bare" "r_bare";
  Alcotest.(check (option string)) "unversioned store lands" (Some "r_bare")
    (Cache.find c "q_bare")

(* Steady store→invalidate churn keeps the table under both caps, so
   capacity eviction never runs — the bookkeeping queue must be
   compacted on its own or it grows for the life of the server. *)
let test_cache_queue_compaction () =
  let c = Cache.create () in
  for i = 1 to 10_000 do
    Cache.store c (Printf.sprintf "k%d" i) "v";
    ignore (Cache.invalidate c ~version:i ~touched:[] ~rows:None)
  done;
  Alcotest.(check int) "table empty" 0 (Cache.size c);
  Alcotest.(check bool)
    (Printf.sprintf "queue compacted (len %d)" (Cache.queue_length c))
    true
    (Cache.queue_length c <= 64)

(* [before_publish] is the invalidation seam: it must observe the batch
   [info] while the old snapshot is still the visible one. *)
let test_append_invalidates_before_publish () =
  let set = paper_set () in
  let stream = Stream.create ~fdd:(compile_fdd set) set in
  let seen_version = ref (-1) in
  (match
     Stream.append stream
       (Batch.of_csv_string "utc,price\n11.5,20.0\n")
       ~before_publish:(fun info ->
         Alcotest.(check int) "info carries the version to publish" 1
           info.Stream.version;
         seen_version := (Stream.snapshot stream).Stream.version)
   with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  Alcotest.(check int) "hook ran before the new snapshot was visible" 0
    !seen_version;
  Alcotest.(check int) "publish still happened" 1
    (Stream.snapshot stream).Stream.version;
  let seen_retract = ref (-1) in
  (match
     Stream.retract stream ~batch_id:0 ~before_publish:(fun _ ->
         seen_retract := (Stream.snapshot stream).Stream.version)
   with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  Alcotest.(check int) "retract hook pre-publish too" 1 !seen_retract

(* --------------------------- server wire ops -------------------------- *)

let constraints_text =
  "constraint chicago_cap:\n\
  \  branch = 'Chicago' => price in [0.0, 149.99], count [0, 5];\n\
   constraint newyork_cap:\n\
  \  branch = 'New York' => price in [0.0, 100.0], count [0, 10];\n"

let start () =
  let srv = S.create { S.default_config with S.port = 0 } in
  (match S.load_dataset srv ~name:"default" ~constraints:constraints_text () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (srv, Thread.create S.run srv)

let stop (srv, th) =
  S.initiate_drain srv;
  Thread.join th

let req c line =
  match C.request c line with
  | Some reply -> (
      match J.parse reply with
      | Ok v -> (reply, v)
      | Error e -> Alcotest.failf "bad reply %S: %s" reply e)
  | None -> Alcotest.fail "connection closed instead of replying"

let ok v = match J.member "ok" v with Some (J.Bool b) -> b | _ -> false

let range v =
  match J.member "answer" v with
  | Some a -> (
      match
        ( Option.bind (J.member "lo" a) J.to_num,
          Option.bind (J.member "hi" a) J.to_num )
      with
      | Some lo, Some hi -> (lo, hi)
      | _ -> Alcotest.fail "answer without lo/hi")
  | None -> Alcotest.fail "reply without answer"

let test_server_append_invalidation () =
  Pc_obs.Registry.set_enabled true;
  let ((srv, _) as s) = start () in
  let c = C.connect ~host:"127.0.0.1" ~port:(S.port srv) in
  let q_chi = {|{"op":"bound","query":"SELECT SUM(price) WHERE branch = 'Chicago'"}|} in
  let q_ny = {|{"op":"bound","query":"SELECT COUNT(*) WHERE branch = 'New York'"}|} in
  let chi1, chi1v = req c q_chi in
  let ny1, _ = req c q_ny in
  (* both cached now: identical bytes on repeat *)
  let chi1', _ = req c q_chi in
  Alcotest.(check string) "warm repeat is a byte-identical hit" chi1 chi1';
  let _, app =
    req c {|{"op":"append","csv":"branch,price\nChicago,50.0\n"}|}
  in
  Alcotest.(check bool) "append ok" true (ok app);
  Alcotest.(check (option (float 1e-9)))
    "only the Chicago PC was touched" (Some 0.)
    (match J.member "touched" app with
    | Some (J.Arr [ t ]) -> J.to_num t
    | _ -> None);
  (* the New-York entry survived the delta: served from cache verbatim *)
  let ny2, _ = req c q_ny in
  Alcotest.(check string) "unaffected query still cached" ny1 ny2;
  (* the Chicago entry was evicted and recomputed: the certain row
     shifts the range by +50 while the missing budget drops 5 -> 4 *)
  let chi2, chi2v = req c q_chi in
  Alcotest.(check bool) "affected reply recomputed" true (chi1 <> chi2);
  let lo1, hi1 = range chi1v and lo2, hi2 = range chi2v in
  Alcotest.(check (float 1e-6)) "lo shifted by the appended row" (lo1 +. 50.) lo2;
  Alcotest.(check (float 1e-6)) "hi lost one budget row, gained the row"
    (hi1 -. 149.99 +. 50.) hi2;
  (* an explicit per-request deadline keeps the degradation contract
     even though the warm engine could answer exactly: on an
     overlapping set (no greedy fast path) timeout_ms 0 must still
     come back trivial, not an instant warm-engine exact *)
  let over =
    "constraint t1:\n\
    \  utc between 11.0 and 12.0 => price in [0.99, 129.99], count [50, 100];\n\
     constraint t2:\n\
    \  utc between 11.0 and 13.0 => price in [0.99, 149.99], count [75, 125];\n"
  in
  let _, l =
    req c
      (J.to_string
         (J.Obj
            [
              ("op", J.Str "load");
              ("name", J.Str "over");
              ("constraints", J.Str over);
            ]))
  in
  Alcotest.(check bool) "load over ok" true (ok l);
  let _, wz =
    req c {|{"op":"bound","query":"SELECT COUNT(*)","dataset":"over"}|}
  in
  Alcotest.(check (option string))
    "no-deadline request stays exact" (Some "exact")
    (Option.bind (J.member "provenance" wz) J.to_str);
  let _, tz =
    req c
      {|{"op":"bound","query":"SELECT COUNT(*)","dataset":"over","timeout_ms":0}|}
  in
  Alcotest.(check (option string))
    "clipped budget still degrades" (Some "trivial")
    (Option.bind (J.member "provenance" tz) J.to_str);
  (* retraction restores the original answer *)
  let _, ret = req c {|{"op":"retract","batch":0}|} in
  Alcotest.(check bool) "retract ok" true (ok ret);
  let _, chi3v = req c q_chi in
  let lo3, hi3 = range chi3v in
  Alcotest.(check (float 1e-6)) "lo restored" lo1 lo3;
  Alcotest.(check (float 1e-6)) "hi restored" hi1 hi3;
  C.close c;
  stop s

(* --------------------- incremental ≡ from-scratch --------------------- *)

(* Random overlapping 1-attribute sets (the shape that defeats the
   disjoint fast path and exercises the LP), random append/retract
   schedules, and after EVERY operation: the warm engine's rebound must
   equal Bounds.bound on the snapshot's residual set. *)

let random_overlap_set rng n =
  let pcs =
    List.init n (fun i ->
        let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:(6. *. float_of_int n) in
        let w = Pc_util.Rng.uniform rng ~lo:20. ~hi:50. in
        let kl = Pc_util.Rng.int rng 3 in
        mk
          ~name:(Printf.sprintf "p%d" i)
          [ Atom.between "x" lo (lo +. w) ]
          [ ("v", I.closed 0. 100.) ]
          (kl, kl + 1 + Pc_util.Rng.int rng 8))
  in
  Pc_set.make pcs

let schema_xv = Schema.of_names [ ("x", Schema.Numeric); ("v", Schema.Numeric) ]

let answers_close warm scratch =
  let rel a b =
    Float.abs (a -. b)
    <= 1e-6 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
  in
  match (warm, scratch) with
  | Some (Bounds.Range r1), Bounds.Range r2 ->
      rel r1.Range.lo r2.Range.lo && rel r1.Range.hi r2.Range.hi
  | Some Bounds.Empty, Bounds.Empty -> true
  | Some Bounds.Infeasible, Bounds.Infeasible -> true
  | _ -> false

let prop_incremental_matches_scratch =
  QCheck.Test.make
    ~name:"warm rebound ≡ from-scratch bound on every schedule prefix"
    ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let n = 3 + Pc_util.Rng.int rng 8 in
      let set = random_overlap_set rng n in
      let fdd = compile_fdd set in
      let query =
        if Pc_util.Rng.int rng 2 = 0 then Q.count () else Q.sum "v"
      in
      match Incremental.create ~fdd set query with
      | None -> true (* out of scope: the server takes the full path *)
      | Some eng ->
          let stream = Stream.create ~fdd set in
          let opts =
            { Bounds.default_opts with Bounds.strategy = Cells.Fdd }
          in
          let steps = 2 + Pc_util.Rng.int rng 6 in
          let ok = ref true in
          for _ = 1 to steps do
            let live = Stream.batches stream in
            (if live <> [] && Pc_util.Rng.int rng 4 = 0 then
               let id, _ = List.nth live (Pc_util.Rng.int rng (List.length live)) in
               match Stream.retract stream ~batch_id:id with
               | Ok _ -> ()
               | Error e -> Alcotest.failf "retract: %s" e
             else
               let rows =
                 List.init
                   (1 + Pc_util.Rng.int rng 3)
                   (fun _ ->
                     [|
                       V.Num
                         (Pc_util.Rng.uniform rng ~lo:(-10.)
                            ~hi:((6. *. float_of_int n) +. 60.));
                       V.Num (Pc_util.Rng.uniform rng ~lo:0. ~hi:100.);
                     |])
               in
               match Stream.append stream (Batch.of_rows schema_xv rows) with
               | Ok _ -> ()
               | Error e -> Alcotest.failf "append: %s" e);
            let snap = Stream.snapshot stream in
            let warm = Incremental.rebound eng ~consumed:snap.Stream.consumed in
            let scratch = Bounds.bound ~opts snap.Stream.residual query in
            ok := !ok && answers_close warm scratch
          done;
          !ok)

let () =
  Alcotest.run "pc_ingest"
    [
      ( "batch",
        [
          tc "csv roundtrip" `Quick test_batch_roundtrip;
          tc "kind validation" `Quick test_batch_validation;
        ] );
      ( "stream",
        [
          tc "append/retract with snapshot isolation" `Quick
            test_stream_append_retract;
          tc "schema mismatch publishes nothing" `Quick
            test_stream_schema_mismatch;
          tc "before_publish runs pre-swap" `Quick
            test_append_invalidates_before_publish;
        ] );
      ( "cache",
        [
          tc "byte-cap FIFO eviction" `Quick test_cache_byte_cap;
          tc "delta-scoped invalidation" `Quick test_cache_delta_invalidation;
          tc "stale-store version fence" `Quick test_cache_version_fence;
          tc "queue compaction under churn" `Quick test_cache_queue_compaction;
        ] );
      ( "server",
        [
          tc "append evicts only affected entries" `Quick
            test_server_append_invalidation;
        ] );
      ("oracle", [ QCheck_alcotest.to_alcotest prop_incremental_matches_scratch ]);
    ]
