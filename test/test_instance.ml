(* Instance materialization: sampled relations satisfy their constraint
   set; worst-case witnesses attain the computed upper bounds — the
   operational form of the paper's §4 tightness claim. *)

module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
module I = Pc_interval.Interval
open Pc_core

let tc = Alcotest.test_case
let check_float = Alcotest.(check (float 1e-4))

let schema =
  Pc_data.Schema.of_names
    [
      ("t", Pc_data.Schema.Numeric);
      ("g", Pc_data.Schema.Categorical);
      ("v", Pc_data.Schema.Numeric);
    ]

let mk ?name pred values freq = Pc.make ?name ~pred ~values ~freq ()

let paper_set =
  (* the §4.4 overlapping example *)
  Pc_set.make
    [
      mk ~name:"t1"
        [ Atom.Num_range ("t", I.make_exn (I.Closed 11.) (I.Open 12.)) ]
        [ ("v", I.closed 0.99 129.99) ]
        (50, 100);
      mk ~name:"t2"
        [ Atom.Num_range ("t", I.make_exn (I.Closed 11.) (I.Open 13.)) ]
        [ ("v", I.closed 0.99 149.99) ]
        (75, 125);
    ]

let test_sample_satisfies () =
  let rng = Pc_util.Rng.create 1 in
  for _ = 1 to 10 do
    match Instance.sample rng paper_set ~schema with
    | None -> Alcotest.fail "expected an instance"
    | Some rel ->
        Alcotest.(check bool) "instance satisfies the set" true
          (Pc_set.holds rel paper_set);
        Alcotest.(check bool) "instance is closed" true
          (Pc_set.closed_over rel paper_set)
  done

let test_sample_inside_bounds () =
  let rng = Pc_util.Rng.create 2 in
  let sum_range =
    match Bounds.bound paper_set (Q.sum "v") with
    | Bounds.Range r -> r
    | _ -> Alcotest.fail "expected range"
  in
  for _ = 1 to 10 do
    match Instance.sample rng paper_set ~schema with
    | None -> Alcotest.fail "expected an instance"
    | Some rel ->
        let truth = Option.get (Q.eval rel (Q.sum "v")) in
        Alcotest.(check bool) "sum inside computed range" true
          (Range.contains sum_range truth)
  done

let test_sample_infeasible () =
  let impossible =
    Pc_set.make
      [ mk [ Atom.between "t" 0. 1.; Atom.between "t" 5. 6. ] [] (3, 10) ]
  in
  let rng = Pc_util.Rng.create 3 in
  Alcotest.(check bool) "infeasible set has no instance" true
    (Instance.sample rng impossible ~schema = None);
  let conflicting =
    Pc_set.make
      [
        mk [ Atom.between "t" 0. 1. ] [] (10, 20);
        mk [ Atom.between "t" 0. 5. ] [] (0, 2);
      ]
  in
  Alcotest.(check bool) "conflicting frequencies have no instance" true
    (Instance.sample rng conflicting ~schema = None)

let test_witness_attains_sum () =
  match
    ( Instance.witness_max paper_set ~schema (Q.sum "v"),
      Bounds.bound paper_set (Q.sum "v") )
  with
  | Some witness, Bounds.Range r ->
      Alcotest.(check bool) "witness satisfies the set" true
        (Pc_set.holds witness paper_set);
      let attained = Option.get (Q.eval witness (Q.sum "v")) in
      (* tightness: the computed upper bound is attained (17748.75) *)
      check_float "upper bound attained" r.Range.hi attained
  | _ -> Alcotest.fail "expected witness and range"

let test_witness_attains_count () =
  match
    ( Instance.witness_max paper_set ~schema (Q.count ()),
      Bounds.bound paper_set (Q.count ()) )
  with
  | Some witness, Bounds.Range r ->
      check_float "count bound attained" r.Range.hi
        (float_of_int (Pc_data.Relation.cardinality witness))
  | _ -> Alcotest.fail "expected witness and range"

let test_witness_rejects_other_aggs () =
  Alcotest.(check bool) "avg rejected" true
    (try
       ignore (Instance.witness_max paper_set ~schema (Q.avg "v"));
       false
     with Invalid_argument _ -> true)

(* fuzzing in the converse direction: arbitrary hand-written PC sets ->
   instance -> the bound computed for the set must contain the instance's
   aggregates *)
let prop_converse_soundness =
  QCheck.Test.make
    ~name:"sampled instances of arbitrary PC sets stay inside the bounds"
    ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let k = 1 + Pc_util.Rng.int rng 4 in
      let pcs =
        List.init k (fun i ->
            let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:50. in
            let w = Pc_util.Rng.uniform rng ~lo:5. ~hi:30. in
            let vlo = Pc_util.Rng.uniform rng ~lo:(-20.) ~hi:20. in
            let vw = Pc_util.Rng.uniform rng ~lo:1. ~hi:25. in
            let kl = Pc_util.Rng.int rng 4 in
            mk
              ~name:(Printf.sprintf "p%d" i)
              [ Atom.between "t" lo (lo +. w) ]
              [ ("v", I.closed vlo (vlo +. vw)) ]
              (kl, kl + Pc_util.Rng.int rng 10))
      in
      let set = Pc_set.make pcs in
      match Instance.sample rng set ~schema with
      | None -> true (* randomly conflicting frequencies: fine *)
      | Some rel ->
          if not (Pc_set.holds rel set) then
            QCheck.Test.fail_report "instance violates its own set";
          let queries =
            [ Q.count (); Q.sum "v"; Q.avg "v"; Q.min_ "v"; Q.max_ "v" ]
          in
          List.for_all
            (fun q ->
              match (Bounds.bound set q, Q.eval rel q) with
              | Bounds.Infeasible, _ ->
                  QCheck.Test.fail_report "bound infeasible on realizable set"
              | Bounds.Empty, None -> true
              | Bounds.Empty, Some _ ->
                  QCheck.Test.fail_report "bound empty but instance has rows"
              | Bounds.Range _, None -> true
              | Bounds.Range r, Some truth ->
                  Range.contains r truth
                  || QCheck.Test.fail_reportf "%s: %s misses %g" (Q.to_string q)
                       (Range.to_string r) truth)
            queries)

let prop_witness_tightness =
  QCheck.Test.make
    ~name:"SUM upper bounds are attained by materialized witnesses" ~count:60
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let k = 1 + Pc_util.Rng.int rng 3 in
      let pcs =
        List.init k (fun i ->
            let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:40. in
            let w = Pc_util.Rng.uniform rng ~lo:5. ~hi:30. in
            let vlo = Pc_util.Rng.uniform rng ~lo:0. ~hi:20. in
            mk
              ~name:(Printf.sprintf "p%d" i)
              [ Atom.between "t" lo (lo +. w) ]
              [ ("v", I.closed vlo (vlo +. 10.)) ]
              (0, 1 + Pc_util.Rng.int rng 8))
      in
      let set = Pc_set.make pcs in
      match
        (Instance.witness_max set ~schema (Q.sum "v"), Bounds.bound set (Q.sum "v"))
      with
      | Some witness, Bounds.Range r when r.Range.hi_exact ->
          let attained = Option.get (Q.eval witness (Q.sum "v")) in
          Float.abs (attained -. r.Range.hi) <= 1e-4 *. Float.max 1. r.Range.hi
      | Some _, Bounds.Range _ -> true (* inexact search: attainment not promised *)
      | None, _ | _, (Bounds.Empty | Bounds.Infeasible) -> false)

let () =
  Alcotest.run "pc_instance"
    [
      ( "sampling",
        [
          tc "satisfies the set" `Quick test_sample_satisfies;
          tc "inside computed bounds" `Quick test_sample_inside_bounds;
          tc "infeasible sets" `Quick test_sample_infeasible;
        ] );
      ( "witness",
        [
          tc "attains SUM bound" `Quick test_witness_attains_sum;
          tc "attains COUNT bound" `Quick test_witness_attains_count;
          tc "rejects AVG/MIN/MAX" `Quick test_witness_rejects_other_aggs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_converse_soundness; prop_witness_tightness ] );
    ]
