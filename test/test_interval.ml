open Pc_interval
module I = Interval

let tc = Alcotest.test_case

let test_make () =
  Alcotest.(check bool) "valid closed" true (Option.is_some (I.make (I.Closed 1.) (I.Closed 2.)));
  Alcotest.(check bool) "point" true (Option.is_some (I.make (I.Closed 1.) (I.Closed 1.)));
  Alcotest.(check bool) "empty open point" false
    (Option.is_some (I.make (I.Open 1.) (I.Closed 1.)));
  Alcotest.(check bool) "inverted" false (Option.is_some (I.make (I.Closed 2.) (I.Closed 1.)));
  Alcotest.(check bool) "wrong-side infinities" false
    (Option.is_some (I.make I.Pos_inf I.Neg_inf));
  Alcotest.check_raises "non-finite endpoint"
    (Invalid_argument "Interval: non-finite endpoint value") (fun () ->
      ignore (I.make (I.Closed Float.nan) I.Pos_inf))

let test_contains () =
  let iv = I.make_exn (I.Open 0.) (I.Closed 10.) in
  Alcotest.(check bool) "excludes open endpoint" false (I.contains iv 0.);
  Alcotest.(check bool) "includes closed endpoint" true (I.contains iv 10.);
  Alcotest.(check bool) "interior" true (I.contains iv 5.);
  Alcotest.(check bool) "outside" false (I.contains iv 10.1);
  Alcotest.(check bool) "full contains everything" true (I.contains I.full (-1e30))

let test_intersect () =
  let a = I.closed 0. 10. and b = I.closed 5. 15. in
  (match I.intersect a b with
  | Some c ->
      Alcotest.(check (float 0.)) "lo" 5. (I.lo_float c);
      Alcotest.(check (float 0.)) "hi" 10. (I.hi_float c)
  | None -> Alcotest.fail "expected overlap");
  Alcotest.(check bool) "disjoint" false (I.overlaps (I.closed 0. 1.) (I.closed 2. 3.));
  (* touching at a point: closed/closed intersect, open/closed do not *)
  Alcotest.(check bool) "touching closed" true
    (I.overlaps (I.closed 0. 1.) (I.closed 1. 2.));
  Alcotest.(check bool) "touching open" false
    (I.overlaps (I.make_exn (I.Closed 0.) (I.Open 1.)) (I.closed 1. 2.))

let test_complement () =
  let iv = I.make_exn (I.Closed 2.) (I.Open 5.) in
  match I.complement iv with
  | [ below; above ] ->
      Alcotest.(check bool) "below excludes 2" false (I.contains below 2.);
      Alcotest.(check bool) "below includes 1.999" true (I.contains below 1.999);
      Alcotest.(check bool) "above includes 5" true (I.contains above 5.);
      Alcotest.(check bool) "above excludes 4.999" false (I.contains above 4.999)
  | other ->
      Alcotest.failf "expected two pieces, got %d" (List.length other)

let test_complement_rays () =
  Alcotest.(check int) "full has empty complement" 0
    (List.length (I.complement I.full));
  Alcotest.(check int) "ray has one piece" 1
    (List.length (I.complement (I.at_least 3.)))

let test_subset_hull () =
  Alcotest.(check bool) "subset" true (I.subset (I.closed 2. 3.) (I.closed 1. 4.));
  Alcotest.(check bool) "not subset" false (I.subset (I.closed 0. 3.) (I.closed 1. 4.));
  Alcotest.(check bool) "open within closed at endpoint" true
    (I.subset (I.make_exn (I.Open 1.) (I.Closed 4.)) (I.closed 1. 4.));
  Alcotest.(check bool) "closed not within open" false
    (I.subset (I.closed 1. 4.) (I.make_exn (I.Open 1.) (I.Closed 4.)));
  let h = I.hull (I.closed 0. 1.) (I.closed 5. 6.) in
  Alcotest.(check (float 0.)) "hull lo" 0. (I.lo_float h);
  Alcotest.(check (float 0.)) "hull hi" 6. (I.hi_float h)

let test_width_midpoint () =
  Alcotest.(check (float 0.)) "width" 3. (I.width (I.closed 1. 4.));
  Alcotest.(check bool) "unbounded width" true (I.width (I.at_least 0.) = infinity);
  Alcotest.(check (float 0.)) "midpoint" 2.5 (I.midpoint (I.closed 1. 4.));
  Alcotest.(check bool) "midpoint inside ray" true
    (I.contains (I.greater_than 7.) (I.midpoint (I.greater_than 7.)))

let test_pp () =
  Alcotest.(check string) "closed" "[1, 2]" (I.to_string (I.closed 1. 2.));
  Alcotest.(check string) "open ray" "(3, +inf)" (I.to_string (I.greater_than 3.))

(* --- properties --- *)

let endpoint_gen =
  QCheck.Gen.(
    frequency
      [
        (8, map (fun x -> I.Closed x) (float_bound_inclusive 100.));
        (4, map (fun x -> I.Open x) (float_bound_inclusive 100.));
      ])

let interval_gen =
  QCheck.Gen.(
    let lo_gen = frequency [ (1, return I.Neg_inf); (8, endpoint_gen) ] in
    let hi_gen = frequency [ (1, return I.Pos_inf); (8, endpoint_gen) ] in
    map2
      (fun lo hi -> I.make lo hi)
      lo_gen hi_gen
    |> map (function Some iv -> iv | None -> I.full))

let arb_interval = QCheck.make ~print:I.to_string interval_gen

let prop_intersect_comm =
  QCheck.Test.make ~name:"intersection commutes" ~count:500
    (QCheck.pair arb_interval arb_interval) (fun (a, b) ->
      match (I.intersect a b, I.intersect b a) with
      | Some x, Some y -> I.equal x y
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_intersect_sound =
  QCheck.Test.make ~name:"point in both iff in intersection" ~count:500
    (QCheck.triple arb_interval arb_interval (QCheck.float_bound_inclusive 100.))
    (fun (a, b, x) ->
      let in_both = I.contains a x && I.contains b x in
      match I.intersect a b with
      | Some c -> I.contains c x = in_both
      | None -> not in_both)

let prop_complement_partition =
  QCheck.Test.make ~name:"complement partitions the line" ~count:500
    (QCheck.pair arb_interval (QCheck.float_bound_inclusive 100.))
    (fun (a, x) ->
      let in_a = I.contains a x in
      let in_comp = List.exists (fun c -> I.contains c x) (I.complement a) in
      in_a <> in_comp)

let prop_subset_via_intersect =
  QCheck.Test.make ~name:"a subset b iff a ∩ b = a" ~count:500
    (QCheck.pair arb_interval arb_interval) (fun (a, b) ->
      let via_int =
        match I.intersect a b with Some c -> I.equal c a | None -> false
      in
      I.subset a b = via_int)

let prop_sample_member =
  QCheck.Test.make ~name:"samples are members" ~count:300 arb_interval (fun iv ->
      let rng = Pc_util.Rng.create 42 in
      let ok = ref true in
      for _ = 1 to 20 do
        if not (I.contains iv (I.sample rng iv)) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "pc_interval"
    [
      ( "interval",
        [
          tc "make" `Quick test_make;
          tc "contains" `Quick test_contains;
          tc "intersect" `Quick test_intersect;
          tc "complement" `Quick test_complement;
          tc "complement rays" `Quick test_complement_rays;
          tc "subset/hull" `Quick test_subset_hull;
          tc "width/midpoint" `Quick test_width_midpoint;
          tc "printing" `Quick test_pp;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_intersect_comm;
            prop_intersect_sound;
            prop_complement_partition;
            prop_subset_via_intersect;
            prop_sample_member;
          ] );
    ]
