open Pc_join
module I = Pc_interval.Interval
module Q = Pc_query.Query

let tc = Alcotest.test_case
let check_float = Alcotest.(check (float 1e-4))

let test_hypergraph () =
  let hg = Hypergraph.triangle in
  Alcotest.(check int) "three relations" 3 (Hypergraph.size hg);
  Alcotest.(check (list string)) "attrs" [ "a"; "b"; "c" ] (Hypergraph.attrs hg);
  Alcotest.(check (list string)) "covering a" [ "R"; "T" ] (Hypergraph.covering hg "a");
  Alcotest.(check bool) "mem" true (Hypergraph.mem hg "S");
  Alcotest.(check int) "chain size" 5 (Hypergraph.size (Hypergraph.chain 5));
  Alcotest.(check int) "4-clique has 6 edges" 6 (Hypergraph.size (Hypergraph.clique 4));
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Hypergraph.make: duplicate relation names") (fun () ->
      ignore
        (Hypergraph.make
           [
             { Hypergraph.name = "R"; attrs = [ "a" ] };
             { Hypergraph.name = "R"; attrs = [ "b" ] };
           ]))

let test_edge_cover_triangle () =
  let weights = [ ("R", 100.); ("S", 100.); ("T", 100.) ] in
  match Edge_cover.solve ~weights Hypergraph.triangle with
  | None -> Alcotest.fail "expected a cover"
  | Some cover ->
      (* optimal fractional cover of the triangle is (1/2, 1/2, 1/2) *)
      List.iter (fun (_, c) -> check_float "coefficient" 0.5 c) cover;
      check_float "bound is N^1.5" (100. ** 1.5)
        (Edge_cover.product_bound ~weights cover)

let test_edge_cover_chain () =
  let hg = Hypergraph.chain 5 in
  let weights = List.map (fun (r : Hypergraph.rel) -> (r.Hypergraph.name, 10.)) (Hypergraph.rels hg) in
  match Edge_cover.solve ~weights hg with
  | None -> Alcotest.fail "expected a cover"
  | Some cover ->
      (* odd chain: cover {R1, R3, R5} with coefficient 1 -> N^3 *)
      check_float "bound is N^3" 1000. (Edge_cover.product_bound ~weights cover)

let test_edge_cover_fixed () =
  let weights = [ ("R", 100.); ("S", 100.); ("T", 100.) ] in
  match Edge_cover.solve ~fixed:[ ("R", 1.) ] ~weights Hypergraph.triangle with
  | None -> Alcotest.fail "expected a cover"
  | Some cover ->
      check_float "fixed coefficient" 1. (List.assoc "R" cover);
      (* with c_R = 1, attrs a and b are covered; only c needs S or T *)
      let bound = Edge_cover.product_bound ~weights cover in
      check_float "bound is N^2" (100. ** 2.) bound

let test_cover_validity_prop () =
  (* every attribute covered with total >= 1 for random hypergraphs *)
  let rng = Pc_util.Rng.create 5 in
  for _ = 1 to 50 do
    let n_rels = 2 + Pc_util.Rng.int rng 4 in
    let n_attrs = 2 + Pc_util.Rng.int rng 4 in
    let rels =
      List.init n_rels (fun i ->
          let attrs =
            List.filter
              (fun _ -> Pc_util.Rng.bool rng)
              (List.init n_attrs (fun j -> Printf.sprintf "x%d" j))
          in
          let attrs = if attrs = [] then [ "x0" ] else attrs in
          { Hypergraph.name = Printf.sprintf "R%d" i; attrs })
    in
    (* ensure every attribute appears somewhere *)
    let rels =
      { Hypergraph.name = "Rall"; attrs = List.init n_attrs (fun j -> Printf.sprintf "x%d" j) }
      :: rels
    in
    let hg = Hypergraph.make rels in
    let weights =
      List.map
        (fun (r : Hypergraph.rel) ->
          (r.Hypergraph.name, 1. +. Pc_util.Rng.float rng 100.))
        (Hypergraph.rels hg)
    in
    match Edge_cover.solve ~weights hg with
    | None -> Alcotest.fail "cover should exist"
    | Some cover ->
        List.iter
          (fun attr ->
            let total =
              List.fold_left
                (fun acc name -> acc +. List.assoc name cover)
                0.
                (Hypergraph.covering hg attr)
            in
            Alcotest.(check bool)
              (Printf.sprintf "attr %s covered" attr)
              true (total >= 1. -. 1e-6))
          (Hypergraph.attrs hg)
  done

let edges_pcs rel attr =
  Pc_core.Pc_set.make
    (Pc_core.Generate.corr_partition rel ~attrs:[ attr ] ~n:8 ~value_attrs:[] ())

let make_triangle_tables rng n =
  let r = Pc_synth.Graphs.random_edges rng ~a:"a" ~b:"b" ~n ~vertices:(max 2 (n / 2)) in
  let s = Pc_synth.Graphs.random_edges rng ~a:"b" ~b:"c" ~n ~vertices:(max 2 (n / 2)) in
  let t = Pc_synth.Graphs.random_edges rng ~a:"c" ~b:"a" ~n ~vertices:(max 2 (n / 2)) in
  ( (r, s, t),
    [
      Join_bound.table ~name:"R" ~join_attrs:[ "a"; "b" ] (edges_pcs r "a");
      Join_bound.table ~name:"S" ~join_attrs:[ "b"; "c" ] (edges_pcs s "b");
      Join_bound.table ~name:"T" ~join_attrs:[ "c"; "a" ] (edges_pcs t "c");
    ] )

let test_count_bound_dominates_truth () =
  let rng = Pc_util.Rng.create 11 in
  for _ = 1 to 10 do
    let n = 20 + Pc_util.Rng.int rng 200 in
    let (r, s, t), tables = make_triangle_tables rng n in
    let truth = float_of_int (Pc_synth.Graphs.triangle_count ~r ~s ~t) in
    let bound = Join_bound.count_bound tables in
    let naive = Join_bound.naive_count_bound tables in
    Alcotest.(check bool) "GWE bound dominates truth" true (bound >= truth -. 1e-6);
    Alcotest.(check bool) "naive dominates GWE" true (naive >= bound -. 1e-6)
  done

let test_chain_bound_dominates_truth () =
  let rng = Pc_util.Rng.create 13 in
  for _ = 1 to 5 do
    let n = 20 + Pc_util.Rng.int rng 100 in
    let rels =
      List.init 5 (fun i ->
          Pc_synth.Graphs.random_edges rng
            ~a:(Printf.sprintf "x%d" (i + 1))
            ~b:(Printf.sprintf "x%d" (i + 2))
            ~n ~vertices:(max 2 (n / 3)))
    in
    let tables =
      List.mapi
        (fun i rel ->
          Join_bound.table
            ~name:(Printf.sprintf "R%d" (i + 1))
            ~join_attrs:[ Printf.sprintf "x%d" (i + 1); Printf.sprintf "x%d" (i + 2) ]
            (edges_pcs rel (Printf.sprintf "x%d" (i + 1))))
        rels
    in
    let truth = float_of_int (Pc_synth.Graphs.chain_join_count rels) in
    let bound = Join_bound.count_bound tables in
    Alcotest.(check bool) "chain bound dominates truth" true (bound >= truth -. 1e-6)
  done

let test_per_table_predicates () =
  (* restricting one table below the join shrinks the bound soundly *)
  let rng = Pc_util.Rng.create 19 in
  let (r, s, t), tables = make_triangle_tables rng 150 in
  ignore (r, s, t);
  let full = Join_bound.count_bound tables in
  let restricted =
    match tables with
    | first :: rest ->
        { first with Join_bound.where_ = [ Pc_predicate.Atom.between "a" 0. 20. ] }
        :: rest
    | [] -> assert false
  in
  let narrowed = Join_bound.count_bound restricted in
  Alcotest.(check bool) "narrowed bound is no larger" true (narrowed <= full +. 1e-6);
  Alcotest.(check bool) "narrowed bound still positive" true (narrowed > 0.);
  (* an impossible per-table predicate zeroes the join *)
  let impossible =
    match tables with
    | first :: rest ->
        { first with Join_bound.where_ = [ Pc_predicate.Atom.between "a" 1e9 2e9 ] }
        :: rest
    | [] -> assert false
  in
  Alcotest.(check (float 0.)) "impossible selection" 0.
    (Join_bound.count_bound impossible)

let test_elastic_looser () =
  List.iter
    (fun n ->
      let pc_shape = n ** 1.5 in
      let es = Elastic.triangle_bound ~n in
      Alcotest.(check bool) "ES much looser than N^1.5" true (es > 10. *. pc_shape);
      (* ES grows like N^3 *)
      Alcotest.(check bool) "ES at most ~cubic" true (es <= 30. *. (n ** 3.)))
    [ 10.; 100.; 1000. ]

let test_sensitivity_monotone () =
  let sizes = [ ("R", 50.); ("S", 50.); ("T", 50.) ] in
  let s0 = Elastic.sensitivity_at ~sizes Hypergraph.triangle ~distance:0. in
  let s10 = Elastic.sensitivity_at ~sizes Hypergraph.triangle ~distance:10. in
  Alcotest.(check bool) "monotone in distance" true (s10 >= s0);
  Alcotest.(check (float 1e-9)) "S(0) is product of others" (50. *. 50.) s0

let test_product_pc_set () =
  let mk name attr lo hi count =
    Pc_core.Pc.make ~name
      ~pred:[ Pc_predicate.Atom.between attr lo hi ]
      ~values:[ (attr, I.closed lo hi) ]
      ~freq:(0, count) ()
  in
  let a = Pc_core.Pc_set.make [ mk "a1" "x" 0. 1. 3; mk "a2" "x" 1. 2. 4 ] in
  let b = Pc_core.Pc_set.make [ mk "b1" "y" 0. 1. 5 ] in
  let p = Join_bound.product_pc_set a b in
  Alcotest.(check int) "2x1 products" 2 (Pc_core.Pc_set.size p);
  let first = Pc_core.Pc_set.get p 0 in
  Alcotest.(check int) "multiplied freq" 15 first.Pc_core.Pc.freq_hi;
  (* shared attributes rejected *)
  Alcotest.(check bool) "shared attrs rejected" true
    (try
       ignore (Join_bound.product_pc_set a a);
       false
     with Invalid_argument _ -> true)

let test_product_bound_is_naive () =
  (* bounding COUNT through the product set equals the naive product *)
  let rng = Pc_util.Rng.create 17 in
  let r = Pc_synth.Graphs.random_edges rng ~a:"a" ~b:"b" ~n:50 ~vertices:20 in
  let s = Pc_synth.Graphs.random_edges rng ~a:"c" ~b:"d" ~n:60 ~vertices:20 in
  let pr = edges_pcs r "a" and ps = edges_pcs s "c" in
  let product = Join_bound.product_pc_set pr ps in
  match Pc_core.Bounds.bound product (Q.count ()) with
  | Pc_core.Bounds.Range range ->
      check_float "product set count" (50. *. 60.) range.Pc_core.Range.hi
  | _ -> Alcotest.fail "expected range"

let () =
  Alcotest.run "pc_join"
    [
      ("hypergraph", [ tc "shapes" `Quick test_hypergraph ]);
      ( "edge_cover",
        [
          tc "triangle" `Quick test_edge_cover_triangle;
          tc "chain" `Quick test_edge_cover_chain;
          tc "fixed coefficient" `Quick test_edge_cover_fixed;
          tc "random covers valid" `Quick test_cover_validity_prop;
        ] );
      ( "join_bound",
        [
          tc "triangle dominates truth" `Quick test_count_bound_dominates_truth;
          tc "chain dominates truth" `Quick test_chain_bound_dominates_truth;
          tc "per-table predicates" `Quick test_per_table_predicates;
          tc "product pc set" `Quick test_product_pc_set;
          tc "product bound equals naive" `Quick test_product_bound_is_naive;
        ] );
      ( "elastic",
        [
          tc "looser than GWE" `Quick test_elastic_looser;
          tc "sensitivity monotone" `Quick test_sensitivity_monotone;
        ] );
    ]
