(* Cross-module algebraic laws of the framework. These are the properties
   a user implicitly relies on when composing constraints:

   - refinement: adding a constraint never widens a result range;
   - pushdown consistency: a query's bound is dominated by the bound of
     any weaker predicate;
   - frequency scaling: doubling all frequency caps doubles COUNT/SUM
     upper bounds (disjoint case);
   - splitting: replacing a bucket by an exact two-way split never
     widens;
   - cell geometry: decomposition cells partition each predicate region;
   - duality: MILP minimization equals negated maximization. *)

module Q = Pc_query.Query
module Atom = Pc_predicate.Atom
module I = Pc_interval.Interval
module V = Pc_data.Value
module S = Pc_lp.Simplex
open Pc_core

let schema =
  Pc_data.Schema.of_names
    [ ("t", Pc_data.Schema.Numeric); ("v", Pc_data.Schema.Numeric) ]

let random_relation rng n =
  Pc_data.Relation.create schema
    (List.init n (fun _ ->
         [|
           V.Num (Pc_util.Rng.uniform rng ~lo:0. ~hi:100.);
           V.Num (Pc_util.Rng.uniform rng ~lo:0. ~hi:50.);
         |]))

let random_query rng =
  let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:80. in
  let w = Pc_util.Rng.uniform rng ~lo:10. ~hi:40. in
  let where_ = [ Atom.between "t" lo (lo +. w) ] in
  if Pc_util.Rng.bool rng then Q.sum ~where_ "v" else Q.count ~where_ ()

let random_pc rng i =
  let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:80. in
  let w = Pc_util.Rng.uniform rng ~lo:10. ~hi:40. in
  let vlo = Pc_util.Rng.uniform rng ~lo:0. ~hi:30. in
  let vw = Pc_util.Rng.uniform rng ~lo:1. ~hi:20. in
  Pc.make
    ~name:(Printf.sprintf "pc%d" i)
    ~pred:[ Atom.between "t" lo (lo +. w) ]
    ~values:[ ("v", I.closed vlo (vlo +. vw)) ]
    ~freq:(0, 1 + Pc_util.Rng.int rng 30)
    ()

let random_set rng k = Pc_set.make (List.init k (random_pc rng))

let hi_of = function
  | Bounds.Range r -> r.Range.hi
  | Bounds.Empty -> neg_infinity
  | Bounds.Infeasible -> neg_infinity

let lo_of = function
  | Bounds.Range r -> r.Range.lo
  | Bounds.Empty -> infinity
  | Bounds.Infeasible -> infinity

(* ------------------------- refinement law --------------------------- *)

(* Note the subtlety: under closure, a predicate doubles as an existence
   permission, so adding a constraint over a *fresh* region can widen the
   range (it allows rows that were previously impossible). Refinement
   only holds when the added predicate lies inside the already-covered
   region — which is how we generate it here. *)
let prop_refinement =
  QCheck.Test.make
    ~name:"adding a covered constraint never widens COUNT/SUM ranges"
    ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let base_pcs = List.init (2 + Pc_util.Rng.int rng 4) (random_pc rng) in
      let host = List.nth base_pcs (Pc_util.Rng.int rng (List.length base_pcs)) in
      let host_iv =
        match host.Pc.pred with
        | [ Atom.Num_range (_, iv) ] -> iv
        | _ -> assert false
      in
      let hlo = I.lo_float host_iv and hhi = I.hi_float host_iv in
      let a = Pc_util.Rng.uniform rng ~lo:hlo ~hi:hhi in
      let b = Pc_util.Rng.uniform rng ~lo:a ~hi:hhi in
      let extra =
        Pc.make ~name:"extra"
          ~pred:[ Atom.between "t" a b ]
          ~values:[ ("v", I.closed 0. (Pc_util.Rng.uniform rng ~lo:1. ~hi:40.)) ]
          ~freq:(0, 1 + Pc_util.Rng.int rng 20)
          ()
      in
      let base = Pc_set.make base_pcs in
      let refined = Pc_set.make (extra :: base_pcs) in
      let query = random_query rng in
      let b = Bounds.bound base query and r = Bounds.bound refined query in
      (* refined feasible set ⊆ base feasible set *)
      hi_of r <= hi_of b +. 1e-6 *. Float.max 1. (Float.abs (hi_of b))
      && lo_of r >= lo_of b -. 1e-6 *. Float.max 1. (Float.abs (lo_of b)))

(* --------------------- pushdown consistency law --------------------- *)

let prop_pushdown_monotone =
  QCheck.Test.make
    ~name:"narrower query predicates never raise the SUM upper bound"
    ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let set = random_set rng (3 + Pc_util.Rng.int rng 3) in
      let lo = Pc_util.Rng.uniform rng ~lo:0. ~hi:60. in
      let w = Pc_util.Rng.uniform rng ~lo:10. ~hi:30. in
      let narrow = Q.sum ~where_:[ Atom.between "t" lo (lo +. w) ] "v" in
      let wide = Q.sum ~where_:[ Atom.between "t" (lo -. 10.) (lo +. w +. 10.) ] "v" in
      (* values are non-negative here, so any instance's narrow SUM is at
         most its wide SUM; bounds must respect that *)
      hi_of (Bounds.bound set narrow)
      <= hi_of (Bounds.bound set wide) +. 1e-6)

(* ------------------------ frequency scaling ------------------------- *)

let scale_freq k (pc : Pc.t) =
  Pc.make ~name:pc.Pc.name ~pred:pc.Pc.pred ~values:pc.Pc.values
    ~freq:(k * pc.Pc.freq_lo, k * pc.Pc.freq_hi)
    ()

let prop_frequency_scaling =
  QCheck.Test.make
    ~name:"doubling disjoint frequency caps doubles COUNT/SUM tops" ~count:80
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let rel = random_relation rng 200 in
      let pcs = Generate.corr_partition rel ~attrs:[ "t" ] ~n:6 () in
      let set1 = Pc_set.make pcs in
      let set2 = Pc_set.make (List.map (scale_freq 2) pcs) in
      let query = random_query rng in
      let h1 = hi_of (Bounds.bound set1 query) in
      let h2 = hi_of (Bounds.bound set2 query) in
      Float.abs (h2 -. (2. *. h1)) <= 1e-6 *. Float.max 1. (Float.abs h2))

(* --------------------------- split law ------------------------------ *)

let prop_split_never_widens =
  QCheck.Test.make
    ~name:"splitting a bucket into exact halves never widens" ~count:80
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let rel = random_relation rng 300 in
      let coarse = Pc_set.make (Generate.corr_partition rel ~attrs:[ "t" ] ~n:4 ()) in
      let fine = Pc_set.make (Generate.corr_partition rel ~attrs:[ "t" ] ~n:8 ()) in
      let query = random_query rng in
      (* both hold on rel; the finer summary is at least as tight *)
      hi_of (Bounds.bound fine query)
      <= hi_of (Bounds.bound coarse query)
         +. 1e-6 *. Float.max 1. (Float.abs (hi_of (Bounds.bound coarse query))))

(* ----------------------- cell geometry laws ------------------------- *)

let prop_cells_partition =
  QCheck.Test.make
    ~name:"cells are disjoint and cover exactly the union of predicates"
    ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let k = 2 + Pc_util.Rng.int rng 4 in
      let set = random_set rng k in
      let cells, _ = Cells.decompose ~strategy:Cells.Dfs set in
      let ok = ref true in
      for _ = 1 to 60 do
        let t = Pc_util.Rng.uniform rng ~lo:(-10.) ~hi:140. in
        let v = Pc_util.Rng.uniform rng ~lo:(-10.) ~hi:80. in
        let row = [| V.Num t; V.Num v |] in
        let in_some_pred =
          List.exists
            (fun (pc : Pc.t) -> Pc_predicate.Pred.eval schema pc.Pc.pred row)
            (Pc_set.pcs set)
        in
        let containing =
          List.filter
            (fun (c : Cells.cell) -> Pc_predicate.Cnf.eval schema c.Cells.expr row)
            cells
        in
        (* inside the union of predicates: exactly one cell; outside: none *)
        let expected = if in_some_pred then 1 else 0 in
        if List.length containing <> expected then ok := false
      done;
      !ok)

let prop_cell_active_sets_correct =
  QCheck.Test.make
    ~name:"a cell's active set matches pointwise predicate membership"
    ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let k = 2 + Pc_util.Rng.int rng 4 in
      let set = random_set rng k in
      let cells, _ = Cells.decompose ~strategy:Cells.Dfs_rewrite set in
      let ok = ref true in
      for _ = 1 to 60 do
        let t = Pc_util.Rng.uniform rng ~lo:0. ~hi:120. in
        let v = Pc_util.Rng.uniform rng ~lo:0. ~hi:60. in
        let row = [| V.Num t; V.Num v |] in
        List.iter
          (fun (c : Cells.cell) ->
            if Pc_predicate.Cnf.eval schema c.Cells.expr row then begin
              let memberships =
                List.filteri
                  (fun j _ -> ignore j; true)
                  (Pc_set.pcs set)
                |> List.mapi (fun j (pc : Pc.t) ->
                       if Pc_predicate.Pred.eval schema pc.Pc.pred row then Some j
                       else None)
                |> List.filter_map Fun.id
              in
              if memberships <> c.Cells.active then ok := false
            end)
          cells
      done;
      !ok)

(* ----------------------------- duality ------------------------------ *)

let prop_milp_duality =
  QCheck.Test.make ~name:"min f = -max (-f) for the MILP" ~count:100
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let n = 2 + Pc_util.Rng.int rng 2 in
      let constraints =
        List.init (1 + Pc_util.Rng.int rng 3) (fun _ ->
            let coeffs =
              List.init n (fun j -> (j, float_of_int (Pc_util.Rng.int rng 3)))
            in
            S.c_le coeffs (float_of_int (2 + Pc_util.Rng.int rng 10)))
      in
      let objective =
        List.init n (fun j -> (j, float_of_int (Pc_util.Rng.int rng 7 - 3)))
      in
      let p = { S.n_vars = n; maximize = false; objective; constraints; var_bounds = [] } in
      let neg =
        {
          p with
          S.maximize = true;
          objective = List.map (fun (j, c) -> (j, -.c)) objective;
        }
      in
      match (Pc_milp.Milp.solve p, Pc_milp.Milp.solve neg) with
      | Pc_milp.Milp.Optimal a, Pc_milp.Milp.Optimal b ->
          Float.abs (a.Pc_milp.Milp.bound +. b.Pc_milp.Milp.bound) < 1e-5
      | Pc_milp.Milp.Infeasible, Pc_milp.Milp.Infeasible -> true
      | Pc_milp.Milp.Unbounded, Pc_milp.Milp.Unbounded -> true
      | _ -> false)

(* -------------------- strategy-independence law --------------------- *)

let prop_bounds_strategy_independent =
  QCheck.Test.make
    ~name:"bounds agree across exact decomposition strategies" ~count:60
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let set = random_set rng (2 + Pc_util.Rng.int rng 3) in
      let query = random_query rng in
      let bound_with strategy =
        Bounds.bound
          ~opts:{ Bounds.default_opts with Bounds.strategy; use_greedy = false }
          set query
      in
      let a = bound_with Cells.Naive in
      let b = bound_with Cells.Dfs in
      let c = bound_with Cells.Dfs_rewrite in
      let close x y =
        Float.abs (x -. y) <= 1e-6 *. Float.max 1. (Float.abs x)
        || (Float.is_nan x && Float.is_nan y)
        || x = y
      in
      close (hi_of a) (hi_of b)
      && close (hi_of b) (hi_of c)
      && close (lo_of a) (lo_of b)
      && close (lo_of b) (lo_of c))

(* ------------------ early stop only loosens, soundly ---------------- *)

let prop_earlystop_sound_loosening =
  QCheck.Test.make
    ~name:"early-stop bounds contain the exact bounds" ~count:60
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let k = 3 + Pc_util.Rng.int rng 3 in
      let set = random_set rng k in
      let query = random_query rng in
      let exact =
        Bounds.bound
          ~opts:{ Bounds.default_opts with Bounds.use_greedy = false }
          set query
      in
      let approx =
        Bounds.bound
          ~opts:
            {
              Bounds.default_opts with
              Bounds.strategy = Cells.Early_stop (k / 2);
              use_greedy = false;
            }
          set query
      in
      hi_of approx >= hi_of exact -. 1e-6
      && lo_of approx <= lo_of exact +. 1e-6)

(* ------------- exact-count constraints: two-sided soundness --------- *)

let prop_exact_counts_sound =
  (* freq (count, count) exercises the MILP lower-bound machinery that
     the usual (0, count) generators never touch *)
  QCheck.Test.make
    ~name:"bounds with exact-count constraints contain truth" ~count:100
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let missing = random_relation rng (50 + Pc_util.Rng.int rng 150) in
      let pcs =
        Generate.corr_partition ~exact_counts:true missing ~attrs:[ "t" ] ~n:6 ()
      in
      let set = Pc_set.make pcs in
      let query = random_query rng in
      match (Bounds.bound set query, Q.eval missing query) with
      | Bounds.Infeasible, _ -> false
      | Bounds.Empty, None -> true
      | Bounds.Empty, Some _ -> false
      | Bounds.Range _, None -> true
      | Bounds.Range r, Some truth -> Range.contains r truth)

let prop_exact_counts_pin_count =
  QCheck.Test.make
    ~name:"exact counts pin the unrestricted COUNT exactly" ~count:60
    QCheck.(int_bound 100_000) (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let missing = random_relation rng (30 + Pc_util.Rng.int rng 100) in
      let pcs =
        Generate.corr_partition ~exact_counts:true missing ~attrs:[ "t" ] ~n:5 ()
      in
      let set = Pc_set.make pcs in
      let n = float_of_int (Pc_data.Relation.cardinality missing) in
      match Bounds.bound set (Q.count ()) with
      | Bounds.Range r ->
          Float.abs (r.Range.lo -. n) < 1e-6 && Float.abs (r.Range.hi -. n) < 1e-6
      | _ -> false)

(* ------------------ noise preserves well-formedness ----------------- *)

let prop_noise_well_formed =
  QCheck.Test.make ~name:"corrupted PCs remain well-formed" ~count:100
    QCheck.(pair (int_bound 100_000) (float_bound_inclusive 3.))
    (fun (seed, scale) ->
      let rng = Pc_util.Rng.create seed in
      let pcs = List.init 5 (random_pc rng) in
      let noisy =
        Noise.corrupt_values rng ~sigma:[ ("v", scale *. 10.) ] pcs
        @ Noise.corrupt_values_systematic rng ~sigma:[ ("v", scale *. 10.) ] pcs
        @ Noise.corrupt_values_relative rng ~attrs:[ "v" ] ~scale pcs
      in
      List.for_all
        (fun (pc : Pc.t) ->
          List.for_all
            (fun (_, iv) -> I.lo_float iv <= I.hi_float iv)
            pc.Pc.values
          && pc.Pc.freq_lo <= pc.Pc.freq_hi)
        noisy)

let () =
  Alcotest.run "pc_laws"
    [
      ( "algebraic laws",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_refinement;
            prop_pushdown_monotone;
            prop_frequency_scaling;
            prop_split_never_widens;
            prop_cells_partition;
            prop_cell_active_sets_correct;
            prop_milp_duality;
            prop_bounds_strategy_independent;
            prop_earlystop_sound_loosening;
            prop_exact_counts_sound;
            prop_exact_counts_pin_count;
            prop_noise_well_formed;
          ] );
    ]
