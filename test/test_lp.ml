open Pc_lp
module S = Simplex

let tc = Alcotest.test_case
let check_float = Alcotest.(check (float 1e-5))

let get_opt = function
  | S.Optimal s -> s
  | S.Infeasible -> Alcotest.fail "unexpected infeasible"
  | S.Unbounded -> Alcotest.fail "unexpected unbounded"
  | S.Stopped _ -> Alcotest.fail "unexpected early stop"

let test_basic_max () =
  (* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12 *)
  let p =
    {
      S.n_vars = 2;
      maximize = true;
      objective = [ (0, 3.); (1, 2.) ];
      constraints = [ S.c_le [ (0, 1.); (1, 1.) ] 4.; S.c_le [ (0, 1.); (1, 3.) ] 6. ];
      var_bounds = [];
    }
  in
  let s = get_opt (S.solve p) in
  check_float "objective" 12. s.S.objective_value;
  check_float "x" 4. s.S.values.(0);
  check_float "y" 0. s.S.values.(1)

let test_basic_min () =
  (* min x + y s.t. x + 2y >= 6, 3x + y >= 9  -> intersection (2.4, 1.8), obj 4.2 *)
  let p =
    {
      S.n_vars = 2;
      maximize = false;
      objective = [ (0, 1.); (1, 1.) ];
      constraints = [ S.c_ge [ (0, 1.); (1, 2.) ] 6.; S.c_ge [ (0, 3.); (1, 1.) ] 9. ];
      var_bounds = [];
    }
  in
  let s = get_opt (S.solve p) in
  check_float "objective" 4.2 s.S.objective_value

let test_equality () =
  (* max x s.t. x + y = 5, x <= 3 -> x=3 *)
  let p =
    {
      S.n_vars = 2;
      maximize = true;
      objective = [ (0, 1.) ];
      constraints = [ S.c_eq [ (0, 1.); (1, 1.) ] 5.; S.c_le [ (0, 1.) ] 3. ];
      var_bounds = [];
    }
  in
  let s = get_opt (S.solve p) in
  check_float "x" 3. s.S.values.(0);
  check_float "y" 2. s.S.values.(1)

let test_infeasible () =
  let p =
    {
      S.n_vars = 1;
      maximize = true;
      objective = [ (0, 1.) ];
      constraints = [ S.c_ge [ (0, 1.) ] 5.; S.c_le [ (0, 1.) ] 3. ];
      var_bounds = [];
    }
  in
  (match S.solve p with
  | S.Infeasible -> ()
  | S.Optimal _ | S.Unbounded | S.Stopped _ ->
      Alcotest.fail "expected infeasible");
  Alcotest.(check bool) "feasible fn" false (S.feasible p)

let test_unbounded () =
  let p =
    { S.n_vars = 1; maximize = true; objective = [ (0, 1.) ]; constraints = []; var_bounds = [] }
  in
  match S.solve p with
  | S.Unbounded -> ()
  | S.Optimal _ | S.Infeasible | S.Stopped _ ->
      Alcotest.fail "expected unbounded"

let test_negative_rhs () =
  (* constraint with negative rhs exercises row normalization:
     max x s.t. -x <= -2 (i.e. x >= 2), x <= 5 *)
  let p =
    {
      S.n_vars = 1;
      maximize = true;
      objective = [ (0, 1.) ];
      constraints = [ S.c_le [ (0, -1.) ] (-2.); S.c_le [ (0, 1.) ] 5. ];
      var_bounds = [];
    }
  in
  let s = get_opt (S.solve p) in
  check_float "x" 5. s.S.values.(0);
  (* and minimization hits the lower side *)
  let s2 = get_opt (S.solve { p with maximize = false }) in
  check_float "min x" 2. s2.S.values.(0)

let test_degenerate () =
  (* redundant constraints and degenerate vertices should not cycle *)
  let p =
    {
      S.n_vars = 2;
      maximize = true;
      objective = [ (0, 1.); (1, 1.) ];
      constraints =
        [
          S.c_le [ (0, 1.) ] 1.;
          S.c_le [ (0, 1.) ] 1.;
          S.c_le [ (1, 1.) ] 1.;
          S.c_le [ (0, 1.); (1, 1.) ] 2.;
          S.c_eq [ (0, 1.); (1, 1.) ] 2.;
        ];
      var_bounds = [];
    }
  in
  let s = get_opt (S.solve p) in
  check_float "objective" 2. s.S.objective_value

let test_pc_shaped () =
  (* The MILP-relaxation shape used by the PC framework: interval row
     constraints over 0/1 coefficients.
     Paper's worked example (Section 4.4, overlapping case):
     cells c1 (covered by t1,t2) and c2 (covered by t2 only);
     t1: 50 <= x1 <= 100, t2: 75 <= x1 + x2 <= 125;
     max 129.99 x1 + 149.99 x2 = 50*129.99 + 75*149.99 = 17748.75 *)
  let cons =
    [
      S.c_ge [ (0, 1.) ] 50.;
      S.c_le [ (0, 1.) ] 100.;
      S.c_ge [ (0, 1.); (1, 1.) ] 75.;
      S.c_le [ (0, 1.); (1, 1.) ] 125.;
    ]
  in
  let p =
    {
      S.n_vars = 2;
      maximize = true;
      objective = [ (0, 129.99); (1, 149.99) ];
      constraints = cons;
      var_bounds = [];
    }
  in
  let s = get_opt (S.solve p) in
  check_float "paper upper bound" 17748.75 s.S.objective_value;
  let p_min =
    { p with maximize = false; objective = [ (0, 0.99); (1, 0.99) ] }
  in
  let s_min = get_opt (S.solve p_min) in
  check_float "paper lower bound" 74.25 s_min.S.objective_value

let test_validation () =
  Alcotest.check_raises "bad index"
    (Invalid_argument "Simplex: variable index out of range") (fun () ->
      ignore
        (S.solve
           { S.n_vars = 1; maximize = true; objective = [ (3, 1.) ]; constraints = []; var_bounds = [] }))

(* --- randomized cross-check against brute-force vertex enumeration on a
   grid: for small problems with x in {0..6}^2 and <= constraints with
   non-negative coefficients, LP optimum must dominate every feasible
   integer point and be attained within the (continuous) polytope. --- *)

let random_problem rng =
  let module R = Pc_util.Rng in
  let n_cons = 1 + R.int rng 3 in
  let constraints =
    List.init n_cons (fun _ ->
        let c0 = float_of_int (R.int rng 4) and c1 = float_of_int (R.int rng 4) in
        let rhs = float_of_int (1 + R.int rng 12) in
        S.c_le [ (0, c0); (1, c1) ] rhs)
  in
  let objective = [ (0, float_of_int (R.int rng 5)); (1, float_of_int (R.int rng 5)) ] in
  { S.n_vars = 2; maximize = true; objective; constraints; var_bounds = [] }

let prop_dominates_grid =
  QCheck.Test.make ~name:"LP optimum dominates all feasible grid points" ~count:300
    QCheck.small_int (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let p = random_problem rng in
      match S.solve p with
      | S.Unbounded -> true
      | S.Infeasible -> false (* x=0 is always feasible for <= with rhs>0 *)
      | S.Stopped _ -> false (* tiny problems must solve to optimality *)
      | S.Optimal s ->
          let obj x y =
            List.fold_left
              (fun acc (j, c) -> acc +. (c *. if j = 0 then x else y))
              0. p.S.objective
          in
          let feasible x y =
            List.for_all
              (fun (c : S.constr) ->
                let lhs =
                  List.fold_left
                    (fun acc (j, v) -> acc +. (v *. if j = 0 then x else y))
                    0. c.S.coeffs
                in
                lhs <= c.S.rhs +. 1e-9)
              p.S.constraints
          in
          let ok = ref true in
          for i = 0 to 12 do
            for j = 0 to 12 do
              let x = float_of_int i and y = float_of_int j in
              if feasible x y && obj x y > s.S.objective_value +. 1e-5 then
                ok := false
            done
          done;
          (* solution itself must be feasible *)
          !ok && feasible s.S.values.(0) s.S.values.(1))

(* --- post-solve self-check property: every Optimal solution satisfies
   all constraints within Float_eps tolerances, and its objective value
   matches an independent recomputation from [values]. Uses richer random
   problems than the grid cross-check (all three relops, negative
   coefficients) so equality/>= rows exercise phase 1. --- *)

let random_mixed_problem rng =
  let module R = Pc_util.Rng in
  let n_vars = 2 + R.int rng 3 in
  let n_cons = 1 + R.int rng 5 in
  let sparse_row () =
    List.init n_vars (fun j -> (j, float_of_int (R.int rng 9 - 3)))
    |> List.filter (fun (_, c) -> c <> 0.)
  in
  let constraints =
    List.init n_cons (fun _ ->
        let coeffs = sparse_row () in
        let rhs = float_of_int (R.int rng 25 - 5) in
        match R.int rng 4 with
        | 0 -> S.c_ge coeffs rhs
        | 1 -> S.c_eq coeffs rhs
        | _ -> S.c_le coeffs rhs)
  in
  {
    S.n_vars;
    maximize = R.int rng 2 = 0;
    objective = sparse_row ();
    constraints;
    var_bounds = [];
  }

let prop_solution_self_check =
  QCheck.Test.make
    ~name:"optimal solutions pass the post-solve self-check" ~count:500
    QCheck.small_int (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let p = random_mixed_problem rng in
      match S.solve p with
      | S.Infeasible | S.Unbounded | S.Stopped _ -> true
      | S.Optimal s -> (
          (* the library's own check must agree... *)
          match S.check_solution p s with
          | Error _ -> false
          | Ok () ->
              (* ...and so must a from-scratch recomputation *)
              let value_of j = s.S.values.(j) in
              let row coeffs =
                List.fold_left (fun acc (j, c) -> acc +. (c *. value_of j)) 0. coeffs
              in
              let eps = 1e-6 in
              List.for_all
                (fun (c : S.constr) ->
                  let lhs = row c.S.coeffs in
                  let tol =
                    eps
                    *. Float.max 1.
                         (List.fold_left
                            (fun acc (_, v) -> acc +. Float.abs v)
                            (Float.abs c.S.rhs) c.S.coeffs)
                  in
                  match c.S.op with
                  | S.Le -> lhs <= c.S.rhs +. tol
                  | S.Ge -> lhs >= c.S.rhs -. tol
                  | S.Eq -> Float.abs (lhs -. c.S.rhs) <= tol)
                p.S.constraints
              && Array.for_all (fun x -> x >= -.eps) s.S.values
              && Float.abs (row p.S.objective -. s.S.objective_value)
                 <= eps *. Float.max 1. (Float.abs s.S.objective_value)))

(* --- duplicate variable indices are canonicalized (summed once) --- *)

let test_duplicate_indices () =
  (* [(0,1.);(0,1.)] must mean 2 x0, in rows and in the objective *)
  let p =
    {
      S.n_vars = 1;
      maximize = true;
      objective = [ (0, 1.) ];
      constraints = [ S.c_le [ (0, 1.); (0, 1.) ] 1. ];
      var_bounds = [];
    }
  in
  let s = get_opt (S.solve p) in
  check_float "2 x0 <= 1 caps x0 at 0.5" 0.5 s.S.values.(0);
  let reference =
    get_opt (S.solve { p with constraints = [ S.c_le [ (0, 2.) ] 1. ] })
  in
  check_float "identical to the pre-summed row" reference.S.values.(0)
    s.S.values.(0);
  let dup_obj =
    get_opt (S.solve { p with objective = [ (0, 1.); (0, 1.) ] })
  in
  check_float "objective duplicates also sum" 1. dup_obj.S.objective_value

(* --- explicit variable bounds --- *)

let test_var_bounds () =
  (* max x + y s.t. x + y <= 4 with x in [1,3], y in [0,2] *)
  let p =
    {
      S.n_vars = 2;
      maximize = true;
      objective = [ (0, 1.); (1, 1.) ];
      constraints = [ S.c_le [ (0, 1.); (1, 1.) ] 4. ];
      var_bounds = [ (0, 1., 3.); (1, 0., 2.) ];
    }
  in
  let s = get_opt (S.solve p) in
  check_float "objective" 4. s.S.objective_value;
  Alcotest.(check bool) "x within box" true
    (s.S.values.(0) >= 1. -. 1e-9 && s.S.values.(0) <= 3. +. 1e-9);
  (* minimization rests on the lower bounds *)
  let s_min = get_opt (S.solve { p with maximize = false }) in
  check_float "min objective" 1. s_min.S.objective_value;
  check_float "x at its lower bound" 1. s_min.S.values.(0);
  (* bounds alone make an otherwise unbounded problem finite *)
  let free =
    {
      S.n_vars = 1;
      maximize = true;
      objective = [ (0, 1.) ];
      constraints = [];
      var_bounds = [ (0, 0., 7.) ];
    }
  in
  check_float "upper bound caps the optimum" 7.
    (get_opt (S.solve free)).S.objective_value;
  (* a fixed variable (lo = hi) is honored exactly *)
  let fixed = { free with var_bounds = [ (0, 3., 3.) ] } in
  check_float "fixed variable" 3. (get_opt (S.solve fixed)).S.values.(0)

let test_empty_box_infeasible () =
  (* lo > hi is Infeasible, not an error; repeated entries intersect *)
  let p =
    {
      S.n_vars = 1;
      maximize = true;
      objective = [ (0, 1.) ];
      constraints = [];
      var_bounds = [ (0, 2., 5.); (0, 0., 1.) ];
    }
  in
  match S.solve p with
  | S.Infeasible -> ()
  | S.Optimal _ | S.Unbounded | S.Stopped _ ->
      Alcotest.fail "expected Infeasible on an empty box"

(* --- warm starts: solve_from matches a cold solve under the new box --- *)

let chain_problem =
  {
    S.n_vars = 3;
    maximize = true;
    objective = [ (0, 5.); (1, 4.); (2, 3.) ];
    constraints =
      [
        S.c_le [ (0, 2.); (1, 3.); (2, 1.) ] 5.;
        S.c_le [ (0, 4.); (1, 1.); (2, 2.) ] 11.;
        S.c_le [ (0, 3.); (1, 4.); (2, 2.) ] 8.;
      ];
    var_bounds = [];
  }

let test_solve_from_matches_cold () =
  let lo = [| 0.; 0.; 0. |] and hi = [| infinity; infinity; infinity |] in
  let snap =
    match S.solve_snapshot ~bounds:(lo, hi) chain_problem with
    | S.Optimal _, Some snap -> snap
    | _ -> Alcotest.fail "root solve failed"
  in
  (* tighten bounds one at a time, as branch-and-bound would *)
  let boxes =
    [
      ([| 0.; 0.; 0. |], [| 1.; infinity; infinity |]);
      ([| 2.; 0.; 0. |], [| infinity; infinity; infinity |]);
      ([| 0.; 1.; 0. |], [| infinity; 1.; 2. |]);
    ]
  in
  List.iter
    (fun (lo, hi) ->
      let warm, _ = S.solve_from ~snapshot:snap ~bounds:(lo, hi) chain_problem in
      let cold, _ = S.solve_snapshot ~bounds:(lo, hi) chain_problem in
      match (warm, cold) with
      | S.Optimal w, S.Optimal c ->
          check_float "warm = cold objective" c.S.objective_value
            w.S.objective_value
      | S.Infeasible, S.Infeasible -> ()
      | _ -> Alcotest.fail "warm and cold outcomes disagree")
    boxes;
  (* tightening into an empty feasible region is certified infeasible *)
  let warm_inf, _ =
    S.solve_from ~snapshot:snap
      ~bounds:([| 10.; 0.; 0. |], [| infinity; infinity; infinity |])
      chain_problem
  in
  match warm_inf with
  | S.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible from the warm path"

(* --- warm-start reuse across a 10-step bound-tightening chain ---
   The streaming-ingestion pattern: the rows and objective never change,
   each step only pins variable boxes a little tighter, and every
   re-solve starts from the previous step's basis snapshot. The chain
   must (a) land on exactly the cold optimum at every step's box, and
   (b) cost far fewer pivots than re-solving cold each step. *)

let test_warm_chain_reuse () =
  Pc_obs.Registry.set_enabled true;
  let pivots_now () =
    let get k = Pc_obs.Registry.Counter.(get (make k)) in
    get "lp.pivots" + get "lp.dual_pivots" + get "lp.phase1_pivots"
  in
  let counting f =
    let before = pivots_now () in
    let r = f () in
    (r, pivots_now () - before)
  in
  let n = 40 and m = 30 and win = 10 in
  let p =
    {
      S.n_vars = n;
      maximize = true;
      objective = List.init n (fun i -> (i, 1. +. (float_of_int (i mod 7) *. 0.3)));
      constraints =
        List.init m (fun j ->
            S.c_le (List.init win (fun k -> ((j + k) mod n, 1.))) 25.);
      var_bounds = [];
    }
  in
  let lo = Array.make n 0. and hi = Array.make n 10. in
  let cold_at () =
    match S.solve_snapshot ~bounds:(Array.copy lo, Array.copy hi) p with
    | S.Optimal s, _ -> s
    | _ -> Alcotest.fail "cold solve failed"
  in
  let snap =
    ref
      (match S.solve_snapshot ~bounds:(Array.copy lo, Array.copy hi) p with
      | S.Optimal _, Some snap -> snap
      | _ -> Alcotest.fail "root solve failed")
  in
  let warm_pivots = ref 0 and cold_pivots = ref 0 and last_warm = ref nan in
  for step = 1 to 10 do
    for k = 0 to 3 do
      let j = ((4 * (step - 1)) + k) mod n in
      hi.(j) <- Float.max lo.(j) (hi.(j) -. 2.)
    done;
    let warm, dw =
      counting (fun () ->
          S.solve_from ~snapshot:!snap ~bounds:(Array.copy lo, Array.copy hi) p)
    in
    (match warm with
    | S.Optimal s, Some snap' ->
        warm_pivots := !warm_pivots + dw;
        last_warm := s.S.objective_value;
        (* per-step: the warm answer is the cold answer at this box *)
        check_float
          (Printf.sprintf "step %d: warm = cold" step)
          (fst (counting cold_at)).S.objective_value s.S.objective_value;
        snap := snap'
    | _ -> Alcotest.failf "warm step %d failed" step);
    let _, dc = counting cold_at in
    cold_pivots := !cold_pivots + dc
  done;
  check_float "final warm = final cold" (cold_at ()).S.objective_value !last_warm;
  Alcotest.(check bool)
    (Printf.sprintf "10 warm steps cost %d pivots vs %d cold" !warm_pivots
       !cold_pivots)
    true
    (!warm_pivots * 2 < !cold_pivots)

let test_solve_from_shape_fallback () =
  (* a snapshot from a different problem shape must fall back to a cold
     solve — and still return the right answer *)
  let other =
    {
      S.n_vars = 2;
      maximize = true;
      objective = [ (0, 1.) ];
      constraints = [ S.c_le [ (0, 1.); (1, 1.) ] 2. ];
      var_bounds = [];
    }
  in
  let snap =
    match S.solve_snapshot other with
    | S.Optimal _, Some snap -> snap
    | _ -> Alcotest.fail "setup solve failed"
  in
  let module C = Pc_obs.Registry.Counter in
  let fb = C.make "lp.warm_fallbacks" in
  let before = C.get fb in
  let outcome, _ =
    S.solve_from ~snapshot:snap
      ~bounds:([| 0.; 0.; 0. |], [| infinity; infinity; infinity |])
      chain_problem
  in
  (match outcome with
  | S.Optimal s ->
      let cold = get_opt (S.solve chain_problem) in
      check_float "fallback matches cold" cold.S.objective_value
        s.S.objective_value
  | _ -> Alcotest.fail "expected Optimal via fallback");
  Alcotest.(check bool) "fallback was counted" true (C.get fb > before)

(* --- dense-tableau oracle: the revised simplex and the pre-rework dense
   implementation are independent codebases sharing only the problem
   types; random bounded LPs — including degenerate bases from duplicated
   rows, near-singular bases from eps-perturbed row copies, and chain
   instances long enough to force mid-solve refactorizations — must get
   the same verdict from both, and the same optimum when Optimal. --- *)

let random_oracle_problem rng =
  let module R = Pc_util.Rng in
  if R.int rng 8 = 0 then begin
    (* chain of equality rows, more than [refactor_interval] of them:
       phase 1 performs one basis exchange per row, so the eta file is
       guaranteed to cross the refactorization threshold mid-solve *)
    let m = S.refactor_interval + 8 + R.int rng 24 in
    let n_vars = m + 1 in
    let constraints =
      List.init m (fun i ->
          S.c_eq
            [ (i, 1.); (i + 1, float_of_int (1 + R.int rng 2)) ]
            (float_of_int (2 + R.int rng 5)))
    in
    {
      S.n_vars;
      maximize = true;
      objective = List.init n_vars (fun j -> (j, float_of_int (R.int rng 3)));
      constraints;
      var_bounds = List.init n_vars (fun j -> (j, 0., 10.));
    }
  end
  else begin
    let n_vars = 2 + R.int rng 4 in
    let n_cons = 1 + R.int rng 5 in
    let sparse_row () =
      List.init n_vars (fun j -> (j, float_of_int (R.int rng 9 - 3)))
      |> List.filter (fun (_, c) -> c <> 0.)
    in
    let base =
      List.init n_cons (fun _ ->
          let coeffs = sparse_row () in
          let rhs = float_of_int (R.int rng 25 - 5) in
          match R.int rng 4 with
          | 0 -> S.c_ge coeffs rhs
          | 1 -> S.c_eq coeffs rhs
          | _ -> S.c_le coeffs rhs)
    in
    let constraints =
      match (base, R.int rng 3) with
      | c :: _, 0 ->
          (* exact duplicate row: degenerate vertices, ratio-test ties *)
          base @ [ c ]
      | c :: _, 1 ->
          (* near-copy: almost linearly dependent rows, so a basis
             holding both is near-singular — the refactorization
             pivot-magnitude guard's territory *)
          let nudged =
            {
              c with
              S.coeffs = List.map (fun (j, v) -> (j, v +. 1e-9)) c.S.coeffs;
              rhs = c.S.rhs +. 1e-9;
            }
          in
          base @ [ nudged ]
      | _ -> base
    in
    {
      S.n_vars;
      maximize = R.int rng 2 = 0;
      objective = sparse_row ();
      (* boxed on both sides: bound flips on both solvers, no Unbounded *)
      var_bounds = List.init n_vars (fun j -> (j, 0., float_of_int (3 + R.int rng 8)));
      constraints;
    }
  end

let prop_oracle_dense_vs_sparse =
  QCheck.Test.make
    ~name:"revised simplex agrees with the dense-tableau oracle" ~count:300
    QCheck.small_int (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let p = random_oracle_problem rng in
      match (S.solve p, Dense_tableau.solve p) with
      | S.Optimal a, S.Optimal b ->
          Float.abs (a.S.objective_value -. b.S.objective_value)
          <= 1e-5 *. Float.max 1. (Float.abs b.S.objective_value)
      | S.Infeasible, S.Infeasible -> true
      | S.Unbounded, S.Unbounded -> true
      (* either side declining to answer (numeric distrust, caps) is not
         a disagreement — both solvers treat Stopped as "no verdict" *)
      | S.Stopped _, _ | _, S.Stopped _ -> true
      | _ -> false)

(* --- factorization policy pin: a solve whose pivot count exceeds
   [refactor_interval] must rebuild the eta file at least once beyond the
   initial factorization, and the eta/refactorization counters must move.
   Guards against the threshold check silently rotting (e.g. comparing
   against total file length instead of growth since the last rebuild). --- *)

let test_eta_refactorization () =
  let module C = Pc_obs.Registry.Counter in
  let refacts = C.make "lp.refactorizations" in
  let etas = C.make "lp.eta_len" in
  let pivots = C.make "lp.pivots" in
  let r0 = C.get refacts and e0 = C.get etas and p0 = C.get pivots in
  let n = (2 * S.refactor_interval) + 1 in
  (* one equality row per variable: phase 1 must exchange an artificial
     for a structural on every row — 2×interval+1 etas, two forced
     rebuilds *)
  let p =
    {
      S.n_vars = n;
      maximize = true;
      objective = List.init n (fun j -> (j, 1.));
      constraints = List.init n (fun i -> S.c_eq [ (i, 1.) ] 1.);
      var_bounds = [];
    }
  in
  (match S.solve p with
  | S.Optimal s -> check_float "chain optimum" (float_of_int n) s.S.objective_value
  | _ -> Alcotest.fail "expected Optimal");
  let dp = C.get pivots - p0 in
  Alcotest.(check bool)
    (Printf.sprintf "pivots (%d) exceed refactor_interval (%d)" dp
       S.refactor_interval)
    true
    (dp > S.refactor_interval);
  Alcotest.(check bool) "eta entries were accounted" true (C.get etas > e0);
  Alcotest.(check bool)
    "eta growth triggered rebuilds beyond the initial factorization" true
    (C.get refacts - r0 >= 2)

(* --- budget integration: a crushed budget yields Stopped, never an
   exception, and phase-2 stops carry a primal best-so-far. --- *)

let test_budget_stop () =
  let b = Pc_budget.Budget.start (Pc_budget.Budget.spec ~iters:0 ()) in
  let p =
    {
      S.n_vars = 2;
      maximize = true;
      objective = [ (0, 3.); (1, 2.) ];
      constraints = [ S.c_le [ (0, 1.); (1, 1.) ] 4. ];
      var_bounds = [];
    }
  in
  (match S.solve ~budget:b p with
  | S.Stopped { S.reason = S.Iteration_limit; _ } -> ()
  | S.Stopped _ -> Alcotest.fail "wrong stop reason"
  | S.Optimal _ | S.Infeasible | S.Unbounded ->
      Alcotest.fail "expected Stopped under a zero-pivot budget");
  Alcotest.(check bool) "budget is dead" true (Pc_budget.Budget.is_dead b);
  (* unknown feasibility is treated as feasible *)
  Alcotest.(check bool) "feasible on stop" true (S.feasible ~budget:b p)

let test_deadline_stop () =
  let b = Pc_budget.Budget.start (Pc_budget.Budget.spec ~timeout:0. ()) in
  let p =
    { S.n_vars = 1; maximize = true; objective = [ (0, 1.) ];
      constraints = [ S.c_le [ (0, 1.) ] 1. ]; var_bounds = [] }
  in
  match S.solve ~budget:b p with
  | S.Stopped _ -> ()
  | S.Optimal _ | S.Infeasible | S.Unbounded ->
      Alcotest.fail "expected Stopped under an expired deadline"

let () =
  Alcotest.run "pc_lp"
    [
      ( "simplex",
        [
          tc "basic max" `Quick test_basic_max;
          tc "basic min" `Quick test_basic_min;
          tc "equality" `Quick test_equality;
          tc "infeasible" `Quick test_infeasible;
          tc "unbounded" `Quick test_unbounded;
          tc "negative rhs" `Quick test_negative_rhs;
          tc "degenerate" `Quick test_degenerate;
          tc "paper example shape" `Quick test_pc_shaped;
          tc "validation" `Quick test_validation;
          tc "budget stop" `Quick test_budget_stop;
          tc "deadline stop" `Quick test_deadline_stop;
          tc "duplicate indices" `Quick test_duplicate_indices;
          tc "variable bounds" `Quick test_var_bounds;
          tc "empty box infeasible" `Quick test_empty_box_infeasible;
          tc "solve_from matches cold" `Quick test_solve_from_matches_cold;
          tc "warm reuse across a tightening chain" `Quick
            test_warm_chain_reuse;
          tc "solve_from shape fallback" `Quick test_solve_from_shape_fallback;
          tc "eta growth forces refactorization" `Quick test_eta_refactorization;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_dominates_grid;
          QCheck_alcotest.to_alcotest prop_solution_self_check;
          QCheck_alcotest.to_alcotest prop_oracle_dense_vs_sparse;
        ] );
    ]
